// Command grload generates one of the synthetic evaluation datasets and
// emits it either as a SQL script (ready for the grfusion shell's \i) or
// as an engine snapshot with the graph view already built.
//
// Usage:
//
//	grload -dataset road -scale 1.0 -sql road.sql
//	grload -dataset twitter -snapshot twitter.gob
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"grfusion/internal/bench"
	"grfusion/internal/datagen"
	"grfusion/internal/plan"
)

func main() {
	var (
		name  = flag.String("dataset", "road", "road | protein | dblp | twitter")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 42, "generator seed")
		sqlF  = flag.String("sql", "", "write a SQL script to this file ('-' for stdout)")
		snapF = flag.String("snapshot", "", "write an engine snapshot to this file")
	)
	flag.Parse()
	if *sqlF == "" && *snapF == "" {
		fmt.Fprintln(os.Stderr, "grload: need -sql or -snapshot")
		os.Exit(2)
	}
	ds := bench.Datasets(bench.Config{Scale: *scale, Seed: *seed})
	d, ok := ds[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "grload: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	if *sqlF != "" {
		var out io.Writer = os.Stdout
		if *sqlF != "-" {
			f, err := os.Create(*sqlF)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		writeSQL(out, d)
	}
	if *snapF != "" {
		eng, err := bench.LoadGRFusion(d, planOpts())
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*snapF)
		if err != nil {
			fatal(err)
		}
		if err := eng.Snapshot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grload: %s snapshot written (%d vertices, %d edges)\n",
			d.Name, len(d.Vertices), len(d.Edges))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grload: %v\n", err)
	os.Exit(1)
}

func writeSQL(out io.Writer, d *datagen.Dataset) {
	fmt.Fprintf(out, "CREATE TABLE %s_v (vid BIGINT PRIMARY KEY, name VARCHAR);\n", d.Name)
	fmt.Fprintf(out, "CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR);\n", d.Name)
	const batch = 256
	for i := 0; i < len(d.Vertices); i += batch {
		fmt.Fprintf(out, "INSERT INTO %s_v VALUES", d.Name)
		for j := i; j < i+batch && j < len(d.Vertices); j++ {
			if j > i {
				fmt.Fprint(out, ",")
			}
			v := d.Vertices[j]
			fmt.Fprintf(out, " (%d, '%s')", v.ID, v.Name)
		}
		fmt.Fprintln(out, ";")
	}
	for i := 0; i < len(d.Edges); i += batch {
		fmt.Fprintf(out, "INSERT INTO %s_e VALUES", d.Name)
		for j := i; j < i+batch && j < len(d.Edges); j++ {
			if j > i {
				fmt.Fprint(out, ",")
			}
			e := d.Edges[j]
			fmt.Fprintf(out, " (%d, %d, %d, %g, %d, '%s')", e.ID, e.Src, e.Dst, e.Weight, e.Sel, e.Label)
		}
		fmt.Fprintln(out, ";")
	}
	dir := "DIRECTED"
	if !d.Directed {
		dir = "UNDIRECTED"
	}
	fmt.Fprintf(out, `CREATE %s GRAPH VIEW %s
  VERTEXES(ID = vid, name = name) FROM %s_v
  EDGES(ID = eid, FROM = src, TO = dst, w = w, sel = sel, lbl = lbl) FROM %s_e;
`, dir, d.Name, d.Name, d.Name)
}

func planOpts() plan.Options { return plan.Options{} }
