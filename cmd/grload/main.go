// Command grload generates one of the synthetic evaluation datasets and
// emits it as a SQL script (ready for the grfusion shell's \i), as an
// engine snapshot with the graph view already built, or streams it
// straight into a running grfusion-server over the binary wire
// protocol's COPY bulk path.
//
// Usage:
//
//	grload -dataset road -scale 1.0 -sql road.sql
//	grload -dataset twitter -snapshot twitter.gob
//	grload -dataset twitter -copy localhost:5432
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"grfusion/internal/bench"
	"grfusion/internal/datagen"
	"grfusion/internal/plan"
	"grfusion/internal/server"
	"grfusion/internal/types"
)

func main() {
	var (
		name  = flag.String("dataset", "road", "road | protein | dblp | twitter")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 42, "generator seed")
		sqlF  = flag.String("sql", "", "write a SQL script to this file ('-' for stdout)")
		snapF = flag.String("snapshot", "", "write an engine snapshot to this file")
		copyF = flag.String("copy", "", "stream the dataset into the grfusion-server at this address via binary COPY")
	)
	flag.Parse()
	if *sqlF == "" && *snapF == "" && *copyF == "" {
		fmt.Fprintln(os.Stderr, "grload: need -sql, -snapshot, or -copy")
		os.Exit(2)
	}
	ds := bench.Datasets(bench.Config{Scale: *scale, Seed: *seed})
	d, ok := ds[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "grload: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	if *sqlF != "" {
		var out io.Writer = os.Stdout
		if *sqlF != "-" {
			f, err := os.Create(*sqlF)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		writeSQL(out, d)
	}
	if *snapF != "" {
		eng, err := bench.LoadGRFusion(d, planOpts())
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*snapF)
		if err != nil {
			fatal(err)
		}
		if err := eng.Snapshot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grload: %s snapshot written (%d vertices, %d edges)\n",
			d.Name, len(d.Vertices), len(d.Edges))
	}
	if *copyF != "" {
		if err := copyInto(*copyF, d); err != nil {
			fatal(err)
		}
	}
}

// copyInto streams the dataset into a running server: DDL first, then
// one COPY per table (each a single streamed bulk load with one MVCC
// publish), and the graph view last so its build pays one pass over
// settled tables.
func copyInto(addr string, d *datagen.Dataset) error {
	c, err := server.DialWith(addr, server.Options{
		ConnectTimeout: 10 * time.Second,
		Protocol:       server.ProtoBinary,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ddl := []string{
		fmt.Sprintf("CREATE TABLE %s_v (vid BIGINT PRIMARY KEY, name VARCHAR)", d.Name),
		fmt.Sprintf("CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR)", d.Name),
	}
	for _, q := range ddl {
		if _, err := c.Exec(q); err != nil {
			return err
		}
	}

	const batch = 4096
	t0 := time.Now()
	ci, err := c.CopyIn(d.Name+"_v", nil, len(d.Vertices))
	if err != nil {
		return err
	}
	rows := make([]types.Row, 0, batch)
	for _, v := range d.Vertices {
		rows = append(rows, types.Row{types.NewInt(v.ID), types.NewString(v.Name)})
		if len(rows) == batch {
			if err := ci.Send(rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if err := ci.Send(rows); err != nil {
		return err
	}
	if _, err := ci.Close(); err != nil {
		return fmt.Errorf("vertex copy: %w", err)
	}

	ci, err = c.CopyIn(d.Name+"_e", nil, len(d.Edges))
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, e := range d.Edges {
		rows = append(rows, types.Row{
			types.NewInt(e.ID), types.NewInt(e.Src), types.NewInt(e.Dst),
			types.NewFloat(e.Weight), types.NewInt(e.Sel), types.NewString(e.Label),
		})
		if len(rows) == batch {
			if err := ci.Send(rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if err := ci.Send(rows); err != nil {
		return err
	}
	if _, err := ci.Close(); err != nil {
		return fmt.Errorf("edge copy: %w", err)
	}

	dir := "DIRECTED"
	if !d.Directed {
		dir = "UNDIRECTED"
	}
	view := fmt.Sprintf(`CREATE %s GRAPH VIEW %s
  VERTEXES(ID = vid, name = name) FROM %s_v
  EDGES(ID = eid, FROM = src, TO = dst, w = w, sel = sel, lbl = lbl) FROM %s_e`,
		dir, d.Name, d.Name, d.Name)
	if _, err := c.Exec(view); err != nil {
		return err
	}
	secs := time.Since(t0).Seconds()
	fmt.Fprintf(os.Stderr, "grload: streamed %s into %s (%d vertices, %d edges) in %.2fs (%.0f edges/sec)\n",
		d.Name, addr, len(d.Vertices), len(d.Edges), secs, float64(len(d.Edges))/secs)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grload: %v\n", err)
	os.Exit(1)
}

func writeSQL(out io.Writer, d *datagen.Dataset) {
	fmt.Fprintf(out, "CREATE TABLE %s_v (vid BIGINT PRIMARY KEY, name VARCHAR);\n", d.Name)
	fmt.Fprintf(out, "CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR);\n", d.Name)
	const batch = 256
	for i := 0; i < len(d.Vertices); i += batch {
		fmt.Fprintf(out, "INSERT INTO %s_v VALUES", d.Name)
		for j := i; j < i+batch && j < len(d.Vertices); j++ {
			if j > i {
				fmt.Fprint(out, ",")
			}
			v := d.Vertices[j]
			fmt.Fprintf(out, " (%d, '%s')", v.ID, v.Name)
		}
		fmt.Fprintln(out, ";")
	}
	for i := 0; i < len(d.Edges); i += batch {
		fmt.Fprintf(out, "INSERT INTO %s_e VALUES", d.Name)
		for j := i; j < i+batch && j < len(d.Edges); j++ {
			if j > i {
				fmt.Fprint(out, ",")
			}
			e := d.Edges[j]
			fmt.Fprintf(out, " (%d, %d, %d, %g, %d, '%s')", e.ID, e.Src, e.Dst, e.Weight, e.Sel, e.Label)
		}
		fmt.Fprintln(out, ";")
	}
	dir := "DIRECTED"
	if !d.Directed {
		dir = "UNDIRECTED"
	}
	fmt.Fprintf(out, `CREATE %s GRAPH VIEW %s
  VERTEXES(ID = vid, name = name) FROM %s_v
  EDGES(ID = eid, FROM = src, TO = dst, w = w, sel = sel, lbl = lbl) FROM %s_e;
`, dir, d.Name, d.Name, d.Name)
}

func planOpts() plan.Options { return plan.Options{} }
