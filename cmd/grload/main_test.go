package main

import (
	"strings"
	"testing"

	"grfusion"
	"grfusion/internal/datagen"
)

func tinyDataset() *datagen.Dataset {
	return &datagen.Dataset{
		Name:     "toy",
		Directed: true,
		Vertices: []datagen.Vertex{{ID: 1, Name: "a"}, {ID: 2, Name: "b"}, {ID: 3, Name: "c"}},
		Edges: []datagen.Edge{
			{ID: 10, Src: 1, Dst: 2, Weight: 1.5, Sel: 20, Label: "x"},
			{ID: 11, Src: 2, Dst: 3, Weight: 2, Sel: 80, Label: "y"},
		},
	}
}

// TestWriteSQLGolden pins the emitted script shape: two tables, batched
// inserts, and a graph view DDL naming every exposed attribute.
func TestWriteSQLGolden(t *testing.T) {
	var b strings.Builder
	writeSQL(&b, tinyDataset())
	want := `CREATE TABLE toy_v (vid BIGINT PRIMARY KEY, name VARCHAR);
CREATE TABLE toy_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR);
INSERT INTO toy_v VALUES (1, 'a'), (2, 'b'), (3, 'c');
INSERT INTO toy_e VALUES (10, 1, 2, 1.5, 20, 'x'), (11, 2, 3, 2, 80, 'y');
CREATE DIRECTED GRAPH VIEW toy
  VERTEXES(ID = vid, name = name) FROM toy_v
  EDGES(ID = eid, FROM = src, TO = dst, w = w, sel = sel, lbl = lbl) FROM toy_e;
`
	if got := b.String(); got != want {
		t.Errorf("script mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestLoadThenQueryRoundTrip feeds the generated script to a fresh engine
// and queries the resulting graph view: the loader's output must be
// directly executable and produce the topology it encodes.
func TestLoadThenQueryRoundTrip(t *testing.T) {
	var b strings.Builder
	writeSQL(&b, tinyDataset())
	db := grfusion.Open(grfusion.Config{})
	if err := db.ExecScript(b.String()); err != nil {
		t.Fatalf("generated script rejected: %v", err)
	}
	res, err := db.Exec(`SELECT VS.Id, VS.name, VS.FanOut FROM toy.Vertexes VS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d vertices, want 3", len(res.Rows))
	}
	res, err = db.Exec(`SELECT TOP 1 SUM(PS.Edges.w) FROM toy.Paths PS HINT(SHORTESTPATH(w))
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "3.5" {
		t.Fatalf("shortest path over loaded data = %+v, want 3.5", res.Rows)
	}
}
