package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"grfusion"
)

// normalizeTiming strips the wall-clock portion of result footers like
// "(3 row(s), 12µs)" so golden comparisons are stable.
var timingRE = regexp.MustCompile(`, [0-9.]+(?:ns|µs|ms|m?s)\)`)

func normalizeTiming(s string) string {
	return timingRE.ReplaceAllString(s, ", <t>)")
}

// TestScriptedSession drives the shell end to end over an in-memory pipe:
// DDL, DML, a graph view, a PATHS query, an error, a meta command, and \q.
// The golden transcript pins the prompt/table rendering contract.
func TestScriptedSession(t *testing.T) {
	db := grfusion.Open(grfusion.Config{})
	session := strings.Join([]string{
		`CREATE TABLE V (vid BIGINT PRIMARY KEY, name VARCHAR);`,
		`CREATE TABLE E (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE);`,
		`INSERT INTO V VALUES (1, 'a'), (2, 'b'), (3, 'c');`,
		`INSERT INTO E VALUES (10, 1, 2, 1), (11, 2, 3, 1);`,
		`CREATE DIRECTED GRAPH VIEW G`,
		`  VERTEXES(ID = vid, name = name) FROM V`,
		`  EDGES(ID = eid, FROM = src, TO = dst, w = w) FROM E;`,
		`SELECT VS.Id, VS.name, VS.FanOut FROM G.Vertexes VS;`,
		`SELECT COUNT(*) FROM G.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 3 AND PS.Length <= 2;`,
		`SELECT * FROM NoSuchTable;`,
		`\nope`,
		`\q`,
	}, "\n") + "\n"

	var out strings.Builder
	runShell(db, db, strings.NewReader(session), &out)
	got := normalizeTiming(out.String())

	want := strings.Join([]string{
		"GRFusion shell — graph-relational SQL. End statements with ';', \\q quits.",
		"grfusion> ok (0 row(s) affected, <t>)",
		"grfusion> ok (0 row(s) affected, <t>)",
		"grfusion> ok (3 row(s) affected, <t>)",
		"grfusion> ok (2 row(s) affected, <t>)",
		"grfusion>       ...>       ...> ok (0 row(s) affected, <t>)",
		"grfusion>  Id | name | FanOut",
		" -- | ---- | ------",
		" 1  | a    | 1     ",
		" 2  | b    | 1     ",
		" 3  | c    | 0     ",
		"(3 row(s), <t>)",
		"grfusion>  COUNT(*)",
		" --------",
		" 1       ",
		"(1 row(s), <t>)",
		"grfusion> error: unknown table \"NoSuchTable\"",
		"grfusion> unknown command \\nope (try \\q, \\explain, \\save, \\load, \\i, \\checkpoint, \\health)",
		"grfusion> ",
	}, "\n")
	if got != want {
		t.Errorf("session transcript mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSaveLoadRoundTrip snapshots a populated database from the shell and
// restores it into a fresh one, checking the graph view survives.
func TestSaveLoadRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "s.gob")
	db := grfusion.Open(grfusion.Config{})
	if err := db.ExecScript(`
		CREATE TABLE V (vid BIGINT PRIMARY KEY, name VARCHAR);
		CREATE TABLE E (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT);
		INSERT INTO V VALUES (1, 'a'), (2, 'b');
		INSERT INTO E VALUES (10, 1, 2);
		CREATE DIRECTED GRAPH VIEW G VERTEXES(ID = vid, name = name) FROM V
		EDGES(ID = eid, FROM = src, TO = dst) FROM E;
	`); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if handleMeta(&out, db, db, `\save `+snap) {
		t.Fatal("\\save asked to quit")
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Fatalf("save failed: %s", out.String())
	}

	db2 := grfusion.Open(grfusion.Config{})
	out.Reset()
	if handleMeta(&out, db2, db2, `\load `+snap) {
		t.Fatal("\\load asked to quit")
	}
	if !strings.Contains(out.String(), "snapshot restored") {
		t.Fatalf("load failed: %s", out.String())
	}
	res, err := db2.Exec(`SELECT COUNT(*) FROM G.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length <= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "1" {
		t.Fatalf("restored view lost its topology: %+v", res.Rows)
	}
}

// TestSaveAtomic pins the \save durability fix: the snapshot goes through
// a temp file and an atomic rename, so a failing write can never tear an
// existing snapshot, and no temp litter survives.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "s.gob")
	db := grfusion.Open(grfusion.Config{})
	db.MustExec(`CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	if err := saveSnapshot(db, snap); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	// A save that cannot complete (directory vanished out from under the
	// temp file) must fail without touching the existing snapshot...
	gone := filepath.Join(dir, "nope", "s.gob")
	if err := saveSnapshot(db, gone); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	if got, err := os.ReadFile(snap); err != nil || string(got) != string(old) {
		t.Fatalf("existing snapshot disturbed: %v", err)
	}
	// ...and must not leave temp files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "s.gob" {
			t.Fatalf("leftover file %s after failed save", e.Name())
		}
	}

	// A successful overwrite replaces the bytes wholesale and still loads.
	db.MustExec(`INSERT INTO t VALUES (2)`)
	if err := saveSnapshot(db, snap); err != nil {
		t.Fatal(err)
	}
	db2 := grfusion.Open(grfusion.Config{})
	var out strings.Builder
	handleMeta(&out, db2, db2, `\load `+snap)
	if !strings.Contains(out.String(), "snapshot restored") {
		t.Fatalf("load failed: %s", out.String())
	}
	v, err := db2.QueryScalar(`SELECT COUNT(*) FROM t`)
	if err != nil || v.String() != "2" {
		t.Fatalf("reloaded snapshot: %v %v", v, err)
	}
}

// TestDurableShellSession runs a shell against a WAL directory, drops it
// without a checkpoint, and checks a second session recovers the data and
// that \checkpoint truncates the log.
func TestDurableShellSession(t *testing.T) {
	dir := t.TempDir()
	cfg := grfusion.Config{WALDir: dir}
	db, info, err := grfusion.OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.CheckpointLoaded || info.Replayed != 0 {
		t.Fatalf("fresh durable session: %+v", info)
	}
	session := strings.Join([]string{
		`CREATE TABLE t (id BIGINT PRIMARY KEY, s VARCHAR);`,
		`INSERT INTO t VALUES (1, 'one'), (2, 'two');`,
		`\q`,
	}, "\n") + "\n"
	var out strings.Builder
	runShell(db, db, strings.NewReader(session), &out)
	db.Engine().Kill() // crash: no shutdown checkpoint

	db2, info2, err := grfusion.OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Replayed == 0 {
		t.Fatalf("nothing replayed: %+v", info2)
	}
	v, err := db2.QueryScalar(`SELECT COUNT(*) FROM t`)
	if err != nil || v.String() != "2" {
		t.Fatalf("recovered rows: %v %v", v, err)
	}
	out.Reset()
	if handleMeta(&out, db2, db2, `\checkpoint`) {
		t.Fatal("\\checkpoint asked to quit")
	}
	if !strings.Contains(out.String(), "checkpoint written") {
		t.Fatalf("checkpoint failed: %s", out.String())
	}
	if err := db2.Shutdown(); err != nil {
		t.Fatal(err)
	}

	db3, info3, err := grfusion.OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if !info3.CheckpointLoaded || info3.Replayed != 0 {
		t.Fatalf("post-checkpoint recovery should replay nothing: %+v", info3)
	}
}
