package main

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"grfusion"
)

// normalizeTiming strips the wall-clock portion of result footers like
// "(3 row(s), 12µs)" so golden comparisons are stable.
var timingRE = regexp.MustCompile(`, [0-9.]+(?:ns|µs|ms|m?s)\)`)

func normalizeTiming(s string) string {
	return timingRE.ReplaceAllString(s, ", <t>)")
}

// TestScriptedSession drives the shell end to end over an in-memory pipe:
// DDL, DML, a graph view, a PATHS query, an error, a meta command, and \q.
// The golden transcript pins the prompt/table rendering contract.
func TestScriptedSession(t *testing.T) {
	db := grfusion.Open(grfusion.Config{})
	session := strings.Join([]string{
		`CREATE TABLE V (vid BIGINT PRIMARY KEY, name VARCHAR);`,
		`CREATE TABLE E (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE);`,
		`INSERT INTO V VALUES (1, 'a'), (2, 'b'), (3, 'c');`,
		`INSERT INTO E VALUES (10, 1, 2, 1), (11, 2, 3, 1);`,
		`CREATE DIRECTED GRAPH VIEW G`,
		`  VERTEXES(ID = vid, name = name) FROM V`,
		`  EDGES(ID = eid, FROM = src, TO = dst, w = w) FROM E;`,
		`SELECT VS.Id, VS.name, VS.FanOut FROM G.Vertexes VS;`,
		`SELECT COUNT(*) FROM G.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 3 AND PS.Length <= 2;`,
		`SELECT * FROM NoSuchTable;`,
		`\nope`,
		`\q`,
	}, "\n") + "\n"

	var out strings.Builder
	runShell(db, db, strings.NewReader(session), &out)
	got := normalizeTiming(out.String())

	want := strings.Join([]string{
		"GRFusion shell — graph-relational SQL. End statements with ';', \\q quits.",
		"grfusion> ok (0 row(s) affected, <t>)",
		"grfusion> ok (0 row(s) affected, <t>)",
		"grfusion> ok (3 row(s) affected, <t>)",
		"grfusion> ok (2 row(s) affected, <t>)",
		"grfusion>       ...>       ...> ok (0 row(s) affected, <t>)",
		"grfusion>  Id | name | FanOut",
		" -- | ---- | ------",
		" 1  | a    | 1     ",
		" 2  | b    | 1     ",
		" 3  | c    | 0     ",
		"(3 row(s), <t>)",
		"grfusion>  COUNT(*)",
		" --------",
		" 1       ",
		"(1 row(s), <t>)",
		"grfusion> error: unknown table \"NoSuchTable\"",
		"grfusion> unknown command \\nope (try \\q, \\explain, \\save, \\load, \\i)",
		"grfusion> ",
	}, "\n")
	if got != want {
		t.Errorf("session transcript mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSaveLoadRoundTrip snapshots a populated database from the shell and
// restores it into a fresh one, checking the graph view survives.
func TestSaveLoadRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "s.gob")
	db := grfusion.Open(grfusion.Config{})
	if err := db.ExecScript(`
		CREATE TABLE V (vid BIGINT PRIMARY KEY, name VARCHAR);
		CREATE TABLE E (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT);
		INSERT INTO V VALUES (1, 'a'), (2, 'b');
		INSERT INTO E VALUES (10, 1, 2);
		CREATE DIRECTED GRAPH VIEW G VERTEXES(ID = vid, name = name) FROM V
		EDGES(ID = eid, FROM = src, TO = dst) FROM E;
	`); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if handleMeta(&out, db, `\save `+snap) {
		t.Fatal("\\save asked to quit")
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Fatalf("save failed: %s", out.String())
	}

	db2 := grfusion.Open(grfusion.Config{})
	out.Reset()
	if handleMeta(&out, db2, `\load `+snap) {
		t.Fatal("\\load asked to quit")
	}
	if !strings.Contains(out.String(), "snapshot restored") {
		t.Fatalf("load failed: %s", out.String())
	}
	res, err := db2.Exec(`SELECT COUNT(*) FROM G.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length <= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "1" {
		t.Fatalf("restored view lost its topology: %+v", res.Rows)
	}
}
