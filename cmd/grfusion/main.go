// Command grfusion is an interactive SQL shell over a GRFusion database.
//
// Statements end with ';'. Shell commands:
//
//	\q               quit (a durable session checkpoints first)
//	\explain <sql>   show the physical plan of a SELECT
//	\save <file>     write a snapshot (temp file, fsync, atomic rename)
//	\load <file>     restore a snapshot into the (empty) database
//	\i <file>        execute a SQL script
//	\checkpoint      force a durable checkpoint and truncate the WAL
//	\health          durability health (works remotely too; the wire
//	                 health command bypasses admission control, so it
//	                 answers even from an overloaded or degraded server)
//
// Usage:
//
//	grfusion [-restore snapshot.gob] [-script init.sql] [-mem bytes] [-timeout 5s]
//	grfusion -wal /var/lib/grfusion [-wal-fsync always|interval|off] [-checkpoint-every N]
//	grfusion -connect 127.0.0.1:21212      # talk to a grfusion-server
//
// With -wal the session is durable: every mutating statement is logged
// before it applies, and on startup the database recovers whatever a
// previous session (crashed or not) left in the directory.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"grfusion"
	"grfusion/internal/server"
	"grfusion/internal/wal"
)

// executor abstracts the local embedded engine and the remote client so
// the shell works identically against both.
type executor interface {
	Exec(query string) (*grfusion.Result, error)
}

// remoteExec adapts a server.Client to the executor interface.
type remoteExec struct{ c *server.Client }

func (r remoteExec) Exec(query string) (*grfusion.Result, error) {
	res, err := r.c.Exec(query)
	if err != nil {
		return nil, err
	}
	return &grfusion.Result{Columns: res.Columns, Rows: res.Rows, Affected: res.Affected}, nil
}

func main() {
	var (
		restore = flag.String("restore", "", "restore a snapshot before starting")
		script  = flag.String("script", "", "run a SQL script before starting")
		mem     = flag.Int64("mem", 0, "intermediate-memory budget per statement (bytes)")
		connect = flag.String("connect", "", "connect to a grfusion-server instead of running embedded")
		timeout = flag.Duration("timeout", 0, "per-statement deadline (0 = none); sent as timeout_ms in remote mode")

		walDir     = flag.String("wal", "", "durable session: write-ahead log + checkpoints in this directory, recovering its contents on startup")
		walFsync   = flag.String("wal-fsync", "always", "WAL fsync policy: always, interval, or off")
		walEvery   = flag.Int("checkpoint-every", 0, "automatic checkpoint after N logged statements (0 = default, negative = manual only)")
		walFsyncIv = flag.Duration("wal-fsync-interval", 0, "background sync period under -wal-fsync interval (0 = 50ms default)")
	)
	flag.Parse()

	var db *grfusion.DB
	var exec executor
	if *connect != "" {
		if *walDir != "" {
			fmt.Fprintln(os.Stderr, "grfusion: -wal requires embedded mode")
			os.Exit(1)
		}
		c, err := server.DialWith(*connect, server.Options{RequestTimeout: *timeout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "grfusion: %v\n", err)
			os.Exit(1)
		}
		defer c.Close()
		exec = remoteExec{c: c}
		fmt.Println("connected to", *connect)
	} else {
		cfg := grfusion.Config{MemLimit: *mem, QueryTimeout: *timeout}
		if *walDir != "" {
			cfg.WALDir = *walDir
			cfg.WALFsync = *walFsync
			cfg.WALFsyncInterval = *walFsyncIv
			cfg.CheckpointEvery = *walEvery
			var info *grfusion.RecoveryInfo
			var err error
			db, info, err = grfusion.OpenDurable(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "grfusion: recovery: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("durable session in %s: %s\n", *walDir, info)
		} else {
			db = grfusion.Open(cfg)
		}
		exec = db
	}
	if *restore != "" && db == nil {
		fmt.Fprintln(os.Stderr, "grfusion: -restore requires embedded mode")
		os.Exit(1)
	}
	if db != nil && *restore != "" {
		if err := restoreFile(db, *restore); err != nil {
			fmt.Fprintf(os.Stderr, "grfusion: %v\n", err)
			os.Exit(1)
		}
	}
	if *script != "" {
		if db == nil {
			fmt.Fprintln(os.Stderr, "grfusion: -script requires embedded mode")
			os.Exit(1)
		}
		if err := runScript(db, *script); err != nil {
			fmt.Fprintf(os.Stderr, "grfusion: %v\n", err)
			os.Exit(1)
		}
	}

	runShell(db, exec, os.Stdin, os.Stdout)
	if db != nil && db.Engine().Durable() {
		if err := db.Shutdown(); err != nil {
			fmt.Fprintf(os.Stderr, "grfusion: shutdown checkpoint: %v\n", err)
			os.Exit(1)
		}
	}
}

// runShell drives the read-eval-print loop. It is split from main (and
// parameterized over in/out) so scripted sessions can be tested.
func runShell(db *grfusion.DB, exec executor, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, "GRFusion shell — graph-relational SQL. End statements with ';', \\q quits.")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(out, "grfusion> ")
		} else {
			fmt.Fprint(out, "      ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if handleMeta(out, db, exec, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			execute(out, exec, buf.String())
			buf.Reset()
		}
		prompt()
	}
}

// handleMeta executes a backslash command, reporting whether to quit.
// Snapshot/script/explain commands require embedded mode (db non-nil);
// \health works in both modes.
func handleMeta(out io.Writer, db *grfusion.DB, exec executor, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\health":
	default:
		if db == nil {
			fmt.Fprintln(out, "command", fields[0], "requires embedded mode (no -connect)")
			return false
		}
	}
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\health":
		printHealth(out, exec)
	case "\\explain":
		text, err := db.Explain(strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain")))
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprint(out, text)
	case "\\save":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: \\save <file>")
			return false
		}
		if err := saveSnapshot(db, fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "snapshot written to", fields[1])
		}
	case "\\load":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: \\load <file>")
			return false
		}
		if err := restoreFile(db, fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "snapshot restored from", fields[1])
		}
	case "\\i":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: \\i <file>")
			return false
		}
		if err := runScript(db, fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case "\\checkpoint":
		if err := db.Checkpoint(); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "checkpoint written, wal truncated")
		}
	default:
		fmt.Fprintln(out, "unknown command", fields[0], "(try \\q, \\explain, \\save, \\load, \\i, \\checkpoint, \\health)")
	}
	return false
}

// printHealth renders the durability health. In remote mode it uses the
// wire health command, which bypasses admission control and so answers
// even while the server sheds load or rejects writes as degraded.
func printHealth(out io.Writer, exec executor) {
	if re, ok := exec.(remoteExec); ok {
		h, err := re.c.Health()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		names := make([]string, 0, len(h))
		for name := range h {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(out, " %-16s %s\n", name, h[name])
		}
		return
	}
	execute(out, exec, "SHOW HEALTH;")
}

// saveSnapshot writes a snapshot with the WAL's atomic-file protocol —
// temp file, fsync, rename — so an interrupted \save can never tear an
// existing snapshot: the destination holds either the old bytes or the
// complete new ones.
func saveSnapshot(db *grfusion.DB, path string) error {
	return wal.WriteFileAtomic(path, db.Snapshot)
}

func restoreFile(db *grfusion.DB, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Restore(f)
}

func runScript(db *grfusion.DB, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return db.ExecScript(string(data))
}

func execute(out io.Writer, exec executor, stmt string) {
	start := time.Now()
	res, err := exec.Exec(stmt)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	if res.Columns == nil {
		fmt.Fprintf(out, "ok (%d row(s) affected, %s)\n", res.Affected, elapsed)
		return
	}
	printTable(out, res)
	fmt.Fprintf(out, "(%d row(s), %s)\n", len(res.Rows), elapsed)
}

func printTable(out io.Writer, res *grfusion.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.String()
			cells[r][c] = s
			if c < len(widths) && len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			fmt.Fprintf(out, " %-*s", widths[i], p)
			if i < len(parts)-1 {
				fmt.Fprint(out, " |")
			}
		}
		fmt.Fprintln(out)
	}
	line(res.Columns)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, row := range cells {
		line(row)
	}
}
