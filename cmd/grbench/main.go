// Command grbench runs the paper-reproduction experiments and prints the
// rows/series each table and figure of the evaluation reports.
//
// Usage:
//
//	grbench -list
//	grbench -exp fig7 -scale 1.0 -queries 10
//	grbench -exp all -scale 0.5
//	grbench -experiment oracle -seed 42 -duration 30s
//	grbench -experiment recovery -seed 42 -duration 30s
//
// The oracle experiment runs the differential/metamorphic correctness
// harness (internal/oracle) instead of a benchmark: randomized DML + PATHS
// workloads cross-checked against independent reference implementations.
// On failure it writes ORACLE_repro.sql, prints a one-line repro command,
// and exits 1. The recovery experiment is the crash-recovery variant:
// every workload batch runs on a durable engine that is killed and
// recovered from its WAL before the cross-checks run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"grfusion/internal/bench"
	"grfusion/internal/oracle"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table2, fig7, fig8, fig9, fig10, table3, fig11, ablation, concurrency, observability, csr, analytics, durability, oracle, recovery, all)")
		expAlias = flag.String("experiment", "", "alias for -exp")
		scale    = flag.Float64("scale", 1.0, "dataset scale multiplier")
		queries  = flag.Int("queries", 10, "query instances averaged per data point")
		seed     = flag.Int64("seed", 42, "generator seed")
		hops     = flag.Int("maxhops", 8, "deepest traversal attempted by the SQLGraph baseline")
		mem      = flag.Int64("mem", 0, "intermediate-memory budget for VoltDB-style runs (bytes, 0 = default)")
		duration = flag.Duration("duration", 0, "oracle: wall-clock budget (0 = use -rounds)")
		rounds   = flag.Int("rounds", 0, "oracle: exact round count (0 = run until -duration)")
		workers  = flag.Int("workers", 2, "oracle: engine worker-pool size")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.String("json", "", "also write rows with run metadata to this JSON file (e.g. BENCH_concurrency.json)")
		baseline = flag.String("baseline", "", "csr/analytics/concurrency: regression-gate this run against a committed baseline JSON (exit 1 on >10% speedup loss, steady-state allocations, or a storm read-p99 ratio past the MVCC ceiling)")
	)
	flag.Parse()
	if *expAlias != "" {
		*exp = *expAlias
	}

	if *list {
		ids := make([]string, 0, len(bench.Experiments))
		for id := range bench.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println("experiments:", strings.Join(ids, ", "), "(or: all, oracle)")
		return
	}

	if *exp == "oracle" || *exp == "recovery" {
		os.Exit(runOracle(*exp, *seed, *rounds, *duration, *workers))
	}

	cfg := bench.Config{
		Scale:       *scale,
		Queries:     *queries,
		Seed:        *seed,
		MaxJoinHops: *hops,
		MemLimit:    *mem,
	}
	start := time.Now()
	var rows []bench.Row
	if *exp == "all" {
		rows = bench.All(cfg)
	} else {
		fn, ok := bench.Experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "grbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		rows = fn(cfg)
	}
	fmt.Print(bench.Format(rows))
	fmt.Printf("\n%d data points in %s (scale=%g, queries=%d, seed=%d)\n",
		len(rows), time.Since(start).Round(time.Millisecond), *scale, *queries, *seed)
	if *jsonOut != "" {
		if err := bench.WriteJSONFile(*jsonOut, *exp, cfg, rows); err != nil {
			fmt.Fprintf(os.Stderr, "grbench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *baseline != "" {
		check := bench.CheckCSRBaseline
		switch *exp {
		case "analytics":
			check = bench.CheckAnalyticsBaseline
		case "concurrency":
			check = bench.CheckConcurrencyBaseline
		case "wire":
			check = bench.CheckWireBaseline
		}
		if err := check(*baseline, rows, 0.10); err != nil {
			fmt.Fprintf(os.Stderr, "grbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s gate: no regression vs %s\n", *exp, *baseline)
	}
}

// runOracle drives the correctness harness (mode "oracle" for the live
// differential battery, "recovery" for the kill-and-recover variant) and
// returns the process exit code: 0 when every check passed, 1 when a
// violation was found.
func runOracle(mode string, seed int64, rounds int, duration time.Duration, workers int) int {
	if rounds == 0 && duration == 0 {
		duration = 5 * time.Second
	}
	cfg := oracle.Config{
		Seed:     seed,
		Rounds:   rounds,
		Duration: duration,
		Workers:  workers,
		Log:      os.Stderr,
	}
	run := oracle.Run
	unit := "check batches"
	if mode == "recovery" {
		run = oracle.RunRecovery
		unit = "kill/recover cycles"
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grbench %s: %v\n", mode, err)
		return 2
	}
	fmt.Printf("%s: %d rounds, %d statements, %d %s in %s\n",
		mode, rep.Rounds, rep.Statements, rep.Batches, unit, rep.Elapsed.Round(time.Millisecond))
	if len(rep.Violations) == 0 {
		fmt.Printf("%s: 0 violations\n", mode)
		return 0
	}
	v := rep.Violations[0]
	fmt.Printf("%s: VIOLATION %s\n", mode, v)
	if err := writeRepro("ORACLE_repro.sql", mode, v); err != nil {
		fmt.Fprintf(os.Stderr, "grbench %s: write repro: %v\n", mode, err)
	} else {
		fmt.Printf("%s: wrote ORACLE_repro.sql\n", mode)
	}
	fmt.Printf("REPRO: go run ./cmd/grbench -experiment %s -seed %d -rounds 1\n", mode, v.Seed)
	return 1
}

// writeRepro renders a violation as a self-contained SQL script: a comment
// header with the diagnosis and repro command, the scenario setup, and the
// minimized statement log (falling back to the full log).
func writeRepro(path, mode string, v *oracle.Violation) error {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s violation: %s\n", mode, v.Check)
	fmt.Fprintf(&b, "-- detail: %s\n", v.Detail)
	fmt.Fprintf(&b, "-- round seed: %d (batch %d)\n", v.Seed, v.Batch)
	fmt.Fprintf(&b, "-- repro: go run ./cmd/grbench -experiment %s -seed %d -rounds 1\n", mode, v.Seed)
	b.WriteString("\n-- setup\n")
	for _, s := range v.SetupSQL {
		b.WriteString(s)
		b.WriteString(";\n")
	}
	stmts := v.Minimized
	if len(stmts) == 0 {
		stmts = v.Statements
	}
	fmt.Fprintf(&b, "\n-- workload (%d of %d recorded statements)\n", len(stmts), len(v.Statements))
	for _, s := range stmts {
		b.WriteString(s)
		b.WriteString(";\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
