// Command grbench runs the paper-reproduction experiments and prints the
// rows/series each table and figure of the evaluation reports.
//
// Usage:
//
//	grbench -list
//	grbench -exp fig7 -scale 1.0 -queries 10
//	grbench -exp all -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"grfusion/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table2, fig7, fig8, fig9, fig10, table3, fig11, ablation, concurrency, all)")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier")
		queries = flag.Int("queries", 10, "query instances averaged per data point")
		seed    = flag.Int64("seed", 42, "generator seed")
		hops    = flag.Int("maxhops", 8, "deepest traversal attempted by the SQLGraph baseline")
		mem     = flag.Int64("mem", 0, "intermediate-memory budget for VoltDB-style runs (bytes, 0 = default)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.String("json", "", "also write rows with run metadata to this JSON file (e.g. BENCH_concurrency.json)")
	)
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(bench.Experiments))
		for id := range bench.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println("experiments:", strings.Join(ids, ", "), "(or: all)")
		return
	}
	cfg := bench.Config{
		Scale:       *scale,
		Queries:     *queries,
		Seed:        *seed,
		MaxJoinHops: *hops,
		MemLimit:    *mem,
	}
	start := time.Now()
	var rows []bench.Row
	if *exp == "all" {
		rows = bench.All(cfg)
	} else {
		fn, ok := bench.Experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "grbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		rows = fn(cfg)
	}
	fmt.Print(bench.Format(rows))
	fmt.Printf("\n%d data points in %s (scale=%g, queries=%d, seed=%d)\n",
		len(rows), time.Since(start).Round(time.Millisecond), *scale, *queries, *seed)
	if *jsonOut != "" {
		if err := bench.WriteJSONFile(*jsonOut, *exp, cfg, rows); err != nil {
			fmt.Fprintf(os.Stderr, "grbench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
