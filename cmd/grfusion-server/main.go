// Command grfusion-server serves a GRFusion database over TCP with the
// newline-delimited JSON protocol of internal/server (connect with
// `grfusion -connect addr`).
//
// Usage:
//
//	grfusion-server [-addr 127.0.0.1:21212] [-restore snap.gob] [-script init.sql]
//	                [-mem bytes] [-stats 30s] [-workers N]
//	                [-query-timeout 0] [-max-concurrent 0] [-idle-timeout 0]
//	                [-drain-timeout 10s] [-slow-query 0]
//	                [-metrics-addr 127.0.0.1:21213]
//	                [-wal dir] [-wal-fsync always|interval|off]
//	                [-wal-fsync-interval 50ms] [-checkpoint-every N]
//	                [-wal-soft-free bytes] [-wal-hard-free bytes]
//	                [-heal-base 25ms] [-heal-max 2s]
//
// -metrics-addr serves the observability endpoint over HTTP: /metrics is
// the flat JSON form of SHOW METRICS, /debug/vars the expvar view,
// /healthz the durability health (always 200), /readyz the write
// readiness (503 while the engine is degraded to read-only).
// -slow-query arms the engine's slow-query log at the given threshold.
//
// -wal makes the server durable: every mutating statement is logged to a
// write-ahead log in the directory before it applies, checkpoints bound
// recovery time, and startup recovers whatever a previous process
// (crashed or not) left there.
//
// -wal-soft-free and -wal-hard-free are disk-space watermarks: free space
// under the soft mark forces a checkpoint + WAL truncation to give space
// back; under the hard mark the server degrades to read-only (reads,
// EXPLAIN, SHOW and the health surface keep serving; writes fail fast
// with a typed degraded error) and a background prober with capped
// exponential backoff (-heal-base/-heal-max) restores read-write once the
// disk recovers.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight statements finish
// and flush their responses, bounded by -drain-timeout; a durable server
// then takes a final checkpoint, so the next start replays no WAL.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"grfusion/internal/core"
	"grfusion/internal/server"
	"grfusion/internal/wal"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:21212", "listen address")
		restore = flag.String("restore", "", "restore a snapshot before serving")
		script  = flag.String("script", "", "run a SQL script before serving")
		mem     = flag.Int64("mem", 0, "intermediate-memory budget per statement (bytes)")
		stats   = flag.Duration("stats", 0, "graph-view statistics refresh interval (0 = disabled)")
		workers = flag.Int("workers", 0, "traversal worker pool per multi-source path query (<=1 = sequential)")

		queryTimeout  = flag.Duration("query-timeout", 0, "per-statement execution deadline (0 = none; SET QUERY_TIMEOUT adjusts at runtime)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max statements executing at once; excess requests are shed with a retryable error (0 = unlimited)")
		idleTimeout   = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		writeTimeout  = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 0, "graceful-shutdown drain bound (0 = 10s default, negative = unbounded)")

		slowQuery   = flag.Duration("slow-query", 0, "log statements slower than this (0 = disabled; SET SLOW_QUERY adjusts at runtime)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/vars (expvar) over HTTP on this address (empty = disabled)")

		walDir     = flag.String("wal", "", "durable server: write-ahead log + checkpoints in this directory, recovering its contents on startup")
		walFsync   = flag.String("wal-fsync", "always", "WAL fsync policy: always, interval, or off (SET WAL_FSYNC adjusts at runtime)")
		walFsyncIv = flag.Duration("wal-fsync-interval", 0, "background sync period under -wal-fsync interval (0 = 50ms default)")
		walEvery   = flag.Int("checkpoint-every", 0, "automatic checkpoint after N logged statements (0 = default, negative = manual only; SET CHECKPOINT_EVERY adjusts at runtime)")

		walSoftFree = flag.Int64("wal-soft-free", 0, "soft disk-space watermark in bytes: force a checkpoint + WAL truncation when free space drops below it (0 = disabled)")
		walHardFree = flag.Int64("wal-hard-free", 0, "hard disk-space watermark in bytes: degrade to read-only when free space drops below it (0 = disabled)")
		healBase    = flag.Duration("heal-base", 0, "first self-heal probe backoff after degrading (0 = 25ms default)")
		healMax     = flag.Duration("heal-max", 0, "self-heal probe backoff cap (0 = 2s default)")
	)
	flag.Parse()

	opts := core.Options{
		MemLimit:     *mem,
		Workers:      *workers,
		QueryTimeout: *queryTimeout,
		SlowQuery:    *slowQuery,
	}
	if *walDir != "" {
		if *restore != "" {
			fatal(fmt.Errorf("-restore and -wal are mutually exclusive (a durable server recovers from its WAL directory)"))
		}
		policy, err := wal.ParseFsyncPolicy(*walFsync)
		if err != nil {
			fatal(err)
		}
		opts.Durability = core.Durability{
			Dir:             *walDir,
			Fsync:           policy,
			FsyncInterval:   *walFsyncIv,
			CheckpointEvery: *walEvery,
			SoftFreeBytes:   *walSoftFree,
			HardFreeBytes:   *walHardFree,
			HealBase:        *healBase,
			HealMax:         *healMax,
		}
	}
	eng, recovery, err := core.Open(opts)
	if err != nil {
		fatal(err)
	}
	if recovery != nil {
		fmt.Fprintf(os.Stderr, "grfusion-server: durable in %s: %s\n", *walDir, recovery)
	}
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		err = eng.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: restored %s\n", *restore)
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if _, err := eng.ExecuteScript(string(data)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: ran %s\n", *script)
	}
	if *stats > 0 {
		eng.StartStatistics(*stats)
		defer eng.Close()
	}
	srv := server.NewWith(eng, server.Config{
		MaxConcurrent: *maxConcurrent,
		IdleTimeout:   *idleTimeout,
		WriteTimeout:  *writeTimeout,
		DrainTimeout:  *drainTimeout,
	})

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, server.MetricsMux(eng)); err != nil {
				fmt.Fprintf(os.Stderr, "grfusion-server: metrics endpoint: %v\n", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "grfusion-server: %v: draining and shutting down\n", s)
		srv.Shutdown()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "grfusion-server: listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	<-done
	if eng.Durable() {
		// All statements have drained; take the final checkpoint so the
		// next start replays nothing.
		if err := eng.Shutdown(); err != nil {
			fatal(fmt.Errorf("shutdown checkpoint: %w", err))
		}
		fmt.Fprintln(os.Stderr, "grfusion-server: final checkpoint written")
	}
	fmt.Fprintln(os.Stderr, "grfusion-server: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grfusion-server: %v\n", err)
	os.Exit(1)
}
