// Command grfusion-server serves a GRFusion database over TCP with the
// newline-delimited JSON protocol of internal/server (connect with
// `grfusion -connect addr`).
//
// Usage:
//
//	grfusion-server [-addr 127.0.0.1:21212] [-restore snap.gob] [-script init.sql] [-mem bytes] [-stats 30s] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"grfusion/internal/core"
	"grfusion/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:21212", "listen address")
		restore = flag.String("restore", "", "restore a snapshot before serving")
		script  = flag.String("script", "", "run a SQL script before serving")
		mem     = flag.Int64("mem", 0, "intermediate-memory budget per statement (bytes)")
		stats   = flag.Duration("stats", 0, "graph-view statistics refresh interval (0 = disabled)")
		workers = flag.Int("workers", 0, "traversal worker pool per multi-source path query (<=1 = sequential)")
	)
	flag.Parse()

	eng := core.New(core.Options{MemLimit: *mem, Workers: *workers})
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		err = eng.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: restored %s\n", *restore)
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if _, err := eng.ExecuteScript(string(data)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: ran %s\n", *script)
	}
	if *stats > 0 {
		eng.StartStatistics(*stats)
		defer eng.Close()
	}
	srv := server.New(eng)
	fmt.Fprintf(os.Stderr, "grfusion-server: listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grfusion-server: %v\n", err)
	os.Exit(1)
}
