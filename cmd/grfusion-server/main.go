// Command grfusion-server serves a GRFusion database over TCP with the
// newline-delimited JSON protocol of internal/server (connect with
// `grfusion -connect addr`).
//
// Usage:
//
//	grfusion-server [-addr 127.0.0.1:21212] [-restore snap.gob] [-script init.sql]
//	                [-mem bytes] [-stats 30s] [-workers N]
//	                [-query-timeout 0] [-max-concurrent 0] [-idle-timeout 0]
//	                [-drain-timeout 10s] [-slow-query 0]
//	                [-metrics-addr 127.0.0.1:21213]
//
// -metrics-addr serves the observability endpoint over HTTP: /metrics is
// the flat JSON form of SHOW METRICS, /debug/vars the expvar view.
// -slow-query arms the engine's slow-query log at the given threshold.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight statements finish
// and flush their responses, bounded by -drain-timeout.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"grfusion/internal/core"
	"grfusion/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:21212", "listen address")
		restore = flag.String("restore", "", "restore a snapshot before serving")
		script  = flag.String("script", "", "run a SQL script before serving")
		mem     = flag.Int64("mem", 0, "intermediate-memory budget per statement (bytes)")
		stats   = flag.Duration("stats", 0, "graph-view statistics refresh interval (0 = disabled)")
		workers = flag.Int("workers", 0, "traversal worker pool per multi-source path query (<=1 = sequential)")

		queryTimeout  = flag.Duration("query-timeout", 0, "per-statement execution deadline (0 = none; SET QUERY_TIMEOUT adjusts at runtime)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max statements executing at once; excess requests are shed with a retryable error (0 = unlimited)")
		idleTimeout   = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		writeTimeout  = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 0, "graceful-shutdown drain bound (0 = 10s default, negative = unbounded)")

		slowQuery   = flag.Duration("slow-query", 0, "log statements slower than this (0 = disabled; SET SLOW_QUERY adjusts at runtime)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/vars (expvar) over HTTP on this address (empty = disabled)")
	)
	flag.Parse()

	eng := core.New(core.Options{
		MemLimit:     *mem,
		Workers:      *workers,
		QueryTimeout: *queryTimeout,
		SlowQuery:    *slowQuery,
	})
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		err = eng.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: restored %s\n", *restore)
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if _, err := eng.ExecuteScript(string(data)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: ran %s\n", *script)
	}
	if *stats > 0 {
		eng.StartStatistics(*stats)
		defer eng.Close()
	}
	srv := server.NewWith(eng, server.Config{
		MaxConcurrent: *maxConcurrent,
		IdleTimeout:   *idleTimeout,
		WriteTimeout:  *writeTimeout,
		DrainTimeout:  *drainTimeout,
	})

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grfusion-server: metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, server.MetricsMux(eng)); err != nil {
				fmt.Fprintf(os.Stderr, "grfusion-server: metrics endpoint: %v\n", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "grfusion-server: %v: draining and shutting down\n", s)
		srv.Shutdown()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "grfusion-server: listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	<-done
	fmt.Fprintln(os.Stderr, "grfusion-server: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grfusion-server: %v\n", err)
	os.Exit(1)
}
