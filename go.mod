module grfusion

go 1.22
