// Package grfusion is an embeddable in-memory relational database engine
// with native graph support — a from-scratch Go reproduction of
// "Extending In-Memory Relational Database Engines with Native Graph
// Support" (Hassan, Kuznetsova, Jeong, Aref, Sadoghi — EDBT 2018).
//
// The engine speaks a SQL dialect extended with the paper's graph
// constructs: CREATE GRAPH VIEW materializes a native adjacency-list
// topology over relational sources (attributes stay relational, reached
// through tuple pointers), and queries traverse it with the PATHS /
// VERTEXES / EDGES constructs, mixing graph operators and relational
// operators in one query execution pipeline:
//
//	db := grfusion.Open(grfusion.Config{})
//	db.MustExec(`CREATE TABLE Users (uid BIGINT PRIMARY KEY, name VARCHAR)`)
//	db.MustExec(`CREATE TABLE Friends (fid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`)
//	// ... INSERT data ...
//	db.MustExec(`CREATE UNDIRECTED GRAPH VIEW Social
//	    VERTEXES(ID = uid, name = name) FROM Users
//	    EDGES(ID = fid, FROM = a, TO = b) FROM Friends`)
//	res, err := db.Query(`
//	    SELECT PS.EndVertex.name FROM Users U, Social.Paths PS
//	    WHERE U.name = 'ann' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`)
//
// Graph views stay consistent under DML: inserts, updates, and deletes on
// the relational sources maintain the topology inside the same statement.
package grfusion

import (
	"context"
	"fmt"
	"io"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/plan"
	"grfusion/internal/types"
	"grfusion/internal/wal"
)

// Value is one SQL value in a result row.
type Value = types.Value

// Row is one result tuple.
type Row = types.Row

// Kind identifies a Value's runtime type.
type Kind = types.Kind

// Value kinds.
const (
	KindNull   = types.KindNull
	KindBool   = types.KindBool
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindVertex = types.KindVertex
	KindEdge   = types.KindEdge
	KindPath   = types.KindPath
)

// Config tunes an engine instance. The zero value is a good default.
type Config struct {
	// MemLimit bounds the intermediate-result memory of a single statement
	// in bytes (hash tables, sort buffers, materialized join inputs).
	// Zero means unlimited.
	MemLimit int64
	// DisablePushdown turns off pushing path predicates into traversals
	// (§6.2 of the paper); used by the paper's ablation experiments.
	DisablePushdown bool
	// DisableLengthInference turns off path-length inference (§6.1).
	DisableLengthInference bool
	// ForceTraversal overrides physical traversal selection for unhinted
	// path scans: "bfs", "dfs", or "" for the cost-based rule (§6.3).
	ForceTraversal string
	// StatsInterval enables the background graph-view statistics refresher
	// (§6.3 of the paper) with the given period; zero disables it. Call
	// Close to stop the refresher.
	StatsInterval time.Duration
	// QueryTimeout bounds each statement's wall clock; statements that
	// exceed it abort with ErrTimeout. Zero disables it. Adjustable at
	// runtime with SET QUERY_TIMEOUT = <milliseconds>.
	QueryTimeout time.Duration

	// WALDir enables durability: mutating statements are logged to a
	// write-ahead log in this directory before they apply, and periodic
	// checkpoints bound recovery time. A database opened on a non-empty
	// WALDir recovers its state from the latest checkpoint plus the WAL
	// tail. Requires OpenDurable; Open rejects a Config with WALDir set.
	WALDir string
	// WALFsync selects the log's fsync policy: "always" (default — every
	// logged statement is synced before it applies), "interval"
	// (background sync every WALFsyncInterval), or "off" (the OS decides).
	// Adjustable at runtime with SET WAL_FSYNC = <policy>.
	WALFsync string
	// WALFsyncInterval is the background sync period under the "interval"
	// policy (default 50ms).
	WALFsyncInterval time.Duration
	// CheckpointEvery takes an automatic checkpoint after this many logged
	// statements (0 = engine default, negative = only explicit
	// checkpoints). Adjustable with SET CHECKPOINT_EVERY = <n>.
	CheckpointEvery int

	// WALSoftFreeBytes / WALHardFreeBytes are disk-space watermarks checked
	// on the WAL append path of a durable database. Free space under the
	// soft mark forces a checkpoint + WAL truncation to give space back;
	// under the hard mark the database degrades to read-only (writes fail
	// fast with ErrDegraded, reads keep serving) until the background
	// prober heals it. Zero disables a watermark.
	WALSoftFreeBytes int64
	WALHardFreeBytes int64
	// HealBase / HealMax bound the self-healing probe's capped exponential
	// backoff after the database degrades (defaults 25ms / 2s).
	HealBase time.Duration
	HealMax  time.Duration
}

// RecoveryInfo describes what OpenDurable recovered from disk.
type RecoveryInfo = core.RecoveryInfo

// Typed lifecycle errors, matchable with errors.Is on any statement error.
var (
	// ErrTimeout reports a statement that exceeded its deadline.
	ErrTimeout = core.ErrTimeout
	// ErrCanceled reports a statement aborted by context cancellation.
	ErrCanceled = core.ErrCanceled
	// ErrMemLimit reports the per-statement intermediate-memory limit.
	ErrMemLimit = core.ErrMemLimit
	// ErrQueryPanic reports a statement aborted by a recovered panic.
	ErrQueryPanic = core.ErrQueryPanic
	// ErrDegraded reports a mutating statement rejected because the durable
	// database is in degraded read-only mode (broken WAL or disk-space hard
	// watermark). It is terminal, not retryable: the self-healing prober
	// restores read-write in the background, and reads keep serving in the
	// meantime. Distinct from admission-control shedding.
	ErrDegraded = core.ErrDegraded
)

// Health describes a durable database's durability state: healthy,
// degraded (read-only), or healing. See DB.Health.
type Health = core.Health

// Durability health states, compared against Health.State.
const (
	StateHealthy  = core.StateHealthy
	StateDegraded = core.StateDegraded
	StateHealing  = core.StateHealing
)

// DB is one in-memory database instance. It is safe for concurrent use;
// statements execute serially (the VoltDB execution model).
type DB struct {
	engine   *core.Engine
	recovery *RecoveryInfo
}

func options(cfg Config) (core.Options, error) {
	opts := core.Options{
		MemLimit:     cfg.MemLimit,
		QueryTimeout: cfg.QueryTimeout,
		Plan: plan.Options{
			DisablePushdown:        cfg.DisablePushdown,
			DisableLengthInference: cfg.DisableLengthInference,
			ForceTraversal:         cfg.ForceTraversal,
		},
	}
	opts.Durability.Dir = cfg.WALDir
	opts.Durability.FsyncInterval = cfg.WALFsyncInterval
	opts.Durability.CheckpointEvery = cfg.CheckpointEvery
	opts.Durability.SoftFreeBytes = cfg.WALSoftFreeBytes
	opts.Durability.HardFreeBytes = cfg.WALHardFreeBytes
	opts.Durability.HealBase = cfg.HealBase
	opts.Durability.HealMax = cfg.HealMax
	if cfg.WALFsync != "" {
		p, err := wal.ParseFsyncPolicy(cfg.WALFsync)
		if err != nil {
			return opts, err
		}
		opts.Durability.Fsync = p
	}
	return opts, nil
}

// Open creates a new, empty, purely in-memory database. For a durable
// database (Config.WALDir set) use OpenDurable, which can fail and
// reports what it recovered; Open panics on a durable Config so the two
// modes cannot be mixed up silently.
func Open(cfg Config) *DB {
	if cfg.WALDir != "" {
		panic("grfusion: Config.WALDir is set — use OpenDurable for a durable database")
	}
	opts, err := options(cfg)
	if err != nil {
		panic("grfusion: " + err.Error())
	}
	db := &DB{engine: core.New(opts)}
	if cfg.StatsInterval > 0 {
		db.engine.StartStatistics(cfg.StatsInterval)
	}
	return db
}

// OpenDurable opens a database backed by a write-ahead log in
// cfg.WALDir, recovering any state a previous process left there: it
// loads the latest checkpoint, replays the WAL tail (truncating a torn
// final record), and rebuilds graph views from the recovered relations.
// The returned RecoveryInfo says what was recovered; it is nil when
// cfg.WALDir is empty (a plain in-memory database).
//
// Stop a durable database with Shutdown (final checkpoint) or Close
// (WAL synced and closed; recovery replays the tail on next open).
func OpenDurable(cfg Config) (*DB, *RecoveryInfo, error) {
	opts, err := options(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng, info, err := core.Open(opts)
	if err != nil {
		return nil, nil, err
	}
	db := &DB{engine: eng, recovery: info}
	if cfg.StatsInterval > 0 {
		db.engine.StartStatistics(cfg.StatsInterval)
	}
	return db, info, nil
}

// Recovery returns what OpenDurable recovered, nil for an in-memory
// database.
func (db *DB) Recovery() *RecoveryInfo { return db.recovery }

// Checkpoint writes a durable snapshot (temp file, fsync, atomic rename)
// and truncates the WAL. It fails on a non-durable database.
func (db *DB) Checkpoint() error { return db.engine.Checkpoint() }

// Health reports the durability health without taking the engine's
// statement lock, so it answers even while a write is stuck on a sick
// disk. A non-durable database is always healthy (and never "ready" in
// the durable sense — Health.Durable is false).
func (db *DB) Health() Health { return db.engine.Health() }

// Shutdown gracefully stops a durable database: final checkpoint, WAL
// close. On an in-memory database it is Close.
func (db *DB) Shutdown() error { return db.engine.Shutdown() }

// Close stops background work (the statistics refresher) and, on a
// durable database, syncs and closes the WAL without a final checkpoint.
// An in-memory database remains usable afterwards; a durable one keeps
// serving reads but rejects further mutations.
func (db *DB) Close() { db.engine.Close() }

// Result holds the outcome of one statement.
type Result struct {
	// Columns names the result columns (empty for DDL/DML).
	Columns []string
	// Rows holds the result tuples of a query.
	Rows []Row
	// Affected counts rows touched by DML.
	Affected int
}

func wrap(r *core.Result) *Result {
	if r == nil {
		return nil
	}
	return &Result{Columns: r.Columns, Rows: r.Rows, Affected: r.Affected}
}

// Exec runs a single SQL statement (DDL, DML, or query).
func (db *DB) Exec(query string) (*Result, error) {
	r, err := db.engine.Execute(query)
	return wrap(r), err
}

// ExecContext is Exec under a cancellation context: ctx's deadline or
// cancellation aborts the statement with ErrTimeout/ErrCanceled.
func (db *DB) ExecContext(ctx context.Context, query string) (*Result, error) {
	r, err := db.engine.ExecuteContext(ctx, query)
	return wrap(r), err
}

// MustExec runs a statement and panics on error; intended for setup code
// and examples.
func (db *DB) MustExec(query string) *Result {
	r, err := db.Exec(query)
	if err != nil {
		panic(fmt.Sprintf("grfusion: %v", err))
	}
	return r
}

// Query is Exec with the intent of reading rows; it errors when the
// statement produces no result set.
func (db *DB) Query(query string) (*Result, error) {
	r, err := db.Exec(query)
	if err != nil {
		return nil, err
	}
	if r.Columns == nil {
		return nil, fmt.Errorf("statement returned no rows: %s", query)
	}
	return r, nil
}

// QueryScalar runs a query expected to return exactly one value.
func (db *DB) QueryScalar(query string) (Value, error) {
	r, err := db.Query(query)
	if err != nil {
		return types.Null(), err
	}
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return types.Null(), fmt.Errorf("expected a single value, got %d row(s)", len(r.Rows))
	}
	return r.Rows[0][0], nil
}

// ExecScript runs a semicolon-separated script, stopping at the first
// error.
func (db *DB) ExecScript(script string) error {
	_, err := db.engine.ExecuteScript(script)
	return err
}

// Explain renders the physical query execution pipeline of a SELECT.
func (db *DB) Explain(query string) (string, error) { return db.engine.Explain(query) }

// Snapshot serializes the whole database (schema, rows, indexes, and graph
// view definitions) to w. Topologies are derived state and are rebuilt on
// Restore.
func (db *DB) Snapshot(w io.Writer) error { return db.engine.Snapshot(w) }

// Restore loads a Snapshot into an empty database.
func (db *DB) Restore(r io.Reader) error { return db.engine.Restore(r) }

// Engine exposes the underlying engine for advanced integrations (the
// benchmark harness uses it to toggle planner options between runs).
func (db *DB) Engine() *core.Engine { return db.engine }

// Stmt is a prepared, parameterized SELECT: parsed and planned once,
// executed many times with different `?` values — the VoltDB
// stored-procedure execution model the paper's system inherits. A Stmt is
// invalidated by DDL that drops objects its plan uses.
type Stmt struct {
	p *core.Prepared
}

// Prepare compiles a SELECT containing `?` placeholders.
func (db *DB) Prepare(query string) (*Stmt, error) {
	p, err := db.engine.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.p.NumParams() }

// Query executes the prepared plan. Arguments may be Go ints, floats,
// strings, bools, nil, or Values.
func (s *Stmt) Query(args ...any) (*Result, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query under a cancellation context.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Result, error) {
	params := make([]Value, len(args))
	for i, a := range args {
		v, err := ToValue(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %v", i+1, err)
		}
		params[i] = v
	}
	r, err := s.p.QueryContext(ctx, params...)
	return wrap(r), err
}

// DMLStmt is a prepared, parameterized INSERT/UPDATE/DELETE.
type DMLStmt struct {
	p *core.PreparedDML
}

// PrepareDML parses an INSERT, UPDATE or DELETE containing `?`
// placeholders for repeated execution.
func (db *DB) PrepareDML(query string) (*DMLStmt, error) {
	p, err := db.engine.PrepareDML(query)
	if err != nil {
		return nil, err
	}
	return &DMLStmt{p: p}, nil
}

// NumParams returns the number of `?` placeholders.
func (s *DMLStmt) NumParams() int { return s.p.NumParams() }

// Exec runs the prepared DML with the given arguments.
func (s *DMLStmt) Exec(args ...any) (*Result, error) {
	params := make([]Value, len(args))
	for i, a := range args {
		v, err := ToValue(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %v", i+1, err)
		}
		params[i] = v
	}
	r, err := s.p.Exec(params...)
	return wrap(r), err
}

// ToValue converts a Go value into an engine Value.
func ToValue(a any) (Value, error) {
	switch v := a.(type) {
	case nil:
		return types.Null(), nil
	case Value:
		return v, nil
	case bool:
		return types.NewBool(v), nil
	case int:
		return types.NewInt(int64(v)), nil
	case int32:
		return types.NewInt(int64(v)), nil
	case int64:
		return types.NewInt(v), nil
	case float32:
		return types.NewFloat(float64(v)), nil
	case float64:
		return types.NewFloat(v), nil
	case string:
		return types.NewString(v), nil
	default:
		return types.Null(), fmt.Errorf("unsupported parameter type %T", a)
	}
}
