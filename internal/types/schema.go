package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation (or of the extended
// Vertex/Edge/Path tuple types of §5.2).
type Column struct {
	// Qualifier is the table name or range-variable alias the column is
	// visible under in a query pipeline; empty for anonymous columns.
	Qualifier string
	// Name is the attribute name.
	Name string
	// Type is the declared kind of the column's values.
	Type Kind
}

// QualifiedName renders the column as qualifier.name.
func (c Column) QualifiedName() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Schema is an ordered list of columns describing the tuples an operator
// produces. Column-name resolution is case-insensitive, as in VoltDB.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from the given columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// WithQualifier returns a copy of s with every column requalified, used
// when a table is given a range-variable alias in a FROM clause.
func (s *Schema) WithQualifier(q string) *Schema {
	out := &Schema{Columns: make([]Column, len(s.Columns))}
	for i, c := range s.Columns {
		c.Qualifier = q
		out.Columns[i] = c
	}
	return out
}

// Concat returns the schema of the concatenation of tuples of s then t
// (the output of a join).
func (s *Schema) Concat(t *Schema) *Schema {
	out := &Schema{Columns: make([]Column, 0, len(s.Columns)+len(t.Columns))}
	out.Columns = append(out.Columns, s.Columns...)
	out.Columns = append(out.Columns, t.Columns...)
	return out
}

// Resolve finds the index of the column matching the (possibly empty)
// qualifier and name. It returns an error if the name is unknown or, for an
// unqualified name, ambiguous.
func (s *Schema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", joinQual(qualifier, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("unknown column %q", joinQual(qualifier, name))
	}
	return found, nil
}

// HasQualifier reports whether any column carries the given qualifier.
func (s *Schema) HasQualifier(q string) bool {
	for _, c := range s.Columns {
		if strings.EqualFold(c.Qualifier, q) {
			return true
		}
	}
	return false
}

func joinQual(q, n string) string {
	if q == "" {
		return n
	}
	return q + "." + n
}

// Row is one tuple: a slice of values positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row safe to retain across iterator advances.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ConcatRows returns the concatenation of a and b as a fresh row.
func ConcatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// KeyOf encodes the projection of row onto the given column indexes as a
// composite hash key.
func KeyOf(row Row, idx []int) string {
	var sb strings.Builder
	for _, i := range idx {
		row[i].AppendKey(&sb)
		sb.WriteByte(0x1f)
	}
	return sb.String()
}
