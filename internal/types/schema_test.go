package types

import (
	"strings"
	"testing"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Qualifier: "u", Name: "uid", Type: KindInt},
		Column{Qualifier: "u", Name: "name", Type: KindString},
		Column{Qualifier: "r", Name: "uid", Type: KindInt},
	)
}

func TestResolveQualified(t *testing.T) {
	s := testSchema()
	i, err := s.Resolve("u", "uid")
	if err != nil || i != 0 {
		t.Errorf("u.uid -> %d, %v", i, err)
	}
	i, err = s.Resolve("r", "UID") // case-insensitive
	if err != nil || i != 2 {
		t.Errorf("r.UID -> %d, %v", i, err)
	}
}

func TestResolveUnqualified(t *testing.T) {
	s := testSchema()
	i, err := s.Resolve("", "name")
	if err != nil || i != 1 {
		t.Errorf("name -> %d, %v", i, err)
	}
	if _, err := s.Resolve("", "uid"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unqualified uid must be ambiguous, got %v", err)
	}
	if _, err := s.Resolve("", "nope"); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := s.Resolve("x", "uid"); err == nil {
		t.Error("unknown qualifier must fail")
	}
}

func TestWithQualifierAndConcat(t *testing.T) {
	s := testSchema().WithQualifier("a")
	for _, c := range s.Columns {
		if c.Qualifier != "a" {
			t.Fatalf("requalify failed: %+v", c)
		}
	}
	joined := s.Concat(testSchema())
	if joined.Len() != 6 {
		t.Fatalf("concat len = %d", joined.Len())
	}
	if !joined.HasQualifier("a") || !joined.HasQualifier("U") {
		t.Error("HasQualifier failed")
	}
	if joined.HasQualifier("z") {
		t.Error("HasQualifier false positive")
	}
}

func TestQualifiedName(t *testing.T) {
	c := Column{Qualifier: "t", Name: "c"}
	if c.QualifiedName() != "t.c" {
		t.Errorf("got %q", c.QualifiedName())
	}
	c.Qualifier = ""
	if c.QualifiedName() != "c" {
		t.Errorf("got %q", c.QualifiedName())
	}
}

func TestRowCloneAndConcat(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("Clone aliases original")
	}
	j := ConcatRows(r, Row{NewBool(true)})
	if len(j) != 3 || !j[2].B {
		t.Errorf("ConcatRows: %v", j)
	}
}

func TestKeyOfComposite(t *testing.T) {
	a := Row{NewInt(1), NewString("ab")}
	b := Row{NewInt(1), NewString("ab")}
	if KeyOf(a, []int{0, 1}) != KeyOf(b, []int{0, 1}) {
		t.Error("identical rows must share a key")
	}
	// Composite keys must not collide across boundaries ("a","bc") vs ("ab","c").
	x := Row{NewString("a"), NewString("bc")}
	y := Row{NewString("ab"), NewString("c")}
	if KeyOf(x, []int{0, 1}) == KeyOf(y, []int{0, 1}) {
		t.Error("composite key boundary collision")
	}
}
