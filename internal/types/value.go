// Package types defines the value and schema model shared by the storage
// layer, the expression evaluator, and the executor.
//
// Values form a tagged union covering the SQL types GRFusion exercises
// (NULL, BOOLEAN, BIGINT, DOUBLE, VARCHAR) plus the three extended tuple
// types the paper introduces for cross-model pipelines (Vertex, Edge, Path;
// see §5.2 of the paper). Keeping Value a small struct rather than an
// interface avoids boxing on the hot traversal and join paths.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	// KindVertex, KindEdge and KindPath carry references to native graph
	// elements flowing through a cross-model query pipeline (§5.2). The
	// referent lives in internal/graph; it is held as an opaque pointer here
	// to keep the package dependency-free.
	KindVertex
	KindEdge
	KindPath
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindVertex:
		return "VERTEX"
	case KindEdge:
		return "EDGE"
	case KindPath:
		return "PATH"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Kind Kind
	B    bool
	I    int64
	F    float64
	S    string
	// Ref holds the graph element for KindVertex/KindEdge/KindPath
	// (a *graph.Vertex, *graph.Edge, or *graph.Path).
	Ref any
}

// Constructors.

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value { return Value{Kind: KindBool, B: b} }

// NewInt returns a BIGINT value.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat returns a DOUBLE value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{Kind: KindString, S: s} }

// NewRef returns a graph-element value of the given kind.
func NewRef(k Kind, ref any) Value { return Value{Kind: k, Ref: ref} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsNumeric reports whether v is BIGINT or DOUBLE.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value of v widened to float64.
// It is only meaningful for numeric kinds.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// AsInt returns the value as an int64, truncating DOUBLEs.
func (v Value) AsInt() int64 {
	if v.Kind == KindFloat {
		return int64(v.F)
	}
	return v.I
}

// Truthy reports whether v is a true BOOLEAN. NULL and non-booleans are false.
func (v Value) Truthy() bool { return v.Kind == KindBool && v.B }

// String renders the value for display and for Path string rendering.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindVertex:
		return fmt.Sprintf("<vertex %v>", v.Ref)
	case KindEdge:
		return fmt.Sprintf("<edge %v>", v.Ref)
	case KindPath:
		if s, ok := v.Ref.(fmt.Stringer); ok {
			return s.String()
		}
		return fmt.Sprintf("<path %v>", v.Ref)
	default:
		return fmt.Sprintf("<bad value kind %d>", v.Kind)
	}
}

// Comparable reports whether values of kinds a and b can be ordered
// against each other.
func Comparable(a, b Kind) bool {
	if a == b {
		return true
	}
	numeric := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return numeric(a) && numeric(b)
}

// Compare orders a against b and returns -1, 0, or +1.
// NULL sorts before every non-NULL value (and equal to NULL), mixed
// numeric kinds compare numerically, and incomparable kinds order by kind
// tag so that sorting is always total.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind != b.Kind {
		switch {
		case a.Kind < b.Kind:
			return -1
		default:
			return 1
		}
	}
	switch a.Kind {
	case KindBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(a.S, b.S)
	default:
		// Graph references have no meaningful order; treat as equal.
		return 0
	}
}

// Equal reports whether a and b compare equal under Compare, with the
// exception that graph references compare by identity.
func Equal(a, b Value) bool {
	if a.Kind >= KindVertex && a.Kind == b.Kind {
		return a.Ref == b.Ref
	}
	if !Comparable(a.Kind, b.Kind) {
		return false
	}
	return Compare(a, b) == 0
}

// Key encodes v into a string usable as a hash-join or group-by key.
// Numeric values that are exactly representable as int64 share a key across
// BIGINT and DOUBLE so that mixed-type equi-joins behave like Compare.
func (v Value) Key() string {
	var sb strings.Builder
	v.AppendKey(&sb)
	return sb.String()
}

// AppendKey appends v's hash key to sb (see Key).
func (v Value) AppendKey(sb *strings.Builder) {
	switch v.Kind {
	case KindNull:
		sb.WriteByte('n')
	case KindBool:
		if v.B {
			sb.WriteString("b1")
		} else {
			sb.WriteString("b0")
		}
	case KindInt:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case KindFloat:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(int64(v.F), 10))
		} else {
			sb.WriteByte('f')
			sb.WriteString(strconv.FormatFloat(v.F, 'b', -1, 64))
		}
	case KindString:
		sb.WriteByte('s')
		sb.WriteString(v.S)
	default:
		sb.WriteByte('r')
		fmt.Fprintf(sb, "%p", v.Ref)
	}
}

// CoerceTo converts v to the target kind where SQL allows an implicit
// conversion (numeric widening/narrowing, anything from NULL).
// It returns an error for lossy or nonsensical conversions.
func CoerceTo(v Value, k Kind) (Value, error) {
	if v.Kind == k || v.Kind == KindNull {
		return v, nil
	}
	switch k {
	case KindFloat:
		if v.Kind == KindInt {
			return NewFloat(float64(v.I)), nil
		}
	case KindInt:
		if v.Kind == KindFloat && v.F == math.Trunc(v.F) {
			return NewInt(int64(v.F)), nil
		}
	case KindString:
		return NewString(v.String()), nil
	}
	return Null(), fmt.Errorf("cannot coerce %s value to %s", v.Kind, k)
}

// ParseLiteral converts a raw string into the given kind, used by loaders.
func ParseLiteral(s string, k Kind) (Value, error) {
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("bad BIGINT literal %q: %v", s, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("bad DOUBLE literal %q: %v", s, err)
		}
		return NewFloat(f), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("bad BOOLEAN literal %q: %v", s, err)
		}
		return NewBool(b), nil
	case KindString:
		return NewString(s), nil
	default:
		return Null(), fmt.Errorf("cannot parse literal of kind %s", k)
	}
}
