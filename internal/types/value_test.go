package types

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "BIGINT",
		KindFloat: "DOUBLE", KindString: "VARCHAR",
		KindVertex: "VERTEX", KindEdge: "EDGE", KindPath: "PATH",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if v := NewInt(42); v.Kind != KindInt || v.I != 42 || v.AsFloat() != 42 || v.AsInt() != 42 {
		t.Errorf("NewInt: %+v", v)
	}
	if v := NewFloat(2.5); v.Kind != KindFloat || v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Errorf("NewFloat: %+v", v)
	}
	if v := NewString("x"); v.Kind != KindString || v.S != "x" {
		t.Errorf("NewString: %+v", v)
	}
	if v := NewBool(true); !v.Truthy() {
		t.Errorf("NewBool(true) not truthy")
	}
	if NewInt(1).Truthy() || Null().Truthy() {
		t.Error("non-boolean values must not be truthy")
	}
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() || NewString("1").IsNumeric() {
		t.Error("IsNumeric misclassifies")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v-kind) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.0), NewInt(1), 0},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualMixedNumeric(t *testing.T) {
	if !Equal(NewInt(3), NewFloat(3.0)) {
		t.Error("3 must equal 3.0")
	}
	if Equal(NewInt(3), NewString("3")) {
		t.Error("3 must not equal '3'")
	}
}

func TestKeyNormalizesIntegralFloats(t *testing.T) {
	if NewInt(3).Key() != NewFloat(3.0).Key() {
		t.Error("hash keys of 3 and 3.0 must match for mixed-type equi-joins")
	}
	if NewInt(3).Key() == NewFloat(3.5).Key() {
		t.Error("3 and 3.5 must have different keys")
	}
	if NewString("3").Key() == NewInt(3).Key() {
		t.Error("'3' and 3 must have different keys")
	}
}

// Property: Compare defines a total order (antisymmetric, transitive via
// sort consistency) over randomly generated scalar values.
func TestCompareTotalOrderProperty(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 5 {
		case 0:
			return Null()
		case 1:
			return NewBool(seed%2 == 0)
		case 2:
			return NewInt(seed % 100)
		case 3:
			return NewFloat(float64(seed%100) / 4)
		default:
			return NewString(string(rune('a' + seed%26)))
		}
	}
	prop := func(a, b, c int64) bool {
		x, y := gen(a), gen(b)
		if Compare(x, y) != -Compare(y, x) {
			return false
		}
		vals := []Value{gen(a), gen(b), gen(c)}
		sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
		return Compare(vals[0], vals[1]) <= 0 && Compare(vals[1], vals[2]) <= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: equal Compare implies equal Key for comparable scalar kinds.
func TestKeyConsistentWithCompare(t *testing.T) {
	prop := func(i int64, f float64) bool {
		a, b := NewInt(i), NewFloat(f)
		if math.IsNaN(f) {
			return true
		}
		if Compare(a, b) == 0 {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := CoerceTo(NewInt(3), KindFloat)
	if err != nil || v.Kind != KindFloat || v.F != 3 {
		t.Errorf("int->float: %v, %v", v, err)
	}
	v, err = CoerceTo(NewFloat(3.0), KindInt)
	if err != nil || v.Kind != KindInt || v.I != 3 {
		t.Errorf("float(int)->int: %v, %v", v, err)
	}
	if _, err = CoerceTo(NewFloat(3.5), KindInt); err == nil {
		t.Error("lossy float->int must fail")
	}
	if _, err = CoerceTo(NewString("x"), KindInt); err == nil {
		t.Error("string->int must fail")
	}
	v, err = CoerceTo(Null(), KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("null coerces to anything: %v, %v", v, err)
	}
	v, err = CoerceTo(NewInt(3), KindString)
	if err != nil || v.S != "3" {
		t.Errorf("int->string: %v, %v", v, err)
	}
}

func TestParseLiteral(t *testing.T) {
	if v, err := ParseLiteral("42", KindInt); err != nil || v.I != 42 {
		t.Errorf("int parse: %v %v", v, err)
	}
	if v, err := ParseLiteral("1.5", KindFloat); err != nil || v.F != 1.5 {
		t.Errorf("float parse: %v %v", v, err)
	}
	if v, err := ParseLiteral("true", KindBool); err != nil || !v.B {
		t.Errorf("bool parse: %v %v", v, err)
	}
	if v, err := ParseLiteral("abc", KindString); err != nil || v.S != "abc" {
		t.Errorf("string parse: %v %v", v, err)
	}
	if _, err := ParseLiteral("abc", KindInt); err == nil {
		t.Error("bad int literal must fail")
	}
	if _, err := ParseLiteral("x", KindBool); err == nil {
		t.Error("bad bool literal must fail")
	}
	if _, err := ParseLiteral("x", KindPath); err == nil {
		t.Error("unparseable kind must fail")
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(KindInt, KindFloat) || !Comparable(KindString, KindString) {
		t.Error("comparable pairs rejected")
	}
	if Comparable(KindString, KindInt) || Comparable(KindBool, KindInt) {
		t.Error("incomparable pairs accepted")
	}
}
