package core

import (
	"fmt"
	"strings"

	"grfusion/internal/catalog"
	"grfusion/internal/expr"
	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// createMatView handles CREATE MATERIALIZED VIEW: a single-table
// projection/selection materialized into a backing table and maintained
// incrementally by the DML path (§2, §3.3.2 let graph views sit on such
// views, so maintenance chains: base DML → view rows → graph topology).
//
// Known limitation (shared with the paper's single-table-view scope): a
// base UPDATE that changes a vertex-identifier column projected through a
// materialized view renames the topology vertex but does not rewrite edge
// tuples referencing the old id in *other* tables (the §3.3.1 referential
// fixup runs only for graph views built directly over the updated table).
// Identifier updates are rare (§3.3.1); update ids on directly-sourced
// graph views or rebuild the dependent views.
func (e *Engine) createMatView(s *sql.CreateMatView) (*Result, error) {
	base, ok := e.cat.Table(s.Base)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Base)
	}
	baseSchema := base.Schema()

	// Resolve the projection: plain column references only (a materialized
	// view is a stored projection, not a computed query).
	type viewCol struct {
		pos  int
		name string
	}
	var cols []viewCol
	for _, item := range s.Items {
		if item.Star {
			if item.StarQual != "" && !strings.EqualFold(item.StarQual, s.Base) {
				return nil, fmt.Errorf("materialized view %s: unknown qualifier %q", s.Name, item.StarQual)
			}
			for i, c := range baseSchema.Columns {
				cols = append(cols, viewCol{pos: i, name: c.Name})
			}
			continue
		}
		ref, ok := item.Expr.(*expr.RawRef)
		if !ok || len(ref.Parts) > 2 || ref.Parts[0].HasIndex ||
			(len(ref.Parts) == 2 && ref.Parts[1].HasIndex) {
			return nil, fmt.Errorf("materialized view %s: select item %s must be a plain column",
				s.Name, item.Expr)
		}
		qual, name := "", ref.Parts[0].Name
		if len(ref.Parts) == 2 {
			qual, name = ref.Parts[0].Name, ref.Parts[1].Name
		}
		if qual != "" && !strings.EqualFold(qual, s.Base) {
			return nil, fmt.Errorf("materialized view %s: unknown qualifier %q", s.Name, qual)
		}
		pos, err := baseSchema.Resolve("", name)
		if err != nil {
			return nil, fmt.Errorf("materialized view %s: %v", s.Name, err)
		}
		outName := name
		if item.Alias != "" {
			outName = item.Alias
		}
		cols = append(cols, viewCol{pos: pos, name: outName})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("materialized view %s: empty select list", s.Name)
	}

	// Bind and validate the predicate: deterministic, parameter-free,
	// aggregate-free, over base columns only.
	var pred expr.Expr
	if s.Where != nil {
		var err error
		pred, err = expr.NewBinder(baseSchema).Bind(s.Where.Clone())
		if err != nil {
			return nil, fmt.Errorf("materialized view %s: %v", s.Name, err)
		}
		bad := ""
		expr.Walk(pred, func(n expr.Expr) bool {
			switch x := n.(type) {
			case *expr.FuncCall:
				if x.IsAggregate() {
					bad = "aggregates"
					return false
				}
			case *expr.Param:
				bad = "parameters"
				return false
			}
			return true
		})
		if bad != "" {
			return nil, fmt.Errorf("materialized view %s: %s are not allowed in the WHERE clause", s.Name, bad)
		}
	}

	// Backing table.
	outCols := make([]types.Column, len(cols))
	positions := make([]int, len(cols))
	seen := map[string]bool{}
	for i, c := range cols {
		key := strings.ToLower(c.name)
		if seen[key] {
			return nil, fmt.Errorf("materialized view %s: duplicate column %q", s.Name, c.name)
		}
		seen[key] = true
		outCols[i] = types.Column{Qualifier: s.Name, Name: c.name, Type: baseSchema.Columns[c.pos].Type}
		positions[i] = c.pos
	}
	backing, err := storage.NewTable(s.Name, types.NewSchema(outCols...), nil)
	if err != nil {
		return nil, err
	}
	mv, err := catalog.NewMatView(s.Name, base, backing, positions, pred, matViewSQL(s, pred))
	if err != nil {
		return nil, err
	}
	if err := e.cat.RegisterMatView(mv); err != nil {
		return nil, err
	}
	return &Result{Affected: backing.Len()}, nil
}

// matViewSQL reconstructs the defining statement for snapshots.
func matViewSQL(s *sql.CreateMatView, pred expr.Expr) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE MATERIALIZED VIEW %s AS SELECT ", s.Name)
	for i, item := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if item.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(item.Expr.String())
		if item.Alias != "" {
			sb.WriteString(" AS " + item.Alias)
		}
	}
	fmt.Fprintf(&sb, " FROM %s", s.Base)
	if pred != nil {
		fmt.Fprintf(&sb, " WHERE %s", pred)
	}
	return sb.String()
}

// maintainMatViewsInsert propagates a freshly inserted base row into every
// dependent materialized view (inside the same transaction).
func (tx *txn) maintainMatViewsInsert(t *storage.Table, id storage.RowID, row types.Row) error {
	for _, mv := range tx.e.cat.DependentMatViews(t.Name()) {
		in, err := mv.Matches(row)
		if err != nil {
			return err
		}
		if !in {
			continue
		}
		vid, err := tx.insertRow(mv.Table(), mv.Project(row))
		if err != nil {
			return err
		}
		tx.setMap(mv, id, vid)
	}
	return nil
}

// maintainMatViewsDelete removes the materialized image of a deleted base
// row from every dependent view.
func (tx *txn) maintainMatViewsDelete(t *storage.Table, id storage.RowID) error {
	for _, mv := range tx.e.cat.DependentMatViews(t.Name()) {
		vid, ok := mv.Lookup(id)
		if !ok {
			continue
		}
		if err := tx.deleteRow(mv.Table(), vid); err != nil {
			return err
		}
		tx.delMap(mv, id, vid)
	}
	return nil
}

// maintainMatViewsUpdate reconciles a base-row update with every dependent
// view: rows enter, leave, or change inside the view as the predicate and
// projection dictate.
func (tx *txn) maintainMatViewsUpdate(t *storage.Table, id storage.RowID, newRow types.Row) error {
	for _, mv := range tx.e.cat.DependentMatViews(t.Name()) {
		vid, wasIn := mv.Lookup(id)
		isIn, err := mv.Matches(newRow)
		if err != nil {
			return err
		}
		switch {
		case wasIn && isIn:
			if err := tx.updateRow(mv.Table(), vid, mv.Project(newRow)); err != nil {
				return err
			}
		case wasIn && !isIn:
			if err := tx.deleteRow(mv.Table(), vid); err != nil {
				return err
			}
			tx.delMap(mv, id, vid)
		case !wasIn && isIn:
			nvid, err := tx.insertRow(mv.Table(), mv.Project(newRow))
			if err != nil {
				return err
			}
			tx.setMap(mv, id, nvid)
		}
	}
	return nil
}

func (tx *txn) setMap(mv *catalog.MatView, base, view storage.RowID) {
	mv.MapSet(base, view)
	tx.journal = append(tx.journal, undoOp{kind: undoMapSet, mv: mv, id: base, viewID: view})
}

func (tx *txn) delMap(mv *catalog.MatView, base, view storage.RowID) {
	mv.MapDelete(base)
	tx.journal = append(tx.journal, undoOp{kind: undoMapDel, mv: mv, id: base, viewID: view})
}
