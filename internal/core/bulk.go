package core

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// BulkLoad is the engine half of the COPY-style streaming ingest path: an
// exclusive write transaction that accepts pre-decoded row batches and
// publishes ONE new MVCC version at the end, no matter how many batches
// streamed in. That single deferred publish is what makes bulk graph
// ingest fast: publishing marks every graph view shared (version.go), so
// the first topology change after each publish must clone the whole graph
// (catalog.ensurePrivateG). Per-statement ingest therefore clones the
// graph once per batch — quadratic in load size, measured at ~6.5k
// edges/s — while BulkLoad pays one clone for the entire stream and then
// appends to private adjacency in place.
//
// Semantics are batch-atomic, not load-atomic, mirroring durability:
// every Append is logged to the WAL (when durable) and applied as one
// implicit transaction — a failed batch rolls back only itself, earlier
// batches stay. Crash recovery mid-load replays exactly the batches that
// were logged, so the live engine keeps them too; an aborted stream ends
// with the same prefix a crash at that point would have reconstructed.
// MVCC readers are unaffected throughout (they pin the previous version);
// other writers queue on the engine lock until Close.
type BulkLoad struct {
	e *Engine
	t *storage.Table

	table     string
	positions []int // supplied column -> schema position
	identity  bool  // positions are 0..len-1 over the full schema: rows insert as-is
	width     int   // values per incoming row

	// colList is the parenthesized column list of the logged INSERT text
	// ("" when loading full rows); texts caches the generated statement
	// per batch size so a steady stream pays the build once.
	colList string
	texts   map[int]string
	stmt    *sql.Insert // minimal statement for the WAL allocation pin

	applied int
	batches int
	closed  bool
}

// gcHold pauses the collector across overlapping bulk loads (refcounted,
// process-global like the collector itself): a load's retained rows force
// the heap up no matter what, so concurrent mark cycles during the stream
// only add assist stalls on the ingest path — measured ~25% of load wall
// time — to collect a handful of per-batch scraps. The first load stores
// the GOGC the process was running with and the last one restores it,
// triggering the deferred cycle.
var gcHold struct {
	sync.Mutex
	loads int
	gogc  int
}

func gcPause() {
	gcHold.Lock()
	defer gcHold.Unlock()
	if gcHold.loads == 0 {
		gcHold.gogc = debug.SetGCPercent(-1)
	}
	gcHold.loads++
}

func gcResume() {
	gcHold.Lock()
	defer gcHold.Unlock()
	gcHold.loads--
	if gcHold.loads == 0 && gcHold.gogc != -1 {
		debug.SetGCPercent(gcHold.gogc)
	}
}

// BeginBulk opens a bulk load into table. cols maps incoming row values
// to columns (nil/empty = full rows in schema order); expectRows, when
// known, presizes the row array and primary-key index so the stream never
// pays incremental growth. The returned load holds the engine's exclusive
// write lock until Close — Append and Close must be called from a single
// loader goroutine, and abandoning a BulkLoad without Close deadlocks all
// future writers.
func (e *Engine) BeginBulk(table string, cols []string, expectRows int) (*BulkLoad, error) {
	lw := time.Now()
	e.mu.Lock()
	e.metrics.LockWriteWaitNS.Add(time.Since(lw).Nanoseconds())
	b, err := e.beginBulkLocked(table, cols, expectRows)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	gcPause()
	return b, nil
}

func (e *Engine) beginBulkLocked(table string, cols []string, expectRows int) (*BulkLoad, error) {
	t, ok := e.cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", table)
	}
	if e.cat.IsMatViewTable(table) {
		return nil, fmt.Errorf("materialized view %s is read-only; bulk load its base table", table)
	}
	schema := t.Schema()
	b := &BulkLoad{e: e, t: t, table: t.Name(), texts: map[int]string{},
		stmt: &sql.Insert{Table: t.Name()}}
	if len(cols) == 0 {
		b.width = schema.Len()
		b.positions = make([]int, b.width)
		for i := range b.positions {
			b.positions[i] = i
		}
		b.identity = true
	} else {
		b.width = len(cols)
		b.positions = make([]int, len(cols))
		b.identity = len(cols) == schema.Len()
		for i, c := range cols {
			idx, err := schema.Resolve("", c)
			if err != nil {
				return nil, err
			}
			b.positions[i] = idx
			if idx != i {
				b.identity = false
			}
		}
		b.colList = " (" + strings.Join(cols, ", ") + ")"
	}
	t.Reserve(expectRows)
	for _, gv := range e.cat.DependentViews(t.Name()) {
		gv.ReserveFor(t.Name(), expectRows)
	}
	e.metrics.BulkLoads.Inc()
	return b, nil
}

// textFor returns the INSERT statement logged for an n-row batch:
// "INSERT INTO t (cols) VALUES (?,...),(?,...)". Replay re-prepares this
// text and binds the batch's flattened parameters, so a logged batch
// rides the existing prepared-DML recovery path unchanged.
func (b *BulkLoad) textFor(n int) string {
	if s, ok := b.texts[n]; ok {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(b.table) + len(b.colList) + 24 + n*(2*b.width+3))
	sb.WriteString("INSERT INTO ")
	sb.WriteString(b.table)
	sb.WriteString(b.colList)
	sb.WriteString(" VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('(')
		for j := 0; j < b.width; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte('?')
		}
		sb.WriteByte(')')
	}
	s := sb.String()
	b.texts[n] = s
	return s
}

// Append applies one batch atomically: WAL-logged first (durable
// engines), then inserted with full graph-view and materialized-view
// maintenance, like any INSERT — except no expression evaluation runs and
// nothing publishes. Values are stored as given (the table coerces types
// in place), so the batch slices must not be reused by the caller. On
// error the batch is rolled back — journal inverses replayed, WAL record
// removed — and the load remains usable for further batches.
func (b *BulkLoad) Append(rows []types.Row) (int, error) {
	if b.closed {
		return 0, fmt.Errorf("bulk load into %s is closed", b.table)
	}
	if len(rows) == 0 {
		return 0, nil
	}
	e := b.e
	for _, r := range rows {
		if len(r) != b.width {
			return 0, fmt.Errorf("bulk load into %s: row has %d values, want %d",
				b.table, len(r), b.width)
		}
	}
	var walLSN uint64
	if e.dur.log != nil {
		params := make([]types.Value, 0, len(rows)*b.width)
		for _, r := range rows {
			params = append(params, r...)
		}
		rec, err := e.walRecordLocked(b.stmt, b.textFor(len(rows)), params)
		if err != nil {
			return 0, err
		}
		if walLSN, err = e.walAppendLocked(rec); err != nil {
			return 0, err
		}
	}
	// Presize the undo journal: letting append double its way up would
	// re-zero a fresh, larger array a dozen times per batch.
	tx := &txn{e: e, journal: make([]undoOp, 0, len(rows))}
	var err error
	if b.identity {
		for _, r := range rows {
			if _, err = tx.insertRow(b.t, r); err != nil {
				break
			}
		}
	} else {
		width := b.t.Schema().Len()
		for _, r := range rows {
			row := make(types.Row, width)
			for i, v := range r {
				row[b.positions[i]] = v
			}
			if _, err = tx.insertRow(b.t, row); err != nil {
				break
			}
		}
	}
	if err != nil {
		err = tx.abort(err)
	}
	e.finishWALLocked(walLSN, err)
	if err != nil {
		return 0, err
	}
	b.applied += len(rows)
	b.batches++
	e.metrics.BulkBatches.Inc()
	e.metrics.BulkRows.Add(int64(len(rows)))
	return len(rows), nil
}

// Rows returns the number of rows applied so far.
func (b *BulkLoad) Rows() int { return b.applied }

// Width returns the number of values each incoming row must carry.
func (b *BulkLoad) Width() int { return b.width }

// Close ends the load, publishes the accumulated batches as one new MVCC
// version (when any applied), and releases the engine write lock. Close
// is idempotent; the first call returns the row count.
func (b *BulkLoad) Close() (*Result, error) {
	if b.closed {
		return nil, fmt.Errorf("bulk load into %s is closed", b.table)
	}
	b.closed = true
	if b.applied > 0 {
		b.e.publishLocked()
	}
	b.e.mu.Unlock()
	gcResume()
	return &Result{Affected: b.applied}, nil
}
