package core

import (
	"sync/atomic"

	"grfusion/internal/catalog"
	"grfusion/internal/plan"
	"grfusion/internal/storage"
)

// This file implements the engine's multi-version concurrency control.
//
// Every successful mutating statement publishes one immutable dbState: the
// catalog as of that statement, a copy-on-write snapshot of every table,
// and a version binding for every graph view. The current state lives in
// an atomic pointer; a read-only statement pins it with one atomic load
// plus a pin count and then executes entirely against the pinned version —
// it never takes the engine lock, so readers cannot stall behind writers
// and writers cannot stall behind long reads. Writers still serialize
// among themselves under the exclusive lock (the §3.3 maintenance
// invariant needs transactional view maintenance), build the next version
// privately, and publish it with a single pointer swap after the WAL
// settles.
//
// Reclamation is epoch-like but delegated to the garbage collector: a
// superseded state is unreachable from the engine once no reader pins it,
// so its snapshots and any cloned topology are collected naturally. The
// engine keeps a small writer-guarded registry of potentially-live states
// purely to drive the mvcc.versions_live gauge; it is pruned at every
// publish.
//
// The copy-on-write protocol the snapshots rely on:
//
//   - Tables alias their row slab into a TableSnap (storage/snapshot.go);
//     the first in-place overwrite of a shared slot copies the slab, and
//     appends stay invisible past the snapshot's length clamp.
//   - Live indexes may run ahead of a pinned snapshot; pinned index scans
//     verify the table version around the probe and fall back to a
//     filtered snapshot scan when it moved (exec/scan.go).
//   - Graph-view topologies are marked shared at publish; the first
//     maintenance op afterwards clones the graph (catalog.ensurePrivateG),
//     so a pinned GraphViewAt keeps the exact topology it pinned.
//   - DDL clones the catalog registry before mutating it.

// dbState is one published engine version. All fields but pins are
// immutable after publish.
type dbState struct {
	seq   uint64
	cat   *catalog.Catalog
	snaps map[*storage.Table]*storage.TableSnap
	ats   map[*catalog.GraphView]*catalog.GraphViewAt

	// pins counts readers currently executing against this state.
	pins atomic.Int64
}

var _ plan.Pin = (*dbState)(nil)

// Seq implements plan.Pin.
func (st *dbState) Seq() uint64 { return st.seq }

// Table implements plan.Pin: the pinned row view of t. An unknown table
// (not in this version's catalog) falls back to the live object; pinned
// plans resolve names through st.cat, so the fallback is never reached by
// a pinned statement.
func (st *dbState) Table(t *storage.Table) storage.RowView {
	if s, ok := st.snaps[t]; ok {
		return s
	}
	return t
}

// GraphView implements plan.Pin: the pinned binding of gv, with the same
// live fallback as Table.
func (st *dbState) GraphView(gv *catalog.GraphView) *catalog.GraphViewAt {
	if at, ok := st.ats[gv]; ok {
		return at
	}
	return gv.Live()
}

// publishLocked builds and publishes the next version from the current
// catalog and live objects. Requires the write lock; call only after a
// mutating statement fully applied (and its WAL record settled).
func (e *Engine) publishLocked() {
	var seq uint64 = 1
	if prev := e.state.Load(); prev != nil {
		seq = prev.seq + 1
	}
	st := &dbState{
		seq:   seq,
		cat:   e.cat,
		snaps: make(map[*storage.Table]*storage.TableSnap),
		ats:   make(map[*catalog.GraphView]*catalog.GraphViewAt),
	}
	for _, name := range e.cat.Tables() {
		if t, ok := e.cat.Table(name); ok {
			st.snaps[t] = t.Snapshot()
		}
	}
	for _, name := range e.cat.GraphViews() {
		if gv, ok := e.cat.GraphView(name); ok {
			gv.MarkShared()
			st.ats[gv] = gv.At(gv.G, st.Table(gv.VertexTable()), st.Table(gv.EdgeTable()))
		}
	}
	e.state.Store(st)
	e.metrics.MVCCPublished.Inc()
	e.metrics.MVCCSeq.Set(int64(seq))

	// Prune the gauge registry: drop superseded states nobody pins. The
	// pins check races readers of *older* registry entries only in the
	// direction of keeping an entry one publish longer — a reader can only
	// pin the current state, which is always retained.
	e.states = append(e.states, st)
	kept := e.states[:0]
	for _, s := range e.states {
		if s == st || s.pins.Load() > 0 {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(e.states); i++ {
		e.states[i] = nil
	}
	e.states = kept
	e.metrics.MVCCVersionsLive.Set(int64(len(e.states)))
}

// pin takes a read reference on the current version. The state pointer is
// never recycled (reclamation is by GC), so load-then-increment cannot
// resurrect a freed version; a publish between the load and the increment
// just means this reader observes the previous version, which is exactly
// snapshot semantics.
func (e *Engine) pin() *dbState {
	st := e.state.Load()
	st.pins.Add(1)
	e.metrics.MVCCPinnedReaders.Set(e.pinned.Add(1))
	return st
}

// unpin releases a read reference.
func (e *Engine) unpin(st *dbState) {
	st.pins.Add(-1)
	e.metrics.MVCCPinnedReaders.Set(e.pinned.Add(-1))
}

// VersionSeq returns the sequence number of the currently published
// version (0 before the first publish completes).
func (e *Engine) VersionSeq() uint64 {
	if st := e.state.Load(); st != nil {
		return st.seq
	}
	return 0
}
