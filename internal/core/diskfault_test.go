package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"grfusion/internal/faultfs"
	"grfusion/internal/wal"
)

// waitState polls until the engine's health reaches want (the healer runs
// in the background, so transitions are asynchronous).
func waitState(t *testing.T, e *Engine, want HealthState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e.Health().State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	h := e.Health()
	t.Fatalf("engine did not reach %v within %v (state %v, reason %q, last heal error %q)",
		want, timeout, h.State, h.Reason, h.LastHealError)
}

func metricsMap(e *Engine) map[string]int64 {
	out := make(map[string]int64)
	for _, kv := range e.MetricsSnapshot() {
		out[kv.Name] = kv.Value
	}
	return out
}

func healthRows(t *testing.T, e *Engine) map[string]string {
	t.Helper()
	res, err := e.Execute("SHOW HEALTH")
	if err != nil {
		t.Fatalf("SHOW HEALTH: %v", err)
	}
	out := make(map[string]string, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].S] = r[1].S
	}
	return out
}

func TestHealthNonDurable(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	h := e.Health()
	if h.State != StateHealthy || h.Durable || !h.Ready() {
		t.Fatalf("non-durable engine health = %+v, want healthy/non-durable/ready", h)
	}
	rows := healthRows(t, e)
	if rows["state"] != "healthy" || rows["durable"] != "false" || rows["ready"] != "true" {
		t.Fatalf("SHOW HEALTH on non-durable engine = %v", rows)
	}
}

// TestDegradedModeAndHeal walks the full degrade → heal cycle: a WAL made
// unusable by injected faults flips the engine to read-only, reads and the
// health surface keep serving, writes fail fast with ErrDegraded without
// touching the disk, and once the faults clear the background healer
// restores read-write with zero lost acknowledged writes (proved by
// kill-and-recover).
func TestDegradedModeAndHeal(t *testing.T) {
	ffs := faultfs.NewFaulty(nil, 42)
	dir := t.TempDir()
	var opts Options
	opts.Durability = Durability{
		Dir: dir, Fsync: wal.FsyncAlways, FS: ffs,
		CheckpointEvery: -1,
		HealBase:        time.Millisecond, HealMax: 8 * time.Millisecond,
	}
	eng, _, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer eng.Close()
	mustExecAll(t, eng, durSetup)
	mustExecAll(t, eng, `
INSERT INTO people VALUES (1, 'ann');
INSERT INTO people VALUES (2, 'bob');
INSERT INTO knows VALUES (1, 1, 2, 5);
`)
	sigBefore := stateSig(t, eng)

	// Break the durability path: every write fails AND the rollback
	// truncation fails, so the log cannot restore a clean tail.
	ffs.SetRate(faultfs.OpWrite, 1)
	ffs.SetRate(faultfs.OpTruncate, 1)
	_, err = eng.Execute("INSERT INTO people VALUES (3, 'carol')")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("write on broken WAL: err = %v, want ErrDegraded", err)
	}
	h := eng.Health()
	if h.State != StateDegraded && h.State != StateHealing {
		t.Fatalf("state after broken WAL = %v, want degraded", h.State)
	}
	if h.Reason == "" || !h.Durable {
		t.Fatalf("degraded health missing detail: %+v", h)
	}

	// Reads, SHOW and EXPLAIN keep serving, and see exactly the
	// pre-degrade state (the failed insert never applied).
	if got := stateSig(t, eng); got != sigBefore {
		t.Fatalf("degraded reads diverged:\n got %s\nwant %s", got, sigBefore)
	}
	if _, err := eng.Execute("EXPLAIN SELECT name FROM people"); err != nil {
		t.Fatalf("EXPLAIN while degraded: %v", err)
	}
	rows := healthRows(t, eng)
	if rows["state"] == "healthy" || rows["ready"] != "false" {
		t.Fatalf("SHOW HEALTH while degraded = %v", rows)
	}

	// Further writes fail fast — before touching the disk at all.
	opsBefore := ffs.Ops()
	if _, err := eng.Execute("DELETE FROM people WHERE id = 1"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second degraded write: err = %v, want ErrDegraded", err)
	}
	if got := ffs.Ops(); got != opsBefore {
		t.Fatalf("degraded write touched the disk: %d ops, want %d", got, opsBefore)
	}
	m := metricsMap(eng)
	if m["durability.degraded"] != 1 {
		t.Fatalf("durability.degraded = %d, want 1", m["durability.degraded"])
	}
	if m["durability.degraded_writes"] < 2 {
		t.Fatalf("durability.degraded_writes = %d, want >= 2", m["durability.degraded_writes"])
	}
	if m["errors.degraded"] < 1 {
		t.Fatalf("errors.degraded = %d, want >= 1", m["errors.degraded"])
	}

	// Clear the weather; the healer checkpoints, rotates in a fresh log,
	// probes an append+fsync round trip, and re-admits writes.
	ffs.Calm()
	waitState(t, eng, StateHealthy, 5*time.Second)
	if _, err := eng.Execute("INSERT INTO people VALUES (3, 'carol')"); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	sigHealed := stateSig(t, eng)
	rows = healthRows(t, eng)
	if rows["state"] != "healthy" || rows["ready"] != "true" || rows["reason"] != "" {
		t.Fatalf("SHOW HEALTH after heal = %v", rows)
	}
	m = metricsMap(eng)
	if m["durability.heals"] < 1 || m["durability.heal_attempts"] < 1 {
		t.Fatalf("heal metrics not recorded: %v", m)
	}
	if m["durability.degraded"] != 0 {
		t.Fatalf("durability.degraded = %d after heal, want 0", m["durability.degraded"])
	}

	// Kill-and-recover: the post-heal write was durably logged, the
	// pre-heal aborted writes were not.
	eng.Kill()
	re, _, err := Open(opts)
	if err != nil {
		t.Fatalf("recovery after heal: %v", err)
	}
	defer re.Close()
	if got := stateSig(t, re); got != sigHealed {
		t.Fatalf("recovered state diverged from acknowledged history:\n got %s\nwant %s", got, sigHealed)
	}
	if h := re.Health(); h.State != StateHealthy {
		t.Fatalf("recovered engine health = %v, want healthy", h.State)
	}
}

// TestDiskFullWatermarks drives the free-space watermarks end to end:
// under the soft watermark an append forces a checkpoint + WAL rotation to
// give space back; under the hard watermark the engine degrades instead of
// consuming the disk's last bytes; heal probes keep failing while space
// stays scarce and succeed as soon as it returns.
func TestDiskFullWatermarks(t *testing.T) {
	ffs := faultfs.NewFaulty(nil, 7)
	ffs.SetFree(1 << 20)
	dir := t.TempDir()
	var opts Options
	opts.Durability = Durability{
		Dir: dir, Fsync: wal.FsyncOff, FS: ffs,
		CheckpointEvery: -1,
		SoftFreeBytes:   256 << 10,
		HardFreeBytes:   16 << 10,
		HealBase:        time.Millisecond, HealMax: 8 * time.Millisecond,
	}
	eng, _, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer eng.Close()
	mustExecAll(t, eng, durSetup)
	mustExecAll(t, eng, `
INSERT INTO people VALUES (1, 'ann');
INSERT INTO people VALUES (2, 'bob');
INSERT INTO knows VALUES (1, 1, 2, 5);
`)

	// Soft watermark: the next append reclaims WAL space first.
	ckpts := metricsMap(eng)["wal.checkpoints"]
	logSize := eng.dur.log.Size()
	ffs.SetFree(100 << 10) // below soft, above hard
	if _, err := eng.Execute("INSERT INTO people VALUES (3, 'carol')"); err != nil {
		t.Fatalf("insert under soft watermark: %v", err)
	}
	if got := metricsMap(eng)["wal.checkpoints"]; got != ckpts+1 {
		t.Fatalf("soft watermark forced %d checkpoints, want %d", got-ckpts, 1)
	}
	if got := eng.dur.log.Size(); got >= logSize {
		t.Fatalf("soft watermark did not shrink the log: %d -> %d bytes", logSize, got)
	}
	if h := eng.Health(); h.State != StateHealthy {
		t.Fatalf("soft watermark degraded the engine: %v", h.State)
	}

	// Hard watermark: writes are refused outright.
	ffs.SetFree(8 << 10)
	_, err = eng.Execute("INSERT INTO people VALUES (4, 'dave')")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert under hard watermark: err = %v, want ErrDegraded", err)
	}
	if h := eng.Health(); h.Reason == "" || !strings.Contains(h.Reason, "watermark") {
		t.Fatalf("degrade reason = %q, want a watermark explanation", h.Reason)
	}

	// Heal probes run but fail while space stays scarce.
	deadline := time.Now().Add(2 * time.Second)
	for metricsMap(eng)["durability.heal_attempts"] < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := metricsMap(eng)["durability.heal_attempts"]; got < 2 {
		t.Fatalf("heal attempts = %d, want >= 2 while disk stays full", got)
	}
	if got := eng.Health().State; got == StateHealthy {
		t.Fatal("engine healed while free space was still under the hard watermark")
	}

	// Space returns; the engine heals and writes flow again.
	ffs.SetFree(4 << 20)
	waitState(t, eng, StateHealthy, 5*time.Second)
	if _, err := eng.Execute("INSERT INTO people VALUES (4, 'dave')"); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
	sig := stateSig(t, eng)

	eng.Kill()
	re, _, err := Open(opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := stateSig(t, re); got != sig {
		t.Fatalf("recovered state diverged:\n got %s\nwant %s", got, sig)
	}
}

// TestDiskFaultSoak is the disk-fault chaos soak: a durable engine runs a
// seeded random DML workload over a faultfs whose weather keeps changing —
// transient EIO storms, a fully broken log, a disk running out of space —
// with tiny heal backoffs so the engine cycles degraded → healed many
// times. Reads during degraded windows are checked differentially against
// a non-durable reference engine fed only the acknowledged statements;
// rejected writes must be classified ErrDegraded; background reader and
// health-poller goroutines run throughout (the -race payoff); and the soak
// ends with a kill-and-recover proving zero acknowledged writes were lost.
//
// GRF_SOAK extends the duration (seconds), as in the CI diskchaos lane.
func TestDiskFaultSoak(t *testing.T) {
	duration := 1200 * time.Millisecond
	if s := os.Getenv("GRF_SOAK"); s != "" {
		var secs int
		if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs > 0 {
			duration = time.Duration(secs) * time.Second
		}
	}
	const seed = 20260811
	rng := rand.New(rand.NewSource(seed))
	ffs := faultfs.NewFaulty(nil, seed+1)
	dir := t.TempDir()

	ref := New(Options{})
	defer ref.Close()
	mustExecAll(t, ref, durSetup)

	var opts Options
	opts.Durability = Durability{
		Dir: dir, Fsync: wal.FsyncAlways, FS: ffs,
		CheckpointEvery: 16,
		HealBase:        time.Millisecond, HealMax: 8 * time.Millisecond,
	}
	eng, _, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustExecAll(t, eng, durSetup)

	// Background readers: a query loop and a health poller, exercising the
	// lock-free health surface and shared-lock reads concurrently with
	// writes, degradations and heals.
	stopBG := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopBG:
				return
			default:
			}
			eng.Execute("SELECT COUNT(*) FROM people")
			eng.Execute("SELECT src, dst FROM knows WHERE w > 3")
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopBG:
				return
			default:
			}
			eng.Health()
			eng.Execute("SHOW HEALTH")
		}
	}()

	randomStmt := func() string {
		id := rng.Intn(60)
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf("INSERT INTO people VALUES (%d, 'p%d')", id, id)
		case 1:
			return fmt.Sprintf("UPDATE people SET name = 'u%d' WHERE id = %d", rng.Intn(100), id)
		case 2:
			return fmt.Sprintf("DELETE FROM people WHERE id = %d", id)
		case 3:
			return fmt.Sprintf("INSERT INTO knows VALUES (%d, %d, %d, %d)", id, rng.Intn(60), rng.Intn(60), rng.Intn(9))
		default:
			return fmt.Sprintf("DELETE FROM knows WHERE id = %d", id)
		}
	}

	// exec mirrors an acknowledged statement into the reference engine.
	exec := func(q string) (acked bool, err error) {
		if _, err = eng.Execute(q); err != nil {
			return false, err
		}
		if _, rerr := ref.Execute(q); rerr != nil {
			t.Fatalf("reference rejected acknowledged statement %q: %v", q, rerr)
		}
		return true, nil
	}

	const sel = "SELECT id, name FROM people"
	var stmts, acked, degradedWrites, cycles int
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		cycles++
		// Calm-weather work, with an occasional transient EIO drizzle that
		// aborts statements but must never degrade the engine.
		drizzle := rng.Intn(3) == 0
		if drizzle {
			ffs.SetRate(faultfs.OpWrite, 0.2)
			ffs.SetRate(faultfs.OpSync, 0.2)
		}
		for i, n := 0, 20+rng.Intn(30); i < n; i++ {
			stmts++
			if ok, _ := exec(randomStmt()); ok {
				acked++
			}
		}
		if drizzle {
			ffs.Calm()
			if h := eng.Health(); h.State != StateHealthy {
				t.Fatalf("transient fault drizzle degraded the engine: %q", h.Reason)
			}
		}

		// Raise a storm that takes the durability path down entirely.
		if rng.Intn(2) == 0 {
			ffs.SetRate(faultfs.OpWrite, 1)    // break the log: write fails...
			ffs.SetRate(faultfs.OpTruncate, 1) // ...and rollback cannot clean up
		} else {
			ffs.SetFree(int64(rng.Intn(64))) // the disk fills up
		}
		sawDegraded := false
		for i := 0; i < 50 && !sawDegraded; i++ {
			stmts++
			ok, err := exec(randomStmt()) // a small frame may still fit the budget
			if ok {
				acked++
			}
			sawDegraded = errors.Is(err, ErrDegraded)
		}
		if !sawDegraded {
			t.Fatal("storm did not degrade the engine within 50 statements")
		}
		degradedWrites++

		// Degraded window: rejected writes are typed, reads still serve
		// exactly the acknowledged history.
		if _, err := eng.Execute(randomStmt()); !errors.Is(err, ErrDegraded) {
			t.Fatalf("degraded write: err = %v, want ErrDegraded", err)
		}
		degradedWrites++
		if ds, rs := querySig(t, eng, sel), querySig(t, ref, sel); ds != rs {
			t.Fatalf("degraded reads diverged from acknowledged history\n engine: %s\n ref:    %s", ds, rs)
		}

		// Skies clear; the engine must heal and take writes again.
		ffs.Calm()
		ffs.SetFree(-1)
		waitState(t, eng, StateHealthy, 10*time.Second)
	}

	// Clear the skies and let the engine heal for the finale.
	ffs.Calm()
	ffs.SetFree(-1)
	waitState(t, eng, StateHealthy, 10*time.Second)
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("INSERT INTO people VALUES (%d, 'final%d')", 100+i, i)
		if _, err := eng.Execute(q); err != nil {
			t.Fatalf("post-heal write %d: %v", i, err)
		}
		if _, err := ref.Execute(q); err != nil {
			t.Fatalf("reference post-heal write %d: %v", i, err)
		}
	}
	close(stopBG)
	wg.Wait()

	if ds, rs := stateSig(t, eng), stateSig(t, ref); ds != rs {
		t.Fatalf("final state diverged from reference\nengine:\n%s\nreference:\n%s", ds, rs)
	}

	// Kill-and-recover: FsyncAlways ran the whole soak, so recovery must
	// reproduce every acknowledged write — including those between heals.
	eng.Kill()
	re, info, err := Open(opts)
	if err != nil {
		t.Fatalf("recovery after soak: %v", err)
	}
	defer re.Close()
	if info.ReplayErrors != 0 {
		t.Fatalf("recovery replayed %d records with %d errors", info.Replayed, info.ReplayErrors)
	}
	if ds, rs := stateSig(t, re), stateSig(t, ref); ds != rs {
		t.Fatalf("recovered state diverged from reference\nrecovered:\n%s\nreference:\n%s", ds, rs)
	}
	if h := re.Health(); h.State != StateHealthy {
		t.Fatalf("recovered engine health = %v, want healthy", h.State)
	}
	t.Logf("disk-fault soak: %d cycles, %d statements (%d acked, %d degraded rejections), %d heals",
		cycles, stmts, acked, degradedWrites, metricsMap(eng)["durability.heals"])
}
