package core

import (
	"bytes"
	"strings"
	"testing"
)

// matViewEngine sets up Users plus a materialized view of its lawyers.
func matViewEngine(t *testing.T) *Engine {
	t.Helper()
	e := socialEngine(t)
	mustExec(t, e, `CREATE MATERIALIZED VIEW Lawyers AS
		SELECT uid, lname AS name FROM Users WHERE job = 'Lawyer'`)
	return e
}

func TestMatViewInitialContents(t *testing.T) {
	e := matViewEngine(t)
	r := mustExec(t, e, `SELECT name FROM Lawyers ORDER BY name`)
	got := render(r)
	if len(got) != 2 || got[0][0] != "Jones" || got[1][0] != "Smith" {
		t.Fatalf("contents: %v", got)
	}
	if r.Columns[0] != "name" {
		t.Errorf("alias lost: %v", r.Columns)
	}
	// Star projection.
	mustExec(t, e, `CREATE MATERIALIZED VIEW AllUsers AS SELECT * FROM Users`)
	r = mustExec(t, e, `SELECT COUNT(*) FROM AllUsers`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("star view: %v", render(r))
	}
}

func TestMatViewIncrementalMaintenance(t *testing.T) {
	e := matViewEngine(t)
	count := func() int64 {
		return mustExec(t, e, `SELECT COUNT(*) FROM Lawyers`).Rows[0][0].I
	}
	if count() != 2 {
		t.Fatalf("initial: %d", count())
	}
	// Insert a matching row: enters the view.
	mustExec(t, e, `INSERT INTO Users VALUES (6, 'New', '1999', 'Lawyer')`)
	if count() != 3 {
		t.Fatalf("after insert: %d", count())
	}
	// Insert a non-matching row: ignored.
	mustExec(t, e, `INSERT INTO Users VALUES (7, 'Other', '1999', 'Chef')`)
	if count() != 3 {
		t.Fatalf("after non-matching insert: %d", count())
	}
	// Update a row out of the view.
	mustExec(t, e, `UPDATE Users SET job = 'Judge' WHERE uid = 1`)
	if count() != 2 {
		t.Fatalf("after leave-update: %d", count())
	}
	// Update a row into the view.
	mustExec(t, e, `UPDATE Users SET job = 'Lawyer' WHERE uid = 7`)
	if count() != 3 {
		t.Fatalf("after enter-update: %d", count())
	}
	// In-place update propagates projected values.
	mustExec(t, e, `UPDATE Users SET lname = 'Renamed' WHERE uid = 2`)
	r := mustExec(t, e, `SELECT COUNT(*) FROM Lawyers WHERE name = 'Renamed'`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("in-place update lost: %v", render(r))
	}
	// Delete removes from the view.
	mustExec(t, e, `DELETE FROM Users WHERE uid = 2`)
	if count() != 2 {
		t.Fatalf("after delete: %d", count())
	}
}

// The paper's scenario: a graph view whose vertex source is a materialized
// view (§2, §3.3.2). Base DML flows through the view into the topology in
// one transaction.
func TestGraphViewOverMatView(t *testing.T) {
	e := New(Options{})
	mustScript(t, e, `
		CREATE TABLE People (pid BIGINT PRIMARY KEY, name VARCHAR, active BOOLEAN);
		CREATE TABLE Knows (kid BIGINT PRIMARY KEY, a BIGINT, b BIGINT);
		INSERT INTO People VALUES (1,'a',true),(2,'b',true),(3,'c',false),(4,'d',true);
		INSERT INTO Knows VALUES (1,1,2),(2,2,4);
		CREATE MATERIALIZED VIEW ActivePeople AS SELECT pid, name FROM People WHERE active = true;
		CREATE DIRECTED GRAPH VIEW ActiveGraph
			VERTEXES(ID = pid, name = name) FROM ActivePeople
			EDGES(ID = kid, FROM = a, TO = b) FROM Knows;
	`)
	gv, _ := e.Catalog().GraphView("ActiveGraph")
	if gv.G.NumVertices() != 3 {
		t.Fatalf("initial vertices: %d", gv.G.NumVertices())
	}
	// A new active person becomes a vertex through the view chain.
	mustExec(t, e, `INSERT INTO People VALUES (5, 'e', true)`)
	if gv.G.Vertex(5) == nil {
		t.Fatal("insert did not flow base -> matview -> topology")
	}
	// Deactivating a person removes the vertex (and would cascade edges).
	mustExec(t, e, `UPDATE People SET active = false WHERE pid = 5`)
	if gv.G.Vertex(5) != nil {
		t.Fatal("leave-update did not remove the vertex")
	}
	// An inactive person inserted does not appear.
	mustExec(t, e, `INSERT INTO People VALUES (6, 'f', false)`)
	if gv.G.Vertex(6) != nil {
		t.Fatal("inactive person entered the graph")
	}
	// Traversal works over the maintained chain.
	r := mustExec(t, e, `SELECT PS.PathString FROM ActiveGraph.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 4 LIMIT 1`)
	if len(r.Rows) != 1 {
		t.Fatalf("traversal: %v", render(r))
	}
}

func TestMatViewAtomicityUnderRollback(t *testing.T) {
	e := matViewEngine(t)
	// The second row violates the Users primary key: both the base insert
	// and its view propagation must unwind.
	if _, err := e.Execute(`INSERT INTO Users VALUES (8, 'X', '1', 'Lawyer'), (1, 'Dup', '1', 'Lawyer')`); err == nil {
		t.Fatal("pk violation accepted")
	}
	r := mustExec(t, e, `SELECT COUNT(*) FROM Lawyers`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("view not rolled back: %v", render(r))
	}
	// And the mapping is consistent: re-inserting uid 8 works and shows up
	// exactly once.
	mustExec(t, e, `INSERT INTO Users VALUES (8, 'X', '1', 'Lawyer')`)
	r = mustExec(t, e, `SELECT COUNT(*) FROM Lawyers`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("after reinsert: %v", render(r))
	}
	mustExec(t, e, `DELETE FROM Users WHERE uid = 8`)
	r = mustExec(t, e, `SELECT COUNT(*) FROM Lawyers`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("after delete: %v", render(r))
	}
}

func TestMatViewReadOnlyAndDropRules(t *testing.T) {
	e := matViewEngine(t)
	for _, q := range []string{
		`INSERT INTO Lawyers VALUES (9, 'nope')`,
		`UPDATE Lawyers SET name = 'x'`,
		`DELETE FROM Lawyers`,
		`TRUNCATE TABLE Lawyers`,
		`DROP TABLE Lawyers`,
	} {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
	// The base table cannot be dropped or truncated while the view exists.
	mustExec(t, e, `DROP GRAPH VIEW SocialNetwork`)
	if _, err := e.Execute(`DROP TABLE Users`); err == nil {
		t.Error("dropped base of materialized view")
	}
	// A graph view over the matview pins it.
	mustScript(t, e, `
		CREATE TABLE Rel2 (rid BIGINT PRIMARY KEY, a BIGINT, b BIGINT);
		CREATE DIRECTED GRAPH VIEW LG VERTEXES(ID = uid) FROM Lawyers
			EDGES(ID = rid, FROM = a, TO = b) FROM Rel2;
	`)
	if _, err := e.Execute(`DROP MATERIALIZED VIEW Lawyers`); err == nil {
		t.Error("dropped matview with dependent graph view")
	}
	mustExec(t, e, `DROP GRAPH VIEW LG`)
	mustExec(t, e, `DROP MATERIALIZED VIEW Lawyers`)
	if _, err := e.Execute(`SELECT * FROM Lawyers`); err == nil {
		t.Error("matview still queryable after drop")
	}
}

func TestMatViewValidation(t *testing.T) {
	e := socialEngine(t)
	for _, q := range []string{
		`CREATE MATERIALIZED VIEW v AS SELECT uid + 1 FROM Users`,                // computed item
		`CREATE MATERIALIZED VIEW v AS SELECT ghost FROM Users`,                  // unknown column
		`CREATE MATERIALIZED VIEW v AS SELECT uid FROM Ghost`,                    // unknown base
		`CREATE MATERIALIZED VIEW v AS SELECT uid, uid FROM Users`,               // dup name
		`CREATE MATERIALIZED VIEW v AS SELECT uid FROM Users WHERE uid = ?`,      // param
		`CREATE MATERIALIZED VIEW v AS SELECT uid FROM Users WHERE COUNT(*) > 1`, // aggregate
	} {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestMatViewSnapshotRoundTrip(t *testing.T) {
	e := matViewEngine(t)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{})
	if err := e2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, e2, `SELECT COUNT(*) FROM Lawyers`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("restored view: %v", render(r))
	}
	// Maintenance still works after restore.
	mustExec(t, e2, `INSERT INTO Users VALUES (9, 'Z', '1', 'Lawyer')`)
	r = mustExec(t, e2, `SELECT COUNT(*) FROM Lawyers`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("restored maintenance: %v", render(r))
	}
}

func TestShowMaterializedViews(t *testing.T) {
	e := matViewEngine(t)
	r := mustExec(t, e, `SHOW MATERIALIZED VIEWS`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "Lawyers" {
		t.Fatalf("show: %v", render(r))
	}
	// The backing table also appears in SHOW TABLES (it is queryable).
	r = mustExec(t, e, `SHOW TABLES`)
	found := false
	for _, row := range r.Rows {
		if strings.EqualFold(row[0].S, "Lawyers") {
			found = true
		}
	}
	if !found {
		t.Error("matview table missing from SHOW TABLES")
	}
}

func TestExplainStatement(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `EXPLAIN SELECT lname FROM Users WHERE uid = 1`)
	if len(r.Rows) == 0 || r.Columns[0] != "plan" {
		t.Fatalf("explain rows: %v", render(r))
	}
	text := ""
	for _, row := range r.Rows {
		text += row[0].S + "\n"
	}
	if !strings.Contains(text, "Scan") {
		t.Errorf("plan text: %s", text)
	}
	if _, err := e.Execute(`EXPLAIN DELETE FROM Users`); err == nil {
		t.Error("EXPLAIN DML accepted")
	}
}
