package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"grfusion/internal/types"
	"grfusion/internal/wal"
)

// FuzzWALReplay fuzzes the full recovery path over arbitrary WAL bytes:
// the input is written to a throwaway durability directory as wal.log and
// opened with core.Open. Whatever the bytes are — a real log, a torn one,
// a bit-flipped one, or garbage — recovery must never panic, and must
// either succeed replaying exactly the valid record prefix or fail with
// the typed wal.ErrCorruptWAL. On success the on-disk log must have been
// truncated to that prefix and a second recovery must reproduce the first.
//
// The checked-in corpus lives in testdata/fuzz/FuzzWALReplay; CI runs the
// target under -race with a fuzzing budget (make fuzz / the recovery job).
func FuzzWALReplay(f *testing.F) {
	real := realWALBytes(f)
	header := append([]byte(nil), real[:wal.HeaderSize]...)

	// A hand-built log: DDL, an alloc-pinned insert, and a parameterized
	// statement, so the fuzzer starts with every payload shape.
	built := append([]byte(nil), header...)
	built = wal.AppendFrame(built, &wal.Record{LSN: 1, SQL: "CREATE TABLE t (id BIGINT PRIMARY KEY, s VARCHAR)"})
	built = wal.AppendFrame(built, &wal.Record{LSN: 2, SQL: "INSERT INTO t VALUES (1, 'one')", Table: "t", NextSlot: 1})
	built = wal.AppendFrame(built, &wal.Record{LSN: 3, SQL: "INSERT INTO t VALUES (?, ?)", Table: "t", NextSlot: 2,
		Params: []types.Value{{Kind: types.KindInt, I: 2}, {Kind: types.KindString, S: "two"}}})

	f.Add([]byte(nil))                    // no file contents at all
	f.Add(append([]byte(nil), header...)) // empty log
	f.Add(real)                           // a log a real engine wrote
	f.Add(built)                          // hand-built frames incl. params
	f.Add(built[:len(built)-3])           // torn mid-frame
	f.Add(real[:wal.HeaderSize/2])        // torn mid-header
	f.Add([]byte("not a wal at all"))     // wrong magic
	f.Add([]byte("GRWAL\x00\x63\x00"))    // future format version

	// Bit flip in the final frame's payload (checksum mismatch).
	flipped := append([]byte(nil), built...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)

	// A frame header claiming an absurd payload length.
	huge := append([]byte(nil), header...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(huge)

	// A valid frame followed by a frame torn mid-length-prefix: the crash
	// window where only 2 of the 4 length bytes reached the disk. Recovery
	// must keep the first record and truncate the 2-byte stub.
	one := append([]byte(nil), header...)
	one = wal.AppendFrame(one, &wal.Record{LSN: 1, SQL: "CREATE TABLE t (id BIGINT PRIMARY KEY, s VARCHAR)"})
	cut := len(one)
	one = wal.AppendFrame(one, &wal.Record{LSN: 2, SQL: "INSERT INTO t VALUES (1, 'one')", Table: "t", NextSlot: 1})
	f.Add(append([]byte(nil), one[:cut+2]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var opts Options
		opts.Durability = Durability{Dir: dir, Fsync: wal.FsyncOff}
		eng, info, err := Open(opts)
		if err != nil {
			if !errors.Is(err, wal.ErrCorruptWAL) {
				t.Fatalf("recovery failed with an untyped error: %v", err)
			}
			return
		}
		defer eng.Close()

		// Valid-prefix property: recovery replayed exactly the records an
		// independent scan of the same bytes accepts.
		scan, scanErr := wal.Scan(bytes.NewReader(data))
		if scanErr != nil {
			t.Fatalf("recovery succeeded but Scan rejects the same bytes: %v", scanErr)
		}
		if info.Replayed != len(scan.Records) {
			t.Fatalf("replayed %d records, scan found %d", info.Replayed, len(scan.Records))
		}
		if info.TornTail != scan.Torn {
			t.Fatalf("recovery torn=%v, scan torn=%v", info.TornTail, scan.Torn)
		}

		// Truncation property: the surviving file is exactly the valid
		// prefix (or a fresh header when nothing at all was valid).
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if scan.ValidBytes > 0 {
			if !bytes.Equal(got, data[:scan.ValidBytes]) {
				t.Fatalf("on-disk log is not the valid prefix: %d bytes, want %d", len(got), scan.ValidBytes)
			}
		} else if len(got) != wal.HeaderSize {
			t.Fatalf("empty recovery left a %d-byte log, want a fresh %d-byte header", len(got), wal.HeaderSize)
		}
		eng.Close()

		// Idempotence property: recovering the truncated log again succeeds
		// and sees the same history, now without a torn tail.
		eng2, info2, err := Open(opts)
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		defer eng2.Close()
		if info2.Replayed != info.Replayed || info2.TornTail {
			t.Fatalf("second recovery diverged: %v vs %v", info2, info)
		}
	})
}

// realWALBytes runs a real durable engine through DDL, inserts, a graph
// view, prepared DML and a delete, crashes it, and returns the log it
// left behind — the highest-value fuzz seed.
func realWALBytes(f *testing.F) []byte {
	dir := f.TempDir()
	var opts Options
	opts.Durability = Durability{Dir: dir, Fsync: wal.FsyncOff}
	eng, _, err := Open(opts)
	if err != nil {
		f.Fatal(err)
	}
	for _, q := range []string{
		`CREATE TABLE people (id BIGINT PRIMARY KEY, name VARCHAR)`,
		`CREATE TABLE knows (id BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE)`,
		`INSERT INTO people VALUES (1, 'ada'), (2, 'bob')`,
		`INSERT INTO knows VALUES (10, 1, 2, 1.5)`,
		`CREATE DIRECTED GRAPH VIEW net VERTEXES (ID = id, name = name) FROM people EDGES (ID = id, FROM = src, TO = dst, w = w) FROM knows`,
		`DELETE FROM knows WHERE id = 10`,
	} {
		if _, err := eng.Execute(q); err != nil {
			f.Fatalf("%s: %v", q, err)
		}
	}
	ins, err := eng.PrepareDML(`INSERT INTO people VALUES (?, ?)`)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := ins.Exec(types.NewInt(3), types.NewString("eve")); err != nil {
		f.Fatal(err)
	}
	eng.Kill()
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	return data
}
