package core

import (
	"fmt"

	"grfusion/internal/graph"
)

// This file holds the engine hooks the differential-testing oracle
// (internal/oracle) drives: forcing a graph-view rebuild for the §3.3
// maintenance oracle and resizing the traversal worker pool for the
// worker-count metamorphic relation. Both are ordinary public API — they
// take the statement locks like any statement — but exist for testing, not
// for applications.

// RebuildGraphView reconstructs the named graph view's topology from the
// current contents of its relational sources and returns the fresh graph
// WITHOUT replacing the live, incrementally maintained topology. The §3.3
// maintenance invariant says the two must be identical after any DML
// history; the oracle diffs them after every randomized DML batch.
func (e *Engine) RebuildGraphView(name string) (*graph.Graph, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	gv, ok := e.cat.GraphView(name)
	if !ok {
		return nil, fmt.Errorf("unknown graph view %q", name)
	}
	// Statistics computed before the rebuild describe a topology that may
	// no longer match the sources; withdraw them rather than let the §6.3
	// BFS/DFS choice run on counts from a dead graph.
	gv.InvalidateStats()
	return gv.RebuildTopology()
}

// GraphTopology returns the live, incrementally maintained topology of the
// named graph view, for direct structural comparison against a rebuild.
// Callers must not mutate it and must not retain it across DML.
func (e *Engine) GraphTopology(name string) (*graph.Graph, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	gv, ok := e.cat.GraphView(name)
	if !ok {
		return nil, fmt.Errorf("unknown graph view %q", name)
	}
	return gv.G, nil
}

// SetWorkers resizes the multi-source traversal worker pool (see
// Options.Workers); the new size applies to statements started after the
// call. The oracle uses it to check that query results are byte-identical
// at any worker count.
func (e *Engine) SetWorkers(n int) {
	e.workers.Store(int64(n))
}
