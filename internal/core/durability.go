package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"grfusion/internal/faultfs"
	"grfusion/internal/sql"
	"grfusion/internal/types"
	"grfusion/internal/wal"
)

// Durability configures the write-ahead log and checkpointing. The zero
// value disables durability (the engine is purely in-memory, as the
// paper's prototype was). Durability only takes effect through Open —
// New ignores it, because an engine that logs must first recover what the
// log already contains.
type Durability struct {
	// Dir enables durability: the engine keeps its WAL (wal.log) and its
	// checkpoint (checkpoint.gob) in this directory, logs every mutating
	// statement before applying it, and Open recovers state from these
	// files on startup. Empty disables durability.
	Dir string
	// Fsync is the WAL sync policy: FsyncAlways (default — no
	// acknowledged write is ever lost), FsyncInterval (background sync,
	// bounded loss window), or FsyncOff (page cache only). Changeable at
	// runtime with SET WAL_FSYNC = ALWAYS|INTERVAL|OFF.
	Fsync wal.FsyncPolicy
	// FsyncInterval is the FsyncInterval ticker period (default 50ms).
	FsyncInterval time.Duration
	// CheckpointEvery checkpoints after this many logged statements:
	// snapshot to a temp file, fsync, atomic rename, then WAL truncation.
	// 0 means the default (4096); negative disables automatic checkpoints
	// (manual Checkpoint and the shutdown checkpoint still run).
	// Changeable at runtime with SET CHECKPOINT_EVERY = <n>.
	CheckpointEvery int

	// SoftFreeBytes / HardFreeBytes are disk-space watermarks checked on
	// the WAL append path. Free space under SoftFreeBytes forces a
	// checkpoint + WAL rotation to give log space back to the disk; under
	// HardFreeBytes the engine degrades to read-only instead of consuming
	// the last bytes the rest of the host needs. Zero disables a
	// watermark. (Off Linux the real filesystem cannot report free space
	// and both are inert unless FS overrides Free.)
	SoftFreeBytes int64
	HardFreeBytes int64

	// HealBase / HealMax bound the self-healing probe's capped
	// exponential backoff once the engine degrades (defaults 25ms / 2s).
	HealBase time.Duration
	HealMax  time.Duration

	// FS is the storage layer the WAL and checkpoints write through;
	// nil means the real filesystem. The disk-fault chaos tests pass a
	// faultfs.Faulty here.
	FS faultfs.FS

	// FaultHook injects WAL file-operation failures ("write", "sync",
	// "rotate"); CrashHook simulates crashes inside the checkpoint's
	// atomic-rename protocol. Test hooks; leave nil in production.
	FaultHook func(op string) error
	CrashHook wal.CrashFunc
}

// WAL/checkpoint file names inside Durability.Dir.
const (
	walFile        = "wal.log"
	checkpointFile = "checkpoint.gob"
)

// defaultCheckpointEvery is the automatic checkpoint threshold when
// Durability.CheckpointEvery is zero.
const defaultCheckpointEvery = 4096

// durState is the engine's durability runtime, guarded by the engine
// write lock (the Log has its own internal lock for the sync goroutine).
type durState struct {
	log   *wal.Log
	dir   string
	fs    faultfs.FS
	crash wal.CrashFunc
	// every / sinceCkpt drive automatic checkpoints.
	every     int
	sinceCkpt int
	// softFree / hardFree are the disk-space watermarks (bytes; 0 = off).
	softFree int64
	hardFree int64
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// CheckpointLoaded is true when a checkpoint file was restored;
	// CheckpointLSN is the LSN embedded in it.
	CheckpointLoaded bool
	CheckpointLSN    uint64
	// Replayed counts WAL records re-executed past the checkpoint;
	// ReplayErrors counts those whose statement failed (deterministic
	// failures that also failed before the crash).
	Replayed     int
	ReplayErrors int
	// TornTail is true when the WAL ended in a torn/corrupt record that
	// was truncated at the last valid frame.
	TornTail bool
	// LastLSN is the engine's log position after recovery.
	LastLSN uint64
}

func (ri *RecoveryInfo) String() string {
	if ri == nil {
		return "not durable"
	}
	ck := "no checkpoint"
	if ri.CheckpointLoaded {
		ck = fmt.Sprintf("checkpoint@%d", ri.CheckpointLSN)
	}
	torn := ""
	if ri.TornTail {
		torn = ", torn tail truncated"
	}
	return fmt.Sprintf("%s, %d replayed (%d failed)%s, lsn %d",
		ck, ri.Replayed, ri.ReplayErrors, torn, ri.LastLSN)
}

// Open creates an engine, recovering durable state when
// opts.Durability.Dir is set: it loads the latest checkpoint, replays the
// WAL tail (skipping records the checkpoint already covers), truncates a
// torn final record at the last valid frame, rebuilds graph views and
// their CSR snapshots from the recovered relations (§3.3 — topology is
// derived state and is never logged), and attaches the WAL so subsequent
// mutating statements are logged before they apply.
//
// A WAL or checkpoint that is unusable (not just torn) fails with an
// error matching wal.ErrCorruptWAL.
func Open(opts Options) (*Engine, *RecoveryInfo, error) {
	e := New(opts)
	d := opts.Durability
	if d.Dir == "" {
		return e, nil, nil
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{}
	// Phase 1: load the newest checkpoint, if any.
	ckptPath := filepath.Join(d.Dir, checkpointFile)
	if f, err := os.Open(ckptPath); err == nil {
		lsn, rerr := func() (uint64, error) {
			defer f.Close()
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.restoreLocked(f)
		}()
		if rerr != nil {
			return nil, nil, fmt.Errorf("%w: checkpoint %s: %v", wal.ErrCorruptWAL, ckptPath, rerr)
		}
		info.CheckpointLoaded, info.CheckpointLSN = true, lsn
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	// Phase 2: open the WAL — this scans it and truncates any torn tail —
	// and replay the records the checkpoint does not cover. The log is
	// not attached to the engine yet, so replayed statements are not
	// re-logged.
	lg, scan, err := wal.Open(filepath.Join(d.Dir, walFile), wal.Options{
		Fsync:     d.Fsync,
		Interval:  d.FsyncInterval,
		FaultHook: d.FaultHook,
		FS:        d.FS,
		OnSync:    func() { e.metrics.WALFsyncs.Inc() },
		OnAppend: func(n int) {
			e.metrics.WALAppends.Inc()
			e.metrics.WALAppendBytes.Add(int64(n))
		},
		OnRollback: func() { e.metrics.WALRollbacks.Inc() },
	})
	if err != nil {
		return nil, nil, err
	}
	info.TornTail = scan.Torn
	for _, rec := range scan.Records {
		if rec.LSN <= info.CheckpointLSN {
			continue // the checkpoint already contains this statement
		}
		if err := e.replayRecord(rec); err != nil {
			if errors.Is(err, wal.ErrCorruptWAL) {
				lg.Close()
				return nil, nil, err
			}
			info.ReplayErrors++
		}
		info.Replayed++
	}
	// Phase 3: attach the log for appends. A freshly rotated (empty) log
	// must continue the sequence from the checkpoint LSN.
	lg.EnsureLSN(info.CheckpointLSN)
	info.LastLSN = lg.LastLSN()
	e.mu.Lock()
	fs := d.FS
	if fs == nil {
		fs = faultfs.OS
	}
	e.dur = durState{
		log: lg, dir: d.Dir, fs: fs, crash: d.CrashHook,
		every: d.CheckpointEvery, softFree: d.SoftFreeBytes, hardFree: d.HardFreeBytes,
	}
	if e.dur.every == 0 {
		e.dur.every = defaultCheckpointEvery
	}
	e.health.durable.Store(true)
	e.health.healBase, e.health.healMax = d.HealBase, d.HealMax
	if e.health.healBase <= 0 {
		e.health.healBase = defaultHealBase
	}
	if e.health.healMax <= 0 {
		e.health.healMax = defaultHealMax
	}
	if e.health.healMax < e.health.healBase {
		e.health.healMax = e.health.healBase
	}
	// Rebuild the derived per-view CSR snapshots so the first traversal
	// after recovery does not pay the build.
	for _, name := range e.cat.GraphViews() {
		if gv, ok := e.cat.GraphView(name); ok {
			gv.CSR()
		}
	}
	// Publish the recovered state as one version: snapshot restore and
	// WAL replay happened behind the write lock (replayed statements each
	// published, but the checkpoint restore itself did not), so readers
	// admitted after Open returns pin the fully recovered database.
	e.publishLocked()
	e.mu.Unlock()
	e.metrics.WALRecoveries.Inc()
	return e, info, nil
}

// replayRecord re-executes one logged statement during recovery. The
// engine is deterministic, so a record either applies exactly as it did
// before the crash or fails exactly as it did before the crash; the
// allocation pin detects any divergence (a WAL that does not belong to
// this checkpoint) and surfaces it as corruption rather than silently
// rebuilding a different database.
func (e *Engine) replayRecord(rec *wal.Record) error {
	stmt, err := sql.Parse(rec.SQL)
	if err != nil {
		return fmt.Errorf("%w: record %d does not parse: %v", wal.ErrCorruptWAL, rec.LSN, err)
	}
	if rec.Table != "" {
		t, ok := e.cat.Table(rec.Table)
		if !ok {
			return fmt.Errorf("%w: record %d targets missing table %s", wal.ErrCorruptWAL, rec.LSN, rec.Table)
		}
		next, depth := t.AllocState()
		if uint64(next) != rec.NextSlot || uint32(depth) != rec.FreeDepth {
			return fmt.Errorf("%w: record %d replay divergence: table %s allocation state (%d,%d) != logged (%d,%d)",
				wal.ErrCorruptWAL, rec.LSN, rec.Table, next, depth, rec.NextSlot, rec.FreeDepth)
		}
	}
	if rec.Params != nil {
		pd, err := e.PrepareDML(rec.SQL)
		if err != nil {
			return fmt.Errorf("%w: record %d does not prepare: %v", wal.ErrCorruptWAL, rec.LSN, err)
		}
		_, err = pd.Exec(rec.Params...)
		return err
	}
	_, err = e.execStmt(context.Background(), stmt, rec.SQL)
	return err
}

// walRecordLocked builds the log record for a mutating statement: the SQL
// text, the bound parameters of a prepared execution, and the target
// table's pre-apply allocation pin. Requires the write lock.
func (e *Engine) walRecordLocked(stmt sql.Statement, text string, params []types.Value) (*wal.Record, error) {
	if text == "" {
		return nil, errors.New("durable engine requires statement text to log " +
			"(use Execute/ExecuteScript or prepared statements instead of ExecuteStmt)")
	}
	rec := &wal.Record{SQL: text, Params: params}
	var target string
	switch s := stmt.(type) {
	case *sql.Insert:
		target = s.Table
	case *sql.Update:
		target = s.Table
	case *sql.Delete:
		target = s.Table
	case *sql.TruncateTable:
		target = s.Name
	}
	if target != "" {
		if t, ok := e.cat.Table(target); ok {
			next, depth := t.AllocState()
			rec.Table, rec.NextSlot, rec.FreeDepth = t.Name(), uint64(next), uint32(depth)
		}
	}
	return rec, nil
}

// walAppendLocked logs rec ahead of applying it. On failure nothing has
// been applied and nothing survives in the log: the statement aborts
// cleanly. Requires the write lock.
//
// This is also the engine's disk-fault choke point: every mutating
// statement on a durable engine passes through here (Execute and prepared
// DML alike), so the degraded-mode gate, the disk-space watermarks, and
// the degrade triggers all live in one place. A transient injected write
// fault aborts only its own statement — the log rolled back cleanly and
// stays usable; the engine degrades only when the log itself is unusable
// (rollback truncation failed, file may end mid-frame) or the disk is out
// of space.
func (e *Engine) walAppendLocked(rec *wal.Record) (uint64, error) {
	if e.health.isDegraded() {
		e.metrics.DegradedWrites.Inc()
		reason := e.Health().Reason
		return 0, fmt.Errorf("%w (%s); reads still serve, retry writes after heal", ErrDegraded, reason)
	}
	if err := e.checkDiskSpaceLocked(); err != nil {
		return 0, err
	}
	lsn, err := e.dur.log.Append(rec)
	if err != nil {
		if reason := degradeReason(err, e.dur.log.Broken()); reason != "" {
			e.degradeLocked(reason)
			e.metrics.DegradedWrites.Inc()
			return 0, fmt.Errorf("statement aborted, not logged: %w: %v", ErrDegraded, err)
		}
		return 0, fmt.Errorf("statement aborted, not logged: %w", err)
	}
	return lsn, nil
}

// degradeReason classifies a failed append: "" means transient (abort the
// statement, stay healthy), anything else degrades the engine.
func degradeReason(err, broken error) string {
	switch {
	case broken != nil:
		return "wal unusable: " + broken.Error()
	case errors.Is(err, syscall.ENOSPC):
		return "disk full: " + err.Error()
	}
	return ""
}

// checkDiskSpaceLocked enforces the disk-space watermarks before an
// append. Under the soft watermark it reclaims WAL space with a
// checkpoint + rotation (the snapshot replaces an arbitrarily long log
// with one bounded by live data); under the hard watermark it degrades
// the engine rather than consume the disk's last bytes. Requires the
// write lock.
func (e *Engine) checkDiskSpaceLocked() error {
	d := &e.dur
	if d.softFree <= 0 && d.hardFree <= 0 {
		return nil
	}
	free, ok := d.fs.Free(d.dir)
	if !ok {
		return nil
	}
	if d.hardFree > 0 && free < d.hardFree {
		e.degradeLocked(fmt.Sprintf("free disk space %d B under hard watermark %d B", free, d.hardFree))
		e.metrics.DegradedWrites.Inc()
		return fmt.Errorf("%w: free disk space %d B under hard watermark %d B", ErrDegraded, free, d.hardFree)
	}
	if d.softFree > 0 && free < d.softFree && d.log.Size() > wal.HeaderSize {
		if err := e.checkpointLocked(); err != nil {
			log.Printf("core: soft-watermark checkpoint: %v", err)
			if errors.Is(err, syscall.ENOSPC) {
				e.degradeLocked("disk full during soft-watermark checkpoint: " + err.Error())
				e.metrics.DegradedWrites.Inc()
				return fmt.Errorf("%w: %v", ErrDegraded, err)
			}
			// Any other checkpoint failure: the append below may still
			// succeed; let it decide the statement's fate.
		}
	}
	return nil
}

// finishWALLocked settles the WAL after the statement body ran. A
// statement that failed to apply rolled itself back (the undo journal),
// so its record is removed from the log to keep disk and memory
// describing the same history; a statement that applied counts toward the
// automatic checkpoint threshold. Requires the write lock.
func (e *Engine) finishWALLocked(lsn uint64, applyErr error) {
	if lsn == 0 {
		return
	}
	if applyErr != nil {
		if err := e.dur.log.RollbackLast(lsn); err != nil {
			// The record stays; replay will re-run the statement into the
			// same deterministic failure, so recovery stays correct.
			log.Printf("core: wal rollback of LSN %d: %v", lsn, err)
			if b := e.dur.log.Broken(); b != nil {
				e.degradeLocked("wal unusable after failed statement rollback: " + b.Error())
			}
		}
		return
	}
	e.dur.sinceCkpt++
	if e.dur.every > 0 && e.dur.sinceCkpt >= e.dur.every {
		if err := e.checkpointLocked(); err != nil {
			log.Printf("core: automatic checkpoint: %v", err)
			if errors.Is(err, syscall.ENOSPC) {
				e.degradeLocked("disk full during automatic checkpoint: " + err.Error())
			}
		}
	}
}

// Checkpoint writes a durable snapshot (temp file, fsync, atomic rename)
// and truncates the WAL. Fails on a non-durable engine.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dur.log == nil {
		return errors.New("engine is not durable (no WAL directory configured)")
	}
	return e.checkpointLocked()
}

// checkpointLocked implements the checkpoint/truncation protocol under
// the write lock: embed the current LSN in a snapshot, write it atomically
// beside the WAL, then rotate the WAL to empty. A crash between the
// rename and the rotation is safe — recovery skips replayed records at or
// below the checkpoint LSN.
func (e *Engine) checkpointLocked() error {
	lsn := e.dur.log.LastLSN()
	path := filepath.Join(e.dur.dir, checkpointFile)
	err := wal.WriteFileAtomicFS(e.dur.fs, path, func(w io.Writer) error {
		return e.encodeSnapshotLocked(w, lsn)
	}, e.dur.crash)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := e.dur.log.Rotate(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	e.dur.sinceCkpt = 0
	e.metrics.WALCheckpoints.Inc()
	return nil
}

// Durable reports whether the engine has a WAL attached.
func (e *Engine) Durable() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.dur.log != nil
}

// WALFsyncPolicy returns the current fsync policy of a durable engine.
func (e *Engine) WALFsyncPolicy() (wal.FsyncPolicy, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.dur.log == nil {
		return 0, false
	}
	return e.dur.log.Policy(), true
}

// Shutdown gracefully stops a durable engine: final checkpoint, WAL
// close. Mutating statements issued afterwards fail (wal.ErrClosed);
// reads keep working. On a non-durable engine it is Close.
func (e *Engine) Shutdown() error {
	e.stopHealer()
	var err error
	e.mu.Lock()
	if e.dur.log != nil {
		err = e.checkpointLocked()
	}
	e.mu.Unlock()
	e.Close()
	return err
}

// Kill simulates a crash for the recovery tests: the WAL file descriptor
// is dropped with no sync, no checkpoint and no cleanup — whatever the OS
// already has is what recovery will see. The engine must not be used
// afterwards; recover with Open.
func (e *Engine) Kill() {
	e.stopHealer()
	e.mu.Lock()
	lg := e.dur.log
	e.mu.Unlock()
	if lg != nil {
		lg.Abandon()
	}
	e.Close()
}
