package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"grfusion/internal/exec"
	"grfusion/internal/plan"
	"grfusion/internal/sql"
	"grfusion/internal/types"
)

// This file regression-tests the MVCC read path: expired readers abort
// before touching any state, stalled readers neither block writers nor
// observe their effects, pinned versions stay immutable under DML, and
// the read-only dispatch covers every statement kind the parser emits.

// TestExpiredReaderAbortsBeforePlanning is the read-path deadline
// regression test: a SELECT whose context is already dead when it pins
// must abort with the lifecycle error WITHOUT planning or opening any
// scan. DebugPanicTable is the tripwire — if the statement reached its
// scan, the injected panic would surface as ErrQueryPanic instead.
func TestExpiredReaderAbortsBeforePlanning(t *testing.T) {
	e := New(Options{})
	mustExec(t, e, `CREATE TABLE T (id BIGINT PRIMARY KEY, name VARCHAR)`)
	mustExec(t, e, `INSERT INTO T VALUES (1, 'a')`)

	exec.DebugPanicTable = "T"
	defer func() { exec.DebugPanicTable = "" }()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := e.ExecuteContext(ctx, `SELECT * FROM T`)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired-deadline SELECT: got %v, want ErrTimeout", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err = e.ExecuteContext(ctx2, `SELECT * FROM T`)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled SELECT: got %v, want ErrCanceled", err)
	}

	// The prepared read path mirrors execStmt's check.
	exec.DebugPanicTable = ""
	p, err := e.Prepare(`SELECT * FROM T WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	exec.DebugPanicTable = "T"
	_, err = p.QueryContext(ctx, types.NewInt(1))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired-deadline prepared query: got %v, want ErrTimeout", err)
	}
}

// TestStalledReaderDoesNotBlockWriter is the MVCC acceptance test for the
// reader/writer stall bug: a reader blocked mid-scan must not prevent a
// writer from committing, and once released it must see the version it
// pinned — not the writer's effects.
func TestStalledReaderDoesNotBlockWriter(t *testing.T) {
	e := New(Options{})
	mustExec(t, e, `CREATE TABLE T (id BIGINT PRIMARY KEY, name VARCHAR)`)
	mustExec(t, e, `INSERT INTO T VALUES (1, 'a'), (2, 'b'), (3, 'c')`)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	exec.DebugStallTable = "T"
	exec.DebugStall = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	defer func() { exec.DebugStallTable = ""; exec.DebugStall = nil }()

	type readResult struct {
		count int64
		err   error
	}
	reader := make(chan readResult, 1)
	go func() {
		r, err := e.Execute(`SELECT COUNT(*) FROM T`)
		if err != nil {
			reader <- readResult{err: err}
			return
		}
		reader <- readResult{count: r.Rows[0][0].I}
	}()
	<-entered // the reader pinned its version and is stalled inside its scan

	// The writer must commit while the reader is still stalled. Before
	// MVCC this deadlocked: the reader held the shared statement lock.
	writer := make(chan error, 1)
	go func() {
		_, err := e.Execute(`INSERT INTO T VALUES (4, 'd')`)
		writer <- err
	}()
	select {
	case err := <-writer:
		if err != nil {
			t.Fatalf("writer failed while reader stalled: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("writer blocked behind a stalled reader")
	}

	// Release the reader: it must report the count of its pinned version.
	close(release)
	r := <-reader
	if r.err != nil {
		t.Fatalf("stalled reader failed: %v", r.err)
	}
	if r.count != 3 {
		t.Fatalf("stalled reader count = %d, want 3 (its pinned pre-insert version)", r.count)
	}

	// A fresh reader pins the post-insert version.
	if got := mustExec(t, e, `SELECT COUNT(*) FROM T`).Rows[0][0].I; got != 4 {
		t.Fatalf("fresh reader count = %d, want 4", got)
	}
}

// TestVersionedGraphViewPin pins a version, mutates the graph view's
// relational sources, and checks the pinned binding keeps the exact
// topology and rows it captured while the live topology advances.
func TestVersionedGraphViewPin(t *testing.T) {
	e := ladderEngine(t, 10, 0)
	st := e.pin()
	defer e.unpin(st)
	gv, ok := e.cat.GraphView("Ladder")
	if !ok {
		t.Fatal("missing graph view")
	}
	at := st.GraphView(gv)
	v0, e0 := at.G.NumVertices(), at.G.NumEdges()
	rows0 := st.Table(gv.VertexTable()).Len()
	seq0 := e.VersionSeq()

	mustExec(t, e, `INSERT INTO V VALUES (100, 'new')`)
	mustExec(t, e, `INSERT INTO E VALUES (9999, 0, 100, 1.5)`)

	if got := gv.G.NumVertices(); got != v0+1 {
		t.Fatalf("live vertices = %d, want %d", got, v0+1)
	}
	if at.G.NumVertices() != v0 || at.G.NumEdges() != e0 {
		t.Fatalf("pinned topology moved: %d/%d, want %d/%d",
			at.G.NumVertices(), at.G.NumEdges(), v0, e0)
	}
	if got := st.Table(gv.VertexTable()).Len(); got != rows0 {
		t.Fatalf("pinned vertex rows = %d, want %d", got, rows0)
	}
	if got := e.VersionSeq(); got != seq0+2 {
		t.Fatalf("version seq = %d, want %d (one publish per statement)", got, seq0+2)
	}
	// The current version binds the advanced topology.
	cur := e.pin()
	defer e.unpin(cur)
	if got := cur.GraphView(gv).G.NumVertices(); got != v0+1 {
		t.Fatalf("current version vertices = %d, want %d", got, v0+1)
	}
}

// TestPreparedReplansAcrossVersions checks the per-version plan cache: a
// Prepared reuses its plan while the engine version is unchanged and
// replans (seeing new data) after a mutation.
func TestPreparedReplansAcrossVersions(t *testing.T) {
	e := New(Options{})
	mustExec(t, e, `CREATE TABLE T (id BIGINT PRIMARY KEY, name VARCHAR)`)
	mustExec(t, e, `INSERT INTO T VALUES (1, 'a')`)
	p, err := e.Prepare(`SELECT COUNT(*) FROM T WHERE id >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Query(types.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 {
		t.Fatalf("count = %d, want 1", r.Rows[0][0].I)
	}
	mustExec(t, e, `INSERT INTO T VALUES (2, 'b')`)
	r, err = p.Query(types.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 {
		t.Fatalf("post-insert count = %d, want 2 (prepared must replan against the new version)", r.Rows[0][0].I)
	}
}

// readOnlyCorpus is one parseable statement of every kind the parser
// emits, in dependency order. statementKinds below must list every
// sql.Statement implementation; the test enforces both sides.
var readOnlyCorpus = []string{
	`CREATE TABLE RO (id BIGINT PRIMARY KEY, name VARCHAR)`,
	`CREATE INDEX ro_name ON RO (name)`,
	`INSERT INTO RO VALUES (1, 'a'), (2, 'b')`,
	`UPDATE RO SET name = 'c' WHERE id = 1`,
	`DELETE FROM RO WHERE id = 2`,
	`SELECT * FROM RO`,
	`EXPLAIN SELECT * FROM RO`,
	`SHOW TABLES`,
	`SHOW METRICS`,
	`SHOW HEALTH`,
	`SHOW GRAPH VIEWS`,
	`SHOW MATERIALIZED VIEWS`,
	`SET QUERY_TIMEOUT = 0`,
	`CREATE TABLE ROV (vid BIGINT PRIMARY KEY, name VARCHAR)`,
	`CREATE TABLE ROE (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT)`,
	`CREATE DIRECTED GRAPH VIEW ROG
		VERTEXES(ID = vid, name = name) FROM ROV
		EDGES(ID = eid, FROM = src, TO = dst) FROM ROE`,
	`CREATE MATERIALIZED VIEW ROM AS SELECT * FROM RO`,
	`DROP MATERIALIZED VIEW ROM`,
	`DROP GRAPH VIEW ROG`,
	`TRUNCATE TABLE RO`,
	`DROP TABLE RO`,
}

// statementKinds is the closed set of parser statement types. Adding a
// statement kind without extending readOnlyCorpus (and, if it is
// read-only, the execStmt dispatch) fails TestReadOnlyDispatchComplete.
var statementKinds = []sql.Statement{
	(*sql.CreateTable)(nil), (*sql.CreateIndex)(nil), (*sql.DropTable)(nil),
	(*sql.TruncateTable)(nil), (*sql.Insert)(nil), (*sql.Update)(nil),
	(*sql.Delete)(nil), (*sql.Select)(nil), (*sql.CreateGraphView)(nil),
	(*sql.CreateMatView)(nil), (*sql.DropMatView)(nil),
	(*sql.DropGraphView)(nil), (*sql.Explain)(nil), (*sql.Show)(nil),
	(*sql.Set)(nil),
}

// TestReadOnlyDispatchComplete is the enforced invariant behind the
// "internal: unhandled read-only statement" path: every statement kind
// must route through plan.ReadOnly and the executor dispatch without
// hitting it, and the corpus must cover every statement type, so a new
// read-only kind cannot ship without a dispatch arm.
func TestReadOnlyDispatchComplete(t *testing.T) {
	e := New(Options{})
	seen := map[reflect.Type]bool{}
	for _, q := range readOnlyCorpus {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		seen[reflect.TypeOf(stmt)] = true
		ro := plan.ReadOnly(stmt)
		res, err := e.ExecuteStmt(stmt)
		if err != nil {
			if strings.Contains(err.Error(), "unhandled read-only statement") {
				t.Fatalf("%q (ReadOnly=%v): executor dispatch is missing an arm: %v", q, ro, err)
			}
			t.Fatalf("%q: %v", q, err)
		}
		if res == nil {
			t.Fatalf("%q: nil result without error", q)
		}
	}
	for _, k := range statementKinds {
		if ty := reflect.TypeOf(k); !seen[ty] {
			t.Errorf("corpus has no statement of kind %v", ty)
		}
	}
	if len(seen) != len(statementKinds) {
		t.Errorf("corpus covers %d kinds, statementKinds lists %d — keep both in sync with the parser",
			len(seen), len(statementKinds))
	}
}

// TestMVCCMetricsSurface checks the new lock/MVCC metrics are published
// under their SHOW METRICS keys and behave: versions are published per
// mutation, the combined lock.wait_ns key is the sum of the split keys.
func TestMVCCMetricsSurface(t *testing.T) {
	e := New(Options{})
	mustExec(t, e, `CREATE TABLE T (id BIGINT PRIMARY KEY)`)
	mustExec(t, e, `INSERT INTO T VALUES (1)`)
	mustExec(t, e, `SELECT * FROM T`)

	kv := map[string]int64{}
	for _, row := range mustExec(t, e, `SHOW METRICS`).Rows {
		kv[row[0].String()] = row[1].I
	}
	for _, name := range []string{"lock.read_wait_ns", "lock.write_wait_ns", "lock.wait_ns",
		"mvcc.published", "mvcc.versions_live", "mvcc.seq", "mvcc.pinned_readers"} {
		if _, ok := kv[name]; !ok {
			t.Errorf("SHOW METRICS missing %q", name)
		}
	}
	if kv["lock.wait_ns"] != kv["lock.read_wait_ns"]+kv["lock.write_wait_ns"] {
		t.Errorf("lock.wait_ns = %d, want read+write = %d",
			kv["lock.wait_ns"], kv["lock.read_wait_ns"]+kv["lock.write_wait_ns"])
	}
	// New() publishes v1, then CREATE + INSERT publish one each.
	if kv["mvcc.published"] < 3 || kv["mvcc.seq"] < 3 {
		t.Errorf("mvcc.published=%d mvcc.seq=%d, want >= 3", kv["mvcc.published"], kv["mvcc.seq"])
	}
	if kv["mvcc.versions_live"] < 1 {
		t.Errorf("mvcc.versions_live = %d, want >= 1", kv["mvcc.versions_live"])
	}
	if got := kv["mvcc.pinned_readers"]; got != 1 {
		// SHOW METRICS itself holds the only pin while snapshotting.
		t.Errorf("mvcc.pinned_readers = %d, want 1", got)
	}
	if e.VersionSeq() != uint64(kv["mvcc.seq"]) {
		t.Errorf("VersionSeq=%d disagrees with mvcc.seq=%d", e.VersionSeq(), kv["mvcc.seq"])
	}
}

// TestVersionRegistryPrunes checks superseded, unpinned versions leave the
// live registry so the mvcc.versions_live gauge cannot grow unbounded.
func TestVersionRegistryPrunes(t *testing.T) {
	e := New(Options{})
	mustExec(t, e, `CREATE TABLE T (id BIGINT PRIMARY KEY)`)
	for i := 0; i < 50; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO T VALUES (%d)`, i))
	}
	e.mu.Lock()
	live := len(e.states)
	e.mu.Unlock()
	if live != 1 {
		t.Fatalf("versions live after quiesce = %d, want 1 (only the current version)", live)
	}

	// A pinned version is retained across publishes, then pruned.
	st := e.pin()
	mustExec(t, e, `INSERT INTO T VALUES (1000)`)
	e.mu.Lock()
	live = len(e.states)
	e.mu.Unlock()
	if live != 2 {
		t.Fatalf("versions live with one pinned reader = %d, want 2", live)
	}
	e.unpin(st)
	mustExec(t, e, `INSERT INTO T VALUES (1001)`)
	e.mu.Lock()
	live = len(e.states)
	e.mu.Unlock()
	if live != 1 {
		t.Fatalf("versions live after unpin+publish = %d, want 1", live)
	}
}
