package core

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"grfusion/internal/wal"
)

// Disk-fault tolerance (degraded read-only mode + self-healing).
//
// The engine's durability path — WAL appends, fsyncs, checkpoint writes —
// is the one place a disk fault can poison an otherwise healthy in-memory
// database. Instead of failing every subsequent write forever (the
// pre-PR-8 behavior once the log marked itself broken), the engine runs a
// small state machine:
//
//	healthy ──(wal unusable | ENOSPC | hard watermark)──▶ degraded
//	degraded ──(backoff elapsed)──▶ healing (one probe attempt)
//	healing ──(probe fails)──▶ degraded          (backoff doubles, capped)
//	healing ──(probe succeeds)──▶ healthy
//
// While degraded, reads/EXPLAIN/SHOW/analytics keep serving under the
// shared lock exactly as before — they never touch the WAL — and every
// mutating statement fails fast with ErrDegraded before logging anything.
// Because the engine logs before it applies, the in-memory state is
// precisely the acknowledged history, so healing can always re-establish
// durability by checkpointing memory and rotating in a fresh log; no
// acknowledged write is ever lost across a degrade → heal → crash cycle.

// HealthState is the engine's durability health.
type HealthState int32

const (
	// StateHealthy: the durability path works; mutating statements log
	// and apply normally.
	StateHealthy HealthState = iota
	// StateDegraded: the WAL or disk is failing; the engine serves reads
	// only and a background prober is attempting to heal.
	StateDegraded
	// StateHealing: a heal probe is running right now (it holds the
	// statement write lock, so the state is externally visible only
	// through the health surface).
	StateHealing
)

func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateHealing:
		return "healing"
	default:
		return fmt.Sprintf("HealthState(%d)", int32(s))
	}
}

// Default heal-probe backoff bounds (Durability.HealBase/HealMax override).
const (
	defaultHealBase = 25 * time.Millisecond
	defaultHealMax  = 2 * time.Second
)

// healthState is the engine-embedded health machine. The atomic state
// supports lock-free reads from /healthz-style probes; transitions happen
// only under the engine write lock (degradeLocked, tryHeal), so they are
// serialized. The small mutex guards the descriptive fields and the
// healer goroutine's lifecycle channels — never held while acquiring any
// other lock.
type healthState struct {
	state   atomic.Int32
	durable atomic.Bool

	mu      sync.Mutex
	reason  string    // what degraded the engine ("" when healthy)
	healErr string    // latest failed heal attempt ("" if none yet)
	since   time.Time // when the engine degraded
	stop    chan struct{}
	done    chan struct{}

	healBase, healMax time.Duration
}

func (h *healthState) isDegraded() bool {
	return HealthState(h.state.Load()) != StateHealthy
}

// Health is a point-in-time snapshot of the engine's durability health,
// the single source every surface (SHOW HEALTH, the wire health command,
// /healthz, /readyz) renders from.
type Health struct {
	State   HealthState
	Durable bool
	// Reason is what degraded the engine; LastHealError is the most
	// recent failed probe. Both empty while healthy.
	Reason        string
	LastHealError string
	// Since is when the engine degraded (zero while healthy).
	Since time.Time
	// Cumulative counters (mirrored in SHOW METRICS).
	HealAttempts   int64
	Heals          int64
	DegradedWrites int64
	WALRollbacks   int64
}

// Ready reports whether the engine should receive write traffic
// (/readyz): durable and healthy, or not durable at all.
func (h Health) Ready() bool { return h.State == StateHealthy }

// Pairs renders the snapshot as ordered name/value string rows — the
// shared shape of SHOW HEALTH and the wire health command.
func (h Health) Pairs() [][2]string {
	degradedForMS := int64(0)
	since := ""
	if !h.Since.IsZero() {
		degradedForMS = time.Since(h.Since).Milliseconds()
		since = h.Since.UTC().Format(time.RFC3339Nano)
	}
	return [][2]string{
		{"state", h.State.String()},
		{"durable", strconv.FormatBool(h.Durable)},
		{"ready", strconv.FormatBool(h.Ready())},
		{"reason", h.Reason},
		{"last_heal_error", h.LastHealError},
		{"since", since},
		{"degraded_for_ms", strconv.FormatInt(degradedForMS, 10)},
		{"heal_attempts", strconv.FormatInt(h.HealAttempts, 10)},
		{"heals", strconv.FormatInt(h.Heals, 10)},
		{"degraded_writes", strconv.FormatInt(h.DegradedWrites, 10)},
		{"wal_rollbacks", strconv.FormatInt(h.WALRollbacks, 10)},
	}
}

// Health returns the engine's current durability health. It takes no
// engine lock, so it stays responsive while statements (or a heal probe)
// hold the write lock — exactly what a liveness endpoint needs.
func (e *Engine) Health() Health {
	h := &e.health
	h.mu.Lock()
	reason, healErr, since := h.reason, h.healErr, h.since
	h.mu.Unlock()
	return Health{
		State:          HealthState(h.state.Load()),
		Durable:        h.durable.Load(),
		Reason:         reason,
		LastHealError:  healErr,
		Since:          since,
		HealAttempts:   e.metrics.HealAttempts.Value(),
		Heals:          e.metrics.Heals.Value(),
		DegradedWrites: e.metrics.DegradedWrites.Value(),
		WALRollbacks:   e.metrics.WALRollbacks.Value(),
	}
}

// degradeLocked flips the engine into degraded read-only mode and starts
// the background healer. Requires the engine write lock (all state
// transitions are serialized under it); no-op if already degraded.
func (e *Engine) degradeLocked(reason string) {
	h := &e.health
	if h.isDegraded() {
		return
	}
	h.mu.Lock()
	h.state.Store(int32(StateDegraded))
	h.reason, h.healErr, h.since = reason, "", time.Now()
	stop := make(chan struct{})
	done := make(chan struct{})
	h.stop, h.done = stop, done
	h.mu.Unlock()
	e.metrics.DurabilityDegraded.Set(1)
	log.Printf("core: entering degraded read-only mode: %s", reason)
	go e.healLoop(stop, done)
}

// stopHealer terminates the background healer, if any, and waits for it.
// Callers must NOT hold the engine lock (the healer takes it per probe).
func (e *Engine) stopHealer() {
	h := &e.health
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// healLoop probes the durability path with capped exponential backoff and
// full jitter until a probe succeeds or the engine shuts down. Jitter
// spreads probes out so many engines degraded by the same shared-disk
// incident do not retry in lockstep.
func (e *Engine) healLoop(stop, done chan struct{}) {
	defer close(done)
	h := &e.health
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := h.healBase
	for {
		delay := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		select {
		case <-stop:
			return
		case <-time.After(delay):
		}
		e.metrics.HealAttempts.Inc()
		if e.tryHeal() {
			return
		}
		if backoff *= 2; backoff > h.healMax {
			backoff = h.healMax
		}
	}
}

// tryHeal runs one probe under the write lock. Returning true ends the
// heal loop (healed, or nothing left to heal).
func (e *Engine) tryHeal() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := &e.health
	if e.dur.log == nil || HealthState(h.state.Load()) != StateDegraded {
		return true
	}
	h.state.Store(int32(StateHealing))
	if err := e.healAttemptLocked(); err != nil {
		h.state.Store(int32(StateDegraded))
		h.mu.Lock()
		h.healErr = err.Error()
		h.mu.Unlock()
		return false
	}
	h.state.Store(int32(StateHealthy))
	h.mu.Lock()
	h.reason, h.healErr, h.since = "", "", time.Time{}
	h.mu.Unlock()
	e.metrics.Heals.Inc()
	e.metrics.DurabilityDegraded.Set(0)
	log.Printf("core: durability healed; engine returned to read-write")
	return true
}

// healAttemptLocked re-establishes the durability path. Order matters:
//
//  1. Disk-space gate — no point churning a full disk.
//  2. Checkpoint — the in-memory state IS the acknowledged history
//     (log-before-apply), so atomically snapshotting it both retries any
//     checkpoint that failed while degraded and covers every record of
//     the old (possibly broken, possibly mid-frame) log; the rotation
//     inside the checkpoint then swaps in a fresh empty log and clears
//     the broken marker. A crash between snapshot and rotation is the
//     same crash window checkpoints always had: records at or below the
//     checkpoint LSN replay as no-ops.
//  3. Probe round-trip — append + fsync + rollback on the fresh log
//     proves writes actually reach stable storage before the engine
//     re-admits mutating statements. The probe record is a SET (replays
//     harmlessly on any engine) in case a crash strands it mid-probe.
func (e *Engine) healAttemptLocked() error {
	d := &e.dur
	if free, ok := d.fs.Free(d.dir); ok && d.hardFree > 0 && free < d.hardFree {
		return fmt.Errorf("free disk space %d B still under hard watermark %d B", free, d.hardFree)
	}
	if err := e.checkpointLocked(); err != nil {
		return fmt.Errorf("checkpoint retry: %w", err)
	}
	probe := &wal.Record{SQL: fmt.Sprintf("SET QUERY_TIMEOUT = %d", e.QueryTimeout().Milliseconds())}
	lsn, err := d.log.Append(probe)
	if err != nil {
		return fmt.Errorf("probe append: %w", err)
	}
	if err := d.log.Sync(); err != nil {
		return fmt.Errorf("probe fsync: %w", err)
	}
	if err := d.log.RollbackLast(lsn); err != nil {
		return fmt.Errorf("probe rollback: %w", err)
	}
	return nil
}
