package core

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"time"

	"grfusion/internal/exec"
	"grfusion/internal/expr"
	"grfusion/internal/metrics"
	"grfusion/internal/plan"
	"grfusion/internal/sql"
	"grfusion/internal/types"
)

// Prepared is a compiled, parameterized SELECT: parsed once, planned
// lazily per engine version, executable many times with different `?`
// argument values. This is the VoltDB execution model the paper's system
// inherits — queries run as precompiled stored procedures, so
// steady-state query time is pure execution with no parse or plan cost.
//
// Under MVCC a plan is bound to the version it was planned against (its
// scans carry that version's snapshots and topology bindings), so the
// compiled operator tree is cached per version sequence: as long as no
// mutation intervenes, executions reuse the cached plan; after a
// mutation, the next execution replans against the new version — which
// also means DDL no longer silently invalidates a Prepared, it just
// replans (and fails cleanly if its objects were dropped).
type Prepared struct {
	e       *Engine
	s       *sql.Select
	cols    []string
	nparams int

	// planMu guards the (seq, op) plan cache; executions only hold it
	// while fetching or refreshing the cached plan, never during
	// execution.
	planMu sync.Mutex
	seq    uint64
	op     exec.Operator
}

// Prepare parses and plans a SELECT containing `?` placeholders.
func (e *Engine) Prepare(query string) (*Prepared, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	s, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("Prepare supports SELECT statements only, got %T (use PrepareDML)", stmt)
	}
	st := e.pin()
	defer e.unpin(st)
	p := &plan.Planner{Cat: st.cat, Opts: e.planOptions(), Pin: st}
	op, err := p.PlanSelect(s)
	if err != nil {
		return nil, err
	}
	cols := make([]string, op.Schema().Len())
	for i, c := range op.Schema().Columns {
		cols[i] = c.Name
	}
	return &Prepared{e: e, s: s, cols: cols, nparams: countParams(s), seq: st.seq, op: op}, nil
}

// planFor returns the operator tree for the pinned version, reusing the
// cached plan when the version is unchanged since it was built.
func (p *Prepared) planFor(st *dbState) (exec.Operator, error) {
	p.planMu.Lock()
	defer p.planMu.Unlock()
	if p.op != nil && p.seq == st.seq {
		return p.op, nil
	}
	pl := &plan.Planner{Cat: st.cat, Opts: p.e.planOptions(), Pin: st}
	op, err := pl.PlanSelect(p.s)
	if err != nil {
		return nil, err
	}
	p.seq, p.op = st.seq, op
	return op, nil
}

// PreparedDML is a parsed, parameterized INSERT/UPDATE/DELETE — the write
// half of the VoltDB procedure model. Parsing happens once; execution
// re-binds per call (DML binding is cheap: one table schema), so
// steady-state cost is the mutation plus view maintenance.
type PreparedDML struct {
	e       *Engine
	stmt    sql.Statement
	text    string // the original SQL, logged with bound params on a durable engine
	nparams int
}

// PrepareDML parses an INSERT, UPDATE or DELETE containing `?`
// placeholders.
func (e *Engine) PrepareDML(query string) (*PreparedDML, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	var n int
	switch s := stmt.(type) {
	case *sql.Insert:
		for _, row := range s.Rows {
			for _, ex := range row {
				n = maxParams(n, ex)
			}
		}
	case *sql.Update:
		for _, sc := range s.Sets {
			n = maxParams(n, sc.E)
		}
		n = maxParams(n, s.Where)
	case *sql.Delete:
		n = maxParams(n, s.Where)
	default:
		return nil, fmt.Errorf("PrepareDML supports INSERT/UPDATE/DELETE, got %T", stmt)
	}
	return &PreparedDML{e: e, stmt: stmt, text: query, nparams: n}, nil
}

// NumParams returns the number of `?` placeholders.
func (p *PreparedDML) NumParams() int { return p.nparams }

// Exec runs the prepared DML with the given parameter values. On a
// durable engine the statement template and its bound parameters are
// logged before applying, like any other mutation.
func (p *PreparedDML) Exec(params ...types.Value) (*Result, error) {
	if len(params) != p.nparams {
		return nil, fmt.Errorf("prepared statement expects %d parameter(s), got %d",
			p.nparams, len(params))
	}
	e := p.e
	lw := time.Now()
	e.mu.Lock()
	e.metrics.LockWriteWaitNS.Add(time.Since(lw).Nanoseconds())
	defer e.mu.Unlock()
	var walLSN uint64
	if e.dur.log != nil {
		rec, err := e.walRecordLocked(p.stmt, p.text, params)
		if err != nil {
			return nil, err
		}
		if walLSN, err = e.walAppendLocked(rec); err != nil {
			return nil, err
		}
	}
	var res *Result
	var err error
	switch s := p.stmt.(type) {
	case *sql.Insert:
		res, err = e.runInsertParams(s, types.Row(params))
	case *sql.Update:
		res, err = e.runUpdateParams(s, types.Row(params))
	default:
		res, err = e.runDeleteParams(p.stmt.(*sql.Delete), types.Row(params))
	}
	e.finishWALLocked(walLSN, err)
	if err == nil {
		e.publishLocked()
	}
	return res, err
}

func maxParams(cur int, e expr.Expr) int {
	expr.Walk(e, func(n expr.Expr) bool {
		if prm, ok := n.(*expr.Param); ok && prm.Idx+1 > cur {
			cur = prm.Idx + 1
		}
		return true
	})
	return cur
}

// NumParams returns the number of `?` placeholders in the statement.
func (p *Prepared) NumParams() int { return p.nparams }

// Columns returns the result column names.
func (p *Prepared) Columns() []string { return p.cols }

// Query executes the prepared plan with the given parameter values. It
// pins the current engine version like any reader — no lock taken — so
// any number of prepared queries (and ad-hoc reads) run concurrently,
// even alongside writers; operator trees keep all per-execution state in
// their iterators, making a Prepared safe for concurrent Query calls
// from multiple goroutines.
func (p *Prepared) Query(params ...types.Value) (*Result, error) {
	return p.QueryContext(context.Background(), params...)
}

// QueryContext is Query under a cancellation context: the context's
// deadline or cancellation — tightened by the engine's QUERY_TIMEOUT when
// one is set — aborts the execution with ErrTimeout/ErrCanceled. A
// recovered operator panic surfaces as ErrQueryPanic.
func (p *Prepared) QueryContext(ctx context.Context, params ...types.Value) (res *Result, err error) {
	if len(params) != p.nparams {
		return nil, fmt.Errorf("prepared statement expects %d parameter(s), got %d",
			p.nparams, len(params))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d := p.e.QueryTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// Prepared executions count as SELECTs; when the slow-query log is
	// armed the plan runs instrumented so the log can name top operators.
	var prof *exec.Instrumented
	start := time.Now()
	defer func() {
		p.e.observeStatement(metrics.StmtSelect, "<prepared query>", time.Since(start), err, prof)
	}()
	defer func() {
		if r := recover(); r != nil {
			log.Printf("core: recovered query panic: %v\n%s", r, debug.Stack())
			res, err = nil, fmt.Errorf("%w: %v", ErrQueryPanic, r)
		}
	}()
	lw := time.Now()
	st := p.e.pin()
	p.e.metrics.LockReadWaitNS.Add(time.Since(lw).Nanoseconds())
	defer p.e.unpin(st)
	// Mirror execStmt: an execution whose deadline elapsed (or that was
	// canceled) before it pinned aborts before touching the plan.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	op, err := p.planFor(st)
	if err != nil {
		return nil, err
	}
	run := op
	if p.e.slowQueryNS.Load() > 0 {
		prof = exec.Instrument(op)
		run = prof
	}
	ec := exec.NewContext(p.e.opts.MemLimit)
	ec.Workers = p.e.workerCount()
	ec.Params = types.Row(params)
	ec.Bind(ctx)
	rows, err := exec.Collect(ec, run)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: p.cols, Rows: rows}, nil
}

// countParams counts the distinct `?` placeholders of a SELECT (the parser
// numbers them in lexical order).
func countParams(s *sql.Select) int {
	max := 0
	count := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) bool {
			if prm, ok := n.(*expr.Param); ok && prm.Idx+1 > max {
				max = prm.Idx + 1
			}
			return true
		})
	}
	for _, it := range s.Items {
		if it.Expr != nil {
			count(it.Expr)
		}
	}
	count(s.Where)
	for _, g := range s.GroupBy {
		count(g)
	}
	count(s.Having)
	for _, o := range s.OrderBy {
		count(o.E)
	}
	return max
}
