package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"grfusion/internal/graph"
	"grfusion/internal/types"
)

// randomGraphEngine loads a seeded random directed graph through SQL and
// returns the engine plus an independently built reference topology.
func randomGraphEngine(t testing.TB, n, m int, seed int64) (*Engine, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	e := New(Options{})
	mustScriptTB(t, e, `
		CREATE TABLE V (vid BIGINT PRIMARY KEY);
		CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, w BIGINT);
	`)
	ref := graph.New("ref", true)
	var vs, es []string
	for i := 0; i < n; i++ {
		vs = append(vs, fmt.Sprintf("(%d)", i))
		ref.AddVertex(int64(i), uint64(i+1))
	}
	for i := 0; i < m; i++ {
		a, b := rng.Int63n(int64(n)), rng.Int63n(int64(n))
		w := rng.Int63n(100)
		es = append(es, fmt.Sprintf("(%d, %d, %d, %d)", i, a, b, w))
		ref.AddEdge(int64(i), a, b, uint64(i+1))
	}
	mustExecTB(t, e, "INSERT INTO V VALUES "+strings.Join(vs, ", "))
	mustExecTB(t, e, "INSERT INTO E VALUES "+strings.Join(es, ", "))
	mustExecTB(t, e, `CREATE DIRECTED GRAPH VIEW G VERTEXES(ID=vid) FROM V
		EDGES(ID=eid, FROM=a, TO=b, w=w) FROM E`)
	return e, ref
}

func mustExecTB(t testing.TB, e *Engine, q string) *Result {
	r, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return r
}

func mustScriptTB(t testing.TB, e *Engine, script string) {
	if _, err := e.ExecuteScript(script); err != nil {
		t.Fatalf("script: %v", err)
	}
}

// Property: SQL reachability through the engine agrees with the raw graph
// kernel on random graphs and random endpoint pairs.
func TestSQLReachabilityMatchesKernel(t *testing.T) {
	prop := func(seed int64) bool {
		s := seed % 1000
		e, ref := randomGraphEngine(t, 18, 30, s)
		p, err := e.Prepare(`SELECT PS.PathString FROM G.Paths PS
			WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ? LIMIT 1`)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(s + 999))
		for i := 0; i < 12; i++ {
			src := rng.Int63n(18)
			dst := rng.Int63n(18)
			if src == dst {
				continue
			}
			want := graph.Reachable(ref, ref.Vertex(src), ref.Vertex(dst), 0)
			res, err := p.Query(types.NewInt(src), types.NewInt(dst))
			if err != nil {
				t.Fatal(err)
			}
			if (len(res.Rows) > 0) != want {
				t.Logf("seed %d: reach(%d,%d) sql=%v kernel=%v", s, src, dst, len(res.Rows) > 0, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: SPScan's shortest distance agrees with the kernel Dijkstra.
func TestSQLShortestPathMatchesKernel(t *testing.T) {
	prop := func(seed int64) bool {
		s := seed % 1000
		e, ref := randomGraphEngine(t, 15, 28, s)
		p, err := e.Prepare(`SELECT TOP 1 SUM(PS.Edges.w) FROM G.Paths PS HINT(SHORTESTPATH(w))
			WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ?`)
		if err != nil {
			t.Fatal(err)
		}
		w := map[int64]float64{}
		res, _ := e.Execute(`SELECT eid, w FROM E`)
		for _, r := range res.Rows {
			w[r[0].I] = float64(r[1].I)
		}
		wf := func(pos int, ed *graph.Edge, from, to *graph.Vertex) (float64, bool) { return w[ed.ID], true }
		rng := rand.New(rand.NewSource(s + 7))
		for i := 0; i < 8; i++ {
			src, dst := rng.Int63n(15), rng.Int63n(15)
			if src == dst {
				continue
			}
			want, err := graph.ShortestPath(ref, ref.Vertex(src), ref.Vertex(dst), wf)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Query(types.NewInt(src), types.NewInt(dst))
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				if len(got.Rows) != 0 {
					return false
				}
				continue
			}
			if len(got.Rows) != 1 {
				return false
			}
			// Zero-weight empty SUM is NULL for the trivial case; paths here
			// have >= 1 edge.
			if got.Rows[0][0].AsFloat() != want.Cost {
				t.Logf("seed %d: sp(%d,%d) sql=%v kernel=%g", s, src, dst, got.Rows[0][0], want.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: snapshot/restore preserves every query result and graph-view
// consistency under random mutations.
func TestSnapshotRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		s := seed % 500
		e, _ := randomGraphEngine(t, 12, 20, s)
		// Random mutations before the snapshot.
		rng := rand.New(rand.NewSource(s + 3))
		for i := 0; i < 6; i++ {
			eid := rng.Int63n(20)
			mustExecTB(t, e, fmt.Sprintf("DELETE FROM E WHERE eid = %d", eid))
		}
		queries := []string{
			`SELECT COUNT(*) FROM E`,
			`SELECT COUNT(*) FROM G.Edges E2`,
			`SELECT COUNT(P) FROM G.Paths P WHERE P.Length = 2`,
		}
		var before []string
		for _, q := range queries {
			before = append(before, render(mustExecTB(t, e, q))[0][0])
		}
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		e2 := New(Options{})
		if err := e2.Restore(&buf); err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			got := render(mustExecTB(t, e2, q))[0][0]
			if got != before[i] {
				t.Logf("seed %d: %q: %s != %s", s, q, got, before[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: the count of simple paths of length L is identical across
// DFS+ALLPATHS and BFS+ALLPATHS physical operators.
func TestAllPathsCountPhysicalEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		s := seed % 500
		e, _ := randomGraphEngine(t, 12, 24, s)
		counts := map[string]int64{}
		for _, hint := range []string{"DFS, ALLPATHS", "BFS, ALLPATHS"} {
			q := fmt.Sprintf(`SELECT COUNT(P) FROM G.Paths P HINT(%s)
				WHERE P.StartVertex.Id = 0 AND P.Length = 3`, hint)
			counts[hint] = mustExecTB(t, e, q).Rows[0][0].I
		}
		return counts["DFS, ALLPATHS"] == counts["BFS, ALLPATHS"]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the GV.VERTEXES projection — including the computed FanOut and
// FanIn properties — agrees with the kernel's degrees on random graphs, and
// keeps agreeing after random edge deletions re-maintain the topology.
func TestVertexesFacetMatchesKernel(t *testing.T) {
	prop := func(seed int64) bool {
		s := seed % 1000
		e, ref := randomGraphEngine(t, 14, 26, s)
		rng := rand.New(rand.NewSource(s + 11))
		check := func() bool {
			res := mustExecTB(t, e, `SELECT VS.Id, VS.FanOut, VS.FanIn FROM G.Vertexes VS`)
			if len(res.Rows) != ref.NumVertices() {
				t.Logf("seed %d: VERTEXES has %d rows, kernel %d", s, len(res.Rows), ref.NumVertices())
				return false
			}
			for _, r := range res.Rows {
				v := ref.Vertex(r[0].I)
				if v == nil {
					t.Logf("seed %d: VERTEXES emitted unknown vertex %d", s, r[0].I)
					return false
				}
				if int(r[1].I) != ref.FanOut(v) || int(r[2].I) != ref.FanIn(v) {
					t.Logf("seed %d: vertex %d degrees sql=(%d,%d) kernel=(%d,%d)",
						s, v.ID, r[1].I, r[2].I, ref.FanOut(v), ref.FanIn(v))
					return false
				}
			}
			return true
		}
		if !check() {
			return false
		}
		// Deleting edges re-maintains the adjacency lists; degrees must track.
		for i := 0; i < 8; i++ {
			eid := rng.Int63n(26)
			mustExecTB(t, e, fmt.Sprintf("DELETE FROM E WHERE eid = %d", eid))
			ref.RemoveEdge(eid)
		}
		return check()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: the GV.EDGES projection dereferences every tuple pointer back
// into the edges relational-source correctly — each emitted (ID, w) row
// matches the base table, row for row.
func TestEdgesFacetMatchesBaseTable(t *testing.T) {
	prop := func(seed int64) bool {
		s := seed % 1000
		e, ref := randomGraphEngine(t, 14, 26, s)
		rng := rand.New(rand.NewSource(s + 13))
		// Random attribute updates and deletions first: facet rows must read
		// through tuple pointers into the *current* relational state.
		for i := 0; i < 6; i++ {
			eid := rng.Int63n(26)
			if rng.Intn(2) == 0 {
				mustExecTB(t, e, fmt.Sprintf("UPDATE E SET w = %d WHERE eid = %d", rng.Int63n(100), eid))
			} else {
				mustExecTB(t, e, fmt.Sprintf("DELETE FROM E WHERE eid = %d", eid))
				ref.RemoveEdge(eid)
			}
		}
		base := map[int64]string{}
		for _, r := range render(mustExecTB(t, e, `SELECT eid, w FROM E`)) {
			var id int64
			fmt.Sscanf(r[0], "%d", &id)
			base[id] = r[0] + "|" + r[1]
		}
		res := mustExecTB(t, e, `SELECT ES.ID, ES.w FROM G.Edges ES`)
		if len(res.Rows) != ref.NumEdges() || len(res.Rows) != len(base) {
			t.Logf("seed %d: EDGES has %d rows, kernel %d, base table %d",
				s, len(res.Rows), ref.NumEdges(), len(base))
			return false
		}
		for _, r := range res.Rows {
			if got := r[0].String() + "|" + r[1].String(); base[r[0].I] != got {
				t.Logf("seed %d: edge %d facet %q base %q", s, r[0].I, got, base[r[0].I])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: after any random mix of DML on the base table, a materialized
// view's contents equal a fresh recomputation of its definition.
func TestMatViewConsistencyUnderRandomDML(t *testing.T) {
	prop := func(seed int64) bool {
		s := seed % 500
		rng := rand.New(rand.NewSource(s))
		e := New(Options{})
		mustScriptTB(t, e, `
			CREATE TABLE T (id BIGINT PRIMARY KEY, grp BIGINT, val BIGINT);
			CREATE MATERIALIZED VIEW Evens AS SELECT id, val FROM T WHERE grp = 0;
		`)
		live := map[int64]bool{}
		next := int64(0)
		for i := 0; i < 40; i++ {
			switch rng.Intn(3) {
			case 0: // insert
				next++
				mustExecTB(t, e, fmt.Sprintf("INSERT INTO T VALUES (%d, %d, %d)",
					next, rng.Int63n(2), rng.Int63n(100)))
				live[next] = true
			case 1: // update (possibly flipping group membership)
				if len(live) == 0 {
					continue
				}
				for id := range live {
					mustExecTB(t, e, fmt.Sprintf("UPDATE T SET grp = %d, val = %d WHERE id = %d",
						rng.Int63n(2), rng.Int63n(100), id))
					break
				}
			default: // delete
				if len(live) == 0 {
					continue
				}
				for id := range live {
					mustExecTB(t, e, fmt.Sprintf("DELETE FROM T WHERE id = %d", id))
					delete(live, id)
					break
				}
			}
		}
		// The view must equal the recomputed definition.
		viewRows := render(mustExecTB(t, e, `SELECT id, val FROM Evens ORDER BY id`))
		baseRows := render(mustExecTB(t, e, `SELECT id, val FROM T WHERE grp = 0 ORDER BY id`))
		if len(viewRows) != len(baseRows) {
			t.Logf("seed %d: view %d rows, recompute %d rows", s, len(viewRows), len(baseRows))
			return false
		}
		for i := range viewRows {
			if viewRows[i][0] != baseRows[i][0] || viewRows[i][1] != baseRows[i][1] {
				t.Logf("seed %d: row %d: %v vs %v", s, i, viewRows[i], baseRows[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
