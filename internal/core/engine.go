// Package core implements the GRFusion engine: the paper's primary
// contribution glued over the substrates. It parses and executes
// statements, manages graph views as first-class database objects (§3),
// maintains them transactionally under DML (§3.3), and runs cross-model
// QEPs produced by the planner (§5).
//
// Concurrency departs from the single-threaded H-Store/VoltDB partition
// model the paper builds on: statement execution follows a reader/writer
// protocol instead. Read-only statements (SELECT over relations or the
// VERTEXES/EDGES/PATHS facets, EXPLAIN, SHOW) take a shared lock and run
// concurrently; DML and DDL take the exclusive lock, so graph-view
// maintenance (§3.3) remains transactionally serialized and operators
// still run lock-free — writers never overlap anything, and readers only
// overlap other readers over immutable-for-the-duration state.
package core

import (
	"fmt"
	"strings"
	"sync"

	"grfusion/internal/catalog"
	"grfusion/internal/exec"
	"grfusion/internal/plan"
	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Options configure an Engine.
type Options struct {
	// MemLimit bounds intermediate-result memory per statement (bytes).
	// Zero means unlimited. (VoltDB's recommended temp-table limit is
	// 100 MB; the paper's Twitter experiment exceeds 16 GB and aborts.)
	MemLimit int64
	// Workers bounds the worker pool a single parallelizable PathScan may
	// fan a multi-source traversal across (reachability from every vertex,
	// triangle enumeration, ...). Values <= 1 keep traversals sequential;
	// results are identical either way — the parallel operator merges
	// per-source results in deterministic source order.
	Workers int
	// Planner options (pushdown/inference toggles for ablations).
	Plan plan.Options
}

// Engine is one in-memory database instance.
type Engine struct {
	// mu is the statement-execution lock: read-only statements hold it
	// shared, mutating statements hold it exclusively (see the package
	// comment). Everything reachable from the catalog — tables, indexes,
	// graph-view topologies — is only mutated under the write side.
	mu   sync.RWMutex
	cat  *catalog.Catalog
	opts Options

	// Statistics-thread lifecycle (see stats.go).
	statsMu   sync.Mutex
	statsStop chan struct{}
	statsDone chan struct{}
}

// New creates an empty engine.
func New(opts Options) *Engine {
	return &Engine{cat: catalog.New(), opts: opts}
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns of a query (nil for DDL/DML).
	Columns []string
	// Rows holds query output.
	Rows []types.Row
	// Affected counts rows touched by DML.
	Affected int
}

// Catalog exposes the system catalog (read-mostly; callers must not mutate
// concurrently with statement execution).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// SetPlanOptions swaps the planner options (used by experiment ablations).
func (e *Engine) SetPlanOptions(o plan.Options) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.opts.Plan = o
}

// Execute parses and runs a single statement.
func (e *Engine) Execute(query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(stmt)
}

// ExecuteScript runs a semicolon-separated script, stopping at the first
// error. It returns one result per executed statement.
func (e *Engine) ExecuteScript(script string) ([]*Result, error) {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, s := range stmts {
		r, err := e.ExecuteStmt(s)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecuteStmt runs one parsed statement under the engine's reader/writer
// protocol: read-only statements (as classified by plan.ReadOnly) execute
// concurrently under the shared lock, everything else serializes under the
// exclusive lock.
func (e *Engine) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	if plan.ReadOnly(stmt) {
		e.mu.RLock()
		defer e.mu.RUnlock()
		switch s := stmt.(type) {
		case *sql.Select:
			return e.runSelect(s)
		case *sql.Explain:
			return e.runExplain(s)
		case *sql.Show:
			return e.runShow(s)
		}
		// plan.ReadOnly and this switch must stay in sync.
		return nil, fmt.Errorf("internal: unhandled read-only statement %T", stmt)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch s := stmt.(type) {
	case *sql.CreateTable:
		return e.createTable(s)
	case *sql.CreateIndex:
		return e.createIndex(s)
	case *sql.CreateGraphView:
		return e.createGraphView(s)
	case *sql.CreateMatView:
		return e.createMatView(s)
	case *sql.DropMatView:
		if err := e.cat.DropMatView(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropTable:
		if err := e.cat.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropGraphView:
		if err := e.cat.DropGraphView(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.TruncateTable:
		return e.truncateTable(s)
	case *sql.Insert:
		return e.runInsert(s)
	case *sql.Update:
		return e.runUpdate(s)
	case *sql.Delete:
		return e.runDelete(s)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// Explain returns the physical plan of a SELECT as indented text.
func (e *Engine) Explain(query string) (string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	s, ok := stmt.(*sql.Select)
	if !ok {
		return "", fmt.Errorf("EXPLAIN supports SELECT statements only")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	p := &plan.Planner{Cat: e.cat, Opts: e.opts.Plan}
	op, err := p.PlanSelect(s)
	if err != nil {
		return "", err
	}
	return exec.Explain(op), nil
}

// runExplain plans the inner SELECT and renders the QEP, one line per row.
func (e *Engine) runExplain(s *sql.Explain) (*Result, error) {
	p := &plan.Planner{Cat: e.cat, Opts: e.opts.Plan}
	op, err := p.PlanSelect(s.Query)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(exec.Explain(op), "\n"), "\n") {
		res.Rows = append(res.Rows, types.Row{types.NewString(line)})
	}
	return res, nil
}

func (e *Engine) runSelect(s *sql.Select) (*Result, error) {
	p := &plan.Planner{Cat: e.cat, Opts: e.opts.Plan}
	op, err := p.PlanSelect(s)
	if err != nil {
		return nil, err
	}
	ctx := exec.NewContext(e.opts.MemLimit)
	ctx.Workers = e.opts.Workers
	rows, err := exec.Collect(ctx, op)
	if err != nil {
		return nil, err
	}
	cols := make([]string, op.Schema().Len())
	for i, c := range op.Schema().Columns {
		cols[i] = c.Name
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

func (e *Engine) createTable(s *sql.CreateTable) (*Result, error) {
	if len(s.Cols) == 0 {
		return nil, fmt.Errorf("table %s has no columns", s.Name)
	}
	cols := make([]types.Column, len(s.Cols))
	seen := map[string]bool{}
	for i, c := range s.Cols {
		key := strings.ToLower(c.Name)
		if seen[key] {
			return nil, fmt.Errorf("table %s: duplicate column %q", s.Name, c.Name)
		}
		seen[key] = true
		cols[i] = types.Column{Qualifier: s.Name, Name: c.Name, Type: c.Type}
	}
	schema := types.NewSchema(cols...)
	var pk []int
	for _, name := range s.PK {
		idx, err := schema.Resolve("", name)
		if err != nil {
			return nil, fmt.Errorf("table %s primary key: %v", s.Name, err)
		}
		pk = append(pk, idx)
	}
	t, err := storage.NewTable(s.Name, schema, pk)
	if err != nil {
		return nil, err
	}
	if err := e.cat.CreateTable(t); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) createIndex(s *sql.CreateIndex) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	cols := make([]int, len(s.Cols))
	for i, name := range s.Cols {
		idx, err := t.Schema().Resolve("", name)
		if err != nil {
			return nil, err
		}
		cols[i] = idx
	}
	if _, err := t.CreateIndex(s.Name, cols, s.Ordered); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) createGraphView(s *sql.CreateGraphView) (*Result, error) {
	vtab, ok := e.cat.Table(s.VertexSource)
	if !ok {
		return nil, fmt.Errorf("unknown vertexes relational-source %q", s.VertexSource)
	}
	etab, ok := e.cat.Table(s.EdgeSource)
	if !ok {
		return nil, fmt.Errorf("unknown edges relational-source %q", s.EdgeSource)
	}
	toAttrs := func(ms []sql.NameMap) []catalog.AttrMap {
		out := make([]catalog.AttrMap, len(ms))
		for i, m := range ms {
			out[i] = catalog.AttrMap{Name: m.Name, Source: m.Source}
		}
		return out
	}
	gv, err := catalog.NewGraphView(s.Name, s.Directed, vtab, etab,
		toAttrs(s.VertexAttrs), toAttrs(s.EdgeAttrs))
	if err != nil {
		return nil, err
	}
	if err := e.cat.RegisterGraphView(gv); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) truncateTable(s *sql.TruncateTable) (*Result, error) {
	t, ok := e.cat.Table(s.Name)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Name)
	}
	if vs := e.cat.DependentViews(s.Name); len(vs) > 0 {
		return nil, fmt.Errorf("cannot truncate %s: it is a relational source of graph view %s",
			s.Name, vs[0].Name)
	}
	if e.cat.IsMatViewTable(s.Name) {
		return nil, fmt.Errorf("materialized view %s is read-only; modify its base table", s.Name)
	}
	if ds := e.cat.DependentMatViews(s.Name); len(ds) > 0 {
		return nil, fmt.Errorf("cannot truncate %s: it is the base of materialized view %s",
			s.Name, ds[0].Name)
	}
	n := t.Len()
	t.Truncate()
	return &Result{Affected: n}, nil
}

func (e *Engine) runShow(s *sql.Show) (*Result, error) {
	res := &Result{Columns: []string{"name"}}
	var names []string
	switch s.What {
	case "TABLES":
		names = e.cat.Tables()
	case "MATERIALIZED VIEWS":
		names = e.cat.MatViews()
	default:
		names = e.cat.GraphViews()
	}
	for _, n := range names {
		res.Rows = append(res.Rows, types.Row{types.NewString(n)})
	}
	return res, nil
}
