// Package core implements the GRFusion engine: the paper's primary
// contribution glued over the substrates. It parses and executes
// statements, manages graph views as first-class database objects (§3),
// maintains them transactionally under DML (§3.3), and runs cross-model
// QEPs produced by the planner (§5).
//
// Concurrency departs from the single-threaded H-Store/VoltDB partition
// model the paper builds on: the engine is multi-versioned (version.go).
// Every successful mutating statement publishes an immutable version —
// catalog, copy-on-write table snapshots, graph-view topology bindings —
// behind one atomic pointer. Read-only statements (SELECT over relations
// or the VERTEXES/EDGES/PATHS facets, EXPLAIN, SHOW) pin the current
// version and execute against it without taking the engine lock, so
// readers never stall behind writers and a stalled reader never blocks
// DML. Mutating statements still serialize among themselves under the
// exclusive lock — graph-view maintenance (§3.3) remains transactionally
// serialized — and publish with a single pointer swap on success.
package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grfusion/internal/catalog"
	"grfusion/internal/exec"
	"grfusion/internal/metrics"
	"grfusion/internal/plan"
	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
	"grfusion/internal/wal"
)

// Typed lifecycle errors. ErrTimeout/ErrCanceled/ErrMemLimit re-export the
// executor's sentinels so callers can match with errors.Is without
// importing internal/exec.
var (
	// ErrTimeout reports a statement that exceeded its deadline (a caller
	// context deadline or the engine's QUERY_TIMEOUT).
	ErrTimeout = exec.ErrTimeout
	// ErrCanceled reports a statement aborted by explicit cancellation.
	ErrCanceled = exec.ErrCanceled
	// ErrMemLimit reports the per-statement intermediate-memory limit.
	ErrMemLimit = exec.ErrMemLimit
	// ErrQueryPanic reports a statement aborted by a recovered operator
	// panic; the full stack is logged through the standard logger. The
	// engine survives, isolating one crashing query from the process.
	ErrQueryPanic = errors.New("query aborted by internal panic")
	// ErrDegraded reports a mutating statement rejected because the
	// engine is in degraded read-only mode (health.go): the durability
	// path is failing, reads keep serving, and a background probe is
	// healing. Not retryable — distinct from admission shedding.
	ErrDegraded = exec.ErrDegraded
)

// ctxErr maps a context's error state to the typed lifecycle errors.
func ctxErr(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrTimeout
	default:
		return ErrCanceled
	}
}

// Options configure an Engine.
type Options struct {
	// MemLimit bounds intermediate-result memory per statement (bytes).
	// Zero means unlimited. (VoltDB's recommended temp-table limit is
	// 100 MB; the paper's Twitter experiment exceeds 16 GB and aborts.)
	MemLimit int64
	// Workers bounds the worker pool a single parallelizable PathScan may
	// fan a multi-source traversal across (reachability from every vertex,
	// triangle enumeration, ...). Values <= 1 keep traversals sequential;
	// results are identical either way — the parallel operator merges
	// per-source results in deterministic source order.
	Workers int
	// QueryTimeout bounds each statement's execution wall clock (the
	// per-statement timeout of the paper's host system, VoltDB). Zero
	// disables it; it can be changed at runtime with SET QUERY_TIMEOUT
	// (milliseconds) or SetQueryTimeout. Statements that exceed it abort
	// cooperatively with ErrTimeout.
	QueryTimeout time.Duration
	// SlowQuery is the slow-query-log threshold: statements that run at
	// least this long are counted and logged with their duration and (for
	// queries) their top operators by self time. Zero disables the log; it
	// can be changed at runtime with SET SLOW_QUERY (milliseconds) or
	// SetSlowQuery.
	SlowQuery time.Duration
	// Planner options (pushdown/inference toggles for ablations).
	Plan plan.Options
	// Durability configures the write-ahead log and checkpoints
	// (durability.go). It only takes effect through Open, which recovers
	// existing state before attaching the log; New ignores it.
	Durability Durability
}

// Engine is one in-memory database instance.
type Engine struct {
	// mu is the writer-serialization lock: mutating statements hold it
	// exclusively. Everything reachable from the catalog — tables,
	// indexes, graph-view topologies — is only mutated under it.
	// Read-only statements do NOT take mu: they pin the current published
	// version (see version.go and state below). A handful of maintenance
	// readers that must see the live objects (statistics refresh, the
	// oracle's topology hooks, snapshot encoding) still take the read
	// side purely to exclude writers.
	mu   sync.RWMutex
	cat  *catalog.Catalog
	opts Options

	// state is the currently published version; readers pin it with one
	// atomic load + pin count (version.go). states is the writer-guarded
	// registry of potentially-live versions behind mvcc.versions_live;
	// pinned counts readers currently holding any pin.
	state  atomic.Pointer[dbState]
	states []*dbState
	pinned atomic.Int64

	// planOpts and workers hold the runtime-tunable planner options and
	// traversal worker count. They are atomic because the lock-free read
	// path loads them without holding mu.
	planOpts atomic.Pointer[plan.Options]
	workers  atomic.Int64

	// queryTimeoutNS is the per-statement deadline in nanoseconds (0 =
	// none). It is atomic, not guarded by mu: ExecuteStmtContext reads it
	// before queueing for the statement lock, so the deadline clock covers
	// lock-wait time too.
	queryTimeoutNS atomic.Int64

	// slowQueryNS is the slow-query-log threshold in nanoseconds (0 =
	// disabled), atomic for the same reason as queryTimeoutNS.
	slowQueryNS atomic.Int64

	// metrics is the engine-wide observability registry (see observe.go).
	metrics metrics.Metrics

	// Statistics-thread lifecycle (see stats.go).
	statsMu   sync.Mutex
	statsStop chan struct{}
	statsDone chan struct{}

	// dur is the durability runtime (durability.go): non-nil dur.log means
	// every mutating statement is logged before it applies. Guarded by mu's
	// write side, like the catalog.
	dur durState

	// health is the disk-fault tolerance state machine (health.go):
	// degraded read-only mode, the self-healing prober, and the snapshot
	// behind SHOW HEALTH / the wire health command / healthz+readyz.
	health healthState
}

// New creates an empty engine.
func New(opts Options) *Engine {
	e := &Engine{cat: catalog.New(), opts: opts}
	e.SetQueryTimeout(opts.QueryTimeout)
	e.SetSlowQuery(opts.SlowQuery)
	e.SetPlanOptions(opts.Plan)
	e.workers.Store(int64(opts.Workers))
	e.publishLocked() // version 1: the empty database
	return e
}

// QueryTimeout returns the per-statement deadline (zero = none).
func (e *Engine) QueryTimeout() time.Duration {
	return time.Duration(e.queryTimeoutNS.Load())
}

// SetQueryTimeout sets the per-statement deadline; zero or negative
// disables it. Equivalent to SET QUERY_TIMEOUT = <ms>.
func (e *Engine) SetQueryTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.queryTimeoutNS.Store(int64(d))
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns of a query (nil for DDL/DML).
	Columns []string
	// Rows holds query output.
	Rows []types.Row
	// Affected counts rows touched by DML.
	Affected int
}

// Catalog exposes the system catalog (read-mostly; callers must not mutate
// concurrently with statement execution).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// SetPlanOptions swaps the planner options (used by experiment ablations).
// New values apply to statements planned after the call.
func (e *Engine) SetPlanOptions(o plan.Options) {
	e.planOpts.Store(&o)
}

// planOptions reads the current planner options (lock-free).
func (e *Engine) planOptions() plan.Options { return *e.planOpts.Load() }

// workerCount reads the current traversal worker-pool size (lock-free).
func (e *Engine) workerCount() int { return int(e.workers.Load()) }

// Execute parses and runs a single statement.
func (e *Engine) Execute(query string) (*Result, error) {
	return e.ExecuteContext(context.Background(), query)
}

// ExecuteContext parses and runs a single statement under ctx's lifecycle:
// its deadline or cancellation aborts cooperative operators with
// ErrTimeout/ErrCanceled.
func (e *Engine) ExecuteContext(ctx context.Context, query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.execStmt(ctx, stmt, query)
}

// ExecuteScript runs a semicolon-separated script, stopping at the first
// error. It returns one result per executed statement.
func (e *Engine) ExecuteScript(script string) ([]*Result, error) {
	return e.ExecuteScriptContext(context.Background(), script)
}

// ExecuteScriptContext is ExecuteScript under a cancellation context; the
// script stops between statements once the context fires. Each statement
// carries its own source text, so a durable engine logs script statements
// individually.
func (e *Engine) ExecuteScriptContext(ctx context.Context, script string) ([]*Result, error) {
	stmts, texts, err := sql.ParseAllWithText(script)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for i, s := range stmts {
		if err := ctxErr(ctx); err != nil {
			return out, err
		}
		r, err := e.execStmt(ctx, s, texts[i])
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecuteStmt runs one parsed statement under the engine's MVCC protocol:
// read-only statements (as classified by plan.ReadOnly) pin the current
// published version and run lock-free, everything else serializes under
// the exclusive lock and publishes a new version on success.
func (e *Engine) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	return e.ExecuteStmtContext(context.Background(), stmt)
}

// ExecuteStmtContext is ExecuteStmt with a managed lifecycle:
//
//   - ctx's deadline/cancellation — tightened by the engine's QUERY_TIMEOUT
//     when one is set — aborts cooperative operators and traversal kernels
//     with ErrTimeout/ErrCanceled. The deadline clock starts before the
//     statement queues for the execution lock, so lock-wait counts too.
//   - A panicking operator is recovered into ErrQueryPanic (stack logged
//     via the standard logger) instead of taking down the process. For
//     mutating statements the undo journal is not replayed across a panic,
//     so the error also warns that state may be partially applied.
func (e *Engine) ExecuteStmtContext(ctx context.Context, stmt sql.Statement) (res *Result, err error) {
	return e.execStmt(ctx, stmt, "")
}

// execStmt is the shared statement body behind ExecuteContext and
// ExecuteStmtContext. text is the statement's SQL when the caller has it
// (the slow-query log prefers it over a synthesized description).
func (e *Engine) execStmt(ctx context.Context, stmt sql.Statement, text string) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d := e.QueryTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	readOnly := plan.ReadOnly(stmt)
	// prof is set when the slow-query log armed instrumentation for this
	// statement's plan; the observe defer mines it for the top operators.
	var prof *exec.Instrumented
	start := time.Now()
	// Deferred observation runs after the panic recovery below (LIFO), so
	// it sees the final error including ErrQueryPanic.
	defer func() {
		e.observeStatement(stmtKind(stmt), text, time.Since(start), err, prof)
	}()
	defer func() {
		if r := recover(); r != nil {
			log.Printf("core: recovered query panic: %v\n%s", r, debug.Stack())
			res = nil
			err = fmt.Errorf("%w: %v", ErrQueryPanic, r)
			if !readOnly {
				err = fmt.Errorf("%w (mutating statement: engine state may be partially applied)", err)
			}
		}
	}()
	if readOnly {
		lw := time.Now()
		st := e.pin()
		e.metrics.LockReadWaitNS.Add(time.Since(lw).Nanoseconds())
		defer e.unpin(st)
		// A statement whose deadline elapsed (or that was canceled) before
		// it pinned aborts before planning anything — mirrors the write
		// path's post-lock check, so an already-dead reader never starts.
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		switch s := stmt.(type) {
		case *sql.Select:
			res, prof, err = e.runSelect(ctx, s, st)
			return res, err
		case *sql.Explain:
			return e.runExplain(ctx, s, st)
		case *sql.Show:
			return e.runShow(s, st)
		}
		// plan.ReadOnly and this switch must stay in sync.
		return nil, fmt.Errorf("internal: unhandled read-only statement %T", stmt)
	}
	lw := time.Now()
	e.mu.Lock()
	e.metrics.LockWriteWaitNS.Add(time.Since(lw).Nanoseconds())
	defer e.mu.Unlock()
	// Writers serialize: a statement whose deadline elapsed while queueing
	// behind other writers aborts before touching any state.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	// Log before apply: on a durable engine the statement is in the WAL
	// (synced per policy) before any state changes. If logging fails the
	// statement aborts untouched; if applying fails the record is rolled
	// back so the log mirrors applied history exactly (finishWALLocked).
	var walLSN uint64
	if e.dur.log != nil {
		if _, isSet := stmt.(*sql.Set); !isSet {
			rec, rerr := e.walRecordLocked(stmt, text, nil)
			if rerr != nil {
				return nil, rerr
			}
			if walLSN, rerr = e.walAppendLocked(rec); rerr != nil {
				return nil, rerr
			}
		}
	}
	res, err = e.applyLocked(stmt)
	e.finishWALLocked(walLSN, err)
	if err == nil {
		// Publish the new version so subsequent readers see this
		// statement's effects. SET is a runtime tunable, not state — no
		// new version. A failed statement publishes nothing: its undo
		// journal restored the live objects and readers keep the previous
		// version.
		if _, isSet := stmt.(*sql.Set); !isSet {
			e.publishLocked()
		}
	}
	return res, err
}

// applyLocked dispatches a mutating statement under the write lock.
func (e *Engine) applyLocked(stmt sql.Statement) (*Result, error) {
	switch stmt.(type) {
	case *sql.CreateTable, *sql.CreateGraphView, *sql.CreateMatView,
		*sql.DropMatView, *sql.DropTable, *sql.DropGraphView:
		// DDL rewrites the catalog registry. Clone it first (COW): every
		// published version holds the catalog pointer it was built with,
		// so the registry a pinned reader resolves names through must
		// never change underneath it.
		e.cat = e.cat.Clone()
	}
	switch s := stmt.(type) {
	case *sql.CreateTable:
		return e.createTable(s)
	case *sql.CreateIndex:
		return e.createIndex(s)
	case *sql.CreateGraphView:
		return e.createGraphView(s)
	case *sql.CreateMatView:
		return e.createMatView(s)
	case *sql.DropMatView:
		if err := e.cat.DropMatView(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropTable:
		if err := e.cat.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropGraphView:
		if err := e.cat.DropGraphView(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.TruncateTable:
		return e.truncateTable(s)
	case *sql.Insert:
		return e.runInsert(s)
	case *sql.Update:
		return e.runUpdate(s)
	case *sql.Delete:
		return e.runDelete(s)
	case *sql.Set:
		return e.runSet(s)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// Explain returns the physical plan of a SELECT as indented text.
func (e *Engine) Explain(query string) (string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	s, ok := stmt.(*sql.Select)
	if !ok {
		return "", fmt.Errorf("EXPLAIN supports SELECT statements only")
	}
	st := e.pin()
	defer e.unpin(st)
	p := &plan.Planner{Cat: st.cat, Opts: e.planOptions(), Pin: st}
	op, err := p.PlanSelect(s)
	if err != nil {
		return "", err
	}
	return exec.Explain(op), nil
}

// runExplain plans the inner SELECT and renders the QEP, one line per row.
// With ANALYZE the plan is also executed through the instrumentation layer
// and every line carries the actual row counts and timings (observe.go).
func (e *Engine) runExplain(ctx context.Context, s *sql.Explain, st *dbState) (*Result, error) {
	p := &plan.Planner{Cat: st.cat, Opts: e.planOptions(), Pin: st}
	op, err := p.PlanSelect(s.Query)
	if err != nil {
		return nil, err
	}
	if s.Analyze {
		return e.runExplainAnalyze(ctx, op)
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(exec.Explain(op), "\n"), "\n") {
		res.Rows = append(res.Rows, types.Row{types.NewString(line)})
	}
	return res, nil
}

// runSelect plans and executes a SELECT. When the slow-query log is armed
// the plan runs through the instrumentation layer and the instrumented
// root is returned so the statement observer can report top operators;
// otherwise the plan runs bare and the middle return is nil.
func (e *Engine) runSelect(ctx context.Context, s *sql.Select, st *dbState) (*Result, *exec.Instrumented, error) {
	p := &plan.Planner{Cat: st.cat, Opts: e.planOptions(), Pin: st}
	op, err := p.PlanSelect(s)
	if err != nil {
		return nil, nil, err
	}
	var prof *exec.Instrumented
	run := op
	if e.slowQueryNS.Load() > 0 {
		prof = exec.Instrument(op)
		run = prof
	}
	ec := exec.NewContext(e.opts.MemLimit)
	ec.Workers = e.workerCount()
	ec.Bind(ctx)
	rows, err := exec.Collect(ec, run)
	e.observeAnalytics(op)
	if err != nil {
		return nil, prof, err
	}
	cols := make([]string, op.Schema().Len())
	for i, c := range op.Schema().Columns {
		cols[i] = c.Name
	}
	return &Result{Columns: cols, Rows: rows}, prof, nil
}

// runSet applies a SET tunable. QUERY_TIMEOUT sets the per-statement
// deadline in milliseconds (0 disables it); SLOW_QUERY sets the
// slow-query-log threshold in milliseconds (0 disables the log);
// WAL_FSYNC switches a durable engine's sync policy
// (ALWAYS/INTERVAL/OFF); CHECKPOINT_EVERY sets the automatic checkpoint
// threshold in logged statements (0 disables automatic checkpoints). New
// values apply to statements issued after this one. SET is a runtime
// tunable, not state: it is never logged to the WAL.
func (e *Engine) runSet(s *sql.Set) (*Result, error) {
	if s.IsStr && s.Name != "WAL_FSYNC" {
		return nil, fmt.Errorf("SET %s: expected an integer value, got %q", s.Name, s.Str)
	}
	switch s.Name {
	case "QUERY_TIMEOUT":
		if s.Value < 0 {
			return nil, fmt.Errorf("SET QUERY_TIMEOUT: value must be >= 0 milliseconds, got %d", s.Value)
		}
		e.SetQueryTimeout(time.Duration(s.Value) * time.Millisecond)
		return &Result{}, nil
	case "SLOW_QUERY":
		if s.Value < 0 {
			return nil, fmt.Errorf("SET SLOW_QUERY: value must be >= 0 milliseconds, got %d", s.Value)
		}
		e.SetSlowQuery(time.Duration(s.Value) * time.Millisecond)
		return &Result{}, nil
	case "WAL_FSYNC":
		if !s.IsStr {
			return nil, fmt.Errorf("SET WAL_FSYNC: expected ALWAYS, INTERVAL or OFF")
		}
		p, err := wal.ParseFsyncPolicy(s.Str)
		if err != nil {
			return nil, fmt.Errorf("SET WAL_FSYNC: %v", err)
		}
		if e.dur.log == nil {
			return nil, fmt.Errorf("SET WAL_FSYNC: engine is not durable (no WAL directory configured)")
		}
		if err := e.dur.log.SetPolicy(p); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case "CHECKPOINT_EVERY":
		if s.Value < 0 {
			return nil, fmt.Errorf("SET CHECKPOINT_EVERY: value must be >= 0 statements, got %d", s.Value)
		}
		if e.dur.log == nil {
			return nil, fmt.Errorf("SET CHECKPOINT_EVERY: engine is not durable (no WAL directory configured)")
		}
		e.dur.every = int(s.Value)
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("SET: unknown setting %q (supported: QUERY_TIMEOUT, SLOW_QUERY, WAL_FSYNC, CHECKPOINT_EVERY)", s.Name)
	}
}

func (e *Engine) createTable(s *sql.CreateTable) (*Result, error) {
	if len(s.Cols) == 0 {
		return nil, fmt.Errorf("table %s has no columns", s.Name)
	}
	cols := make([]types.Column, len(s.Cols))
	seen := map[string]bool{}
	for i, c := range s.Cols {
		key := strings.ToLower(c.Name)
		if seen[key] {
			return nil, fmt.Errorf("table %s: duplicate column %q", s.Name, c.Name)
		}
		seen[key] = true
		cols[i] = types.Column{Qualifier: s.Name, Name: c.Name, Type: c.Type}
	}
	schema := types.NewSchema(cols...)
	var pk []int
	for _, name := range s.PK {
		idx, err := schema.Resolve("", name)
		if err != nil {
			return nil, fmt.Errorf("table %s primary key: %v", s.Name, err)
		}
		pk = append(pk, idx)
	}
	t, err := storage.NewTable(s.Name, schema, pk)
	if err != nil {
		return nil, err
	}
	if err := e.cat.CreateTable(t); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) createIndex(s *sql.CreateIndex) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	cols := make([]int, len(s.Cols))
	for i, name := range s.Cols {
		idx, err := t.Schema().Resolve("", name)
		if err != nil {
			return nil, err
		}
		cols[i] = idx
	}
	if _, err := t.CreateIndex(s.Name, cols, s.Ordered); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) createGraphView(s *sql.CreateGraphView) (*Result, error) {
	vtab, ok := e.cat.Table(s.VertexSource)
	if !ok {
		return nil, fmt.Errorf("unknown vertexes relational-source %q", s.VertexSource)
	}
	etab, ok := e.cat.Table(s.EdgeSource)
	if !ok {
		return nil, fmt.Errorf("unknown edges relational-source %q", s.EdgeSource)
	}
	toAttrs := func(ms []sql.NameMap) []catalog.AttrMap {
		out := make([]catalog.AttrMap, len(ms))
		for i, m := range ms {
			out[i] = catalog.AttrMap{Name: m.Name, Source: m.Source}
		}
		return out
	}
	gv, err := catalog.NewGraphView(s.Name, s.Directed, vtab, etab,
		toAttrs(s.VertexAttrs), toAttrs(s.EdgeAttrs))
	if err != nil {
		return nil, err
	}
	if err := e.cat.RegisterGraphView(gv); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) truncateTable(s *sql.TruncateTable) (*Result, error) {
	t, ok := e.cat.Table(s.Name)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Name)
	}
	if vs := e.cat.DependentViews(s.Name); len(vs) > 0 {
		return nil, fmt.Errorf("cannot truncate %s: it is a relational source of graph view %s",
			s.Name, vs[0].Name)
	}
	if e.cat.IsMatViewTable(s.Name) {
		return nil, fmt.Errorf("materialized view %s is read-only; modify its base table", s.Name)
	}
	if ds := e.cat.DependentMatViews(s.Name); len(ds) > 0 {
		return nil, fmt.Errorf("cannot truncate %s: it is the base of materialized view %s",
			s.Name, ds[0].Name)
	}
	n := t.Len()
	t.Truncate()
	return &Result{Affected: n}, nil
}

func (e *Engine) runShow(s *sql.Show, st *dbState) (*Result, error) {
	if s.What == "METRICS" {
		res := &Result{Columns: []string{"name", "value"}}
		for _, kv := range e.metrics.Snapshot(e.viewStatsAt(st)) {
			res.Rows = append(res.Rows, types.Row{types.NewString(kv.Name), types.NewInt(kv.Value)})
		}
		return res, nil
	}
	if s.What == "HEALTH" {
		res := &Result{Columns: []string{"name", "value"}}
		for _, p := range e.Health().Pairs() {
			res.Rows = append(res.Rows, types.Row{types.NewString(p[0]), types.NewString(p[1])})
		}
		return res, nil
	}
	res := &Result{Columns: []string{"name"}}
	var names []string
	switch s.What {
	case "TABLES":
		names = st.cat.Tables()
	case "MATERIALIZED VIEWS":
		names = st.cat.MatViews()
	default:
		names = st.cat.GraphViews()
	}
	for _, n := range names {
		res.Rows = append(res.Rows, types.Row{types.NewString(n)})
	}
	return res, nil
}
