package core

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// ladderEngine builds a directed "ladder" graph — vertex i links to i+1
// and i+2 — dense enough in paths that multi-source traversals do real
// work, with Workers configuring the traversal pool.
func ladderEngine(t testing.TB, n, workers int) *Engine {
	e := New(Options{Workers: workers})
	var sb strings.Builder
	sb.WriteString(`CREATE TABLE V (vid BIGINT PRIMARY KEY, name VARCHAR);
		CREATE TABLE E (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE);
	`)
	if _, err := e.ExecuteScript(sb.String()); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	sb.WriteString("INSERT INTO V VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
	}
	if _, err := e.Execute(sb.String()); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	sb.WriteString("INSERT INTO E VALUES ")
	eid, first := 0, true
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 2} {
			if i+d >= n {
				continue
			}
			if !first {
				sb.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&sb, "(%d, %d, %d, %d.5)", eid, i, i+d, d)
			eid++
		}
	}
	if _, err := e.Execute(sb.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`CREATE DIRECTED GRAPH VIEW Ladder
		VERTEXES(ID = vid, name = name) FROM V
		EDGES(ID = eid, FROM = src, TO = dst, w = w) FROM E`); err != nil {
		t.Fatal(err)
	}
	return e
}

// multiSourceQuery fans a traversal out of every vertex: no start binding,
// so the planner marks the PathScan parallel.
const multiSourceQuery = `SELECT PS FROM Ladder.Paths PS WHERE PS.Length <= 3`

// TestParallelPathScanMatchesSequential is the determinism acceptance
// test: the same multi-source traversal must produce byte-identical rows
// in the same order at any worker count.
func TestParallelPathScanMatchesSequential(t *testing.T) {
	const n = 60
	seq := ladderEngine(t, n, 0)
	want := render(mustExec(t, seq, multiSourceQuery))
	if len(want) == 0 {
		t.Fatal("empty golden result")
	}
	for _, workers := range []int{2, 4, 8} {
		par := ladderEngine(t, n, workers)
		got := render(mustExec(t, par, multiSourceQuery))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: %d rows diverge from sequential (%d vs %d rows)",
				workers, n, len(got), len(want))
		}
	}
}

// TestParallelPlanMarking checks the planner marks multi-source scans
// parallel and start-bound probes sequential.
func TestParallelPlanMarking(t *testing.T) {
	e := ladderEngine(t, 10, 4)
	plan, err := e.Explain(multiSourceQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "parallel") {
		t.Fatalf("multi-source plan not marked parallel:\n%s", plan)
	}
	plan, err = e.Explain(`SELECT PS FROM Ladder.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length <= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "parallel") {
		t.Fatalf("single-source plan marked parallel:\n%s", plan)
	}
}

// TestParallelShortestPathMatchesSequential covers the SPScan kernel under
// the parallel operator (per-source Dijkstra fan-out).
func TestParallelShortestPathMatchesSequential(t *testing.T) {
	const q = `SELECT PS FROM Ladder.Paths PS HINT(SHORTESTPATH(w)) WHERE PS.EndVertex.Id = 29`
	seq := ladderEngine(t, 30, 0)
	want := render(mustExec(t, seq, q))
	par := ladderEngine(t, 30, 4)
	got := render(mustExec(t, par, q))
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("SP parallel diverges: %d vs %d rows", len(got), len(want))
	}
}

// TestConcurrentReadsMatchSerialized hammers one engine with identical
// concurrent reads; every result must equal the serialized golden run.
func TestConcurrentReadsMatchSerialized(t *testing.T) {
	e := ladderEngine(t, 40, 4)
	want := render(mustExec(t, e, multiSourceQuery))
	const goroutines = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r, err := e.Execute(multiSourceQuery)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(want, render(r)) {
					errs <- fmt.Errorf("concurrent read diverged from serialized result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentReadsAndDML mixes readers with a writer mutating the edge
// relational-source (exercising §3.3 graph-view maintenance under the
// exclusive lock) and checks the engine ends consistent and deadlock-free.
func TestConcurrentReadsAndDML(t *testing.T) {
	e := ladderEngine(t, 40, 2)
	base := mustExec(t, e, `SELECT COUNT(*) FROM E`).Rows[0][0].I
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Execute(multiSourceQuery); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			id := 100000 + i
			if _, err := e.Execute(fmt.Sprintf(
				`INSERT INTO E VALUES (%d, 0, 39, 9.5)`, id)); err != nil {
				errs <- err
				return
			}
			if _, err := e.Execute(fmt.Sprintf(`DELETE FROM E WHERE eid = %d`, id)); err != nil {
				errs <- err
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(stop)
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock: readers/writer did not finish")
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := mustExec(t, e, `SELECT COUNT(*) FROM E`).Rows[0][0].I; got != base {
		t.Fatalf("edge count after DML churn: %d, want %d", got, base)
	}
	if got := render(mustExec(t, e, `SELECT COUNT(*) FROM Ladder.Vertexes V`)); got[0][0] != "40" {
		t.Fatalf("vertex facet after churn: %v", got)
	}
}
