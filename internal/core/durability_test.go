package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"grfusion/internal/graph"
	"grfusion/internal/sql"
	"grfusion/internal/types"
	"grfusion/internal/wal"
)

// durSetup is a small schema with a graph view so recovery exercises the
// §3.3 rebuild path, not just relational state.
const durSetup = `
CREATE TABLE people (id BIGINT, name VARCHAR, PRIMARY KEY (id));
CREATE TABLE knows (id BIGINT, src BIGINT, dst BIGINT, w BIGINT, PRIMARY KEY (id));
CREATE GRAPH VIEW net
  VERTEXES (ID = id, name = name) FROM people
  EDGES (ID = id, FROM = src, TO = dst, w = w) FROM knows;
`

func openDur(t *testing.T, dir string, opts Options) (*Engine, *RecoveryInfo) {
	t.Helper()
	opts.Durability.Dir = dir
	e, info, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e, info
}

func mustExecAll(t *testing.T, e *Engine, script string) {
	t.Helper()
	if _, err := e.ExecuteScript(script); err != nil {
		t.Fatalf("script: %v", err)
	}
}

// topoSig renders a graph topology (IDs, endpoints and tuple pointers) as
// a canonical string for byte-identical comparison.
func topoSig(g *graph.Graph) string {
	var vs, es []string
	g.Vertices(func(v *graph.Vertex) bool {
		vs = append(vs, fmt.Sprintf("v%d@%d", v.ID, v.Tuple))
		return true
	})
	g.Edges(func(e *graph.Edge) bool {
		es = append(es, fmt.Sprintf("e%d:%d->%d@%d", e.ID, e.From.ID, e.To.ID, e.Tuple))
		return true
	})
	sort.Strings(vs)
	sort.Strings(es)
	return strings.Join(vs, ",") + "|" + strings.Join(es, ",")
}

// querySig runs a query and renders sorted results.
func querySig(t *testing.T, e *Engine, q string) string {
	t.Helper()
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// stateSig captures everything the recovery tests compare: relational
// contents, live topology, a from-scratch topology rebuild, and a
// traversal result.
func stateSig(t *testing.T, e *Engine) string {
	t.Helper()
	live, err := e.GraphTopology("net")
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := e.RebuildGraphView("net")
	if err != nil {
		t.Fatal(err)
	}
	liveSig, rebuiltSig := topoSig(live), topoSig(rebuilt)
	if liveSig != rebuiltSig {
		t.Fatalf("live topology diverges from from-scratch rebuild:\nlive    %s\nrebuilt %s", liveSig, rebuiltSig)
	}
	return querySig(t, e, "SELECT id, name FROM people") + "\n--\n" +
		querySig(t, e, "SELECT id, src, dst, w FROM knows") + "\n--\n" + liveSig
}

func seedRows(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		mustExecAll(t, e, fmt.Sprintf("INSERT INTO people VALUES (%d, 'p%d')", i, i))
	}
	for i := 1; i < n; i++ {
		mustExecAll(t, e, fmt.Sprintf("INSERT INTO knows VALUES (%d, %d, %d, %d)", i, i, i+1, i*10))
	}
}

func TestRecoveryWALOnly(t *testing.T) {
	dir := t.TempDir()
	e, info := openDur(t, dir, Options{})
	if info == nil || info.CheckpointLoaded || info.Replayed != 0 {
		t.Fatalf("fresh dir: %+v", info)
	}
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 5)
	mustExecAll(t, e, "DELETE FROM knows WHERE id = 2")
	mustExecAll(t, e, "UPDATE people SET name = 'renamed' WHERE id = 3")
	want := stateSig(t, e)
	e.Kill()

	// WAL only, no checkpoint: everything replays.
	r, info2 := openDur(t, dir, Options{})
	defer r.Close()
	if info2.CheckpointLoaded {
		t.Fatalf("no checkpoint was written, but one loaded: %+v", info2)
	}
	if info2.Replayed == 0 || info2.ReplayErrors != 0 {
		t.Fatalf("recovery: %+v", info2)
	}
	if got := stateSig(t, r); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestRecoveryCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 4)
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint tail: these live only in the WAL.
	mustExecAll(t, e, "INSERT INTO people VALUES (100, 'tail')")
	mustExecAll(t, e, "INSERT INTO knows VALUES (100, 100, 1, 7)")
	want := stateSig(t, e)
	e.Kill()

	r, info := openDur(t, dir, Options{})
	defer r.Close()
	if !info.CheckpointLoaded {
		t.Fatalf("checkpoint not loaded: %+v", info)
	}
	if info.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (the post-checkpoint tail): %+v", info.Replayed, info)
	}
	if got := stateSig(t, r); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestRecoveryCheckpointEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 3)
	want := stateSig(t, e)
	// Graceful shutdown: final checkpoint, rotated (empty) WAL.
	if err := e.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After shutdown, reads still work but mutations are rejected.
	if _, err := e.Execute("SELECT id FROM people"); err != nil {
		t.Fatalf("read after shutdown: %v", err)
	}
	if _, err := e.Execute("INSERT INTO people VALUES (9, 'x')"); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("mutation after shutdown: %v, want ErrClosed", err)
	}

	r, info := openDur(t, dir, Options{})
	defer r.Close()
	if !info.CheckpointLoaded || info.Replayed != 0 {
		t.Fatalf("snapshot-but-empty-WAL recovery: %+v", info)
	}
	if got := stateSig(t, r); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	// The LSN sequence must continue past the checkpoint, not restart.
	if info.LastLSN == 0 {
		t.Fatalf("LSN restarted: %+v", info)
	}
}

func TestRecoveryTornTail(t *testing.T) {
	for _, cut := range []struct {
		name  string
		bytes int64 // how much to keep relative to the last frame boundary
	}{
		{"mid frame", -3},
		{"exact frame boundary", 0},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			e, _ := openDur(t, dir, Options{})
			mustExecAll(t, e, durSetup)
			seedRows(t, e, 4)
			wantBefore := stateSig(t, e)
			// The victim statement: its frame will be torn off.
			mustExecAll(t, e, "INSERT INTO people VALUES (50, 'lost')")
			e.Kill()

			walPath := filepath.Join(dir, "wal.log")
			fi, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the victim's frame off: a few bytes into it (mid-frame),
			// or exactly at the boundary where it starts (clean cut).
			var lastStart int64
			if cut.bytes < 0 {
				lastStart = fi.Size() + cut.bytes
			} else {
				lastStart = frameStartOfLast(t, walPath)
			}
			if err := os.Truncate(walPath, lastStart); err != nil {
				t.Fatal(err)
			}

			r, info := openDur(t, dir, Options{})
			defer r.Close()
			if cut.bytes < 0 && !info.TornTail {
				t.Fatalf("mid-frame cut not reported as torn: %+v", info)
			}
			if info.ReplayErrors != 0 {
				t.Fatalf("replay errors: %+v", info)
			}
			// The victim insert is gone; everything before it recovered,
			// with graph views identical to a from-scratch rebuild
			// (stateSig asserts that).
			if got := stateSig(t, r); got != wantBefore {
				t.Fatalf("recovered state differs:\n got %s\nwant %s", got, wantBefore)
			}
		})
	}
}

// frameStartOfLast returns the byte offset where the final frame of the
// WAL begins, by walking the length-prefixed frames.
func frameStartOfLast(t *testing.T, path string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := wal.Scan(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) == 0 {
		t.Fatal("no frames")
	}
	off := int64(wal.HeaderSize)
	prev := off
	for off < scan.ValidBytes {
		prev = off
		length := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 8 + length
	}
	return prev
}

func TestDoubleRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 6)
	mustExecAll(t, e, "DELETE FROM knows WHERE id = 3")
	want := stateSig(t, e)
	e.Kill()

	r1, info1 := openDur(t, dir, Options{})
	sig1 := stateSig(t, r1)
	r1.Kill() // crash again without writing anything

	r2, info2 := openDur(t, dir, Options{})
	defer r2.Close()
	sig2 := stateSig(t, r2)
	if sig1 != want || sig2 != want {
		t.Fatalf("double recovery diverged:\nwant %s\n r1  %s\n r2  %s", want, sig1, sig2)
	}
	if info1.Replayed != info2.Replayed {
		t.Fatalf("replay counts differ: %d vs %d", info1.Replayed, info2.Replayed)
	}
}

func TestFailedStatementsNotReplayed(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 3)
	// Duplicate PK: logged ahead of apply, rolled back out of the log
	// when the apply fails.
	if _, err := e.Execute("INSERT INTO people VALUES (1, 'dup')"); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if _, err := e.Execute("INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
	mustExecAll(t, e, "INSERT INTO people VALUES (42, 'after')")
	want := stateSig(t, e)
	e.Kill()

	r, info := openDur(t, dir, Options{})
	defer r.Close()
	if info.ReplayErrors != 0 {
		t.Fatalf("failed statements leaked into the WAL: %+v", info)
	}
	if got := stateSig(t, r); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

// TestAbortedInsertLeavesNoAllocatorTrace pins a bug the chaos soak found:
// an INSERT that extended its table's row array and then failed graph-view
// maintenance (edge endpoint vertex absent) was compensated with a plain
// Delete, leaving one extra slot plus one free-list hole. The aborted
// statement leaves no WAL record, so replay — which only ever sees applied
// statements — could never reproduce that allocator state, and the next
// statement's allocation pin made recovery fail with ErrCorruptWAL.
func TestAbortedInsertLeavesNoAllocatorTrace(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 3)

	knows, _ := e.cat.Table("knows")
	next, depth := knows.AllocState()
	// dst vertex 999 does not exist: the tuple lands in the table, then
	// §3.3 maintenance rejects it and the statement aborts.
	if _, err := e.Execute("INSERT INTO knows VALUES (50, 1, 999, 1)"); err == nil {
		t.Fatal("edge insert with a missing endpoint vertex succeeded")
	}
	if n, d := knows.AllocState(); n != next || d != depth {
		t.Fatalf("aborted insert left an allocator trace: (%d,%d) -> (%d,%d)", next, depth, n, d)
	}

	mustExecAll(t, e, "INSERT INTO knows VALUES (51, 1, 2, 7)")
	want := stateSig(t, e)
	e.Kill()

	r, info := openDur(t, dir, Options{})
	defer r.Close()
	if info.ReplayErrors != 0 {
		t.Fatalf("recovery after aborted insert: %+v", info)
	}
	if got := stateSig(t, r); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestPreparedDMLRecovery(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	ins, err := e.PrepareDML("INSERT INTO people VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := ins.Exec(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A failing prepared execution must also be rolled out of the log.
	if _, err := ins.Exec(types.NewInt(1), types.NewString("dup")); err == nil {
		t.Fatal("duplicate prepared insert succeeded")
	}
	del, err := e.PrepareDML("DELETE FROM people WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := del.Exec(types.NewInt(4)); err != nil {
		t.Fatal(err)
	}
	want := querySig(t, e, "SELECT id, name FROM people")
	e.Kill()

	r, info := openDur(t, dir, Options{})
	defer r.Close()
	if info.ReplayErrors != 0 {
		t.Fatalf("recovery: %+v", info)
	}
	if got := querySig(t, r, "SELECT id, name FROM people"); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestCheckpointCrashWindows(t *testing.T) {
	for _, pt := range []wal.CrashPoint{wal.CrashAfterTemp, wal.CrashAfterSync, wal.CrashAfterRename} {
		t.Run(string(pt), func(t *testing.T) {
			dir := t.TempDir()
			boom := errors.New("injected crash")
			armed := false
			opts := Options{}
			opts.Durability.CrashHook = func(p wal.CrashPoint) error {
				if armed && p == pt {
					return boom
				}
				return nil
			}
			e, _ := openDur(t, dir, opts)
			mustExecAll(t, e, durSetup)
			seedRows(t, e, 5)
			want := stateSig(t, e)
			armed = true
			if err := e.Checkpoint(); !errors.Is(err, boom) {
				t.Fatalf("checkpoint with crash at %s: %v", pt, err)
			}
			e.Kill()

			r, info := openDur(t, dir, Options{})
			defer r.Close()
			if info.ReplayErrors != 0 {
				t.Fatalf("recovery after crash at %s: %+v", pt, info)
			}
			if got := stateSig(t, r); got != want {
				t.Fatalf("crash at %s lost state:\n got %s\nwant %s", pt, got, want)
			}
		})
	}
}

func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := Options{}
	opts.Durability.CheckpointEvery = 5
	e, _ := openDur(t, dir, opts)
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 6) // 11 DML statements: at least one automatic checkpoint
	if !wal.Exists(filepath.Join(dir, "checkpoint.gob")) {
		t.Fatal("no automatic checkpoint after exceeding CHECKPOINT_EVERY")
	}
	want := stateSig(t, e)
	e.Kill()
	r, info := openDur(t, dir, Options{})
	defer r.Close()
	if !info.CheckpointLoaded {
		t.Fatalf("recovery: %+v", info)
	}
	if got := stateSig(t, r); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

func TestSetDurabilityTunables(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	defer e.Close()
	mustExecAll(t, e, "SET WAL_FSYNC = INTERVAL")
	if p, ok := e.WALFsyncPolicy(); !ok || p != wal.FsyncInterval {
		t.Fatalf("policy %v ok=%v after SET WAL_FSYNC = INTERVAL", p, ok)
	}
	mustExecAll(t, e, "SET WAL_FSYNC = 'off'")
	if p, _ := e.WALFsyncPolicy(); p != wal.FsyncOff {
		t.Fatalf("policy %v after SET WAL_FSYNC = 'off'", p)
	}
	mustExecAll(t, e, "SET WAL_FSYNC = ALWAYS; SET CHECKPOINT_EVERY = 100")
	if _, err := e.Execute("SET WAL_FSYNC = SOMETIMES"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := e.Execute("SET CHECKPOINT_EVERY = -1"); err == nil {
		t.Fatal("negative checkpoint threshold accepted")
	}

	// On a non-durable engine the tunables are meaningful errors.
	plain := New(Options{})
	if _, err := plain.Execute("SET WAL_FSYNC = ALWAYS"); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("SET WAL_FSYNC on non-durable engine: %v", err)
	}
	if _, err := plain.Execute("SET CHECKPOINT_EVERY = 10"); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("SET CHECKPOINT_EVERY on non-durable engine: %v", err)
	}
}

func TestDurableRequiresStatementText(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	defer e.Close()
	mustExecAll(t, e, "CREATE TABLE t (id BIGINT)")
	stmt, err := sql.Parse("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteStmt(stmt); err == nil || !strings.Contains(err.Error(), "statement text") {
		t.Fatalf("textless mutation on durable engine: %v", err)
	}
	// Reads without text are fine.
	sel, err := sql.Parse("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteStmt(sel); err != nil {
		t.Fatalf("textless read: %v", err)
	}
}

func TestRecoveryRejectsForeignWAL(t *testing.T) {
	// A WAL whose records do not match the checkpoint (here: a fresh
	// checkpoint against a WAL from a different history) must fail with
	// typed corruption, not silently rebuild a wrong database.
	dirA := t.TempDir()
	a, _ := openDur(t, dirA, Options{})
	mustExecAll(t, a, durSetup)
	seedRows(t, a, 4)
	a.Kill()

	dirB := t.TempDir()
	b, _ := openDur(t, dirB, Options{})
	mustExecAll(t, b, durSetup)
	seedRows(t, b, 2) // different allocation history
	mustExecAll(t, b, "DELETE FROM people WHERE id = 1")
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	b.Kill()

	// Graft A's WAL (full history) onto B's checkpoint.
	data, err := os.ReadFile(filepath.Join(dirA, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, "wal.log"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	opts.Durability.Dir = dirB
	_, _, err = Open(opts)
	if err == nil || !errors.Is(err, wal.ErrCorruptWAL) {
		t.Fatalf("foreign WAL accepted: %v", err)
	}
}

func TestRecoveryCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.gob"), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	opts.Durability.Dir = dir
	if _, _, err := Open(opts); !errors.Is(err, wal.ErrCorruptWAL) {
		t.Fatalf("corrupt checkpoint: %v, want ErrCorruptWAL", err)
	}
}

func TestDurabilityMetrics(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)
	seedRows(t, e, 3)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m := map[string]int64{}
	for _, kv := range e.MetricsSnapshot() {
		m[kv.Name] = kv.Value
	}
	if m["wal.appends"] == 0 || m["wal.bytes"] == 0 {
		t.Fatalf("append metrics missing: %v", m)
	}
	if m["wal.fsyncs"] == 0 {
		t.Fatalf("fsync metric missing (policy always): %v", m)
	}
	if m["wal.checkpoints"] != 1 {
		t.Fatalf("wal.checkpoints = %d, want 1", m["wal.checkpoints"])
	}
	e.Kill()
	r, _ := openDur(t, dir, Options{})
	defer r.Close()
	m2 := map[string]int64{}
	for _, kv := range r.MetricsSnapshot() {
		m2[kv.Name] = kv.Value
	}
	if m2["wal.recoveries"] != 1 {
		t.Fatalf("wal.recoveries = %d, want 1", m2["wal.recoveries"])
	}
}
