package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"grfusion/internal/plan"
)

// TestAnalyticsDegreeCentrality pins the relational surface of the degree
// TVF on the paper's Figure 3 social network (undirected, so out = in =
// total degree).
func TestAnalyticsDegreeCentrality(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT * FROM SocialNetwork.DEGREE_CENTRALITY()`)
	if !reflect.DeepEqual(r.Columns, []string{"ID", "out_degree", "in_degree"}) {
		t.Fatalf("columns: %v", r.Columns)
	}
	want := map[int64]int64{1: 2, 2: 2, 3: 3, 4: 2, 5: 1}
	if len(r.Rows) != len(want) {
		t.Fatalf("rows: %v", render(r))
	}
	prev := int64(-1)
	for _, row := range r.Rows {
		id, out, in := row[0].I, row[1].I, row[2].I
		if id <= prev {
			t.Fatalf("rows not in ascending ID order: %v", render(r))
		}
		prev = id
		if out != want[id] || in != want[id] {
			t.Errorf("vertex %d: degrees (%d,%d), want %d", id, out, in, want[id])
		}
	}
}

func TestAnalyticsComponentsAndFilter(t *testing.T) {
	e := socialEngine(t)
	// Figure 3 is one connected component labeled by its smallest vertex.
	r := mustExec(t, e, `SELECT * FROM SocialNetwork.CONNECTED_COMPONENTS() CC WHERE CC.component = 1`)
	if len(r.Rows) != 5 {
		t.Fatalf("connected graph: %v", render(r))
	}
	r = mustExec(t, e, `SELECT * FROM SocialNetwork.CONNECTED_COMPONENTS() CC WHERE CC.component = 2`)
	if len(r.Rows) != 0 {
		t.Fatalf("no component is labeled 2: %v", render(r))
	}
	// The single-alias predicate is pushed into the scan.
	p := planText(mustExec(t, e,
		`EXPLAIN SELECT * FROM SocialNetwork.CONNECTED_COMPONENTS() CC WHERE CC.component = 1`))
	if !strings.Contains(p, "AnalyticsScan SocialNetwork.CONNECTED_COMPONENTS() filter=") {
		t.Errorf("filter not pushed into AnalyticsScan:\n%s", p)
	}
}

// TestAnalyticsJoinWithTable is the tentpole acceptance query: analytics
// results are ordinary relations that join against table attributes.
func TestAnalyticsJoinWithTable(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT U.lname, PR.rank FROM Users U, SocialNetwork.PAGERANK(0.85, 20) PR
		WHERE U.uid = PR.ID ORDER BY PR.rank DESC, U.lname`)
	if len(r.Rows) != 5 {
		t.Fatalf("rows: %v", render(r))
	}
	// Parker (uid 3) has the highest degree, hence the highest rank.
	if r.Rows[0][0].S != "Parker" {
		t.Fatalf("top-ranked user: %v", render(r))
	}
	sum := 0.0
	for _, row := range r.Rows {
		sum += row[1].F
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank mass = %v, want 1", sum)
	}
}

func TestAnalyticsLabelPropagation(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT * FROM SocialNetwork.LABEL_PROPAGATION(10) LP ORDER BY LP.ID`)
	if len(r.Rows) != 5 {
		t.Fatalf("rows: %v", render(r))
	}
	labels := map[int64]bool{}
	for _, row := range r.Rows {
		labels[row[1].I] = true
	}
	if len(labels) < 1 || len(labels) > 5 {
		t.Fatalf("labels: %v", render(r))
	}
}

func TestAnalyticsArgumentValidation(t *testing.T) {
	e := socialEngine(t)
	for _, q := range []string{
		`SELECT * FROM SocialNetwork.PAGERANK(0.85, 20, 3)`, // too many args
		`SELECT * FROM SocialNetwork.DEGREE_CENTRALITY(1)`,  // takes none
		`SELECT * FROM SocialNetwork.PAGERANK(1.5)`,         // damping out of range
		`SELECT * FROM SocialNetwork.PAGERANK(0.85, 0)`,     // iterations < 1
		`SELECT * FROM SocialNetwork.LABEL_PROPAGATION(0)`,  // maxIters < 1
		`SELECT * FROM SocialNetwork.BETWEENNESS()`,         // unknown function
		`SELECT * FROM SocialNetwork.PAGERANK(U.uid)`,       // non-constant arg
	} {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("%s: expected error", q)
		}
	}
}

// TestAnalyticsLayoutSelection pins the planner's size rule and the
// ForceLayout override for analytics scans, and checks both layouts return
// identical relations.
func TestAnalyticsLayoutSelection(t *testing.T) {
	small := socialEngine(t)
	p := planText(mustExec(t, small, `EXPLAIN SELECT * FROM SocialNetwork.PAGERANK() PR`))
	if !strings.Contains(p, "layout=ptr") {
		t.Errorf("small graph should plan pointer layout:\n%s", p)
	}

	big := ladderEngine(t, 200, 2)
	p = planText(mustExec(t, big, `EXPLAIN SELECT * FROM Ladder.PAGERANK() PR`))
	if !strings.Contains(p, "layout=csr") {
		t.Errorf("large graph should plan CSR layout:\n%s", p)
	}

	// Layout invariance: ptr and csr must agree bit-for-bit on every TVF.
	for _, q := range []string{
		`SELECT * FROM Ladder.PAGERANK(0.85, 15) X`,
		`SELECT * FROM Ladder.CONNECTED_COMPONENTS() X`,
		`SELECT * FROM Ladder.LABEL_PROPAGATION(8) X`,
		`SELECT * FROM Ladder.DEGREE_CENTRALITY() X`,
	} {
		big.SetPlanOptions(plan.Options{ForceLayout: "ptr"})
		ptr := render(mustExec(t, big, q))
		big.SetPlanOptions(plan.Options{ForceLayout: "csr"})
		csr := render(mustExec(t, big, q))
		big.SetPlanOptions(plan.Options{})
		if !reflect.DeepEqual(ptr, csr) {
			t.Fatalf("%s: ptr and csr layouts disagree", q)
		}
	}
}

func TestAnalyticsExplainAnalyzeAndMetrics(t *testing.T) {
	e := ladderEngine(t, 200, 2)
	runs0 := metricValue(e, "analytics.runs")
	p := planText(mustExec(t, e, `EXPLAIN ANALYZE SELECT * FROM Ladder.CONNECTED_COMPONENTS() CC`))
	if !strings.Contains(p, "Analytics[Ladder.CONNECTED_COMPONENTS]: runs=1 iters=") {
		t.Errorf("EXPLAIN ANALYZE missing analytics actuals:\n%s", p)
	}
	if !strings.Contains(p, "CSR[Ladder]:") {
		t.Errorf("EXPLAIN ANALYZE missing CSR cache line:\n%s", p)
	}
	mustExec(t, e, `SELECT * FROM Ladder.PAGERANK() PR LIMIT 1`)
	if runs := metricValue(e, "analytics.runs"); runs < runs0+2 {
		t.Errorf("analytics.runs = %d, want >= %d", runs, runs0+2)
	}
	if iters := metricValue(e, "analytics.iterations"); iters <= 0 {
		t.Errorf("analytics.iterations = %d, want > 0", iters)
	}
}

func TestAnalyticsCancellation(t *testing.T) {
	e := ladderEngine(t, 300, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExecuteContext(ctx, `SELECT * FROM Ladder.PAGERANK(0.85, 50) PR`)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The engine must stay usable afterwards.
	if r := mustExec(t, e, `SELECT * FROM Ladder.DEGREE_CENTRALITY() D LIMIT 1`); len(r.Rows) != 1 {
		t.Fatalf("engine unusable after cancellation")
	}
}
