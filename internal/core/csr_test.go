package core

import (
	"fmt"
	"strings"
	"testing"
)

// planText renders an EXPLAIN / EXPLAIN ANALYZE result to one string.
func planText(r *Result) string {
	var sb strings.Builder
	for _, row := range r.Rows {
		sb.WriteString(row[0].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestCSRLayoutSelection pins the planner's size rule: small graphs stay on
// the pointer kernels, graphs past the CSR threshold switch layouts, and
// both choices are visible in EXPLAIN.
func TestCSRLayoutSelection(t *testing.T) {
	small := socialEngine(t)
	p := planText(mustExec(t, small,
		`EXPLAIN SELECT PS.PathString FROM SocialNetwork.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length <= 2`))
	if !strings.Contains(p, "layout=ptr") {
		t.Errorf("small graph should plan pointer layout:\n%s", p)
	}

	big := ladderEngine(t, 200, 0) // 200 vertices + ~397 edges > csr threshold
	p = planText(mustExec(t, big,
		`EXPLAIN SELECT PS.PathString FROM Ladder.Paths PS WHERE PS.StartVertex.Id = 0 AND PS.Length <= 2`))
	if !strings.Contains(p, "layout=csr") {
		t.Errorf("large graph should plan CSR layout:\n%s", p)
	}
}

// TestCSRSnapshotStaleness proves post-DML queries never read a stale CSR
// snapshot: every topology mutation invalidates the cached snapshot, the
// next query rebuilds it, and the answers always reflect the current
// relational state.
func TestCSRSnapshotStaleness(t *testing.T) {
	const n = 200
	e := ladderEngine(t, n, 0)

	reach := fmt.Sprintf(
		`SELECT PS.Length FROM Ladder.Paths PS WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = %d LIMIT 1`, n-1)
	reachable := func() bool {
		t.Helper()
		return len(mustExec(t, e, reach).Rows) > 0
	}

	if !reachable() {
		t.Fatal("ladder end should be reachable from vertex 0")
	}
	if b := metricValue(e, "graphview.Ladder.csr_builds"); b != 1 {
		t.Fatalf("after first query: csr_builds = %d, want 1", b)
	}

	// A repeat query on an unchanged topology must hit the cache.
	if !reachable() {
		t.Fatal("repeat query changed its answer")
	}
	if b := metricValue(e, "graphview.Ladder.csr_builds"); b != 1 {
		t.Errorf("repeat query rebuilt the snapshot: csr_builds = %d, want 1", b)
	}
	if h := metricValue(e, "graphview.Ladder.csr_hits"); h < 1 {
		t.Errorf("repeat query did not hit the cache: csr_hits = %d", h)
	}

	// Disconnect the last vertex: the next query must see the deletion.
	mustExec(t, e, fmt.Sprintf("DELETE FROM E WHERE dst = %d", n-1))
	if reachable() {
		t.Fatal("stale snapshot: deleted edges still traversed")
	}
	if b := metricValue(e, "graphview.Ladder.csr_builds"); b != 2 {
		t.Errorf("post-DELETE query should rebuild: csr_builds = %d, want 2", b)
	}

	// Reconnect it: the next query must see the insertion.
	mustExec(t, e, fmt.Sprintf("INSERT INTO E VALUES (9999, %d, %d, 1.5)", n-2, n-1))
	if !reachable() {
		t.Fatal("stale snapshot: inserted edge not traversed")
	}
	if b := metricValue(e, "graphview.Ladder.csr_builds"); b != 3 {
		t.Errorf("post-INSERT query should rebuild: csr_builds = %d, want 3", b)
	}

	// An attribute UPDATE that does not touch topology must not invalidate.
	mustExec(t, e, "UPDATE V SET name = 'renamed' WHERE vid = 0")
	if !reachable() {
		t.Fatal("attribute update broke reachability")
	}
	if b := metricValue(e, "graphview.Ladder.csr_builds"); b != 3 {
		t.Errorf("attribute-only UPDATE invalidated the snapshot: csr_builds = %d, want 3", b)
	}

	// EXPLAIN ANALYZE surfaces the snapshot cache state for CSR scans.
	p := planText(mustExec(t, e, "EXPLAIN ANALYZE "+reach))
	if !strings.Contains(p, "CSR[Ladder]:") || !strings.Contains(p, "layout=csr") {
		t.Errorf("EXPLAIN ANALYZE missing CSR cache line:\n%s", p)
	}
}
