package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"grfusion/internal/exec"
	"grfusion/internal/metrics"
	"grfusion/internal/sql"
	"grfusion/internal/types"
)

// This file is the engine half of the observability layer: statement
// classification and accounting into the internal/metrics registry, the
// slow-query log, the metrics snapshot behind SHOW METRICS / the wire
// METRICS command / the HTTP endpoint, and the EXPLAIN ANALYZE renderer.

// Metrics exposes the engine's observability registry for direct counter
// access (the server increments admission-shed counts through it).
func (e *Engine) Metrics() *metrics.Metrics { return &e.metrics }

// SlowQuery returns the slow-query-log threshold (zero = disabled).
func (e *Engine) SlowQuery() time.Duration {
	return time.Duration(e.slowQueryNS.Load())
}

// SetSlowQuery sets the slow-query-log threshold; zero or negative
// disables the log. Equivalent to SET SLOW_QUERY = <ms>. While armed,
// SELECT plans run through the instrumentation layer so the log can name
// the top operators by self time.
func (e *Engine) SetSlowQuery(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.slowQueryNS.Store(int64(d))
}

// stmtKind classifies a parsed statement for the statements-by-kind
// counters.
func stmtKind(stmt sql.Statement) int {
	switch stmt.(type) {
	case *sql.Select:
		return metrics.StmtSelect
	case *sql.Insert:
		return metrics.StmtInsert
	case *sql.Update:
		return metrics.StmtUpdate
	case *sql.Delete:
		return metrics.StmtDelete
	case *sql.Explain:
		return metrics.StmtExplain
	case *sql.Show:
		return metrics.StmtShow
	case *sql.Set:
		return metrics.StmtSet
	case *sql.CreateTable, *sql.CreateIndex, *sql.CreateGraphView,
		*sql.CreateMatView, *sql.DropTable, *sql.DropGraphView,
		*sql.DropMatView, *sql.TruncateTable:
		return metrics.StmtDDL
	default:
		return metrics.StmtOther
	}
}

// errClass maps a statement error to the errors-by-sentinel counters.
func errClass(err error) int {
	switch {
	case errors.Is(err, ErrTimeout):
		return metrics.ErrTimeout
	case errors.Is(err, ErrCanceled):
		return metrics.ErrCanceled
	case errors.Is(err, ErrMemLimit):
		return metrics.ErrMemLimit
	case errors.Is(err, ErrQueryPanic):
		return metrics.ErrPanic
	case errors.Is(err, ErrDegraded):
		return metrics.ErrDegraded
	default:
		return metrics.ErrOther
	}
}

// observeStatement is execStmt's deferred accounting hook: every statement
// lands in the by-kind counter and the latency histogram, failures land in
// the by-sentinel error counters, and statements over the slow-query
// threshold are counted and logged (with the top operators by self time
// when the plan ran instrumented).
func (e *Engine) observeStatement(kind int, text string, d time.Duration, err error, prof *exec.Instrumented) {
	e.metrics.CountStatement(kind, d)
	if err != nil {
		e.metrics.CountError(errClass(err))
	}
	th := e.slowQueryNS.Load()
	if th <= 0 || d.Nanoseconds() < th {
		return
	}
	e.metrics.SlowQueries.Inc()
	if text == "" {
		text = "<" + metrics.StmtKindName(kind) + " statement>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "core: slow query (%v): %s", d.Round(time.Microsecond), text)
	if err != nil {
		fmt.Fprintf(&sb, " [error: %v]", err)
	}
	if prof != nil {
		for i, oc := range exec.TopOperators(prof, 3) {
			fmt.Fprintf(&sb, "\n  top[%d] %v rows=%d  %s",
				i+1, time.Duration(oc.SelfNS).Round(time.Microsecond), oc.Rows, oc.Line)
		}
	}
	log.Print(sb.String())
}

// observeAnalytics folds the analytics actuals of a finished plan into the
// registry. Plans are per-statement, so the operators' counters equal the
// statement's work; it runs even after errors, counting kernels that ran
// before the failure.
func (e *Engine) observeAnalytics(op exec.Operator) {
	walkOperators(op, func(o exec.Operator) {
		if as, ok := o.(*exec.AnalyticsScan); ok {
			runs, iters, _, _ := as.Actuals()
			e.metrics.AnalyticsRuns.Add(runs)
			e.metrics.AnalyticsIters.Add(iters)
		}
	})
}

// walkOperators visits every operator of a bare (uninstrumented) plan tree
// in preorder.
func walkOperators(op exec.Operator, fn func(exec.Operator)) {
	if op == nil {
		return
	}
	fn(op)
	for _, c := range op.Children() {
		walkOperators(c, fn)
	}
}

// viewStatsAt gathers the per-graph-view gauges for a metrics snapshot
// against a pinned version: topology sizes come from the version's bound
// graph (never mutated after publish), while the lifetime counters
// (maintenance ops, CSR cache, statistics age) are the view's atomics.
func (e *Engine) viewStatsAt(st *dbState) []metrics.GraphViewStats {
	now := time.Now()
	var out []metrics.GraphViewStats
	for _, name := range st.cat.GraphViews() {
		gv, ok := st.cat.GraphView(name)
		if !ok {
			continue
		}
		g := st.GraphView(gv).G
		vs := metrics.GraphViewStats{
			Name:       name,
			Vertices:   int64(g.NumVertices()),
			Edges:      int64(g.NumEdges()),
			MaintOps:   gv.MaintOps(),
			StatsAgeNS: -1,
		}
		if st := gv.Stats(); st != nil {
			vs.StatsAgeNS = now.Sub(st.UpdatedAt).Nanoseconds()
		}
		vs.CSRBuilds, vs.CSRBuildNS, vs.CSRHits, vs.CSRMisses, vs.CSRBytes = gv.CSRStats()
		out = append(out, vs)
	}
	return out
}

// MetricsSnapshot renders the full metrics state — engine counters,
// latency summary, and per-graph-view gauges — as sorted name/value
// pairs. It pins the current version like any reader, so it never waits
// behind writers.
func (e *Engine) MetricsSnapshot() []metrics.KV {
	st := e.pin()
	defer e.unpin(st)
	return e.metrics.Snapshot(e.viewStatsAt(st))
}

// runExplainAnalyze executes the planned SELECT through the
// instrumentation layer, discards its rows, and renders the annotated
// operator tree plus execution summary lines: totals, traversal counters,
// and for every PathScan the §6.3 statistics the optimizer consulted.
// Callers hold a version pin (EXPLAIN is read-only; the plan was built
// against the pinned version, so running it lock-free is sound).
func (e *Engine) runExplainAnalyze(ctx context.Context, op exec.Operator) (*Result, error) {
	root := exec.Instrument(op)
	ec := exec.NewContext(e.opts.MemLimit)
	ec.Workers = e.workerCount()
	ec.Bind(ctx)
	start := time.Now()
	rows, err := exec.Collect(ec, root)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}

	res := &Result{Columns: []string{"plan"}}
	add := func(format string, args ...any) {
		res.Rows = append(res.Rows, types.Row{types.NewString(fmt.Sprintf(format, args...))})
	}
	for _, line := range strings.Split(strings.TrimRight(exec.Explain(root), "\n"), "\n") {
		add("%s", line)
	}
	add("")
	add("Execution: rows=%d time=%v", len(rows), elapsed.Round(time.Microsecond))
	add("Counters: edges_traversed=%d paths_emitted=%d",
		atomic.LoadInt64(&ec.EdgesTraversed), ec.PathsEmitted)
	root.Walk(func(n *exec.Instrumented) {
		if as, ok := n.Op.(*exec.AnalyticsScan); ok {
			runs, iters, td, bu := as.Actuals()
			e.metrics.AnalyticsRuns.Add(runs)
			e.metrics.AnalyticsIters.Add(iters)
			add("Analytics[%s.%s]: runs=%d iters=%d topdown_levels=%d bottomup_levels=%d layout=%s",
				as.GV.Name, as.Fn, runs, iters, td, bu, as.Layout)
			if as.Layout == exec.LayoutCSR {
				builds, buildNS, hits, misses, bytes := as.GV.CSRStats()
				add("CSR[%s]: builds=%d build_time=%v hits=%d misses=%d bytes=%d",
					as.GV.Name, builds, time.Duration(buildNS).Round(time.Microsecond),
					hits, misses, bytes)
			}
			return
		}
		pj, ok := n.Op.(*exec.PathProbeJoin)
		if !ok {
			return
		}
		gv := pj.Spec.GV
		if pj.Spec.Layout == exec.LayoutCSR {
			builds, buildNS, hits, misses, bytes := gv.CSRStats()
			add("CSR[%s]: builds=%d build_time=%v hits=%d misses=%d bytes=%d",
				gv.Name, builds, time.Duration(buildNS).Round(time.Microsecond),
				hits, misses, bytes)
		}
		topo := gv.G
		if pj.Spec.At != nil {
			topo = pj.Spec.At.G
		}
		st := gv.Stats()
		if st == nil {
			add("Stats[%s]: none published; optimizer used live avg_fanout=%.2f",
				gv.Name, topo.AvgFanOut())
			return
		}
		state := "fresh"
		if gv.FreshStats() == nil {
			state = "stale, optimizer fell back to live avg_fanout"
		}
		add("Stats[%s]: avg_fanout=%.2f max_fanout=%d vertices=%d edges=%d age=%v (%s)",
			gv.Name, st.AvgFanOut, st.MaxFanOut, st.Vertices, st.Edges,
			time.Since(st.UpdatedAt).Round(time.Millisecond), state)
	})
	return res, nil
}
