package core

import (
	"strings"
	"testing"

	"grfusion/internal/plan"
	"grfusion/internal/types"
)

func mustExec(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	r, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return r
}

func mustScript(t *testing.T, e *Engine, script string) {
	t.Helper()
	if _, err := e.ExecuteScript(script); err != nil {
		t.Fatalf("script: %v", err)
	}
}

// render flattens a result to string cells for compact assertions.
func render(r *Result) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out[i] = cells
	}
	return out
}

// socialEngine loads the paper's Figure 3 social network:
//
//	users:  1 Smith(Lawyer) 2 Jones(Lawyer) 3 Parker 4 Patrick 5 Quinn
//	edges (undirected): 1-2 (2001), 2-3 (2002), 3-4 (1999), 4-5 (2003), 1-3 (2004)
func socialEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Options{})
	mustScript(t, e, `
		CREATE TABLE Users (uid BIGINT PRIMARY KEY, lname VARCHAR, dob VARCHAR, job VARCHAR);
		CREATE TABLE Relationships (relid BIGINT PRIMARY KEY, uid1 BIGINT, uid2 BIGINT, sdate VARCHAR, relative BOOLEAN);
		INSERT INTO Users VALUES
			(1, 'Smith',  '1970', 'Lawyer'),
			(2, 'Jones',  '1980', 'Lawyer'),
			(3, 'Parker', '1990', 'Doctor'),
			(4, 'Patrick','1985', 'Engineer'),
			(5, 'Quinn',  '1978', 'Doctor');
		INSERT INTO Relationships VALUES
			(10, 1, 2, '2001-01-01', true),
			(11, 2, 3, '2002-01-01', false),
			(12, 3, 4, '1999-06-01', false),
			(13, 4, 5, '2003-01-01', true),
			(14, 1, 3, '2004-01-01', false);
		CREATE UNDIRECTED GRAPH VIEW SocialNetwork
			VERTEXES(ID = uid, lstname = lname, birthdate = dob, job = job)
			FROM Users
			EDGES(ID = relid, FROM = uid1, TO = uid2, sdate = sdate, relative = relative)
			FROM Relationships;
	`)
	return e
}

func TestBasicSelectWhereOrder(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT lname, dob FROM Users WHERE job = 'Doctor' ORDER BY dob`)
	got := render(r)
	if len(got) != 2 || got[0][0] != "Quinn" || got[1][0] != "Parker" {
		t.Fatalf("rows: %v", got)
	}
	if r.Columns[0] != "lname" || r.Columns[1] != "dob" {
		t.Errorf("columns: %v", r.Columns)
	}
}

func TestSelectStarAndAlias(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT * FROM Users WHERE uid = 1`)
	if len(r.Rows) != 1 || len(r.Rows[0]) != 4 {
		t.Fatalf("star: %v", render(r))
	}
	r = mustExec(t, e, `SELECT U.lname AS name FROM Users U WHERE U.uid = 2`)
	if r.Columns[0] != "name" || r.Rows[0][0].S != "Jones" {
		t.Fatalf("%v %v", r.Columns, render(r))
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT job, COUNT(*) AS n FROM Users GROUP BY job ORDER BY n DESC, job`)
	got := render(r)
	want := [][]string{{"Doctor", "2"}, {"Lawyer", "2"}, {"Engineer", "1"}}
	if len(got) != 3 {
		t.Fatalf("groups: %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("groups: %v, want %v", got, want)
		}
	}
	r = mustExec(t, e, `SELECT COUNT(*), MIN(dob), MAX(dob) FROM Users`)
	if r.Rows[0][0].I != 5 || r.Rows[0][1].S != "1970" || r.Rows[0][2].S != "1990" {
		t.Fatalf("global agg: %v", render(r))
	}
	r = mustExec(t, e, `SELECT job FROM Users GROUP BY job HAVING COUNT(*) > 1 ORDER BY job`)
	if len(r.Rows) != 2 || r.Rows[0][0].S != "Doctor" {
		t.Fatalf("having: %v", render(r))
	}
	// Empty input still yields one global-aggregate row.
	r = mustExec(t, e, `SELECT COUNT(*) FROM Users WHERE job = 'Astronaut'`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 {
		t.Fatalf("empty agg: %v", render(r))
	}
}

func TestJoins(t *testing.T) {
	e := socialEngine(t)
	// Hash join via equi-predicate.
	r := mustExec(t, e, `
		SELECT U1.lname, U2.lname FROM Users U1, Relationships R, Users U2
		WHERE U1.uid = R.uid1 AND U2.uid = R.uid2 AND R.sdate > '2002-06-01'
		ORDER BY R.relid`)
	got := render(r)
	if len(got) != 2 || got[0][0] != "Patrick" || got[0][1] != "Quinn" || got[1][0] != "Smith" {
		t.Fatalf("join rows: %v", got)
	}
	// Explicit JOIN ... ON syntax plans identically.
	r2 := mustExec(t, e, `
		SELECT U1.lname, U2.lname FROM Users U1
		JOIN Relationships R ON U1.uid = R.uid1
		JOIN Users U2 ON U2.uid = R.uid2
		WHERE R.sdate > '2002-06-01' ORDER BY R.relid`)
	if len(r2.Rows) != 2 {
		t.Fatalf("join-on rows: %v", render(r2))
	}
	// Cross product falls back to nested loops.
	r3 := mustExec(t, e, `SELECT COUNT(*) FROM Users U1, Users U2`)
	if r3.Rows[0][0].I != 25 {
		t.Fatalf("cross: %v", render(r3))
	}
}

func TestIndexScanChosen(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `CREATE INDEX ix_job ON Users (job)`)
	planText, err := e.Explain(`SELECT lname FROM Users WHERE job = 'Lawyer'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText, "IndexScan") {
		t.Errorf("plan does not use index:\n%s", planText)
	}
	r := mustExec(t, e, `SELECT lname FROM Users WHERE job = 'Lawyer' ORDER BY lname`)
	if len(r.Rows) != 2 || r.Rows[0][0].S != "Jones" {
		t.Fatalf("index scan rows: %v", render(r))
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT DISTINCT job FROM Users ORDER BY job`)
	if len(r.Rows) != 3 {
		t.Fatalf("distinct: %v", render(r))
	}
	r = mustExec(t, e, `SELECT uid FROM Users ORDER BY uid LIMIT 2 OFFSET 1`)
	if len(r.Rows) != 2 || r.Rows[0][0].I != 2 || r.Rows[1][0].I != 3 {
		t.Fatalf("limit/offset: %v", render(r))
	}
}

// Listing 5: vertex scan with relational operators above.
func TestVertexScanListing5(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT VS.birthdate, VS.fanOut FROM SocialNetwork.Vertexes VS WHERE VS.lstname = 'Smith'`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows: %v", render(r))
	}
	// Smith (vertex 1) has undirected degree 2 (edges 10, 14).
	if r.Rows[0][0].S != "1970" || r.Rows[0][1].I != 2 {
		t.Fatalf("row: %v", render(r))
	}
}

func TestEdgeScan(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT ES.ID, ES.sdate FROM SocialNetwork.Edges ES WHERE ES.relative = true ORDER BY ES.ID`)
	if len(r.Rows) != 2 || r.Rows[0][0].I != 10 || r.Rows[1][0].I != 13 {
		t.Fatalf("edges: %v", render(r))
	}
}

// Listing 2: friends-of-friends of lawyers through post-2000 edges.
func TestFriendsOfFriendsListing2(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `
		SELECT PS.EndVertex.lstname
		FROM Users U, SocialNetwork.Paths PS
		WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uid
		  AND PS.Length = 2 AND PS.Edges[0..*].sdate > '2000-01-01'
		ORDER BY PS.EndVertex.lstname`)
	got := render(r)
	// Visit-once traversal from Smith(1): 1-2(2001)->... and 1-3(2004);
	// from Jones(2): 2-1, 2-3 then depth 2 continuations. The exact rows
	// depend on visit-once tree shape; what must hold: every end vertex is
	// at distance 2 through post-2000 edges, and Parker (via 1-2-3 or
	// 1-3-?) appears.
	if len(got) == 0 {
		t.Fatalf("no FoF results")
	}
	for _, row := range got {
		if row[0] == "" {
			t.Fatalf("empty name in %v", got)
		}
	}
}

// Listing 3 shape: reachability with an all-edges predicate and LIMIT 1.
func TestReachabilityListing3(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `
		SELECT PS.PathString
		FROM Users Src, Users Dst, SocialNetwork.Paths PS
		WHERE Src.lname = 'Smith' AND Dst.lname = 'Quinn'
		  AND PS.StartVertex.Id = Src.uid AND PS.EndVertex.Id = Dst.uid
		LIMIT 1`)
	if len(r.Rows) != 1 {
		t.Fatalf("reachability rows: %v", render(r))
	}
	ps := r.Rows[0][0].S
	if !strings.HasPrefix(ps, "1-[") || !strings.HasSuffix(ps, "->5") {
		t.Fatalf("path string: %q", ps)
	}
	// Unreachable under a constraining edge filter.
	r = mustExec(t, e, `
		SELECT PS.PathString
		FROM Users Src, Users Dst, SocialNetwork.Paths PS
		WHERE Src.lname = 'Smith' AND Dst.lname = 'Quinn'
		  AND PS.StartVertex.Id = Src.uid AND PS.EndVertex.Id = Dst.uid
		  AND PS.Edges[0..*].sdate < '2000-01-01'
		LIMIT 1`)
	if len(r.Rows) != 0 {
		t.Fatalf("filtered reachability must be empty: %v", render(r))
	}
}

// Listing 4 shape: triangle counting via cycle closure.
func TestTriangleCountListing4(t *testing.T) {
	e := socialEngine(t)
	// The social graph has exactly one triangle: 1-2-3-1. Undirected, so
	// starting from each of its 3 vertexes there are 2 orientations = 6
	// closed length-3 paths in per-path mode.
	r := mustExec(t, e, `
		SELECT COUNT(P) FROM SocialNetwork.Paths P
		WHERE P.Length = 3 AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`)
	if r.Rows[0][0].I != 6 {
		t.Fatalf("triangle closed paths = %v, want 6", render(r))
	}
}

// Listing 6 shape: TOP-k shortest paths with a weight hint.
func TestShortestPathListing6(t *testing.T) {
	e := New(Options{})
	mustScript(t, e, `
		CREATE TABLE Nodes (nid BIGINT PRIMARY KEY, addr VARCHAR);
		CREATE TABLE Roads (rid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, dist DOUBLE);
		INSERT INTO Nodes VALUES (1,'Address 1'),(2,'mid'),(3,'mid2'),(4,'Address 2');
		INSERT INTO Roads VALUES
			(1, 1, 2, 1.0), (2, 2, 4, 1.0),
			(3, 1, 3, 1.5), (4, 3, 4, 1.5),
			(5, 1, 4, 10.0);
		CREATE UNDIRECTED GRAPH VIEW RoadNetwork
			VERTEXES(ID = nid, Address = addr) FROM Nodes
			EDGES(ID = rid, FROM = a, TO = b, Distance = dist) FROM Roads;
	`)
	r := mustExec(t, e, `
		SELECT TOP 2 PS.PathString FROM RoadNetwork.Paths PS HINT(SHORTESTPATH(Distance)),
			RoadNetwork.Vertexes Src, RoadNetwork.Vertexes Dest
		WHERE PS.StartVertex.Id = Src.Id AND PS.EndVertex.Id = Dest.Id
		  AND Src.Address = 'Address 1' AND Dest.Address = 'Address 2'`)
	got := render(r)
	if len(got) != 2 {
		t.Fatalf("top-2 rows: %v", got)
	}
	if got[0][0] != "1-[1]->2-[2]->4" {
		t.Errorf("shortest = %q", got[0][0])
	}
	if got[1][0] != "1-[3]->3-[4]->4" {
		t.Errorf("second = %q", got[1][0])
	}
}

func TestPathAggregatePredicate(t *testing.T) {
	e := New(Options{})
	mustScript(t, e, `
		CREATE TABLE N (nid BIGINT PRIMARY KEY);
		CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, cost BIGINT);
		INSERT INTO N VALUES (1),(2),(3),(4);
		INSERT INTO E VALUES (1,1,2,5),(2,2,3,5),(3,3,4,5);
		CREATE DIRECTED GRAPH VIEW G
			VERTEXES(ID = nid) FROM N
			EDGES(ID = eid, FROM = a, TO = b, Cost = cost) FROM E;
	`)
	// SUM(cost) < 11 admits paths of 1 or 2 edges (5, 10) but not 3 (15).
	r := mustExec(t, e, `
		SELECT PS.PathString, SUM(PS.Edges.Cost) FROM G.Paths PS
		WHERE PS.StartVertex.Id = 1 AND SUM(PS.Edges.Cost) < 11
		ORDER BY PS.Length`)
	got := render(r)
	if len(got) != 2 || got[0][1] != "5" || got[1][1] != "10" {
		t.Fatalf("agg-bound paths: %v", got)
	}
}

func TestPathsFromAllVertexes(t *testing.T) {
	e := socialEngine(t)
	// No start binding: traversal starts from every vertex (§5.1.2).
	r := mustExec(t, e, `SELECT COUNT(P) FROM SocialNetwork.Paths P WHERE P.Length = 1`)
	if r.Rows[0][0].I <= 0 {
		t.Fatalf("no length-1 paths: %v", render(r))
	}
}

func TestGraphDataUpdateVisibleWithoutRebuild(t *testing.T) {
	e := socialEngine(t)
	// Attribute updates flow through tuple pointers (§3.3.1): no view DDL.
	mustExec(t, e, `UPDATE Users SET lname = 'Smythe' WHERE uid = 1`)
	r := mustExec(t, e, `SELECT VS.lstname FROM SocialNetwork.Vertexes VS WHERE VS.ID = 1`)
	if r.Rows[0][0].S != "Smythe" {
		t.Fatalf("stale attribute: %v", render(r))
	}
}

func TestTopologyInsertDelete(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `INSERT INTO Users VALUES (6, 'New', '2000', 'None')`)
	mustExec(t, e, `INSERT INTO Relationships VALUES (15, 5, 6, '2020-01-01', false)`)
	r := mustExec(t, e, `
		SELECT PS.PathString FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 6 LIMIT 1`)
	if len(r.Rows) != 1 {
		t.Fatalf("new vertex unreachable: %v", render(r))
	}
	mustExec(t, e, `DELETE FROM Relationships WHERE relid = 15`)
	r = mustExec(t, e, `
		SELECT PS.PathString FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 6 LIMIT 1`)
	if len(r.Rows) != 0 {
		t.Fatalf("deleted edge still traversable: %v", render(r))
	}
}

func TestVertexDeleteCascadesEdgeTuples(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `DELETE FROM Users WHERE uid = 3`)
	if r.Affected != 1 {
		t.Fatalf("affected: %d", r.Affected)
	}
	// Vertex 3 had edges 11, 12, 14; their tuples must be gone too.
	q := mustExec(t, e, `SELECT COUNT(*) FROM Relationships`)
	if q.Rows[0][0].I != 2 {
		t.Fatalf("edge tuples after cascade: %v", render(q))
	}
	q = mustExec(t, e, `SELECT COUNT(*) FROM SocialNetwork.Vertexes VS`)
	if q.Rows[0][0].I != 4 {
		t.Fatalf("vertices after cascade: %v", render(q))
	}
}

func TestVertexIDUpdateKeepsReferentialIntegrity(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `UPDATE Users SET uid = 100 WHERE uid = 1`)
	// Edge tuples referencing 1 must now reference 100 (§3.3.1).
	r := mustExec(t, e, `SELECT COUNT(*) FROM Relationships WHERE uid1 = 100 OR uid2 = 100`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("edges referencing renamed vertex: %v", render(r))
	}
	// Traversal from the renamed vertex still works.
	r = mustExec(t, e, `
		SELECT PS.PathString FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 100 AND PS.EndVertex.Id = 5 LIMIT 1`)
	if len(r.Rows) != 1 {
		t.Fatalf("renamed vertex unreachable: %v", render(r))
	}
}

func TestMultiRowInsertAtomicity(t *testing.T) {
	e := socialEngine(t)
	// Second row violates the primary key; the first must be rolled back.
	_, err := e.Execute(`INSERT INTO Users VALUES (7, 'A', '1', 'x'), (1, 'B', '2', 'y')`)
	if err == nil {
		t.Fatal("pk violation accepted")
	}
	r := mustExec(t, e, `SELECT COUNT(*) FROM Users WHERE uid = 7`)
	if r.Rows[0][0].I != 0 {
		t.Fatal("partial insert not rolled back")
	}
	// Graph view must not have gained a vertex either.
	r = mustExec(t, e, `SELECT COUNT(*) FROM SocialNetwork.Vertexes VS`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("vertex count after rollback: %v", render(r))
	}
}

func TestDanglingEdgeInsertRejectedAtomically(t *testing.T) {
	e := socialEngine(t)
	_, err := e.Execute(`INSERT INTO Relationships VALUES (20, 1, 2, 'd', false), (21, 1, 999, 'd', false)`)
	if err == nil {
		t.Fatal("dangling edge accepted")
	}
	r := mustExec(t, e, `SELECT COUNT(*) FROM Relationships WHERE relid IN (20, 21)`)
	if r.Rows[0][0].I != 0 {
		t.Fatal("partial edge insert not rolled back")
	}
	r = mustExec(t, e, `SELECT COUNT(*) FROM SocialNetwork.Edges ES`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("edge count after rollback: %v", render(r))
	}
}

func TestMemLimitAborts(t *testing.T) {
	e := New(Options{MemLimit: 256})
	mustScript(t, e, `
		CREATE TABLE T (a BIGINT PRIMARY KEY, pad VARCHAR);
		INSERT INTO T VALUES (1,'xxxxxxxxxxxxxxxxxxxxxxxx'),(2,'yyyyyyyyyyyyyyyyyyyyyyyy'),(3,'zzzzzzzzzzzzzzzzzzzzzzzz');
	`)
	_, err := e.Execute(`SELECT COUNT(*) FROM T T1, T T2`)
	if err == nil || !strings.Contains(err.Error(), "memory limit") {
		t.Fatalf("expected memory-limit abort, got %v", err)
	}
}

func TestDDLErrorsAndShow(t *testing.T) {
	e := socialEngine(t)
	if _, err := e.Execute(`CREATE TABLE Users (x BIGINT)`); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := e.Execute(`DROP TABLE Users`); err == nil {
		t.Error("drop of graph-view source accepted")
	}
	if _, err := e.Execute(`TRUNCATE TABLE Relationships`); err == nil {
		t.Error("truncate of graph-view source accepted")
	}
	mustExec(t, e, `DROP GRAPH VIEW SocialNetwork`)
	mustExec(t, e, `TRUNCATE TABLE Relationships`)
	mustExec(t, e, `DROP TABLE Relationships`)
	r := mustExec(t, e, `SHOW TABLES`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "Users" {
		t.Fatalf("show tables: %v", render(r))
	}
	r = mustExec(t, e, `SHOW GRAPH VIEWS`)
	if len(r.Rows) != 0 {
		t.Fatalf("show views: %v", render(r))
	}
}

func TestExplainShowsCrossModelPlan(t *testing.T) {
	e := socialEngine(t)
	planText, err := e.Explain(`
		SELECT PS.EndVertex.lstname FROM Users U, SocialNetwork.Paths PS
		WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PathScan", "SeqScan", "len=[2,2]"} {
		if !strings.Contains(planText, want) {
			t.Errorf("plan missing %q:\n%s", want, planText)
		}
	}
}

func TestPushdownToggle(t *testing.T) {
	e := socialEngine(t)
	q := `SELECT COUNT(P) FROM SocialNetwork.Paths P
		WHERE P.StartVertex.Id = 1 AND P.Length = 2 AND P.Edges[0..*].sdate > '2000-01-01'`
	withPush := mustExec(t, e, q).Rows[0][0].I
	e.SetPlanOptions(plan.Options{DisablePushdown: true})
	withoutPush := mustExec(t, e, q).Rows[0][0].I
	if withPush != withoutPush {
		t.Fatalf("pushdown changed results: %d vs %d", withPush, withoutPush)
	}
}

func TestTraversalHintsExecute(t *testing.T) {
	e := socialEngine(t)
	for _, hint := range []string{"HINT(DFS)", "HINT(BFS)"} {
		r := mustExec(t, e, `SELECT COUNT(P) FROM SocialNetwork.Paths P `+hint+`
			WHERE P.StartVertex.Id = 1 AND P.Length = 2`)
		if r.Rows[0][0].I <= 0 {
			t.Fatalf("%s: no paths", hint)
		}
	}
	// DFS and BFS must agree on the number of simple paths when both
	// enumerate ALL simple paths (visit-once tree shapes may differ).
	var counts []int64
	for _, hint := range []string{"HINT(DFS, ALLPATHS)", "HINT(BFS, ALLPATHS)"} {
		r := mustExec(t, e, `SELECT COUNT(P) FROM SocialNetwork.Paths P `+hint+`, Users U
			WHERE P.StartVertex.Id = U.uid AND P.Length = 2`)
		counts = append(counts, r.Rows[0][0].I)
	}
	if counts[0] != counts[1] {
		t.Fatalf("DFS/BFS disagree: %v", counts)
	}
}

func TestSelectBarePathValue(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `SELECT PS FROM SocialNetwork.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length = 1 ORDER BY PS.PathString`)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if r.Rows[0][0].Kind != types.KindPath {
		t.Fatalf("kind: %v", r.Rows[0][0].Kind)
	}
	if !strings.Contains(r.Rows[0][0].String(), "->") {
		t.Fatalf("path rendering: %q", r.Rows[0][0].String())
	}
}

func TestVertexFanPropertiesInPaths(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `
		SELECT PS.EndVertex.fanout FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 2 AND PS.Length = 1`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 2 {
		t.Fatalf("fanout through path: %v", render(r))
	}
}

func TestUnknownEntitiesError(t *testing.T) {
	e := socialEngine(t)
	for _, q := range []string{
		`SELECT * FROM Ghost`,
		`SELECT * FROM Ghost.Paths P`,
		`SELECT ghostcol FROM Users`,
		`SELECT P.Edges[0..*].nosuch FROM SocialNetwork.Paths P`,
		`INSERT INTO Ghost VALUES (1)`,
		`UPDATE Ghost SET a = 1`,
		`DELETE FROM Ghost`,
		`SELECT TOP 1 PS FROM SocialNetwork.Paths PS HINT(SHORTESTPATH(nosuch))`,
	} {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("accepted: %q", q)
		}
	}
}

func TestLazyLimitStopsTraversal(t *testing.T) {
	// A long chain: LIMIT 1 reachability must not enumerate all paths.
	e := New(Options{})
	mustScript(t, e, `
		CREATE TABLE N (nid BIGINT PRIMARY KEY);
		CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT);
	`)
	var nodes, edges strings.Builder
	nodes.WriteString("INSERT INTO N VALUES (0)")
	edges.WriteString("INSERT INTO E VALUES (0, 0, 1)")
	for i := 1; i <= 200; i++ {
		nodes.WriteString(strings.ReplaceAll(", (X)", "X", itoa(i)))
		if i < 200 {
			edges.WriteString(", (" + itoa(i) + ", " + itoa(i) + ", " + itoa(i+1) + ")")
		}
	}
	mustExec(t, e, nodes.String())
	mustExec(t, e, edges.String())
	mustExec(t, e, `CREATE DIRECTED GRAPH VIEW G VERTEXES(ID=nid) FROM N EDGES(ID=eid, FROM=a, TO=b) FROM E`)
	r := mustExec(t, e, `
		SELECT PS.PathString FROM G.Paths PS
		WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 5 LIMIT 1`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows: %v", render(r))
	}
}

func itoa(i int) string {
	return types.NewInt(int64(i)).String()
}

// §4: "GRFusion allows self-joins of the paths of a given graph view" —
// a second path variable whose start binds to the first's end composes
// two traversals in one QEP.
func TestPathSelfJoin(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `
		SELECT P1.PathString, P2.PathString
		FROM SocialNetwork.Paths P1, SocialNetwork.Paths P2
		WHERE P1.StartVertex.Id = 1 AND P1.Length = 1
		  AND P2.StartVertex.Id = P1.EndVertexId AND P2.Length = 1
		ORDER BY P1.PathString, P2.PathString`)
	if len(r.Rows) == 0 {
		t.Fatal("no composed paths")
	}
	for _, row := range r.Rows {
		p1, p2 := row[0].S, row[1].S
		// P2 must start where P1 ends.
		endOfP1 := p1[strings.LastIndex(p1, ">")+1:]
		if !strings.HasPrefix(p2, endOfP1+"-") && !strings.HasPrefix(p2, endOfP1) {
			t.Errorf("composition broken: %q then %q", p1, p2)
		}
	}
}

// §5.3: relational items are joined first regardless of their position in
// the FROM clause; a PATHS item listed first still gets probed by the
// relational side.
func TestFromOrderIndependence(t *testing.T) {
	e := socialEngine(t)
	q1 := `SELECT COUNT(*) FROM Users U, SocialNetwork.Paths PS
		WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`
	q2 := `SELECT COUNT(*) FROM SocialNetwork.Paths PS, Users U
		WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`
	a := mustExec(t, e, q1).Rows[0][0].I
	b := mustExec(t, e, q2).Rows[0][0].I
	if a != b || a == 0 {
		t.Fatalf("FROM order changed results: %d vs %d", a, b)
	}
}

// Two graph views in one query (paths from different graphs).
func TestTwoGraphViewsInOneQuery(t *testing.T) {
	e := socialEngine(t)
	mustScript(t, e, `
		CREATE TABLE Cities (cid BIGINT PRIMARY KEY, cname VARCHAR);
		CREATE TABLE Roads (rid BIGINT PRIMARY KEY, a BIGINT, b BIGINT);
		INSERT INTO Cities VALUES (1,'x'),(2,'y'),(3,'z');
		INSERT INTO Roads VALUES (1,1,2),(2,2,3);
		CREATE DIRECTED GRAPH VIEW RoadNet
			VERTEXES(ID = cid, cname = cname) FROM Cities
			EDGES(ID = rid, FROM = a, TO = b) FROM Roads;
	`)
	r := mustExec(t, e, `
		SELECT SP.PathString, RP.PathString
		FROM SocialNetwork.Paths SP, RoadNet.Paths RP
		WHERE SP.StartVertex.Id = 1 AND SP.Length = 1
		  AND RP.StartVertex.Id = 1 AND RP.Length = 2`)
	if len(r.Rows) == 0 {
		t.Fatal("cross-graph query returned nothing")
	}
	for _, row := range r.Rows {
		if !strings.Contains(row[1].S, "->3") {
			t.Errorf("road path wrong: %q", row[1].S)
		}
	}
}

func TestFromLessSelect(t *testing.T) {
	e := New(Options{})
	r := mustExec(t, e, `SELECT 1 + 1 AS two, UPPER('ok')`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 2 || r.Rows[0][1].S != "OK" {
		t.Fatalf("constant select: %v", render(r))
	}
	if r.Columns[0] != "two" {
		t.Errorf("columns: %v", r.Columns)
	}
	// A constant WHERE gates the singleton row.
	r = mustExec(t, e, `SELECT 1 WHERE 1 = 2`)
	if len(r.Rows) != 0 {
		t.Fatalf("gated constant select: %v", render(r))
	}
	// Star without FROM is an error.
	if _, err := e.Execute(`SELECT *`); err == nil {
		t.Error("star without FROM accepted")
	}
}

func TestUpdateWithRowExpression(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `UPDATE Users SET dob = UPPER(lname) WHERE uid <= 2`)
	r := mustExec(t, e, `SELECT dob FROM Users WHERE uid = 1`)
	if r.Rows[0][0].S != "SMITH" {
		t.Fatalf("row-expression update: %v", render(r))
	}
	// Arithmetic self-reference.
	mustScript(t, e, `
		CREATE TABLE Cnt (id BIGINT PRIMARY KEY, n BIGINT);
		INSERT INTO Cnt VALUES (1, 10);
		UPDATE Cnt SET n = n + 5 WHERE id = 1;
	`)
	v, _ := e.Execute(`SELECT n FROM Cnt`)
	if v.Rows[0][0].I != 15 {
		t.Fatalf("self-referencing update: %v", render(v))
	}
}

func TestDistinctOverPaths(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `
		SELECT DISTINCT PS.EndVertex.lstname FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.Length = 1`)
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if seen[row[0].S] {
			t.Fatalf("duplicate after DISTINCT: %v", render(r))
		}
		seen[row[0].S] = true
	}
}

func TestVertexPropertyFilterPushed(t *testing.T) {
	e := socialEngine(t)
	// FanOut is a computed property: the pushed vertex filter must take
	// the accessor path (no source column).
	r := mustExec(t, e, `
		SELECT COUNT(*) FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.Length = 1 AND PS.Vertexes[0..*].fanout >= 1`)
	if r.Rows[0][0].I <= 0 {
		t.Fatalf("fanout-filtered paths: %v", render(r))
	}
}

func TestOrderByUnprojectedColumn(t *testing.T) {
	e := socialEngine(t)
	// dob is not projected; the sort binds below the projection.
	r := mustExec(t, e, `SELECT lname FROM Users ORDER BY dob DESC LIMIT 2`)
	if len(r.Rows) != 2 || r.Rows[0][0].S != "Parker" || r.Rows[1][0].S != "Patrick" {
		t.Fatalf("unprojected order: %v", render(r))
	}
	// Aliased aggregate ordering (above the projection).
	r = mustExec(t, e, `SELECT job, COUNT(*) AS n FROM Users GROUP BY job ORDER BY n, job LIMIT 1`)
	if r.Rows[0][0].S != "Engineer" {
		t.Fatalf("agg order: %v", render(r))
	}
	// Ordering by an aggregate not in the select list resolves by text.
	r = mustExec(t, e, `SELECT job, COUNT(*) FROM Users GROUP BY job ORDER BY COUNT(*) DESC, job LIMIT 1`)
	if r.Rows[0][0].S != "Doctor" {
		t.Fatalf("agg-by-text order: %v", render(r))
	}
}

func TestOrderByPathString(t *testing.T) {
	e := socialEngine(t)
	r := mustExec(t, e, `
		SELECT PS.PathString FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.Length = 1
		ORDER BY PS.PathString DESC`)
	if len(r.Rows) < 2 {
		t.Fatal("need >=2 paths")
	}
	if r.Rows[0][0].S < r.Rows[1][0].S {
		t.Fatalf("descending order broken: %v", render(r))
	}
}

func TestLikePredicatePushedIntoTraversal(t *testing.T) {
	e := socialEngine(t)
	// LIKE on a path range is a pushable comparison (OpLike).
	r := mustExec(t, e, `
		SELECT COUNT(*) FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.Length = 1 AND PS.Edges[0..*].sdate LIKE '200%'`)
	if r.Rows[0][0].I != 2 { // edges 10 (2001) and 14 (2004)
		t.Fatalf("LIKE-filtered paths: %v", render(r))
	}
	planText, err := e.Explain(`
		SELECT COUNT(*) FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.Length = 1 AND PS.Edges[0..*].sdate LIKE '200%'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText, "pushed=1") {
		t.Errorf("LIKE not pushed:\n%s", planText)
	}
}
