package core

import (
	"time"
)

// Statistics maintenance (§6.3): "GRFusion has a configuration to store
// the average fan-out of graph views as a statistics object. If this
// configuration is enabled, GRFusion runs a thread in the backend to
// compute the average fan-out using the compact graph-view structures."
//
// StartStatistics launches that backend refresher; the optimizer picks up
// each view's published GraphStats when choosing physical traversal
// operators. Refreshes run under the engine's serialization lock, like
// any other catalog reader.

// RefreshStatistics recomputes and publishes the statistics object of
// every graph view once, synchronously.
func (e *Engine) RefreshStatistics() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshStatsLocked()
}

func (e *Engine) refreshStatsLocked() {
	now := time.Now()
	for _, name := range e.cat.GraphViews() {
		gv, ok := e.cat.GraphView(name)
		if !ok {
			continue
		}
		gv.SetStats(gv.ComputeStats(now))
	}
}

// StartStatistics enables the backend statistics thread with the given
// refresh interval. It refreshes once immediately. Calling it again
// restarts the thread with the new interval. Stop with Close.
func (e *Engine) StartStatistics(interval time.Duration) {
	if interval <= 0 {
		return
	}
	e.RefreshStatistics()
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stopStatsLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	e.statsStop = stop
	e.statsDone = done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				e.RefreshStatistics()
			}
		}
	}()
}

// Close stops background work (the statistics thread). The engine remains
// usable for statements afterwards.
func (e *Engine) Close() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stopStatsLocked()
}

func (e *Engine) stopStatsLocked() {
	if e.statsStop != nil {
		close(e.statsStop)
		<-e.statsDone
		e.statsStop = nil
		e.statsDone = nil
	}
}
