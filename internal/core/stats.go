package core

import (
	"log"
	"time"
)

// Statistics maintenance (§6.3): "GRFusion has a configuration to store
// the average fan-out of graph views as a statistics object. If this
// configuration is enabled, GRFusion runs a thread in the backend to
// compute the average fan-out using the compact graph-view structures."
//
// StartStatistics launches that backend refresher; the optimizer picks up
// each view's published GraphStats when choosing physical traversal
// operators.
//
// Concurrency audit (the refresher is the one long-lived goroutine that
// touches engine state): a refresh only *reads* catalog and topology —
// ComputeStats walks the graph, and publication goes through
// GraphView.SetStats, an atomic-pointer store that racing readers observe
// via the matching atomic load in GraphView.Stats. It therefore runs under
// the engine's *shared* lock, concurrent with queries, and never blocks
// them; DML/DDL (which do mutate the topology the walk reads) are excluded
// by the write lock. The statsMu below guards only the refresher's own
// lifecycle fields (statsStop/statsDone) — every Start/Close path takes it
// before touching them.

// RefreshStatistics recomputes and publishes the statistics object of
// every graph view once, synchronously.
func (e *Engine) RefreshStatistics() {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.refreshStatsLocked()
}

func (e *Engine) refreshStatsLocked() {
	now := time.Now()
	for _, name := range e.cat.GraphViews() {
		gv, ok := e.cat.GraphView(name)
		if !ok {
			continue
		}
		gv.SetStats(gv.ComputeStats(now))
		e.metrics.StatsRefreshes.Inc()
	}
}

// StartStatistics enables the backend statistics thread with the given
// refresh interval. It refreshes once immediately. Calling it again
// restarts the thread with the new interval. Stop with Close.
func (e *Engine) StartStatistics(interval time.Duration) {
	if interval <= 0 {
		return
	}
	e.RefreshStatistics()
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stopStatsLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	e.statsStop = stop
	e.statsDone = done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				e.RefreshStatistics()
			}
		}
	}()
}

// Close stops background work (the statistics thread) and, on a durable
// engine, syncs and closes the WAL without a final checkpoint (use
// Shutdown for checkpoint-on-exit). A non-durable engine remains usable
// for statements afterwards; a durable one keeps serving reads but
// rejects further mutations.
func (e *Engine) Close() {
	e.stopHealer()
	e.statsMu.Lock()
	e.stopStatsLocked()
	e.statsMu.Unlock()
	e.mu.Lock()
	lg := e.dur.log
	e.mu.Unlock()
	if lg != nil {
		if err := lg.Close(); err != nil {
			log.Printf("core: close wal: %v", err)
		}
	}
}

func (e *Engine) stopStatsLocked() {
	if e.statsStop != nil {
		close(e.statsStop)
		<-e.statsDone
		e.statsStop = nil
		e.statsDone = nil
	}
}
