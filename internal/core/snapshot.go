package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"grfusion/internal/catalog"
	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Snapshots serialize a whole database (schema, data, indexes, graph-view
// definitions) with encoding/gob, giving GRFusion the same
// snapshot-and-rebuild durability story as an in-memory store like VoltDB.
// Graph-view topologies are not serialized: they are derived state and are
// rebuilt from the relational sources on restore (§3.2).

type snapCol struct {
	Name string
	Type uint8
}

type snapValue struct {
	Kind uint8
	B    bool
	I    int64
	F    float64
	S    string
}

type snapTable struct {
	Name    string
	Cols    []snapCol
	PK      []int
	Rows    [][]snapValue
	Indexes []storage.IndexInfo
	// IDs[i] is the slot (RowID) of Rows[i], and Free is the LIFO free
	// list, so restore reproduces the exact slot image: RowIDs are the
	// tuple pointers graph views hold, and WAL replay pins the allocator
	// state, so a checkpoint must not compact or reorder slots (v2).
	IDs  []uint64
	Free []uint64
}

type snapAttr struct {
	Name   string
	Source string
}

type snapView struct {
	Name         string
	Directed     bool
	VertexSource string
	EdgeSource   string
	VertexAttrs  []snapAttr
	EdgeAttrs    []snapAttr
}

type snapDB struct {
	Version int
	Tables  []snapTable
	// MatViews holds the defining statements of materialized views; they
	// are re-executed on restore (after tables, before graph views) and
	// rebuild their contents from the restored bases.
	MatViews []string
	Views    []snapView
	// LSN is the WAL position this snapshot covers: recovery skips log
	// records at or below it. Zero for plain (non-checkpoint) snapshots.
	// gob ignores unknown fields, so snapshots written before this field
	// existed decode with LSN 0.
	LSN uint64
}

// snapshotVersion 2 added slot-exact table images (snapTable.IDs/Free).
// Version-1 snapshots (dense rows, no slot info) still restore, with
// freshly compacted slots — fine for \save/\load archives, but checkpoints
// are always written as v2 so recovery preserves tuple pointers.
const snapshotVersion = 2

// Snapshot writes a consistent image of the database to w. It is a pure
// read: it holds the shared lock, so queries keep running while the image
// is written and only writers are held off.
func (e *Engine) Snapshot(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var lsn uint64
	if e.dur.log != nil {
		lsn = e.dur.log.LastLSN()
	}
	return e.encodeSnapshotLocked(w, lsn)
}

// encodeSnapshotLocked serializes the database under either lock side.
// lsn is embedded so checkpoint recovery knows which WAL records the
// image already contains.
func (e *Engine) encodeSnapshotLocked(w io.Writer, lsn uint64) error {
	db := snapDB{Version: snapshotVersion, LSN: lsn}
	for _, name := range e.cat.Tables() {
		if e.cat.IsMatViewTable(name) {
			continue // derived state: rebuilt by re-running the definition
		}
		t, _ := e.cat.Table(name)
		st := snapTable{Name: t.Name(), PK: t.PrimaryKeyColumns(), Indexes: t.Indexes()}
		for _, c := range t.Schema().Columns {
			st.Cols = append(st.Cols, snapCol{Name: c.Name, Type: uint8(c.Type)})
		}
		t.Scan(func(id storage.RowID, row types.Row) bool {
			sr := make([]snapValue, len(row))
			for i, v := range row {
				sr[i] = snapValue{Kind: uint8(v.Kind), B: v.B, I: v.I, F: v.F, S: v.S}
			}
			st.Rows = append(st.Rows, sr)
			st.IDs = append(st.IDs, uint64(id))
			return true
		})
		for _, id := range t.FreeList() {
			st.Free = append(st.Free, uint64(id))
		}
		db.Tables = append(db.Tables, st)
	}
	for _, name := range e.cat.MatViews() {
		mv, _ := e.cat.MatView(name)
		db.MatViews = append(db.MatViews, mv.CreateSQL)
	}
	for _, name := range e.cat.GraphViews() {
		gv, _ := e.cat.GraphView(name)
		sv := snapView{Name: gv.Name, Directed: gv.Directed,
			VertexSource: gv.VertexSource, EdgeSource: gv.EdgeSource}
		for _, a := range gv.VertexAttrs {
			sv.VertexAttrs = append(sv.VertexAttrs, snapAttr{Name: a.Name, Source: a.Source})
		}
		for _, a := range gv.EdgeAttrs {
			sv.EdgeAttrs = append(sv.EdgeAttrs, snapAttr{Name: a.Name, Source: a.Source})
		}
		db.Views = append(db.Views, sv)
	}
	return gob.NewEncoder(w).Encode(&db)
}

// Restore loads a snapshot into an empty engine, rebuilding indexes and
// graph-view topologies.
func (e *Engine) Restore(r io.Reader) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.restoreLocked(r)
	if err == nil {
		e.publishLocked()
	}
	return err
}

// restoreLocked loads a snapshot under the write lock, returning the WAL
// position it covers (recovery replays only records past it).
func (e *Engine) restoreLocked(r io.Reader) (uint64, error) {
	if len(e.cat.Tables()) > 0 || len(e.cat.GraphViews()) > 0 {
		return 0, fmt.Errorf("restore requires an empty engine")
	}
	var db snapDB
	if err := gob.NewDecoder(r).Decode(&db); err != nil {
		return 0, fmt.Errorf("decode snapshot: %v", err)
	}
	if db.Version < 1 || db.Version > snapshotVersion {
		return 0, fmt.Errorf("unsupported snapshot version %d", db.Version)
	}
	for _, st := range db.Tables {
		cols := make([]types.Column, len(st.Cols))
		for i, c := range st.Cols {
			cols[i] = types.Column{Qualifier: st.Name, Name: c.Name, Type: types.Kind(c.Type)}
		}
		t, err := storage.NewTable(st.Name, types.NewSchema(cols...), st.PK)
		if err != nil {
			return 0, err
		}
		if err := restoreRows(t, &st, db.Version); err != nil {
			return 0, err
		}
		for _, ix := range st.Indexes {
			if _, err := t.CreateIndex(ix.Name, ix.Cols, ix.Ordered); err != nil {
				return 0, fmt.Errorf("restore index %s: %v", ix.Name, err)
			}
		}
		if err := e.cat.CreateTable(t); err != nil {
			return 0, err
		}
	}
	// Materialized views may depend on each other; retry until a full pass
	// makes no progress (then the snapshot is inconsistent).
	pending := append([]string(nil), db.MatViews...)
	for len(pending) > 0 {
		var next []string
		for _, def := range pending {
			stmt, err := sql.Parse(def)
			if err != nil {
				return 0, fmt.Errorf("restore materialized view: %v", err)
			}
			if _, err := e.createMatView(stmt.(*sql.CreateMatView)); err != nil {
				next = append(next, def)
			}
		}
		if len(next) == len(pending) {
			stmt, _ := sql.Parse(next[0])
			_, err := e.createMatView(stmt.(*sql.CreateMatView))
			return 0, fmt.Errorf("restore materialized view: %v", err)
		}
		pending = next
	}
	for _, sv := range db.Views {
		vtab, ok := e.cat.Table(sv.VertexSource)
		if !ok {
			return 0, fmt.Errorf("restore view %s: missing source %s", sv.Name, sv.VertexSource)
		}
		etab, ok := e.cat.Table(sv.EdgeSource)
		if !ok {
			return 0, fmt.Errorf("restore view %s: missing source %s", sv.Name, sv.EdgeSource)
		}
		toAttrs := func(as []snapAttr) []catalog.AttrMap {
			out := make([]catalog.AttrMap, len(as))
			for i, a := range as {
				out[i] = catalog.AttrMap{Name: a.Name, Source: a.Source}
			}
			return out
		}
		gv, err := catalog.NewGraphView(sv.Name, sv.Directed, vtab, etab,
			toAttrs(sv.VertexAttrs), toAttrs(sv.EdgeAttrs))
		if err != nil {
			return 0, fmt.Errorf("restore view %s: %v", sv.Name, err)
		}
		if err := e.cat.RegisterGraphView(gv); err != nil {
			return 0, err
		}
	}
	return db.LSN, nil
}

// restoreRows loads one table's rows. Version-2 snapshots carry the exact
// slot image (per-row RowIDs plus the free list) and must reproduce it;
// version-1 snapshots predate slot info and are restored densely.
func restoreRows(t *storage.Table, st *snapTable, version int) error {
	decode := func(sr []snapValue) types.Row {
		row := make(types.Row, len(sr))
		for i, v := range sr {
			row[i] = types.Value{Kind: types.Kind(v.Kind), B: v.B, I: v.I, F: v.F, S: v.S}
		}
		return row
	}
	if version < 2 {
		for _, sr := range st.Rows {
			if _, err := t.Insert(decode(sr)); err != nil {
				return fmt.Errorf("restore table %s: %v", st.Name, err)
			}
		}
		return nil
	}
	if len(st.IDs) != len(st.Rows) {
		return fmt.Errorf("restore table %s: %d slot ids for %d rows", st.Name, len(st.IDs), len(st.Rows))
	}
	size := len(st.Rows) + len(st.Free)
	image := make([]types.Row, size)
	for i, sr := range st.Rows {
		id := st.IDs[i]
		if id < 1 || id > uint64(size) || image[id-1] != nil {
			return fmt.Errorf("restore table %s: bad slot %d for row %d", st.Name, id, i)
		}
		image[id-1] = decode(sr)
	}
	free := make([]storage.RowID, len(st.Free))
	for i, id := range st.Free {
		free[i] = storage.RowID(id)
	}
	if err := t.RestoreSlots(image, free); err != nil {
		return fmt.Errorf("restore table %s: %v", st.Name, err)
	}
	return nil
}
