package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"grfusion/internal/exec"
	"grfusion/internal/types"
)

// cyclicEngine builds an engine holding a complete digraph on n vertices:
// ALLPATHS enumeration over it is factorial, the canonical runaway query
// the lifecycle machinery must be able to stop.
func cyclicEngine(t *testing.T, n int, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	mustExec(t, e, `CREATE TABLE V (vid BIGINT PRIMARY KEY)`)
	mustExec(t, e, `CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`)
	for i := 1; i <= n; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO V VALUES (%d)`, i))
	}
	eid := 0
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			if a == b {
				continue
			}
			eid++
			mustExec(t, e, fmt.Sprintf(`INSERT INTO E VALUES (%d, %d, %d)`, eid, a, b))
		}
	}
	mustExec(t, e, `CREATE DIRECTED GRAPH VIEW K
		VERTEXES(ID = vid) FROM V
		EDGES(ID = eid, FROM = a, TO = b) FROM E`)
	return e
}

// runawayQuery enumerates all simple paths of the cyclic graph.
const runawayQuery = `SELECT COUNT(*) FROM K.Paths PS HINT(DFS, ALLPATHS) WHERE PS.StartVertex.Id = 1`

func TestDeadlineAbortsCyclicPathsQuery(t *testing.T) {
	e := cyclicEngine(t, 10, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.ExecuteContext(ctx, runawayQuery)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("query ran %v past a 50ms deadline", elapsed)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The engine is fully usable afterwards.
	r := mustExec(t, e, `SELECT COUNT(*) FROM V`)
	if r.Rows[0][0].I != 10 {
		t.Fatalf("engine unhealthy after timeout: %v", r.Rows[0])
	}
}

func TestSetQueryTimeoutStatement(t *testing.T) {
	e := cyclicEngine(t, 10, Options{})
	mustExec(t, e, `SET QUERY_TIMEOUT = 50`)
	if got := e.QueryTimeout(); got != 50*time.Millisecond {
		t.Fatalf("QueryTimeout = %v", got)
	}
	_, err := e.Execute(runawayQuery)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Disable and verify a cheap statement is unaffected.
	mustExec(t, e, `SET QUERY_TIMEOUT = 0`)
	mustExec(t, e, `SELECT COUNT(*) FROM E`)

	if _, err := e.Execute(`SET QUERY_TIMEOUT = -5`); err == nil {
		t.Fatal("negative timeout accepted")
	}
	if _, err := e.Execute(`SET NO_SUCH_KNOB = 1`); err == nil || !strings.Contains(err.Error(), "QUERY_TIMEOUT") {
		t.Fatalf("unknown setting error should list supported names: %v", err)
	}
}

func TestEngineOptionTimeoutAppliesWithoutCallerContext(t *testing.T) {
	e := cyclicEngine(t, 10, Options{QueryTimeout: 50 * time.Millisecond})
	_, err := e.Execute(runawayQuery)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestExplicitCancellationIsTyped(t *testing.T) {
	e := cyclicEngine(t, 10, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := e.ExecuteContext(ctx, runawayQuery)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestCancelledContextSkipsWriteStatements(t *testing.T) {
	e := cyclicEngine(t, 4, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteContext(ctx, `INSERT INTO V VALUES (99)`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The insert must not have happened.
	r := mustExec(t, e, `SELECT COUNT(*) FROM V`)
	if r.Rows[0][0].I != 4 {
		t.Fatalf("cancelled write mutated state: %v", r.Rows[0])
	}
	// Scripts stop between statements.
	if _, err := e.ExecuteScriptContext(ctx, `SELECT COUNT(*) FROM V; SELECT COUNT(*) FROM E`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("script err = %v, want ErrCanceled", err)
	}
}

func TestPanicIsolationTypedError(t *testing.T) {
	e := New(Options{})
	mustExec(t, e, `CREATE TABLE Boom (a BIGINT)`)
	exec.DebugPanicTable = "Boom"
	defer func() { exec.DebugPanicTable = "" }()
	_, err := e.Execute(`SELECT * FROM Boom`)
	if !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("err = %v, want ErrQueryPanic", err)
	}
	// The statement lock was released and the engine keeps working.
	exec.DebugPanicTable = ""
	mustExec(t, e, `INSERT INTO Boom VALUES (1)`)
	r := mustExec(t, e, `SELECT COUNT(*) FROM Boom`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("engine unhealthy after panic: %v", r.Rows[0])
	}
}

func TestPreparedQueryContextHonorsDeadline(t *testing.T) {
	e := cyclicEngine(t, 10, Options{})
	p, err := e.Prepare(`SELECT COUNT(*) FROM K.Paths PS HINT(DFS, ALLPATHS) WHERE PS.StartVertex.Id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p.QueryContext(ctx, types.NewInt(1)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Cheap parameterization still works on the same Prepared afterwards.
	mustExecPrepared(t, p)
}

func mustExecPrepared(t *testing.T, p *Prepared) {
	t.Helper()
	// Start from a vertex that does not exist: zero paths, instant.
	r, err := p.Query(types.NewInt(10_000))
	if err != nil {
		t.Fatalf("prepared query after timeout: %v", err)
	}
	if r.Rows[0][0].I != 0 {
		t.Fatalf("unexpected paths: %v", r.Rows[0])
	}
}
