package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRefreshStatistics(t *testing.T) {
	e := socialEngine(t)
	gv, _ := e.Catalog().GraphView("SocialNetwork")
	if gv.Stats() != nil {
		t.Fatal("stats published before any refresh")
	}
	e.RefreshStatistics()
	st := gv.Stats()
	if st == nil {
		t.Fatal("stats not published")
	}
	if st.Vertices != 5 || st.Edges != 5 {
		t.Errorf("counts: %+v", st)
	}
	// Undirected: avg fan-out is 2|E|/|V| = 2.
	if st.AvgFanOut != 2 {
		t.Errorf("avg fan-out: %g", st.AvgFanOut)
	}
	// Vertex 3 touches edges 11, 12, 14 -> max degree 3.
	if st.MaxFanOut != 3 {
		t.Errorf("max fan-out: %d", st.MaxFanOut)
	}
	if st.UpdatedAt.IsZero() {
		t.Error("missing timestamp")
	}
}

func TestStatisticsThreadRefreshes(t *testing.T) {
	e := socialEngine(t)
	e.StartStatistics(2 * time.Millisecond)
	defer e.Close()
	gv, _ := e.Catalog().GraphView("SocialNetwork")
	if gv.Stats() == nil {
		t.Fatal("StartStatistics did not refresh immediately")
	}
	// Mutate the topology and wait for the backend thread to notice.
	mustExec(t, e, `DELETE FROM Relationships WHERE relid = 14`)
	deadline := time.After(2 * time.Second)
	for {
		if st := gv.Stats(); st != nil && st.Edges == 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("backend thread never refreshed")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// Close stops the thread; further mutations are no longer picked up.
	e.Close()
	mustExec(t, e, `DELETE FROM Relationships WHERE relid = 13`)
	time.Sleep(10 * time.Millisecond)
	if st := gv.Stats(); st.Edges != 4 {
		t.Errorf("refresher still running after Close: %+v", st)
	}
	// Close is idempotent.
	e.Close()
}

func TestStartStatisticsRestart(t *testing.T) {
	e := socialEngine(t)
	e.StartStatistics(time.Hour)
	e.StartStatistics(time.Hour) // restart must not leak or deadlock
	e.Close()
	// Zero interval is a no-op.
	e.StartStatistics(0)
	e.Close()
}

// TestStatsHammerDuringConcurrentReads is the -race regression test for
// the statistics refresher: a fast-ticking backend thread recomputes and
// publishes GraphStats (under the shared lock, via the atomic stats
// pointer) while reader goroutines plan and execute traversals that
// consult those statistics and a writer mutates the topology. Any missing
// synchronization between the refresher, the planner's Stats() reads, and
// graph-view maintenance surfaces here under -race.
func TestStatsHammerDuringConcurrentReads(t *testing.T) {
	e := socialEngine(t)
	e.StartStatistics(time.Millisecond)
	defer e.Close()

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Unbounded multi-source scan: the planner's physical
				// choice reads the published statistics object.
				if _, err := e.Execute(`SELECT PS FROM SocialNetwork.Paths PS WHERE PS.Length <= 2`); err != nil {
					errs <- err
					return
				}
				e.RefreshStatistics() // synchronous refresh racing the ticker
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			id := 900 + i
			if _, err := e.Execute(fmt.Sprintf(`INSERT INTO Relationships VALUES (%d, 1, 5, '2020-01-01', false)`, id)); err != nil {
				errs <- err
				return
			}
			if _, err := e.Execute(fmt.Sprintf(`DELETE FROM Relationships WHERE relid = %d`, id)); err != nil {
				errs <- err
				return
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
