package core

import (
	"bytes"
	"testing"

	"grfusion/internal/types"
)

func TestPrepareAndReuse(t *testing.T) {
	e := socialEngine(t)
	p, err := e.Prepare(`SELECT lname FROM Users WHERE uid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 1 || len(p.Columns()) != 1 || p.Columns()[0] != "lname" {
		t.Fatalf("meta: %d params, cols %v", p.NumParams(), p.Columns())
	}
	for uid, want := range map[int64]string{1: "Smith", 2: "Jones", 5: "Quinn"} {
		r, err := p.Query(types.NewInt(uid))
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 1 || r.Rows[0][0].S != want {
			t.Errorf("uid %d: %v", uid, render(r))
		}
	}
	if _, err := p.Query(); err == nil {
		t.Error("missing params accepted")
	}
	if _, err := p.Query(types.NewInt(1), types.NewInt(2)); err == nil {
		t.Error("extra params accepted")
	}
}

func TestPreparePathQueryWithParams(t *testing.T) {
	e := socialEngine(t)
	p, err := e.Prepare(`
		SELECT PS.PathString FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ?
		  AND PS.Edges[0..*].sdate > ?
		LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 3 {
		t.Fatalf("params: %d", p.NumParams())
	}
	r, err := p.Query(types.NewInt(1), types.NewInt(5), types.NewString("1990"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("reachability: %v", render(r))
	}
	// Restrictive date parameter breaks the path (edge 12 is from 1999).
	r, err = p.Query(types.NewInt(1), types.NewInt(5), types.NewString("2002-06-01"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 {
		t.Fatalf("filtered reachability should be empty: %v", render(r))
	}
	// Parameterized start that does not exist: no rows, no error.
	r, err = p.Query(types.NewInt(999), types.NewInt(5), types.NewString("1990"))
	if err != nil || len(r.Rows) != 0 {
		t.Fatalf("missing start: %v %v", render(r), err)
	}
}

func TestPrepareSeesLiveData(t *testing.T) {
	e := socialEngine(t)
	p, err := e.Prepare(`SELECT COUNT(*) FROM Users WHERE job = ?`)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := p.Query(types.NewString("Lawyer"))
	if r.Rows[0][0].I != 2 {
		t.Fatalf("initial: %v", render(r))
	}
	mustExec(t, e, `INSERT INTO Users VALUES (6, 'New', '2000', 'Lawyer')`)
	r, _ = p.Query(types.NewString("Lawyer"))
	if r.Rows[0][0].I != 3 {
		t.Fatalf("prepared plan did not see the insert: %v", render(r))
	}
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	e := socialEngine(t)
	if _, err := e.Prepare(`DELETE FROM Users`); err == nil {
		t.Error("prepared DML accepted")
	}
	if _, err := e.Prepare(`SELECT * FROM Ghost`); err == nil {
		t.Error("bad plan accepted")
	}
}

func TestSnapshotRestoreEngine(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `CREATE INDEX ix_job ON Users (job)`)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{})
	if err := e2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// Tables, rows, and graph-view topology all present.
	r := mustExec(t, e2, `SELECT COUNT(*) FROM Users`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("restored users: %v", render(r))
	}
	gv, ok := e2.Catalog().GraphView("SocialNetwork")
	if !ok || gv.G.NumVertices() != 5 || gv.G.NumEdges() != 5 {
		t.Fatalf("restored topology: %v", gv)
	}
	// The restored index is live (plans use it).
	txt, err := e2.Explain(`SELECT lname FROM Users WHERE job = 'Lawyer'`)
	if err != nil || !contains(txt, "IndexScan") {
		t.Fatalf("restored index unused: %q %v", txt, err)
	}
	// Restore into a non-empty engine fails.
	var buf2 bytes.Buffer
	if err := e.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(&buf2); err == nil {
		t.Error("restore into non-empty engine accepted")
	}
	// Garbage input fails cleanly.
	if err := New(Options{}).Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage restore accepted")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && bytes.Contains([]byte(s), []byte(sub))
}

func TestPrepareDML(t *testing.T) {
	e := socialEngine(t)
	ins, err := e.PrepareDML(`INSERT INTO Users VALUES (?, ?, '2000', ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 3 {
		t.Fatalf("nparams: %d", ins.NumParams())
	}
	for i := int64(10); i < 13; i++ {
		if _, err := ins.Exec(types.NewInt(i), types.NewString("p"), types.NewString("Chef")); err != nil {
			t.Fatal(err)
		}
	}
	r := mustExec(t, e, `SELECT COUNT(*) FROM Users WHERE job = 'Chef'`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("inserted: %v", render(r))
	}
	// Prepared insert maintains graph views too.
	gv, _ := e.Catalog().GraphView("SocialNetwork")
	if gv.G.Vertex(11) == nil {
		t.Fatal("prepared insert skipped view maintenance")
	}
	upd, err := e.PrepareDML(`UPDATE Users SET job = ? WHERE uid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := upd.Exec(types.NewString("Cook"), types.NewInt(10)); err != nil {
		t.Fatal(err)
	}
	r = mustExec(t, e, `SELECT job FROM Users WHERE uid = 10`)
	if r.Rows[0][0].S != "Cook" {
		t.Fatalf("update: %v", render(r))
	}
	del, err := e.PrepareDML(`DELETE FROM Users WHERE uid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := del.Exec(types.NewInt(12))
	if err != nil || res.Affected != 1 {
		t.Fatalf("delete: %+v %v", res, err)
	}
	if gv.G.Vertex(12) != nil {
		t.Fatal("prepared delete skipped view maintenance")
	}
	// Arity enforcement and statement-kind rejection.
	if _, err := del.Exec(); err == nil {
		t.Error("missing params accepted")
	}
	if _, err := e.PrepareDML(`SELECT 1 FROM Users`); err == nil {
		t.Error("SELECT accepted by PrepareDML")
	}
	if _, err := e.PrepareDML(`CREATE TABLE x (a BIGINT)`); err == nil {
		t.Error("DDL accepted by PrepareDML")
	}
}
