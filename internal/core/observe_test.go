package core

import (
	"bytes"
	"log"
	"strings"
	"testing"
	"time"
)

// planLines flattens a one-column plan result into a single string.
func planLines(t *testing.T, r *Result) string {
	t.Helper()
	var sb strings.Builder
	for _, row := range r.Rows {
		sb.WriteString(row[0].S)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// metricValue reads one snapshot entry by name (-1 when absent).
func metricValue(e *Engine, name string) int64 {
	for _, kv := range e.MetricsSnapshot() {
		if kv.Name == name {
			return kv.Value
		}
	}
	return -1
}

// TestMetricsAccuracy is the ISSUE's counter-delta test: after N
// statements of each kind, the by-kind counters moved by exactly N.
func TestMetricsAccuracy(t *testing.T) {
	e := socialEngine(t)
	base := map[string]int64{}
	for _, k := range []string{"statements.select", "statements.insert", "statements.explain", "statements.show", "statements.set", "errors.other", "latency.count"} {
		base[k] = metricValue(e, k)
	}

	for i := 0; i < 5; i++ {
		mustExec(t, e, `SELECT COUNT(*) FROM Users`)
	}
	mustExec(t, e, `INSERT INTO Users VALUES (100, 'A', '2000', 'Lawyer')`)
	mustExec(t, e, `INSERT INTO Users VALUES (101, 'B', '2000', 'Lawyer')`)
	mustExec(t, e, `EXPLAIN SELECT * FROM Users`)
	mustExec(t, e, `SHOW TABLES`)
	mustExec(t, e, `SET QUERY_TIMEOUT = 0`)
	if _, err := e.Execute(`SELECT nosuch FROM Users`); err == nil {
		t.Fatal("bad query succeeded")
	}

	want := map[string]int64{
		"statements.select":  6, // 5 successes + the failed SELECT (counted by kind regardless of outcome)
		"statements.insert":  2,
		"statements.explain": 1,
		"statements.show":    1,
		"statements.set":     1,
		"errors.other":       1,
		"latency.count":      11, // every statement above, including the failed one
	}
	for name, delta := range want {
		if got := metricValue(e, name) - base[name]; got != delta {
			t.Errorf("%s delta = %d, want %d", name, got, delta)
		}
	}
}

func TestShowMetricsStatement(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `SELECT COUNT(*) FROM Users`)
	r := mustExec(t, e, `SHOW METRICS`)
	if len(r.Columns) != 2 || r.Columns[0] != "name" || r.Columns[1] != "value" {
		t.Fatalf("columns: %v", r.Columns)
	}
	found := map[string]int64{}
	for _, row := range r.Rows {
		found[row[0].S] = row[1].I
	}
	if found["statements.select"] < 1 {
		t.Errorf("statements.select = %d, want >= 1", found["statements.select"])
	}
	if v, ok := found["graphview.SocialNetwork.vertices"]; !ok || v != 5 {
		t.Errorf("graphview.SocialNetwork.vertices = %d (present=%v), want 5", v, ok)
	}
	if v, ok := found["graphview.SocialNetwork.stats_age_ns"]; !ok || v != -1 {
		t.Errorf("stats_age_ns = %d (present=%v), want -1 before any refresh", v, ok)
	}
	e.RefreshStatistics()
	if v := metricValue(e, "graphview.SocialNetwork.stats_age_ns"); v < 0 {
		t.Errorf("stats_age_ns = %d after refresh, want >= 0", v)
	}
	if v := metricValue(e, "graph.stats_refreshes"); v != 1 {
		t.Errorf("graph.stats_refreshes = %d, want 1", v)
	}
}

// TestExplainAnalyzePathOperators is the golden coverage the ISSUE asks
// for: EXPLAIN ANALYZE over each physical path operator renders actual
// per-operator rows/time plus the correctly-bounded pushed filter.
func TestExplainAnalyzePathOperators(t *testing.T) {
	social := socialEngine(t)
	road := New(Options{})
	mustScript(t, road, `
		CREATE TABLE Nodes (nid BIGINT PRIMARY KEY, addr VARCHAR);
		CREATE TABLE Roads (rid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, dist DOUBLE);
		INSERT INTO Nodes VALUES (1,'Address 1'),(2,'mid'),(3,'mid2'),(4,'Address 2');
		INSERT INTO Roads VALUES
			(1, 1, 2, 1.0), (2, 2, 4, 1.0),
			(3, 1, 3, 1.5), (4, 3, 4, 1.5),
			(5, 1, 4, 10.0);
		CREATE UNDIRECTED GRAPH VIEW RoadNetwork
			VERTEXES(ID = nid, Address = addr) FROM Nodes
			EDGES(ID = rid, FROM = a, TO = b, Distance = dist) FROM Roads;
	`)

	cases := []struct {
		name  string
		eng   *Engine
		query string
		want  []string
	}{
		{
			name: "DFScan",
			eng:  social,
			query: `EXPLAIN ANALYZE SELECT COUNT(*) FROM SocialNetwork.Paths PS HINT(DFS)
				WHERE PS.StartVertex.Id = 1 AND PS.Length <= 2 AND PS.Edges[0..1].sdate > '2000'`,
			want: []string{"PathScan[DFScan]", "Edges[0..1].sdate > '2000'", "pushed=1"},
		},
		{
			name: "BFScan",
			eng:  social,
			query: `EXPLAIN ANALYZE SELECT COUNT(*) FROM SocialNetwork.Paths PS HINT(BFS)
				WHERE PS.StartVertex.Id = 1 AND PS.Length <= 2 AND PS.Edges[0..1].sdate > '2000'`,
			want: []string{"PathScan[BFScan]", "Edges[0..1].sdate > '2000'", "pushed=1"},
		},
		{
			name: "SPScan",
			eng:  road,
			query: `EXPLAIN ANALYZE SELECT TOP 1 PS.PathString FROM RoadNetwork.Paths PS HINT(SHORTESTPATH(Distance))
				WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 4 AND PS.Edges[0..1].Distance >= 1`,
			want: []string{"PathScan[SPScan]", "Edges[0..1].Distance >= 1", "pushed=1", "weight=Distance"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := mustExec(t, tc.eng, tc.query)
			text := planLines(t, r)
			for _, w := range append(tc.want,
				"actual rows=", "nexts=", "time=", "Execution: rows=", "Counters: edges_traversed=") {
				if !strings.Contains(text, w) {
					t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", w, text)
				}
			}
			// Actual traversal happened: the counter line must be nonzero.
			if strings.Contains(text, "edges_traversed=0 ") || strings.HasSuffix(text, "edges_traversed=0\n") {
				t.Errorf("EXPLAIN ANALYZE did not execute the traversal:\n%s", text)
			}
		})
	}
}

func TestExplainAnalyzeStatsLine(t *testing.T) {
	e := socialEngine(t)
	q := `EXPLAIN ANALYZE SELECT COUNT(*) FROM SocialNetwork.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.Length <= 2`
	text := planLines(t, mustExec(t, e, q))
	if !strings.Contains(text, "Stats[SocialNetwork]: none published") {
		t.Errorf("want no-stats line before refresh:\n%s", text)
	}
	e.RefreshStatistics()
	text = planLines(t, mustExec(t, e, q))
	if !strings.Contains(text, "Stats[SocialNetwork]: avg_fanout=") || !strings.Contains(text, "(fresh)") {
		t.Errorf("want fresh stats line after refresh:\n%s", text)
	}
}

// TestRebuildInvalidatesStats is the §6.3 staleness regression at the
// engine level: RebuildGraphView must withdraw published statistics.
func TestRebuildInvalidatesStats(t *testing.T) {
	e := socialEngine(t)
	e.RefreshStatistics()
	gv, ok := e.Catalog().GraphView("SocialNetwork")
	if !ok {
		t.Fatal("no graph view")
	}
	if gv.Stats() == nil {
		t.Fatal("refresh did not publish statistics")
	}
	if _, err := e.RebuildGraphView("SocialNetwork"); err != nil {
		t.Fatal(err)
	}
	if gv.Stats() != nil {
		t.Fatal("RebuildGraphView left stale statistics published")
	}
	if v := metricValue(e, "graphview.SocialNetwork.stats_age_ns"); v != -1 {
		t.Errorf("stats_age_ns = %d after invalidation, want -1", v)
	}
}

func TestSlowQueryLog(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `SET SLOW_QUERY = 7`)
	if e.SlowQuery() != 7*time.Millisecond {
		t.Fatalf("SET SLOW_QUERY: threshold = %v", e.SlowQuery())
	}

	// Arm an impossibly low threshold so the next SELECT always logs.
	e.SetSlowQuery(time.Nanosecond)
	var buf bytes.Buffer
	old := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(old)
	before := metricValue(e, "slow_queries")
	mustExec(t, e, `SELECT COUNT(*) FROM Users WHERE job = 'Doctor'`)
	log.SetOutput(old)

	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "SELECT COUNT(*)") {
		t.Errorf("slow-query log missing statement text:\n%s", out)
	}
	if !strings.Contains(out, "top[1]") {
		t.Errorf("slow-query log missing top operators:\n%s", out)
	}
	if got := metricValue(e, "slow_queries") - before; got < 1 {
		t.Errorf("slow_queries delta = %d, want >= 1", got)
	}

	// Disarmed again: nothing further is logged.
	e.SetSlowQuery(0)
	buf.Reset()
	log.SetOutput(&buf)
	mustExec(t, e, `SELECT COUNT(*) FROM Users`)
	log.SetOutput(old)
	if strings.Contains(buf.String(), "slow query") {
		t.Errorf("slow-query log fired while disabled:\n%s", buf.String())
	}
}

func TestErrorSentinelCounters(t *testing.T) {
	e := socialEngine(t)
	mustExec(t, e, `SET QUERY_TIMEOUT = 1`)
	defer mustExec(t, e, `SET QUERY_TIMEOUT = 0`)
	before := metricValue(e, "errors.timeout")
	// An unbounded all-pairs traversal cannot finish in 1ms.
	deadline := time.Now().Add(5 * time.Second)
	var timedOut bool
	for time.Now().Before(deadline) {
		_, err := e.Execute(`SELECT COUNT(*) FROM SocialNetwork.Paths PS WHERE PS.Length <= 6`)
		if err != nil {
			timedOut = true
			break
		}
	}
	if !timedOut {
		t.Skip("query never exceeded the 1ms deadline on this machine")
	}
	if got := metricValue(e, "errors.timeout") - before; got < 1 {
		t.Errorf("errors.timeout delta = %d, want >= 1", got)
	}
}
