package core

import (
	"fmt"
	"sort"

	"grfusion/internal/catalog"
	"grfusion/internal/expr"
	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// DML runs inside an implicit transaction: every storage mutation and its
// graph-view maintenance (§3.3) either all apply or are all undone. The
// undo journal exploits the row store's LIFO free list: replaying inverses
// in reverse order restores every tuple to its original slot, keeping
// tuple pointers held by graph views valid.

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate
	// undoMapSet/undoMapDel reverse materialized-view row-map mutations.
	undoMapSet
	undoMapDel
)

type undoOp struct {
	kind   undoKind
	table  *storage.Table
	id     storage.RowID
	oldRow types.Row
	newRow types.Row
	// extended marks an undoInsert whose insert grew the row array; its
	// reversal must shrink it back (storage.Table.UndoInsert).
	extended bool

	// Materialized-view map entries (undoMapSet/undoMapDel).
	mv     *catalog.MatView
	viewID storage.RowID
}

type txn struct {
	e       *Engine
	journal []undoOp
}

func (tx *txn) views(table *storage.Table) []*catalog.GraphView {
	return tx.e.cat.DependentViews(table.Name())
}

// insertRow inserts and maintains dependent graph views atomically.
func (tx *txn) insertRow(t *storage.Table, row types.Row) (storage.RowID, error) {
	// extended records whether this insert will grow the row array rather
	// than reuse a hole; undoing the two cases differs (UndoInsert), and an
	// aborted statement must leave the allocator exactly as it found it —
	// WAL replay pins the allocator state and only sees applied statements.
	_, freeDepth := t.AllocState()
	extended := freeDepth == 0
	id, err := t.Insert(row)
	if err != nil {
		return storage.InvalidRowID, err
	}
	stored, _ := t.Get(id) // post-coercion image
	views := tx.views(t)
	for i, gv := range views {
		if err := gv.OnInsert(t.Name(), id, stored); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = views[j].OnDelete(t.Name(), stored)
			}
			_ = t.UndoInsert(id, extended)
			return storage.InvalidRowID, err
		}
	}
	tx.journal = append(tx.journal, undoOp{kind: undoInsert, table: t, id: id, newRow: stored, extended: extended})
	if err := tx.maintainMatViewsInsert(t, id, stored); err != nil {
		return storage.InvalidRowID, err
	}
	return id, nil
}

// deleteRow deletes a tuple, cascading onto edges relational-sources when
// the tuple is a vertex of some graph view (§3.3.2). Deleting an
// already-dead slot is a no-op so cascades may overlap.
func (tx *txn) deleteRow(t *storage.Table, id storage.RowID) error {
	row, ok := t.Get(id)
	if !ok {
		return nil
	}
	// Cascade: remove incident edge tuples first so the relational state
	// never references a vanished vertex.
	for _, gv := range tx.views(t) {
		if !gv.IsVertexSource(t.Name()) {
			continue
		}
		vidPos := gv.VertexIDSourceColumn()
		if row[vidPos].Kind != types.KindInt {
			continue
		}
		// Cascade in tuple-pointer order, not adjacency-list order: adjacency
		// order depends on construction history (incremental maintenance vs a
		// post-recovery rebuild), while deletion order decides the free-list
		// push order and hence which slots later inserts reuse. WAL replay is
		// only deterministic if a statement's relational effects are a pure
		// function of relational state, so the cascade order must be too.
		refs := gv.IncidentEdges(row[vidPos].I)
		sort.Slice(refs, func(i, j int) bool { return refs[i].Tuple < refs[j].Tuple })
		for _, ref := range refs {
			if err := tx.deleteRow(gv.EdgeTable(), ref.Tuple); err != nil {
				return err
			}
		}
	}
	if err := t.Delete(id); err != nil {
		return err
	}
	views := tx.views(t)
	for i, gv := range views {
		if err := gv.OnDelete(t.Name(), row); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = views[j].OnInsert(t.Name(), id, row)
			}
			if rid, ierr := t.Insert(row); ierr != nil || rid != id {
				return fmt.Errorf("%v (and undo failed: slot %d not restored)", err, id)
			}
			return err
		}
	}
	tx.journal = append(tx.journal, undoOp{kind: undoDelete, table: t, id: id, oldRow: row})
	return tx.maintainMatViewsDelete(t, id)
}

// updateRow updates a tuple in place and maintains dependent views.
func (tx *txn) updateRow(t *storage.Table, id storage.RowID, newRow types.Row) error {
	oldRow, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("update of dead row %d in table %s", id, t.Name())
	}
	if err := t.Update(id, newRow); err != nil {
		return err
	}
	stored, _ := t.Get(id)
	views := tx.views(t)
	for i, gv := range views {
		if err := gv.OnUpdate(t.Name(), id, oldRow, stored); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = views[j].OnUpdate(t.Name(), id, stored, oldRow)
			}
			_ = t.Update(id, oldRow)
			return err
		}
	}
	tx.journal = append(tx.journal, undoOp{kind: undoUpdate, table: t, id: id, oldRow: oldRow, newRow: stored})
	return tx.maintainMatViewsUpdate(t, id, stored)
}

// rollback undoes the journal in reverse order.
func (tx *txn) rollback() error {
	for i := len(tx.journal) - 1; i >= 0; i-- {
		op := tx.journal[i]
		switch op.kind {
		case undoInsert:
			for _, gv := range tx.views(op.table) {
				_ = gv.OnDelete(op.table.Name(), op.newRow)
			}
			if err := op.table.UndoInsert(op.id, op.extended); err != nil {
				return fmt.Errorf("rollback: %v", err)
			}
		case undoDelete:
			rid, err := op.table.Insert(op.oldRow)
			if err != nil {
				return fmt.Errorf("rollback: %v", err)
			}
			if rid != op.id {
				return fmt.Errorf("rollback: slot %d not restored (got %d)", op.id, rid)
			}
			for _, gv := range tx.views(op.table) {
				if err := gv.OnInsert(op.table.Name(), op.id, op.oldRow); err != nil {
					return fmt.Errorf("rollback: %v", err)
				}
			}
		case undoUpdate:
			if err := op.table.Update(op.id, op.oldRow); err != nil {
				return fmt.Errorf("rollback: %v", err)
			}
			for _, gv := range tx.views(op.table) {
				if err := gv.OnUpdate(op.table.Name(), op.id, op.newRow, op.oldRow); err != nil {
					return fmt.Errorf("rollback: %v", err)
				}
			}
		case undoMapSet:
			op.mv.MapDelete(op.id)
		case undoMapDel:
			op.mv.MapSet(op.id, op.viewID)
		}
	}
	tx.journal = nil
	return nil
}

func (tx *txn) abort(err error) error {
	if rerr := tx.rollback(); rerr != nil {
		return fmt.Errorf("%v; additionally the transaction rollback failed, database may be inconsistent: %v", err, rerr)
	}
	return err
}

func (e *Engine) runInsert(s *sql.Insert) (*Result, error) { return e.runInsertParams(s, nil) }

func (e *Engine) runInsertParams(s *sql.Insert, params types.Row) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	if e.cat.IsMatViewTable(s.Table) {
		return nil, fmt.Errorf("materialized view %s is read-only; modify its base table", s.Table)
	}
	schema := t.Schema()
	// Column mapping.
	var positions []int
	if len(s.Cols) == 0 {
		positions = make([]int, schema.Len())
		for i := range positions {
			positions[i] = i
		}
	} else {
		positions = make([]int, len(s.Cols))
		for i, c := range s.Cols {
			idx, err := schema.Resolve("", c)
			if err != nil {
				return nil, err
			}
			positions[i] = idx
		}
	}
	tx := &txn{e: e}
	env := &expr.Env{Params: params}
	for _, exprs := range s.Rows {
		if len(exprs) != len(positions) {
			return nil, tx.abort(fmt.Errorf("INSERT into %s: %d values for %d columns",
				s.Table, len(exprs), len(positions)))
		}
		row := make(types.Row, schema.Len())
		for i, ex := range exprs {
			v, err := expr.Eval(ex, env)
			if err != nil {
				return nil, tx.abort(fmt.Errorf("INSERT into %s: %v", s.Table, err))
			}
			row[positions[i]] = v
		}
		if _, err := tx.insertRow(t, row); err != nil {
			return nil, tx.abort(err)
		}
	}
	return &Result{Affected: len(s.Rows)}, nil
}

// matchRows evaluates a WHERE clause over a table, returning matching ids.
// Point predicates on the primary key or an indexed column avoid the scan
// (the hot path of prepared point DML, VoltDB's bread and butter).
func matchRows(t *storage.Table, where expr.Expr, params types.Row) ([]storage.RowID, error) {
	var bound expr.Expr
	if where != nil {
		var err error
		bound, err = expr.NewBinder(t.Schema()).Bind(where.Clone())
		if err != nil {
			return nil, err
		}
		if ids, ok, err := pointLookup(t, bound, params); err != nil {
			return nil, err
		} else if ok {
			return ids, nil
		}
	}
	var ids []storage.RowID
	var evalErr error
	t.Scan(func(id storage.RowID, row types.Row) bool {
		if bound != nil {
			ok, err := expr.EvalBool(bound, &expr.Env{Row: row, Params: params})
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	return ids, evalErr
}

func (e *Engine) runUpdate(s *sql.Update) (*Result, error) { return e.runUpdateParams(s, nil) }

func (e *Engine) runUpdateParams(s *sql.Update, params types.Row) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	if e.cat.IsMatViewTable(s.Table) {
		return nil, fmt.Errorf("materialized view %s is read-only; modify its base table", s.Table)
	}
	schema := t.Schema()
	binder := expr.NewBinder(schema)
	type setOp struct {
		pos int
		ex  expr.Expr
	}
	sets := make([]setOp, len(s.Sets))
	for i, sc := range s.Sets {
		pos, err := schema.Resolve("", sc.Col)
		if err != nil {
			return nil, err
		}
		be, err := binder.Bind(sc.E.Clone())
		if err != nil {
			return nil, err
		}
		sets[i] = setOp{pos: pos, ex: be}
	}
	ids, err := matchRows(t, s.Where, params)
	if err != nil {
		return nil, err
	}
	tx := &txn{e: e}
	for _, id := range ids {
		oldRow, ok := t.Get(id)
		if !ok {
			continue
		}
		newRow := oldRow.Clone()
		env := &expr.Env{Row: oldRow, Params: params}
		for _, so := range sets {
			v, err := expr.Eval(so.ex, env)
			if err != nil {
				return nil, tx.abort(err)
			}
			newRow[so.pos] = v
		}
		if err := tx.updateRow(t, id, newRow); err != nil {
			return nil, tx.abort(err)
		}
		if err := tx.fixEdgeReferences(t, oldRow, newRow); err != nil {
			return nil, tx.abort(err)
		}
	}
	return &Result{Affected: len(ids)}, nil
}

// fixEdgeReferences preserves the referential integrity of edges
// relational-sources when a vertex identifier changes (§3.3.1): every edge
// tuple referencing the old id is rewritten to the new id, which in turn
// re-maintains the topology of every view over that edge table.
func (tx *txn) fixEdgeReferences(t *storage.Table, oldRow, newRow types.Row) error {
	for _, gv := range tx.views(t) {
		if !gv.IsVertexSource(t.Name()) {
			continue
		}
		pos := gv.VertexIDSourceColumn()
		oldID, newID := oldRow[pos], newRow[pos]
		if oldID.Kind != types.KindInt || newID.Kind != types.KindInt || oldID.I == newID.I {
			continue
		}
		etab := gv.EdgeTable()
		fromPos, toPos := gv.EdgeEndpointSourceColumns()
		type fix struct {
			id  storage.RowID
			row types.Row
		}
		var fixes []fix
		etab.Scan(func(id storage.RowID, row types.Row) bool {
			if (row[fromPos].Kind == types.KindInt && row[fromPos].I == oldID.I) ||
				(row[toPos].Kind == types.KindInt && row[toPos].I == oldID.I) {
				nr := row.Clone()
				if nr[fromPos].Kind == types.KindInt && nr[fromPos].I == oldID.I {
					nr[fromPos] = newID
				}
				if nr[toPos].Kind == types.KindInt && nr[toPos].I == oldID.I {
					nr[toPos] = newID
				}
				fixes = append(fixes, fix{id: id, row: nr})
			}
			return true
		})
		for _, f := range fixes {
			if err := tx.updateRow(etab, f.id, f.row); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Engine) runDelete(s *sql.Delete) (*Result, error) { return e.runDeleteParams(s, nil) }

func (e *Engine) runDeleteParams(s *sql.Delete, params types.Row) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	if e.cat.IsMatViewTable(s.Table) {
		return nil, fmt.Errorf("materialized view %s is read-only; modify its base table", s.Table)
	}
	ids, err := matchRows(t, s.Where, params)
	if err != nil {
		return nil, err
	}
	tx := &txn{e: e}
	n := 0
	for _, id := range ids {
		if _, live := t.Get(id); !live {
			continue // already cascaded away by an earlier delete
		}
		if err := tx.deleteRow(t, id); err != nil {
			return nil, tx.abort(err)
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// pointLookup serves `col = constant` predicates from the primary key or a
// hash index. It reports ok=false when the predicate has another shape.
func pointLookup(t *storage.Table, bound expr.Expr, params types.Row) ([]storage.RowID, bool, error) {
	be, isBin := bound.(*expr.BinaryExpr)
	if !isBin || be.Op != expr.OpEq {
		return nil, false, nil
	}
	col, val := pointSides(be.L, be.R)
	if col == nil {
		col, val = pointSides(be.R, be.L)
	}
	if col == nil {
		return nil, false, nil
	}
	v, err := expr.Eval(val, &expr.Env{Params: params})
	if err != nil {
		return nil, false, err
	}
	pk := t.PrimaryKeyColumns()
	if len(pk) == 1 && pk[0] == col.Idx {
		id := t.LookupPK(types.Row{v})
		if id == storage.InvalidRowID {
			return nil, true, nil
		}
		return []storage.RowID{id}, true, nil
	}
	if ix, ok := t.FindIndexOn([]int{col.Idx}, false); ok {
		return append([]storage.RowID(nil), ix.Lookup(types.Row{v})...), true, nil
	}
	return nil, false, nil
}

func pointSides(a, b expr.Expr) (*expr.ColumnRef, expr.Expr) {
	col, ok := a.(*expr.ColumnRef)
	if !ok || col.Idx < 0 {
		return nil, nil
	}
	switch b.(type) {
	case *expr.Literal, *expr.Param:
		return col, b
	}
	return nil, nil
}
