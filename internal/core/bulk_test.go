package core

import (
	"strings"
	"testing"
	"time"

	"grfusion/internal/types"
)

// bulkRows builds n (id, src, dst, w) edge rows with ids starting at base,
// endpoints cycling over nv vertices.
func bulkEdgeRows(base, n, nv int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(base + i)),
			types.NewInt(int64(i % nv)),
			types.NewInt(int64((i*7 + 1) % nv)),
			types.NewInt(int64(i)),
		}
	}
	return rows
}

func bulkVertexRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewString("v")}
	}
	return rows
}

// TestBulkLoadBasic loads vertices and edges through BulkLoad into a
// schema with a graph view and checks the result matches row-at-a-time
// INSERTs: relational contents, live topology vs from-scratch rebuild,
// and — the point of the API — exactly ONE published version per load no
// matter how many batches streamed in.
func TestBulkLoadBasic(t *testing.T) {
	e := New(Options{})
	mustExecAll(t, e, durSetup)

	before := e.Metrics().MVCCPublished.Value()
	bl, err := e.BeginBulk("people", nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	people := bulkVertexRows(50)
	for i := 0; i < 50; i += 10 { // 5 batches
		if _, err := bl.Append(people[i : i+10]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := bl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 50 {
		t.Fatalf("Affected = %d, want 50", res.Affected)
	}
	if got := e.Metrics().MVCCPublished.Value() - before; got != 1 {
		t.Fatalf("people load published %d versions, want 1", got)
	}

	before = e.Metrics().MVCCPublished.Value()
	bl, err = e.BeginBulk("knows", []string{"id", "src", "dst", "w"}, 200)
	if err != nil {
		t.Fatal(err)
	}
	edges := bulkEdgeRows(1000, 200, 50)
	for i := 0; i < 200; i += 64 {
		end := i + 64
		if end > 200 {
			end = 200
		}
		if _, err := bl.Append(edges[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if bl.Rows() != 200 {
		t.Fatalf("Rows() = %d, want 200", bl.Rows())
	}
	if _, err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().MVCCPublished.Value() - before; got != 1 {
		t.Fatalf("edge load published %d versions, want 1", got)
	}

	// Graph view maintained incrementally == from-scratch rebuild, and a
	// traversal sees the loaded edges.
	_ = stateSig(t, e)
	res, err = e.Execute("SELECT COUNT(*) FROM knows")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 200 {
		t.Fatalf("knows count = %v, want 200", res.Rows[0][0])
	}
	if m := e.Metrics(); m.BulkLoads.Value() != 2 || m.BulkRows.Value() != 250 {
		t.Fatalf("bulk counters: loads=%d rows=%d, want 2/250",
			m.BulkLoads.Value(), m.BulkRows.Value())
	}
}

// TestBulkLoadColumnMapping loads with a reordered column subset and
// checks unlisted columns default to NULL and values land in the right
// columns, same as the equivalent INSERT.
func TestBulkLoadColumnMapping(t *testing.T) {
	e := New(Options{})
	mustExecAll(t, e, `CREATE TABLE p (id BIGINT, name VARCHAR, age BIGINT, PRIMARY KEY (id));`)
	bl, err := e.BeginBulk("p", []string{"name", "id"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Append([]types.Row{
		{types.NewString("ada"), types.NewInt(1)},
		{types.NewString("bob"), types.NewInt(2)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("INSERT INTO p (name, id) VALUES ('eve', 3)"); err != nil {
		t.Fatal(err)
	}
	got := querySig(t, e, "SELECT id, name, age FROM p")
	if !strings.Contains(got, "1|ada|NULL") || !strings.Contains(got, "2|bob|NULL") {
		t.Fatalf("mapped load wrong: %s", got)
	}
}

// TestBulkLoadBatchAtomicity checks a failing batch (duplicate primary
// key) rolls back wholly — including rows earlier in the same batch —
// while earlier batches stay, and the load remains usable afterwards.
func TestBulkLoadBatchAtomicity(t *testing.T) {
	e := New(Options{})
	mustExecAll(t, e, durSetup)
	bl, err := e.BeginBulk("people", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Append([]types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.NewString("b")},
	}); err != nil {
		t.Fatal(err)
	}
	// Bad batch: row 3 is fine, row 2 is a duplicate — both must vanish.
	_, err = bl.Append([]types.Row{
		{types.NewInt(3), types.NewString("c")},
		{types.NewInt(2), types.NewString("dup")},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Fatalf("want duplicate-key error, got %v", err)
	}
	// Load still usable; id 3 is free again.
	if _, err := bl.Append([]types.Row{{types.NewInt(3), types.NewString("c2")}}); err != nil {
		t.Fatalf("append after failed batch: %v", err)
	}
	res, err := bl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Fatalf("Affected = %d, want 3", res.Affected)
	}
	got := querySig(t, e, "SELECT id, name FROM people")
	if !strings.Contains(got, "3|c2") || strings.Contains(got, "dup") {
		t.Fatalf("batch rollback leaked rows: %s", got)
	}
}

// TestBulkLoadErrors covers the rejection paths: unknown table,
// materialized-view table, wrong row width, and use-after-Close.
func TestBulkLoadErrors(t *testing.T) {
	e := New(Options{})
	mustExecAll(t, e, `
		CREATE TABLE u (id BIGINT, PRIMARY KEY (id));
		CREATE MATERIALIZED VIEW mu AS SELECT id FROM u;`)
	if _, err := e.BeginBulk("nosuch", nil, 0); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := e.BeginBulk("mu", nil, 0); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("matview load: %v", err)
	}
	if _, err := e.BeginBulk("u", []string{"nope"}, 0); err == nil {
		t.Fatal("unknown column accepted")
	}
	bl, err := e.BeginBulk("u", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Append([]types.Row{{types.NewInt(1), types.NewInt(2)}}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	if _, err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Append([]types.Row{{types.NewInt(1)}}); err == nil {
		t.Fatal("append after close accepted")
	}
	if _, err := bl.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	// The lock was released: a normal statement must run.
	if _, err := e.Execute("INSERT INTO u VALUES (9)"); err != nil {
		t.Fatalf("engine locked after close: %v", err)
	}
}

// TestBulkLoadReadersUnblocked checks MVCC readers keep serving the
// pre-load version while the load holds the write lock mid-stream.
func TestBulkLoadReadersUnblocked(t *testing.T) {
	e := New(Options{})
	mustExecAll(t, e, durSetup)
	if _, err := e.Execute("INSERT INTO people VALUES (100, 'pre')"); err != nil {
		t.Fatal(err)
	}
	bl, err := e.BeginBulk("people", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Append(bulkVertexRows(10)); err != nil {
		t.Fatal(err)
	}
	// Mid-load, with the write lock held, a reader must complete and see
	// only the pre-load row.
	done := make(chan error, 1)
	var n int64
	go func() {
		res, err := e.Execute("SELECT COUNT(*) FROM people")
		if err == nil {
			n = res.Rows[0][0].I
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked behind bulk load")
	}
	if n != 1 {
		t.Fatalf("mid-load reader saw %d rows, want 1 (pre-load version)", n)
	}
	if _, err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute("SELECT COUNT(*) FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 11 {
		t.Fatalf("post-load count = %d, want 11", res.Rows[0][0].I)
	}
}

// TestBulkLoadDurableReplay kills the engine after a bulk load and checks
// recovery reconstructs the identical state from the per-batch WAL
// records (each replayed through the prepared-DML path).
func TestBulkLoadDurableReplay(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDur(t, dir, Options{})
	mustExecAll(t, e, durSetup)

	bl, err := e.BeginBulk("people", nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Append(bulkVertexRows(30)); err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	bl, err = e.BeginBulk("knows", []string{"id", "src", "dst", "w"}, 90)
	if err != nil {
		t.Fatal(err)
	}
	edges := bulkEdgeRows(500, 90, 30)
	for i := 0; i < 90; i += 40 {
		end := i + 40
		if end > 90 {
			end = 90
		}
		if _, err := bl.Append(edges[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	// A failed batch mid-load must leave no WAL record behind.
	if _, err := bl.Append([]types.Row{{
		types.NewInt(500), types.NewInt(0), types.NewInt(1), types.NewInt(0)}}); err == nil {
		t.Fatal("duplicate edge id accepted")
	}
	if _, err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	want := stateSig(t, e)
	e.Kill()

	e2, info := openDur(t, dir, Options{})
	defer e2.Kill()
	if info.Replayed == 0 {
		t.Fatal("recovery replayed no WAL records")
	}
	if got := stateSig(t, e2); got != want {
		t.Fatalf("recovered state diverges:\nwant %s\ngot  %s", want, got)
	}
}
