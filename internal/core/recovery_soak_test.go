package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"grfusion/internal/wal"
)

// chaosInjector drives the durability fault hooks. It is shared between
// the workload goroutine and the WAL's interval-sync goroutine, so every
// decision is taken under its own lock with its own rng.
type chaosInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rate  map[string]float64 // WAL op ("write", "sync", "rotate") -> failure probability
	crash wal.CrashPoint     // one-shot checkpoint crash, "" when disarmed
}

func (c *chaosInjector) fault(op string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() < c.rate[op] {
		return fmt.Errorf("chaos: injected %s fault", op)
	}
	return nil
}

func (c *chaosInjector) crashFn(p wal.CrashPoint) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crash != "" && p == c.crash {
		c.crash = ""
		return fmt.Errorf("chaos: injected crash at %s", p)
	}
	return nil
}

func (c *chaosInjector) set(write, sync, rotate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rate = map[string]float64{"write": write, "sync": sync, "rotate": rotate}
}

func (c *chaosInjector) armCrash(p wal.CrashPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crash = p
}

// calm disarms all injection (recovery itself must run fault-free: the
// soak simulates crashes, not a broken disk at restart).
func (c *chaosInjector) calm() {
	c.set(0, 0, 0)
	c.armCrash("")
}

// TestRecoverySoak is the kill-and-recover chaos soak: one durable engine
// runs a seeded random DML workload under stormy weather — injected WAL
// write/sync/rotate failures, checkpoint crashes at every point of the
// atomic-rename protocol, fsync policy changes mid-flight — and is
// repeatedly killed (fd dropped, no sync, no checkpoint, sometimes with
// garbage appended as a torn tail) or gracefully shut down, then
// recovered. After every recovery the engine must match a non-durable
// reference engine that applied the same accepted statements, the live
// topology must equal a from-scratch §3.3 rebuild, and no replayed record
// may fail.
//
// GRF_SOAK extends the soak duration (seconds), e.g. GRF_SOAK=20 in the
// CI recovery job; the default keeps `go test ./...` fast.
func TestRecoverySoak(t *testing.T) {
	duration := 1500 * time.Millisecond
	if s := os.Getenv("GRF_SOAK"); s != "" {
		var secs int
		if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs > 0 {
			duration = time.Duration(secs) * time.Second
		}
	}
	const seed = 20260809
	rng := rand.New(rand.NewSource(seed))
	inj := &chaosInjector{rng: rand.New(rand.NewSource(seed + 1)), rate: map[string]float64{}}
	dir := t.TempDir()

	// The ground truth: a plain in-memory engine fed every statement the
	// durable engine accepted.
	ref := New(Options{})
	mustExecAll(t, ref, durSetup)

	policies := []wal.FsyncPolicy{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncOff}
	open := func() (*Engine, *RecoveryInfo) {
		t.Helper()
		inj.calm()
		var opts Options
		opts.Durability = Durability{
			Dir:             dir,
			Fsync:           policies[rng.Intn(len(policies))],
			FsyncInterval:   time.Millisecond, // tick often enough to matter in a short soak
			CheckpointEvery: []int{-1, 0, 3, 8}[rng.Intn(4)],
			FaultHook:       inj.fault,
			CrashHook:       inj.crashFn,
		}
		e, info, err := Open(opts)
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		return e, info
	}
	eng, _ := open()
	mustExecAll(t, eng, durSetup)

	// Workload bookkeeping for statement generation only; correctness
	// comes from the reference engine, so stale ids merely produce
	// statements that fail identically on both sides.
	var people, edges []int
	nextID := 1
	mutate := func() string {
		k := rng.Intn(10)
		switch {
		case k < 6 && k >= 3 && len(people) >= 2: // edge insert
			id := nextID
			nextID++
			edges = append(edges, id)
			src, dst := people[rng.Intn(len(people))], people[rng.Intn(len(people))]
			return fmt.Sprintf("INSERT INTO knows VALUES (%d, %d, %d, %d)", id, src, dst, rng.Intn(100))
		case k == 6 && len(edges) > 0: // edge delete
			i := rng.Intn(len(edges))
			id := edges[i]
			edges = append(edges[:i], edges[i+1:]...)
			return fmt.Sprintf("DELETE FROM knows WHERE id = %d", id)
		case k == 7 && len(people) > 0: // vertex delete
			i := rng.Intn(len(people))
			id := people[i]
			people = append(people[:i], people[i+1:]...)
			return fmt.Sprintf("DELETE FROM people WHERE id = %d", id)
		case k == 8 && len(people) > 0: // vertex update
			return fmt.Sprintf("UPDATE people SET name = 'r%d' WHERE id = %d",
				rng.Intn(1000), people[rng.Intn(len(people))])
		case k == 9 && len(people) > 0: // duplicate key: must abort without a WAL trace
			return fmt.Sprintf("INSERT INTO people VALUES (%d, 'dup')", people[rng.Intn(len(people))])
		default: // vertex insert
			id := nextID
			nextID++
			people = append(people, id)
			return fmt.Sprintf("INSERT INTO people VALUES (%d, 'p%d')", id, id)
		}
	}
	apply := func(q string) {
		t.Helper()
		if _, err := eng.Execute(q); err != nil {
			// Aborted on the durable engine (injected fault or a legitimate
			// statement error): nothing applied, nothing left in the log, so
			// the reference skips it too.
			return
		}
		if _, err := ref.Execute(q); err != nil {
			t.Fatalf("durable engine accepted %q but reference rejected it: %v", q, err)
		}
	}

	crashPoints := []wal.CrashPoint{wal.CrashAfterTemp, wal.CrashAfterSync, wal.CrashAfterRename}
	deadline := time.Now().Add(duration)
	cycles, stmts := 0, 0
	for time.Now().Before(deadline) {
		for b, nb := 0, 1+rng.Intn(3); b < nb; b++ {
			if rng.Intn(4) == 0 { // stormy stretch
				inj.set(0.2*rng.Float64(), 0.2*rng.Float64(), 0.5*rng.Float64())
			} else {
				inj.set(0, 0, 0)
			}
			for i, n := 0, 3+rng.Intn(12); i < n; i++ {
				apply(mutate())
				stmts++
			}
			if rng.Intn(5) == 0 { // retune durability mid-flight
				pol := policies[rng.Intn(len(policies))]
				if _, err := eng.Execute("SET WAL_FSYNC = " + strings.ToUpper(pol.String())); err != nil {
					t.Fatalf("SET WAL_FSYNC = %s: %v", pol, err)
				}
			}
			if rng.Intn(4) == 0 {
				if rng.Intn(2) == 0 { // die inside the checkpoint protocol
					inj.armCrash(crashPoints[rng.Intn(len(crashPoints))])
				}
				// May fail under faults or the armed crash; every crash
				// window must still recover, which the reopen below checks.
				_ = eng.Checkpoint()
			}
		}

		inj.calm()
		graceful := rng.Intn(4) == 0
		if graceful {
			if err := eng.Shutdown(); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		} else {
			eng.Kill()
			if rng.Intn(3) == 0 { // torn-tail artifact of dying mid-append
				garbage := make([]byte, 1+rng.Intn(40))
				rng.Read(garbage)
				if f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
					f.Write(garbage)
					f.Close()
				}
			}
		}

		var info *RecoveryInfo
		eng, info = open()
		if info.ReplayErrors != 0 {
			t.Fatalf("cycle %d: recovery replayed %d records with %d errors (%s)",
				cycles, info.Replayed, info.ReplayErrors, info)
		}
		if graceful && info.Replayed != 0 {
			t.Fatalf("cycle %d: post-shutdown recovery replayed %d records, want 0 (%s)",
				cycles, info.Replayed, info)
		}
		if ds, rs := stateSig(t, eng), stateSig(t, ref); ds != rs {
			t.Fatalf("cycle %d: recovered state diverged from reference\nrecovered:\n%s\nreference:\n%s",
				cycles, ds, rs)
		}
		cycles++
	}
	eng.Close()
	t.Logf("soak: %d statements, %d recover cycles in %s", stmts, cycles, duration)
}
