package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"grfusion/internal/faultfs"
)

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs after every logged statement before it is applied
	// — no acknowledged write is ever lost.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs from a background ticker; a crash loses at most
	// the last interval of acknowledged writes, but the log on disk is
	// always a valid prefix of the acknowledged history.
	FsyncInterval
	// FsyncOff leaves syncing to the OS page cache. Cheapest, loses the
	// most on power failure, still torn-tail safe on process crash.
	FsyncOff
)

// String renders the policy as its SET/flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
	}
}

// ParseFsyncPolicy parses "always", "interval" or "off" (any case).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch {
	case equalFold(s, "always"):
		return FsyncAlways, nil
	case equalFold(s, "interval"):
		return FsyncInterval, nil
	case equalFold(s, "off"):
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval or off)", s)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// ErrClosed reports an append to a closed log (e.g. a statement issued
// after shutdown).
var ErrClosed = errors.New("wal: log closed")

// Options configure a Log.
type Options struct {
	// Fsync is the sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// Interval is the FsyncInterval ticker period (default 50ms).
	Interval time.Duration
	// OnSync, when set, is called after every successful fsync (metrics).
	OnSync func()
	// OnAppend, when set, is called after every successful append with
	// the frame size in bytes (metrics).
	OnAppend func(bytes int)
	// OnRollback, when set, is called after every successful RollbackLast
	// (metrics: a logged statement failed to apply and its record was
	// removed again).
	OnRollback func()
	// FaultHook, when set, is consulted before file operations; returning
	// a non-nil error injects that failure. op is one of "write", "sync",
	// "rotate". Tests only.
	FaultHook func(op string) error
	// FS is the storage layer the log operates on; nil means the real
	// filesystem (faultfs.OS). The chaos tests pass a faultfs.Faulty to
	// inject EIO/ENOSPC/short writes/fsync failures beneath the log.
	FS faultfs.FS
}

// Log is the append side of the WAL. All methods are safe for concurrent
// use; in practice appends are serialized by the engine's write lock and
// only the interval-sync goroutine runs concurrently.
type Log struct {
	mu      sync.Mutex
	f       faultfs.File
	fs      faultfs.FS
	path    string
	opts    Options
	nextLSN uint64
	size    int64
	dirty   bool // bytes appended since the last sync
	closed  bool
	// broken is set when a failed append could not be rolled back by
	// truncation; the file may end mid-frame, so further appends would
	// write frames recovery can never reach.
	broken error
	// lastFrameLen is the size of the most recent append, kept so a
	// statement that fails to apply can be rolled back (RollbackLast).
	lastFrameLen int64

	stopInterval chan struct{}
	doneInterval chan struct{}
}

// DebugDropTailRecord, when true, makes Open silently discard the final
// valid record of the scanned log — an injected recovery bug (one durably
// logged statement lost) that the oracle harness's teeth test uses to
// prove its crash-recovery differential detects lost updates.
var DebugDropTailRecord bool

// Open opens (or creates) the log at path, scans the existing contents,
// truncates any torn tail, and positions the log for appending. The
// returned ScanResult holds the valid record prefix for the caller to
// replay. A file that is not a WAL at all fails with ErrCorruptWAL.
func Open(path string, opts Options) (*Log, *ScanResult, error) {
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	res, err := Scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if DebugDropTailRecord && len(res.Records) > 0 {
		res.Records = res.Records[:len(res.Records)-1]
	}
	l := &Log{f: f, fs: opts.FS, path: path, opts: opts, nextLSN: 1, size: res.ValidBytes}
	if n := len(res.Records); n > 0 {
		l.nextLSN = res.Records[n-1].LSN + 1
	}
	if res.ValidBytes == 0 {
		// Empty (or header-less zero-length) file: write a fresh header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.WriteAt(appendHeader(nil), 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.size = HeaderSize
	} else if fi, err := f.Stat(); err == nil && fi.Size() > res.ValidBytes {
		// Torn tail from a crash mid-append: drop it so new frames land on
		// a valid boundary.
		if err := f.Truncate(res.ValidBytes); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(l.size, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	l.startInterval()
	return l, res, nil
}

// startInterval launches the background sync goroutine when the policy
// asks for it. Callers hold no lock (Open) or the lock (SetPolicy).
func (l *Log) startInterval() {
	if l.opts.Fsync != FsyncInterval || l.stopInterval != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	l.stopInterval, l.doneInterval = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(l.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				l.Sync()
			}
		}
	}()
}

func (l *Log) stopIntervalLocked() {
	if l.stopInterval != nil {
		close(l.stopInterval)
		l.stopInterval = nil
		l.mu.Unlock()
		<-l.doneInterval
		l.mu.Lock()
		l.doneInterval = nil
	}
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastLSN returns the LSN of the most recent append (0 if none yet).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// EnsureLSN advances the sequence so the next append gets at least
// lsn+1. Recovery calls this with the checkpoint LSN, which may exceed
// everything in a freshly rotated log.
func (l *Log) EnsureLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn+1 > l.nextLSN {
		l.nextLSN = lsn + 1
	}
}

// Size returns the current log size in bytes (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Policy returns the current fsync policy.
func (l *Log) Policy() FsyncPolicy {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Fsync
}

// SetPolicy changes the fsync policy at runtime (SET WAL_FSYNC).
// Tightening to always syncs immediately so the guarantee holds from this
// statement on.
func (l *Log) SetPolicy(p FsyncPolicy) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Fsync == p {
		return nil
	}
	if p != FsyncInterval {
		l.stopIntervalLocked()
	}
	l.opts.Fsync = p
	if l.closed {
		return nil
	}
	if p == FsyncInterval {
		l.startInterval()
	}
	if p == FsyncAlways && l.dirty {
		return l.syncLocked()
	}
	return nil
}

// Append assigns the next LSN to rec, writes its frame, and syncs per
// policy. On any failure the frame is rolled back (truncated away) so the
// on-disk log only ever contains acknowledged records; the caller must
// then abort the statement without applying it. Returns the assigned LSN.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, fmt.Errorf("wal: log disabled after unrecoverable append failure: %w", l.broken)
	}
	rec.LSN = l.nextLSN
	frame := AppendFrame(nil, rec)
	if err := l.fault("write"); err != nil {
		return 0, fmt.Errorf("wal append: %w", err)
	}
	// A short write — n < len(frame) — can come back with err == nil from
	// a pathological filesystem. Treating it as success would let size
	// accounting and OnAppend drift from what is actually on disk, so it
	// is an error like any other partial write, and the truncate below
	// removes whatever prefix landed.
	if n, err := l.f.Write(frame); err != nil || n != len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		l.rollbackLocked(err)
		return 0, fmt.Errorf("wal append: %w", err)
	}
	if l.opts.Fsync == FsyncAlways {
		if err := l.syncAfterAppendLocked(); err != nil {
			// The frame hit the page cache but not stable storage; since
			// the statement will be aborted, the record must not survive
			// to replay.
			l.rollbackLocked(err)
			return 0, fmt.Errorf("wal sync: %w", err)
		}
	} else {
		l.dirty = true
	}
	l.size += int64(len(frame))
	l.lastFrameLen = int64(len(frame))
	l.nextLSN++
	if l.opts.OnAppend != nil {
		l.opts.OnAppend(len(frame))
	}
	return rec.LSN, nil
}

// RollbackLast removes the most recently appended record if its LSN is
// lsn. The engine calls this when a logged statement fails to apply
// (log-before-apply ordering), keeping the on-disk log an exact record of
// applied history. Only the newest record can be removed, and only before
// any later append or rotation.
func (l *Log) RollbackLast(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	if lsn == 0 || lsn != l.nextLSN-1 || l.lastFrameLen == 0 {
		return fmt.Errorf("wal: cannot roll back LSN %d (latest is %d)", lsn, l.nextLSN-1)
	}
	newSize := l.size - l.lastFrameLen
	if err := l.f.Truncate(newSize); err != nil {
		l.broken = fmt.Errorf("truncate during statement rollback: %v", err)
		return l.broken
	}
	if _, err := l.f.Seek(newSize, 0); err != nil {
		l.broken = fmt.Errorf("reposition during statement rollback: %v", err)
		return l.broken
	}
	l.size = newSize
	l.lastFrameLen = 0
	l.nextLSN--
	if l.opts.Fsync == FsyncAlways {
		// Make the removal as durable as the append was. On failure the
		// rollback itself succeeded — the record is gone from the file —
		// but the truncation may not have reached stable storage yet, so
		// mark the log dirty and let the next interval/explicit sync (or
		// the FsyncAlways sync of the next append) retry.
		if err := l.f.Sync(); err != nil {
			l.dirty = true
		} else {
			l.dirty = false
			if l.opts.OnSync != nil {
				l.opts.OnSync()
			}
		}
	}
	if l.opts.OnRollback != nil {
		l.opts.OnRollback()
	}
	return nil
}

// Broken returns the unrecoverable-append error that disabled the log, or
// nil while the log is usable. A broken log refuses appends until Rotate
// replaces the file; the engine uses this to distinguish a transient
// injected fault (statement aborted, log fine) from a log that can no
// longer accept any write (degrade to read-only and heal).
func (l *Log) Broken() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// rollbackLocked undoes a failed append by truncating back to the last
// acknowledged frame; if even that fails the log is marked broken and
// refuses further appends.
func (l *Log) rollbackLocked(cause error) {
	if err := l.f.Truncate(l.size); err != nil {
		l.broken = fmt.Errorf("%v (truncate after failed append: %v)", cause, err)
		return
	}
	if _, err := l.f.Seek(l.size, 0); err != nil {
		l.broken = fmt.Errorf("%v (reposition after failed append: %v)", cause, err)
	}
}

// syncAfterAppendLocked syncs for the FsyncAlways path.
func (l *Log) syncAfterAppendLocked() error {
	if err := l.fault("sync"); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	if l.opts.OnSync != nil {
		l.opts.OnSync()
	}
	return nil
}

// Sync flushes appended frames to stable storage if any are pending.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || !l.dirty {
		return nil
	}
	if err := l.fault("sync"); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	if l.opts.OnSync != nil {
		l.opts.OnSync()
	}
	return nil
}

// Rotate atomically replaces the log with a fresh empty one. Call only
// after a checkpoint covering every logged record is durably in place:
// records carry LSNs and recovery skips those at or below the checkpoint
// LSN, so a crash before the rotate merely replays covered records as
// no-ops, and a crash after it finds the empty log. The LSN sequence
// continues; it never restarts.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.fault("rotate"); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	tmp := l.path + ".tmp"
	nf, err := l.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	cleanup := func(err error) error {
		nf.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal rotate: %w", err)
	}
	if n, err := nf.Write(appendHeader(nil)); err != nil || n != HeaderSize {
		if err == nil {
			err = io.ErrShortWrite
		}
		return cleanup(err)
	}
	if err := nf.Sync(); err != nil {
		return cleanup(err)
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		return cleanup(err)
	}
	l.fs.SyncDir(filepath.Dir(l.path))
	l.f.Close()
	l.f = nf
	l.size = HeaderSize
	l.dirty = false
	l.broken = nil
	l.lastFrameLen = 0
	if _, err := nf.Seek(HeaderSize, 0); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	return nil
}

// Close syncs pending frames and closes the file. Further appends fail
// with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.stopIntervalLocked()
	var err error
	if l.broken == nil {
		err = l.syncLocked()
	}
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the file descriptor WITHOUT syncing — the crash-test
// hook. Whatever the OS already has is what recovery will see.
func (l *Log) Abandon() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.stopIntervalLocked()
	l.closed = true
	l.f.Close()
}

func (l *Log) fault(op string) error {
	if l.opts.FaultHook == nil {
		return nil
	}
	return l.opts.FaultHook(op)
}
