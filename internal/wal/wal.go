// Package wal implements the engine's write-ahead log: an append-only,
// length-prefixed, CRC32-checksummed record log of logical statements
// (DML/DDL as SQL text plus bound parameters), the fsync policies that
// govern its durability/latency trade-off, and the atomic-rename file
// protocol checkpoints use.
//
// The log is *logical*: it records statements, not tuples. Replay is
// deterministic because the engine's slot allocator is deterministic (a
// LIFO free list), and every record pins the target table's pre-apply
// allocation state so recovery can detect divergence instead of silently
// rebuilding a different database. Graph views are never logged — they are
// derived state, rebuilt from the recovered relations (§3.3).
//
// On-disk layout:
//
//	file   = header frame*
//	header = "GRWAL" 0x00 version(u16 LE)             (8 bytes)
//	frame  = length(u32 LE) crc32(u32 LE) payload     (crc is IEEE, over payload)
//
// A reader accepts the longest prefix of structurally valid frames and
// treats everything after the first bad length/checksum/short read as a
// torn tail from a crash mid-append; recovery truncates the file there. A
// file whose header is unreadable is not a WAL at all and surfaces as
// ErrCorruptWAL.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"grfusion/internal/types"
)

// ErrCorruptWAL reports a log (or checkpoint) file that cannot be used at
// all: a bad or truncated header, or a record whose CRC-valid payload is
// internally inconsistent. Torn tails are NOT this error — they are the
// expected crash artifact and are handled by truncating to the last valid
// frame.
var ErrCorruptWAL = errors.New("wal: corrupt log")

// Header and frame constants (pinned by TestFrameFormatGolden).
const (
	// Magic is the 8-byte file header: "GRWAL", a zero byte, and the
	// format version as a little-endian uint16.
	magic         = "GRWAL\x00"
	formatVersion = 1
	HeaderSize    = 8
	frameOverhead = 8 // u32 length + u32 crc
	// maxPayload bounds a single frame; anything larger in a length prefix
	// is treated as corruption, not an allocation request.
	maxPayload = 1 << 28 // 256 MiB
)

// Record kinds.
const (
	recStatement = 1
)

// Record flag bits.
const (
	flagAllocPin = 1 << 0
	flagParams   = 1 << 1
)

// Record is one logical statement: the SQL text, optional bound
// parameters (for prepared DML), and an optional allocation pin — the
// target table's next fresh slot and free-list depth observed before the
// statement applied. Replay re-checks the pin; a mismatch means the log
// and checkpoint do not describe the same history.
type Record struct {
	LSN uint64
	// SQL is the statement text exactly as the client issued it.
	SQL string
	// Params are the bound values of a prepared DML execution (nil for
	// ad-hoc statements).
	Params []types.Value
	// Table, NextSlot and FreeDepth pin the deterministic row-id
	// allocation state of the DML target before the statement applied.
	// Table is empty when the statement has no resolvable target (DDL, or
	// a statement that failed name resolution).
	Table     string
	NextSlot  uint64
	FreeDepth uint32
}

// appendHeader appends the 8-byte file header.
func appendHeader(b []byte) []byte {
	b = append(b, magic...)
	return binary.LittleEndian.AppendUint16(b, formatVersion)
}

// checkHeader validates the 8-byte file header.
func checkHeader(h []byte) error {
	if len(h) < HeaderSize || string(h[:len(magic)]) != magic {
		return fmt.Errorf("%w: bad file header", ErrCorruptWAL)
	}
	if v := binary.LittleEndian.Uint16(h[len(magic):HeaderSize]); v != formatVersion {
		return fmt.Errorf("%w: unsupported format version %d", ErrCorruptWAL, v)
	}
	return nil
}

// encodeRecord appends rec as payload bytes (no frame wrapper).
func encodeRecord(b []byte, rec *Record) []byte {
	b = append(b, recStatement)
	b = binary.LittleEndian.AppendUint64(b, rec.LSN)
	var flags byte
	if rec.Table != "" {
		flags |= flagAllocPin
	}
	if rec.Params != nil {
		flags |= flagParams
	}
	b = append(b, flags)
	if flags&flagAllocPin != 0 {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.Table)))
		b = append(b, rec.Table...)
		b = binary.LittleEndian.AppendUint64(b, rec.NextSlot)
		b = binary.LittleEndian.AppendUint32(b, rec.FreeDepth)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rec.SQL)))
	b = append(b, rec.SQL...)
	if flags&flagParams != 0 {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.Params)))
		for _, v := range rec.Params {
			b = appendValue(b, v)
		}
	}
	return b
}

// appendValue appends one bound parameter value, kind-tagged.
func appendValue(b []byte, v types.Value) []byte {
	b = append(b, uint8(v.Kind))
	switch v.Kind {
	case types.KindBool:
		if v.B {
			return append(b, 1)
		}
		return append(b, 0)
	case types.KindInt:
		return binary.LittleEndian.AppendUint64(b, uint64(v.I))
	case types.KindFloat:
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case types.KindString:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v.S)))
		return append(b, v.S...)
	default: // NULL (graph-element kinds never appear as DML parameters)
		return b
	}
}

// payloadReader decodes record payloads with bounds checking; any overrun
// flags the payload as corrupt.
type payloadReader struct {
	b   []byte
	i   int
	bad bool
}

func (r *payloadReader) u8() byte {
	if r.i+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.i]
	r.i++
	return v
}

func (r *payloadReader) u16() uint16 {
	if r.i+2 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.i:])
	r.i += 2
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.i+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.i:])
	r.i += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.i+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.i:])
	r.i += 8
	return v
}

func (r *payloadReader) str(n int) string {
	if n < 0 || r.i+n > len(r.b) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.i : r.i+n])
	r.i += n
	return s
}

// decodeRecord parses one CRC-valid payload. A payload that fails to
// decode is corruption the checksum did not protect against (or a frame
// written by a future format) and yields ErrCorruptWAL.
func decodeRecord(payload []byte) (*Record, error) {
	r := &payloadReader{b: payload}
	if kind := r.u8(); kind != recStatement {
		return nil, fmt.Errorf("%w: unknown record kind %d", ErrCorruptWAL, kind)
	}
	rec := &Record{LSN: r.u64()}
	flags := r.u8()
	if flags&flagAllocPin != 0 {
		rec.Table = r.str(int(r.u16()))
		rec.NextSlot = r.u64()
		rec.FreeDepth = r.u32()
	}
	rec.SQL = r.str(int(r.u32()))
	if flags&flagParams != 0 {
		n := int(r.u16())
		rec.Params = make([]types.Value, 0, min(n, 64))
		for j := 0; j < n && !r.bad; j++ {
			rec.Params = append(rec.Params, decodeValue(r))
		}
	}
	if r.bad || r.i != len(payload) {
		return nil, fmt.Errorf("%w: malformed record payload", ErrCorruptWAL)
	}
	return rec, nil
}

func decodeValue(r *payloadReader) types.Value {
	switch types.Kind(r.u8()) {
	case types.KindBool:
		return types.Value{Kind: types.KindBool, B: r.u8() != 0}
	case types.KindInt:
		return types.Value{Kind: types.KindInt, I: int64(r.u64())}
	case types.KindFloat:
		return types.Value{Kind: types.KindFloat, F: math.Float64frombits(r.u64())}
	case types.KindString:
		return types.Value{Kind: types.KindString, S: r.str(int(r.u32()))}
	case types.KindNull:
		return types.Value{}
	default:
		r.bad = true
		return types.Value{}
	}
}

// AppendFrame appends rec to b as a complete frame (length, CRC,
// payload) and returns the extended slice.
func AppendFrame(b []byte, rec *Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	b = encodeRecord(b, rec)
	payload := b[start+frameOverhead:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b
}

// ScanResult is the outcome of reading a log file.
type ScanResult struct {
	// Records is the longest valid record prefix, in append order.
	Records []*Record
	// ValidBytes is the file offset just past the last valid frame
	// (including the header). Everything after it is a torn tail.
	ValidBytes int64
	// Torn reports that bytes after ValidBytes were unreadable and should
	// be truncated away.
	Torn bool
	// TornReason says what ended the scan when Torn is set.
	TornReason string
}

// Scan reads a WAL byte stream and returns its valid record prefix.
// It returns ErrCorruptWAL only when the file cannot be a WAL at all (bad
// header) or a CRC-valid frame carries a malformed payload; a torn or
// bit-flipped tail is reported through the ScanResult instead.
func Scan(r io.Reader) (*ScanResult, error) {
	var hdr [HeaderSize]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		full := appendHeader(nil)
		if n == 0 || string(hdr[:n]) == string(full[:n]) {
			// Zero-length file, or a header torn mid-write at creation:
			// treat as an empty log.
			return &ScanResult{ValidBytes: 0, Torn: n > 0, TornReason: "short file header"}, nil
		}
		return nil, fmt.Errorf("%w: short file header", ErrCorruptWAL)
	}
	if err := checkHeader(hdr[:]); err != nil {
		return nil, err
	}
	res := &ScanResult{ValidBytes: HeaderSize}
	var fh [frameOverhead]byte
	var lastLSN uint64
	for {
		if _, err := io.ReadFull(r, fh[:]); err != nil {
			if err != io.EOF {
				res.Torn, res.TornReason = true, "short frame header"
			}
			return res, nil
		}
		length := binary.LittleEndian.Uint32(fh[:4])
		sum := binary.LittleEndian.Uint32(fh[4:])
		if length > maxPayload {
			res.Torn, res.TornReason = true, fmt.Sprintf("frame length %d exceeds limit", length)
			return res, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			res.Torn, res.TornReason = true, "short frame payload"
			return res, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			res.Torn, res.TornReason = true, "frame checksum mismatch"
			return res, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The checksum matched but the payload is nonsense: this was
			// written corrupt (or by a future version), not torn.
			return nil, err
		}
		if rec.LSN <= lastLSN {
			return nil, fmt.Errorf("%w: LSN %d not monotonic after %d", ErrCorruptWAL, rec.LSN, lastLSN)
		}
		lastLSN = rec.LSN
		res.Records = append(res.Records, rec)
		res.ValidBytes += int64(frameOverhead) + int64(length)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
