package wal

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"grfusion/internal/types"
)

func mustOpen(t *testing.T, path string, opts Options) (*Log, *ScanResult) {
	t.Helper()
	l, res, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, res
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, res := mustOpen(t, path, Options{Fsync: FsyncOff})
	if len(res.Records) != 0 || res.Torn {
		t.Fatalf("fresh log: unexpected scan %+v", res)
	}
	want := []*Record{
		{SQL: "CREATE TABLE t (id BIGINT, PRIMARY KEY (id))"},
		{SQL: "INSERT INTO t VALUES (1)", Table: "t", NextSlot: 1},
		{SQL: "INSERT INTO t VALUES (?)", Table: "t", NextSlot: 2,
			Params: []types.Value{types.NewInt(2)}},
		{SQL: "DELETE FROM t WHERE id = 1", Table: "t", NextSlot: 3, FreeDepth: 0},
		{SQL: "INSERT INTO t VALUES (?, ?, ?, ?)", Table: "t", NextSlot: 3, FreeDepth: 1,
			Params: []types.Value{types.Null(), types.NewBool(true),
				types.NewFloat(2.5), types.NewString("héllo")}},
	}
	for i, rec := range want {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn %d, want %d", i, lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, res2 := mustOpen(t, path, Options{Fsync: FsyncOff})
	if res2.Torn {
		t.Fatalf("clean close scanned as torn: %s", res2.TornReason)
	}
	if len(res2.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(res2.Records), len(want))
	}
	for i, got := range res2.Records {
		w := want[i]
		if got.LSN != uint64(i+1) || got.SQL != w.SQL || got.Table != w.Table ||
			got.NextSlot != w.NextSlot || got.FreeDepth != w.FreeDepth ||
			len(got.Params) != len(w.Params) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, w)
		}
		for j := range w.Params {
			if types.Compare(got.Params[j], w.Params[j]) != 0 && !(got.Params[j].IsNull() && w.Params[j].IsNull()) {
				t.Fatalf("record %d param %d: got %v want %v", i, j, got.Params[j], w.Params[j])
			}
		}
	}
}

// TestFrameFormatGolden pins the on-disk byte layout. If this test fails
// you have changed the WAL format: bump formatVersion and write migration
// logic — do NOT just update the hex.
func TestFrameFormatGolden(t *testing.T) {
	var b []byte
	b = appendHeader(b)
	b = AppendFrame(b, &Record{LSN: 1, SQL: "CREATE TABLE t (id BIGINT)"})
	b = AppendFrame(b, &Record{LSN: 2, SQL: "INSERT INTO t VALUES (?)",
		Table: "t", NextSlot: 7, FreeDepth: 3,
		Params: []types.Value{types.NewInt(42)}})
	got := hex.EncodeToString(b)
	if got != goldenFrames {
		t.Fatalf("frame format changed:\n got %s\nwant %s", got, goldenFrames)
	}
}

func TestScanTornTails(t *testing.T) {
	var full []byte
	full = appendHeader(full)
	full = AppendFrame(full, &Record{LSN: 1, SQL: "INSERT INTO t VALUES (1)", Table: "t", NextSlot: 1})
	frame2Start := len(full)
	full = AppendFrame(full, &Record{LSN: 2, SQL: "INSERT INTO t VALUES (2)", Table: "t", NextSlot: 2})

	cases := []struct {
		name      string
		data      []byte
		wantRecs  int
		wantTorn  bool
		wantValid int64
	}{
		{"clean", full, 2, false, int64(len(full))},
		{"exact frame boundary", full[:frame2Start], 1, false, int64(frame2Start)},
		{"mid frame header", full[:frame2Start+3], 1, true, int64(frame2Start)},
		{"mid payload", full[:len(full)-5], 1, true, int64(frame2Start)},
		{"empty file", nil, 0, false, 0},
		{"torn header", full[:5], 0, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Scan(bytes.NewReader(tc.data))
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			if len(res.Records) != tc.wantRecs || res.Torn != tc.wantTorn || res.ValidBytes != tc.wantValid {
				t.Fatalf("got recs=%d torn=%v valid=%d, want recs=%d torn=%v valid=%d (%s)",
					len(res.Records), res.Torn, res.ValidBytes, tc.wantRecs, tc.wantTorn, tc.wantValid, res.TornReason)
			}
		})
	}

	// A flipped bit in the last frame's payload: checksum catches it, the
	// scan keeps the prefix.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-3] ^= 0x40
	res, err := Scan(bytes.NewReader(flipped))
	if err != nil {
		t.Fatalf("scan flipped: %v", err)
	}
	if len(res.Records) != 1 || !res.Torn || res.ValidBytes != int64(frame2Start) {
		t.Fatalf("flipped tail: recs=%d torn=%v valid=%d", len(res.Records), res.Torn, res.ValidBytes)
	}

	// Garbage that is not a WAL at all is the typed corruption error.
	if _, err := Scan(bytes.NewReader([]byte("definitely not a wal file"))); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("garbage header: err=%v, want ErrCorruptWAL", err)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var full []byte
	full = appendHeader(full)
	full = AppendFrame(full, &Record{LSN: 1, SQL: "A"})
	valid := len(full)
	full = AppendFrame(full, &Record{LSN: 2, SQL: "B"})
	torn := full[:len(full)-2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	l, res := mustOpen(t, path, Options{Fsync: FsyncAlways})
	if len(res.Records) != 1 || !res.Torn {
		t.Fatalf("scan: recs=%d torn=%v", len(res.Records), res.Torn)
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(valid) {
		t.Fatalf("file size %d after open, want %d (torn tail truncated)", fi.Size(), valid)
	}
	// The next append must continue the LSN sequence past the lost record.
	lsn, err := l.Append(&Record{SQL: "C"})
	if err != nil || lsn != 2 {
		t.Fatalf("append after truncate: lsn=%d err=%v, want 2", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, res2 := mustOpen(t, path, Options{})
	if len(res2.Records) != 2 || res2.Records[1].SQL != "C" {
		t.Fatalf("reopen: %+v", res2.Records)
	}
}

func TestAppendRollbackOnFault(t *testing.T) {
	var failNext string
	opts := Options{Fsync: FsyncAlways, FaultHook: func(op string) error {
		if op == failNext {
			failNext = ""
			return fmt.Errorf("injected %s error", op)
		}
		return nil
	}}
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, opts)
	if _, err := l.Append(&Record{SQL: "A"}); err != nil {
		t.Fatal(err)
	}

	failNext = "write"
	if _, err := l.Append(&Record{SQL: "B"}); err == nil {
		t.Fatal("append with write fault succeeded")
	}
	failNext = "sync"
	if _, err := l.Append(&Record{SQL: "C"}); err == nil {
		t.Fatal("append with sync fault succeeded")
	}
	// After both failures the log must hold exactly record A and hand out
	// LSN 2 next: failed appends leave no trace.
	if lsn, err := l.Append(&Record{SQL: "D"}); err != nil || lsn != 2 {
		t.Fatalf("append after faults: lsn=%d err=%v", lsn, err)
	}
	l.Close()
	_, res := mustOpen(t, path, Options{})
	if len(res.Records) != 2 || res.Records[0].SQL != "A" || res.Records[1].SQL != "D" || res.Torn {
		t.Fatalf("recovered %+v torn=%v", res.Records, res.Torn)
	}
}

func TestFsyncPolicies(t *testing.T) {
	var syncs int
	opts := Options{Fsync: FsyncAlways, OnSync: func() { syncs++ }}
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, opts)
	l.Append(&Record{SQL: "A"})
	l.Append(&Record{SQL: "B"})
	if syncs != 2 {
		t.Fatalf("always: %d syncs after 2 appends", syncs)
	}
	if err := l.SetPolicy(FsyncOff); err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{SQL: "C"})
	if syncs != 2 {
		t.Fatalf("off: sync ran on append")
	}
	// Tightening back to always flushes the pending frame immediately.
	if err := l.SetPolicy(FsyncAlways); err != nil {
		t.Fatal(err)
	}
	if syncs != 3 {
		t.Fatalf("tighten to always: pending frame not flushed (syncs=%d)", syncs)
	}
}

func TestFsyncIntervalBackground(t *testing.T) {
	var mu = make(chan int, 64)
	opts := Options{Fsync: FsyncInterval, Interval: 5 * time.Millisecond,
		OnSync: func() { mu <- 1 }}
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, opts)
	if _, err := l.Append(&Record{SQL: "A"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-mu:
	case <-time.After(5 * time.Second):
		t.Fatal("interval sync never fired")
	}
	l.Close()
}

func TestRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, Options{Fsync: FsyncOff})
	l.Append(&Record{SQL: "A"})
	l.Append(&Record{SQL: "B"})
	if err := l.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if l.Size() != HeaderSize {
		t.Fatalf("size %d after rotate, want header only", l.Size())
	}
	// LSNs keep counting across the rotation.
	if lsn, err := l.Append(&Record{SQL: "C"}); err != nil || lsn != 3 {
		t.Fatalf("append after rotate: lsn=%d err=%v", lsn, err)
	}
	l.Close()
	_, res := mustOpen(t, path, Options{})
	if len(res.Records) != 1 || res.Records[0].LSN != 3 {
		t.Fatalf("after rotate+reopen: %+v", res.Records)
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, Options{})
	l.Close()
	if _, err := l.Append(&Record{SQL: "A"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "good" {
		t.Fatalf("content %q", got)
	}

	// A crash at every protocol point must leave either the old or the new
	// complete file, never a torn mix — and never destroy the old file.
	boom := errors.New("injected crash")
	for _, pt := range []CrashPoint{CrashAfterTemp, CrashAfterSync, CrashAfterRename} {
		err := WriteFileAtomicCrash(path, func(w io.Writer) error {
			_, err := w.Write([]byte("new-" + string(pt)))
			return err
		}, func(p CrashPoint) error {
			if p == pt {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("crash at %s: err=%v", pt, err)
		}
		got, _ := os.ReadFile(path)
		switch pt {
		case CrashAfterTemp, CrashAfterSync:
			if string(got) != "good" {
				t.Fatalf("crash at %s clobbered target: %q", pt, got)
			}
		case CrashAfterRename:
			if string(got) != "new-"+string(pt) {
				t.Fatalf("crash at %s: target %q, want new content", pt, got)
			}
		}
	}

	// A failing producer leaves the old file intact and no temp litter.
	os.WriteFile(path, []byte("keep"), 0o644)
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return errors.New("producer failed")
	}); err == nil {
		t.Fatal("producer error swallowed")
	}
	if got, _ := os.ReadFile(path); string(got) != "keep" {
		t.Fatalf("failed write clobbered target: %q", got)
	}
	if Exists(path + ".tmp") {
		t.Fatal("temp file left behind after failed write")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true}, {"ALWAYS", FsyncAlways, true},
		{"Interval", FsyncInterval, true}, {"off", FsyncOff, true},
		{"sometimes", 0, false}, {"", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != "" {
			if _, err := ParseFsyncPolicy(got.String()); err != nil {
				t.Fatalf("round trip %v: %v", got, err)
			}
		}
	}
}
