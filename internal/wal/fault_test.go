package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"grfusion/internal/faultfs"
)

// TestAppendShortWrite proves a short write — including the pathological
// silent one where the filesystem reports success for fewer bytes than
// requested — never lets the log's size accounting or OnAppend drift from
// what is actually on disk: the statement fails, the torn prefix is
// truncated away, and the next append reuses the same LSN.
func TestAppendShortWrite(t *testing.T) {
	cases := []struct {
		name  string
		short int   // bytes the fault lets through
		err   error // error returned alongside; nil = silent short write
		want  error // what Append must classify it as
	}{
		{name: "silent-prefix", short: 5, err: nil, want: io.ErrShortWrite},
		{name: "silent-zero", short: 0, err: nil, want: io.ErrShortWrite},
		{name: "torn-with-eio", short: 5, err: syscall.EIO, want: syscall.EIO},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ffs := faultfs.NewFaulty(nil, 1)
			path := filepath.Join(t.TempDir(), "wal.log")
			var appended int
			l, _ := mustOpen(t, path, Options{
				Fsync:    FsyncOff,
				FS:       ffs,
				OnAppend: func(int) { appended++ },
			})
			if _, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (1)"}); err != nil {
				t.Fatalf("clean append: %v", err)
			}
			sizeBefore, lsnBefore := l.Size(), l.NextLSN()

			ffs.ArmShortWrite(tc.short, tc.err)
			_, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (2)"})
			if err == nil {
				t.Fatal("short write reported as successful append")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("append error = %v, want %v", err, tc.want)
			}
			if got := l.Size(); got != sizeBefore {
				t.Fatalf("size drifted after short write: %d, want %d", got, sizeBefore)
			}
			if appended != 1 {
				t.Fatalf("OnAppend fired %d times, want 1 (failed append must not count)", appended)
			}

			// The same LSN is reissued and the log is fully usable.
			lsn, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (3)"})
			if err != nil {
				t.Fatalf("append after short write: %v", err)
			}
			if lsn != lsnBefore {
				t.Fatalf("LSN after short write = %d, want %d", lsn, lsnBefore)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			_, res := mustOpen(t, path, Options{Fsync: FsyncOff})
			if res.Torn {
				t.Fatalf("log torn after rolled-back short write: %s", res.TornReason)
			}
			if len(res.Records) != 2 {
				t.Fatalf("got %d records, want 2", len(res.Records))
			}
			if res.Records[1].SQL != "INSERT INTO t VALUES (3)" {
				t.Fatalf("record 2 = %q, want the post-fault append", res.Records[1].SQL)
			}
		})
	}
}

// TestRollbackLastSyncFailure proves the FsyncAlways rollback path no
// longer swallows a failed fsync: the log stays usable, is marked dirty so
// the next sync retries, and the rollback is still counted.
func TestRollbackLastSyncFailure(t *testing.T) {
	ffs := faultfs.NewFaulty(nil, 1)
	path := filepath.Join(t.TempDir(), "wal.log")
	var syncs, rollbacks int
	l, _ := mustOpen(t, path, Options{
		Fsync:      FsyncAlways,
		FS:         ffs,
		OnSync:     func() { syncs++ },
		OnRollback: func() { rollbacks++ },
	})
	lsn, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (1)"})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	syncsAfterAppend := syncs

	// RollbackLast performs truncate (eligible op 1) then sync (op 2);
	// fail the sync only.
	ffs.Arm(2, syscall.EIO)
	if err := l.RollbackLast(lsn); err != nil {
		t.Fatalf("rollback with failing sync must still succeed (record is gone): %v", err)
	}
	if rollbacks != 1 {
		t.Fatalf("OnRollback fired %d times, want 1", rollbacks)
	}
	if syncs != syncsAfterAppend {
		t.Fatalf("OnSync fired for a failed sync (count %d, want %d)", syncs, syncsAfterAppend)
	}
	if err := l.Broken(); err != nil {
		t.Fatalf("a failed best-effort rollback sync must not break the log: %v", err)
	}

	// The failed sync left the log dirty; an explicit Sync retries it.
	if err := l.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	if syncs != syncsAfterAppend+1 {
		t.Fatalf("retry sync did not fire OnSync (count %d, want %d)", syncs, syncsAfterAppend+1)
	}
	// And a second Sync is a no-op: the dirty flag really was cleared.
	if err := l.Sync(); err != nil {
		t.Fatalf("idle sync: %v", err)
	}
	if syncs != syncsAfterAppend+1 {
		t.Fatalf("idle sync fired OnSync; dirty flag not cleared")
	}

	// The rollback took effect on disk despite the failed sync.
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, res := mustOpen(t, path, Options{Fsync: FsyncOff})
	if len(res.Records) != 0 {
		t.Fatalf("rolled-back record survived: %d records", len(res.Records))
	}
}

// TestRotateENOSPCEveryPoint injects ENOSPC at every fault-eligible point
// of the rotate protocol (tmp open, header write, fsync, rename) and
// proves each failure leaves the old log fully usable, then that a clean
// rotate still succeeds afterwards.
func TestRotateENOSPCEveryPoint(t *testing.T) {
	ffs := faultfs.NewFaulty(nil, 1)
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path, Options{Fsync: FsyncOff, FS: ffs})
	if _, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (1)"}); err != nil {
		t.Fatalf("append: %v", err)
	}

	// Measure how many eligible ops one clean rotate performs.
	before := ffs.Ops()
	if err := l.Rotate(); err != nil {
		t.Fatalf("clean rotate: %v", err)
	}
	perRotate := ffs.Ops() - before
	if perRotate < 3 {
		t.Fatalf("rotate performed only %d eligible ops; fault points missing", perRotate)
	}

	for k := int64(1); k <= perRotate; k++ {
		t.Run(fmt.Sprintf("fault-point-%d", k), func(t *testing.T) {
			if _, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (2)"}); err != nil {
				t.Fatalf("append before rotate: %v", err)
			}
			sizeBefore := l.Size()
			ffs.Arm(k, syscall.ENOSPC)
			err := l.Rotate()
			if err == nil {
				t.Fatalf("rotate with ENOSPC at op %d succeeded", k)
			}
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("rotate error = %v, want ENOSPC", err)
			}
			if got := l.Size(); got != sizeBefore {
				t.Fatalf("failed rotate changed size: %d, want %d", got, sizeBefore)
			}
			// No tmp file left behind.
			if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("failed rotate left tmp file (stat err %v)", err)
			}
			// The old log still appends and rolls back normally.
			lsn, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (3)"})
			if err != nil {
				t.Fatalf("append after failed rotate: %v", err)
			}
			if err := l.RollbackLast(lsn); err != nil {
				t.Fatalf("rollback after failed rotate: %v", err)
			}
		})
	}

	ffs.Calm()
	if err := l.Rotate(); err != nil {
		t.Fatalf("rotate after faults cleared: %v", err)
	}
	if got := l.Size(); got != HeaderSize {
		t.Fatalf("rotated log size = %d, want %d", got, HeaderSize)
	}
	if _, err := l.Append(&Record{SQL: "INSERT INTO t VALUES (4)"}); err != nil {
		t.Fatalf("append to rotated log: %v", err)
	}
}

// TestWriteFileAtomicENOSPCEveryPoint injects ENOSPC at every eligible
// point of the atomic-write protocol and proves the target file is intact
// (old content, byte for byte) and the temp file removed after each
// failure, then that a clean write still replaces the content.
func TestWriteFileAtomicENOSPCEveryPoint(t *testing.T) {
	ffs := faultfs.NewFaulty(nil, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.snap")
	old := []byte("the old complete checkpoint")
	put := func(content []byte) error {
		return WriteFileAtomicFS(ffs, path, func(w io.Writer) error {
			_, err := w.Write(content)
			return err
		}, nil)
	}
	before := ffs.Ops()
	if err := put(old); err != nil {
		t.Fatalf("initial atomic write: %v", err)
	}
	perWrite := ffs.Ops() - before
	if perWrite < 3 {
		t.Fatalf("atomic write performed only %d eligible ops; fault points missing", perWrite)
	}

	check := func(k int64, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("atomic write with fault at op %d succeeded", k)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("target unreadable after failed write: %v", rerr)
		}
		if string(got) != string(old) {
			t.Fatalf("target corrupted after failed write at op %d: %q", k, got)
		}
		if _, serr := os.Stat(path + ".tmp"); !errors.Is(serr, os.ErrNotExist) {
			t.Fatalf("failed write left tmp file (stat err %v)", serr)
		}
	}

	for k := int64(1); k <= perWrite; k++ {
		t.Run(fmt.Sprintf("enospc-at-op-%d", k), func(t *testing.T) {
			ffs.Arm(k, syscall.ENOSPC)
			err := put([]byte("replacement that must not land"))
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("error = %v, want ENOSPC", err)
			}
			check(k, err)
		})
	}

	// A silent short write through bufio surfaces as io.ErrShortWrite and
	// is just as harmless.
	t.Run("silent-short-write", func(t *testing.T) {
		ffs.ArmShortWrite(3, nil)
		err := put([]byte("replacement that must not land"))
		if !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("error = %v, want io.ErrShortWrite", err)
		}
		check(-1, err)
	})

	ffs.Calm()
	fresh := []byte("the new complete checkpoint")
	if err := put(fresh); err != nil {
		t.Fatalf("atomic write after faults cleared: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != string(fresh) {
		t.Fatalf("final content = %q, %v; want %q", got, err, fresh)
	}
}
