package wal

import (
	"bufio"
	"io"
	"os"
	"path/filepath"

	"grfusion/internal/faultfs"
)

// CrashPoint names a stage of the atomic-write protocol; the chaos tests
// inject crashes between stages to prove every window is safe.
type CrashPoint string

const (
	// CrashAfterTemp fires after the temp file's contents are written but
	// before fsync.
	CrashAfterTemp CrashPoint = "temp-written"
	// CrashAfterSync fires after the temp file is fsynced but before the
	// rename.
	CrashAfterSync CrashPoint = "temp-synced"
	// CrashAfterRename fires after the rename but before the directory
	// fsync.
	CrashAfterRename CrashPoint = "renamed"
)

// CrashFunc is consulted at each CrashPoint; returning a non-nil error
// simulates the process dying right there: WriteFileAtomicCrash returns
// immediately, leaving the filesystem exactly as a crash would.
type CrashFunc func(p CrashPoint) error

// WriteFileAtomic durably replaces path with the bytes produced by write:
// temp file in the same directory, fsync, atomic rename, directory fsync.
// A crash at any point leaves either the old complete file or the new
// complete file — never a torn mix. On error the previous file is intact
// and the temp file is removed.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return WriteFileAtomicFS(faultfs.OS, path, write, nil)
}

// WriteFileAtomicCrash is WriteFileAtomic with crash injection (tests
// pass a CrashFunc; production passes nil).
func WriteFileAtomicCrash(path string, write func(io.Writer) error, crash CrashFunc) error {
	return WriteFileAtomicFS(faultfs.OS, path, write, crash)
}

// WriteFileAtomicFS is the full protocol over an injectable storage layer
// (fsys nil means the real filesystem): the checkpoint writer passes the
// engine's faultfs so disk faults reach every stage — temp-file creation,
// the buffered content writes, the fsync, and the rename.
func WriteFileAtomicFS(fsys faultfs.FS, path string, write func(io.Writer) error, crash CrashFunc) error {
	if fsys == nil {
		fsys = faultfs.OS
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if crash != nil {
		if err := crash(CrashAfterTemp); err != nil {
			f.Close() // simulated death: temp file left behind, target untouched
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if crash != nil {
		if err := crash(CrashAfterSync); err != nil {
			return err
		}
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if crash != nil {
		if err := crash(CrashAfterRename); err != nil {
			return err
		}
	}
	fsys.SyncDir(filepath.Dir(path))
	return nil
}

// Exists reports whether path names an existing file.
func Exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
