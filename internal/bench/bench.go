// Package bench is the experiment harness: one entry point per table and
// figure of the paper's evaluation (§7), each returning the rows/series
// the paper reports. cmd/grbench prints them; bench_test.go wraps them in
// testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
	"grfusion/internal/graph"
	"grfusion/internal/plan"
)

// Config scales the experiments.
type Config struct {
	// Scale multiplies dataset sizes; 1.0 is the laptop-scale default.
	Scale float64
	// Queries is the number of query instances averaged per data point.
	Queries int
	// Seed drives all data and workload generation.
	Seed int64
	// MemLimit is the intermediate-memory budget given to the
	// VoltDB-style (materialized) SQLGraph runs; 0 picks a default scaled
	// to the dataset.
	MemLimit int64
	// MaxJoinHops caps the traversal depth attempted by the SQLGraph
	// baseline before declaring a timeout-equivalent (the paper stops
	// reporting SQLGraph beyond the depth where it aborts).
	MaxJoinHops int
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxJoinHops <= 0 {
		c.MaxJoinHops = 8
	}
	return c
}

// Row is one reported data point.
type Row struct {
	Experiment string  `json:"experiment"` // e.g. "fig7"
	Dataset    string  `json:"dataset"`    // e.g. "road"
	System     string  `json:"system"`     // e.g. "grfusion"
	Param      string  `json:"param"`      // e.g. "len=4"
	Metric     string  `json:"metric"`     // e.g. "avg_ms"
	Value      float64 `json:"value"`      // the measurement
	Note       string  `json:"note,omitempty"`
}

// Format renders rows as an aligned text table grouped the way the paper's
// figures read.
func Format(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-9s %-12s %-12s %-10s %14s  %s\n",
		"experiment", "dataset", "system", "param", "metric", "value", "note")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-9s %-12s %-12s %-10s %14.4f  %s\n",
			r.Experiment, r.Dataset, r.System, r.Param, r.Metric, r.Value, r.Note)
	}
	return sb.String()
}

// Dataset sizes at Scale = 1.
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 8 {
		v = 8
	}
	return v
}

// Datasets generates the four evaluation graphs (§7.1, Table 2
// stand-ins) at the configured scale.
func Datasets(cfg Config) map[string]*datagen.Dataset {
	cfg = cfg.Defaults()
	side := scaled(40, cfg.Scale) // road grid side
	return map[string]*datagen.Dataset{
		"road":    datagen.Road(side, side, cfg.Seed),
		"protein": datagen.Protein(scaled(1500, cfg.Scale), 8, cfg.Seed+1),
		"dblp":    datagen.DBLP(scaled(150, cfg.Scale), 8, cfg.Seed+2),
		"twitter": datagen.Twitter(scaled(3000, cfg.Scale), 5, cfg.Seed+3),
	}
}

// DatasetNames is the canonical reporting order.
var DatasetNames = []string{"road", "protein", "dblp", "twitter"}

// LoadGRFusion embeds a dataset into a fresh GRFusion engine and creates
// its graph view. The view name equals the dataset name.
func LoadGRFusion(d *datagen.Dataset, opts plan.Options) (*core.Engine, error) {
	return LoadGRFusionEngine(d, core.Options{Plan: opts})
}

// LoadGRFusionEngine is LoadGRFusion with full engine options, so the
// concurrency experiments can size the traversal worker pool.
func LoadGRFusionEngine(d *datagen.Dataset, opts core.Options) (*core.Engine, error) {
	eng := core.New(opts)
	dir := "DIRECTED"
	if !d.Directed {
		dir = "UNDIRECTED"
	}
	ddl := fmt.Sprintf(`
		CREATE TABLE %s_v (vid BIGINT PRIMARY KEY, name VARCHAR);
		CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR);
	`, d.Name, d.Name)
	if _, err := eng.ExecuteScript(ddl); err != nil {
		return nil, err
	}
	if err := bulkLoad(eng, d); err != nil {
		return nil, err
	}
	view := fmt.Sprintf(`
		CREATE %s GRAPH VIEW %s
		VERTEXES(ID = vid, name = name) FROM %s_v
		EDGES(ID = eid, FROM = src, TO = dst, w = w, sel = sel, lbl = lbl) FROM %s_e`,
		dir, d.Name, d.Name, d.Name)
	if _, err := eng.Execute(view); err != nil {
		return nil, err
	}
	return eng, nil
}

// bulkLoad inserts the dataset in batched INSERT statements.
func bulkLoad(eng *core.Engine, d *datagen.Dataset) error {
	var sb strings.Builder
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		_, err := eng.Execute(sb.String())
		sb.Reset()
		n = 0
		return err
	}
	for _, v := range d.Vertices {
		if n == 0 {
			fmt.Fprintf(&sb, "INSERT INTO %s_v VALUES ", d.Name)
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, '%s')", v.ID, v.Name)
		if n++; n >= 512 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	for _, e := range d.Edges {
		if n == 0 {
			fmt.Fprintf(&sb, "INSERT INTO %s_e VALUES ", d.Name)
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d, %g, %d, '%s')", e.ID, e.Src, e.Dst, e.Weight, e.Sel, e.Label)
		if n++; n >= 512 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// timeIt measures fn averaged over the pairs it is handed, in
// milliseconds. fn errors abort the measurement and surface in the note.
func timeAvgMS(n int, fn func(i int) error) (float64, string) {
	if n == 0 {
		return 0, "no queries"
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, "ABORT: " + firstLine(err.Error())
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(n) / 1000, ""
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Table2 reports the dataset properties the paper's Table 2 lists.
func Table2(cfg Config) []Row {
	cfg = cfg.Defaults()
	ds := Datasets(cfg)
	var rows []Row
	for _, name := range DatasetNames {
		d := ds[name]
		dir := 0.0
		if d.Directed {
			dir = 1.0
		}
		rows = append(rows,
			Row{Experiment: "table2", Dataset: name, System: "-", Param: "-", Metric: "vertices", Value: float64(len(d.Vertices))},
			Row{Experiment: "table2", Dataset: name, System: "-", Param: "-", Metric: "edges", Value: float64(len(d.Edges))},
			Row{Experiment: "table2", Dataset: name, System: "-", Param: "-", Metric: "avg_degree", Value: d.AvgDegree()},
			Row{Experiment: "table2", Dataset: name, System: "-", Param: "-", Metric: "directed", Value: dir},
		)
	}
	return rows
}

// pairsForLength returns query endpoint pairs at exact BFS distance l.
func pairsForLength(g *graph.Graph, l, n int, seed int64) []datagen.Pair {
	return datagen.PairsAtDistance(g, l, n, seed)
}
