package bench

import (
	"errors"
	"fmt"
	"os"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/faultfs"
	"grfusion/internal/types"
	"grfusion/internal/wal"
)

// DiskFaultBench measures the disk-fault tolerance machinery itself:
//
//   - ms_per_insert: the write path through a calm faultfs injector —
//     the tax of routing every file op through the fault layer;
//   - health_ns: Engine.Health(), which must stay lock-free so health
//     probes answer even while a write is stuck on a sick disk;
//   - degraded_reject_ms: how fast a mutating statement fails once the
//     engine is degraded (fail-fast: no disk I/O, no logging);
//   - heal_ms: disk recovers → engine back to read-write, averaged over
//     several degrade → heal cycles (probe backoff floor included).
func DiskFaultBench(cfg Config) []Row {
	cfg = cfg.Defaults()
	n := scaled(1000, cfg.Scale)
	dir, err := os.MkdirTemp("", "grfusion-bench-fault-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	ffs := faultfs.NewFaulty(nil, cfg.Seed)
	var opts core.Options
	opts.Durability = core.Durability{
		Dir: dir, Fsync: wal.FsyncOff, FS: ffs, CheckpointEvery: -1,
		HealBase: time.Millisecond, HealMax: 8 * time.Millisecond,
	}
	eng, _, err := core.Open(opts)
	if err != nil {
		panic(err)
	}
	defer eng.Kill()
	if _, err := eng.Execute(`CREATE TABLE people (id BIGINT, name VARCHAR, PRIMARY KEY (id))`); err != nil {
		panic(err)
	}
	ins, err := eng.PrepareDML("INSERT INTO people VALUES (?, ?)")
	if err != nil {
		panic(err)
	}
	next := 0
	insert := func() error {
		next++
		_, err := ins.Exec(types.NewInt(int64(next)), types.NewString(fmt.Sprintf("p%d", next)))
		return err
	}
	param := fmt.Sprintf("n=%d", n)
	point := func(metric string, value float64, note string) Row {
		return Row{Experiment: "diskfault", Dataset: "synthetic", System: "grfusion",
			Param: param, Metric: metric, Value: value, Note: note}
	}
	var rows []Row

	// Healthy write path, every file op routed through the calm injector.
	ms, note := timeAvgMS(n, func(int) error { return insert() })
	rows = append(rows, point("ms_per_insert", ms, note))

	// Health probe cost: must be cheap and lock-free.
	start := time.Now()
	for i := 0; i < n; i++ {
		_ = eng.Health()
	}
	rows = append(rows, point("health_ns", float64(time.Since(start).Nanoseconds())/float64(n), ""))

	// Degraded fail-fast: break the disk, let one write trip the degrade,
	// then time how fast further writes are rejected.
	ffs.SetRate(faultfs.OpWrite, 1)
	ffs.SetRate(faultfs.OpTruncate, 1)
	if err := insert(); !errors.Is(err, core.ErrDegraded) {
		panic(fmt.Sprintf("disk break did not degrade the engine: %v", err))
	}
	rejected := 0
	start = time.Now()
	for i := 0; i < n; i++ {
		if err := insert(); errors.Is(err, core.ErrDegraded) {
			rejected++
		}
	}
	rejectMS := float64(time.Since(start).Microseconds()) / float64(n) / 1000
	rows = append(rows, point("degraded_reject_ms", rejectMS,
		fmt.Sprintf("%d/%d rejected", rejected, n)))

	// Degrade → heal cycle time: disk comes back, probe brings the engine
	// back to read-write. Includes the probe backoff floor.
	const cycles = 5
	var healTotal time.Duration
	for c := 0; c < cycles; c++ {
		if eng.Health().State == core.StateHealthy {
			ffs.SetRate(faultfs.OpWrite, 1)
			ffs.SetRate(faultfs.OpTruncate, 1)
			if err := insert(); !errors.Is(err, core.ErrDegraded) {
				panic(fmt.Sprintf("cycle %d did not degrade: %v", c, err))
			}
		}
		ffs.Calm()
		start = time.Now()
		for eng.Health().State != core.StateHealthy {
			time.Sleep(100 * time.Microsecond)
		}
		healTotal += time.Since(start)
	}
	rows = append(rows, point("heal_ms",
		float64(healTotal.Microseconds())/cycles/1000, fmt.Sprintf("%d cycles", cycles)))
	return rows
}
