package bench

import (
	"strings"
	"testing"

	"grfusion/internal/plan"
)

// tiny returns a configuration small enough for unit testing.
func tiny() Config {
	return Config{Scale: 0.15, Queries: 2, Seed: 7, MaxJoinHops: 4}
}

func bySystem(rows []Row) map[string][]Row {
	out := map[string][]Row{}
	for _, r := range rows {
		out[r.System] = append(out[r.System], r)
	}
	return out
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(tiny())
	if len(rows) != 4*4 {
		t.Fatalf("rows: %d", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Dataset+"/"+r.Metric] = true
		if r.Metric == "vertices" && r.Value <= 0 {
			t.Errorf("%s has no vertices", r.Dataset)
		}
	}
	if !seen["twitter/directed"] {
		t.Error("missing twitter/directed stat")
	}
}

func TestFig7ProducesAllSystems(t *testing.T) {
	rows := Fig7(tiny())
	sys := bySystem(rows)
	for _, want := range []string{"grfusion", "neo4j-like", "titan-like", "sqlgraph-mat"} {
		if len(sys[want]) == 0 {
			t.Errorf("no rows for %s", want)
		}
	}
	// GRFusion must never abort.
	for _, r := range sys["grfusion"] {
		if r.Note != "" {
			t.Errorf("grfusion aborted: %+v", r)
		}
	}
}

func TestFig8And9And10Run(t *testing.T) {
	cfg := tiny()
	if rows := Fig8(cfg); len(rows) == 0 {
		t.Error("fig8 empty")
	}
	rows := Fig9(cfg)
	if len(rows) == 0 {
		t.Error("fig9 empty")
	}
	sys := bySystem(rows)
	if len(sys["grail"]) == 0 {
		t.Error("fig9 missing grail")
	}
	rows = Fig10(cfg)
	if len(rows) == 0 {
		t.Error("fig10 empty")
	}
	// Triangle counts must agree across systems (no MISMATCH notes).
	for _, r := range rows {
		if strings.Contains(r.Note, "MISMATCH") {
			t.Errorf("triangle count mismatch: %+v", r)
		}
	}
}

func TestTable3TopologyIsCompact(t *testing.T) {
	rows := Table3(tiny())
	frac := map[string]float64{}
	for _, r := range rows {
		if r.Metric == "topology_fraction" {
			frac[r.Dataset] = r.Value
		}
	}
	if len(frac) != 4 {
		t.Fatalf("fractions: %v", frac)
	}
	for ds, f := range frac {
		if f <= 0 || f >= 0.9 {
			t.Errorf("%s: topology fraction %g not compact", ds, f)
		}
	}
}

func TestFig11MaintenanceCheaperThanReextract(t *testing.T) {
	rows := Fig11(tiny())
	perDS := map[string]map[string]float64{}
	for _, r := range rows {
		if perDS[r.Dataset] == nil {
			perDS[r.Dataset] = map[string]float64{}
		}
		perDS[r.Dataset][r.System+"/"+r.Metric] = r.Value
	}
	for ds, m := range perDS {
		if m["table-only/ms_per_op"] <= 0 || m["grfusion-view/ms_per_op"] <= 0 {
			t.Errorf("%s: missing per-op measurements: %v", ds, m)
		}
		if m["graphcore-reextract/full_reextract_ms"] <= 0 {
			t.Errorf("%s: missing re-extraction cost: %v", ds, m)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	rows := Ablation(tiny())
	sys := bySystem(rows)
	for _, want := range []string{"pushdown-on", "pushdown-off", "traversal-bfs", "traversal-dfs", "traversal-rule"} {
		if len(sys[want]) == 0 {
			t.Errorf("no rows for %s", want)
		}
	}
}

func TestFormatAligns(t *testing.T) {
	out := Format([]Row{{Experiment: "fig7", Dataset: "road", System: "grfusion",
		Param: "len=2", Metric: "avg_ms", Value: 1.25, Note: ""}})
	if !strings.Contains(out, "fig7") || !strings.Contains(out, "1.2500") {
		t.Errorf("format output: %q", out)
	}
}

func TestLoadGRFusionView(t *testing.T) {
	cfg := tiny()
	d := Datasets(cfg)["road"]
	eng, err := LoadGRFusion(d, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gv, ok := eng.Catalog().GraphView("road")
	if !ok {
		t.Fatal("view missing")
	}
	if gv.G.NumVertices() != len(d.Vertices) || gv.G.NumEdges() != len(d.Edges) {
		t.Errorf("topology: %d/%d", gv.G.NumVertices(), gv.G.NumEdges())
	}
}

func TestDurabilityBenchShape(t *testing.T) {
	rows := DurabilityBench(Config{Scale: 0.02, Queries: 1, Seed: 7})
	sys := bySystem(rows)
	for _, want := range []string{"no-wal", "fsync=off", "fsync=interval", "fsync=always"} {
		if len(sys[want]) == 0 {
			t.Fatalf("no rows for system %q", want)
		}
	}
	metrics := map[string]bool{}
	for _, r := range sys["fsync=always"] {
		metrics[r.Metric] = true
		if r.Note != "" && !strings.Contains(r.Note, "records") {
			t.Errorf("%s/%s aborted: %s", r.System, r.Metric, r.Note)
		}
	}
	for _, m := range []string{"ms_per_insert", "wal_overhead_ms", "wal_bytes_per_insert",
		"replay_ms", "replay_stmts_per_ms", "checkpoint_ms"} {
		if !metrics[m] {
			t.Errorf("fsync=always missing metric %s", m)
		}
	}
	// Every durable policy pays for real frames on disk.
	for _, r := range rows {
		if r.Metric == "wal_bytes_per_insert" && r.Value <= 0 {
			t.Errorf("%s logged no bytes per insert", r.System)
		}
	}
}

func TestDiskFaultBenchShape(t *testing.T) {
	rows := DiskFaultBench(Config{Scale: 0.02, Queries: 1, Seed: 7})
	metrics := map[string]float64{}
	for _, r := range rows {
		metrics[r.Metric] = r.Value
		if strings.HasPrefix(r.Note, "ABORT") {
			t.Errorf("%s aborted: %s", r.Metric, r.Note)
		}
	}
	for _, m := range []string{"ms_per_insert", "health_ns", "degraded_reject_ms", "heal_ms"} {
		if _, ok := metrics[m]; !ok {
			t.Errorf("missing metric %s", m)
		}
	}
	// The degraded fast path never touches the disk; it must be far
	// cheaper than a logged insert (orders of magnitude in practice, but
	// the bound here only pins "not slower" to stay timer-safe in CI).
	if metrics["degraded_reject_ms"] > metrics["ms_per_insert"] {
		t.Errorf("degraded rejection (%.4fms) slower than a logged insert (%.4fms)",
			metrics["degraded_reject_ms"], metrics["ms_per_insert"])
	}
}
