package bench

import (
	"fmt"
	"math"
	"time"

	"grfusion/internal/plan"
	"grfusion/internal/types"
)

// Observability quantifies the cost of the observability layer on a
// prepared path-enumeration workload (the paper's steady-state query
// model). Four modes run *interleaved per iteration* — sequential blocks
// would measure machine drift, not the layer:
//
//   - "off":    the default engine path — per-statement counters and the
//     latency histogram fire, but plans run bare. A second identical run
//     ("off-b") inside the same interleave bounds the measurement noise;
//     the layer's at-rest cost is indistinguishable from that band.
//   - "slowlog-armed": SET SLOW_QUERY with an unreachable threshold, so
//     every plan runs through the instrumentation wrappers (sampled
//     per-operator row/time accounting) without ever logging. This is
//     the opt-in overhead an operator accepts while hunting a slow
//     statement.
//   - "explain-analyze": the full ad-hoc EXPLAIN ANALYZE round trip
//     (parse + plan + instrumented run + rendering), reported for
//     context — it is a diagnostic statement, not a steady-state mode.
//
// overhead_on_pct rows compare each mode against "off"; noise_pct is the
// A/A spread. The acceptance bar is armed overhead < 5% and off ≈ 0
// (within noise).
func Observability(cfg Config) []Row {
	cfg = cfg.Defaults()
	var rows []Row
	ds := Datasets(cfg)
	// Path enumeration (not LIMIT-1 probes): the instrumentation wrappers
	// have a fixed per-statement cost of a few microseconds, so the honest
	// overhead question is against statements that do real traversal work —
	// the sub-millisecond-and-up regime the slow-query log exists for.
	// Depths are tuned per dataset to land each statement there.
	depths := map[string]int{"protein": 3, "dblp": 14}
	const reps = 20
	for _, name := range []string{"protein", "dblp"} {
		d := ds[name]
		g := d.Build()
		eng, err := LoadGRFusion(d, plan.Options{})
		if err != nil {
			panic(err)
		}
		countPaths, err := eng.Prepare(fmt.Sprintf(
			`SELECT COUNT(*) FROM %s.Paths PS WHERE PS.StartVertex.Id = ? AND PS.Length <= %d`,
			d.Name, depths[name]))
		if err != nil {
			panic(err)
		}
		pairs := pairsForLength(g, 4, cfg.Queries, cfg.Seed+77)
		if len(pairs) == 0 {
			continue
		}
		add := func(param, metric string, v float64, note string) {
			rows = append(rows, Row{Experiment: "observability", Dataset: name,
				System: "grfusion", Param: param, Metric: metric, Value: v, Note: note})
		}

		prepared := func(i int) {
			if _, err := countPaths.Query(types.NewInt(pairs[i%len(pairs)].Src)); err != nil {
				panic(err)
			}
		}
		analyzeOne := func(i int) {
			if _, err := eng.Execute(fmt.Sprintf(
				`EXPLAIN ANALYZE SELECT COUNT(*) FROM %s.Paths PS WHERE PS.StartVertex.Id = %d AND PS.Length <= %d`,
				d.Name, pairs[i%len(pairs)].Src, depths[name])); err != nil {
				panic(err)
			}
		}
		time1 := func(fn func(int), i int) time.Duration {
			t0 := time.Now()
			fn(i)
			return time.Since(t0)
		}

		// Warm up, then interleave all four modes within each iteration so
		// slow drift (frequency scaling, GC cycles, co-tenants) hits every
		// mode equally instead of whichever block ran last.
		n := len(pairs) * reps
		for i := 0; i < len(pairs); i++ {
			prepared(i)
		}
		// Per-iteration samples, summarized by the per-pair minimum sum: each
		// statement does deterministic work, so the minimum over reps is its
		// true cost with the GC/scheduler interference stripped — the robust
		// statistic at sub-millisecond statement times — and summing per-pair
		// minimums keeps the per-start-vertex cost differences in.
		samples := map[string][]time.Duration{}
		runMode := map[string]func(int) time.Duration{
			"offA": func(i int) time.Duration { return time1(prepared, i) },
			"offB": func(i int) time.Duration { return time1(prepared, i) },
			"armed": func(i int) time.Duration {
				eng.SetSlowQuery(time.Hour)
				defer eng.SetSlowQuery(0)
				return time1(prepared, i)
			},
			"analyze": func(i int) time.Duration { return time1(analyzeOne, i) },
		}
		order := []string{"offA", "armed", "offB", "analyze"}
		for i := 0; i < n; i++ {
			// Rotate the mode order each iteration: whichever mode follows
			// the allocation-heavy analyze statement inherits its GC debt,
			// so no mode may hold a fixed position.
			for j := range order {
				mode := order[(i+j)%len(order)]
				samples[mode] = append(samples[mode], runMode[mode](i))
			}
		}
		minSum := func(mode string) time.Duration {
			var total time.Duration
			for p := 0; p < len(pairs); p++ {
				best := time.Duration(math.MaxInt64)
				for i := p; i < n; i += len(pairs) {
					if d := samples[mode][i]; d < best {
						best = d
					}
				}
				total += best
			}
			return total
		}
		offA, offB, armed, analyze := minSum("offA"), minSum("offB"), minSum("armed"), minSum("analyze")
		ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(len(pairs)) / 1e6 }
		pct := func(d time.Duration) float64 {
			if offA <= 0 {
				return 0
			}
			return float64(d-offA) / float64(offA) * 100
		}
		add("off", "avg_ms", ms(offA), "")
		add("off-b", "avg_ms", ms(offB), "")
		add("off-b", "noise_pct", math.Abs(pct(offB)), "A/A spread of the uninstrumented path")
		add("slowlog-armed", "avg_ms", ms(armed), "")
		add("slowlog-armed", "overhead_on_pct", pct(armed), "instrumented plans, no logging")
		add("explain-analyze", "avg_ms", ms(analyze), "")
		add("explain-analyze", "overhead_on_pct", pct(analyze), "ad-hoc parse+plan+instrumented run+render")
	}
	return rows
}
