package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/plan"
)

// This file benchmarks the concurrent read engine: the same multi-source
// traversals the paper evaluates sequentially (reachability and shortest
// paths over every start vertex, §7), executed first on the sequential
// kernel and then fanned across the ParallelPathScan worker pool. The
// timings seed the repo's performance trajectory (BENCH_concurrency.json,
// uploaded by CI on every run); the speedup rows are the acceptance
// measurement for the Workers knob. Results are identical across worker
// counts by construction — the parallel operator merges per-source results
// in source order — so the benchmark validates row counts while timing.

// ConcurrencyWorkers is the worker-count sweep. 1 runs the sequential
// kernel (Workers knob disabled); higher values size the traversal pool.
var ConcurrencyWorkers = []int{1, 2, 4}

// Concurrency reports sequential-vs-parallel timings for two read
// workloads on the twitter-like and road datasets:
//
//   - reach: multi-source bounded reachability — every vertex fans a
//     breadth-limited traversal, COUNT(*) drains it.
//   - sp: multi-source shortest path — every vertex runs a weighted
//     search toward a fixed hub.
//
// For each workload it emits one avg_ms row per worker count plus a
// speedup row (sequential time / parallel time) per parallel
// configuration, and a gomaxprocs row recording how many cores the
// measurement actually had — on a single-core host speedups sit near 1.0
// by construction.
func Concurrency(cfg Config) []Row {
	cfg = cfg.Defaults()
	ds := Datasets(cfg)
	rows := []Row{{
		Experiment: "concurrency", Dataset: "-", System: "grfusion",
		Param: "-", Metric: "gomaxprocs", Value: float64(runtime.GOMAXPROCS(0)),
	}}

	workloads := []struct {
		name    string
		dataset string
		query   string
		queries int
	}{
		{
			name:    "reach",
			dataset: "twitter",
			query:   `SELECT COUNT(*) FROM twitter.Paths PS WHERE PS.Length <= 2 AND PS.Edges[0..*].sel < 80`,
			queries: cfg.Queries,
		},
		{
			name:    "sp",
			dataset: "road",
			query:   ``, // filled below: target is the dataset's last vertex
			queries: maxInt(1, cfg.Queries/5),
		},
	}
	{
		d := ds["road"]
		target := d.Vertices[len(d.Vertices)-1].ID
		workloads[1].query = fmt.Sprintf(
			`SELECT COUNT(*) FROM road.Paths PS HINT(SHORTESTPATH(w)) WHERE PS.EndVertex.Id = %d`, target)
	}

	for _, wl := range workloads {
		d := ds[wl.dataset]
		var seqMS float64
		var wantCount float64 = -1
		for _, workers := range ConcurrencyWorkers {
			opts := core.Options{Plan: plan.Options{}}
			if workers > 1 {
				opts.Workers = workers
			}
			eng, err := LoadGRFusionEngine(d, opts)
			if err != nil {
				rows = append(rows, Row{Experiment: "concurrency", Dataset: wl.dataset,
					System: "grfusion", Param: wlParam(wl.name, workers), Metric: "avg_ms",
					Note: "ABORT: " + firstLine(err.Error())})
				continue
			}
			p, err := eng.Prepare(wl.query)
			if err != nil {
				rows = append(rows, Row{Experiment: "concurrency", Dataset: wl.dataset,
					System: "grfusion", Param: wlParam(wl.name, workers), Metric: "avg_ms",
					Note: "ABORT: " + firstLine(err.Error())})
				continue
			}
			// Warm-up run; also captures the count every configuration
			// must reproduce (the determinism cross-check).
			r, err := p.Query()
			if err != nil {
				rows = append(rows, Row{Experiment: "concurrency", Dataset: wl.dataset,
					System: "grfusion", Param: wlParam(wl.name, workers), Metric: "avg_ms",
					Note: "ABORT: " + firstLine(err.Error())})
				continue
			}
			count := float64(r.Rows[0][0].I)
			if wantCount < 0 {
				wantCount = count
			} else if count != wantCount {
				rows = append(rows, Row{Experiment: "concurrency", Dataset: wl.dataset,
					System: "grfusion", Param: wlParam(wl.name, workers), Metric: "avg_ms",
					Note: fmt.Sprintf("ABORT: nondeterministic count %g != %g", count, wantCount)})
				continue
			}
			ms, note := timeAvgMS(wl.queries, func(int) error {
				_, err := p.Query()
				return err
			})
			rows = append(rows, Row{Experiment: "concurrency", Dataset: wl.dataset,
				System: "grfusion", Param: wlParam(wl.name, workers), Metric: "avg_ms",
				Value: ms, Note: note})
			if workers == 1 {
				seqMS = ms
			} else if seqMS > 0 && ms > 0 {
				rows = append(rows, Row{Experiment: "concurrency", Dataset: wl.dataset,
					System: "grfusion", Param: wlParam(wl.name, workers), Metric: "speedup",
					Value: seqMS / ms})
			}
		}
		rows = append(rows, Row{Experiment: "concurrency", Dataset: wl.dataset,
			System: "grfusion", Param: wl.name, Metric: "paths", Value: wantCount})
	}
	// MVCC mixed-workload storm: read tail latency with and without a
	// sustained DML writer (see mvcc.go). These rows feed the regression
	// gate CheckConcurrencyBaseline enforces.
	rows = append(rows, mvccStorm(cfg)...)
	return rows
}

func wlParam(name string, workers int) string {
	return fmt.Sprintf("%s workers=%d", name, workers)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchJSON is the on-disk schema of BENCH_concurrency.json (and future
// BENCH_*.json trajectory files): enough run metadata to compare numbers
// across commits and machines.
type BenchJSON struct {
	Experiment string  `json:"experiment"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	Queries    int     `json:"queries"`
	Seed       int64   `json:"seed"`
	Unix       int64   `json:"generated_unix"`
	Rows       []Row   `json:"rows"`
}

// WriteJSON serializes benchmark rows with run metadata.
func WriteJSON(w io.Writer, experiment string, cfg Config, rows []Row) error {
	cfg = cfg.Defaults()
	doc := BenchJSON{
		Experiment: experiment,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      cfg.Scale,
		Queries:    cfg.Queries,
		Seed:       cfg.Seed,
		Unix:       time.Now().Unix(),
		Rows:       rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// WriteJSONFile writes WriteJSON output to path.
func WriteJSONFile(path, experiment string, cfg Config, rows []Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, experiment, cfg, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
