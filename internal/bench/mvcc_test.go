package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMVCCStormMixedWorkload is the race-gated storm lane: readers (path
// probes + analytics TVFs) run concurrently with a sustained DML writer on
// one engine, so under -race it doubles as a data-race detector for the
// MVCC read path while validating the row shape the gate consumes.
func TestMVCCStormMixedWorkload(t *testing.T) {
	cfg := tiny()
	rows := mvccStorm(cfg)
	want := map[string]bool{
		"mixed nowriter|read_p50_ms": false,
		"mixed nowriter|read_p99_ms": false,
		"mixed storm|read_p50_ms":    false,
		"mixed storm|read_p99_ms":    false,
		"tvf nowriter|read_p99_ms":   false,
		"tvf storm|read_p99_ms":      false,
		"mixed|p99_ratio":            false,
		"mixed|write_ops_per_sec":    false,
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Note, "ABORT") {
			t.Fatalf("storm aborted: %+v", r)
		}
		key := r.Param + "|" + r.Metric
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected row %s", key)
			continue
		}
		want[key] = true
		if r.Metric != "write_ops_per_sec" && r.Value <= 0 {
			t.Errorf("%s: non-positive value %g", key, r.Value)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("missing row %s", key)
		}
	}
}

func TestQuantileMS(t *testing.T) {
	lat := []float64{5, 1, 3, 2, 4}
	if got := quantileMS(lat, 0.5); got != 3 {
		t.Errorf("p50 = %g, want 3", got)
	}
	if got := quantileMS(lat, 0.99); got != 5 {
		t.Errorf("p99 = %g, want 5", got)
	}
	if got := quantileMS(nil, 0.5); got != 0 {
		t.Errorf("empty = %g, want 0", got)
	}
}

// stormRows builds a plausible mixed-workload row set with the given ratio.
func stormRows(ratio float64) []Row {
	mk := func(param, metric string, v float64) Row {
		return Row{Experiment: "concurrency", Dataset: "twitter", System: "grfusion",
			Param: param, Metric: metric, Value: v}
	}
	return []Row{
		mk("mixed nowriter", "read_p50_ms", 0.2),
		mk("mixed nowriter", "read_p99_ms", 1.0),
		mk("mixed storm", "read_p50_ms", 0.3),
		mk("mixed storm", "read_p99_ms", ratio),
		mk("mixed", "p99_ratio", ratio),
		mk("mixed", "write_ops_per_sec", 500),
	}
}

func TestCheckConcurrencyBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(f, "concurrency", tiny(), stormRows(1.2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := CheckConcurrencyBaseline(path, stormRows(1.5), 0.10); err != nil {
		t.Errorf("ratio 1.5 under 2x ceiling should pass: %v", err)
	}
	if err := CheckConcurrencyBaseline(path, stormRows(2.5), 0.10); err == nil {
		t.Error("ratio 2.5 past the 2x ceiling should fail")
	} else if !strings.Contains(err.Error(), "ceiling") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := CheckConcurrencyBaseline(path, stormRows(1.5)[:4], 0.10); err == nil {
		t.Error("run without a p99_ratio row should fail")
	}
	aborted := stormRows(1.5)
	aborted[3].Note = "ABORT: boom"
	if err := CheckConcurrencyBaseline(path, aborted, 0.10); err == nil {
		t.Error("aborted storm measurement should fail the gate")
	}
	if err := CheckConcurrencyBaseline(filepath.Join(dir, "missing.json"), stormRows(1.5), 0.10); err == nil {
		t.Error("missing baseline file should fail")
	}

	// A committed ratio above the hard ceiling raises the bound by
	// tolerance instead of instantly failing every future run.
	f2, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(f2, "concurrency", tiny(), stormRows(2.4)); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if err := CheckConcurrencyBaseline(path, stormRows(2.5), 0.10); err != nil {
		t.Errorf("ratio 2.5 under committed 2.4*1.1 should pass: %v", err)
	}
	if err := CheckConcurrencyBaseline(path, stormRows(2.7), 0.10); err == nil {
		t.Error("ratio 2.7 past committed 2.4*1.1 should fail")
	}
}
