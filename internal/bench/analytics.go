package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"grfusion/internal/graph"
	"grfusion/internal/plan"
)

// AnalyticsBench (experiment id "analytics") quantifies the whole-graph
// analytics kernels against their naive single-threaded pure-Go references
// on synthetic random graphs of increasing size:
//
//   - gated speedup rows compare the CSR kernels at workers = 1 against
//     the pointer-graph references — the win is the layout plus the
//     direction-optimizing frontier machinery, measured with zero
//     parallelism so the ratio is stable on 1-2 vCPU CI boxes;
//   - informational parallel rows report the same kernels at the host's
//     core count (never gated: the available parallelism tracks the
//     machine, not the code);
//   - allocs_per_op rows pin the steady-state zero-allocation contract for
//     components and degree;
//   - engine rows time the full SQL surface (SELECT over the TVFs) on an
//     evaluation dataset, informational.
//
// The regression gate in cmd/grbench compares speedup and allocation rows
// against the committed BENCH_analytics_baseline.json.
func AnalyticsBench(cfg Config) []Row {
	cfg = cfg.Defaults()
	var rows []Row
	rows = append(rows, analyticsKernelRows(cfg)...)
	rows = append(rows, analyticsEngineRows(cfg)...)
	return rows
}

// analyticsSpeedup appends avg_ms rows for the reference and the CSR
// kernel plus their gated ratio.
func analyticsSpeedup(rows []Row, dataset, param string, refMS, csrMS float64, refNote, csrNote string) []Row {
	rows = append(rows,
		Row{Experiment: "analytics", Dataset: dataset, System: "ref", Param: param, Metric: "avg_ms", Value: refMS, Note: refNote},
		Row{Experiment: "analytics", Dataset: dataset, System: "csr-w1", Param: param, Metric: "avg_ms", Value: csrMS, Note: csrNote},
	)
	if csrMS > 0 && refNote == "" && csrNote == "" {
		rows = append(rows, Row{Experiment: "analytics", Dataset: dataset, System: "speedup",
			Param: param, Metric: "x", Value: refMS / csrMS})
	}
	return rows
}

// Kernel iteration budgets: fixed (eps = 0, no early stop) so reference
// and CSR sides do identical work and the ratio measures throughput only.
const (
	analyticsBenchPRIters = 10
	analyticsBenchLPIters = 5
)

func analyticsKernelRows(cfg Config) []Row {
	var rows []Row
	par := runtime.NumCPU()
	if par > 8 {
		par = 8
	}
	for _, sz := range csrSizes {
		nv, ne := scaled(sz.nv, cfg.Scale), scaled(sz.ne, cfg.Scale)
		g := csrRandGraph(sz.name, nv, ne, cfg.Seed+int64(nv))
		c := graph.BuildCSR(g)
		a := c.NewAnalytics()

		kernels := []struct {
			param string
			ref   func() error
			csr   func(workers int) error
		}{
			{"pagerank", func() error {
				_, _, err := graph.RefPageRank(nil, g, 0.85, analyticsBenchPRIters, 0)
				return err
			}, func(w int) error {
				_, _, err := a.PageRank(nil, w, 0.85, analyticsBenchPRIters, 0)
				return err
			}},
			{"components", func() error {
				_, _, err := graph.RefComponents(nil, g)
				return err
			}, func(w int) error {
				_, _, err := a.Components(nil, w)
				return err
			}},
			{"labelprop", func() error {
				_, _, err := graph.RefLabelProp(nil, g, analyticsBenchLPIters)
				return err
			}, func(w int) error {
				_, _, err := a.LabelProp(nil, w, analyticsBenchLPIters)
				return err
			}},
			{"degree", func() error {
				graph.RefDegrees(g)
				return nil
			}, func(w int) error {
				a.Degrees()
				return nil
			}},
		}
		for _, k := range kernels {
			k := k
			refMS, n1 := csrMinMS(3, 3, func(int) error { return k.ref() })
			csrMS, n2 := csrMinMS(3, 3, func(int) error { return k.csr(1) })
			rows = analyticsSpeedup(rows, sz.name, k.param, refMS, csrMS, n1, n2)
			if par > 1 {
				parMS, n3 := csrMinMS(3, 3, func(int) error { return k.csr(par) })
				rows = append(rows, Row{Experiment: "analytics", Dataset: sz.name,
					System: fmt.Sprintf("csr-w%d", par), Param: k.param,
					Metric: "avg_ms", Value: parMS, Note: n3})
			}
		}

		// The zero-allocation contract for the steady-state kernels
		// (testing.AllocsPerRun warms up once itself; one explicit run
		// populates the scratch pool first).
		allocCases := []struct {
			param string
			run   func()
		}{
			{"components", func() {
				h := c.NewAnalytics()
				if _, _, err := h.Components(nil, 1); err != nil {
					panic(err)
				}
				h.Release()
			}},
			{"degree", func() {
				h := c.NewAnalytics()
				h.Degrees()
				h.Release()
			}},
		}
		for _, ac := range allocCases {
			ac.run()
			allocs := testing.AllocsPerRun(5, ac.run)
			rows = append(rows, Row{Experiment: "analytics", Dataset: sz.name, System: "csr-w1",
				Param: ac.param, Metric: "allocs_per_op", Value: allocs})
		}
		a.Release()
	}
	return rows
}

// analyticsEngineRows times the SQL surface end to end — parse, plan, run
// the kernel, stream the relation — on one evaluation dataset per TVF.
// Informational (absolute timings track the machine).
func analyticsEngineRows(cfg Config) []Row {
	var rows []Row
	d := Datasets(cfg)["twitter"]
	eng, err := LoadGRFusion(d, plan.Options{ForceLayout: "csr"})
	if err != nil {
		panic(err)
	}
	for _, q := range []struct{ param, sql string }{
		{"pagerank", fmt.Sprintf(`SELECT COUNT(*) FROM %s.PAGERANK(0.85, %d) X`, d.Name, analyticsBenchPRIters)},
		{"components", fmt.Sprintf(`SELECT COUNT(*) FROM %s.CONNECTED_COMPONENTS() X`, d.Name)},
		{"labelprop", fmt.Sprintf(`SELECT COUNT(*) FROM %s.LABEL_PROPAGATION(%d) X`, d.Name, analyticsBenchLPIters)},
		{"degree", fmt.Sprintf(`SELECT COUNT(*) FROM %s.DEGREE_CENTRALITY() X`, d.Name)},
	} {
		if _, err := eng.Execute(q.sql); err != nil {
			panic(err)
		}
		ms, note := csrMinMS(3, 3, func(int) error {
			_, err := eng.Execute(q.sql)
			return err
		})
		rows = append(rows, Row{Experiment: "analytics", Dataset: "twitter", System: "engine",
			Param: q.param, Metric: "avg_ms", Value: ms, Note: note})
	}
	return rows
}

// CheckAnalyticsBaseline is the regression gate for the analytics
// experiment: every speedup row in the committed baseline must be within
// tolerance of the fresh run, and no fresh allocs_per_op row may be above
// zero. Absolute timings are never compared.
func CheckAnalyticsBaseline(baselinePath string, rows []Row, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base BenchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	fresh := map[string]float64{}
	for _, r := range rows {
		if r.System == "speedup" && r.Metric == "x" {
			fresh[r.Dataset+"|"+r.Param] = r.Value
		}
		if r.Metric == "allocs_per_op" && r.Value > 0 {
			return fmt.Errorf("analytics gate: %s %s allocates %.1f/op in steady state, want 0",
				r.Dataset, r.Param, r.Value)
		}
	}
	var missing, regressed []string
	for _, r := range base.Rows {
		if r.System != "speedup" || r.Metric != "x" {
			continue
		}
		key := r.Dataset + "|" + r.Param
		cur, ok := fresh[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		if cur < r.Value*(1-tolerance) {
			regressed = append(regressed,
				fmt.Sprintf("%s: %.2fx, baseline %.2fx", key, cur, r.Value))
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("analytics gate: baseline rows missing from this run: %v", missing)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("analytics gate: speedup regressed more than %.0f%%: %v",
			tolerance*100, regressed)
	}
	return nil
}
