package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/server"
	"grfusion/internal/types"
)

// This file measures the wire protocol: how fast a client can drive the
// server over TCP. Three point-query lanes (JSON-lines round trips,
// binary round trips, and binary pipelined batches over a prepared
// statement) quantify what framing and pipelining buy on the
// request-dominated path, and two ingest lanes (per-statement prepared
// INSERTs vs the COPY bulk stream) quantify the bulk path into a
// graph-view edge table. Absolute rates are machine-bound, so the
// committed gates are the machine-independent speedup ratios plus an
// explicit ingest floor row carried in the baseline file.

// wireBench runs the protocol experiment against a real server on a
// loopback listener.
func wireBench(cfg Config) []Row {
	cfg = cfg.Defaults()
	const ds = "wiresynth"
	row := func(param, metric string, v float64, note string) Row {
		return Row{Experiment: "wire", Dataset: ds, System: "grfusion",
			Param: param, Metric: metric, Value: v, Note: note}
	}
	abort := func(param, msg string) []Row {
		return []Row{{Experiment: "wire", Dataset: ds, System: "grfusion",
			Param: param, Metric: "rows_per_sec", Note: "ABORT: " + firstLine(msg)}}
	}

	eng := core.New(core.Options{})
	srv := server.New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return abort("setup", err.Error())
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	addr := ln.Addr().String()

	dial := func(proto string) (*server.Client, error) {
		return server.DialWith(addr, server.Options{
			ConnectTimeout: 10 * time.Second,
			Protocol:       proto,
		})
	}
	admin, err := dial(server.ProtoAuto)
	if err != nil {
		return abort("setup", err.Error())
	}
	defer admin.Close()
	for _, q := range []string{
		`CREATE TABLE wv (vid BIGINT PRIMARY KEY, name VARCHAR)`,
		`CREATE INDEX wv_vid ON wv (vid)`,
		`CREATE TABLE we (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w BIGINT)`,
		`CREATE DIRECTED GRAPH VIEW wg VERTEXES(ID=vid) FROM wv EDGES(ID=eid, FROM=src, TO=dst) FROM we`,
	} {
		if _, err := admin.Exec(q); err != nil {
			return abort("setup", err.Error())
		}
	}

	// Vertices land via COPY so setup doesn't dominate the run.
	nv := scaled(10_000, cfg.Scale)
	ci, err := admin.CopyIn("wv", nil, nv)
	if err != nil {
		return abort("setup", err.Error())
	}
	batch := make([]types.Row, 0, 4096)
	for i := 0; i < nv; i++ {
		batch = append(batch, types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%d", i))})
		if len(batch) == cap(batch) {
			if err := ci.Send(batch); err != nil {
				return abort("setup", err.Error())
			}
			batch = batch[:0]
		}
	}
	if err := ci.Send(batch); err != nil {
		return abort("setup", err.Error())
	}
	if res, err := ci.Close(); err != nil || res.Affected != nv {
		return abort("setup", fmt.Sprintf("vertex load: %v (affected %v)", err, res))
	}

	rows := []Row{row("-", "gomaxprocs", float64(runtime.GOMAXPROCS(0)),
		"cores visible to this run; gates relax on a one-core host")}

	// --- point queries: the request-dominated path ----------------------
	nq := maxInt(500, cfg.Queries*50)
	pointQuery := func(i int) string {
		return fmt.Sprintf("SELECT name FROM wv WHERE vid = %d", i%nv)
	}
	// Every point lane reports the median of wireReps timed passes over a
	// warmed connection — single samples on a loaded host swing far too
	// wide to gate on.
	runSequential := func(proto string) (float64, error) {
		c, err := dial(proto)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		for i := 0; i < 50; i++ { // warm the connection, plan cache, and scheduler
			if _, err := c.Exec(pointQuery(i)); err != nil {
				return 0, err
			}
		}
		samples := make([]float64, 0, wireReps)
		for rep := 0; rep < wireReps; rep++ {
			t0 := time.Now()
			for i := 0; i < nq; i++ {
				res, err := c.Exec(pointQuery(i))
				if err != nil {
					return 0, err
				}
				if len(res.Rows) != 1 {
					return 0, fmt.Errorf("point query returned %d rows", len(res.Rows))
				}
			}
			samples = append(samples, float64(nq)/time.Since(t0).Seconds())
		}
		return median(samples), nil
	}
	jsonQPS, err := runSequential(server.ProtoJSON)
	if err != nil {
		return abort("point json_roundtrip", err.Error())
	}
	binQPS, err := runSequential(server.ProtoBinary)
	if err != nil {
		return abort("point binary_roundtrip", err.Error())
	}

	// Pipelined: a prepared point lookup executed by id, many per flush.
	// This is the protocol's headline lane — parse/plan amortized away,
	// syscalls amortized across the batch, responses read back in order.
	pipeQPS := 0.0
	{
		c, err := dial(server.ProtoBinary)
		if err != nil {
			return abort("point binary_pipelined", err.Error())
		}
		defer c.Close()
		stmt, err := c.Prepare(`SELECT name FROM wv WHERE vid = ?`)
		if err != nil {
			return abort("point binary_pipelined", err.Error())
		}
		const depth = 64
		npipe := maxInt(nq*4, 2000)
		npipe -= npipe % depth
		runPipe := func() (float64, error) {
			t0 := time.Now()
			p := c.Pipeline()
			for i := 0; i < npipe; i++ {
				p.ExecStmt(stmt, types.NewInt(int64(i%nv)))
				if p.Len() == depth {
					results, err := p.Flush()
					if err != nil {
						return 0, err
					}
					for _, r := range results {
						if r.Err != nil {
							return 0, r.Err
						}
					}
				}
			}
			return float64(npipe) / time.Since(t0).Seconds(), nil
		}
		if _, err := runPipe(); err != nil { // warmup pass
			return abort("point binary_pipelined", err.Error())
		}
		samples := make([]float64, 0, wireReps)
		for rep := 0; rep < wireReps; rep++ {
			s, err := runPipe()
			if err != nil {
				return abort("point binary_pipelined", err.Error())
			}
			samples = append(samples, s)
		}
		pipeQPS = median(samples)
	}

	rows = append(rows,
		row("point json_roundtrip", "queries_per_sec", jsonQPS, fmt.Sprintf("%d sequential point lookups, one JSON round trip each", nq)),
		row("point binary_roundtrip", "queries_per_sec", binQPS, fmt.Sprintf("%d sequential point lookups, one binary round trip each", nq)),
		row("point binary_pipelined", "queries_per_sec", pipeQPS, "prepared point lookups pipelined 64 deep"),
		row("point", "pipeline_speedup", pipeQPS/jsonQPS,
			fmt.Sprintf("pipelined binary vs JSON round trips (gate: >= %gx)", wirePipelineFloor)),
	)

	// --- bulk ingest into the graph-view edge table ---------------------
	// Per-statement lane: prepared INSERT, one round trip per edge. Every
	// statement publishes a version, so this also pays the engine's
	// per-publish graph maintenance — exactly what a naive loader pays.
	perStmtRate := 0.0
	{
		c, err := dial(server.ProtoBinary)
		if err != nil {
			return abort("ingest per_statement", err.Error())
		}
		defer c.Close()
		ins, err := c.Prepare(`INSERT INTO we VALUES (?, ?, ?, 1)`)
		if err != nil {
			return abort("ingest per_statement", err.Error())
		}
		ns := maxInt(200, cfg.Queries*20)
		t0 := time.Now()
		for i := 0; i < ns; i++ {
			if _, err := ins.Exec(
				types.NewInt(int64(1_000_000_000+i)),
				types.NewInt(int64(i%nv)),
				types.NewInt(int64((i+1)%nv)),
			); err != nil {
				return abort("ingest per_statement", err.Error())
			}
		}
		perStmtRate = float64(ns) / time.Since(t0).Seconds()
		rows = append(rows, row("ingest per_statement", "rows_per_sec", perStmtRate,
			fmt.Sprintf("%d prepared INSERTs, one round trip and one version publish each", ns)))
	}

	// COPY lane: the streaming bulk path — batched frames, batch-atomic
	// application, one MVCC publish and one graph clone for the whole
	// load.
	{
		ne := scaled(500_000, cfg.Scale)
		c, err := dial(server.ProtoBinary)
		if err != nil {
			return abort("ingest copy", err.Error())
		}
		defer c.Close()
		t0 := time.Now()
		ci, err := c.CopyIn("we", nil, ne)
		if err != nil {
			return abort("ingest copy", err.Error())
		}
		const bs = 4096
		batch := make([]types.Row, bs)
		slab := make([]types.Value, 0, bs*4)
		sent := 0
		for sent < ne {
			n := bs
			if rem := ne - sent; n > rem {
				n = rem
			}
			slab = slab[:0]
			for i := 0; i < n; i++ {
				id := sent + i
				slab = append(slab,
					types.NewInt(int64(id)),
					types.NewInt(int64(id%nv)),
					types.NewInt(int64((id*7+1)%nv)),
					types.NewInt(int64(id%100)),
				)
				batch[i] = types.Row(slab[i*4 : (i+1)*4])
			}
			if err := ci.Send(batch[:n]); err != nil {
				return abort("ingest copy", err.Error())
			}
			sent += n
		}
		res, err := ci.Close()
		secs := time.Since(t0).Seconds()
		if err != nil || res.Affected != ne {
			return abort("ingest copy", fmt.Sprintf("%v (affected %v)", err, res))
		}
		copyRate := float64(ne) / secs
		rows = append(rows,
			row("ingest copy", "rows_per_sec", copyRate,
				fmt.Sprintf("%d edges streamed into the graph view in %d-row batches, one publish total", ne, bs)),
			row("ingest", "copy_speedup", copyRate/perStmtRate,
				fmt.Sprintf("COPY stream vs per-statement inserts (gate: >= %gx)", wireCopySpeedupFloor)),
			row("ingest", "floor_rows_per_sec", wireIngestFloor,
				"committed absolute COPY ingest floor; the gate halves it on a one-core host"),
		)
		// Sanity: the load must actually be visible relationally and in the
		// graph view.
		chk, err := admin.Exec(`SELECT COUNT(*) FROM we`)
		if err != nil || len(chk.Rows) != 1 {
			return abort("ingest copy", fmt.Sprintf("post-load count: %v", err))
		}
	}
	return rows
}

// WireBench is the exported experiment entry point.
func WireBench(cfg Config) []Row { return wireBench(cfg) }

// Acceptance floors for the wire experiment's machine-independent
// ratios. Pipelining must buy at least 3x over JSON round trips (the
// protocol's reason to exist), and the COPY stream must beat naive
// per-statement loading by a wide margin (it removes per-row round
// trips, per-row publishes, and per-publish graph clones).
// wireReps is how many timed passes each point lane runs; the reported
// rate is their median.
const wireReps = 5

// median returns the middle value of s (mean of the middle two when
// even). s is sorted in place.
func median(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

const (
	wirePipelineFloor    = 3.0
	wireCopySpeedupFloor = 20.0
	// wireIngestFloor is the absolute COPY ingest floor (edges/sec) carried
	// in the committed baseline. A multi-core host must sustain it
	// outright; a one-core host (client, server, and engine time-sharing
	// one CPU) gets half. The reference one-core run sustains ~427k
	// edges/sec, comfortably above the halved floor.
	wireIngestFloor = 400_000
)

// CheckWireBaseline regression-gates a wire run against a committed
// BENCH_wire_baseline file. Absolute throughput is not comparable across
// machines, so the gate enforces (a) the hard ratio floors above, (b) no
// ratio regression past tolerance vs the committed run, and (c) the
// explicit ingest floor row carried by the baseline — an absolute
// edges/sec number chosen when the baseline was committed, halved on a
// one-core host (the client, server and engine all time-share one CPU
// there).
func CheckWireBaseline(baselinePath string, rows []Row, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base BenchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	fresh := map[string]float64{}
	oneCore := false
	for _, r := range rows {
		if strings.HasPrefix(r.Note, "ABORT") {
			return fmt.Errorf("wire gate: %s %s aborted: %s", r.Param, r.Metric, r.Note)
		}
		if r.Metric == "gomaxprocs" && r.Value == 1 {
			oneCore = true
		}
		fresh[r.Param+"|"+r.Metric] = r.Value
	}
	need := func(key string) (float64, error) {
		v, ok := fresh[key]
		if !ok {
			return 0, fmt.Errorf("wire gate: run has no %s row", key)
		}
		return v, nil
	}
	pipe, err := need("point|pipeline_speedup")
	if err != nil {
		return err
	}
	copySpeed, err := need("ingest|copy_speedup")
	if err != nil {
		return err
	}
	copyRate, err := need("ingest copy|rows_per_sec")
	if err != nil {
		return err
	}

	baseVals := map[string]float64{}
	for _, r := range base.Rows {
		baseVals[r.Param+"|"+r.Metric] = r.Value
	}

	// (a) hard ratio floors.
	if pipe < wirePipelineFloor {
		return fmt.Errorf("wire gate: pipelined throughput is %.2fx JSON round trips, floor %.1fx", pipe, wirePipelineFloor)
	}
	if copySpeed < wireCopySpeedupFloor {
		return fmt.Errorf("wire gate: COPY ingest is %.2fx per-statement inserts, floor %.1fx", copySpeed, wireCopySpeedupFloor)
	}
	// (b) ratio regression vs the committed run. Speedup ratios divide two
	// noisy throughput samples, so run-to-run variance is much wider than
	// for a single rate; the hard floors above carry the real contract and
	// this check only catches a collapse vs the committed run.
	ratioBand := tolerance
	if ratioBand < 0.40 {
		ratioBand = 0.40
	}
	for _, key := range []string{"point|pipeline_speedup", "ingest|copy_speedup"} {
		if b, ok := baseVals[key]; ok && fresh[key] < b*(1-ratioBand) {
			return fmt.Errorf("wire gate: %s collapsed to %.2f from committed %.2f (band %.0f%%)",
				key, fresh[key], b, ratioBand*100)
		}
	}
	// (c) the committed absolute ingest floor.
	floor, ok := baseVals["ingest|floor_rows_per_sec"]
	if !ok {
		return fmt.Errorf("wire gate: baseline %s carries no ingest|floor_rows_per_sec row", baselinePath)
	}
	if oneCore {
		floor /= 2
	}
	if copyRate < floor {
		return fmt.Errorf("wire gate: COPY ingest %.0f rows/sec is under the committed floor %.0f rows/sec", copyRate, floor)
	}
	return nil
}
