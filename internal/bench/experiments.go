package bench

import (
	"fmt"
	"math"
	"time"

	"grfusion/internal/baselines/grail"
	"grfusion/internal/baselines/graphstore"
	"grfusion/internal/baselines/sqlgraph"
	"grfusion/internal/core"
	"grfusion/internal/datagen"
	"grfusion/internal/plan"
	"grfusion/internal/types"
)

// Fig7Lengths is the result-path-length sweep (the paper sweeps 2–20 on
// billion-edge graphs; at synthetic scale the curves flatten past 10).
var Fig7Lengths = []int{2, 4, 6, 8, 10}

// SelSweep is the sub-graph selectivity sweep of §7.1 (5%–50%).
var SelSweep = []int{5, 10, 25, 50}

func selParam(s int) string { return fmt.Sprintf("sel=%d", s) }
func lenParam(l int) string { return fmt.Sprintf("len=%d", l) }

// prepareReach compiles the reachability query once (the VoltDB model:
// parameterized procedures are planned ahead of time; steady-state query
// cost is pure execution). withSel adds the selectivity predicate with a
// third parameter.
func prepareReach(eng *core.Engine, view string, withSel bool) (*core.Prepared, error) {
	q := fmt.Sprintf(`SELECT PS.PathString FROM %s.Paths PS WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ?`, view)
	if withSel {
		q += " AND PS.Edges[0..*].sel < ?"
	}
	return eng.Prepare(q + " LIMIT 1")
}

func storeFilter(selPct int) graphstore.EdgeFilter {
	if selPct < 0 {
		return nil
	}
	return func(p graphstore.Props) bool { return p["sel"].I < int64(selPct) }
}

// projectedWalks estimates the walks a join-based traversal enumerates; it
// gates the pipelined SQLGraph runs the way the paper's 5-hour timeout
// gated its disk-RDBMS fallback.
func projectedWalks(d *datagen.Dataset, hops int) float64 {
	deg := d.AvgDegree()
	return math.Pow(deg, float64(hops))
}

const walkBudget = 2e6

// Fig7 reproduces the unconstrained-reachability experiment (§7.2 /
// Figure 7): average query time versus result path length, per dataset,
// for GRFusion (BFScan, predicate pushdown disabled per §7.1), SQLGraph in
// VoltDB-style materialized mode and in pipelined mode, and the two
// specialized graph stores.
func Fig7(cfg Config) []Row {
	cfg = cfg.Defaults()
	var rows []Row
	ds := Datasets(cfg)
	for _, name := range DatasetNames {
		d := ds[name]
		g := d.Build()

		// GRFusion configured as in §7.1: BFS, no pushdown.
		eng, err := LoadGRFusion(d, plan.Options{DisablePushdown: true, ForceTraversal: "bfs"})
		if err != nil {
			panic(err)
		}
		memLimit := cfg.MemLimit
		if memLimit == 0 {
			memLimit = 8 << 20 // a VoltDB-like temp budget at synthetic scale
		}
		sgMat, err := sqlgraph.Load(d, "sg", sqlgraph.Materialized, memLimit)
		if err != nil {
			panic(err)
		}
		sgPipe, err := sqlgraph.Load(d, "sp", sqlgraph.Pipelined, 0)
		if err != nil {
			panic(err)
		}
		neo := graphstore.New(d.Directed)
		titan := graphstore.NewSerialized(d.Directed)
		if err := graphstore.Load(neo, d); err != nil {
			panic(err)
		}
		if err := graphstore.Load(titan, d); err != nil {
			panic(err)
		}

		reach, err := prepareReach(eng, d.Name, false)
		if err != nil {
			panic(err)
		}
		matDead := false
		for _, l := range Fig7Lengths {
			pairs := pairsForLength(g, l, cfg.Queries, cfg.Seed+int64(l))
			if len(pairs) == 0 {
				continue
			}
			param := lenParam(l)

			ms, note := timeAvgMS(len(pairs), func(i int) error {
				_, err := reach.Query(types.NewInt(pairs[i].Src), types.NewInt(pairs[i].Dst))
				return err
			})
			rows = append(rows, Row{Experiment: "fig7", Dataset: name, System: "grfusion",
				Param: param, Metric: "avg_ms", Value: ms, Note: note})

			if !matDead && l <= cfg.MaxJoinHops {
				ms, note = timeAvgMS(len(pairs), func(i int) error {
					_, err := sgMat.Reachable(pairs[i].Src, pairs[i].Dst, l, -1)
					return err
				})
				rows = append(rows, Row{Experiment: "fig7", Dataset: name, System: "sqlgraph-mat",
					Param: param, Metric: "avg_ms", Value: ms, Note: note})
				if note != "" {
					matDead = true // the paper stops reporting after the abort
				}
			}

			if l <= cfg.MaxJoinHops && projectedWalks(d, l) <= walkBudget {
				ms, note = timeAvgMS(len(pairs), func(i int) error {
					_, err := sgPipe.Reachable(pairs[i].Src, pairs[i].Dst, l, -1)
					return err
				})
				rows = append(rows, Row{Experiment: "fig7", Dataset: name, System: "sqlgraph-pipe",
					Param: param, Metric: "avg_ms", Value: ms, Note: note})
			} else if l <= cfg.MaxJoinHops {
				rows = append(rows, Row{Experiment: "fig7", Dataset: name, System: "sqlgraph-pipe",
					Param: param, Metric: "avg_ms", Value: 0,
					Note: "SKIP: projected walk explosion (paper: 5h timeout)"})
			}

			ms, note = timeAvgMS(len(pairs), func(i int) error {
				graphstore.Reachable(neo, pairs[i].Src, pairs[i].Dst, 0, nil)
				return nil
			})
			rows = append(rows, Row{Experiment: "fig7", Dataset: name, System: "neo4j-like",
				Param: param, Metric: "avg_ms", Value: ms, Note: note})

			ms, note = timeAvgMS(len(pairs), func(i int) error {
				graphstore.Reachable(titan, pairs[i].Src, pairs[i].Dst, 0, nil)
				return nil
			})
			rows = append(rows, Row{Experiment: "fig7", Dataset: name, System: "titan-like",
				Param: param, Metric: "avg_ms", Value: ms, Note: note})
		}
	}
	return rows
}

// Fig8 reproduces the constrained-reachability experiment: edge-predicate
// selectivity 5%–50% at a fixed traversal depth, with GRFusion's §6.2
// pushdown enabled.
func Fig8(cfg Config) []Row {
	cfg = cfg.Defaults()
	const depth = 4
	var rows []Row
	ds := Datasets(cfg)
	for _, name := range DatasetNames {
		d := ds[name]
		g := d.Build()
		pairs := pairsForLength(g, depth, cfg.Queries, cfg.Seed+100)
		if len(pairs) == 0 {
			continue
		}
		eng, err := LoadGRFusion(d, plan.Options{})
		if err != nil {
			panic(err)
		}
		reach, err := prepareReach(eng, d.Name, true)
		if err != nil {
			panic(err)
		}
		sgPipe, err := sqlgraph.Load(d, "sp", sqlgraph.Pipelined, 0)
		if err != nil {
			panic(err)
		}
		neo := graphstore.New(d.Directed)
		titan := graphstore.NewSerialized(d.Directed)
		graphstore.Load(neo, d)
		graphstore.Load(titan, d)

		for _, sel := range SelSweep {
			param := selParam(sel)
			ms, note := timeAvgMS(len(pairs), func(i int) error {
				_, err := reach.Query(types.NewInt(pairs[i].Src), types.NewInt(pairs[i].Dst), types.NewInt(int64(sel)))
				return err
			})
			rows = append(rows, Row{Experiment: "fig8", Dataset: name, System: "grfusion",
				Param: param, Metric: "avg_ms", Value: ms, Note: note})

			if projectedWalks(d, depth) <= walkBudget {
				ms, note = timeAvgMS(len(pairs), func(i int) error {
					_, err := sgPipe.Reachable(pairs[i].Src, pairs[i].Dst, depth, sel)
					return err
				})
				rows = append(rows, Row{Experiment: "fig8", Dataset: name, System: "sqlgraph-pipe",
					Param: param, Metric: "avg_ms", Value: ms, Note: note})
			}

			f := storeFilter(sel)
			ms, _ = timeAvgMS(len(pairs), func(i int) error {
				graphstore.Reachable(neo, pairs[i].Src, pairs[i].Dst, 0, f)
				return nil
			})
			rows = append(rows, Row{Experiment: "fig8", Dataset: name, System: "neo4j-like",
				Param: param, Metric: "avg_ms", Value: ms})
			ms, _ = timeAvgMS(len(pairs), func(i int) error {
				graphstore.Reachable(titan, pairs[i].Src, pairs[i].Dst, 0, f)
				return nil
			})
			rows = append(rows, Row{Experiment: "fig8", Dataset: name, System: "titan-like",
				Param: param, Metric: "avg_ms", Value: ms})
		}
	}
	return rows
}

// Fig9 reproduces the shortest-path experiment against Grail: GRFusion's
// SPScan versus Grail's iterative SQL versus the graph stores' Dijkstra,
// on the road and protein networks, sweeping sub-graph selectivity (100 =
// no predicate).
func Fig9(cfg Config) []Row {
	cfg = cfg.Defaults()
	sweep := append([]int{}, SelSweep...)
	sweep = append(sweep, 100)
	var rows []Row
	ds := Datasets(cfg)
	for _, name := range []string{"road", "protein"} {
		d := ds[name]
		g := d.Build()
		pairs := datagen.ConnectedPairs(g, cfg.Queries, cfg.Seed+200)
		if len(pairs) == 0 {
			continue
		}
		eng, err := LoadGRFusion(d, plan.Options{})
		if err != nil {
			panic(err)
		}
		spPlain, err := eng.Prepare(fmt.Sprintf(`SELECT TOP 1 PS.PathString FROM %s.Paths PS HINT(SHORTESTPATH(w))
			WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ?`, d.Name))
		if err != nil {
			panic(err)
		}
		spSel, err := eng.Prepare(fmt.Sprintf(`SELECT TOP 1 PS.PathString FROM %s.Paths PS HINT(SHORTESTPATH(w))
			WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ? AND PS.Edges[0..*].sel < ?`, d.Name))
		if err != nil {
			panic(err)
		}
		gr, err := grail.Load(d, "gr")
		if err != nil {
			panic(err)
		}
		neo := graphstore.New(d.Directed)
		titan := graphstore.NewSerialized(d.Directed)
		graphstore.Load(neo, d)
		graphstore.Load(titan, d)

		for _, sel := range sweep {
			param := selParam(sel)
			selArg := sel
			if sel >= 100 {
				selArg = -1
			}
			ms, note := timeAvgMS(len(pairs), func(i int) error {
				var err error
				if selArg >= 0 {
					_, err = spSel.Query(types.NewInt(pairs[i].Src), types.NewInt(pairs[i].Dst), types.NewInt(int64(selArg)))
				} else {
					_, err = spPlain.Query(types.NewInt(pairs[i].Src), types.NewInt(pairs[i].Dst))
				}
				return err
			})
			rows = append(rows, Row{Experiment: "fig9", Dataset: name, System: "grfusion",
				Param: param, Metric: "avg_ms", Value: ms, Note: note})

			ms, note = timeAvgMS(len(pairs), func(i int) error {
				_, _, err := gr.ShortestPath(pairs[i].Src, pairs[i].Dst, selArg)
				return err
			})
			rows = append(rows, Row{Experiment: "fig9", Dataset: name, System: "grail",
				Param: param, Metric: "avg_ms", Value: ms, Note: note})

			f := storeFilter(selArg)
			ms, _ = timeAvgMS(len(pairs), func(i int) error {
				graphstore.ShortestPath(neo, pairs[i].Src, pairs[i].Dst, "w", f)
				return nil
			})
			rows = append(rows, Row{Experiment: "fig9", Dataset: name, System: "neo4j-like",
				Param: param, Metric: "avg_ms", Value: ms})
			ms, _ = timeAvgMS(len(pairs), func(i int) error {
				graphstore.ShortestPath(titan, pairs[i].Src, pairs[i].Dst, "w", f)
				return nil
			})
			rows = append(rows, Row{Experiment: "fig9", Dataset: name, System: "titan-like",
				Param: param, Metric: "avg_ms", Value: ms})
		}
	}
	return rows
}

// Fig10 reproduces the triangle-counting experiment (Listing 4's pattern)
// with edge-predicate selectivity 5%–50%, on the community-structured and
// dense datasets.
func Fig10(cfg Config) []Row {
	cfg = cfg.Defaults()
	var rows []Row
	ds := Datasets(cfg)
	for _, name := range []string{"dblp", "protein"} {
		d := ds[name]
		eng, err := LoadGRFusion(d, plan.Options{})
		if err != nil {
			panic(err)
		}
		sg, err := sqlgraph.Load(d, "tg", sqlgraph.Pipelined, 0)
		if err != nil {
			panic(err)
		}
		neo := graphstore.New(d.Directed)
		titan := graphstore.NewSerialized(d.Directed)
		graphstore.Load(neo, d)
		graphstore.Load(titan, d)

		for _, sel := range SelSweep {
			param := selParam(sel)
			var grfCount int64
			ms, note := timeAvgMS(3, func(int) error {
				q := fmt.Sprintf(`SELECT COUNT(P) FROM %s.Paths P
					WHERE P.Length = 3 AND P.Edges[0..*].sel < %d
					AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`, d.Name, sel)
				res, err := eng.Execute(q)
				if err == nil {
					grfCount = res.Rows[0][0].I
				}
				return err
			})
			rows = append(rows, Row{Experiment: "fig10", Dataset: name, System: "grfusion",
				Param: param, Metric: "ms", Value: ms, Note: note})

			var sgCount int64
			ms, note = timeAvgMS(3, func(int) error {
				var err error
				sgCount, err = sg.CountTriangles(sel)
				return err
			})
			nt := note
			if nt == "" && sgCount != grfCount {
				nt = fmt.Sprintf("COUNT MISMATCH: %d vs grfusion %d", sgCount, grfCount)
			}
			rows = append(rows, Row{Experiment: "fig10", Dataset: name, System: "sqlgraph-pipe",
				Param: param, Metric: "ms", Value: ms, Note: nt})

			f := storeFilter(sel)
			var neoCount int
			ms, _ = timeAvgMS(3, func(int) error {
				neoCount = graphstore.CountTriangles(neo, f)
				return nil
			})
			nt = ""
			if int64(neoCount) != grfCount {
				nt = fmt.Sprintf("COUNT MISMATCH: %d vs grfusion %d", neoCount, grfCount)
			}
			rows = append(rows, Row{Experiment: "fig10", Dataset: name, System: "neo4j-like",
				Param: param, Metric: "ms", Value: ms, Note: nt})

			ms, _ = timeAvgMS(3, func(int) error {
				graphstore.CountTriangles(titan, f)
				return nil
			})
			rows = append(rows, Row{Experiment: "fig10", Dataset: name, System: "titan-like",
				Param: param, Metric: "ms", Value: ms})
		}
	}
	return rows
}

// Table3 reports graph-view construction cost: topology build time and the
// memory split between the compact topology and the relational attribute
// storage it deliberately does not replicate (§3.2).
func Table3(cfg Config) []Row {
	cfg = cfg.Defaults()
	var rows []Row
	ds := Datasets(cfg)
	for _, name := range DatasetNames {
		d := ds[name]
		eng := core.New(core.Options{})
		ddl := fmt.Sprintf(`
			CREATE TABLE %s_v (vid BIGINT PRIMARY KEY, name VARCHAR);
			CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR);
		`, name, name)
		if _, err := eng.ExecuteScript(ddl); err != nil {
			panic(err)
		}
		if err := bulkLoad(eng, d); err != nil {
			panic(err)
		}
		dir := "DIRECTED"
		if !d.Directed {
			dir = "UNDIRECTED"
		}
		start := time.Now()
		if _, err := eng.Execute(fmt.Sprintf(`
			CREATE %s GRAPH VIEW %s
			VERTEXES(ID = vid, name = name) FROM %s_v
			EDGES(ID = eid, FROM = src, TO = dst, w = w, sel = sel, lbl = lbl) FROM %s_e`,
			dir, name, name, name)); err != nil {
			panic(err)
		}
		buildMS := float64(time.Since(start).Microseconds()) / 1000

		gv, _ := eng.Catalog().GraphView(name)
		vt, _ := eng.Catalog().Table(name + "_v")
		et, _ := eng.Catalog().Table(name + "_e")
		topo := float64(gv.G.ApproxBytes())
		rel := float64(vt.ApproxBytes() + et.ApproxBytes())
		rows = append(rows,
			Row{Experiment: "table3", Dataset: name, System: "grfusion", Param: "-", Metric: "build_ms", Value: buildMS},
			Row{Experiment: "table3", Dataset: name, System: "grfusion", Param: "-", Metric: "topology_bytes", Value: topo},
			Row{Experiment: "table3", Dataset: name, System: "grfusion", Param: "-", Metric: "relational_bytes", Value: rel},
			Row{Experiment: "table3", Dataset: name, System: "grfusion", Param: "-", Metric: "topology_fraction", Value: topo / (topo + rel)},
		)
	}
	return rows
}

// Fig11 reproduces the online-update experiment (§3.3's claims): per-edge
// DML cost on a bare table, on a table with a dependent graph view
// (incremental maintenance), and the Native Graph-Core alternative of
// re-extracting the whole graph after each batch.
func Fig11(cfg Config) []Row {
	cfg = cfg.Defaults()
	const batch = 200
	var rows []Row
	ds := Datasets(cfg)
	for _, name := range DatasetNames {
		d := ds[name]

		perOpMS := map[string]float64{}
		run := func(system string, withView bool) {
			var eng *core.Engine
			var err error
			if withView {
				eng, err = LoadGRFusion(d, plan.Options{})
			} else {
				eng = core.New(core.Options{})
				ddl := fmt.Sprintf(`
					CREATE TABLE %s_v (vid BIGINT PRIMARY KEY, name VARCHAR);
					CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR);
				`, name, name)
				if _, err2 := eng.ExecuteScript(ddl); err2 == nil {
					err = bulkLoad(eng, d)
				} else {
					err = err2
				}
			}
			if err != nil {
				panic(err)
			}
			base := int64(len(d.Edges)) + 1000
			nv := int64(len(d.Vertices))
			// Prepared DML: the VoltDB procedure model, so the measurement
			// is the mutation + maintenance, not statement parsing.
			ins, err := eng.PrepareDML(fmt.Sprintf(
				"INSERT INTO %s_e VALUES (?, ?, ?, 1.0, ?, 'A')", name))
			if err != nil {
				panic(err)
			}
			del, err := eng.PrepareDML(fmt.Sprintf("DELETE FROM %s_e WHERE eid = ?", name))
			if err != nil {
				panic(err)
			}
			start := time.Now()
			for i := int64(0); i < batch; i++ {
				src := i % nv
				dst := (i*7 + 3) % nv
				if _, err := ins.Exec(types.NewInt(base+i), types.NewInt(src),
					types.NewInt(dst), types.NewInt(i%100)); err != nil {
					panic(err)
				}
			}
			for i := int64(0); i < batch; i++ {
				if _, err := del.Exec(types.NewInt(base + i)); err != nil {
					panic(err)
				}
			}
			perOp := float64(time.Since(start).Microseconds()) / 1000 / (2 * batch)
			perOpMS[system] = perOp
			rows = append(rows, Row{Experiment: "fig11", Dataset: name, System: system,
				Param: fmt.Sprintf("batch=%d", batch), Metric: "ms_per_op", Value: perOp})
		}
		run("table-only", false)
		run("grfusion-view", true)
		// Incremental maintenance cost in isolation: the view-engine delta
		// over the bare-table engine (statement overhead cancels out).
		rows = append(rows, Row{Experiment: "fig11", Dataset: name, System: "grfusion-view",
			Param: fmt.Sprintf("batch=%d", batch), Metric: "maint_overhead_ms_per_op",
			Value: perOpMS["grfusion-view"] - perOpMS["table-only"]})

		// Native Graph-Core: any source update invalidates the extracted
		// graph (Figure 1(b)); a fresh query needs a full re-extraction,
		// whose cost scales with |V|+|E| — unlike the O(1)-per-op
		// incremental maintenance above.
		start := time.Now()
		if _, err := graphstore.Reextract(d.Directed, d, false); err != nil {
			panic(err)
		}
		full := float64(time.Since(start).Microseconds()) / 1000
		rows = append(rows, Row{Experiment: "fig11", Dataset: name, System: "graphcore-reextract",
			Param: fmt.Sprintf("batch=%d", batch), Metric: "full_reextract_ms", Value: full,
			Note: "paid per update batch before the graph is queryable again"})
	}
	return rows
}

// Ablation benchmarks the design choices DESIGN.md calls out: §6.2
// pushdown, §6.3 physical traversal selection, and the
// materialized-versus-pipelined join execution model.
func Ablation(cfg Config) []Row {
	cfg = cfg.Defaults()
	var rows []Row
	ds := Datasets(cfg)

	// Pushdown on/off. For visit-once scans pushdown is semantic (it
	// defines the traversed sub-graph), so the ablation uses the per-path
	// triangle pattern, where pushing the selectivity predicate into the
	// traversal is a pure optimization over residual filtering.
	for _, name := range []string{"dblp", "road"} {
		d := ds[name]
		for _, mode := range []struct {
			system string
			opts   plan.Options
		}{
			{"pushdown-on", plan.Options{}},
			{"pushdown-off", plan.Options{DisablePushdown: true}},
		} {
			eng, err := LoadGRFusion(d, mode.opts)
			if err != nil {
				panic(err)
			}
			q := fmt.Sprintf(`SELECT COUNT(P) FROM %s.Paths P
				WHERE P.Length = 3 AND P.Edges[0..*].sel < 10
				AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`, d.Name)
			ms, note := timeAvgMS(3, func(int) error {
				_, err := eng.Execute(q)
				return err
			})
			rows = append(rows, Row{Experiment: "ablation", Dataset: name, System: mode.system,
				Param: "triangles sel=10", Metric: "ms", Value: ms, Note: note})
		}
	}

	// BFS vs DFS vs the §6.3 rule on bounded path enumeration.
	for _, name := range []string{"road", "twitter"} {
		d := ds[name]
		g := d.Build()
		pairs := pairsForLength(g, 6, cfg.Queries, cfg.Seed+400)
		if len(pairs) == 0 {
			continue
		}
		for _, force := range []string{"bfs", "dfs", ""} {
			system := "rule"
			if force != "" {
				system = force
			}
			eng, err := LoadGRFusion(d, plan.Options{ForceTraversal: force})
			if err != nil {
				panic(err)
			}
			reach, err := prepareReach(eng, d.Name, false)
			if err != nil {
				panic(err)
			}
			ms, note := timeAvgMS(len(pairs), func(i int) error {
				_, err := reach.Query(types.NewInt(pairs[i].Src), types.NewInt(pairs[i].Dst))
				return err
			})
			rows = append(rows, Row{Experiment: "ablation", Dataset: name, System: "traversal-" + system,
				Param: "reach len=6", Metric: "avg_ms", Value: ms, Note: note})
		}
	}

	// Materialized vs pipelined SQLGraph at depth 4 (temp-table cost).
	for _, name := range []string{"road"} {
		d := ds[name]
		g := d.Build()
		pairs := pairsForLength(g, 4, cfg.Queries, cfg.Seed+500)
		if len(pairs) == 0 {
			continue
		}
		for _, m := range []struct {
			system string
			mode   sqlgraph.Mode
		}{
			{"sqlgraph-mat", sqlgraph.Materialized},
			{"sqlgraph-pipe", sqlgraph.Pipelined},
		} {
			s, err := sqlgraph.Load(d, "ab", m.mode, 0)
			if err != nil {
				panic(err)
			}
			ms, note := timeAvgMS(len(pairs), func(i int) error {
				_, err := s.Reachable(pairs[i].Src, pairs[i].Dst, 4, -1)
				return err
			})
			rows = append(rows, Row{Experiment: "ablation", Dataset: name, System: m.system,
				Param: "reach len=4", Metric: "avg_ms", Value: ms, Note: note})
		}
	}
	return rows
}

// All runs every experiment in paper order.
func All(cfg Config) []Row {
	var rows []Row
	rows = append(rows, Table2(cfg)...)
	rows = append(rows, Fig7(cfg)...)
	rows = append(rows, Fig8(cfg)...)
	rows = append(rows, Fig9(cfg)...)
	rows = append(rows, Fig10(cfg)...)
	rows = append(rows, Table3(cfg)...)
	rows = append(rows, Fig11(cfg)...)
	rows = append(rows, Ablation(cfg)...)
	rows = append(rows, Concurrency(cfg)...)
	rows = append(rows, Observability(cfg)...)
	rows = append(rows, CSRBench(cfg)...)
	rows = append(rows, AnalyticsBench(cfg)...)
	rows = append(rows, DurabilityBench(cfg)...)
	rows = append(rows, DiskFaultBench(cfg)...)
	rows = append(rows, WireBench(cfg)...)
	return rows
}

// Experiments maps experiment ids to their runners, for cmd/grbench.
var Experiments = map[string]func(Config) []Row{
	"table2":        Table2,
	"fig7":          Fig7,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig10":         Fig10,
	"table3":        Table3,
	"fig11":         Fig11,
	"ablation":      Ablation,
	"concurrency":   Concurrency,
	"observability": Observability,
	"csr":           CSRBench,
	"analytics":     AnalyticsBench,
	"durability":    DurabilityBench,
	"diskfault":     DiskFaultBench,
	"wire":          WireBench,
}
