package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"grfusion/internal/core"
	"grfusion/internal/graph"
	"grfusion/internal/plan"
	"grfusion/internal/types"
)

// CSRBench (experiment id "csr") quantifies the CSR snapshot layout against
// the pointer-chasing kernels it replaces, at two levels:
//
//   - kernel: the raw traversal kernels on synthetic random graphs of
//     increasing size — unbounded reachability, single-pair shortest path,
//     and triangle closure — plus steady-state allocation counts for the
//     CSR side (the zero-allocation contract);
//   - engine: full SQL statements over the evaluation datasets with the
//     planner pinned to one layout per engine (ForceLayout), so the
//     measured delta is the layout choice and nothing else.
//
// Every ptr/csr pair also reports a speedup row (ptr_ms / csr_ms). The
// regression gate in cmd/grbench compares those rows against the committed
// baseline.
func CSRBench(cfg Config) []Row {
	cfg = cfg.Defaults()
	var rows []Row
	rows = append(rows, csrKernelRows(cfg)...)
	rows = append(rows, csrEngineRows(cfg)...)
	return rows
}

// csrSizes are the synthetic kernel-benchmark sizes at Scale = 1.
var csrSizes = []struct {
	name   string
	nv, ne int
}{
	{"synth-2k", 2000, 8000},
	{"synth-8k", 8000, 32000},
	{"synth-20k", 20000, 80000},
}

// csrRandGraph builds a seeded random directed multigraph.
func csrRandGraph(name string, nv, ne int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(name, true)
	for i := 0; i < nv; i++ {
		if _, err := g.AddVertex(int64(i), uint64(i)+1); err != nil {
			panic(err)
		}
	}
	for i := 0; i < ne; i++ {
		from := rng.Int63n(int64(nv))
		to := rng.Int63n(int64(nv))
		if _, err := g.AddEdge(int64(i), from, to, uint64(i)+1); err != nil {
			panic(err)
		}
	}
	return g
}

func csrWeight(pos int, e *graph.Edge, from, to *graph.Vertex) (float64, bool) {
	return float64(e.ID%5) + 1, true
}

// csrMinMS is the experiment's robust timer: the minimum of reps passes of
// timeAvgMS. Each pass does deterministic work, so GC pauses and scheduler
// preemption (this gate runs on shared 1-2 vCPU CI boxes) can only inflate
// a pass, never deflate it — the minimum is the true cost. An error aborts
// immediately and surfaces in the note.
func csrMinMS(reps, n int, fn func(i int) error) (float64, string) {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		ms, note := timeAvgMS(n, fn)
		if note != "" {
			return ms, note
		}
		if ms < best {
			best = ms
		}
	}
	return best, ""
}

// csrSpeedup appends avg_ms rows for both layouts plus their ratio.
func csrSpeedup(rows []Row, dataset, param string, ptrMS, csrMS float64, ptrNote, csrNote string) []Row {
	rows = append(rows,
		Row{Experiment: "csr", Dataset: dataset, System: "layout-ptr", Param: param, Metric: "avg_ms", Value: ptrMS, Note: ptrNote},
		Row{Experiment: "csr", Dataset: dataset, System: "layout-csr", Param: param, Metric: "avg_ms", Value: csrMS, Note: csrNote},
	)
	if csrMS > 0 && ptrNote == "" && csrNote == "" {
		rows = append(rows, Row{Experiment: "csr", Dataset: dataset, System: "speedup",
			Param: param, Metric: "x", Value: ptrMS / csrMS})
	}
	return rows
}

func csrKernelRows(cfg Config) []Row {
	var rows []Row
	for _, sz := range csrSizes {
		nv, ne := scaled(sz.nv, cfg.Scale), scaled(sz.ne, cfg.Scale)
		g := csrRandGraph(sz.name, nv, ne, cfg.Seed+int64(nv))
		// An isolated sink: traversals targeting it never terminate early, so
		// reachability and shortest-path runs do the full visit-once /
		// settle-all sweep — deterministic work, stable speedup ratios.
		sink, err := g.AddVertex(int64(nv), uint64(nv)+1)
		if err != nil {
			panic(err)
		}
		c := graph.BuildCSR(g)
		rng := rand.New(rand.NewSource(cfg.Seed + 17))
		pick := func() *graph.Vertex { return g.Vertex(rng.Int63n(int64(nv))) }
		pairs := make([][2]*graph.Vertex, cfg.Queries)
		for i := range pairs {
			pairs[i] = [2]*graph.Vertex{pick(), sink}
		}

		// Unbounded reachability: the visit-once regime where the dense
		// visited array pays off most.
		ptrMS, n1 := csrMinMS(3, len(pairs), func(i int) error {
			graph.Reachable(g, pairs[i][0], pairs[i][1], 0)
			return nil
		})
		csrMS, n2 := csrMinMS(3, len(pairs), func(i int) error {
			graph.CSRReachable(c, pairs[i][0], pairs[i][1], 0)
			return nil
		})
		rows = csrSpeedup(rows, sz.name, "kernel-reach", ptrMS, csrMS, n1, n2)

		// Single-pair shortest path (Dijkstra with the manual heap).
		spSpec := func(i int) graph.Spec {
			return graph.Spec{Start: pairs[i][0], Target: pairs[i][1]}
		}
		ptrMS, n1 = csrMinMS(3, len(pairs), func(i int) error {
			it := graph.NewShortest(g, spSpec(i), csrWeight, 1)
			for it.Next() != nil {
			}
			return it.Err()
		})
		csrMS, n2 = csrMinMS(3, len(pairs), func(i int) error {
			it := graph.NewCSRShortest(c, spSpec(i), csrWeight, 1)
			for it.Step() {
			}
			err := it.Err()
			it.Release()
			return err
		})
		rows = csrSpeedup(rows, sz.name, "kernel-sp", ptrMS, csrMS, n1, n2)

		// Triangle closure from sampled starts (Listing 4's kernel shape:
		// per-path visits, cycle back onto the start at length 3).
		triSpec := func(i int) graph.Spec {
			v := pairs[i][0]
			return graph.Spec{Start: v, Target: v, MinLen: 3, MaxLen: 3,
				Policy: graph.VisitPerPath, AllowCycle: true}
		}
		ptrMS, n1 = csrMinMS(3, len(pairs), func(i int) error {
			it := graph.NewDFS(g, triSpec(i))
			for it.Next() != nil {
			}
			return nil
		})
		csrMS, n2 = csrMinMS(3, len(pairs), func(i int) error {
			it := graph.NewCSRDFS(c, triSpec(i))
			for it.Step() {
			}
			it.Release()
			return nil
		})
		rows = csrSpeedup(rows, sz.name, "kernel-triangles", ptrMS, csrMS, n1, n2)

		// The zero-allocation contract: steady-state Step() traversals must
		// not allocate. testing.AllocsPerRun runs a warm-up call itself; one
		// more explicit warm-up populates the scratch pool first.
		allocCases := []struct {
			param string
			run   func()
		}{
			{"kernel-reach", func() { graph.CSRReachable(c, pairs[0][0], pairs[0][1], 0) }},
			{"kernel-triangles", func() {
				it := graph.NewCSRDFS(c, triSpec(0))
				for it.Step() {
				}
				it.Release()
			}},
			{"kernel-sp", func() {
				it := graph.NewCSRShortest(c, spSpec(0), csrWeight, 1)
				for it.Step() {
				}
				it.Release()
			}},
		}
		for _, ac := range allocCases {
			ac.run()
			allocs := testing.AllocsPerRun(5, ac.run)
			rows = append(rows, Row{Experiment: "csr", Dataset: sz.name, System: "layout-csr",
				Param: ac.param, Metric: "allocs_per_op", Value: allocs})
		}
	}
	return rows
}

func csrEngineRows(cfg Config) []Row {
	var rows []Row
	ds := Datasets(cfg)
	load := func(name, layout string) *core.Engine {
		eng, err := LoadGRFusion(ds[name], plan.Options{ForceLayout: layout})
		if err != nil {
			panic(err)
		}
		return eng
	}

	// Bounded path enumeration from sampled starts: COUNT(*) drains the
	// whole iterator, so the measured work is deterministic per start (no
	// LIMIT-1 early-exit luck). One engine per layout so snapshots stay
	// warm; depths are tuned per dataset to land in the
	// sub-millisecond-and-up regime.
	for _, w := range []struct {
		name  string
		depth int
	}{{"twitter", 4}, {"road", 6}, {"protein", 3}} {
		d := ds[w.name]
		g := d.Build()
		pairs := pairsForLength(g, 4, cfg.Queries, cfg.Seed+600)
		if len(pairs) == 0 {
			continue
		}
		var ms [2]float64
		var notes [2]string
		for li, layout := range []string{"ptr", "csr"} {
			eng := load(w.name, layout)
			count, err := eng.Prepare(fmt.Sprintf(
				`SELECT COUNT(*) FROM %s.Paths PS WHERE PS.StartVertex.Id = ? AND PS.Length <= %d`,
				d.Name, w.depth))
			if err != nil {
				panic(err)
			}
			// Warm-up query: the first CSR-layout statement pays the one-time
			// snapshot build (reported by csr_build_ns, not a per-query cost).
			if _, err := count.Query(types.NewInt(pairs[0].Src)); err != nil {
				panic(err)
			}
			// Passes over the pair set amortize per-statement jitter; min-of-3
			// strips GC/scheduler interference from the sub-ms statements.
			ms[li], notes[li] = csrMinMS(3, len(pairs)*4, func(i int) error {
				_, err := count.Query(types.NewInt(pairs[i%len(pairs)].Src))
				return err
			})
		}
		rows = csrSpeedup(rows, w.name, fmt.Sprintf("count-paths len=%d", w.depth), ms[0], ms[1], notes[0], notes[1])
	}

	// Shortest path on the road network.
	{
		d := ds["road"]
		g := d.Build()
		pairs := pairsForLength(g, 6, cfg.Queries, cfg.Seed+700)
		var ms [2]float64
		var notes [2]string
		for li, layout := range []string{"ptr", "csr"} {
			eng := load("road", layout)
			sp, err := eng.Prepare(fmt.Sprintf(
				`SELECT TOP 1 PS.PathString FROM %s.Paths PS HINT(SHORTESTPATH(w)) WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ?`,
				d.Name))
			if err != nil {
				panic(err)
			}
			if _, err := sp.Query(types.NewInt(pairs[0].Src), types.NewInt(pairs[0].Dst)); err != nil {
				panic(err)
			}
			ms[li], notes[li] = csrMinMS(3, len(pairs)*4, func(i int) error {
				p := pairs[i%len(pairs)]
				_, err := sp.Query(types.NewInt(p.Src), types.NewInt(p.Dst))
				return err
			})
		}
		rows = csrSpeedup(rows, "road", "shortest", ms[0], ms[1], notes[0], notes[1])
	}

	// Triangle counting at varying edge selectivity (the Fig10 statement):
	// pure path enumeration, the regime the arena-backed kernels target.
	for _, sel := range []int{5, 25, 50} {
		d := ds["dblp"]
		q := fmt.Sprintf(`SELECT COUNT(P) FROM %s.Paths P
			WHERE P.Length = 3 AND P.Edges[0..*].sel < %d
			AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`, d.Name, sel)
		var ms [2]float64
		var notes [2]string
		for li, layout := range []string{"ptr", "csr"} {
			eng := load("dblp", layout)
			if _, err := eng.Execute(q); err != nil {
				panic(err)
			}
			ms[li], notes[li] = csrMinMS(3, 4, func(int) error {
				_, err := eng.Execute(q)
				return err
			})
		}
		rows = csrSpeedup(rows, "dblp", selParam(sel)+" triangles", ms[0], ms[1], notes[0], notes[1])
	}
	return rows
}

// CheckCSRBaseline is the regression gate for the csr experiment: every
// speedup row in the committed baseline must be within tolerance of the
// fresh run (a fresh speedup below baseline*(1-tolerance) fails), and no
// fresh allocs_per_op row may be above zero. Absolute timings are not
// compared — they track the machine, not the code — the CSR-over-pointer
// ratio is what the layout must keep delivering.
func CheckCSRBaseline(baselinePath string, rows []Row, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base BenchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	fresh := map[string]float64{}
	for _, r := range rows {
		if r.System == "speedup" && r.Metric == "x" {
			fresh[r.Dataset+"|"+r.Param] = r.Value
		}
		if r.Metric == "allocs_per_op" && r.Value > 0 {
			return fmt.Errorf("csr gate: %s %s allocates %.1f/op in steady state, want 0",
				r.Dataset, r.Param, r.Value)
		}
	}
	var missing, regressed []string
	for _, r := range base.Rows {
		if r.System != "speedup" || r.Metric != "x" {
			continue
		}
		key := r.Dataset + "|" + r.Param
		cur, ok := fresh[key]
		if !ok {
			missing = append(missing, key)
			continue
		}
		if cur < r.Value*(1-tolerance) {
			regressed = append(regressed,
				fmt.Sprintf("%s: %.2fx, baseline %.2fx", key, cur, r.Value))
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("csr gate: baseline rows missing from this run: %v", missing)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("csr gate: speedup regressed more than %.0f%%: %v",
			tolerance*100, regressed)
	}
	return nil
}
