package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/types"
	"grfusion/internal/wal"
)

// DurabilityBench measures what the write-ahead log costs on the write
// path and what recovery buys back. One engine per fsync policy (plus a
// no-WAL baseline) runs the same prepared-DML insert workload against a
// table with a dependent graph view, so every measured statement pays both
// §3.3 incremental maintenance and its durability tax:
//
//   - ms_per_insert: prepared edge-insert latency per policy;
//   - wal_overhead_ms: the per-insert delta over the no-WAL baseline —
//     the append (and, per policy, fsync) cost in isolation;
//   - wal_bytes_per_insert: on-disk log growth per statement;
//   - replay_ms / replay_stmts_per_ms: crash the engine (fd dropped, no
//     checkpoint) and time full WAL replay including graph-view rebuild;
//   - checkpoint_ms: snapshot + atomic rename + log rotation.
func DurabilityBench(cfg Config) []Row {
	cfg = cfg.Defaults()
	nVerts := scaled(500, cfg.Scale)
	nEdges := scaled(2000, cfg.Scale)
	var rows []Row

	modes := []struct {
		system  string
		fsync   wal.FsyncPolicy
		durable bool
	}{
		{"no-wal", wal.FsyncOff, false},
		{"fsync=off", wal.FsyncOff, true},
		{"fsync=interval", wal.FsyncInterval, true},
		{"fsync=always", wal.FsyncAlways, true},
	}
	param := fmt.Sprintf("edges=%d", nEdges)
	var baseMS float64

	for _, m := range modes {
		var dir string
		var eng *core.Engine
		if m.durable {
			var err error
			dir, err = os.MkdirTemp("", "grfusion-bench-dur-")
			if err != nil {
				panic(err)
			}
			var opts core.Options
			opts.Durability = core.Durability{Dir: dir, Fsync: m.fsync}
			eng, _, err = core.Open(opts)
			if err != nil {
				os.RemoveAll(dir)
				panic(err)
			}
		} else {
			eng = core.New(core.Options{})
		}

		setup := `
			CREATE TABLE people (id BIGINT, name VARCHAR, PRIMARY KEY (id));
			CREATE TABLE knows (id BIGINT, src BIGINT, dst BIGINT, w BIGINT, PRIMARY KEY (id));
			CREATE GRAPH VIEW net
			  VERTEXES (ID = id, name = name) FROM people
			  EDGES (ID = id, FROM = src, TO = dst, w = w) FROM knows;
		`
		if _, err := eng.ExecuteScript(setup); err != nil {
			panic(err)
		}
		insV, err := eng.PrepareDML("INSERT INTO people VALUES (?, ?)")
		if err != nil {
			panic(err)
		}
		for i := 1; i <= nVerts; i++ {
			if _, err := insV.Exec(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("p%d", i))); err != nil {
				panic(err)
			}
		}
		insE, err := eng.PrepareDML("INSERT INTO knows VALUES (?, ?, ?, ?)")
		if err != nil {
			panic(err)
		}

		walSize := func() int64 {
			if !m.durable {
				return 0
			}
			fi, err := os.Stat(filepath.Join(dir, "wal.log"))
			if err != nil {
				return 0
			}
			return fi.Size()
		}
		before := walSize()
		ms, note := timeAvgMS(nEdges, func(i int) error {
			src := int64(i%nVerts + 1)
			dst := int64((i*7+3)%nVerts + 1)
			_, err := insE.Exec(types.NewInt(int64(nVerts+i+1)), types.NewInt(src),
				types.NewInt(dst), types.NewInt(int64(i%100)))
			return err
		})
		rows = append(rows, Row{Experiment: "durability", Dataset: "synthetic", System: m.system,
			Param: param, Metric: "ms_per_insert", Value: ms, Note: note})
		if !m.durable {
			baseMS = ms
			continue
		}
		rows = append(rows,
			Row{Experiment: "durability", Dataset: "synthetic", System: m.system,
				Param: param, Metric: "wal_overhead_ms", Value: ms - baseMS},
			Row{Experiment: "durability", Dataset: "synthetic", System: m.system,
				Param: param, Metric: "wal_bytes_per_insert",
				Value: float64(walSize()-before) / float64(nEdges)})

		// Crash (no sync, no checkpoint) and time a full recovery: header
		// scan, statement replay with allocation pins, §3.3 graph rebuild.
		eng.Kill()
		start := time.Now()
		var opts core.Options
		opts.Durability = core.Durability{Dir: dir, Fsync: m.fsync}
		eng, info, err := core.Open(opts)
		if err != nil {
			panic(err)
		}
		replayMS := float64(time.Since(start).Microseconds()) / 1000
		rows = append(rows,
			Row{Experiment: "durability", Dataset: "synthetic", System: m.system,
				Param: param, Metric: "replay_ms", Value: replayMS,
				Note: fmt.Sprintf("%d records", info.Replayed)},
			Row{Experiment: "durability", Dataset: "synthetic", System: m.system,
				Param: param, Metric: "replay_stmts_per_ms", Value: float64(info.Replayed) / replayMS})

		start = time.Now()
		if err := eng.Checkpoint(); err != nil {
			panic(err)
		}
		rows = append(rows, Row{Experiment: "durability", Dataset: "synthetic", System: m.system,
			Param: param, Metric: "checkpoint_ms",
			Value: float64(time.Since(start).Microseconds()) / 1000})

		eng.Close()
		os.RemoveAll(dir)
	}
	return rows
}
