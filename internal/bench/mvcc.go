package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
)

// This file measures the MVCC read path under write pressure: a mixed read
// workload (bounded traversals plus a whole-graph analytics TVF) is timed
// twice on the same engine — once quiet, once against a sustained DML storm
// committing a steady stream of edge inserts and deletes, each publishing a
// new version. Because readers pin an immutable version instead of waiting
// on the engine lock, the storm must not move traversal-read tail latency
// materially: the committed acceptance bound is traversal read p99 under
// storm within 2x of the no-writer baseline. The analytics TVF reads ride
// along in the mix and their p99 is reported too, but not gated at 2x: a
// topology write invalidates the CSR cache, so under continuous churn every
// TVF read legitimately pays a fresh CSR build — that is the price of
// analytics over the latest snapshot, not a reader stall. The rows land in
// BENCH_concurrency.json and CheckConcurrencyBaseline turns them into a
// regression gate.

// mvccStorm times the mixed read workload with and without a concurrent
// writer and reports percentile rows plus the p99 ratio the gate enforces.
// Every read runs through a Prepared statement, so the storm also
// exercises the per-version plan cache (each published version forces a
// replan). It runs on its own twitter-like dataset, sized so the gated
// traversal read lasts a few milliseconds: long enough that its latency
// measures engine behavior rather than a single scheduler quantum (which
// would swamp a microsecond-scale point read's p99 on a busy host), short
// enough that three quiet/storm round pairs stay in benchmark budget.
func mvccStorm(cfg Config) []Row {
	cfg = cfg.Defaults()
	d := datagen.Twitter(scaled(600, cfg.Scale), 5, cfg.Seed+9)
	abort := func(param, msg string) []Row {
		return []Row{{Experiment: "concurrency", Dataset: d.Name, System: "grfusion",
			Param: param, Metric: "read_p99_ms", Note: "ABORT: " + firstLine(msg)}}
	}
	eng, err := LoadGRFusionEngine(d, core.Options{Workers: 2})
	if err != nil {
		return abort("mixed nowriter", err.Error())
	}
	reach, err := eng.Prepare(fmt.Sprintf(
		`SELECT COUNT(*) FROM %s.Paths PS WHERE PS.Length <= 2 AND PS.Edges[0..*].sel < 80`, d.Name))
	if err != nil {
		return abort("mixed nowriter", err.Error())
	}
	deg, err := eng.Prepare(fmt.Sprintf(
		`SELECT COUNT(*) FROM %s.DEGREE_CENTRALITY() X`, d.Name))
	if err != nil {
		return abort("mixed nowriter", err.Error())
	}

	samples := maxInt(150, cfg.Queries*30)
	// measure runs the mixed read loop (every tenth read is the analytics
	// TVF) and returns per-query latencies in milliseconds, split by class:
	// traversal reads (gated) and TVF reads (reported). The short
	// think-time between reads models a closed-loop client and — on a
	// one-core host — keeps the back-to-back reader from starving the
	// writer goroutine off the CPU entirely.
	measure := func() (trav, tvf []float64, err error) {
		for i := 0; i < samples; i++ {
			p := reach
			if i%10 == 9 {
				p = deg
			}
			t0 := time.Now()
			if _, err := p.Query(); err != nil {
				return nil, nil, err
			}
			ms := float64(time.Since(t0).Nanoseconds()) / 1e6
			if p == deg {
				tvf = append(tvf, ms)
			} else {
				trav = append(trav, ms)
			}
			time.Sleep(500 * time.Microsecond)
		}
		return trav, tvf, nil
	}

	// runStorm starts the writer: alternating edge insert and delete on a
	// scratch ID range, one statement per 5ms tick — a sustained ~200
	// version publishes per second, not a busy-loop: an unpaced writer on a
	// one-core host starves the readers of CPU and measures the scheduler,
	// not the engine. Every statement publishes a new version and, being a
	// topology change, clones the graph, so this is the worst case for
	// reader interference.
	// The returned stop function waits the writer out and reports the
	// statement count and any writer error.
	runStorm := func() (stop func() (int64, error)) {
		stopCh := make(chan struct{})
		done := make(chan struct{})
		var ops atomic.Int64
		var werr atomic.Pointer[string]
		go func() {
			defer close(done)
			const eidBase = 900_000_000
			nv := len(d.Vertices)
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				case <-tick.C:
				}
				eid := eidBase + (i/2)%64
				var stmt string
				if i%2 == 0 {
					src := d.Vertices[i%nv].ID
					dst := d.Vertices[(i*7+1)%nv].ID
					stmt = fmt.Sprintf("INSERT INTO %s_e VALUES (%d, %d, %d, 1, 50, 'mv')",
						d.Name, eid, src, dst)
				} else {
					stmt = fmt.Sprintf("DELETE FROM %s_e WHERE eid = %d", d.Name, eid)
				}
				if _, err := eng.Execute(stmt); err != nil {
					s := err.Error()
					werr.Store(&s)
					return
				}
				ops.Add(1)
			}
		}()
		return func() (int64, error) {
			close(stopCh)
			<-done
			if msg := werr.Load(); msg != nil {
				return ops.Load(), fmt.Errorf("writer: %s", *msg)
			}
			return ops.Load(), nil
		}
	}

	// A single p99 sample is one GC cycle or bad scheduler tick away from an
	// outlier, and such spikes are sporadic — whereas a genuine
	// readers-stall-behind-the-writer pathology inflates every round. So the
	// quiet/storm pair is measured three times and the gate statistic is the
	// BEST round that had a live writer; rounds whose writer never committed
	// (possible on a saturated one-core host) prove nothing and are skipped.
	const rounds = 3
	type round struct {
		base, storm       []float64
		baseTVF, stormTVF []float64
		ratio             float64
		ops               int64
	}
	var best *round
	var totalOps int64
	var totalSecs float64
	for r := 0; r < rounds; r++ {
		base, baseTVF, err := measure()
		if err != nil {
			return abort("mixed nowriter", err.Error())
		}
		stop := runStorm()
		stormStart := time.Now()
		storm, stormTVF, merr := measure()
		secs := time.Since(stormStart).Seconds()
		ops, werr := stop()
		if merr != nil {
			return abort("mixed storm", merr.Error())
		}
		if werr != nil {
			return abort("mixed storm", werr.Error())
		}
		// Sweep the scratch edges the stopped writer may have left behind,
		// so the next round's inserts cannot collide and later baselines
		// see the original topology.
		if _, err := eng.Execute(fmt.Sprintf(
			"DELETE FROM %s_e WHERE eid >= 900000000", d.Name)); err != nil {
			return abort("mixed storm", "scratch sweep: "+err.Error())
		}
		baseP99 := quantileMS(base, 0.99)
		if baseP99 <= 0 {
			return abort("mixed nowriter", "zero baseline p99")
		}
		totalOps += ops
		totalSecs += secs
		if ops == 0 {
			continue
		}
		rd := round{base: base, storm: storm, baseTVF: baseTVF, stormTVF: stormTVF,
			ratio: quantileMS(storm, 0.99) / baseP99, ops: ops}
		if best == nil || rd.ratio < best.ratio {
			best = &rd
		}
	}
	if best == nil {
		return abort("mixed storm", "writer committed no statements in any round")
	}

	row := func(param, metric string, v float64, note string) Row {
		return Row{Experiment: "concurrency", Dataset: d.Name, System: "grfusion",
			Param: param, Metric: metric, Value: v, Note: note}
	}
	const tvfNote = "informational: TVF reads pay a per-version CSR build under topology churn; not gated"
	return []Row{
		row("mixed nowriter", "read_p50_ms", quantileMS(best.base, 0.50), ""),
		row("mixed nowriter", "read_p99_ms", quantileMS(best.base, 0.99), ""),
		row("mixed storm", "read_p50_ms", quantileMS(best.storm, 0.50), ""),
		row("mixed storm", "read_p99_ms", quantileMS(best.storm, 0.99), ""),
		row("tvf nowriter", "read_p99_ms", quantileMS(best.baseTVF, 0.99), tvfNote),
		row("tvf storm", "read_p99_ms", quantileMS(best.stormTVF, 0.99), tvfNote),
		row("mixed", "p99_ratio", best.ratio,
			fmt.Sprintf("best of %d rounds (%d writes in that round): storm traversal-read p99 / no-writer p99 (gate: <= 2x)", rounds, best.ops)),
		row("mixed", "write_ops_per_sec", float64(totalOps)/totalSecs,
			fmt.Sprintf("%d DML statements committed during the storm read phases", totalOps)),
	}
}

// quantileMS returns the p-quantile (nearest-rank) of latencies in ms.
func quantileMS(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// mvccStormCeiling is the acceptance bound on the storm/no-writer read-p99
// ratio: MVCC readers never wait on the writer lock, so a sustained DML
// storm may not push read tail latency past 2x the quiet baseline.
const mvccStormCeiling = 2.0

// CheckConcurrencyBaseline regression-gates a concurrency run against a
// committed BENCH_concurrency baseline. Absolute latencies are not
// comparable across machines, so the gate works on the machine-independent
// p99 ratio: the run fails if the mixed-workload storm ratio exceeds the
// hard 2x acceptance ceiling (or the committed ratio plus tolerance,
// whichever is larger), if the baseline's storm rows are missing from this
// run, or if any storm measurement aborted. On a one-core host the ceiling
// doubles: with a single time-shared CPU the writer's own clone/publish
// work physically inflates read latency even though no lock is waited on,
// so 2x there would gate the scheduler, not the engine.
func CheckConcurrencyBaseline(baselinePath string, rows []Row, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base BenchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	fresh := map[string]float64{}
	oneCore := false
	for _, r := range rows {
		if strings.HasPrefix(r.Param, "mixed") && strings.HasPrefix(r.Note, "ABORT") {
			return fmt.Errorf("concurrency gate: %s %s aborted: %s", r.Param, r.Metric, r.Note)
		}
		if r.Metric == "gomaxprocs" && r.Value == 1 {
			oneCore = true
		}
		fresh[r.Param+"|"+r.Metric] = r.Value
	}
	ratio, ok := fresh["mixed|p99_ratio"]
	if !ok {
		return fmt.Errorf("concurrency gate: run has no mixed|p99_ratio row")
	}
	var missing []string
	baseRatio := 0.0
	for _, r := range base.Rows {
		if !strings.HasPrefix(r.Param, "mixed") {
			continue
		}
		key := r.Param + "|" + r.Metric
		if _, ok := fresh[key]; !ok {
			missing = append(missing, key)
		}
		if key == "mixed|p99_ratio" {
			baseRatio = r.Value
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("concurrency gate: baseline rows missing from this run: %v", missing)
	}
	ceiling := mvccStormCeiling
	if oneCore {
		ceiling *= 2
	}
	if b := baseRatio * (1 + tolerance); b > ceiling {
		ceiling = b
	}
	if ratio > ceiling {
		return fmt.Errorf("concurrency gate: storm read p99 is %.2fx the no-writer baseline, ceiling %.2fx (committed ratio %.2fx)",
			ratio, ceiling, baseRatio)
	}
	return nil
}
