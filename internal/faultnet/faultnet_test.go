package faultnet

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// pipeListener turns net.Pipe into a one-shot listener/dialer pair so the
// tests need no real sockets.
func tcpPair(t *testing.T, opts Options) (client net.Conn, server net.Conn, cleanup func()) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := Wrap(inner, opts)
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Temporary() {
					continue // retry like a hardened accept loop
				}
				ch <- res{nil, err}
				return
			}
			ch <- res{c, nil}
			return
		}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	return client, r.c, func() { client.Close(); r.c.Close(); ln.Close() }
}

func TestPassThroughWhenZero(t *testing.T) {
	client, server, cleanup := tcpPair(t, Options{})
	defer cleanup()
	go func() {
		server.Write([]byte("hello"))
		server.Close()
	}()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q, want hello", got)
	}
}

func TestWriteChunking(t *testing.T) {
	client, server, cleanup := tcpPair(t, Options{WriteChunk: 3})
	defer cleanup()
	payload := bytes.Repeat([]byte("abcdefg"), 100)
	go func() {
		n, err := server.Write(payload)
		if err != nil || n != len(payload) {
			t.Errorf("write: n=%d err=%v", n, err)
		}
		server.Close()
	}()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("chunked write corrupted payload: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestInjectedReset(t *testing.T) {
	// ResetProb 1: the first operation must fail with an injected reset.
	client, server, cleanup := tcpPair(t, Options{Seed: 7, ResetProb: 1})
	defer cleanup()
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("expected injected reset on write")
	}
	buf := make([]byte, 1)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("peer read should fail after reset")
	}
}

func TestTruncatedWriteDeliversPrefixThenCloses(t *testing.T) {
	client, server, cleanup := tcpPair(t, Options{Seed: 42, TruncateProb: 1})
	defer cleanup()
	payload := bytes.Repeat([]byte("z"), 1024)
	done := make(chan int, 1)
	go func() {
		n, err := server.Write(payload)
		if err == nil {
			t.Error("truncated write should report an error")
		}
		done <- n
	}()
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(client)
	n := <-done
	if len(got) >= len(payload) {
		t.Fatalf("expected a truncated payload, got all %d bytes", len(got))
	}
	if len(got) != n {
		t.Fatalf("peer saw %d bytes, writer reported %d", len(got), n)
	}
}

func TestAcceptErrEveryIsTemporaryAndLosesNoConnection(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := Wrap(inner, Options{AcceptErrEvery: 2})
	defer ln.Close()

	const dials = 6
	for i := 0; i < dials; i++ {
		go func() {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err == nil {
				c.Write([]byte("!"))
				c.Close()
			}
		}()
	}
	accepted, temporary := 0, 0
	deadline := time.Now().Add(10 * time.Second)
	for accepted < dials && time.Now().Before(deadline) {
		c, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Temporary() {
				t.Fatalf("accept: non-temporary error %v", err)
			}
			temporary++
			continue
		}
		accepted++
		c.Close()
	}
	if accepted != dials {
		t.Fatalf("accepted %d of %d connections", accepted, dials)
	}
	if temporary == 0 {
		t.Fatal("expected at least one injected temporary accept error")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// Two listeners with the same seed must produce the same fault
	// decisions for the same operation sequence.
	sample := func() []bool {
		c := &Conn{opts: Options{ResetProb: 0.5}, rng: rand.New(rand.NewSource(99))}
		var out []bool
		for i := 0; i < 32; i++ {
			_, reset, _, _ := c.roll()
			out = append(out, reset)
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
	}
}
