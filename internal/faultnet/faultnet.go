// Package faultnet injects deterministic network faults between a server
// and its clients for chaos testing: random delays, partial writes,
// truncated payloads, mid-stream connection resets, and transient accept
// errors. Wrapping a net.Listener with Wrap makes every accepted
// connection misbehave according to a seeded schedule, so a failing run
// reproduces exactly from its seed.
//
// The package exists to drive the server's robustness envelope (panic
// isolation, timeouts, accept-loop backoff, graceful shutdown) under
// `go test -race`: the server must keep serving well-formed requests on
// healthy connections no matter what the faulty ones do.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options configure the fault schedule. The zero value injects nothing
// (Wrap becomes a pass-through).
type Options struct {
	// Seed fixes the pseudo-random fault schedule; runs with the same seed
	// and the same operation sequence inject the same faults.
	Seed int64
	// MaxDelay adds a uniform random delay in [0, MaxDelay) before each
	// read and write. Zero disables delays.
	MaxDelay time.Duration
	// WriteChunk splits each write into chunks of at most this many bytes
	// (exercising short-write handling). Zero writes whole buffers.
	WriteChunk int
	// ResetProb is the per-operation probability of abruptly closing the
	// connection and returning an error (a mid-stream RST).
	ResetProb float64
	// TruncateProb is the per-write probability of writing only a random
	// prefix of the buffer and then resetting the connection.
	TruncateProb float64
	// AcceptErrEvery makes every Nth Accept fail once with a temporary
	// error (net.Error with Temporary() == true) before delivering the
	// connection, exercising accept-loop retry. Zero disables it.
	AcceptErrEvery int
	// CorruptProb is the per-write probability of XOR-flipping one byte at
	// a random offset of the buffer before sending it — the connection
	// stays open and the stream stays length-preserved, so a framed peer
	// sees a synchronized but corrupt frame. Its checksum must catch the
	// damage; the corrupted payload must never be applied.
	CorruptProb float64
	// SplitProb is the per-write probability of splitting the buffer at a
	// uniformly random byte offset into two separate writes with a small
	// pause between them, tearing frames at arbitrary positions (headers,
	// mid-payload, mid-CRC) to exercise the peer's partial-read handling.
	SplitProb float64
}

// tempError is a transient fault, reported as retryable to accept loops.
type tempError struct{ msg string }

func (e *tempError) Error() string   { return "faultnet: " + e.msg }
func (e *tempError) Timeout() bool   { return false }
func (e *tempError) Temporary() bool { return true }

var _ net.Error = (*tempError)(nil)

// errReset reports an injected connection reset.
type errReset struct{ op string }

func (e *errReset) Error() string { return "faultnet: injected connection reset during " + e.op }

// Listener injects faults into accepted connections.
type Listener struct {
	inner net.Listener
	opts  Options

	mu      sync.Mutex
	rng     *rand.Rand
	accepts int
	pending net.Conn // connection delayed by an injected accept error
}

// Wrap decorates ln with the fault schedule described by opts.
func Wrap(ln net.Listener, opts Options) *Listener {
	return &Listener{inner: ln, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Accept implements net.Listener. Every Options.AcceptErrEvery calls it
// accepts the connection, parks it, and returns a temporary error first;
// the parked connection is delivered by the retry.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if c := l.pending; c != nil {
		l.pending = nil
		l.accepts++
		conn := l.wrapConn(c)
		l.mu.Unlock()
		return conn, nil
	}
	l.mu.Unlock()

	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.accepts++
	if l.opts.AcceptErrEvery > 0 && l.accepts%l.opts.AcceptErrEvery == 0 {
		// Park the real connection and fail once: a correct accept loop
		// treats the error as temporary, backs off, and retries.
		l.pending = c
		l.accepts--
		return nil, &tempError{msg: fmt.Sprintf("injected accept fault (accept #%d)", l.accepts+1)}
	}
	return l.wrapConn(c), nil
}

// wrapConn gives each connection its own deterministic sub-schedule.
// Callers hold l.mu.
func (l *Listener) wrapConn(c net.Conn) net.Conn {
	return &Conn{Conn: c, opts: l.opts, rng: rand.New(rand.NewSource(l.opts.Seed + int64(l.accepts)))}
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.pending != nil {
		l.pending.Close()
		l.pending = nil
	}
	l.mu.Unlock()
	return l.inner.Close()
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// WrapConn decorates a single connection with the fault schedule — the
// client-side counterpart of Wrap, for injecting faults into outbound
// traffic (e.g. corrupting the frames a client sends).
func WrapConn(c net.Conn, opts Options) *Conn {
	return &Conn{Conn: c, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Conn is a net.Conn that misbehaves per its fault schedule.
type Conn struct {
	net.Conn
	opts Options

	mu  sync.Mutex // guards rng (Read and Write may race)
	rng *rand.Rand
}

// roll draws the shared pseudo-random schedule under the lock.
func (c *Conn) roll() (delay time.Duration, reset bool, truncate bool, frac float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.MaxDelay > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.opts.MaxDelay)))
	}
	reset = c.opts.ResetProb > 0 && c.rng.Float64() < c.opts.ResetProb
	truncate = c.opts.TruncateProb > 0 && c.rng.Float64() < c.opts.TruncateProb
	frac = c.rng.Float64()
	return
}

// rollByteFaults draws the corruption/split schedule for one write of n
// bytes: corruptAt/splitAt are byte offsets, or -1 when not injected.
func (c *Conn) rollByteFaults(n int) (corruptAt, splitAt int) {
	corruptAt, splitAt = -1, -1
	if n == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.CorruptProb > 0 && c.rng.Float64() < c.opts.CorruptProb {
		corruptAt = c.rng.Intn(n)
	}
	if c.opts.SplitProb > 0 && c.rng.Float64() < c.opts.SplitProb {
		splitAt = c.rng.Intn(n)
	}
	return
}

// Read implements net.Conn with injected delays and resets.
func (c *Conn) Read(p []byte) (int, error) {
	delay, reset, _, _ := c.roll()
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		c.Conn.Close()
		return 0, &errReset{op: "read"}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with injected delays, short writes, payload
// truncation, and resets.
func (c *Conn) Write(p []byte) (int, error) {
	delay, reset, truncate, frac := c.roll()
	if delay > 0 {
		time.Sleep(delay)
	}
	if reset {
		c.Conn.Close()
		return 0, &errReset{op: "write"}
	}
	if truncate && len(p) > 0 {
		// Deliver a strict prefix, then kill the connection: the peer sees
		// a torn frame followed by EOF/reset.
		n, _ := c.Conn.Write(p[:int(frac*float64(len(p)))])
		c.Conn.Close()
		return n, &errReset{op: "write (truncated payload)"}
	}
	if corruptAt, splitAt := c.rollByteFaults(len(p)); corruptAt >= 0 || splitAt >= 0 {
		// Work on a copy: the caller's buffer must come back untouched (a
		// retrying writer would otherwise resend our corruption).
		q := append([]byte(nil), p...)
		if corruptAt >= 0 {
			q[corruptAt] ^= 0x20
		}
		if splitAt > 0 && splitAt < len(q) {
			n, err := c.Conn.Write(q[:splitAt])
			if err != nil {
				return n, err
			}
			time.Sleep(200 * time.Microsecond)
			m, err := c.Conn.Write(q[splitAt:])
			return n + m, err
		}
		n, err := c.Conn.Write(q)
		return n, err
	}
	if c.opts.WriteChunk > 0 {
		var n int
		for len(p) > 0 {
			k := c.opts.WriteChunk
			if k > len(p) {
				k = len(p)
			}
			m, err := c.Conn.Write(p[:k])
			n += m
			if err != nil {
				return n, err
			}
			p = p[k:]
		}
		return n, nil
	}
	return c.Conn.Write(p)
}
