package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		500 * time.Nanosecond, // bucket 0
		3 * time.Microsecond,
		100 * time.Microsecond,
		2 * time.Millisecond,
		40 * time.Millisecond,
	} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.MaxUS() != 40000 {
		t.Fatalf("max = %dus, want 40000", h.MaxUS())
	}
	// The p50 bucket upper bound must bracket the true median (100us)
	// within the histogram's 2x guarantee.
	if p50 := h.QuantileUS(0.50); p50 < 100 || p50 > 200 {
		t.Fatalf("p50 = %dus, want within [100,200]", p50)
	}
	if p100 := h.QuantileUS(1.0); p100 < 32768 {
		t.Fatalf("p100 = %dus, want >= 32768 (bucket holding 40ms)", p100)
	}
	if mean := h.MeanUS(); mean < 8000 || mean > 9000 {
		t.Fatalf("mean = %dus, want ~8420", mean)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 || h.MaxUS() != 0 {
		t.Fatalf("negative observation not clamped: count=%d max=%d", h.Count(), h.MaxUS())
	}
}

func TestSnapshotShapes(t *testing.T) {
	var m Metrics
	m.CountStatement(StmtSelect, time.Millisecond)
	m.CountStatement(StmtInsert, time.Millisecond)
	m.CountStatement(-1, 0) // clamps to other
	m.CountError(ErrTimeout)
	m.CountError(999) // clamps to other
	m.ShedAdmissions.Inc()

	kvs := m.Snapshot([]GraphViewStats{{Name: "g", Vertices: 10, Edges: 20, MaintOps: 3, StatsAgeNS: -1}})
	got := map[string]int64{}
	for i, kv := range kvs {
		got[kv.Name] = kv.Value
		if i > 0 && kvs[i-1].Name >= kv.Name {
			t.Fatalf("snapshot not sorted: %q before %q", kvs[i-1].Name, kv.Name)
		}
	}
	want := map[string]int64{
		"statements.select":        1,
		"statements.insert":        1,
		"statements.other":         1,
		"statements.total":         3,
		"errors.timeout":           1,
		"errors.other":             1,
		"admission.shed":           1,
		"latency.count":            3,
		"graphview.g.vertices":     10,
		"graphview.g.edges":        20,
		"graphview.g.maint_ops":    3,
		"graphview.g.stats_age_ns": -1,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
}

func TestStmtKindName(t *testing.T) {
	if StmtKindName(StmtSelect) != "select" {
		t.Fatalf("StmtKindName(StmtSelect) = %q", StmtKindName(StmtSelect))
	}
	if StmtKindName(99) != "kind(99)" {
		t.Fatalf("StmtKindName(99) = %q", StmtKindName(99))
	}
}
