// Package metrics implements the engine's observability counters: cheap
// lock-free counters and bounded latency histograms that the hot path can
// update with single atomic adds, plus a snapshot API the SQL surface
// (SHOW METRICS), the wire protocol (METRICS), and the HTTP endpoint all
// render from. The design follows VoltDB's @Statistics system procedure —
// the substrate GRFusion extends — where engine internals are queryable
// through the same interfaces as data.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable atomic level (0/1 health flags, watermark states).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a bounded log2-bucket latency histogram: bucket i counts
// observations in [2^(i-1), 2^i) microseconds (bucket 0 is < 1µs, the last
// bucket absorbs everything above its floor). Fixed size, no allocation,
// one atomic add per observation.
type Histogram struct {
	buckets [hBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
}

// hBuckets spans <1µs through >=2^30µs (~18 minutes) in powers of two.
const hBuckets = 32

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 for <1µs, then log2+1
	if b >= hBuckets {
		b = hBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// MeanUS is the mean observation in microseconds (0 when empty).
func (h *Histogram) MeanUS() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sumUS.Load() / n
}

// MaxUS is the largest observation in microseconds.
func (h *Histogram) MaxUS() int64 { return h.maxUS.Load() }

// QuantileUS approximates the q-quantile (0 < q <= 1) in microseconds from
// the bucket boundaries: it returns the upper bound of the bucket holding
// the q-th observation, so the estimate is within 2x of the true value.
func (h *Histogram) QuantileUS(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < hBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 1
			}
			return 1 << i // upper bound of [2^(i-1), 2^i)
		}
	}
	return h.maxUS.Load()
}

// Statement kinds counted by the engine. The order is the display order.
const (
	StmtSelect = iota
	StmtInsert
	StmtUpdate
	StmtDelete
	StmtDDL // CREATE/DROP of tables, views, graph views, indexes
	StmtExplain
	StmtShow
	StmtSet
	StmtOther
	numStmtKinds
)

var stmtKindNames = [numStmtKinds]string{
	"select", "insert", "update", "delete", "ddl", "explain", "show", "set", "other",
}

// Error classes counted by the engine, keyed to the typed lifecycle
// sentinels of PR 3.
const (
	ErrTimeout = iota
	ErrCanceled
	ErrMemLimit
	ErrPanic
	ErrDegraded
	ErrOther
	numErrClasses
)

var errClassNames = [numErrClasses]string{
	"timeout", "canceled", "mem_limit", "panic", "degraded", "other",
}

// Metrics is the engine-wide registry. All fields are safe for concurrent
// use; the zero value is ready.
type Metrics struct {
	// Statements by kind, and their end-to-end latency (including lock
	// wait) for completed statements.
	Statements [numStmtKinds]Counter
	Latency    Histogram

	// Errors by class (timeout, canceled, mem_limit, panic, other).
	Errors [numErrClasses]Counter

	// ShedAdmissions counts statements the server refused under admission
	// control (they never started executing).
	ShedAdmissions Counter

	// LockReadWaitNS / LockWriteWaitNS split statement lock-wait time by
	// side: read-only statements (version pin — effectively zero under
	// MVCC) and mutating statements (the exclusive engine lock). The
	// historical combined `lock.wait_ns` key is emitted as their sum.
	LockReadWaitNS  Counter
	LockWriteWaitNS Counter

	// MVCC version lifecycle: versions published by mutating statements,
	// retained (still pinned or current) versions, the current version
	// sequence number, and readers currently holding a pin.
	MVCCPublished     Counter
	MVCCVersionsLive  Gauge
	MVCCSeq           Gauge
	MVCCPinnedReaders Gauge

	// SlowQueries counts statements that crossed the slow-query threshold.
	SlowQueries Counter

	// StatsRefreshes counts graph-statistics recomputations (§6.3).
	StatsRefreshes Counter

	// AnalyticsRuns counts whole-graph analytics kernel executions
	// (PAGERANK, CONNECTED_COMPONENTS, LABEL_PROPAGATION,
	// DEGREE_CENTRALITY); AnalyticsIters accumulates their iterations
	// (BFS levels for components).
	AnalyticsRuns  Counter
	AnalyticsIters Counter

	// Durability counters: WAL records appended and their total frame
	// bytes, fsyncs issued by the log, checkpoints taken, and recoveries
	// performed (crash-recovery opens of an existing WAL directory).
	WALAppends     Counter
	WALAppendBytes Counter
	WALFsyncs      Counter
	WALCheckpoints Counter
	WALRecoveries  Counter

	// WALRollbacks counts logged statements whose record was removed
	// again because the statement failed to apply (log-before-apply).
	WALRollbacks Counter

	// Disk-fault tolerance: DurabilityDegraded is 1 while the engine is
	// in degraded read-only mode (or probing to leave it), 0 when the
	// durability path is healthy. HealAttempts counts background heal
	// probes, Heals counts successful returns to read-write, and
	// DegradedWrites counts mutating statements rejected with
	// ErrDegraded while degraded.
	DurabilityDegraded Gauge
	HealAttempts       Counter
	Heals              Counter
	DegradedWrites     Counter

	// Bulk-ingest counters (core.BulkLoad, fed by the wire COPY command):
	// loads opened, batches applied, and rows applied.
	BulkLoads   Counter
	BulkBatches Counter
	BulkRows    Counter
}

// CountStatement records one completed statement of the given kind with
// its end-to-end latency.
func (m *Metrics) CountStatement(kind int, d time.Duration) {
	if kind < 0 || kind >= numStmtKinds {
		kind = StmtOther
	}
	m.Statements[kind].Inc()
	m.Latency.Observe(d)
}

// CountError records one failed statement by error class.
func (m *Metrics) CountError(class int) {
	if class < 0 || class >= numErrClasses {
		class = ErrOther
	}
	m.Errors[class].Inc()
}

// KV is one named metric value.
type KV struct {
	Name  string
	Value int64
}

// GraphViewStats is the per-view gauge set a snapshot includes; the engine
// supplies these from the catalog at snapshot time so the maintenance hot
// path never touches this package.
type GraphViewStats struct {
	Name     string
	Vertices int64
	Edges    int64
	MaintOps int64
	// StatsAgeNS is the age of the published §6.3 statistics, -1 when no
	// statistics have been computed (or they were invalidated).
	StatsAgeNS int64
	// CSR snapshot cache gauges: lifetime build count and cumulative build
	// time, cache hits/misses observed by CSR-layout scans, and the
	// approximate resident size of the cached snapshot.
	CSRBuilds  int64
	CSRBuildNS int64
	CSRHits    int64
	CSRMisses  int64
	CSRBytes   int64
}

// Snapshot renders every engine-wide counter plus the supplied per-view
// gauges as a sorted name/value list. Counters are read individually (not
// atomically as a set), which is fine for monitoring.
func (m *Metrics) Snapshot(views []GraphViewStats) []KV {
	var out []KV
	var total int64
	for i := 0; i < numStmtKinds; i++ {
		v := m.Statements[i].Value()
		total += v
		out = append(out, KV{"statements." + stmtKindNames[i], v})
	}
	out = append(out, KV{"statements.total", total})
	for i := 0; i < numErrClasses; i++ {
		out = append(out, KV{"errors." + errClassNames[i], m.Errors[i].Value()})
	}
	var maintTotal int64
	for _, gv := range views {
		maintTotal += gv.MaintOps
	}
	out = append(out,
		KV{"latency.count", m.Latency.Count()},
		KV{"latency.mean_us", m.Latency.MeanUS()},
		KV{"latency.p50_us", m.Latency.QuantileUS(0.50)},
		KV{"latency.p99_us", m.Latency.QuantileUS(0.99)},
		KV{"latency.max_us", m.Latency.MaxUS()},
		KV{"admission.shed", m.ShedAdmissions.Value()},
		KV{"lock.read_wait_ns", m.LockReadWaitNS.Value()},
		KV{"lock.write_wait_ns", m.LockWriteWaitNS.Value()},
		KV{"lock.wait_ns", m.LockReadWaitNS.Value() + m.LockWriteWaitNS.Value()},
		KV{"mvcc.published", m.MVCCPublished.Value()},
		KV{"mvcc.versions_live", m.MVCCVersionsLive.Value()},
		KV{"mvcc.seq", m.MVCCSeq.Value()},
		KV{"mvcc.pinned_readers", m.MVCCPinnedReaders.Value()},
		KV{"graph.maint_ops", maintTotal},
		KV{"graph.stats_refreshes", m.StatsRefreshes.Value()},
		KV{"analytics.runs", m.AnalyticsRuns.Value()},
		KV{"analytics.iterations", m.AnalyticsIters.Value()},
		KV{"slow_queries", m.SlowQueries.Value()},
		KV{"wal.appends", m.WALAppends.Value()},
		KV{"wal.bytes", m.WALAppendBytes.Value()},
		KV{"wal.fsyncs", m.WALFsyncs.Value()},
		KV{"wal.checkpoints", m.WALCheckpoints.Value()},
		KV{"wal.recoveries", m.WALRecoveries.Value()},
		KV{"wal.rollbacks", m.WALRollbacks.Value()},
		KV{"durability.degraded", m.DurabilityDegraded.Value()},
		KV{"durability.heal_attempts", m.HealAttempts.Value()},
		KV{"durability.heals", m.Heals.Value()},
		KV{"durability.degraded_writes", m.DegradedWrites.Value()},
		KV{"bulk.loads", m.BulkLoads.Value()},
		KV{"bulk.batches", m.BulkBatches.Value()},
		KV{"bulk.rows", m.BulkRows.Value()},
	)
	for _, gv := range views {
		p := "graphview." + gv.Name + "."
		out = append(out,
			KV{p + "vertices", gv.Vertices},
			KV{p + "edges", gv.Edges},
			KV{p + "maint_ops", gv.MaintOps},
			KV{p + "stats_age_ns", gv.StatsAgeNS},
			KV{p + "csr_builds", gv.CSRBuilds},
			KV{p + "csr_build_ns", gv.CSRBuildNS},
			KV{p + "csr_hits", gv.CSRHits},
			KV{p + "csr_misses", gv.CSRMisses},
			KV{p + "csr_bytes", gv.CSRBytes},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StmtKindName names a statement kind for logs.
func StmtKindName(kind int) string {
	if kind < 0 || kind >= numStmtKinds {
		return fmt.Sprintf("kind(%d)", kind)
	}
	return stmtKindNames[kind]
}
