// Package datagen generates the four synthetic datasets standing in for
// the paper's evaluation graphs (§7.1, Table 2) plus the query workloads
// driven over them. All generators are deterministic given a seed.
//
// The paper evaluates on Tiger (US road network), String (protein
// interactions), DBLP (coauthorship), and Twitter (follower graph). Those
// corpora are proprietary-pipeline downloads and far beyond CI scale, so
// each generator reproduces its domain's structural signature instead —
// the properties the experiments actually exercise: diameter, degree
// distribution, directedness, and skew.
package datagen

import (
	"fmt"
	"math/rand"

	"grfusion/internal/graph"
)

// Vertex is one generated vertex.
type Vertex struct {
	ID   int64
	Name string
}

// Edge is one generated edge. Every edge carries the three attributes the
// experiments filter on: a non-negative Weight (shortest paths), a Sel
// value uniform in [0,100) (predicate selectivity sweeps: `sel < s`
// selects s% of edges), and a Label from a small alphabet
// (pattern-matching queries).
type Edge struct {
	ID       int64
	Src, Dst int64
	Weight   float64
	Sel      int64
	Label    string
}

// Dataset is one generated graph with its domain metadata.
type Dataset struct {
	Name     string
	Directed bool
	Vertices []Vertex
	Edges    []Edge
}

// Labels is the edge-label alphabet.
var Labels = []string{"A", "B", "C", "D"}

// AvgDegree returns edges per vertex (counting both directions for
// undirected graphs), the Table 2 statistic.
func (d *Dataset) AvgDegree() float64 {
	if len(d.Vertices) == 0 {
		return 0
	}
	m := float64(len(d.Edges))
	if !d.Directed {
		m *= 2
	}
	return m / float64(len(d.Vertices))
}

// Build materializes the dataset as a native topology (tuple pointers are
// synthetic), used by workload generation and the specialized-store
// baselines.
func (d *Dataset) Build() *graph.Graph {
	g := graph.New(d.Name, d.Directed)
	for _, v := range d.Vertices {
		if _, err := g.AddVertex(v.ID, uint64(v.ID)+1); err != nil {
			panic(fmt.Sprintf("datagen: %v", err))
		}
	}
	for _, e := range d.Edges {
		if _, err := g.AddEdge(e.ID, e.Src, e.Dst, uint64(e.ID)+1); err != nil {
			panic(fmt.Sprintf("datagen: %v", err))
		}
	}
	return g
}

func (d *Dataset) decorate(rng *rand.Rand) {
	for i := range d.Edges {
		e := &d.Edges[i]
		e.Sel = rng.Int63n(100)
		e.Label = Labels[rng.Intn(len(Labels))]
		if e.Weight == 0 {
			e.Weight = 1 + rng.Float64()*9
		}
	}
}

// Road generates a Tiger-like road network: a w×h grid of intersections
// with ~8% of segments removed and Euclidean-ish weights. Road networks
// are near-planar with degree ≈ 2–4 and a large diameter, the regime where
// deep traversals stay cheap for native graphs but cost one join per hop
// relationally.
func Road(w, h int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "road", Directed: false}
	id := func(r, c int) int64 { return int64(r*w + c) }
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			d.Vertices = append(d.Vertices, Vertex{ID: id(r, c), Name: fmt.Sprintf("x%d_%d", r, c)})
		}
	}
	eid := int64(0)
	addEdge := func(a, b int64) {
		if rng.Float64() < 0.08 {
			return // removed segment
		}
		d.Edges = append(d.Edges, Edge{
			ID: eid, Src: a, Dst: b,
			Weight: 0.5 + rng.Float64(), // segment length
		})
		eid++
	}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if c+1 < w {
				addEdge(id(r, c), id(r, c+1))
			}
			if r+1 < h {
				addEdge(id(r, c), id(r+1, c))
			}
		}
	}
	d.decorate(rng)
	return d
}

// Protein generates a String-like protein-interaction network: an
// undirected scale-free graph by preferential attachment with m links per
// protein — dense, small-world, heavy-tailed degrees.
func Protein(n, m int, seed int64) *Dataset {
	d := preferential(n, m, false, seed)
	d.Name = "protein"
	for i := range d.Vertices {
		d.Vertices[i].Name = fmt.Sprintf("P%05d", i)
	}
	return d
}

// DBLP generates a coauthorship-like network: dense author communities
// (papers become near-cliques) sparsely bridged by cross-community
// collaborations.
func DBLP(communities, size int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "dblp", Directed: false}
	n := communities * size
	for i := 0; i < n; i++ {
		d.Vertices = append(d.Vertices, Vertex{ID: int64(i), Name: fmt.Sprintf("author%d", i)})
	}
	eid := int64(0)
	add := func(a, b int64) {
		d.Edges = append(d.Edges, Edge{ID: eid, Src: a, Dst: b})
		eid++
	}
	for c := 0; c < communities; c++ {
		base := c * size
		// Near-clique: each member links to ~60% of later members.
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.6 {
					add(int64(base+i), int64(base+j))
				}
			}
		}
		// Bridges to two random other communities.
		for b := 0; b < 2 && communities > 1; b++ {
			oc := rng.Intn(communities)
			if oc == c {
				continue
			}
			add(int64(base+rng.Intn(size)), int64(oc*size+rng.Intn(size)))
		}
	}
	d.decorate(rng)
	return d
}

// Twitter generates a follower-like directed graph: preferential
// attachment by in-degree, yielding the skewed hubs whose fan-out blows up
// join-based traversal (§7.2's Twitter experiment).
func Twitter(n, m int, seed int64) *Dataset {
	d := preferential(n, m, true, seed)
	d.Name = "twitter"
	for i := range d.Vertices {
		d.Vertices[i].Name = fmt.Sprintf("user%d", i)
	}
	return d
}

// Uniform generates an Erdős–Rényi style graph: m edges with uniformly
// random distinct endpoints (no self-loops). It is the shape the
// differential-testing oracle mutates — no structural signature, maximal
// variety per seed. Weights are integer-valued so cross-engine
// shortest-path cost comparisons are exact.
func Uniform(n, m int, directed bool, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "uniform", Directed: directed}
	if n < 2 {
		n = 2
	}
	for i := 0; i < n; i++ {
		d.Vertices = append(d.Vertices, Vertex{ID: int64(i), Name: fmt.Sprintf("v%d", i)})
	}
	for eid := int64(0); eid < int64(m); eid++ {
		src := rng.Int63n(int64(n))
		dst := rng.Int63n(int64(n))
		if src == dst {
			dst = (dst + 1) % int64(n)
		}
		d.Edges = append(d.Edges, Edge{
			ID: eid, Src: src, Dst: dst,
			Weight: float64(1 + rng.Intn(9)),
			Sel:    rng.Int63n(100),
			Label:  Labels[rng.Intn(len(Labels))],
		})
	}
	return d
}

// preferential builds a Barabási–Albert style graph. Each new vertex
// attaches m edges to targets sampled proportionally to degree.
func preferential(n, m int, directed bool, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Directed: directed}
	if m < 1 {
		m = 1
	}
	for i := 0; i < n; i++ {
		d.Vertices = append(d.Vertices, Vertex{ID: int64(i)})
	}
	// targets repeats vertex ids by degree for O(1) preferential sampling.
	var targets []int64
	eid := int64(0)
	for i := 0; i < n; i++ {
		src := int64(i)
		k := m
		if i < m+1 {
			k = i // early vertices connect to all predecessors
		}
		seen := map[int64]bool{}
		for j := 0; j < k; j++ {
			var dst int64
			for tries := 0; tries < 8; tries++ {
				if len(targets) == 0 {
					dst = int64(rng.Intn(i + 1))
				} else if rng.Float64() < 0.85 {
					dst = targets[rng.Intn(len(targets))]
				} else {
					dst = int64(rng.Intn(i + 1))
				}
				if dst != src && !seen[dst] {
					break
				}
			}
			if dst == src || seen[dst] {
				continue
			}
			seen[dst] = true
			d.Edges = append(d.Edges, Edge{ID: eid, Src: src, Dst: dst})
			eid++
			targets = append(targets, src, dst)
		}
	}
	d.decorate(rng)
	return d
}
