package datagen

import (
	"math/rand"
	"testing"
)

// checkIntegrity asserts the state's structural invariants: every edge
// endpoint references a live vertex and the id counters stay ahead of
// every live id.
func checkIntegrity(t *testing.T, s *GraphState) {
	t.Helper()
	for id, e := range s.Edges {
		if e.ID != id {
			t.Fatalf("edge map key %d holds edge with ID %d", id, e.ID)
		}
		if _, ok := s.Verts[e.Src]; !ok {
			t.Fatalf("edge %d has dangling src %d", id, e.Src)
		}
		if _, ok := s.Verts[e.Dst]; !ok {
			t.Fatalf("edge %d has dangling dst %d", id, e.Dst)
		}
	}
	for id := range s.Verts {
		if id >= s.nextV {
			t.Fatalf("vertex %d >= nextV %d", id, s.nextV)
		}
	}
	for id := range s.Edges {
		if id >= s.nextE {
			t.Fatalf("edge %d >= nextE %d", id, s.nextE)
		}
	}
}

// TestMutateApplyIntegrity drives a long random workload and checks the
// model never violates referential integrity — the property the engine's
// §3.3 maintenance is measured against.
func TestMutateApplyIntegrity(t *testing.T) {
	st := NewGraphState(Uniform(12, 20, true, 1))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		m := st.Mutate(rng)
		if m.WantErr {
			continue // the engine would reject it; the model must not apply it
		}
		st.Apply(m)
		if i%97 == 0 {
			checkIntegrity(t, st)
		}
	}
	checkIntegrity(t, st)
}

// TestDeleteVertexCascades pins the §3.3.2 semantics the model mirrors.
func TestDeleteVertexCascades(t *testing.T) {
	st := NewGraphState(&Dataset{
		Directed: true,
		Vertices: []Vertex{{ID: 1, Name: "a"}, {ID: 2, Name: "b"}, {ID: 3, Name: "c"}},
		Edges: []Edge{
			{ID: 10, Src: 1, Dst: 2},
			{ID: 11, Src: 2, Dst: 3},
			{ID: 12, Src: 3, Dst: 1},
		},
	})
	st.Apply(Mutation{Kind: MutDeleteVertex, V: Vertex{ID: 2}})
	if _, ok := st.Verts[2]; ok {
		t.Fatal("vertex 2 still present")
	}
	if len(st.Edges) != 1 {
		t.Fatalf("cascade left %d edges, want 1", len(st.Edges))
	}
	if _, ok := st.Edges[12]; !ok {
		t.Fatal("uninvolved edge 12 was cascaded away")
	}
}

// TestRenameVertexRewritesEdges pins the §3.3.1 referential-integrity
// rewrite.
func TestRenameVertexRewritesEdges(t *testing.T) {
	st := NewGraphState(&Dataset{
		Directed: true,
		Vertices: []Vertex{{ID: 1, Name: "a"}, {ID: 2, Name: "b"}},
		Edges:    []Edge{{ID: 10, Src: 1, Dst: 2}, {ID: 11, Src: 2, Dst: 1}},
	})
	st.Apply(Mutation{Kind: MutRenameVertex, OldID: 1, NewID: 9})
	if _, ok := st.Verts[1]; ok {
		t.Fatal("old vertex id still present")
	}
	if st.Verts[9] != "a" {
		t.Fatalf("rename lost the name: %q", st.Verts[9])
	}
	if e := st.Edges[10]; e.Src != 9 || e.Dst != 2 {
		t.Fatalf("edge 10 endpoints not rewritten: %d->%d", e.Src, e.Dst)
	}
	if e := st.Edges[11]; e.Src != 2 || e.Dst != 9 {
		t.Fatalf("edge 11 endpoints not rewritten: %d->%d", e.Src, e.Dst)
	}
	checkIntegrity(t, st)
}

// TestFanDegreesMatchKernel cross-checks the model's FanIn/FanOut against
// the graph kernel's over the materialized topology, directed and not.
func TestFanDegreesMatchKernel(t *testing.T) {
	for _, directed := range []bool{true, false} {
		d := Uniform(15, 30, directed, 3)
		st := NewGraphState(d)
		g := d.Build()
		for _, id := range st.VertexIDs() {
			v := g.Vertex(id)
			if got, want := st.FanOut(id), g.FanOut(v); got != want {
				t.Errorf("directed=%v FanOut(%d) = %d, kernel %d", directed, id, got, want)
			}
			if got, want := st.FanIn(id), g.FanIn(v); got != want {
				t.Errorf("directed=%v FanIn(%d) = %d, kernel %d", directed, id, got, want)
			}
		}
	}
}

// TestDatasetExportRoundTrip: exporting the state and re-importing it must
// be lossless, since the oracle rebuilds every baseline from the export.
func TestDatasetExportRoundTrip(t *testing.T) {
	st := NewGraphState(Uniform(10, 18, false, 4))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		m := st.Mutate(rng)
		if !m.WantErr {
			st.Apply(m)
		}
	}
	d := st.Dataset("x")
	st2 := NewGraphState(d)
	if len(st2.Verts) != len(st.Verts) || len(st2.Edges) != len(st.Edges) {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			len(st2.Verts), len(st2.Edges), len(st.Verts), len(st.Edges))
	}
	for id, name := range st.Verts {
		if st2.Verts[id] != name {
			t.Fatalf("vertex %d name %q != %q", id, st2.Verts[id], name)
		}
	}
	for id, e := range st.Edges {
		if st2.Edges[id] != e {
			t.Fatalf("edge %d image differs", id)
		}
	}
	// Export order is deterministic: ids ascending.
	for i := 1; i < len(d.Edges); i++ {
		if d.Edges[i-1].ID >= d.Edges[i].ID {
			t.Fatal("edge export not sorted by id")
		}
	}
}

// TestWantErrFrequency: invalid statements must actually occur, but stay a
// small minority of the workload.
func TestWantErrFrequency(t *testing.T) {
	st := NewGraphState(Uniform(12, 20, true, 6))
	rng := rand.New(rand.NewSource(7))
	bad := 0
	const n = 3000
	for i := 0; i < n; i++ {
		m := st.Mutate(rng)
		if m.WantErr {
			bad++
			continue
		}
		st.Apply(m)
	}
	if bad == 0 {
		t.Fatal("workload never generated an invalid statement")
	}
	if bad > n/4 {
		t.Fatalf("invalid statements dominate: %d of %d", bad, n)
	}
}
