package datagen

import (
	"math/rand"

	"grfusion/internal/graph"
)

// Pair is one (source, destination) query endpoint pair.
type Pair struct {
	Src, Dst int64
}

// PairsAtDistance samples up to count endpoint pairs whose BFS hop
// distance is exactly dist, the workload of the paper's reachability
// experiments (random queries "with different path lengths that make the
// query endpoints connected", §7.2). It returns fewer pairs when the graph
// has too few vertices at that distance.
func PairsAtDistance(g *graph.Graph, dist, count int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	var ids []int64
	g.Vertices(func(v *graph.Vertex) bool { ids = append(ids, v.ID); return true })
	if len(ids) == 0 || dist < 1 {
		return nil
	}
	var out []Pair
	seen := map[Pair]bool{}
	for attempts := 0; attempts < count*20 && len(out) < count; attempts++ {
		src := g.Vertex(ids[rng.Int63n(int64(len(ids)))])
		// A global-visit BFS emits tree paths in nondecreasing length; tree
		// depth equals true hop distance.
		it := graph.NewBFS(g, graph.Spec{Start: src, MinLen: dist, MaxLen: dist})
		var candidates []int64
		for p := it.Next(); p != nil; p = it.Next() {
			candidates = append(candidates, p.End().ID)
			if len(candidates) >= 64 {
				break
			}
		}
		if len(candidates) == 0 {
			continue
		}
		pair := Pair{Src: src.ID, Dst: candidates[rng.Intn(len(candidates))]}
		if seen[pair] {
			continue
		}
		seen[pair] = true
		out = append(out, pair)
	}
	return out
}

// ConnectedPairs samples up to count pairs with a path between them (any
// distance), for shortest-path workloads.
func ConnectedPairs(g *graph.Graph, count int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	var ids []int64
	g.Vertices(func(v *graph.Vertex) bool { ids = append(ids, v.ID); return true })
	if len(ids) < 2 {
		return nil
	}
	var out []Pair
	seen := map[Pair]bool{}
	for attempts := 0; attempts < count*20 && len(out) < count; attempts++ {
		src := g.Vertex(ids[rng.Int63n(int64(len(ids)))])
		it := graph.NewBFS(g, graph.Spec{Start: src, MinLen: 1})
		var reach []int64
		for p := it.Next(); p != nil; p = it.Next() {
			reach = append(reach, p.End().ID)
			if len(reach) >= 256 {
				break
			}
		}
		if len(reach) < 2 {
			continue
		}
		pair := Pair{Src: src.ID, Dst: reach[rng.Intn(len(reach))]}
		if pair.Src == pair.Dst || seen[pair] {
			continue
		}
		seen[pair] = true
		out = append(out, pair)
	}
	return out
}
