package datagen

import (
	"testing"

	"grfusion/internal/graph"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a := Twitter(500, 3, 42)
	b := Twitter(500, 3, 42)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("nondeterministic edge count: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := Twitter(500, 3, 43)
	same := len(a.Edges) == len(c.Edges)
	if same {
		diff := false
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestDomainSignatures(t *testing.T) {
	road := Road(30, 30, 1)
	if road.Directed {
		t.Error("road must be undirected")
	}
	if d := road.AvgDegree(); d < 2 || d > 4.2 {
		t.Errorf("road avg degree %g outside [2,4.2]", d)
	}
	protein := Protein(800, 8, 1)
	if protein.Directed {
		t.Error("protein must be undirected")
	}
	if d := protein.AvgDegree(); d < 8 {
		t.Errorf("protein avg degree %g too sparse", d)
	}
	tw := Twitter(1500, 4, 1)
	if !tw.Directed {
		t.Error("twitter must be directed")
	}
	// Twitter must be skewed: max in-degree far above the average.
	g := tw.Build()
	maxIn := 0
	g.Vertices(func(v *graph.Vertex) bool {
		if len(v.In) > maxIn {
			maxIn = len(v.In)
		}
		return true
	})
	if float64(maxIn) < 6*tw.AvgDegree() {
		t.Errorf("twitter max in-degree %d not skewed (avg %g)", maxIn, tw.AvgDegree())
	}
	dblp := DBLP(40, 8, 1)
	if dblp.AvgDegree() < 3 {
		t.Errorf("dblp too sparse: %g", dblp.AvgDegree())
	}
}

func TestEdgeAttributes(t *testing.T) {
	d := Protein(300, 5, 7)
	labels := map[string]bool{}
	for _, e := range d.Edges {
		if e.Sel < 0 || e.Sel >= 100 {
			t.Fatalf("sel out of range: %d", e.Sel)
		}
		if e.Weight <= 0 {
			t.Fatalf("non-positive weight: %g", e.Weight)
		}
		labels[e.Label] = true
	}
	if len(labels) < 2 {
		t.Errorf("labels not diverse: %v", labels)
	}
	// Selectivity control: sel < 50 must select roughly half the edges.
	n := 0
	for _, e := range d.Edges {
		if e.Sel < 50 {
			n++
		}
	}
	frac := float64(n) / float64(len(d.Edges))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("sel<50 selects %.2f of edges", frac)
	}
}

func TestBuildTopology(t *testing.T) {
	d := Road(10, 10, 3)
	g := d.Build()
	if g.NumVertices() != len(d.Vertices) || g.NumEdges() != len(d.Edges) {
		t.Fatalf("build: %d/%d vertices, %d/%d edges",
			g.NumVertices(), len(d.Vertices), g.NumEdges(), len(d.Edges))
	}
	if g.Directed() != d.Directed {
		t.Error("directedness lost")
	}
}

func TestPairsAtDistance(t *testing.T) {
	d := Road(20, 20, 5)
	g := d.Build()
	for _, dist := range []int{2, 5, 10} {
		pairs := PairsAtDistance(g, dist, 10, 99)
		if len(pairs) == 0 {
			t.Fatalf("no pairs at distance %d", dist)
		}
		for _, p := range pairs {
			// Verify the BFS distance is exactly dist.
			src, dstV := g.Vertex(p.Src), g.Vertex(p.Dst)
			it := graph.NewBFS(g, graph.Spec{Start: src, Target: dstV, MinLen: 1})
			sp := it.Next()
			if sp == nil || sp.Len() != dist {
				got := -1
				if sp != nil {
					got = sp.Len()
				}
				t.Fatalf("pair %v: distance %d, want %d", p, got, dist)
			}
		}
	}
}

func TestConnectedPairs(t *testing.T) {
	d := Protein(300, 4, 11)
	g := d.Build()
	pairs := ConnectedPairs(g, 20, 7)
	if len(pairs) == 0 {
		t.Fatal("no connected pairs")
	}
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatal("degenerate pair")
		}
		if !graph.Reachable(g, g.Vertex(p.Src), g.Vertex(p.Dst), 0) {
			t.Fatalf("pair %v not connected", p)
		}
	}
}
