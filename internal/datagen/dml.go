package datagen

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file generates randomized DML workloads over a graph dataset: the
// interleaved insert/delete/update streams the differential-testing oracle
// (internal/oracle) drives through the engine while cross-checking every
// query answer. GraphState is the pure-Go ground truth the oracle compares
// engines against; Mutation is one logical DML operation that the oracle
// renders to SQL and GraphState mirrors with the engine's transactional
// semantics (§3.3): vertex deletes cascade onto incident edges, vertex-id
// renames rewrite edge endpoints, and deliberately invalid statements
// (WantErr) must fail atomically and leave no trace.

// MutationKind enumerates the DML operations of the oracle workloads.
type MutationKind uint8

// Mutation kinds.
const (
	// MutInsertVertex inserts a fresh vertex.
	MutInsertVertex MutationKind = iota
	// MutInsertEdge inserts an edge between live vertexes.
	MutInsertEdge
	// MutDeleteVertex deletes a vertex; incident edges cascade (§3.3.2).
	MutDeleteVertex
	// MutDeleteEdge deletes one edge.
	MutDeleteEdge
	// MutRewireEdge updates an edge's endpoints in place.
	MutRewireEdge
	// MutEdgeAttr updates an edge's non-topology attributes (sel, w).
	MutEdgeAttr
	// MutRenameVertex changes a vertex identifier; the engine must rewrite
	// referencing edge tuples to preserve referential integrity (§3.3.1).
	MutRenameVertex
	// MutRenameEdge changes an edge identifier.
	MutRenameEdge
)

// String names the kind for logs and violation reports.
func (k MutationKind) String() string {
	switch k {
	case MutInsertVertex:
		return "insert-vertex"
	case MutInsertEdge:
		return "insert-edge"
	case MutDeleteVertex:
		return "delete-vertex"
	case MutDeleteEdge:
		return "delete-edge"
	case MutRewireEdge:
		return "rewire-edge"
	case MutEdgeAttr:
		return "edge-attr"
	case MutRenameVertex:
		return "rename-vertex"
	case MutRenameEdge:
		return "rename-edge"
	default:
		return fmt.Sprintf("mutation(%d)", k)
	}
}

// Mutation is one logical DML operation.
type Mutation struct {
	Kind MutationKind
	// WantErr marks a deliberately invalid statement (duplicate identifier,
	// dangling endpoint): the engine must reject it and roll back
	// atomically. Valid only at generation time — a replay that drops
	// earlier statements may change whether the statement fails.
	WantErr bool
	// V is the vertex payload of MutInsertVertex/MutDeleteVertex.
	V Vertex
	// E is the edge payload of the edge mutations: the full new image for
	// inserts, the identifying ID plus new endpoints/attributes for
	// rewires and attribute updates.
	E Edge
	// OldID and NewID parameterize the rename mutations.
	OldID, NewID int64
}

// GraphState is the evolving ground-truth graph a DML workload runs over.
type GraphState struct {
	Directed bool
	Verts    map[int64]string // vertex id -> name
	Edges    map[int64]Edge   // edge id -> full image (ID field kept in sync)

	nextV, nextE int64
}

// NewGraphState captures a dataset as mutable ground truth.
func NewGraphState(d *Dataset) *GraphState {
	s := &GraphState{
		Directed: d.Directed,
		Verts:    make(map[int64]string, len(d.Vertices)),
		Edges:    make(map[int64]Edge, len(d.Edges)),
	}
	for _, v := range d.Vertices {
		s.Verts[v.ID] = v.Name
		if v.ID >= s.nextV {
			s.nextV = v.ID + 1
		}
	}
	for _, e := range d.Edges {
		s.Edges[e.ID] = e
		if e.ID >= s.nextE {
			s.nextE = e.ID + 1
		}
	}
	return s
}

// VertexIDs returns the live vertex ids in ascending order.
func (s *GraphState) VertexIDs() []int64 {
	ids := make([]int64, 0, len(s.Verts))
	for id := range s.Verts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgeIDs returns the live edge ids in ascending order.
func (s *GraphState) EdgeIDs() []int64 {
	ids := make([]int64, 0, len(s.Edges))
	for id := range s.Edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dataset exports the current state as a Dataset (ids ascending), so the
// oracle can rebuild reference engines and baseline stores from scratch.
func (s *GraphState) Dataset(name string) *Dataset {
	d := &Dataset{Name: name, Directed: s.Directed}
	for _, id := range s.VertexIDs() {
		d.Vertices = append(d.Vertices, Vertex{ID: id, Name: s.Verts[id]})
	}
	for _, id := range s.EdgeIDs() {
		d.Edges = append(d.Edges, s.Edges[id])
	}
	return d
}

// FanOut returns the traversable out-degree of a vertex under the graph's
// directedness (full degree for undirected graphs), matching
// graph.(*Graph).FanOut over the materialized topology.
func (s *GraphState) FanOut(id int64) int {
	n := 0
	for _, e := range s.Edges {
		if e.Src == id {
			n++
		}
		if !s.Directed && e.Dst == id {
			n++
		}
	}
	return n
}

// FanIn returns the in-degree (full degree for undirected graphs).
func (s *GraphState) FanIn(id int64) int {
	n := 0
	for _, e := range s.Edges {
		if e.Dst == id {
			n++
		}
		if !s.Directed && e.Src == id {
			n++
		}
	}
	return n
}

// pick returns a uniformly random element of ids.
func pick(rng *rand.Rand, ids []int64) int64 { return ids[rng.Intn(len(ids))] }

// Mutate generates the next random mutation against the current state
// without applying it. Roughly one in twelve mutations is a deliberately
// invalid statement (WantErr). Generated edge weights are integer-valued
// so cross-engine cost comparisons stay exact.
func (s *GraphState) Mutate(rng *rand.Rand) Mutation {
	verts := s.VertexIDs()
	edges := s.EdgeIDs()

	if rng.Intn(12) == 0 {
		if m, ok := s.mutateInvalid(rng, verts, edges); ok {
			return m
		}
	}

	// Weighted kind choice, re-rolled when the state cannot support the
	// kind (no edges to delete, too few vertexes to wire an edge).
	for {
		roll := rng.Intn(100)
		switch {
		case roll < 18: // insert vertex
			id := s.nextV
			return Mutation{Kind: MutInsertVertex, V: Vertex{ID: id, Name: fmt.Sprintf("v%d", id)}}
		case roll < 44: // insert edge
			if len(verts) < 2 {
				continue
			}
			src, dst := pick(rng, verts), pick(rng, verts)
			if src == dst { // self-loops excluded from oracle workloads
				continue
			}
			return Mutation{Kind: MutInsertEdge, E: Edge{
				ID: s.nextE, Src: src, Dst: dst,
				Weight: float64(1 + rng.Intn(9)),
				Sel:    rng.Int63n(100),
				Label:  Labels[rng.Intn(len(Labels))],
			}}
		case roll < 64: // delete edge
			if len(edges) == 0 {
				continue
			}
			return Mutation{Kind: MutDeleteEdge, E: Edge{ID: pick(rng, edges)}}
		case roll < 72: // delete vertex (cascades)
			if len(verts) < 4 {
				continue
			}
			id := pick(rng, verts)
			return Mutation{Kind: MutDeleteVertex, V: Vertex{ID: id, Name: s.Verts[id]}}
		case roll < 80: // rewire edge
			if len(edges) == 0 || len(verts) < 2 {
				continue
			}
			src, dst := pick(rng, verts), pick(rng, verts)
			if src == dst {
				continue
			}
			return Mutation{Kind: MutRewireEdge, E: Edge{ID: pick(rng, edges), Src: src, Dst: dst}}
		case roll < 89: // update edge attributes
			if len(edges) == 0 {
				continue
			}
			return Mutation{Kind: MutEdgeAttr, E: Edge{
				ID:     pick(rng, edges),
				Weight: float64(1 + rng.Intn(9)),
				Sel:    rng.Int63n(100),
			}}
		case roll < 95: // rename vertex
			if len(verts) == 0 {
				continue
			}
			old := pick(rng, verts)
			id := s.nextV
			return Mutation{Kind: MutRenameVertex, OldID: old, NewID: id}
		default: // rename edge
			if len(edges) == 0 {
				continue
			}
			old := pick(rng, edges)
			id := s.nextE
			return Mutation{Kind: MutRenameEdge, OldID: old, NewID: id}
		}
	}
}

// mutateInvalid builds a statement that must fail atomically.
func (s *GraphState) mutateInvalid(rng *rand.Rand, verts, edges []int64) (Mutation, bool) {
	switch rng.Intn(4) {
	case 0: // duplicate vertex id
		if len(verts) == 0 {
			return Mutation{}, false
		}
		id := pick(rng, verts)
		return Mutation{Kind: MutInsertVertex, WantErr: true,
			V: Vertex{ID: id, Name: "dup"}}, true
	case 1: // edge with a dangling endpoint
		if len(verts) == 0 {
			return Mutation{}, false
		}
		return Mutation{Kind: MutInsertEdge, WantErr: true, E: Edge{
			ID: s.nextE, Src: pick(rng, verts), Dst: s.nextV + 1000,
			Weight: 1, Sel: rng.Int63n(100), Label: Labels[0],
		}}, true
	case 2: // rewire onto a dangling endpoint
		if len(edges) == 0 || len(verts) == 0 {
			return Mutation{}, false
		}
		return Mutation{Kind: MutRewireEdge, WantErr: true, E: Edge{
			ID: pick(rng, edges), Src: pick(rng, verts), Dst: s.nextV + 1000,
		}}, true
	default: // rename a vertex onto an existing id
		if len(verts) < 2 {
			return Mutation{}, false
		}
		old := pick(rng, verts)
		new_ := pick(rng, verts)
		if old == new_ {
			return Mutation{}, false
		}
		return Mutation{Kind: MutRenameVertex, WantErr: true, OldID: old, NewID: new_}, true
	}
}

// Apply mirrors a successfully executed mutation onto the state with the
// engine's semantics. Mutations whose target no longer exists are no-ops,
// matching a DML statement whose WHERE clause matched zero rows. The caller
// must NOT apply mutations the engine rejected (they rolled back).
func (s *GraphState) Apply(m Mutation) {
	switch m.Kind {
	case MutInsertVertex:
		s.Verts[m.V.ID] = m.V.Name
		if m.V.ID >= s.nextV {
			s.nextV = m.V.ID + 1
		}
	case MutInsertEdge:
		s.Edges[m.E.ID] = m.E
		if m.E.ID >= s.nextE {
			s.nextE = m.E.ID + 1
		}
	case MutDeleteVertex:
		if _, ok := s.Verts[m.V.ID]; !ok {
			return
		}
		delete(s.Verts, m.V.ID)
		for id, e := range s.Edges {
			if e.Src == m.V.ID || e.Dst == m.V.ID {
				delete(s.Edges, id)
			}
		}
	case MutDeleteEdge:
		delete(s.Edges, m.E.ID)
	case MutRewireEdge:
		e, ok := s.Edges[m.E.ID]
		if !ok {
			return
		}
		e.Src, e.Dst = m.E.Src, m.E.Dst
		s.Edges[m.E.ID] = e
	case MutEdgeAttr:
		e, ok := s.Edges[m.E.ID]
		if !ok {
			return
		}
		e.Weight, e.Sel = m.E.Weight, m.E.Sel
		s.Edges[m.E.ID] = e
	case MutRenameVertex:
		name, ok := s.Verts[m.OldID]
		if !ok {
			return
		}
		delete(s.Verts, m.OldID)
		s.Verts[m.NewID] = name
		if m.NewID >= s.nextV {
			s.nextV = m.NewID + 1
		}
		// Referential integrity: rewrite referencing edges (§3.3.1).
		for id, e := range s.Edges {
			changed := false
			if e.Src == m.OldID {
				e.Src = m.NewID
				changed = true
			}
			if e.Dst == m.OldID {
				e.Dst = m.NewID
				changed = true
			}
			if changed {
				s.Edges[id] = e
			}
		}
	case MutRenameEdge:
		e, ok := s.Edges[m.OldID]
		if !ok {
			return
		}
		delete(s.Edges, m.OldID)
		e.ID = m.NewID
		s.Edges[m.NewID] = e
		if m.NewID >= s.nextE {
			s.nextE = m.NewID + 1
		}
	}
}
