package catalog

import (
	"fmt"
	"sort"
	"strings"

	"grfusion/internal/expr"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// MatView is a single-table materialized relational view: a projection and
// selection over one base table, materialized into its own backing table
// and maintained incrementally under DML on the base.
//
// The paper motivates these as graph-view sources: "the vertexes or the
// edges data can be obtained through a relational materialized view" (§2),
// and topological updates flow through "relational views selecting from a
// single table" (§3.3.2). A graph view built over a MatView's table is
// maintained transitively: base DML maintains the view's rows, which in
// turn maintain the graph topology, all inside one transaction.
type MatView struct {
	Name string
	// Base is the base table name.
	Base string
	// CreateSQL reproduces the defining statement (used by snapshots).
	CreateSQL string

	table *storage.Table
	// cols are the base-schema positions projected, in view-column order.
	cols []int
	// pred is the WHERE predicate bound to the base schema (nil = all).
	pred expr.Expr
	// rowMap maps base RowIDs to view RowIDs.
	rowMap map[storage.RowID]storage.RowID
}

// NewMatView builds the view definition and materializes it with one pass
// over the base table.
func NewMatView(name string, base *storage.Table, table *storage.Table,
	cols []int, pred expr.Expr, createSQL string) (*MatView, error) {

	mv := &MatView{
		Name: name, Base: base.Name(), CreateSQL: createSQL,
		table: table, cols: append([]int(nil), cols...), pred: pred,
		rowMap: make(map[storage.RowID]storage.RowID),
	}
	var err error
	base.Scan(func(id storage.RowID, row types.Row) bool {
		var in bool
		in, err = mv.Matches(row)
		if err != nil {
			return false
		}
		if !in {
			return true
		}
		var vid storage.RowID
		vid, err = table.Insert(mv.Project(row))
		if err != nil {
			return false
		}
		mv.rowMap[id] = vid
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("materialized view %s: %v", name, err)
	}
	return mv, nil
}

// Table returns the backing table (registered in the catalog under the
// view's name; read-only for user DML).
func (mv *MatView) Table() *storage.Table { return mv.table }

// Matches evaluates the view predicate against a base row.
func (mv *MatView) Matches(row types.Row) (bool, error) {
	if mv.pred == nil {
		return true, nil
	}
	return expr.EvalBool(mv.pred, &expr.Env{Row: row})
}

// Project builds the view tuple for a base row.
func (mv *MatView) Project(row types.Row) types.Row {
	out := make(types.Row, len(mv.cols))
	for i, c := range mv.cols {
		out[i] = row[c]
	}
	return out
}

// Lookup returns the view RowID materialized for a base row, if any.
func (mv *MatView) Lookup(base storage.RowID) (storage.RowID, bool) {
	vid, ok := mv.rowMap[base]
	return vid, ok
}

// MapSet records the base→view row mapping.
func (mv *MatView) MapSet(base, view storage.RowID) { mv.rowMap[base] = view }

// MapDelete removes the mapping for a base row.
func (mv *MatView) MapDelete(base storage.RowID) { delete(mv.rowMap, base) }

// --- Catalog integration ----------------------------------------------------

// RegisterMatView installs a materialized view: its backing table joins
// the table namespace (so queries and graph views can reference it) and
// base-table dependency tracking begins.
func (c *Catalog) RegisterMatView(mv *MatView) error {
	if err := c.CreateTable(mv.table); err != nil {
		return err
	}
	key := strings.ToLower(mv.Name)
	c.matviews[key] = mv
	base := strings.ToLower(mv.Base)
	c.matDeps[base] = append(c.matDeps[base], mv)
	return nil
}

// MatView looks up a materialized view by name.
func (c *Catalog) MatView(name string) (*MatView, bool) {
	mv, ok := c.matviews[strings.ToLower(name)]
	return mv, ok
}

// MatViews returns all materialized-view names, sorted.
func (c *Catalog) MatViews() []string {
	out := make([]string, 0, len(c.matviews))
	for k := range c.matviews {
		out = append(out, c.matviews[k].Name)
	}
	sort.Strings(out)
	return out
}

// DependentMatViews returns the materialized views defined over the named
// base table.
func (c *Catalog) DependentMatViews(base string) []*MatView {
	return c.matDeps[strings.ToLower(base)]
}

// IsMatViewTable reports whether name is the backing table of a
// materialized view (and therefore read-only for direct DML).
func (c *Catalog) IsMatViewTable(name string) bool {
	_, ok := c.matviews[strings.ToLower(name)]
	return ok
}

// DropMatView removes a materialized view and its backing table. It fails
// while graph views or other materialized views depend on it.
func (c *Catalog) DropMatView(name string) error {
	key := strings.ToLower(name)
	mv, ok := c.matviews[key]
	if !ok {
		return fmt.Errorf("unknown materialized view %s", name)
	}
	if vs := c.deps[key]; len(vs) > 0 {
		return fmt.Errorf("materialized view %s is a relational source of graph view %s", name, vs[0].Name)
	}
	if ds := c.matDeps[key]; len(ds) > 0 {
		return fmt.Errorf("materialized view %s is the base of materialized view %s", name, ds[0].Name)
	}
	delete(c.matviews, key)
	delete(c.tables, key)
	base := strings.ToLower(mv.Base)
	kept := c.matDeps[base][:0]
	for _, d := range c.matDeps[base] {
		if d != mv {
			kept = append(kept, d)
		}
	}
	if len(kept) == 0 {
		delete(c.matDeps, base)
	} else {
		c.matDeps[base] = kept
	}
	return nil
}
