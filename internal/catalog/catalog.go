// Package catalog is the system catalog: it tracks tables, indexes, and
// graph views, including the relational-source → graph-view dependency
// edges that drive online graph-view maintenance under DML (§3.3 of the
// paper).
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Catalog is the schema registry of one database. It is not internally
// synchronized; the engine serializes access.
type Catalog struct {
	tables map[string]*storage.Table
	views  map[string]*GraphView

	// deps maps a lower-cased table name to the graph views that use it as
	// a vertex or edge relational-source.
	deps map[string][]*GraphView

	// matviews maps lower-cased names to materialized views; matDeps maps
	// a base table name to the materialized views defined over it.
	matviews map[string]*MatView
	matDeps  map[string][]*MatView
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*storage.Table),
		views:    make(map[string]*GraphView),
		deps:     make(map[string][]*GraphView),
		matviews: make(map[string]*MatView),
		matDeps:  make(map[string][]*MatView),
	}
}

// Clone returns a copy of the catalog for copy-on-write versioning: the
// registry maps (and dependency slices, which DropGraphView edits in
// place) are copied, the registered objects themselves are shared. DDL
// clones the catalog before mutating it so readers pinned to the previous
// engine version keep a stable registry.
func (c *Catalog) Clone() *Catalog {
	nc := &Catalog{
		tables:   make(map[string]*storage.Table, len(c.tables)),
		views:    make(map[string]*GraphView, len(c.views)),
		deps:     make(map[string][]*GraphView, len(c.deps)),
		matviews: make(map[string]*MatView, len(c.matviews)),
		matDeps:  make(map[string][]*MatView, len(c.matDeps)),
	}
	for k, v := range c.tables {
		nc.tables[k] = v
	}
	for k, v := range c.views {
		nc.views[k] = v
	}
	for k, v := range c.deps {
		nc.deps[k] = append([]*GraphView(nil), v...)
	}
	for k, v := range c.matviews {
		nc.matviews[k] = v
	}
	for k, v := range c.matDeps {
		nc.matDeps[k] = append([]*MatView(nil), v...)
	}
	return nc
}

// CreateTable registers a new table.
func (c *Catalog) CreateTable(t *storage.Table) error {
	key := strings.ToLower(t.Name())
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("table %s already exists", t.Name())
	}
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("cannot create table %s: a graph view of that name exists", t.Name())
	}
	c.tables[key] = t
	return nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*storage.Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// DropTable removes a table. It fails while any graph view or
// materialized view depends on it, and refuses materialized-view backing
// tables (use DropMatView).
func (c *Catalog) DropTable(name string) error {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("unknown table %s", name)
	}
	if c.IsMatViewTable(name) {
		return fmt.Errorf("%s is a materialized view; use DROP MATERIALIZED VIEW", name)
	}
	if vs := c.deps[key]; len(vs) > 0 {
		names := make([]string, len(vs))
		for i, v := range vs {
			names[i] = v.Name
		}
		sort.Strings(names)
		return fmt.Errorf("table %s is a relational source of graph view(s) %s",
			name, strings.Join(names, ", "))
	}
	if ds := c.matDeps[key]; len(ds) > 0 {
		return fmt.Errorf("table %s is the base of materialized view %s", name, ds[0].Name)
	}
	delete(c.tables, key)
	return nil
}

// Tables returns all table names in sorted order.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for k := range c.tables {
		out = append(out, c.tables[k].Name())
	}
	sort.Strings(out)
	return out
}

// RegisterGraphView installs a built graph view and records its source
// dependencies.
func (c *Catalog) RegisterGraphView(gv *GraphView) error {
	key := strings.ToLower(gv.Name)
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("graph view %s already exists", gv.Name)
	}
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("cannot create graph view %s: a table of that name exists", gv.Name)
	}
	c.views[key] = gv
	c.addDep(gv.VertexSource, gv)
	if !strings.EqualFold(gv.EdgeSource, gv.VertexSource) {
		c.addDep(gv.EdgeSource, gv)
	}
	return nil
}

func (c *Catalog) addDep(table string, gv *GraphView) {
	key := strings.ToLower(table)
	c.deps[key] = append(c.deps[key], gv)
}

// GraphView looks up a graph view by name (case-insensitive).
func (c *Catalog) GraphView(name string) (*GraphView, bool) {
	gv, ok := c.views[strings.ToLower(name)]
	return gv, ok
}

// DropGraphView removes a graph view and its dependency records.
func (c *Catalog) DropGraphView(name string) error {
	key := strings.ToLower(name)
	gv, ok := c.views[key]
	if !ok {
		return fmt.Errorf("unknown graph view %s", name)
	}
	delete(c.views, key)
	for tbl, vs := range c.deps {
		kept := vs[:0]
		for _, v := range vs {
			if v != gv {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			delete(c.deps, tbl)
		} else {
			c.deps[tbl] = kept
		}
	}
	return nil
}

// GraphViews returns all graph-view names in sorted order.
func (c *Catalog) GraphViews() []string {
	out := make([]string, 0, len(c.views))
	for k := range c.views {
		out = append(out, c.views[k].Name)
	}
	sort.Strings(out)
	return out
}

// DependentViews returns the graph views that use the named table as a
// relational source; DML on the table must maintain each of them (§3.3).
func (c *Catalog) DependentViews(table string) []*GraphView {
	return c.deps[strings.ToLower(table)]
}

// ResolveRelation resolves a FROM-clause name to either a table or a graph
// view member (Name.Vertexes / Name.Edges / Name.Paths).
func (c *Catalog) ResolveRelation(name string) (any, error) {
	if t, ok := c.Table(name); ok {
		return t, nil
	}
	if gv, ok := c.GraphView(name); ok {
		return gv, nil
	}
	return nil, fmt.Errorf("unknown table or graph view %q", name)
}

// CheckColumnKinds verifies that a proposed attribute mapping refers to
// existing columns and returns their positions and kinds.
func CheckColumnKinds(t *storage.Table, cols []string) ([]int, []types.Kind, error) {
	pos := make([]int, len(cols))
	kinds := make([]types.Kind, len(cols))
	for i, cn := range cols {
		p, err := t.Schema().Resolve("", cn)
		if err != nil {
			return nil, nil, fmt.Errorf("table %s: %v", t.Name(), err)
		}
		pos[i] = p
		kinds[i] = t.Schema().Columns[p].Type
	}
	return pos, kinds, nil
}
