package catalog

import (
	"time"

	"grfusion/internal/graph"
)

// GraphStats is the per-graph-view statistics object of §6.3: the paper
// keeps the average fan-out of each graph view in the system catalog and,
// when the statistics configuration is enabled, refreshes it with a
// backend thread walking the compact graph-view structures. The optimizer
// consults it to choose between the BFS and DFS physical operators.
type GraphStats struct {
	// AvgFanOut is the mean traversable degree (the §6.3 F statistic).
	AvgFanOut float64
	// MaxFanOut is the largest traversable degree — high skew (Twitter-like
	// hubs) makes breadth-first frontiers explode faster than AvgFanOut
	// alone predicts.
	MaxFanOut int
	// Vertices and Edges are the topology counts at refresh time.
	Vertices, Edges int
	// UpdatedAt stamps the refresh.
	UpdatedAt time.Time
}

// ComputeStats walks the topology and builds a fresh statistics object.
// It is O(V) and intended for the background refresher, not per query.
func (gv *GraphView) ComputeStats(now time.Time) *GraphStats {
	st := &GraphStats{
		AvgFanOut: gv.G.AvgFanOut(),
		Vertices:  gv.G.NumVertices(),
		Edges:     gv.G.NumEdges(),
		UpdatedAt: now,
	}
	gv.G.Vertices(func(v *graph.Vertex) bool {
		if d := gv.G.FanOut(v); d > st.MaxFanOut {
			st.MaxFanOut = d
		}
		return true
	})
	return st
}

// SetStats publishes a statistics object for optimizer use.
func (gv *GraphView) SetStats(st *GraphStats) { gv.stats.Store(st) }

// Stats returns the last published statistics object, or nil when the
// statistics configuration is disabled or no refresh has run yet (the
// optimizer then falls back to the O(1) live average fan-out).
func (gv *GraphView) Stats() *GraphStats { return gv.stats.Load() }
