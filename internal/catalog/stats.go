package catalog

import (
	"time"

	"grfusion/internal/graph"
)

// GraphStats is the per-graph-view statistics object of §6.3: the paper
// keeps the average fan-out of each graph view in the system catalog and,
// when the statistics configuration is enabled, refreshes it with a
// backend thread walking the compact graph-view structures. The optimizer
// consults it to choose between the BFS and DFS physical operators.
type GraphStats struct {
	// AvgFanOut is the mean traversable degree (the §6.3 F statistic).
	AvgFanOut float64
	// MaxFanOut is the largest traversable degree — high skew (Twitter-like
	// hubs) makes breadth-first frontiers explode faster than AvgFanOut
	// alone predicts.
	MaxFanOut int
	// Vertices and Edges are the topology counts at refresh time.
	Vertices, Edges int
	// UpdatedAt stamps the refresh.
	UpdatedAt time.Time
	// MaintOps is the view's maintenance-operation count at refresh time;
	// FreshStats compares it against the live count to detect statistics
	// that predate heavy DML.
	MaintOps int64
}

// ComputeStats walks the topology and builds a fresh statistics object.
// It is O(V) and intended for the background refresher, not per query.
func (gv *GraphView) ComputeStats(now time.Time) *GraphStats {
	st := &GraphStats{
		AvgFanOut: gv.G.AvgFanOut(),
		Vertices:  gv.G.NumVertices(),
		Edges:     gv.G.NumEdges(),
		UpdatedAt: now,
		MaintOps:  gv.maintOps.Load(),
	}
	gv.G.Vertices(func(v *graph.Vertex) bool {
		if d := gv.G.FanOut(v); d > st.MaxFanOut {
			st.MaxFanOut = d
		}
		return true
	})
	return st
}

// SetStats publishes a statistics object for optimizer use.
func (gv *GraphView) SetStats(st *GraphStats) { gv.stats.Store(st) }

// Stats returns the last published statistics object, or nil when the
// statistics configuration is disabled or no refresh has run yet (the
// optimizer then falls back to the O(1) live average fan-out).
func (gv *GraphView) Stats() *GraphStats { return gv.stats.Load() }

// InvalidateStats withdraws the published statistics object. The engine
// calls it when the topology is rebuilt wholesale (RebuildGraphView,
// snapshot restore): counts measured on the previous topology must not
// steer the §6.3 BFS/DFS choice on the new one.
func (gv *GraphView) InvalidateStats() { gv.stats.Store(nil) }

// MaintOps reports how many incremental maintenance operations have been
// applied to the topology since the view was built.
func (gv *GraphView) MaintOps() int64 { return gv.maintOps.Load() }

// staleDriftFloor is the minimum number of maintenance operations that can
// mark a statistics object stale; below it, drift on tiny graphs would
// invalidate statistics after every handful of rows.
const staleDriftFloor = 64

// FreshStats returns the published statistics object only while it is
// still representative: statistics drop out once the maintenance-operation
// count has drifted by more than max(64, (V+E)/8) since they were
// computed — bulk DML between refreshes otherwise leaves the optimizer
// choosing physical operators from counts measured on a graph that no
// longer exists. Returns nil when no fresh statistics are available (the
// optimizer then falls back to the live O(1) average fan-out).
func (gv *GraphView) FreshStats() *GraphStats {
	st := gv.stats.Load()
	if st == nil {
		return nil
	}
	limit := int64(st.Vertices+st.Edges) / 8
	if limit < staleDriftFloor {
		limit = staleDriftFloor
	}
	if gv.maintOps.Load()-st.MaintOps > limit {
		return nil
	}
	return st
}
