package catalog

import (
	"strings"
	"testing"
	"time"

	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// socialFixture builds the Users/Relationships tables of Figure 3 and a
// SocialNetwork graph view over them (Listing 1).
func socialFixture(t *testing.T) (*Catalog, *storage.Table, *storage.Table, *GraphView) {
	t.Helper()
	c := New()
	users, err := storage.NewTable("Users", types.NewSchema(
		types.Column{Qualifier: "Users", Name: "uid", Type: types.KindInt},
		types.Column{Qualifier: "Users", Name: "lname", Type: types.KindString},
		types.Column{Qualifier: "Users", Name: "dob", Type: types.KindString},
	), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rels, err := storage.NewTable("Relationships", types.NewSchema(
		types.Column{Qualifier: "Relationships", Name: "relid", Type: types.KindInt},
		types.Column{Qualifier: "Relationships", Name: "uid1", Type: types.KindInt},
		types.Column{Qualifier: "Relationships", Name: "uid2", Type: types.KindInt},
		types.Column{Qualifier: "Relationships", Name: "sdate", Type: types.KindString},
	), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(users); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(rels); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if _, err := users.Insert(types.Row{types.NewInt(i), types.NewString("u"), types.NewString("2000")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rels.Insert(types.Row{types.NewInt(10), types.NewInt(1), types.NewInt(2), types.NewString("d")}); err != nil {
		t.Fatal(err)
	}
	if _, err := rels.Insert(types.Row{types.NewInt(11), types.NewInt(2), types.NewInt(3), types.NewString("d")}); err != nil {
		t.Fatal(err)
	}
	gv, err := NewGraphView("SocialNetwork", false, users, rels,
		[]AttrMap{{Name: "ID", Source: "uid"}, {Name: "lstname", Source: "lname"}},
		[]AttrMap{{Name: "ID", Source: "relid"}, {Name: "FROM", Source: "uid1"},
			{Name: "TO", Source: "uid2"}, {Name: "sdate", Source: "sdate"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGraphView(gv); err != nil {
		t.Fatal(err)
	}
	return c, users, rels, gv
}

func TestGraphViewBuild(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	if gv.G.NumVertices() != 3 || gv.G.NumEdges() != 2 {
		t.Fatalf("topology: %d vertices %d edges", gv.G.NumVertices(), gv.G.NumEdges())
	}
	v := gv.G.Vertex(2)
	if v == nil {
		t.Fatal("missing vertex 2")
	}
	row, err := gv.VertexRow(v)
	if err != nil {
		t.Fatal(err)
	}
	// Declared attrs (ID, lstname) + FanOut + FanIn.
	if len(row) != 4 || row[0].I != 2 || row[1].S != "u" {
		t.Fatalf("vertex row: %v", row)
	}
	// Undirected: degree 2 both ways.
	if row[2].I != 2 || row[3].I != 2 {
		t.Errorf("fan props: %v", row)
	}
	e := gv.G.Edge(10)
	erow, err := gv.EdgeRow(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(erow) != 4 || erow[0].I != 10 || erow[1].I != 1 || erow[2].I != 2 {
		t.Fatalf("edge row: %v", erow)
	}
}

func TestGraphViewAttrAccess(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	v := gv.G.Vertex(1)
	got, err := gv.VertexAttrValue(v, "lstname")
	if err != nil || got.S != "u" {
		t.Errorf("lstname = %v, %v", got, err)
	}
	got, err = gv.VertexAttrValue(v, "fanout")
	if err != nil || got.I != 1 {
		t.Errorf("fanout = %v, %v", got, err)
	}
	if _, err := gv.VertexAttrValue(v, "nope"); err == nil {
		t.Error("unknown vertex attr accepted")
	}
	e := gv.G.Edge(10)
	got, err = gv.EdgeAttrValue(e, "sdate")
	if err != nil || got.S != "d" {
		t.Errorf("sdate = %v, %v", got, err)
	}
	if _, err := gv.EdgeAttrValue(e, "nope"); err == nil {
		t.Error("unknown edge attr accepted")
	}
	if !gv.HasVertexAttr("FANIN") || !gv.HasVertexAttr("lstname") || gv.HasVertexAttr("zz") {
		t.Error("HasVertexAttr wrong")
	}
	if !gv.HasEdgeAttr("sdate") || gv.HasEdgeAttr("zz") {
		t.Error("HasEdgeAttr wrong")
	}
	if k, ok := gv.VertexAttrKind("lstname"); !ok || k != types.KindString {
		t.Error("VertexAttrKind wrong")
	}
	if k, ok := gv.EdgeAttrKind("ID"); !ok || k != types.KindInt {
		t.Error("EdgeAttrKind wrong")
	}
}

func TestGraphViewValidation(t *testing.T) {
	_, users, rels, _ := socialFixture(t)
	// Missing ID declaration.
	if _, err := NewGraphView("g2", true, users, rels,
		[]AttrMap{{Name: "x", Source: "uid"}},
		[]AttrMap{{Name: "ID", Source: "relid"}, {Name: "FROM", Source: "uid1"}, {Name: "TO", Source: "uid2"}}); err == nil {
		t.Error("missing vertex ID accepted")
	}
	// Non-integer ID column.
	if _, err := NewGraphView("g3", true, users, rels,
		[]AttrMap{{Name: "ID", Source: "lname"}},
		[]AttrMap{{Name: "ID", Source: "relid"}, {Name: "FROM", Source: "uid1"}, {Name: "TO", Source: "uid2"}}); err == nil {
		t.Error("string ID column accepted")
	}
	// Unknown source column.
	if _, err := NewGraphView("g4", true, users, rels,
		[]AttrMap{{Name: "ID", Source: "ghost"}},
		[]AttrMap{{Name: "ID", Source: "relid"}, {Name: "FROM", Source: "uid1"}, {Name: "TO", Source: "uid2"}}); err == nil {
		t.Error("unknown source column accepted")
	}
	// Missing FROM/TO.
	if _, err := NewGraphView("g5", true, users, rels,
		[]AttrMap{{Name: "ID", Source: "uid"}},
		[]AttrMap{{Name: "ID", Source: "relid"}}); err == nil {
		t.Error("missing FROM/TO accepted")
	}
	// Edge referencing a missing vertex fails the build.
	if _, err := rels.Insert(types.Row{types.NewInt(99), types.NewInt(1), types.NewInt(42), types.NewString("d")}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGraphView("g6", true, users, rels,
		[]AttrMap{{Name: "ID", Source: "uid"}},
		[]AttrMap{{Name: "ID", Source: "relid"}, {Name: "FROM", Source: "uid1"}, {Name: "TO", Source: "uid2"}}); err == nil {
		t.Error("dangling edge endpoint accepted")
	}
}

func TestCatalogNamespaces(t *testing.T) {
	c, users, rels, gv := socialFixture(t)
	if _, ok := c.Table("USERS"); !ok {
		t.Error("case-insensitive table lookup failed")
	}
	if _, ok := c.GraphView("socialnetwork"); !ok {
		t.Error("case-insensitive view lookup failed")
	}
	if err := c.CreateTable(users); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := c.RegisterGraphView(gv); err == nil {
		t.Error("duplicate view accepted")
	}
	// Table/view name collision.
	tt, _ := storage.NewTable("SocialNetwork", users.Schema(), nil)
	if err := c.CreateTable(tt); err == nil {
		t.Error("table colliding with view name accepted")
	}
	gv2, err := NewGraphView("Users", false, users, rels, gv.VertexAttrs, gv.EdgeAttrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGraphView(gv2); err == nil {
		t.Error("view colliding with table name accepted")
	}
	if got := c.Tables(); len(got) != 2 {
		t.Errorf("Tables() = %v", got)
	}
	if got := c.GraphViews(); len(got) != 1 || got[0] != "SocialNetwork" {
		t.Errorf("GraphViews() = %v", got)
	}
}

func TestDependencyTracking(t *testing.T) {
	c, _, _, gv := socialFixture(t)
	if vs := c.DependentViews("users"); len(vs) != 1 || vs[0] != gv {
		t.Errorf("deps(users) = %v", vs)
	}
	if vs := c.DependentViews("Relationships"); len(vs) != 1 {
		t.Errorf("deps(rels) = %v", vs)
	}
	if err := c.DropTable("Users"); err == nil || !strings.Contains(err.Error(), "SocialNetwork") {
		t.Errorf("drop of depended-on table: %v", err)
	}
	if err := c.DropGraphView("SocialNetwork"); err != nil {
		t.Fatal(err)
	}
	if vs := c.DependentViews("users"); len(vs) != 0 {
		t.Errorf("deps after view drop = %v", vs)
	}
	if err := c.DropTable("Users"); err != nil {
		t.Errorf("drop after view removal: %v", err)
	}
	if err := c.DropTable("Users"); err == nil {
		t.Error("double drop accepted")
	}
	if err := c.DropGraphView("SocialNetwork"); err == nil {
		t.Error("double view drop accepted")
	}
}

func TestOnInsertMaintainsTopology(t *testing.T) {
	_, users, rels, gv := socialFixture(t)
	id, err := users.Insert(types.Row{types.NewInt(4), types.NewString("new"), types.NewString("01")})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := users.Get(id)
	if err := gv.OnInsert("Users", id, row); err != nil {
		t.Fatal(err)
	}
	if gv.G.Vertex(4) == nil {
		t.Fatal("vertex not added")
	}
	eid, err := rels.Insert(types.Row{types.NewInt(12), types.NewInt(4), types.NewInt(1), types.NewString("d")})
	if err != nil {
		t.Fatal(err)
	}
	erow, _ := rels.Get(eid)
	if err := gv.OnInsert("Relationships", eid, erow); err != nil {
		t.Fatal(err)
	}
	if gv.G.Edge(12) == nil {
		t.Fatal("edge not added")
	}
	// Insert referencing a missing endpoint errors.
	eid2, _ := rels.Insert(types.Row{types.NewInt(13), types.NewInt(4), types.NewInt(99), types.NewString("d")})
	erow2, _ := rels.Get(eid2)
	if err := gv.OnInsert("Relationships", eid2, erow2); err == nil {
		t.Error("dangling edge insert accepted")
	}
}

func TestOnDeleteAndIncidentEdges(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	inc := gv.IncidentEdges(2)
	if len(inc) != 2 {
		t.Fatalf("incident edges = %v", inc)
	}
	if gv.IncidentEdges(42) != nil {
		t.Error("incidence of missing vertex non-nil")
	}
	if err := gv.OnDelete("Relationships", types.Row{types.NewInt(10), types.NewInt(1), types.NewInt(2), types.NewString("d")}); err != nil {
		t.Fatal(err)
	}
	if gv.G.Edge(10) != nil {
		t.Error("edge not removed")
	}
	if err := gv.OnDelete("Users", types.Row{types.NewInt(1), types.NewString("u"), types.NewString("2000")}); err != nil {
		t.Fatal(err)
	}
	if gv.G.Vertex(1) != nil {
		t.Error("vertex not removed")
	}
}

func TestOnUpdateRenamesAndRewires(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	// Vertex id change renames the topology vertex (§3.3.1).
	oldRow := types.Row{types.NewInt(3), types.NewString("u"), types.NewString("2000")}
	newRow := types.Row{types.NewInt(30), types.NewString("u"), types.NewString("2000")}
	if err := gv.OnUpdate("Users", 3, oldRow, newRow); err != nil {
		t.Fatal(err)
	}
	if gv.G.Vertex(3) != nil || gv.G.Vertex(30) == nil {
		t.Error("vertex rename failed")
	}
	// Edge endpoint change rewires.
	oldE := types.Row{types.NewInt(10), types.NewInt(1), types.NewInt(2), types.NewString("d")}
	newE := types.Row{types.NewInt(10), types.NewInt(1), types.NewInt(30), types.NewString("d")}
	if err := gv.OnUpdate("Relationships", 1, oldE, newE); err != nil {
		t.Fatal(err)
	}
	e := gv.G.Edge(10)
	if e == nil || e.To.ID != 30 {
		t.Error("edge rewire failed")
	}
	// Attribute-only change leaves the topology alone.
	if err := gv.OnUpdate("Relationships", 1, newE,
		types.Row{types.NewInt(10), types.NewInt(1), types.NewInt(30), types.NewString("later")}); err != nil {
		t.Fatal(err)
	}
	if gv.G.NumEdges() != 2 {
		t.Error("attr update disturbed topology")
	}
}

func TestResolveRelation(t *testing.T) {
	c, users, _, gv := socialFixture(t)
	got, err := c.ResolveRelation("users")
	if err != nil || got.(*storage.Table) != users {
		t.Errorf("resolve table: %v %v", got, err)
	}
	got, err = c.ResolveRelation("SocialNetwork")
	if err != nil || got.(*GraphView) != gv {
		t.Errorf("resolve view: %v %v", got, err)
	}
	if _, err := c.ResolveRelation("ghost"); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestCheckColumnKinds(t *testing.T) {
	_, users, _, _ := socialFixture(t)
	pos, kinds, err := CheckColumnKinds(users, []string{"uid", "lname"})
	if err != nil || pos[0] != 0 || pos[1] != 1 || kinds[1] != types.KindString {
		t.Errorf("CheckColumnKinds: %v %v %v", pos, kinds, err)
	}
	if _, _, err := CheckColumnKinds(users, []string{"ghost"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestMatViewRegistry(t *testing.T) {
	c, users, rels, gv := socialFixture(t)
	_ = rels
	backing, err := storage.NewTable("VIP", types.NewSchema(
		types.Column{Qualifier: "VIP", Name: "uid", Type: types.KindInt}), nil)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := NewMatView("VIP", users, backing, []int{0}, nil, "CREATE MATERIALIZED VIEW VIP AS SELECT uid FROM Users")
	if err != nil {
		t.Fatal(err)
	}
	// Unfiltered view materializes every base row.
	if mv.Table().Len() != users.Len() {
		t.Fatalf("materialized %d of %d rows", mv.Table().Len(), users.Len())
	}
	if err := c.RegisterMatView(mv); err != nil {
		t.Fatal(err)
	}
	if !c.IsMatViewTable("vip") || c.IsMatViewTable("Users") {
		t.Error("IsMatViewTable wrong")
	}
	if got, ok := c.MatView("vip"); !ok || got != mv {
		t.Error("MatView lookup failed")
	}
	if got := c.MatViews(); len(got) != 1 || got[0] != "VIP" {
		t.Errorf("MatViews: %v", got)
	}
	if ds := c.DependentMatViews("USERS"); len(ds) != 1 || ds[0] != mv {
		t.Errorf("deps: %v", ds)
	}
	// The backing joins the table namespace.
	if _, ok := c.Table("VIP"); !ok {
		t.Error("backing table not visible")
	}
	// Base cannot be dropped while the view exists (also pinned by the
	// graph view from the fixture).
	if err := c.DropTable("Users"); err == nil {
		t.Error("dropped matview base")
	}
	// The backing table cannot be dropped directly.
	if err := c.DropTable("VIP"); err == nil {
		t.Error("dropped matview backing via DropTable")
	}
	// A graph view over the matview pins it... simulate by hand-registering
	// a second matview over VIP.
	backing2, _ := storage.NewTable("VIP2", types.NewSchema(
		types.Column{Qualifier: "VIP2", Name: "uid", Type: types.KindInt}), nil)
	mv2, err := NewMatView("VIP2", mv.Table(), backing2, []int{0}, nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterMatView(mv2); err != nil {
		t.Fatal(err)
	}
	if err := c.DropMatView("VIP"); err == nil {
		t.Error("dropped matview with dependent matview")
	}
	if err := c.DropMatView("VIP2"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropMatView("VIP"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropMatView("VIP"); err == nil {
		t.Error("double drop accepted")
	}
	_ = gv
}

func TestComputeStats(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	if gv.Stats() != nil {
		t.Fatal("stats before publish")
	}
	st := gv.ComputeStats(time.Now())
	gv.SetStats(st)
	if got := gv.Stats(); got != st {
		t.Fatal("publish/load mismatch")
	}
	if st.Vertices != 3 || st.Edges != 2 {
		t.Errorf("counts: %+v", st)
	}
	// Undirected degree of vertex 2 is 2 (edges 10, 11) — the maximum.
	if st.MaxFanOut != 2 {
		t.Errorf("max fan-out: %d", st.MaxFanOut)
	}
}

func TestAttrSourcePositions(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	if pos, ok := gv.EdgeAttrSourcePos("sdate"); !ok || pos != 3 {
		t.Errorf("sdate pos: %d %v", pos, ok)
	}
	if _, ok := gv.EdgeAttrSourcePos("ghost"); ok {
		t.Error("ghost edge attr resolved")
	}
	if pos, ok := gv.VertexAttrSourcePos("lstname"); !ok || pos != 1 {
		t.Errorf("lstname pos: %d %v", pos, ok)
	}
	// Computed properties have no source column.
	if _, ok := gv.VertexAttrSourcePos("FANOUT"); ok {
		t.Error("FANOUT has a source position")
	}
}
