package catalog

import (
	"fmt"
	"strings"

	"grfusion/internal/graph"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// GraphViewAt is a graph view bound to one engine version: a topology
// instance plus row views of the relational sources. A pinned reader
// holds a GraphViewAt whose G/V/E are immutable snapshots, so every
// tuple-pointer dereference and fan-out read resolves against the version
// it pinned, regardless of concurrent writers; the writer side uses Live,
// which binds the live topology and tables. It implements the same
// attribute-accessor surface as GraphView (expr.GraphAccessor).
type GraphViewAt struct {
	GV *GraphView
	G  *graph.Graph
	V  storage.RowView
	E  storage.RowView
}

// At binds the view to an explicit topology instance and source row views.
func (gv *GraphView) At(g *graph.Graph, v, e storage.RowView) *GraphViewAt {
	return &GraphViewAt{GV: gv, G: g, V: v, E: e}
}

// Live binds the view to its live topology and source tables. Callers
// must hold the engine lock (either side), as with any live access.
func (gv *GraphView) Live() *GraphViewAt {
	return gv.At(gv.G, gv.vtab, gv.etab)
}

// CSR returns a CSR snapshot of the bound topology version.
func (at *GraphViewAt) CSR() *graph.CSR { return at.GV.CSRFor(at.G) }

// VertexSchema returns the exposed schema of GV.VERTEXES.
func (at *GraphViewAt) VertexSchema() *types.Schema { return at.GV.vSchema }

// EdgeSchema returns the exposed schema of GV.EDGES.
func (at *GraphViewAt) EdgeSchema() *types.Schema { return at.GV.eSchema }

// VertexRow materializes the extended tuple of a vertex against the bound
// version.
func (at *GraphViewAt) VertexRow(v *graph.Vertex) (types.Row, error) {
	return vertexRowOf(at.GV, at.G, at.V, v)
}

// EdgeRow materializes the extended tuple of an edge against the bound
// version.
func (at *GraphViewAt) EdgeRow(e *graph.Edge) (types.Row, error) {
	return edgeRowOf(at.GV, at.E, e)
}

// VertexAttrValue reads one vertex attribute or property against the
// bound version.
func (at *GraphViewAt) VertexAttrValue(v *graph.Vertex, name string) (types.Value, error) {
	return vertexAttrValueOf(at.GV, at.G, at.V, v, name)
}

// EdgeAttrValue reads one edge attribute against the bound version.
func (at *GraphViewAt) EdgeAttrValue(e *graph.Edge, name string) (types.Value, error) {
	return edgeAttrValueOf(at.GV, at.E, e, name)
}

// HasVertexAttr reports whether name is a declared vertex attribute or
// property (pure metadata; identical across versions).
func (at *GraphViewAt) HasVertexAttr(name string) bool { return at.GV.HasVertexAttr(name) }

// HasEdgeAttr reports whether name is a declared edge attribute.
func (at *GraphViewAt) HasEdgeAttr(name string) bool { return at.GV.HasEdgeAttr(name) }

// EdgeAttrSourcePos resolves a declared edge attribute to its source
// column position.
func (at *GraphViewAt) EdgeAttrSourcePos(name string) (int, bool) {
	return at.GV.EdgeAttrSourcePos(name)
}

// VertexAttrSourcePos resolves a declared vertex attribute to its source
// column position.
func (at *GraphViewAt) VertexAttrSourcePos(name string) (int, bool) {
	return at.GV.VertexAttrSourcePos(name)
}

// --- Version-parameterized accessors shared by GraphView (live) and
// --- GraphViewAt (pinned).

func vertexRowOf(gv *GraphView, g *graph.Graph, src storage.RowView, v *graph.Vertex) (types.Row, error) {
	row, ok := src.Get(storage.RowID(v.Tuple))
	if !ok {
		return nil, fmt.Errorf("graph view %s: dangling tuple pointer for vertex %d", gv.Name, v.ID)
	}
	out := make(types.Row, 0, len(gv.VertexAttrs)+2)
	for _, a := range gv.VertexAttrs {
		out = append(out, row[a.pos])
	}
	out = append(out,
		types.NewInt(int64(g.FanOut(v))),
		types.NewInt(int64(g.FanIn(v))))
	return out, nil
}

func edgeRowOf(gv *GraphView, src storage.RowView, e *graph.Edge) (types.Row, error) {
	row, ok := src.Get(storage.RowID(e.Tuple))
	if !ok {
		return nil, fmt.Errorf("graph view %s: dangling tuple pointer for edge %d", gv.Name, e.ID)
	}
	out := make(types.Row, 0, len(gv.EdgeAttrs))
	for _, a := range gv.EdgeAttrs {
		out = append(out, row[a.pos])
	}
	return out, nil
}

func vertexAttrValueOf(gv *GraphView, g *graph.Graph, src storage.RowView, v *graph.Vertex, name string) (types.Value, error) {
	switch strings.ToUpper(name) {
	case PropFanOut:
		return types.NewInt(int64(g.FanOut(v))), nil
	case PropFanIn:
		return types.NewInt(int64(g.FanIn(v))), nil
	}
	for _, a := range gv.VertexAttrs {
		if strings.EqualFold(a.Name, name) {
			row, ok := src.Get(storage.RowID(v.Tuple))
			if !ok {
				return types.Null(), fmt.Errorf("graph view %s: dangling tuple pointer for vertex %d", gv.Name, v.ID)
			}
			return row[a.pos], nil
		}
	}
	return types.Null(), fmt.Errorf("graph view %s: unknown vertex attribute %q", gv.Name, name)
}

func edgeAttrValueOf(gv *GraphView, src storage.RowView, e *graph.Edge, name string) (types.Value, error) {
	for _, a := range gv.EdgeAttrs {
		if strings.EqualFold(a.Name, name) {
			row, ok := src.Get(storage.RowID(e.Tuple))
			if !ok {
				return types.Null(), fmt.Errorf("graph view %s: dangling tuple pointer for edge %d", gv.Name, e.ID)
			}
			return row[a.pos], nil
		}
	}
	return types.Null(), fmt.Errorf("graph view %s: unknown edge attribute %q", gv.Name, name)
}
