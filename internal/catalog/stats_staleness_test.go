package catalog

import (
	"testing"
	"time"

	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// TestFreshStatsDriftsStale is the §6.3 staleness regression: statistics
// published before heavy DML must stop steering the optimizer once the
// maintenance-operation count has drifted past the freshness bound, while
// light DML keeps them live.
func TestFreshStatsDriftsStale(t *testing.T) {
	_, users, _, gv := socialFixture(t)

	gv.SetStats(gv.ComputeStats(time.Now()))
	if gv.FreshStats() == nil {
		t.Fatal("freshly computed statistics reported stale")
	}

	// Light DML: a handful of maintenance ops stays under the floor.
	for i := int64(100); i < 110; i++ {
		id, err := users.Insert(types.Row{types.NewInt(i), types.NewString("u"), types.NewString("2000")})
		if err != nil {
			t.Fatal(err)
		}
		row, _ := users.Get(id)
		if err := gv.OnInsert("Users", id, row); err != nil {
			t.Fatal(err)
		}
	}
	if gv.FreshStats() == nil {
		t.Fatal("statistics went stale after 10 maintenance ops (floor is 64)")
	}

	// Bulk DML: cross the max(64, (V+E)/8) bound and the object must drop
	// out of FreshStats while Stats still returns it for display.
	for i := int64(200); i < 300; i++ {
		id, err := users.Insert(types.Row{types.NewInt(i), types.NewString("u"), types.NewString("2000")})
		if err != nil {
			t.Fatal(err)
		}
		row, _ := users.Get(id)
		if err := gv.OnInsert("Users", id, row); err != nil {
			t.Fatal(err)
		}
	}
	if gv.FreshStats() != nil {
		t.Fatal("statistics still fresh after bulk DML drift")
	}
	if gv.Stats() == nil {
		t.Fatal("Stats must keep the last object for display even when stale")
	}

	// A refresh re-arms freshness at the new maintenance count.
	gv.SetStats(gv.ComputeStats(time.Now()))
	if gv.FreshStats() == nil {
		t.Fatal("refresh did not restore freshness")
	}
}

// TestInvalidateStats verifies wholesale withdrawal (the RebuildGraphView
// path): after invalidation both accessors return nil until a new refresh.
func TestInvalidateStats(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	gv.SetStats(gv.ComputeStats(time.Now()))
	gv.InvalidateStats()
	if gv.Stats() != nil || gv.FreshStats() != nil {
		t.Fatal("invalidated statistics still published")
	}
}

// TestMaintOpsCountsOnlySourceTables verifies the drift counter ignores
// DML against tables the view is not defined over.
func TestMaintOpsCountsOnlySourceTables(t *testing.T) {
	_, _, _, gv := socialFixture(t)
	before := gv.MaintOps()
	if err := gv.OnInsert("Unrelated", storage.RowID(1), types.Row{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if gv.MaintOps() != before {
		t.Fatal("maintenance counter moved for a non-source table")
	}
}
