package catalog

import (
	"fmt"
	"strings"
	"sync/atomic"

	"grfusion/internal/graph"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// AttrMap maps one exposed graph-view attribute to a column of its
// relational source, e.g. `lstname = lname` in Listing 1 of the paper.
type AttrMap struct {
	// Name is the attribute name exposed by the graph view.
	Name string
	// Source is the column name in the relational source.
	Source string

	pos  int
	kind types.Kind
}

// Reserved attribute names inside VERTEXES(...) / EDGES(...) clauses.
const (
	AttrID   = "ID"
	AttrFrom = "FROM"
	AttrTo   = "TO"
)

// Extended-tuple property columns appended to the exposed schemas (§5.2).
const (
	PropFanOut = "FANOUT"
	PropFanIn  = "FANIN"
	// PathColumn is the single column produced by a PathScan; it carries a
	// KindPath value that path expressions decompose.
	PathColumn = "__path"
)

// GraphView is a materialized graph view: the catalog definition, the
// native topology, and the exposed Vertex/Edge schemas (§3).
type GraphView struct {
	Name     string
	Directed bool

	// VertexSource and EdgeSource are the relational sources' table names.
	VertexSource, EdgeSource string

	// VertexAttrs and EdgeAttrs are the declared attribute mappings, in
	// declaration order. VertexAttrs contains an ID entry; EdgeAttrs
	// contains ID, FROM and TO entries.
	VertexAttrs, EdgeAttrs []AttrMap

	vtab, etab *storage.Table
	vIDPos     int
	eIDPos     int
	eFromPos   int
	eToPos     int

	// G is the singleton native topology (§3.2).
	G *graph.Graph

	vSchema, eSchema *types.Schema

	// stats holds the §6.3 statistics object, published by the engine's
	// background refresher when statistics are enabled.
	stats atomic.Pointer[GraphStats]

	// maintOps counts incremental §3.3 maintenance operations applied to
	// the topology since the view was built. A statistics object remembers
	// the count it was computed at, so readers can detect statistics that
	// predate heavy DML (see FreshStats).
	maintOps atomic.Int64

	// CSR snapshot counters. The cache itself lives on each graph.Graph
	// instance (graph.CSRSnapshot), so readers pinned to different
	// topology versions each retain their own snapshot instead of
	// thrashing one shared slot; the view aggregates build/hit counters
	// across versions and remembers the latest snapshot's size.
	csrBuilds  atomic.Int64
	csrBuildNS atomic.Int64
	csrHits    atomic.Int64
	csrMisses  atomic.Int64
	csrBytes   atomic.Int64

	// sharedG marks the live topology as aliased by a published engine
	// version: the first maintenance mutation after publish clones it
	// (ensurePrivateG) so pinned readers never observe the change.
	// Writer-side state guarded by the engine write lock.
	sharedG bool
}

// NewGraphView validates a definition against its source tables and builds
// the topology with a single pass over the sources (§3.2). The sources may
// be the same table.
func NewGraphView(name string, directed bool, vtab, etab *storage.Table,
	vertexAttrs, edgeAttrs []AttrMap) (*GraphView, error) {

	gv := &GraphView{
		Name:         name,
		Directed:     directed,
		VertexSource: vtab.Name(),
		EdgeSource:   etab.Name(),
		VertexAttrs:  append([]AttrMap(nil), vertexAttrs...),
		EdgeAttrs:    append([]AttrMap(nil), edgeAttrs...),
		vtab:         vtab,
		etab:         etab,
		vIDPos:       -1,
		eIDPos:       -1,
		eFromPos:     -1,
		eToPos:       -1,
	}
	if err := gv.resolveAttrs(); err != nil {
		return nil, err
	}
	gv.buildSchemas()
	if err := gv.build(); err != nil {
		return nil, err
	}
	return gv, nil
}

func (gv *GraphView) resolveAttrs() error {
	resolve := func(t *storage.Table, attrs []AttrMap, kindMust map[string]bool) error {
		for i := range attrs {
			a := &attrs[i]
			p, err := t.Schema().Resolve("", a.Source)
			if err != nil {
				return fmt.Errorf("graph view %s: attribute %s: %v", gv.Name, a.Name, err)
			}
			a.pos = p
			a.kind = t.Schema().Columns[p].Type
			if kindMust[strings.ToUpper(a.Name)] && a.kind != types.KindInt {
				return fmt.Errorf("graph view %s: attribute %s must map to a BIGINT column, got %s",
					gv.Name, a.Name, a.kind)
			}
		}
		return nil
	}
	if err := resolve(gv.vtab, gv.VertexAttrs, map[string]bool{AttrID: true}); err != nil {
		return err
	}
	if err := resolve(gv.etab, gv.EdgeAttrs,
		map[string]bool{AttrID: true, AttrFrom: true, AttrTo: true}); err != nil {
		return err
	}
	for i := range gv.VertexAttrs {
		if strings.EqualFold(gv.VertexAttrs[i].Name, AttrID) {
			gv.vIDPos = gv.VertexAttrs[i].pos
		}
	}
	for i := range gv.EdgeAttrs {
		switch strings.ToUpper(gv.EdgeAttrs[i].Name) {
		case AttrID:
			gv.eIDPos = gv.EdgeAttrs[i].pos
		case AttrFrom:
			gv.eFromPos = gv.EdgeAttrs[i].pos
		case AttrTo:
			gv.eToPos = gv.EdgeAttrs[i].pos
		}
	}
	switch {
	case gv.vIDPos < 0:
		return fmt.Errorf("graph view %s: VERTEXES clause must declare ID", gv.Name)
	case gv.eIDPos < 0:
		return fmt.Errorf("graph view %s: EDGES clause must declare ID", gv.Name)
	case gv.eFromPos < 0 || gv.eToPos < 0:
		return fmt.Errorf("graph view %s: EDGES clause must declare FROM and TO", gv.Name)
	}
	return nil
}

func (gv *GraphView) buildSchemas() {
	vcols := make([]types.Column, 0, len(gv.VertexAttrs)+2)
	for _, a := range gv.VertexAttrs {
		vcols = append(vcols, types.Column{Name: a.Name, Type: a.kind})
	}
	vcols = append(vcols,
		types.Column{Name: PropFanOut, Type: types.KindInt},
		types.Column{Name: PropFanIn, Type: types.KindInt})
	gv.vSchema = types.NewSchema(vcols...)

	ecols := make([]types.Column, 0, len(gv.EdgeAttrs))
	for _, a := range gv.EdgeAttrs {
		ecols = append(ecols, types.Column{Name: a.Name, Type: a.kind})
	}
	gv.eSchema = types.NewSchema(ecols...)
}

func (gv *GraphView) build() error {
	g, err := gv.RebuildTopology()
	if err != nil {
		return err
	}
	gv.G = g
	return nil
}

// RebuildTopology reconstructs a fresh topology from the current contents
// of the relational sources with the same single pass CREATE GRAPH VIEW
// uses (§3.2), without touching the live topology. The differential-testing
// oracle diffs the result against the incrementally maintained G to verify
// the §3.3 online-maintenance invariant: maintained topology ≡ rebuilt
// topology after any DML history.
func (gv *GraphView) RebuildTopology() (*graph.Graph, error) {
	g := graph.New(gv.Name, gv.Directed)
	var err error
	gv.vtab.Scan(func(id storage.RowID, row types.Row) bool {
		var vid int64
		vid, err = intAttr(row, gv.vIDPos, "vertex ID")
		if err == nil {
			_, err = g.AddVertex(vid, uint64(id))
		}
		return err == nil
	})
	if err != nil {
		return nil, fmt.Errorf("graph view %s: %v", gv.Name, err)
	}
	gv.etab.Scan(func(id storage.RowID, row types.Row) bool {
		err = addEdgeFromRowInto(g, gv, id, row)
		return err == nil
	})
	if err != nil {
		return nil, fmt.Errorf("graph view %s: %v", gv.Name, err)
	}
	return g, nil
}

func (gv *GraphView) addEdgeFromRow(id storage.RowID, row types.Row) error {
	return addEdgeFromRowInto(gv.G, gv, id, row)
}

func addEdgeFromRowInto(g *graph.Graph, gv *GraphView, id storage.RowID, row types.Row) error {
	eid, err := intAttr(row, gv.eIDPos, "edge ID")
	if err != nil {
		return err
	}
	from, err := intAttr(row, gv.eFromPos, "edge FROM")
	if err != nil {
		return err
	}
	to, err := intAttr(row, gv.eToPos, "edge TO")
	if err != nil {
		return err
	}
	_, err = g.AddEdge(eid, from, to, uint64(id))
	return err
}

func intAttr(row types.Row, pos int, what string) (int64, error) {
	v := row[pos]
	if v.Kind != types.KindInt {
		return 0, fmt.Errorf("%s value %s is not a BIGINT", what, v)
	}
	return v.I, nil
}

// CSR returns a CSR snapshot of the current live topology, building (and
// caching) one if the graph's cache is missing or stale. Writer-side
// callers hold the engine lock; lock-free readers use a pinned
// GraphViewAt's CSR instead. The snapshot itself is immutable and safe to
// traverse from any number of goroutines.
func (gv *GraphView) CSR() *graph.CSR { return gv.CSRFor(gv.G) }

// CSRFor returns a CSR snapshot of the given topology instance (live or a
// pinned version), folding cache hits, builds, and the snapshot size into
// this view's counters.
func (gv *GraphView) CSRFor(g *graph.Graph) *graph.CSR {
	c := g.CSRSnapshot(func(hit bool, buildNS int64) {
		if hit {
			gv.csrHits.Add(1)
			return
		}
		gv.csrMisses.Add(1)
		gv.csrBuilds.Add(1)
		gv.csrBuildNS.Add(buildNS)
	})
	gv.csrBytes.Store(c.ApproxBytes())
	return c
}

// CSRStats reports the snapshot cache counters and the most recently
// returned snapshot's approximate size (0 before the first build), for
// SHOW METRICS. All sources are atomics, so it is safe anywhere.
func (gv *GraphView) CSRStats() (builds, buildNS, hits, misses, bytes int64) {
	return gv.csrBuilds.Load(), gv.csrBuildNS.Load(),
		gv.csrHits.Load(), gv.csrMisses.Load(), gv.csrBytes.Load()
}

// MarkShared flags the live topology as aliased by a published engine
// version: the next maintenance mutation clones it first (copy-on-write)
// so pinned readers keep a stable graph. Callers hold the engine write
// lock.
func (gv *GraphView) MarkShared() { gv.sharedG = true }

// ensurePrivateG clones the live topology before the first maintenance
// mutation after a publish.
func (gv *GraphView) ensurePrivateG() {
	if !gv.sharedG {
		return
	}
	gv.G = gv.G.Clone()
	gv.sharedG = false
}

// ReserveFor presizes the view's topology for about n further rows
// landing in the named source table (vertexes or edges side). It takes a
// private copy of the graph first, so a bulk load immediately after a
// publish pays its one unavoidable clone here, already sized for the
// incoming stream. Callers hold the engine write lock, like any
// maintenance hook.
func (gv *GraphView) ReserveFor(table string, n int) {
	if n <= 0 {
		return
	}
	isV, isE := gv.IsVertexSource(table), gv.IsEdgeSource(table)
	if !isV && !isE {
		return
	}
	gv.ensurePrivateG()
	var nv, ne int
	if isV {
		nv = n
	}
	if isE {
		ne = n
	}
	gv.G.Reserve(nv, ne)
}

// VertexTable returns the vertexes relational-source.
func (gv *GraphView) VertexTable() *storage.Table { return gv.vtab }

// EdgeTable returns the edges relational-source.
func (gv *GraphView) EdgeTable() *storage.Table { return gv.etab }

// VertexSchema returns the exposed schema of GV.VERTEXES: the declared
// attributes followed by the FanOut and FanIn properties (§5.2).
func (gv *GraphView) VertexSchema() *types.Schema { return gv.vSchema }

// EdgeSchema returns the exposed schema of GV.EDGES.
func (gv *GraphView) EdgeSchema() *types.Schema { return gv.eSchema }

// VertexRow materializes the extended tuple of a vertex by dereferencing
// its tuple pointer into the vertexes relational-source.
func (gv *GraphView) VertexRow(v *graph.Vertex) (types.Row, error) {
	return vertexRowOf(gv, gv.G, gv.vtab, v)
}

// EdgeRow materializes the extended tuple of an edge.
func (gv *GraphView) EdgeRow(e *graph.Edge) (types.Row, error) {
	return edgeRowOf(gv, gv.etab, e)
}

// VertexAttrValue reads one declared vertex attribute (by exposed name)
// through the tuple pointer; it also serves the FanOut/FanIn properties.
func (gv *GraphView) VertexAttrValue(v *graph.Vertex, name string) (types.Value, error) {
	return vertexAttrValueOf(gv, gv.G, gv.vtab, v, name)
}

// EdgeAttrValue reads one declared edge attribute through the tuple pointer.
func (gv *GraphView) EdgeAttrValue(e *graph.Edge, name string) (types.Value, error) {
	return edgeAttrValueOf(gv, gv.etab, e, name)
}

// EdgeAttrSourcePos resolves a declared edge attribute to its column
// position within the edges relational-source, letting hot traversal
// filters dereference tuple pointers directly instead of re-resolving the
// attribute name per edge.
func (gv *GraphView) EdgeAttrSourcePos(name string) (int, bool) {
	for _, a := range gv.EdgeAttrs {
		if strings.EqualFold(a.Name, name) {
			return a.pos, true
		}
	}
	return -1, false
}

// VertexAttrSourcePos resolves a declared vertex attribute to its source
// column position. The computed FanIn/FanOut properties have no source
// column and report ok=false; use VertexAttrValue for those.
func (gv *GraphView) VertexAttrSourcePos(name string) (int, bool) {
	up := strings.ToUpper(name)
	if up == PropFanOut || up == PropFanIn {
		return -1, false
	}
	for _, a := range gv.VertexAttrs {
		if strings.EqualFold(a.Name, name) {
			return a.pos, true
		}
	}
	return -1, false
}

// HasVertexAttr reports whether name is a declared vertex attribute or
// vertex property.
func (gv *GraphView) HasVertexAttr(name string) bool {
	up := strings.ToUpper(name)
	if up == PropFanOut || up == PropFanIn {
		return true
	}
	for _, a := range gv.VertexAttrs {
		if strings.EqualFold(a.Name, name) {
			return true
		}
	}
	return false
}

// HasEdgeAttr reports whether name is a declared edge attribute.
func (gv *GraphView) HasEdgeAttr(name string) bool {
	for _, a := range gv.EdgeAttrs {
		if strings.EqualFold(a.Name, name) {
			return true
		}
	}
	return false
}

// EdgeAttrKind returns the kind of a declared edge attribute.
func (gv *GraphView) EdgeAttrKind(name string) (types.Kind, bool) {
	for _, a := range gv.EdgeAttrs {
		if strings.EqualFold(a.Name, name) {
			return a.kind, true
		}
	}
	return types.KindNull, false
}

// VertexAttrKind returns the kind of a declared vertex attribute/property.
func (gv *GraphView) VertexAttrKind(name string) (types.Kind, bool) {
	up := strings.ToUpper(name)
	if up == PropFanOut || up == PropFanIn {
		return types.KindInt, true
	}
	for _, a := range gv.VertexAttrs {
		if strings.EqualFold(a.Name, name) {
			return a.kind, true
		}
	}
	return types.KindNull, false
}

// --- Online maintenance hooks (§3.3), invoked by the engine inside the
// --- mutating transaction.

// IsVertexSource reports whether the named table is this view's vertexes
// relational-source.
func (gv *GraphView) IsVertexSource(table string) bool {
	return strings.EqualFold(gv.VertexSource, table)
}

// IsEdgeSource reports whether the named table is this view's edges
// relational-source.
func (gv *GraphView) IsEdgeSource(table string) bool {
	return strings.EqualFold(gv.EdgeSource, table)
}

// EdgeRef identifies one topology edge and its tuple pointer, used by the
// engine to cascade vertex deletions onto the edges relational-source.
type EdgeRef struct {
	EdgeID int64
	Tuple  storage.RowID
}

// IncidentEdges returns the edges incident to the vertex with the given
// identifier, or nil if the vertex is absent.
func (gv *GraphView) IncidentEdges(vertexID int64) []EdgeRef {
	v := gv.G.Vertex(vertexID)
	if v == nil {
		return nil
	}
	var out []EdgeRef
	seen := make(map[int64]bool)
	for _, list := range [][]*graph.Edge{v.Out, v.In} {
		for _, e := range list {
			if !seen[e.ID] {
				seen[e.ID] = true
				out = append(out, EdgeRef{EdgeID: e.ID, Tuple: storage.RowID(e.Tuple)})
			}
		}
	}
	return out
}

// OnInsert maintains the topology after a tuple is inserted into table.
func (gv *GraphView) OnInsert(table string, id storage.RowID, row types.Row) error {
	if gv.IsVertexSource(table) || gv.IsEdgeSource(table) {
		gv.maintOps.Add(1)
		gv.ensurePrivateG()
	}
	if gv.IsVertexSource(table) {
		vid, err := intAttr(row, gv.vIDPos, "vertex ID")
		if err != nil {
			return fmt.Errorf("graph view %s: %v", gv.Name, err)
		}
		if _, err := gv.G.AddVertex(vid, uint64(id)); err != nil {
			return err
		}
	}
	if gv.IsEdgeSource(table) {
		if err := gv.addEdgeFromRow(id, row); err != nil {
			return fmt.Errorf("graph view %s: %v", gv.Name, err)
		}
	}
	return nil
}

// DebugSkipEdgeDelete, when true, makes OnDelete skip removing deleted
// edges from the topology — a deliberately broken §3.3 maintenance path.
// It exists ONLY so the differential-testing oracle can prove its
// rebuild-from-scratch maintenance check catches real maintenance bugs
// (internal/oracle injects it and asserts a violation surfaces within one
// run). Never set it outside tests.
var DebugSkipEdgeDelete bool

// OnDelete maintains the topology after a tuple is deleted from table.
// Vertex deletions expect the engine to have cascaded incident edge tuples
// first (via IncidentEdges); any edges still present are removed here.
func (gv *GraphView) OnDelete(table string, row types.Row) error {
	if gv.IsVertexSource(table) || gv.IsEdgeSource(table) {
		gv.maintOps.Add(1)
		gv.ensurePrivateG()
	}
	if gv.IsEdgeSource(table) && !DebugSkipEdgeDelete {
		eid, err := intAttr(row, gv.eIDPos, "edge ID")
		if err != nil {
			return fmt.Errorf("graph view %s: %v", gv.Name, err)
		}
		gv.G.RemoveEdge(eid) // absent is fine: may already be cascaded
	}
	if gv.IsVertexSource(table) {
		vid, err := intAttr(row, gv.vIDPos, "vertex ID")
		if err != nil {
			return fmt.Errorf("graph view %s: %v", gv.Name, err)
		}
		gv.G.RemoveVertex(vid)
	}
	return nil
}

// OnUpdate maintains the topology after a tuple of table changes in place.
// Identifier updates rename the graph element (§3.3.1); endpoint updates
// rewire the edge.
func (gv *GraphView) OnUpdate(table string, id storage.RowID, oldRow, newRow types.Row) error {
	if gv.IsVertexSource(table) || gv.IsEdgeSource(table) {
		gv.maintOps.Add(1)
	}
	// The copy-on-write clone (ensurePrivateG) happens only on an actual
	// topology change: attribute-only updates leave the graph — and its
	// cached CSR snapshot — untouched, so pinned readers and the CSR
	// cache survive pure attribute churn.
	if gv.IsVertexSource(table) {
		oldID, err := intAttr(oldRow, gv.vIDPos, "vertex ID")
		if err != nil {
			return err
		}
		newID, err := intAttr(newRow, gv.vIDPos, "vertex ID")
		if err != nil {
			return err
		}
		if oldID != newID {
			gv.ensurePrivateG()
			if err := gv.G.RenameVertex(oldID, newID); err != nil {
				return fmt.Errorf("graph view %s: %v", gv.Name, err)
			}
		}
	}
	if gv.IsEdgeSource(table) {
		oldID, err := intAttr(oldRow, gv.eIDPos, "edge ID")
		if err != nil {
			return err
		}
		newID, err := intAttr(newRow, gv.eIDPos, "edge ID")
		if err != nil {
			return err
		}
		if oldID != newID {
			gv.ensurePrivateG()
			if err := gv.G.RenameEdge(oldID, newID); err != nil {
				return fmt.Errorf("graph view %s: %v", gv.Name, err)
			}
		}
		oldFrom, _ := intAttr(oldRow, gv.eFromPos, "edge FROM")
		newFrom, err := intAttr(newRow, gv.eFromPos, "edge FROM")
		if err != nil {
			return err
		}
		oldTo, _ := intAttr(oldRow, gv.eToPos, "edge TO")
		newTo, err := intAttr(newRow, gv.eToPos, "edge TO")
		if err != nil {
			return err
		}
		if oldFrom != newFrom || oldTo != newTo {
			gv.ensurePrivateG()
			gv.G.RemoveEdge(newID)
			if _, err := gv.G.AddEdge(newID, newFrom, newTo, uint64(id)); err != nil {
				// Rejected rewire (e.g. dangling endpoint): restore the old
				// embedding so the aborted statement leaves the topology
				// exactly as it was.
				if _, rerr := gv.G.AddEdge(newID, oldFrom, oldTo, uint64(id)); rerr != nil {
					return fmt.Errorf("graph view %s: %v (topology restore also failed: %v)",
						gv.Name, err, rerr)
				}
				return fmt.Errorf("graph view %s: %v", gv.Name, err)
			}
		}
	}
	return nil
}

// VertexIDSourceColumn returns the position of the vertex-ID column within
// the vertexes relational-source schema.
func (gv *GraphView) VertexIDSourceColumn() int { return gv.vIDPos }

// EdgeEndpointSourceColumns returns the positions of the FROM and TO
// columns within the edges relational-source schema, used by the engine to
// preserve referential integrity when a vertex identifier is updated.
func (gv *GraphView) EdgeEndpointSourceColumns() (from, to int) { return gv.eFromPos, gv.eToPos }
