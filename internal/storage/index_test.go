package storage

import (
	"testing"
	"testing/quick"

	"grfusion/internal/types"
)

func indexedTable(t *testing.T, ordered bool) (*Table, *Index) {
	t.Helper()
	tb := usersTable(t)
	ix, err := tb.CreateIndex("ix_age", []int{2}, ordered)
	if err != nil {
		t.Fatal(err)
	}
	return tb, ix
}

func TestHashIndexLookup(t *testing.T) {
	tb, ix := indexedTable(t, false)
	a := mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(30))
	b := mustInsert(t, tb, types.NewInt(2), types.NewString("b"), types.NewInt(30))
	mustInsert(t, tb, types.NewInt(3), types.NewString("c"), types.NewInt(40))

	got := ix.Lookup(types.Row{types.NewInt(30)})
	if len(got) != 2 {
		t.Fatalf("lookup(30) = %v", got)
	}
	seen := map[RowID]bool{got[0]: true, got[1]: true}
	if !seen[a] || !seen[b] {
		t.Errorf("lookup(30) = %v, want {%d,%d}", got, a, b)
	}
	if got := ix.Lookup(types.Row{types.NewInt(99)}); len(got) != 0 {
		t.Errorf("lookup(99) = %v", got)
	}
}

func TestHashIndexMaintainedByUpdateDelete(t *testing.T) {
	tb, ix := indexedTable(t, false)
	a := mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(30))
	if err := tb.Update(a, types.Row{types.NewInt(1), types.NewString("a"), types.NewInt(31)}); err != nil {
		t.Fatal(err)
	}
	if len(ix.Lookup(types.Row{types.NewInt(30)})) != 0 {
		t.Error("stale index entry after update")
	}
	if len(ix.Lookup(types.Row{types.NewInt(31)})) != 1 {
		t.Error("missing index entry after update")
	}
	if err := tb.Delete(a); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Error("stale index entry after delete")
	}
}

func TestOrderedIndexRange(t *testing.T) {
	tb, ix := indexedTable(t, true)
	for i := int64(1); i <= 10; i++ {
		mustInsert(t, tb, types.NewInt(i), types.NewString("x"), types.NewInt(i*10))
	}
	collect := func(lo, hi Bound) []int64 {
		var out []int64
		ix.Range(lo, hi, func(id RowID) bool {
			row, _ := tb.Get(id)
			out = append(out, row[2].I)
			return true
		})
		return out
	}
	got := collect(Bound{Key: types.Row{types.NewInt(30)}, Inclusive: true},
		Bound{Key: types.Row{types.NewInt(50)}, Inclusive: true})
	want := []int64{30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("range [30,50] = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range [30,50] = %v, want %v", got, want)
		}
	}
	got = collect(Bound{Key: types.Row{types.NewInt(30)}, Inclusive: false},
		Bound{Key: types.Row{types.NewInt(50)}, Inclusive: false})
	if len(got) != 1 || got[0] != 40 {
		t.Errorf("range (30,50) = %v", got)
	}
	got = collect(Bound{}, Bound{Key: types.Row{types.NewInt(20)}, Inclusive: true})
	if len(got) != 2 {
		t.Errorf("range (-inf,20] = %v", got)
	}
	got = collect(Bound{Key: types.Row{types.NewInt(90)}, Inclusive: true}, Bound{})
	if len(got) != 2 {
		t.Errorf("range [90,inf) = %v", got)
	}
}

func TestOrderedIndexPointLookupAndDuplicates(t *testing.T) {
	tb, ix := indexedTable(t, true)
	mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(5))
	mustInsert(t, tb, types.NewInt(2), types.NewString("b"), types.NewInt(5))
	if got := ix.Lookup(types.Row{types.NewInt(5)}); len(got) != 2 {
		t.Errorf("dup lookup = %v", got)
	}
}

func TestFindIndexOn(t *testing.T) {
	tb := usersTable(t)
	if _, ok := tb.FindIndexOn([]int{2}, false); ok {
		t.Error("found index on unindexed table")
	}
	if _, err := tb.CreateIndex("ord", []int{2}, true); err != nil {
		t.Fatal(err)
	}
	// Ordered index serves point lookups as a fallback.
	ix, ok := tb.FindIndexOn([]int{2}, false)
	if !ok || !ix.Ordered() {
		t.Error("ordered index not usable for point lookup")
	}
	if _, err := tb.CreateIndex("hsh", []int{2}, false); err != nil {
		t.Fatal(err)
	}
	ix, ok = tb.FindIndexOn([]int{2}, false)
	if !ok || ix.Ordered() {
		t.Error("hash index must be preferred for point lookups")
	}
	ix, ok = tb.FindIndexOn([]int{2}, true)
	if !ok || !ix.Ordered() {
		t.Error("ordered request must return ordered index")
	}
	if _, ok := tb.FindIndexOn([]int{0, 2}, false); ok {
		t.Error("column-set mismatch matched")
	}
}

func TestCreateIndexErrors(t *testing.T) {
	tb := usersTable(t)
	if _, err := tb.CreateIndex("a", []int{9}, false); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := tb.CreateIndex("a", []int{1}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateIndex("A", []int{1}, false); err == nil {
		t.Error("duplicate index name accepted (case-insensitive)")
	}
	if !tb.DropIndex("a") {
		t.Error("drop existing index failed")
	}
	if tb.DropIndex("a") {
		t.Error("drop missing index succeeded")
	}
}

func TestIndexBuildsOverExistingRows(t *testing.T) {
	tb := usersTable(t)
	mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(30))
	ix, err := tb.CreateIndex("late", []int{2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Lookup(types.Row{types.NewInt(30)})) != 1 {
		t.Error("late-built index missed existing row")
	}
}

// Property: an ordered index enumerates exactly the live rows, in
// nondecreasing key order, under random insert/delete sequences.
func TestOrderedIndexSortedInvariant(t *testing.T) {
	prop := func(keys []int16, dels []uint8) bool {
		tb := newUsersTable()
		ix, err := tb.CreateIndex("ord", []int{2}, true)
		if err != nil {
			return false
		}
		var ids []RowID
		for i, k := range keys {
			id, err := tb.Insert(types.Row{types.NewInt(int64(i)), types.NewString("x"), types.NewInt(int64(k))})
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		for _, d := range dels {
			if len(ids) == 0 {
				break
			}
			i := int(d) % len(ids)
			if err := tb.Delete(ids[i]); err != nil {
				return false
			}
			ids = append(ids[:i], ids[i+1:]...)
		}
		if ix.Len() != tb.Len() {
			return false
		}
		prev := int64(-1 << 30)
		okOrder := true
		ix.Range(Bound{}, Bound{}, func(id RowID) bool {
			row, ok := tb.Get(id)
			if !ok {
				okOrder = false
				return false
			}
			if row[2].I < prev {
				okOrder = false
				return false
			}
			prev = row[2].I
			return true
		})
		return okOrder
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
