package storage

import "grfusion/internal/types"

// RowView is a read-only view of a table's slots: either the live table
// itself (single-threaded callers, writer-side execution) or an immutable
// TableSnap pinned by a reader. Plans scan and dereference tuple pointers
// through this interface so the same operators serve both sides.
type RowView interface {
	// Get returns the tuple in the given slot, or false if the slot is
	// free or out of range.
	Get(id RowID) (types.Row, bool)
	// Scan calls fn for every live tuple in slot order until fn returns
	// false.
	Scan(fn func(id RowID, row types.Row) bool)
	// Len returns the number of live tuples.
	Len() int
}

var (
	_ RowView = (*Table)(nil)
	_ RowView = (*TableSnap)(nil)
)

// TableSnap is an immutable snapshot of a table's visible rows, taken by
// the writer at version-publish time. It aliases the table's row array
// with a capacity-clamped slice, so taking one is O(1); the table's
// mutators copy the array before the first in-place slot write after a
// snapshot (appends extend past the clamp and are invisible to it).
// A TableSnap is safe for concurrent use without locks.
type TableSnap struct {
	t       *Table
	rows    []types.Row
	live    int
	version uint64
}

// Snapshot returns an immutable view of the table's current rows. The
// snapshot is cached and reused while the table's version is unchanged.
// Callers must hold the table's writer exclusively (the engine's write
// lock); the returned snapshot itself needs no locking.
func (t *Table) Snapshot() *TableSnap {
	v := t.version.Load()
	if t.snap != nil && t.snap.version == v {
		return t.snap
	}
	s := &TableSnap{
		t:       t,
		rows:    t.rows[:len(t.rows):len(t.rows)],
		live:    t.live,
		version: v,
	}
	t.snap = s
	t.sharedLen = len(t.rows)
	return s
}

// ensurePrivate copies the row array before an in-place write to slot i
// (0-based) that a live snapshot may alias. Appends never need it: the
// snapshot's slice is capacity-clamped, so growth past its length is
// invisible to it.
func (t *Table) ensurePrivate(i int) {
	if i >= t.sharedLen {
		return
	}
	rows := make([]types.Row, len(t.rows))
	copy(rows, t.rows)
	t.rows = rows
	t.sharedLen = 0
}

// Table returns the table the snapshot was taken from.
func (s *TableSnap) Table() *Table { return s.t }

// Version returns the table version the snapshot captured.
func (s *TableSnap) Version() uint64 { return s.version }

// LiveVersion returns the current version of the underlying table. Pinned
// index scans compare it against Version to detect concurrent mutation
// and fall back to a snapshot scan.
func (s *TableSnap) LiveVersion() uint64 { return s.t.version.Load() }

// Get returns the tuple in the given slot as of the snapshot.
func (s *TableSnap) Get(id RowID) (types.Row, bool) {
	if id == InvalidRowID || int(id) > len(s.rows) {
		return nil, false
	}
	r := s.rows[id-1]
	return r, r != nil
}

// RowValues implements the tuple-source interface used by the expression
// evaluator to dereference tuple pointers held by graph views.
func (s *TableSnap) RowValues(id uint64) (types.Row, bool) { return s.Get(RowID(id)) }

// Scan calls fn for every live tuple in slot order until fn returns false.
func (s *TableSnap) Scan(fn func(id RowID, row types.Row) bool) {
	for i, r := range s.rows {
		if r == nil {
			continue
		}
		if !fn(RowID(i+1), r) {
			return
		}
	}
}

// Len returns the number of live tuples as of the snapshot.
func (s *TableSnap) Len() int { return s.live }
