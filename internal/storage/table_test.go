package storage

import (
	"strings"
	"testing"
	"testing/quick"

	"grfusion/internal/types"
)

func newUsersTable() *Table {
	s := types.NewSchema(
		types.Column{Qualifier: "users", Name: "uid", Type: types.KindInt},
		types.Column{Qualifier: "users", Name: "name", Type: types.KindString},
		types.Column{Qualifier: "users", Name: "age", Type: types.KindInt},
	)
	tb, err := NewTable("users", s, []int{0})
	if err != nil {
		panic(err)
	}
	return tb
}

func usersTable(t *testing.T) *Table {
	t.Helper()
	return newUsersTable()
}

func mustInsert(t *testing.T, tb *Table, vals ...types.Value) RowID {
	t.Helper()
	id, err := tb.Insert(types.Row(vals))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestInsertGetDelete(t *testing.T) {
	tb := usersTable(t)
	id := mustInsert(t, tb, types.NewInt(1), types.NewString("ann"), types.NewInt(30))
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	row, ok := tb.Get(id)
	if !ok || row[1].S != "ann" {
		t.Fatalf("get: %v %v", row, ok)
	}
	if err := tb.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Get(id); ok {
		t.Error("deleted row still visible")
	}
	if err := tb.Delete(id); err == nil {
		t.Error("double delete must fail")
	}
	if tb.Len() != 0 {
		t.Errorf("len after delete = %d", tb.Len())
	}
}

func TestRowIDStabilityAndReuse(t *testing.T) {
	tb := usersTable(t)
	a := mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(1))
	b := mustInsert(t, tb, types.NewInt(2), types.NewString("b"), types.NewInt(2))
	if err := tb.Delete(a); err != nil {
		t.Fatal(err)
	}
	c := mustInsert(t, tb, types.NewInt(3), types.NewString("c"), types.NewInt(3))
	if c != a {
		t.Errorf("freed slot not reused: got %d want %d", c, a)
	}
	// b's RowID must still dereference to b's tuple.
	row, ok := tb.Get(b)
	if !ok || row[0].I != 2 {
		t.Fatalf("tuple pointer for b broken: %v %v", row, ok)
	}
}

func TestUndoInsertRestoresAllocator(t *testing.T) {
	tb := usersTable(t)
	mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(1))
	b := mustInsert(t, tb, types.NewInt(2), types.NewString("b"), types.NewInt(2))
	next, depth := tb.AllocState()

	// Extending insert: undo must shrink the row array back, not leave a
	// hole on the free list.
	c := mustInsert(t, tb, types.NewInt(3), types.NewString("c"), types.NewInt(3))
	if err := tb.UndoInsert(c, true); err != nil {
		t.Fatal(err)
	}
	if n, d := tb.AllocState(); n != next || d != depth {
		t.Fatalf("undo of extending insert: alloc (%d,%d), want (%d,%d)", n, d, next, depth)
	}

	// Reusing insert: undo must push the slot back on top of the free list.
	if err := tb.Delete(b); err != nil {
		t.Fatal(err)
	}
	next, depth = tb.AllocState()
	d := mustInsert(t, tb, types.NewInt(4), types.NewString("d"), types.NewInt(4))
	if d != b {
		t.Fatalf("insert reused slot %d, want %d", d, b)
	}
	if err := tb.UndoInsert(d, false); err != nil {
		t.Fatal(err)
	}
	if n, d := tb.AllocState(); n != next || d != depth {
		t.Fatalf("undo of reusing insert: alloc (%d,%d), want (%d,%d)", n, d, next, depth)
	}
	if e := mustInsert(t, tb, types.NewInt(5), types.NewString("e"), types.NewInt(5)); e != b {
		t.Fatalf("slot after undo: insert took %d, want %d", e, b)
	}

	// Claiming "extended" for a slot that is not the newest is a caller bug
	// and must be reported, not silently corrupt the row array.
	if err := tb.UndoInsert(RowID(1), true); err == nil {
		t.Fatal("out-of-order extended undo succeeded")
	}
}

func TestPrimaryKeyEnforcement(t *testing.T) {
	tb := usersTable(t)
	mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(1))
	if _, err := tb.Insert(types.Row{types.NewInt(1), types.NewString("dup"), types.NewInt(9)}); err == nil {
		t.Fatal("duplicate pk accepted")
	}
	if tb.Len() != 1 {
		t.Errorf("failed insert mutated table: len=%d", tb.Len())
	}
	if got := tb.LookupPK(types.Row{types.NewInt(1)}); got == InvalidRowID {
		t.Error("LookupPK missed existing key")
	}
	if got := tb.LookupPK(types.Row{types.NewInt(99)}); got != InvalidRowID {
		t.Errorf("LookupPK found ghost: %d", got)
	}
}

func TestUpdateMaintainsPK(t *testing.T) {
	tb := usersTable(t)
	a := mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(1))
	mustInsert(t, tb, types.NewInt(2), types.NewString("b"), types.NewInt(2))
	// Changing a's key to 2 must fail.
	err := tb.Update(a, types.Row{types.NewInt(2), types.NewString("a"), types.NewInt(1)})
	if err == nil {
		t.Fatal("pk collision on update accepted")
	}
	// Changing to a fresh key succeeds and old key is released.
	if err := tb.Update(a, types.Row{types.NewInt(7), types.NewString("a"), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if tb.LookupPK(types.Row{types.NewInt(1)}) != InvalidRowID {
		t.Error("old key still resolvable")
	}
	if tb.LookupPK(types.Row{types.NewInt(7)}) != a {
		t.Error("new key not resolvable")
	}
}

func TestSchemaEnforcementAndCoercion(t *testing.T) {
	tb := usersTable(t)
	if _, err := tb.Insert(types.Row{types.NewInt(1), types.NewString("a")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := tb.Insert(types.Row{types.NewString("x"), types.NewString("a"), types.NewInt(1)}); err == nil {
		t.Error("type mismatch accepted")
	}
	// Integral float coerces into BIGINT column.
	id, err := tb.Insert(types.Row{types.NewFloat(5), types.NewString("a"), types.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tb.Get(id)
	if row[0].Kind != types.KindInt || row[0].I != 5 {
		t.Errorf("coercion failed: %v", row[0])
	}
	// NULLs are allowed in non-key columns.
	if _, err := tb.Insert(types.Row{types.NewInt(6), types.Null(), types.Null()}); err != nil {
		t.Errorf("null insert: %v", err)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	tb := usersTable(t)
	for i := int64(1); i <= 5; i++ {
		mustInsert(t, tb, types.NewInt(i), types.NewString("x"), types.NewInt(i))
	}
	var seen []int64
	tb.Scan(func(id RowID, row types.Row) bool {
		seen = append(seen, row[0].I)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Errorf("scan: %v", seen)
	}
}

func TestTruncate(t *testing.T) {
	tb := usersTable(t)
	mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(1))
	if _, err := tb.CreateIndex("ix_age", []int{2}, false); err != nil {
		t.Fatal(err)
	}
	tb.Truncate()
	if tb.Len() != 0 {
		t.Error("truncate left rows")
	}
	ix, _ := tb.Index("ix_age")
	if ix.Len() != 0 {
		t.Error("truncate left index entries")
	}
	if _, err := tb.Insert(types.Row{types.NewInt(1), types.NewString("a"), types.NewInt(1)}); err != nil {
		t.Errorf("reinsert after truncate: %v", err)
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	tb := usersTable(t)
	v0 := tb.Version()
	id := mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(1))
	if tb.Version() == v0 {
		t.Error("insert did not bump version")
	}
	v1 := tb.Version()
	if err := tb.Update(id, types.Row{types.NewInt(1), types.NewString("b"), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if tb.Version() == v1 {
		t.Error("update did not bump version")
	}
}

func TestApproxBytesGrows(t *testing.T) {
	tb := usersTable(t)
	b0 := tb.ApproxBytes()
	mustInsert(t, tb, types.NewInt(1), types.NewString(strings.Repeat("x", 100)), types.NewInt(1))
	if tb.ApproxBytes() <= b0 {
		t.Error("ApproxBytes did not grow")
	}
}

// Property: after any sequence of inserts and deletes, Len equals the
// number of rows Scan visits, and every live PK resolves via LookupPK.
func TestInsertDeleteInvariantProperty(t *testing.T) {
	prop := func(ops []int8) bool {
		tb := newUsersTable()
		live := make(map[int64]RowID)
		next := int64(0)
		for _, op := range ops {
			if op >= 0 || len(live) == 0 {
				next++
				id, err := tb.Insert(types.Row{types.NewInt(next), types.NewString("p"), types.NewInt(next)})
				if err != nil {
					return false
				}
				live[next] = id
			} else {
				for k, id := range live { // delete an arbitrary live row
					if err := tb.Delete(id); err != nil {
						return false
					}
					delete(live, k)
					break
				}
			}
		}
		if tb.Len() != len(live) {
			return false
		}
		n := 0
		tb.Scan(func(RowID, types.Row) bool { n++; return true })
		if n != len(live) {
			return false
		}
		for k, id := range live {
			if tb.LookupPK(types.Row{types.NewInt(k)}) != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndexesListing(t *testing.T) {
	tb := usersTable(t)
	if got := tb.Indexes(); len(got) != 0 {
		t.Fatalf("fresh table has indexes: %v", got)
	}
	tb.CreateIndex("b_hash", []int{1}, false)
	tb.CreateIndex("a_ord", []int{0}, true)
	got := tb.Indexes()
	if len(got) != 2 || got[0].Name != "a_ord" || !got[0].Ordered || got[1].Name != "b_hash" {
		t.Fatalf("indexes: %+v", got)
	}
	if got[0].Cols[0] != 0 || got[1].Cols[0] != 1 {
		t.Errorf("index cols: %+v", got)
	}
}

func TestRowValuesTupleSource(t *testing.T) {
	tb := usersTable(t)
	id := mustInsert(t, tb, types.NewInt(1), types.NewString("a"), types.NewInt(1))
	row, ok := tb.RowValues(uint64(id))
	if !ok || row[0].I != 1 {
		t.Fatalf("RowValues: %v %v", row, ok)
	}
	if _, ok := tb.RowValues(999); ok {
		t.Error("dead tuple pointer dereferenced")
	}
}
