package storage

import (
	"sort"
	"sync"

	"grfusion/internal/types"
)

// Index is a secondary access path over a table. A hash index supports
// point lookups; an ordered index additionally supports range scans.
// Indexes are non-unique: one key may map to many RowIDs.
//
// Maintenance (insert/remove/clear) is serialized by the engine's writer
// lock, but lock-free readers may consult the index concurrently, so all
// access goes through mu. Readers detect in-flight maintenance by
// re-checking the owning table's version around Lookup/Range and fall
// back to scanning their pinned snapshot on a mismatch.
type Index struct {
	name    string
	cols    []int
	ordered bool

	mu sync.RWMutex

	hash map[string][]RowID

	// Ordered representation: entries sorted by key (types.Compare,
	// column-major), ties broken by RowID for determinism.
	entries []indexEntry
}

type indexEntry struct {
	key types.Row
	id  RowID
}

func newIndex(name string, cols []int, ordered bool) *Index {
	ix := &Index{name: name, cols: append([]int(nil), cols...), ordered: ordered}
	if !ordered {
		ix.hash = make(map[string][]RowID)
	}
	return ix
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Columns returns the indexed column positions.
func (ix *Index) Columns() []int { return ix.cols }

// Ordered reports whether the index supports range scans.
func (ix *Index) Ordered() bool { return ix.ordered }

func (ix *Index) keyOf(row types.Row) types.Row {
	key := make(types.Row, len(ix.cols))
	for i, c := range ix.cols {
		key[i] = row[c]
	}
	return key
}

func compareKeys(a, b types.Row) int {
	for i := range a {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func (ix *Index) insert(row types.Row, id RowID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	key := ix.keyOf(row)
	if !ix.ordered {
		ks := types.KeyOf(row, ix.cols)
		ix.hash[ks] = append(ix.hash[ks], id)
		return
	}
	e := indexEntry{key: key, id: id}
	pos := sort.Search(len(ix.entries), func(i int) bool {
		c := compareKeys(ix.entries[i].key, key)
		return c > 0 || (c == 0 && ix.entries[i].id >= id)
	})
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = e
}

func (ix *Index) remove(row types.Row, id RowID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.ordered {
		ks := types.KeyOf(row, ix.cols)
		ids := ix.hash[ks]
		for i, x := range ids {
			if x == id {
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				break
			}
		}
		if len(ids) == 0 {
			delete(ix.hash, ks)
		} else {
			ix.hash[ks] = ids
		}
		return
	}
	key := ix.keyOf(row)
	pos := sort.Search(len(ix.entries), func(i int) bool {
		c := compareKeys(ix.entries[i].key, key)
		return c > 0 || (c == 0 && ix.entries[i].id >= id)
	})
	if pos < len(ix.entries) && ix.entries[pos].id == id && compareKeys(ix.entries[pos].key, key) == 0 {
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
	}
}

func (ix *Index) clear() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.ordered {
		ix.hash = make(map[string][]RowID)
	}
	ix.entries = ix.entries[:0]
}

// Lookup returns the RowIDs whose indexed columns equal key, in
// deterministic order. The returned slice is the caller's to keep: it
// never aliases index internals, so it stays valid across concurrent
// maintenance.
func (ix *Index) Lookup(key types.Row) []RowID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.ordered {
		idx := make([]int, len(key))
		for i := range key {
			idx[i] = i
		}
		ids := ix.hash[types.KeyOf(key, idx)]
		if len(ids) == 0 {
			return nil
		}
		return append([]RowID(nil), ids...)
	}
	var out []RowID
	ix.rangeScan(key, key, true, true, func(id RowID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Bound describes one end of a range scan.
type Bound struct {
	Key       types.Row // nil means unbounded
	Inclusive bool
}

// Range calls fn for every RowID whose key lies within [lo, hi] subject to
// inclusivity, in ascending key order, until fn returns false. Only
// single-column ranges are supported for multi-column indexes' leading
// column when lo/hi have length 1.
func (ix *Index) Range(lo, hi Bound, fn func(id RowID) bool) {
	if !ix.ordered {
		panic("storage: Range on hash index " + ix.name)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.rangeScan(lo.Key, hi.Key, lo.Inclusive, hi.Inclusive, fn)
}

func (ix *Index) rangeScan(lo, hi types.Row, loInc, hiInc bool, fn func(id RowID) bool) {
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := ComparePrefix(ix.entries[i].key, lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	for i := start; i < len(ix.entries); i++ {
		if hi != nil {
			c := ComparePrefix(ix.entries[i].key, hi)
			if c > 0 || (c == 0 && !hiInc) {
				return
			}
		}
		if !fn(ix.entries[i].id) {
			return
		}
	}
}

// ComparePrefix compares only the first len(b) columns of a against b,
// allowing range scans on a prefix of a multi-column index. Pinned
// readers use it to apply index bounds as a snapshot-scan filter when a
// concurrent write forces them off the live index.
func ComparePrefix(a, b types.Row) int {
	n := len(b)
	if len(a) < n {
		n = len(a)
	}
	for i := 0; i < n; i++ {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Len returns the number of entries in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.ordered {
		n := 0
		for _, ids := range ix.hash {
			n += len(ids)
		}
		return n
	}
	return len(ix.entries)
}
