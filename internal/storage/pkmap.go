package storage

import (
	"math"

	"grfusion/internal/types"
)

// pkIndex is the primary-key uniqueness index of a Table. The general form
// keys a map by the string encoding of the key columns (types.KeyOf); the
// overwhelmingly common schema in graph workloads — a single BIGINT id
// column — gets a dedicated map[int64] fast path that skips the per-row
// key-string allocation and string hashing entirely. On the bulk-ingest
// path that string key was the single largest per-row cost (measured ~40%
// of a bare-table insert), so the fast path is what makes millions of
// edges per second reachable.
//
// The two representations agree on semantics: a DOUBLE that holds an exact
// integer shares its key with the equal BIGINT (mirroring types.Value.Key),
// and all NULL keys collide with each other (a second NULL primary key is a
// duplicate), which the fast path models with a dedicated null slot.
type pkIndex struct {
	cols []int // key column positions within the schema

	// intKey selects the single-BIGINT-column fast path.
	intKey bool
	ints   map[int64]RowID
	nullID RowID // slot of the row whose key is NULL (0 = none); fast path only

	str map[string]RowID // general form
}

// newPKIndex builds the index for the given key columns. The fast path is
// chosen statically from the declared schema: checkRow coerces every
// stored value to its column type, so a single-column BIGINT key can only
// ever hold KindInt or KindNull values.
func newPKIndex(schema *types.Schema, cols []int) *pkIndex {
	pk := &pkIndex{cols: cols}
	if len(cols) == 1 && schema.Columns[cols[0]].Type == types.KindInt {
		pk.intKey = true
		pk.ints = make(map[int64]RowID)
	} else {
		pk.str = make(map[string]RowID)
	}
	return pk
}

// intKeyOf maps a key value onto the fast path's int64 domain, mirroring
// types.Value.Key: BIGINTs map to themselves, DOUBLEs holding an exact
// in-range integer map to that integer, NULL maps to the null slot.
// ok=false means the value can never match a stored BIGINT key.
func intKeyOf(v types.Value) (k int64, isNull bool, ok bool) {
	switch v.Kind {
	case types.KindInt:
		return v.I, false, true
	case types.KindFloat:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			return int64(v.F), false, true
		}
		return 0, false, false
	case types.KindNull:
		return 0, true, true
	default:
		return 0, false, false
	}
}

// lookupRow returns the slot holding row's key, if any.
func (pk *pkIndex) lookupRow(row types.Row) (RowID, bool) {
	if pk.intKey {
		k, isNull, ok := intKeyOf(row[pk.cols[0]])
		if !ok {
			return InvalidRowID, false
		}
		if isNull {
			return pk.nullID, pk.nullID != InvalidRowID
		}
		id, ok := pk.ints[k]
		return id, ok
	}
	id, ok := pk.str[types.KeyOf(row, pk.cols)]
	return id, ok
}

// lookupKey is lookupRow over a bare key tuple (values in key-column
// order, as passed to Table.LookupPK).
func (pk *pkIndex) lookupKey(key types.Row) (RowID, bool) {
	if len(key) != len(pk.cols) {
		return InvalidRowID, false
	}
	if pk.intKey {
		k, isNull, ok := intKeyOf(key[0])
		if !ok {
			return InvalidRowID, false
		}
		if isNull {
			return pk.nullID, pk.nullID != InvalidRowID
		}
		id, ok := pk.ints[k]
		return id, ok
	}
	idx := make([]int, len(key))
	for i := range key {
		idx[i] = i
	}
	id, ok := pk.str[types.KeyOf(key, idx)]
	return id, ok
}

// insert records row's key as held by id. The caller has already checked
// for duplicates via lookupRow.
func (pk *pkIndex) insert(row types.Row, id RowID) {
	if pk.intKey {
		k, isNull, _ := intKeyOf(row[pk.cols[0]])
		if isNull {
			pk.nullID = id
			return
		}
		pk.ints[k] = id
		return
	}
	pk.str[types.KeyOf(row, pk.cols)] = id
}

// remove drops row's key from the index.
func (pk *pkIndex) remove(row types.Row) {
	if pk.intKey {
		k, isNull, ok := intKeyOf(row[pk.cols[0]])
		if !ok {
			return
		}
		if isNull {
			pk.nullID = InvalidRowID
			return
		}
		delete(pk.ints, k)
		return
	}
	delete(pk.str, types.KeyOf(row, pk.cols))
}

// sameKey reports whether rows a and b hold the same primary key.
func (pk *pkIndex) sameKey(a, b types.Row) bool {
	if pk.intKey {
		ka, na, oka := intKeyOf(a[pk.cols[0]])
		kb, nb, okb := intKeyOf(b[pk.cols[0]])
		return oka && okb && na == nb && (na || ka == kb)
	}
	return types.KeyOf(a, pk.cols) == types.KeyOf(b, pk.cols)
}

// clear resets the index to empty.
func (pk *pkIndex) clear() {
	if pk.intKey {
		pk.ints = make(map[int64]RowID)
		pk.nullID = InvalidRowID
		return
	}
	pk.str = make(map[string]RowID)
}

// reserve presizes the index for about n additional keys, so a bulk load
// does not pay incremental map growth (rehash + clear of the old buckets)
// on every few thousand rows.
func (pk *pkIndex) reserve(n int) {
	if n <= 0 {
		return
	}
	if pk.intKey {
		grown := make(map[int64]RowID, len(pk.ints)+n)
		for k, v := range pk.ints {
			grown[k] = v
		}
		pk.ints = grown
		return
	}
	grown := make(map[string]RowID, len(pk.str)+n)
	for k, v := range pk.str {
		grown[k] = v
	}
	pk.str = grown
}
