// Package storage implements the in-memory row store underneath the engine.
//
// Tables are slotted: every tuple lives in a stable slot addressed by a
// RowID that never changes for the lifetime of the tuple. RowIDs are the
// "main-memory tuple pointers" of the paper (§3.2) — a graph view's
// vertexes and edges hold RowIDs into their relational sources and
// dereference them in O(1), and the relational side can navigate back into
// the graph through the vertex hash map. Slots freed by deletion are
// recycled through a free list.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"grfusion/internal/types"
)

// RowID addresses one tuple slot in a table. The zero RowID is invalid;
// slot numbering starts at 1 so that RowID(0) can mean "no tuple".
type RowID uint64

// InvalidRowID is the zero, never-valid row id.
const InvalidRowID RowID = 0

// Table is an in-memory relation with optional primary key and secondary
// indexes. Mutations are not internally synchronized: the engine
// serializes all writers (VoltDB's single-threaded partition execution
// model). Readers that run without the engine lock never touch the live
// row array — they pin an immutable TableSnap — so the only live state
// they share with writers is the version counter (atomic), the secondary
// indexes (per-index RWMutex), and the index registry (idxMu).
type Table struct {
	name   string
	schema *types.Schema

	// rows[i] is the tuple in slot i+1, or nil if the slot is free.
	rows []types.Row
	free []RowID
	live int

	// snap caches the latest snapshot; rows[:sharedLen] is aliased by it,
	// so in-place writes below sharedLen copy the array first
	// (ensurePrivate). Both are writer-side state guarded by the engine
	// write lock.
	snap      *TableSnap
	sharedLen int

	pkCols []int // column indexes of the primary key; empty if none
	pk     *pkIndex

	// idxMu guards the indexes registry: lock-free readers resolve access
	// paths (FindIndexOn) concurrently with CREATE/DROP INDEX.
	idxMu   sync.RWMutex
	indexes map[string]*Index

	// version counts mutations; cursors use it to detect invalidation and
	// pinned index scans use it to detect concurrent writes. Mutators bump
	// it BEFORE touching rows/pk/indexes so a reader that observes
	// unchanged versions around an index read is guaranteed the index
	// matched its snapshot.
	version atomic.Uint64
}

// NewTable creates an empty table. pkCols lists the positions of the
// primary-key columns within the schema (may be empty for no key).
func NewTable(name string, schema *types.Schema, pkCols []int) (*Table, error) {
	for _, c := range pkCols {
		if c < 0 || c >= schema.Len() {
			return nil, fmt.Errorf("table %s: primary key column index %d out of range", name, c)
		}
	}
	t := &Table{
		name:    name,
		schema:  schema,
		pkCols:  append([]int(nil), pkCols...),
		indexes: make(map[string]*Index),
	}
	if len(pkCols) > 0 {
		t.pk = newPKIndex(schema, t.pkCols)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() *types.Schema { return t.schema }

// PrimaryKeyColumns returns the primary-key column positions (nil if none).
func (t *Table) PrimaryKeyColumns() []int { return t.pkCols }

// Len returns the number of live tuples.
func (t *Table) Len() int { return t.live }

// Version returns the mutation counter.
func (t *Table) Version() uint64 { return t.version.Load() }

// AllocState describes the deterministic row-id allocator: the slot a
// fresh insert would extend into and the depth of the LIFO free list.
// The WAL pins this pair per logged statement so crash-recovery replay
// can prove it assigns the same row ids the original execution did.
func (t *Table) AllocState() (nextSlot RowID, freeDepth int) {
	return RowID(len(t.rows) + 1), len(t.free)
}

// Reserve presizes the table for about n additional tuples: the row array
// grows to its final capacity once and the primary-key index rehashes once,
// instead of both growing incrementally every few thousand inserts. Bulk
// ingest calls it with the loader's row-count hint; it changes no visible
// state. Requires the writer lock, like any mutator.
func (t *Table) Reserve(n int) {
	if n <= 0 {
		return
	}
	if need := len(t.rows) + n; need > cap(t.rows) {
		rows := make([]types.Row, len(t.rows), need)
		copy(rows, t.rows)
		t.rows = rows
		// A live snapshot keeps aliasing the old array; the fresh copy is
		// private, so in-place writes below the old shared length no longer
		// need a copy-on-write.
		t.sharedLen = 0
	}
	if t.pk != nil {
		t.pk.reserve(n)
	}
}

func (t *Table) checkRow(row types.Row) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("table %s: row has %d values, schema has %d columns",
			t.name, len(row), t.schema.Len())
	}
	for i, v := range row {
		col := t.schema.Columns[i]
		if v.IsNull() || v.Kind == col.Type {
			continue
		}
		cv, err := types.CoerceTo(v, col.Type)
		if err != nil {
			return fmt.Errorf("table %s column %s: %v", t.name, col.Name, err)
		}
		row[i] = cv
	}
	return nil
}

// Insert adds a tuple and returns its stable RowID. It fails on primary-key
// violation without modifying the table.
func (t *Table) Insert(row types.Row) (RowID, error) {
	if err := t.checkRow(row); err != nil {
		return InvalidRowID, err
	}
	if t.pk != nil {
		if _, dup := t.pk.lookupRow(row); dup {
			return InvalidRowID, fmt.Errorf("table %s: duplicate primary key %s",
				t.name, describeKey(row, t.pkCols))
		}
	}
	t.version.Add(1)
	var id RowID
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		t.ensurePrivate(int(id - 1))
		t.rows[id-1] = row
	} else {
		t.rows = append(t.rows, row)
		id = RowID(len(t.rows))
	}
	if t.pk != nil {
		t.pk.insert(row, id)
	}
	for _, ix := range t.indexes {
		ix.insert(row, id)
	}
	t.live++
	return id, nil
}

// Get returns the tuple in the given slot, or false if the slot is free or
// out of range. The returned row must not be mutated by callers.
func (t *Table) Get(id RowID) (types.Row, bool) {
	if id == InvalidRowID || int(id) > len(t.rows) {
		return nil, false
	}
	r := t.rows[id-1]
	return r, r != nil
}

// RowValues implements the tuple-source interface used by the expression
// evaluator to dereference tuple pointers held by graph views.
func (t *Table) RowValues(id uint64) (types.Row, bool) { return t.Get(RowID(id)) }

// LookupPK returns the RowID of the tuple with the given primary-key
// values, or InvalidRowID if absent or the table has no primary key.
func (t *Table) LookupPK(key types.Row) RowID {
	if t.pk == nil {
		return InvalidRowID
	}
	id, ok := t.pk.lookupKey(key)
	if !ok {
		return InvalidRowID
	}
	return id
}

// Update replaces the tuple in the given slot, maintaining the primary key
// and all secondary indexes. It fails if the new key collides with another
// tuple's.
func (t *Table) Update(id RowID, row types.Row) error {
	old, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("table %s: update of dead row id %d", t.name, id)
	}
	if err := t.checkRow(row); err != nil {
		return err
	}
	keyMoved := false
	if t.pk != nil && !t.pk.sameKey(old, row) {
		keyMoved = true
		if _, dup := t.pk.lookupRow(row); dup {
			return fmt.Errorf("table %s: duplicate primary key %s",
				t.name, describeKey(row, t.pkCols))
		}
	}
	t.version.Add(1)
	if keyMoved {
		t.pk.remove(old)
		t.pk.insert(row, id)
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	t.ensurePrivate(int(id - 1))
	t.rows[id-1] = row
	for _, ix := range t.indexes {
		ix.insert(row, id)
	}
	return nil
}

// Delete removes the tuple in the given slot and recycles it.
func (t *Table) Delete(id RowID) error {
	old, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("table %s: delete of dead row id %d", t.name, id)
	}
	t.version.Add(1)
	if t.pk != nil {
		t.pk.remove(old)
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	t.ensurePrivate(int(id - 1))
	t.rows[id-1] = nil
	t.free = append(t.free, id)
	t.live--
	return nil
}

// UndoInsert exactly reverses the table's most recent Insert of id.
// extended reports whether that Insert grew the row array (the free list
// was empty); the caller captures it from AllocState before inserting. A
// reusing insert is reversed by a plain Delete — the slot returns to the
// top of the LIFO free list it was popped from — but an extending insert
// must also shrink the row array, or an aborted statement would leave an
// allocator trace (one extra slot plus one hole) that crash-recovery
// replay, which only ever sees applied statements, can never reproduce.
func (t *Table) UndoInsert(id RowID, extended bool) error {
	if err := t.Delete(id); err != nil {
		return err
	}
	if !extended {
		return nil
	}
	if int(id) != len(t.rows) || len(t.free) == 0 || t.free[len(t.free)-1] != id {
		return fmt.Errorf("table %s: undo of extending insert %d out of order", t.name, id)
	}
	t.free = t.free[:len(t.free)-1]
	t.rows = t.rows[:len(t.rows)-1]
	return nil
}

// FreeList returns a copy of the free list in LIFO order (the slot a
// fresh insert would reuse is last). Snapshots persist it so a restored
// table keeps allocating exactly like the original.
func (t *Table) FreeList() []RowID {
	return append([]RowID(nil), t.free...)
}

// RestoreSlots loads an exact slot image into an empty table: rows[i]
// becomes the tuple in slot i+1, nil entries are holes, and free is the
// LIFO free list covering exactly those holes. Preserving slot numbers
// and free-list order keeps RowIDs — the main-memory tuple pointers graph
// views hold (§3.2) — and every future allocation of the deterministic
// allocator identical to the table the image was taken from, which WAL
// replay depends on.
func (t *Table) RestoreSlots(rows []types.Row, free []RowID) error {
	if t.live > 0 || len(t.rows) > 0 || len(t.free) > 0 {
		return fmt.Errorf("table %s: slot restore into a non-empty table", t.name)
	}
	holes := make(map[RowID]bool)
	for i, r := range rows {
		if r == nil {
			holes[RowID(i+1)] = true
		}
	}
	if len(free) != len(holes) {
		return fmt.Errorf("table %s: free list has %d entries for %d holes", t.name, len(free), len(holes))
	}
	for _, id := range free {
		if !holes[id] {
			return fmt.Errorf("table %s: free-list slot %d is not a hole", t.name, id)
		}
		delete(holes, id) // each hole exactly once
	}
	t.version.Add(1)
	for i, row := range rows {
		if row == nil {
			continue
		}
		if err := t.checkRow(row); err != nil {
			return err
		}
		if t.pk != nil {
			if _, dup := t.pk.lookupRow(row); dup {
				return fmt.Errorf("table %s: duplicate primary key %s",
					t.name, describeKey(row, t.pkCols))
			}
			t.pk.insert(row, RowID(i+1))
		}
		for _, ix := range t.indexes {
			ix.insert(row, RowID(i+1))
		}
		t.live++
	}
	t.rows = rows
	t.sharedLen = 0
	t.free = append([]RowID(nil), free...)
	return nil
}

// Scan calls fn for every live tuple in slot order until fn returns false.
// fn must not mutate the table.
func (t *Table) Scan(fn func(id RowID, row types.Row) bool) {
	for i, r := range t.rows {
		if r == nil {
			continue
		}
		if !fn(RowID(i+1), r) {
			return
		}
	}
}

// Truncate removes every tuple.
func (t *Table) Truncate() {
	t.version.Add(1)
	if t.sharedLen > 0 {
		// A live snapshot aliases the backing array: reusing it would
		// leak future inserts into the snapshot. Drop it instead.
		t.rows = nil
		t.sharedLen = 0
	} else {
		t.rows = t.rows[:0]
	}
	t.free = t.free[:0]
	t.live = 0
	if t.pk != nil {
		t.pk.clear()
	}
	for _, ix := range t.indexes {
		ix.clear()
	}
}

// ApproxBytes estimates the resident size of the table's tuples, used by
// the memory-accounting experiments (Table 3 in DESIGN.md).
func (t *Table) ApproxBytes() int64 {
	var total int64
	for _, r := range t.rows {
		if r == nil {
			continue
		}
		total += RowApproxBytes(r)
	}
	return total
}

// RowApproxBytes estimates the resident size of one tuple.
func RowApproxBytes(r types.Row) int64 {
	const valueHeader = 48 // sizeof(types.Value) rounded up
	total := int64(len(r)) * valueHeader
	for _, v := range r {
		if v.Kind == types.KindString {
			total += int64(len(v.S))
		}
	}
	return total
}

func describeKey(row types.Row, cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = row[c].String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CreateIndex builds a secondary index named name over the given column
// positions. ordered selects a sorted index supporting range scans;
// otherwise a hash index is built. Building scans the current contents.
func (t *Table) CreateIndex(name string, cols []int, ordered bool) (*Index, error) {
	lname := strings.ToLower(name)
	if _, dup := t.indexes[lname]; dup {
		return nil, fmt.Errorf("table %s: index %s already exists", t.name, name)
	}
	for _, c := range cols {
		if c < 0 || c >= t.schema.Len() {
			return nil, fmt.Errorf("table %s: index column %d out of range", t.name, c)
		}
	}
	ix := newIndex(name, cols, ordered)
	t.Scan(func(id RowID, row types.Row) bool {
		ix.insert(row, id)
		return true
	})
	t.idxMu.Lock()
	t.indexes[lname] = ix
	t.idxMu.Unlock()
	return ix, nil
}

// DropIndex removes the named index, reporting whether it existed.
func (t *Table) DropIndex(name string) bool {
	lname := strings.ToLower(name)
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	_, ok := t.indexes[lname]
	delete(t.indexes, lname)
	return ok
}

// IndexInfo describes one secondary index for catalog introspection and
// snapshots.
type IndexInfo struct {
	Name    string
	Cols    []int
	Ordered bool
}

// Indexes lists the table's secondary indexes sorted by name.
func (t *Table) Indexes() []IndexInfo {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]IndexInfo, 0, len(names))
	for _, n := range names {
		ix := t.indexes[n]
		out = append(out, IndexInfo{Name: ix.name, Cols: append([]int(nil), ix.cols...), Ordered: ix.ordered})
	}
	return out
}

// Index returns the named index, if present.
func (t *Table) Index(name string) (*Index, bool) {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	ix, ok := t.indexes[strings.ToLower(name)]
	return ix, ok
}

// FindIndexOn returns an index whose leading columns are exactly cols, and
// whether it supports range scans. Hash indexes are preferred for point
// lookups (ordered=false request); ordered indexes for range requests.
func (t *Table) FindIndexOn(cols []int, needOrdered bool) (*Index, bool) {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic choice
	var fallback *Index
	for _, n := range names {
		ix := t.indexes[n]
		if !sameCols(ix.cols, cols) {
			continue
		}
		if ix.ordered == needOrdered {
			return ix, true
		}
		fallback = ix
	}
	if fallback != nil && !needOrdered {
		// A hash lookup was requested but only an ordered index exists;
		// an ordered index can serve point lookups too.
		return fallback, true
	}
	return nil, false
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
