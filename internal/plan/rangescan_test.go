package plan

import (
	"strings"
	"testing"

	"grfusion/internal/exec"
)

func TestRangeScanChosen(t *testing.T) {
	cat := fixture(t)
	users, _ := cat.Table("Users")
	if _, err := users.CreateIndex("ord_uid", []int{0}, true); err != nil {
		t.Fatal(err)
	}
	// Two-sided range.
	op := planFor(t, cat, Options{}, "SELECT name FROM Users WHERE uid >= 2 AND uid < 4")
	plan := exec.Explain(op)
	if !strings.Contains(plan, "IndexRangeScan") {
		t.Fatalf("range scan not chosen:\n%s", plan)
	}
	rows, err := exec.Collect(exec.NewContext(0), op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // uids 2 and 3
		t.Fatalf("range rows: %d", len(rows))
	}
	// One-sided range, flipped operand order.
	op = planFor(t, cat, Options{}, "SELECT name FROM Users WHERE 3 < uid")
	if !strings.Contains(exec.Explain(op), "IndexRangeScan") {
		t.Fatalf("flipped range not chosen:\n%s", exec.Explain(op))
	}
	rows, err = exec.Collect(exec.NewContext(0), op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // uids 4 and 5
		t.Fatalf("flipped range rows: %d", len(rows))
	}
	// Extra predicates on unindexed columns stay as residual filters and
	// results remain exact.
	op = planFor(t, cat, Options{}, "SELECT name FROM Users WHERE uid > 1 AND uid <= 4 AND name = 'u'")
	plan = exec.Explain(op)
	if !strings.Contains(plan, "IndexRangeScan") || !strings.Contains(plan, "name") {
		t.Fatalf("residual lost:\n%s", plan)
	}
	rows, err = exec.Collect(exec.NewContext(0), op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("range+filter rows: %d", len(rows))
	}
}

func TestRangeScanNotChosenWithoutOrderedIndex(t *testing.T) {
	cat := fixture(t) // only a hash index on job exists
	op := planFor(t, cat, Options{}, "SELECT name FROM Users WHERE uid >= 2")
	if strings.Contains(exec.Explain(op), "IndexRangeScan") {
		t.Fatalf("range scan chosen without ordered index:\n%s", exec.Explain(op))
	}
}

func TestEqualityBeatsRange(t *testing.T) {
	cat := fixture(t)
	users, _ := cat.Table("Users")
	if _, err := users.CreateIndex("ord_uid", []int{0}, true); err != nil {
		t.Fatal(err)
	}
	// A point predicate should use the (ordered) index as a point lookup,
	// not a range scan.
	op := planFor(t, cat, Options{}, "SELECT name FROM Users WHERE uid = 3 AND uid > 1")
	plan := exec.Explain(op)
	if !strings.Contains(plan, "IndexScan") || strings.Contains(plan, "IndexRangeScan") {
		t.Fatalf("point lookup not preferred:\n%s", plan)
	}
}
