package plan

import (
	"grfusion/internal/sql"
)

// ReadOnly classifies a parsed statement for the engine's reader/writer
// protocol. Read-only statements — SELECT (over plain relations as well as
// the VERTEXES/EDGES/PATHS graph-view facets), EXPLAIN, and SHOW — never
// mutate catalog, storage, or graph-view topology, so the engine may run
// any number of them concurrently under a shared lock. Everything else
// (DML, DDL, TRUNCATE) takes exclusive access, keeping graph-view
// maintenance (§3.3) transactionally serialized exactly as in the paper's
// single-threaded partition model.
//
// The classification is deliberately conservative: unknown statement types
// report false and fall back to exclusive execution.
func ReadOnly(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Select, *sql.Explain, *sql.Show:
		return true
	default:
		return false
	}
}
