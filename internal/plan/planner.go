// Package plan translates parsed SELECT statements into physical operator
// trees (QEPs). It implements the paper's cross-model planning (§5.3) —
// relational items are joined first, then each PATHS item is attached as a
// traversal probed by the relational side (Figure 6) — and the §6
// optimizations: path-length inference, pushing predicates and monotone
// aggregate bounds ahead of PathScan, and logical→physical traversal
// operator selection.
package plan

import (
	"fmt"
	"strings"

	"grfusion/internal/catalog"
	"grfusion/internal/exec"
	"grfusion/internal/expr"
	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Options control optimizer behaviour; the zero value enables everything
// (the defaults the paper runs with outside ablations).
type Options struct {
	// DisablePushdown keeps path predicates as residual filters above the
	// PathScan instead of pushing them into the traversal (§7.1 disables
	// pushdown to isolate the graph-view benefit in the reachability
	// experiments).
	DisablePushdown bool
	// DisableLengthInference turns off §6.1 path-length inference.
	DisableLengthInference bool
	// ForceTraversal overrides the physical operator chosen for PathScans
	// without an explicit hint: "bfs", "dfs", or "" for the cost rule.
	ForceTraversal string
	// ForceLayout overrides the topology layout chosen for PathScans:
	// "csr", "ptr", or "" for the size rule (CSR once the topology is big
	// enough to amortize a snapshot build). Benchmarks and the
	// differential oracle use it to pin both layouts over the same data.
	ForceLayout string
	// MaterializeJoins wraps every join output in a temp-table barrier,
	// reproducing VoltDB's materialize-per-fragment execution model. The
	// SQLGraph baseline runs in this mode (§7.2's intermediate-memory
	// abort depends on it); GRFusion itself pipelines.
	MaterializeJoins bool
}

// Pin exposes one immutable engine version to the planner: the row view of
// each table and the topology binding of each graph view as of that
// version. A plan built with a Pin reads only pinned state at execution
// time, so it runs without the engine lock while writers publish newer
// versions. A nil Pin plans against the live objects (the writer side and
// single-threaded embedders).
type Pin interface {
	// Seq identifies the pinned version (monotonically increasing).
	Seq() uint64
	// Table returns the pinned row view of t.
	Table(t *storage.Table) storage.RowView
	// GraphView returns the pinned binding of gv.
	GraphView(gv *catalog.GraphView) *catalog.GraphViewAt
}

// Planner builds QEPs against a catalog.
type Planner struct {
	Cat  *catalog.Catalog
	Opts Options
	// Pin, when set, binds every scan in the plan to one engine version.
	Pin Pin
}

// New creates a planner with default options.
func New(cat *catalog.Catalog) *Planner { return &Planner{Cat: cat} }

// pinRows returns the pinned row view of t, or nil when planning live.
func (p *Planner) pinRows(t *storage.Table) storage.RowView {
	if p.Pin == nil {
		return nil
	}
	return p.Pin.Table(t)
}

// pinView returns the pinned binding of gv, or nil when planning live.
func (p *Planner) pinView(gv *catalog.GraphView) *catalog.GraphViewAt {
	if p.Pin == nil {
		return nil
	}
	return p.Pin.GraphView(gv)
}

// fromKind classifies a FROM item.
type fromKind uint8

const (
	kindTable fromKind = iota
	kindVertexes
	kindEdges
	kindPaths
	kindAnalytics
)

type fromInfo struct {
	item   sql.FromItem
	alias  string // display alias
	kind   fromKind
	table  *storage.Table
	gv     *catalog.GraphView
	at     *catalog.GraphViewAt // pinned binding of gv (nil when planning live)
	schema *types.Schema
}

// acc returns the attribute accessor plans should dereference the view
// through: the pinned binding when present, else the live view.
func (fi *fromInfo) acc() expr.GraphAccessor {
	if fi.at != nil {
		return fi.at
	}
	return fi.gv
}

// PlanSelect compiles a SELECT into an executable operator tree.
func (p *Planner) PlanSelect(s *sql.Select) (exec.Operator, error) {
	// A FROM-less SELECT evaluates its items once over a singleton row.
	infos, err := p.resolveFrom(s.From)
	if err != nil {
		return nil, err
	}
	// Global schema + path bindings, used to classify predicates. Path
	// attribute dereferences go through the pinned accessor when planning
	// against a pinned version.
	global := types.NewSchema()
	accByAlias := map[string]expr.GraphAccessor{}
	for i := range infos {
		fi := &infos[i]
		global = global.Concat(fi.schema)
		if fi.kind == kindPaths {
			accByAlias[strings.ToLower(fi.alias)] = fi.acc()
		}
	}
	binderFor := func(schema *types.Schema) *expr.Binder {
		b := expr.NewBinder(schema)
		for i, c := range schema.Columns {
			if c.Type == types.KindPath && strings.EqualFold(c.Name, catalog.PathColumn) {
				if acc, ok := accByAlias[strings.ToLower(c.Qualifier)]; ok {
					b.WithPath(c.Qualifier, expr.PathBinding{Col: i, Acc: acc})
				}
			}
		}
		return b
	}

	// Split WHERE into conjuncts; bind a throwaway copy globally for
	// classification, keeping the raw trees for local rebinding.
	var conjRaw []expr.Expr
	var conjBound []expr.Expr
	if s.Where != nil {
		conjRaw = expr.SplitConjuncts(s.Where)
		gb := binderFor(global)
		for _, c := range conjRaw {
			bc, err := gb.Bind(c.Clone())
			if err != nil {
				return nil, err
			}
			conjBound = append(conjBound, bc)
		}
	}
	used := make([]bool, len(conjRaw))

	// --- Relational stage: join all non-PATHS items left-deep. -----------
	var relInfos, pathInfos []*fromInfo
	for i := range infos {
		if infos[i].kind == kindPaths {
			pathInfos = append(pathInfos, &infos[i])
		} else {
			relInfos = append(relInfos, &infos[i])
		}
	}

	var tree exec.Operator
	joinedAliases := map[string]bool{}
	for _, fi := range relInfos {
		self := map[string]bool{strings.ToLower(fi.alias): true}
		// Single-item conjuncts become the scan filter.
		var scanConj []expr.Expr
		var scanConjIdx []int
		for i := range conjRaw {
			if used[i] {
				continue
			}
			set := expr.Qualifiers(conjBound[i])
			if len(set) > 0 && subset(set, self) {
				scanConj = append(scanConj, conjRaw[i])
				scanConjIdx = append(scanConjIdx, i)
			}
		}
		scan, err := p.buildScan(fi, scanConj, binderFor)
		if err != nil {
			return nil, err
		}
		for _, i := range scanConjIdx {
			used[i] = true
		}
		if tree == nil {
			tree = scan
			for a := range self {
				joinedAliases[a] = true
			}
			continue
		}
		tree, err = p.joinNext(tree, scan, joinedAliases, strings.ToLower(fi.alias),
			conjRaw, conjBound, used, binderFor)
		if err != nil {
			return nil, err
		}
		joinedAliases[strings.ToLower(fi.alias)] = true
	}
	if tree == nil {
		tree = exec.Singleton{}
	}
	// Conjuncts over the relational aliases only (including alias-free
	// constants) are applied now.
	if op, err := p.applyFilters(tree, joinedAliases, conjRaw, conjBound, used, binderFor); err != nil {
		return nil, err
	} else {
		tree = op
	}

	// --- Graph stage: attach each PATHS item as a probe join (§5.3). -----
	for _, fi := range pathInfos {
		tree, err = p.attachPathScan(s, tree, fi, joinedAliases, conjRaw, conjBound, used, binderFor)
		if err != nil {
			return nil, err
		}
		joinedAliases[strings.ToLower(fi.alias)] = true
		if op, err := p.applyFilters(tree, joinedAliases, conjRaw, conjBound, used, binderFor); err != nil {
			return nil, err
		} else {
			tree = op
		}
	}
	// Anything unconsumed at this point is a bug or an unresolvable
	// reference; surface it.
	for i := range conjRaw {
		if !used[i] {
			return nil, fmt.Errorf("predicate %s references unknown range variables", conjRaw[i])
		}
	}

	return p.finishSelect(s, tree, infos, binderFor)
}

// resolveFrom resolves FROM items against the catalog.
func (p *Planner) resolveFrom(items []sql.FromItem) ([]fromInfo, error) {
	var infos []fromInfo
	seen := map[string]bool{}
	for _, item := range items {
		fi := fromInfo{item: item, alias: item.AliasOrName()}
		key := strings.ToLower(fi.alias)
		if seen[key] {
			return nil, fmt.Errorf("duplicate range variable %q in FROM", fi.alias)
		}
		seen[key] = true
		if item.Member == sql.MemberNone {
			t, ok := p.Cat.Table(item.Name)
			if !ok {
				return nil, fmt.Errorf("unknown table %q", item.Name)
			}
			fi.kind = kindTable
			fi.table = t
			fi.schema = t.Schema().WithQualifier(fi.alias)
		} else {
			gv, ok := p.Cat.GraphView(item.Name)
			if !ok {
				return nil, fmt.Errorf("unknown graph view %q", item.Name)
			}
			fi.gv = gv
			fi.at = p.pinView(gv)
			switch item.Member {
			case sql.MemberVertexes:
				fi.kind = kindVertexes
				fi.schema = gv.VertexSchema().WithQualifier(fi.alias)
			case sql.MemberEdges:
				fi.kind = kindEdges
				fi.schema = gv.EdgeSchema().WithQualifier(fi.alias)
			case sql.MemberAnalytics:
				fn, ok := exec.AnalyticsFuncByName(item.Func)
				if !ok {
					return nil, fmt.Errorf("unknown analytics function %q on graph view %q (want PAGERANK, CONNECTED_COMPONENTS, LABEL_PROPAGATION or DEGREE_CENTRALITY)", item.Func, item.Name)
				}
				lo, hi := fn.Arity()
				if len(item.Args) < lo || len(item.Args) > hi {
					return nil, fmt.Errorf("%s expects between %d and %d arguments, got %d", fn, lo, hi, len(item.Args))
				}
				for _, a := range item.Args {
					switch a.(type) {
					case *expr.Literal, *expr.Param:
					default:
						return nil, fmt.Errorf("%s arguments must be literals or parameters, got %s", fn, a)
					}
				}
				fi.kind = kindAnalytics
				fi.schema = exec.AnalyticsSchema(fn).WithQualifier(fi.alias)
			default:
				fi.kind = kindPaths
				fi.schema = types.NewSchema(exec.PathColumn(fi.alias))
			}
		}
		infos = append(infos, fi)
	}
	return infos, nil
}

// buildScan plans one relational leaf, choosing an index point lookup when
// an equality-with-constant predicate matches an index.
func (p *Planner) buildScan(fi *fromInfo, conj []expr.Expr,
	binderFor func(*types.Schema) *expr.Binder) (exec.Operator, error) {

	bindLocal := func(es []expr.Expr) (expr.Expr, error) {
		if len(es) == 0 {
			return nil, nil
		}
		b := binderFor(fi.schema)
		var bound []expr.Expr
		for _, e := range es {
			be, err := b.Bind(e.Clone())
			if err != nil {
				return nil, err
			}
			bound = append(bound, be)
		}
		return expr.JoinConjuncts(bound), nil
	}

	switch fi.kind {
	case kindVertexes:
		f, err := bindLocal(conj)
		if err != nil {
			return nil, err
		}
		vs := exec.NewVertexScan(fi.gv, fi.alias, f)
		vs.At = fi.at
		return vs, nil
	case kindEdges:
		f, err := bindLocal(conj)
		if err != nil {
			return nil, err
		}
		es := exec.NewEdgeScan(fi.gv, fi.alias, f)
		es.At = fi.at
		return es, nil
	case kindAnalytics:
		f, err := bindLocal(conj)
		if err != nil {
			return nil, err
		}
		fn, _ := exec.AnalyticsFuncByName(fi.item.Func)
		as := exec.NewAnalyticsScan(fi.gv, fi.alias, fn, fi.item.Args, p.chooseLayout(fi), f)
		as.At = fi.at
		return as, nil
	}

	// Table: try an index point lookup on `col = literal`.
	resolveCol := func(col *expr.ColumnRef) (int, bool) {
		pos, err := fi.schema.Resolve(col.Qualifier, col.Name)
		return pos, err == nil
	}
	for i, c := range conj {
		be, ok := c.(*expr.BinaryExpr)
		if !ok || be.Op != expr.OpEq {
			continue
		}
		col, lit := asColLiteral(be.L, be.R)
		if col == nil {
			col, lit = asColLiteral(be.R, be.L)
		}
		if col == nil {
			continue
		}
		pos, ok := resolveCol(col)
		if !ok {
			continue
		}
		ix, ok := fi.table.FindIndexOn([]int{pos}, false)
		if !ok {
			continue
		}
		rest := make([]expr.Expr, 0, len(conj)-1)
		rest = append(rest, conj[:i]...)
		rest = append(rest, conj[i+1:]...)
		f, err := bindLocal(rest)
		if err != nil {
			return nil, err
		}
		is := exec.NewIndexScan(fi.table, fi.alias, ix, []expr.Expr{lit}, f)
		is.Rows = p.pinRows(fi.table)
		return is, nil
	}

	// Range predicates over an ordered index: accumulate the bounds of the
	// first column that has both an ordered index and at least one usable
	// comparison, and scan the remainder as a residual filter.
	type rangeBounds struct {
		lo, hi       expr.Expr
		loInc, hiInc bool
		used         []int
	}
	byCol := map[int]*rangeBounds{}
	for i, c := range conj {
		be, ok := c.(*expr.BinaryExpr)
		if !ok || !isRangeOp(be.Op) {
			continue
		}
		col, lit := asColLiteral(be.L, be.R)
		op := be.Op
		if col == nil {
			if col, lit = asColLiteral(be.R, be.L); col != nil {
				op = flipOp(op)
			}
		}
		if col == nil {
			continue
		}
		pos, ok := resolveCol(col)
		if !ok {
			continue
		}
		rb := byCol[pos]
		if rb == nil {
			rb = &rangeBounds{}
			byCol[pos] = rb
		}
		// Keep one bound per side (the first; further constraints stay in
		// the residual filter, which preserves correctness).
		switch op {
		case expr.OpGt, expr.OpGe:
			if rb.lo == nil {
				rb.lo, rb.loInc = lit, op == expr.OpGe
				rb.used = append(rb.used, i)
			}
		case expr.OpLt, expr.OpLe:
			if rb.hi == nil {
				rb.hi, rb.hiInc = lit, op == expr.OpLe
				rb.used = append(rb.used, i)
			}
		}
	}
	for pos, rb := range byCol {
		ix, ok := fi.table.FindIndexOn([]int{pos}, true)
		if !ok || !ix.Ordered() {
			continue
		}
		usedSet := map[int]bool{}
		for _, u := range rb.used {
			usedSet[u] = true
		}
		var rest []expr.Expr
		for i, c := range conj {
			if !usedSet[i] {
				rest = append(rest, c)
			}
		}
		f, err := bindLocal(rest)
		if err != nil {
			return nil, err
		}
		rs := exec.NewIndexRangeScan(fi.table, fi.alias, ix,
			rb.lo, rb.hi, rb.loInc, rb.hiInc, f)
		rs.Rows = p.pinRows(fi.table)
		return rs, nil
	}

	f, err := bindLocal(conj)
	if err != nil {
		return nil, err
	}
	ss := exec.NewSeqScan(fi.table, fi.alias, f)
	ss.Rows = p.pinRows(fi.table)
	return ss, nil
}

func isRangeOp(op expr.BinOp) bool {
	return op == expr.OpLt || op == expr.OpLe || op == expr.OpGt || op == expr.OpGe
}

// asColLiteral recognizes one side as a bare column reference and the
// other as an execution-time constant (a literal or a `?` parameter),
// enabling index point lookups for both ad-hoc and prepared statements.
func asColLiteral(a, b expr.Expr) (*expr.ColumnRef, expr.Expr) {
	var col *expr.ColumnRef
	switch n := a.(type) {
	case *expr.ColumnRef:
		col = n
	case *expr.RawRef:
		if len(n.Parts) == 1 && !n.Parts[0].HasIndex {
			col = &expr.ColumnRef{Name: n.Parts[0].Name, Idx: -1}
		} else if len(n.Parts) == 2 && !n.Parts[0].HasIndex && !n.Parts[1].HasIndex {
			col = &expr.ColumnRef{Qualifier: n.Parts[0].Name, Name: n.Parts[1].Name, Idx: -1}
		}
	}
	if col == nil {
		return nil, nil
	}
	switch b.(type) {
	case *expr.Literal, *expr.Param:
		return col, b
	}
	return nil, nil
}

// joinNext joins the next relational scan onto the tree, preferring a hash
// join over the available equi-conjuncts.
func (p *Planner) joinNext(tree, scan exec.Operator, joined map[string]bool, next string,
	conjRaw, conjBound []expr.Expr, used []bool,
	binderFor func(*types.Schema) *expr.Binder) (exec.Operator, error) {

	both := map[string]bool{next: true}
	for a := range joined {
		both[a] = true
	}
	var leftKeys, rightKeys []expr.Expr
	var residualRaw []expr.Expr
	var usedIdx []int
	for i := range conjRaw {
		if used[i] {
			continue
		}
		set := expr.Qualifiers(conjBound[i])
		if len(set) == 0 || !subset(set, both) || !set[next] {
			continue
		}
		// Equi-join candidate: a = b with sides on opposite alias sets.
		if be, ok := conjBound[i].(*expr.BinaryExpr); ok && be.Op == expr.OpEq {
			ls, rs := expr.Qualifiers(be.L), expr.Qualifiers(be.R)
			raw := conjRaw[i].(*expr.BinaryExpr)
			lb := binderFor(tree.Schema())
			rb := binderFor(scan.Schema())
			switch {
			case len(ls) > 0 && subset(ls, joined) && len(rs) > 0 && subset(rs, map[string]bool{next: true}):
				lk, err := lb.Bind(raw.L.Clone())
				if err != nil {
					return nil, err
				}
				rk, err := rb.Bind(raw.R.Clone())
				if err != nil {
					return nil, err
				}
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
				usedIdx = append(usedIdx, i)
				continue
			case len(rs) > 0 && subset(rs, joined) && len(ls) > 0 && subset(ls, map[string]bool{next: true}):
				lk, err := lb.Bind(raw.R.Clone())
				if err != nil {
					return nil, err
				}
				rk, err := rb.Bind(raw.L.Clone())
				if err != nil {
					return nil, err
				}
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
				usedIdx = append(usedIdx, i)
				continue
			}
		}
		residualRaw = append(residualRaw, conjRaw[i])
		usedIdx = append(usedIdx, i)
	}
	outSchema := tree.Schema().Concat(scan.Schema())
	var residual expr.Expr
	if len(residualRaw) > 0 {
		b := binderFor(outSchema)
		var bound []expr.Expr
		for _, e := range residualRaw {
			be, err := b.Bind(e.Clone())
			if err != nil {
				return nil, err
			}
			bound = append(bound, be)
		}
		residual = expr.JoinConjuncts(bound)
	}
	for _, i := range usedIdx {
		used[i] = true
	}
	var join exec.Operator
	if len(leftKeys) > 0 {
		join = exec.NewHashJoin(tree, scan, leftKeys, rightKeys, residual)
	} else {
		join = exec.NewNestedLoopJoin(tree, scan, residual)
	}
	if p.Opts.MaterializeJoins {
		join = exec.NewMaterialize(join)
	}
	return join, nil
}

// applyFilters attaches any still-unused conjuncts whose range variables
// are all available in the current tree.
func (p *Planner) applyFilters(tree exec.Operator, avail map[string]bool,
	conjRaw, conjBound []expr.Expr, used []bool,
	binderFor func(*types.Schema) *expr.Binder) (exec.Operator, error) {

	var pending []expr.Expr
	for i := range conjRaw {
		if used[i] {
			continue
		}
		set := expr.Qualifiers(conjBound[i])
		if subset(set, avail) {
			pending = append(pending, conjRaw[i])
			used[i] = true
		}
	}
	if len(pending) == 0 {
		return tree, nil
	}
	b := binderFor(tree.Schema())
	var bound []expr.Expr
	for _, e := range pending {
		be, err := b.Bind(e.Clone())
		if err != nil {
			return nil, err
		}
		bound = append(bound, be)
	}
	return exec.NewFilter(tree, expr.JoinConjuncts(bound)), nil
}

func subset(set, allowed map[string]bool) bool {
	for a := range set {
		if !allowed[a] {
			return false
		}
	}
	return true
}
