package plan

import (
	"fmt"
	"math"
	"strings"

	"grfusion/internal/exec"
	"grfusion/internal/expr"
	"grfusion/internal/graph"
	"grfusion/internal/sql"
	"grfusion/internal/types"
)

// attachPathScan plans one PATHS item: it analyzes the conjuncts that
// mention the path variable, extracts start/end vertex bindings, infers the
// allowed path-length range (§6.1), pushes per-position predicates and
// monotone aggregate bounds into the traversal (§6.2), picks the physical
// operator (§6.3), and attaches the PathScan probed by the current
// relational tree (Figure 6).
func (p *Planner) attachPathScan(s *sql.Select, tree exec.Operator, fi *fromInfo,
	avail map[string]bool, conjRaw, conjBound []expr.Expr, used []bool,
	binderFor func(*types.Schema) *expr.Binder) (exec.Operator, error) {

	alias := strings.ToLower(fi.alias)
	availPlus := map[string]bool{alias: true}
	for a := range avail {
		availPlus[a] = true
	}
	outerBinder := func() *expr.Binder { return binderFor(tree.Schema()) }

	spec := exec.PathScanSpec{
		GV:     fi.gv,
		At:     fi.at,
		Alias:  fi.alias,
		MinLen: 1,
		KPaths: 1,
	}
	if fi.item.Hint.AllPaths {
		spec.Policy = graph.VisitPerPath
	}
	lenMin, lenMax := -1, -1 // explicit PS.Length constraints
	exMin := 0               // existence minimum inferred from subscripts

	mine := func(i int) bool {
		if used[i] {
			return false
		}
		set := expr.Qualifiers(conjBound[i])
		return set[alias] && subset(set, availPlus)
	}
	refsAlias := func(e expr.Expr) bool { return expr.Qualifiers(e)[alias] }

	// Under the default visit-once exploration (§5.1.2), per-position
	// filters define WHICH sub-graph is traversed — applying them as
	// residuals over the unfiltered traversal tree would change results,
	// not just cost. They are therefore always pushed for VisitGlobal
	// scans; DisablePushdown only affects per-path scans (where pushing is
	// a pure optimization) and aggregate bounds. Note the policy for this
	// decision is known here: cycle detection (pass 1 below) and the
	// ALLPATHS hint (applied above) both select VisitPerPath.

	// Pass 1: cycle-closure detection (kept as residual for exactness).
	for i := range conjRaw {
		if !mine(i) {
			continue
		}
		be, ok := conjBound[i].(*expr.BinaryExpr)
		if !ok || be.Op != expr.OpEq {
			continue
		}
		if k, ok := cycleClosure(be, alias); ok {
			spec.CycleClose = true
			spec.Policy = graph.VisitPerPath
			if k+1 > exMin {
				exMin = k + 1
			}
		}
	}

	pushElems := !p.Opts.DisablePushdown || spec.Policy == graph.VisitGlobal

	// Pass 2: bindings, length constraints, pushable predicates.
	for i := range conjRaw {
		if !mine(i) {
			continue
		}
		rawBE, _ := conjRaw[i].(*expr.BinaryExpr)
		switch b := conjBound[i].(type) {
		case *expr.BinaryExpr:
			if !b.Op.IsComparison() {
				continue
			}
			// Start / end vertex bindings: PS.StartVertex.Id = <outer>.
			if b.Op == expr.OpEq {
				if side, otherRaw, ok := vertexIDBinding(b, rawBE, alias, refsAlias); ok {
					bound, err := outerBinder().Bind(otherRaw.Clone())
					if err != nil {
						return nil, err
					}
					if !side && spec.StartExpr == nil { // start
						spec.StartExpr = bound
						used[i] = true
						continue
					}
					if side && !spec.CycleClose && spec.EndExpr == nil { // end
						spec.EndExpr = bound
						used[i] = true
						continue
					}
				}
			}
			// Length constraints: PS.Length op <int literal>.
			if lo, hi, ok := lengthConstraint(b); ok {
				if lo >= 0 && (lenMin < 0 || lo > lenMin) {
					lenMin = lo
				}
				if hi >= 0 && (lenMax < 0 || hi < lenMax) {
					lenMax = hi
				}
				used[i] = true
				continue
			}
			// Per-position element predicates.
			if f, otherRaw, minNeeded, ok := elemFilter(b, rawBE, alias, refsAlias); ok {
				if !p.Opts.DisableLengthInference && minNeeded > exMin {
					exMin = minNeeded
				}
				if pushElems {
					bound, err := outerBinder().Bind(otherRaw.Clone())
					if err != nil {
						return nil, err
					}
					f.Other = bound
					if f.Elem == expr.ElemVertexes {
						spec.VertexFilters = append(spec.VertexFilters, f)
					} else {
						spec.EdgeFilters = append(spec.EdgeFilters, f)
					}
					used[i] = true
				}
				continue
			}
			// Monotone aggregate bounds (pushed AND kept as residual).
			if ab, boundRaw, ok := aggBound(b, rawBE, alias, refsAlias); ok && !p.Opts.DisablePushdown {
				be2, err := outerBinder().Bind(boundRaw.Clone())
				if err != nil {
					return nil, err
				}
				ab.Bound = be2
				spec.AggBounds = append(spec.AggBounds, ab)
				continue
			}
		case *expr.InExpr:
			// PS.Edges[r].Attr IN (...) quantified membership.
			if f, listRaw, minNeeded, ok := elemInFilter(b, conjRaw[i].(*expr.InExpr), alias, refsAlias); ok {
				if !p.Opts.DisableLengthInference && minNeeded > exMin {
					exMin = minNeeded
				}
				if pushElems {
					ob := outerBinder()
					for _, le := range listRaw {
						ble, err := ob.Bind(le.Clone())
						if err != nil {
							return nil, err
						}
						f.List = append(f.List, ble)
					}
					if f.Elem == expr.ElemVertexes {
						spec.VertexFilters = append(spec.VertexFilters, f)
					} else {
						spec.EdgeFilters = append(spec.EdgeFilters, f)
					}
					used[i] = true
				}
				continue
			}
		}
	}

	// Length inference also scans unconsumed residual conjuncts for
	// subscript existence requirements (sound: a reference to position k
	// is unsatisfiable on shorter paths).
	if !p.Opts.DisableLengthInference {
		for i := range conjRaw {
			if used[i] || !mine(i) {
				continue
			}
			if m := subscriptMinimum(conjBound[i], alias); m > exMin {
				exMin = m
			}
		}
	}

	// Resolve the final length window.
	spec.MinLen = 1
	if lenMin >= 0 {
		spec.MinLen = lenMin
	}
	if exMin > spec.MinLen {
		spec.MinLen = exMin
	}
	if lenMax >= 0 {
		spec.MaxLen = lenMax
		if spec.MaxLen < spec.MinLen {
			// Contradictory constraints: empty result, planned as an
			// unsatisfiable window the kernels handle naturally.
			spec.MaxLen = spec.MinLen - 1
		}
	}

	// Physical operator selection (§6.3).
	if err := p.choosePhysical(s, fi, &spec); err != nil {
		return nil, err
	}
	spec.Layout = p.chooseLayout(fi)

	// Multi-source scans — no start binding, so the traversal fans out of
	// every vertex — are marked parallelizable: the per-source traversals
	// are independent, and the ParallelPathScan merges their results in
	// source order, so the plan stays deterministic at any worker count.
	// Single-source probes keep the sequential kernel (nothing to fan out).
	spec.Parallel = spec.StartExpr == nil

	return exec.NewPathProbeJoin(tree, spec, nil), nil
}

func (p *Planner) choosePhysical(s *sql.Select, fi *fromInfo, spec *exec.PathScanSpec) error {
	if fi.item.Hint.AllPaths {
		spec.Policy = graph.VisitPerPath
	}
	switch fi.item.Hint.Kind {
	case sql.HintShortestPath:
		if !fi.gv.HasEdgeAttr(fi.item.Hint.WeightAttr) {
			return fmt.Errorf("graph view %s has no edge attribute %q for SHORTESTPATH",
				fi.gv.Name, fi.item.Hint.WeightAttr)
		}
		spec.Phys = exec.PhysSP
		spec.WeightAttr = fi.item.Hint.WeightAttr
		spec.KPaths = topK(s)
		return nil
	case sql.HintDFS:
		spec.Phys = exec.PhysDFS
		return nil
	case sql.HintBFS:
		spec.Phys = exec.PhysBFS
		return nil
	}
	switch strings.ToLower(p.Opts.ForceTraversal) {
	case "bfs":
		spec.Phys = exec.PhysBFS
		return nil
	case "dfs":
		spec.Phys = exec.PhysDFS
		return nil
	}
	// Pattern-matching traversals (all simple paths) favor DFS: its stack
	// is bounded by the path length while a BFS queue holds whole levels.
	if spec.Policy == graph.VisitPerPath {
		spec.Phys = exec.PhysDFS
		return nil
	}
	// Targeted reachability favors BFS: the target is emitted at its
	// minimum depth, so LIMIT 1 stops at the BFS frontier that reaches it.
	if spec.EndExpr != nil {
		spec.Phys = exec.PhysBFS
		return nil
	}
	// The paper's memory rule: a DFS stack holds about F·L vertexes, a BFS
	// queue about F^L; prefer BFS only when F^L < F·L. F comes from the
	// published statistics object when the backend refresher is running
	// (§6.3), otherwise from the live O(1) average.
	if spec.MaxLen > 0 {
		f := fi.topo().AvgFanOut()
		// FreshStats (not Stats) so statistics that predate a rebuild or
		// heavy DML cannot steer the choice; stale objects fall back to
		// the live average.
		if st := fi.gv.FreshStats(); st != nil {
			f = st.AvgFanOut
		}
		l := float64(spec.MaxLen)
		if math.Pow(f, l) < f*l {
			spec.Phys = exec.PhysBFS
			return nil
		}
	}
	spec.Phys = exec.PhysDFS
	return nil
}

// csrMinSize is the topology size (vertexes + edges) above which a
// PathScan traverses the CSR snapshot instead of the pointer topology.
// Below it the dense renumbering cannot pay for its build: a snapshot of
// a hundred-odd elements rebuilds in microseconds but also traverses in
// microseconds, so the pointer kernels keep the tiny-graph fast path and
// the planner stays deterministic for EXPLAIN goldens over toy data.
const csrMinSize = 256

// chooseLayout picks the topology layout for one PathScan. The choice is
// purely physical — both layouts emit byte-identical results (enforced by
// the differential oracle) — so the rule only weighs snapshot build cost
// against traversal savings.
func (p *Planner) chooseLayout(fi *fromInfo) exec.Layout {
	switch strings.ToLower(p.Opts.ForceLayout) {
	case "csr":
		return exec.LayoutCSR
	case "ptr":
		return exec.LayoutPtr
	}
	g := fi.topo()
	if g.NumVertices()+g.NumEdges() >= csrMinSize {
		return exec.LayoutCSR
	}
	return exec.LayoutPtr
}

// topo returns the topology instance this item's plan reads: the pinned
// version when the planner carries a pin, else the live graph.
func (fi *fromInfo) topo() *graph.Graph {
	if fi.at != nil {
		return fi.at.G
	}
	return fi.gv.G
}

func topK(s *sql.Select) int {
	k := -1
	if s.Top > 0 {
		k = s.Top
	}
	if s.Limit > 0 && (k < 0 || s.Limit < k) {
		k = s.Limit
	}
	if k < 1 {
		return 1
	}
	return k
}

// cycleClosure recognizes P.Edges[k].EndVertex = P.Edges[0].StartVertex
// (either orientation) and P.EndVertexId = P.StartVertexId.
func cycleClosure(b *expr.BinaryExpr, alias string) (k int, ok bool) {
	le, lok := b.L.(*expr.PathEndpointID)
	re, rok := b.R.(*expr.PathEndpointID)
	if lok && rok &&
		strings.EqualFold(le.Alias, alias) && strings.EqualFold(re.Alias, alias) {
		if !le.End && le.Idx == 0 && re.End {
			return re.Idx, true
		}
		if !re.End && re.Idx == 0 && le.End {
			return le.Idx, true
		}
	}
	lp, lok2 := b.L.(*expr.PathProperty)
	rp, rok2 := b.R.(*expr.PathProperty)
	if lok2 && rok2 && strings.EqualFold(lp.Alias, alias) && strings.EqualFold(rp.Alias, alias) {
		if (lp.Prop == expr.PropStartVertexID && rp.Prop == expr.PropEndVertexID) ||
			(lp.Prop == expr.PropEndVertexID && rp.Prop == expr.PropStartVertexID) {
			return 1, true
		}
	}
	return 0, false
}

// vertexIDBinding recognizes PS.StartVertex.Id = X / PS.EndVertex.Id = X /
// PS.StartVertexId = X where X does not reference the path. It returns
// end=false for a start binding, plus the raw other side.
func vertexIDBinding(b, raw *expr.BinaryExpr, alias string, refsAlias func(expr.Expr) bool) (end bool, otherRaw expr.Expr, ok bool) {
	check := func(side expr.Expr) (bool, bool) {
		switch n := side.(type) {
		case *expr.PathVertexAttr:
			if strings.EqualFold(n.Alias, alias) && strings.EqualFold(n.Attr, "ID") {
				return n.End, true
			}
		case *expr.PathProperty:
			if strings.EqualFold(n.Alias, alias) {
				if n.Prop == expr.PropStartVertexID {
					return false, true
				}
				if n.Prop == expr.PropEndVertexID {
					return true, true
				}
			}
		}
		return false, false
	}
	if e, isBind := check(b.L); isBind && !refsAlias(b.R) {
		return e, raw.R, true
	}
	if e, isBind := check(b.R); isBind && !refsAlias(b.L) {
		return e, raw.L, true
	}
	return false, nil, false
}

// lengthConstraint recognizes PS.Length op <int literal> (either side) and
// returns the implied [lo, hi] contribution (-1 for an open bound).
func lengthConstraint(b *expr.BinaryExpr) (lo, hi int, ok bool) {
	prop, lit, flipped := propAndLiteral(b)
	if prop == nil || prop.Prop != expr.PropLength || lit == nil || lit.Val.Kind != types.KindInt {
		return 0, 0, false
	}
	n := int(lit.Val.I)
	op := b.Op
	if flipped {
		op = flipOp(op)
	}
	switch op {
	case expr.OpEq:
		return n, n, true
	case expr.OpLe:
		return -1, n, true
	case expr.OpLt:
		return -1, n - 1, true
	case expr.OpGe:
		return n, -1, true
	case expr.OpGt:
		return n + 1, -1, true
	default:
		return 0, 0, false
	}
}

func propAndLiteral(b *expr.BinaryExpr) (*expr.PathProperty, *expr.Literal, bool) {
	if p, ok := b.L.(*expr.PathProperty); ok {
		if l, ok := b.R.(*expr.Literal); ok {
			return p, l, false
		}
	}
	if p, ok := b.R.(*expr.PathProperty); ok {
		if l, ok := b.L.(*expr.Literal); ok {
			return p, l, true
		}
	}
	return nil, nil, false
}

// flipOp mirrors a comparison when its operands are swapped.
func flipOp(op expr.BinOp) expr.BinOp {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	default:
		return op
	}
}

// rngMinimum is the path length a subscript range requires to be
// satisfiable (§6.1).
func rngMinimum(r expr.Rng, elem expr.ElemKind) int {
	// Vertex position k exists when length >= k; edge position k when
	// length >= k+1.
	adj := 1
	if elem == expr.ElemVertexes {
		adj = 0
	}
	switch {
	case r.All:
		return 0
	case r.Wildcard:
		return r.Start + adj
	default:
		return r.End + adj
	}
}

// elemFilter recognizes a pushable comparison over path elements:
// PS.Edges[r].Attr op X (or flipped) with X path-independent.
func elemFilter(b, raw *expr.BinaryExpr, alias string, refsAlias func(expr.Expr) bool) (exec.ElemFilter, expr.Expr, int, bool) {
	if pe, ok := b.L.(*expr.PathElemAttr); ok &&
		strings.EqualFold(pe.Alias, alias) && !pe.Rng.All && !refsAlias(b.R) {
		f := exec.ElemFilter{Elem: pe.Elem, Rng: pe.Rng, Attr: pe.Attr, Op: b.Op}
		return f, raw.R, rngMinimum(pe.Rng, pe.Elem), true
	}
	if pe, ok := b.R.(*expr.PathElemAttr); ok &&
		strings.EqualFold(pe.Alias, alias) && !pe.Rng.All && !refsAlias(b.L) {
		f := exec.ElemFilter{Elem: pe.Elem, Rng: pe.Rng, Attr: pe.Attr, Op: b.Op, Flipped: true}
		return f, raw.L, rngMinimum(pe.Rng, pe.Elem), true
	}
	return exec.ElemFilter{}, nil, 0, false
}

// elemInFilter recognizes PS.Edges[r].Attr [NOT] IN (list) with a
// path-independent list.
func elemInFilter(b *expr.InExpr, raw *expr.InExpr, alias string, refsAlias func(expr.Expr) bool) (exec.ElemFilter, []expr.Expr, int, bool) {
	pe, ok := b.E.(*expr.PathElemAttr)
	if !ok || !strings.EqualFold(pe.Alias, alias) || pe.Rng.All {
		return exec.ElemFilter{}, nil, 0, false
	}
	for _, le := range b.List {
		if refsAlias(le) {
			return exec.ElemFilter{}, nil, 0, false
		}
	}
	f := exec.ElemFilter{Elem: pe.Elem, Rng: pe.Rng, Attr: pe.Attr, IsIn: true, InNeg: b.Neg}
	return f, raw.List, rngMinimum(pe.Rng, pe.Elem), true
}

// aggBound recognizes SUM(PS.Edges.A) < X / <= X (or the flipped > / >=
// with the aggregate on the right) and COUNT variants.
func aggBound(b, raw *expr.BinaryExpr, alias string, refsAlias func(expr.Expr) bool) (exec.AggBound, expr.Expr, bool) {
	match := func(side expr.Expr) (exec.AggBound, bool) {
		fc, ok := side.(*expr.FuncCall)
		if !ok || len(fc.Args) != 1 {
			return exec.AggBound{}, false
		}
		name := strings.ToUpper(fc.Name)
		if name != "SUM" && name != "COUNT" {
			return exec.AggBound{}, false
		}
		pe, ok := fc.Args[0].(*expr.PathElemAttr)
		if !ok || !pe.Rng.All || !strings.EqualFold(pe.Alias, alias) {
			return exec.AggBound{}, false
		}
		return exec.AggBound{Agg: name, Elem: pe.Elem, Attr: pe.Attr}, true
	}
	if ab, ok := match(b.L); ok && !refsAlias(b.R) && (b.Op == expr.OpLt || b.Op == expr.OpLe) {
		ab.Op = b.Op
		return ab, raw.R, true
	}
	if ab, ok := match(b.R); ok && !refsAlias(b.L) && (b.Op == expr.OpGt || b.Op == expr.OpGe) {
		ab.Op = flipOp(b.Op)
		return ab, raw.L, true
	}
	return exec.AggBound{}, nil, false
}

// subscriptMinimum walks a residual conjunct for subscripted references to
// the path, returning the largest existence requirement found in a
// quantifier-safe position (direct comparison/IN operands only; the
// evaluator's semantics make a reference to a missing position falsify the
// predicate there).
func subscriptMinimum(e expr.Expr, alias string) int {
	m := 0
	expr.Walk(e, func(n expr.Expr) bool {
		switch x := n.(type) {
		case *expr.UnaryExpr:
			if x.Op == expr.OpNot {
				return false // inference under NOT would be unsound
			}
		case *expr.BinaryExpr:
			if x.Op == expr.OpOr {
				return false // either disjunct may hold
			}
		case *expr.CaseExpr:
			return false
		case *expr.PathElemAttr:
			if strings.EqualFold(x.Alias, alias) {
				if v := rngMinimum(x.Rng, x.Elem); v > m {
					m = v
				}
			}
		case *expr.PathEndpointID:
			if strings.EqualFold(x.Alias, alias) {
				if v := x.Idx + 1; v > m {
					m = v
				}
			}
		}
		return true
	})
	return m
}
