package plan

import (
	"fmt"
	"strings"

	"grfusion/internal/catalog"
	"grfusion/internal/exec"
	"grfusion/internal/expr"
	"grfusion/internal/sql"
	"grfusion/internal/types"
)

// selItem is one resolved output column.
type selItem struct {
	raw  expr.Expr
	name string
}

// finishSelect plans aggregation, projection, DISTINCT, ORDER BY and
// LIMIT/TOP on top of the joined tree.
func (p *Planner) finishSelect(s *sql.Select, tree exec.Operator, infos []fromInfo,
	binderFor func(*types.Schema) *expr.Binder) (exec.Operator, error) {

	items, err := expandStars(s.Items, infos)
	if err != nil {
		return nil, err
	}
	childBinder := binderFor(tree.Schema())

	// Bind every output expression against the tree.
	boundItems := make([]expr.Expr, len(items))
	for i, it := range items {
		be, err := childBinder.Bind(it.raw.Clone())
		if err != nil {
			return nil, err
		}
		boundItems[i] = be
	}
	var boundHaving expr.Expr
	if s.Having != nil {
		if boundHaving, err = childBinder.Bind(s.Having.Clone()); err != nil {
			return nil, err
		}
	}

	hasAgg := len(s.GroupBy) > 0 || boundHaving != nil
	for _, be := range boundItems {
		if expr.HasAggregate(be) {
			hasAgg = true
		}
	}
	for _, o := range s.OrderBy {
		// Classify on the bound form: SUM(PS.Edges.conf) is a per-path
		// aggregate, visible only after binding. Unbindable keys (select
		// aliases) cannot introduce aggregation by themselves.
		if bo, err := childBinder.Bind(o.E.Clone()); err == nil && expr.HasAggregate(bo) {
			hasAgg = true
		}
	}

	var sortBelow []exec.SortKey // sort keys bound below the projection
	if hasAgg {
		tree, boundItems, err = p.planAggregate(s, tree, items, boundItems, boundHaving, childBinder)
		if err != nil {
			return nil, err
		}
	}

	// Projection.
	outCols := make([]types.Column, len(items))
	for i := range items {
		outCols[i] = types.Column{Name: items[i].name, Type: inferKind(boundItems[i], schemaOf(tree))}
	}
	outSchema := types.NewSchema(outCols...)

	if !hasAgg && len(s.OrderBy) > 0 {
		// Try binding order keys below the projection (general SQL
		// semantics: ORDER BY may reference unprojected columns).
		keys, ok := bindSortKeys(s.OrderBy, binderFor(tree.Schema()))
		if ok {
			sortBelow = keys
		}
	}
	if len(sortBelow) > 0 {
		tree = exec.NewSort(tree, sortBelow)
	}
	proj := exec.NewProject(tree, boundItems, outSchema)
	var top exec.Operator = proj

	if s.Distinct {
		top = exec.NewDistinct(top)
	}
	if len(s.OrderBy) > 0 && len(sortBelow) == 0 {
		// Resolve against the projected output: select aliases/names, or a
		// textual match with a select item (covers ORDER BY COUNT(*) and
		// ORDER BY U.name in grouped queries).
		keys, err := resolveOrderAgainstOutput(s.OrderBy, items, binderFor(outSchema))
		if err != nil {
			return nil, err
		}
		top = exec.NewSort(top, keys)
	}
	limit := -1
	if s.Top >= 0 {
		limit = s.Top
	}
	if s.Limit >= 0 && (limit < 0 || s.Limit < limit) {
		limit = s.Limit
	}
	if limit >= 0 || s.Offset > 0 {
		top = exec.NewLimit(top, limit, s.Offset)
	}
	return top, nil
}

func schemaOf(op exec.Operator) *types.Schema { return op.Schema() }

// bindSortKeys binds every ORDER BY key with the given binder, reporting
// whether all succeeded.
func bindSortKeys(order []sql.OrderItem, b *expr.Binder) ([]exec.SortKey, bool) {
	keys := make([]exec.SortKey, 0, len(order))
	for _, o := range order {
		be, err := b.Bind(o.E.Clone())
		if err != nil {
			return nil, false
		}
		keys = append(keys, exec.SortKey{E: be, Desc: o.Desc})
	}
	return keys, true
}

// expandStars resolves * and qualified stars into explicit output items.
func expandStars(items []sql.SelectItem, infos []fromInfo) ([]selItem, error) {
	var out []selItem
	addItem := func(fi *fromInfo) {
		if fi.kind == kindPaths {
			out = append(out, selItem{
				raw:  &expr.RawRef{Parts: []expr.RefPart{{Name: fi.alias}}},
				name: fi.alias,
			})
			return
		}
		for _, c := range fi.schema.Columns {
			out = append(out, selItem{
				raw:  &expr.RawRef{Parts: []expr.RefPart{{Name: fi.alias}, {Name: c.Name}}},
				name: c.Name,
			})
		}
	}
	for _, it := range items {
		if !it.Star {
			out = append(out, selItem{raw: it.Expr, name: outputName(it)})
			continue
		}
		if it.StarQual == "" {
			for i := range infos {
				addItem(&infos[i])
			}
			continue
		}
		found := false
		for i := range infos {
			if strings.EqualFold(infos[i].alias, it.StarQual) {
				addItem(&infos[i])
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown range variable %q in %s.*", it.StarQual, it.StarQual)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty select list")
	}
	return out, nil
}

func outputName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if r, ok := it.Expr.(*expr.RawRef); ok {
		last := r.Parts[len(r.Parts)-1]
		if !last.HasIndex {
			return last.Name
		}
	}
	return it.Expr.String()
}

// resolveOrderAgainstOutput binds each ORDER BY key against the projected
// output schema (select aliases and column names), falling back to a
// textual match with a select item's source expression.
func resolveOrderAgainstOutput(order []sql.OrderItem, items []selItem, out *expr.Binder) ([]exec.SortKey, error) {
	keys := make([]exec.SortKey, 0, len(order))
	for _, o := range order {
		// Aggregates cannot evaluate row-at-a-time above the projection;
		// they must match a projected select item below instead.
		if be, err := out.Bind(o.E.Clone()); err == nil && !expr.HasAggregate(be) {
			keys = append(keys, exec.SortKey{E: be, Desc: o.Desc})
			continue
		}
		found := false
		for i := range items {
			if strings.EqualFold(o.E.String(), items[i].raw.String()) {
				keys = append(keys, exec.SortKey{
					E:    &expr.ColumnRef{Name: items[i].name, Idx: i},
					Desc: o.Desc,
				})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cannot resolve ORDER BY key %s against the select list", o.E)
		}
	}
	return keys, nil
}

// planAggregate builds the HashAggregate pipeline: group keys, aggregate
// specs, HAVING, and rewrites the output to reference the aggregate's
// output columns.
func (p *Planner) planAggregate(s *sql.Select, tree exec.Operator, items []selItem,
	boundItems []expr.Expr, boundHaving expr.Expr, childBinder *expr.Binder,
) (exec.Operator, []expr.Expr, error) {

	// Bind group expressions against the child.
	groups := make([]expr.Expr, len(s.GroupBy))
	groupStrs := make([]string, len(s.GroupBy))
	for i, g := range s.GroupBy {
		bg, err := childBinder.Bind(g.Clone())
		if err != nil {
			return nil, nil, err
		}
		groups[i] = bg
		groupStrs[i] = bg.String()
	}

	var aggs []exec.AggSpec
	var aggStrs []string
	ensureAgg := func(f *expr.FuncCall) int {
		key := strings.ToUpper(f.String())
		for i, s := range aggStrs {
			if s == key {
				return i
			}
		}
		spec := exec.AggSpec{Name: strings.ToUpper(f.Name), Distinct: f.Distinct}
		if !f.Star {
			spec.Arg = f.Args[0]
		}
		aggs = append(aggs, spec)
		aggStrs = append(aggStrs, key)
		return len(aggs) - 1
	}

	// rewrite maps a bound child-schema expression into the aggregate's
	// output schema.
	var rewrite func(e expr.Expr) (expr.Expr, error)
	rewrite = func(e expr.Expr) (expr.Expr, error) {
		for i, gs := range groupStrs {
			if strings.EqualFold(e.String(), gs) {
				return &expr.ColumnRef{Name: groupColName(i), Idx: i}, nil
			}
		}
		if f, ok := e.(*expr.FuncCall); ok && f.IsAggregate() {
			idx := ensureAgg(f)
			return &expr.ColumnRef{Name: aggColName(idx), Idx: len(groups) + idx}, nil
		}
		switch n := e.(type) {
		case *expr.Literal:
			return n, nil
		case *expr.BinaryExpr:
			l, err := rewrite(n.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(n.R)
			if err != nil {
				return nil, err
			}
			return &expr.BinaryExpr{Op: n.Op, L: l, R: r}, nil
		case *expr.UnaryExpr:
			x, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			return &expr.UnaryExpr{Op: n.Op, E: x}, nil
		case *expr.InExpr:
			x, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			out := &expr.InExpr{E: x, Neg: n.Neg}
			for _, le := range n.List {
				rl, err := rewrite(le)
				if err != nil {
					return nil, err
				}
				out.List = append(out.List, rl)
			}
			return out, nil
		case *expr.IsNullExpr:
			x, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			return &expr.IsNullExpr{E: x, Neg: n.Neg}, nil
		case *expr.CaseExpr:
			out := &expr.CaseExpr{}
			for _, w := range n.Whens {
				c, err := rewrite(w.Cond)
				if err != nil {
					return nil, err
				}
				th, err := rewrite(w.Then)
				if err != nil {
					return nil, err
				}
				out.Whens = append(out.Whens, expr.CaseWhen{Cond: c, Then: th})
			}
			if n.Else != nil {
				el, err := rewrite(n.Else)
				if err != nil {
					return nil, err
				}
				out.Else = el
			}
			return out, nil
		case *expr.FuncCall:
			out := &expr.FuncCall{Name: n.Name, Star: n.Star, Distinct: n.Distinct}
			for _, a := range n.Args {
				ra, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				out.Args = append(out.Args, ra)
			}
			return out, nil
		default:
			return nil, fmt.Errorf("%s must appear in the GROUP BY clause or be used in an aggregate", e)
		}
	}

	newItems := make([]expr.Expr, len(boundItems))
	for i, be := range boundItems {
		ne, err := rewrite(be)
		if err != nil {
			return nil, nil, err
		}
		newItems[i] = ne
	}
	var having expr.Expr
	if boundHaving != nil {
		var err error
		if having, err = rewrite(boundHaving); err != nil {
			return nil, nil, err
		}
	}

	// Aggregate output schema.
	cols := make([]types.Column, 0, len(groups)+len(aggs))
	for i, g := range groups {
		cols = append(cols, types.Column{Name: groupColName(i), Type: inferKind(g, tree.Schema())})
	}
	for i, a := range aggs {
		var k types.Kind
		switch a.Name {
		case "COUNT":
			k = types.KindInt
		case "AVG":
			k = types.KindFloat
		default:
			if a.Arg != nil {
				k = inferKind(a.Arg, tree.Schema())
			}
		}
		cols = append(cols, types.Column{Name: aggColName(i), Type: k})
	}
	out := exec.NewHashAggregate(tree, groups, aggs, types.NewSchema(cols...))
	var top exec.Operator = out
	if having != nil {
		top = exec.NewFilter(top, having)
	}
	return top, newItems, nil
}

func groupColName(i int) string { return fmt.Sprintf("__group%d", i) }
func aggColName(i int) string   { return fmt.Sprintf("__agg%d", i) }

// inferKind derives a best-effort static kind for result-schema display.
func inferKind(e expr.Expr, schema *types.Schema) types.Kind {
	switch n := e.(type) {
	case *expr.Literal:
		return n.Val.Kind
	case *expr.ColumnRef:
		if n.Idx >= 0 && n.Idx < schema.Len() {
			return schema.Columns[n.Idx].Type
		}
	case *expr.PathValueRef:
		return types.KindPath
	case *expr.PathProperty:
		if n.Prop == expr.PropPathString {
			return types.KindString
		}
		return types.KindInt
	case *expr.PathEndpointID:
		return types.KindInt
	case *expr.PathVertexAttr:
		if acc, ok := n.Acc.(*catalog.GraphView); ok {
			if k, ok := acc.VertexAttrKind(n.Attr); ok {
				return k
			}
		}
	case *expr.PathElemAttr:
		if acc, ok := n.Acc.(*catalog.GraphView); ok {
			if n.Elem == expr.ElemVertexes {
				if k, ok := acc.VertexAttrKind(n.Attr); ok {
					return k
				}
			} else if k, ok := acc.EdgeAttrKind(n.Attr); ok {
				return k
			}
		}
	case *expr.BinaryExpr:
		if n.Op.IsComparison() || n.Op == expr.OpAnd || n.Op == expr.OpOr {
			return types.KindBool
		}
		lk, rk := inferKind(n.L, schema), inferKind(n.R, schema)
		if lk == types.KindFloat || rk == types.KindFloat || n.Op == expr.OpDiv {
			if lk == types.KindInt && rk == types.KindInt {
				return types.KindInt
			}
			return types.KindFloat
		}
		return lk
	case *expr.UnaryExpr:
		if n.Op == expr.OpNot {
			return types.KindBool
		}
		return inferKind(n.E, schema)
	case *expr.InExpr:
		return types.KindBool
	case *expr.IsNullExpr:
		return types.KindBool
	case *expr.CaseExpr:
		if len(n.Whens) > 0 {
			return inferKind(n.Whens[0].Then, schema)
		}
	case *expr.FuncCall:
		switch strings.ToUpper(n.Name) {
		case "COUNT", "LENGTH":
			return types.KindInt
		case "AVG", "FLOOR", "CEIL":
			return types.KindFloat
		case "UPPER", "LOWER":
			return types.KindString
		case "SUM", "MIN", "MAX", "ABS", "COALESCE":
			if len(n.Args) > 0 {
				return inferKind(n.Args[0], schema)
			}
		}
	}
	return types.KindString
}
