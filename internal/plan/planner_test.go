package plan

import (
	"strings"
	"testing"

	"grfusion/internal/catalog"
	"grfusion/internal/exec"
	"grfusion/internal/graph"
	"grfusion/internal/sql"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// fixture builds a catalog with Users/Friends tables, a Social graph view
// (chain 1-2-3-4-5 plus chords), and an index on Users.job.
func fixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	users, err := storage.NewTable("Users", types.NewSchema(
		types.Column{Qualifier: "Users", Name: "uid", Type: types.KindInt},
		types.Column{Qualifier: "Users", Name: "name", Type: types.KindString},
		types.Column{Qualifier: "Users", Name: "job", Type: types.KindString},
	), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	friends, err := storage.NewTable("Friends", types.NewSchema(
		types.Column{Qualifier: "Friends", Name: "fid", Type: types.KindInt},
		types.Column{Qualifier: "Friends", Name: "a", Type: types.KindInt},
		types.Column{Qualifier: "Friends", Name: "b", Type: types.KindInt},
		types.Column{Qualifier: "Friends", Name: "w", Type: types.KindFloat},
	), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		users.Insert(types.Row{types.NewInt(i), types.NewString("u"), types.NewString("Lawyer")})
	}
	edges := [][3]int64{{1, 1, 2}, {2, 2, 3}, {3, 3, 4}, {4, 4, 5}, {5, 1, 3}}
	for _, e := range edges {
		friends.Insert(types.Row{types.NewInt(e[0]), types.NewInt(e[1]), types.NewInt(e[2]), types.NewFloat(1)})
	}
	if err := cat.CreateTable(users); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateTable(friends); err != nil {
		t.Fatal(err)
	}
	if _, err := users.CreateIndex("ix_job", []int{2}, false); err != nil {
		t.Fatal(err)
	}
	gv, err := catalog.NewGraphView("Social", false, users, friends,
		[]catalog.AttrMap{{Name: "ID", Source: "uid"}, {Name: "name", Source: "name"}, {Name: "job", Source: "job"}},
		[]catalog.AttrMap{{Name: "ID", Source: "fid"}, {Name: "FROM", Source: "a"},
			{Name: "TO", Source: "b"}, {Name: "w", Source: "w"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterGraphView(gv); err != nil {
		t.Fatal(err)
	}
	return cat
}

func planFor(t *testing.T, cat *catalog.Catalog, opts Options, q string) exec.Operator {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	p := &Planner{Cat: cat, Opts: opts}
	op, err := p.PlanSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return op
}

func planErr(t *testing.T, cat *catalog.Catalog, q string) error {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		return err
	}
	p := &Planner{Cat: cat}
	_, err = p.PlanSelect(stmt.(*sql.Select))
	if err == nil {
		t.Fatalf("plan %q succeeded unexpectedly", q)
	}
	return err
}

// findPathScan digs the PathProbeJoin out of a plan.
func findPathScan(op exec.Operator) *exec.PathProbeJoin {
	if pp, ok := op.(*exec.PathProbeJoin); ok {
		return pp
	}
	for _, c := range op.Children() {
		if pp := findPathScan(c); pp != nil {
			return pp
		}
	}
	return nil
}

func TestLengthInferenceExplicit(t *testing.T) {
	cat := fixture(t)
	cases := []struct {
		where    string
		min, max int
	}{
		{"PS.Length = 2", 2, 2},
		{"PS.Length <= 3", 1, 3},
		{"PS.Length < 3", 1, 2},
		{"PS.Length >= 4", 4, 0},
		{"PS.Length > 2", 3, 0},
		{"PS.Length >= 2 AND PS.Length <= 5", 2, 5},
		{"2 = PS.Length", 2, 2},
		{"3 >= PS.Length", 1, 3},
	}
	for _, c := range cases {
		op := planFor(t, cat, Options{}, "SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND "+c.where)
		pp := findPathScan(op)
		if pp == nil {
			t.Fatalf("%s: no path scan", c.where)
		}
		if pp.Spec.MinLen != c.min || pp.Spec.MaxLen != c.max {
			t.Errorf("%s: len=[%d,%d], want [%d,%d]", c.where, pp.Spec.MinLen, pp.Spec.MaxLen, c.min, c.max)
		}
	}
}

func TestLengthInferenceFromSubscripts(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Edges[2..*].w > 0 AND PS.Length <= 5")
	pp := findPathScan(op)
	// Edges[2..*] requires position 2 to exist: min length 3 (§6.1).
	if pp.Spec.MinLen != 3 {
		t.Errorf("wildcard inference: min=%d, want 3", pp.Spec.MinLen)
	}
	op = planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Edges[1..3].w > 0")
	pp = findPathScan(op)
	if pp.Spec.MinLen != 4 {
		t.Errorf("closed-range inference: min=%d, want 4", pp.Spec.MinLen)
	}
	// Disabled inference keeps the default minimum.
	op = planFor(t, cat, Options{DisableLengthInference: true},
		"SELECT PS FROM Social.Paths PS HINT(ALLPATHS) WHERE PS.StartVertex.Id = 1 AND PS.Edges[2..*].w > 0 AND PS.Length <= 4")
	pp = findPathScan(op)
	if pp.Spec.MinLen != 1 {
		t.Errorf("disabled inference: min=%d, want 1", pp.Spec.MinLen)
	}
}

func TestStartEndBindingsConsumed(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 5")
	pp := findPathScan(op)
	if pp.Spec.StartExpr == nil || pp.Spec.EndExpr == nil {
		t.Fatalf("bindings not extracted: %+v", pp.Spec)
	}
	// With both endpoints bound and visit-once policy, BFS is selected.
	if pp.Spec.Phys != exec.PhysBFS {
		t.Errorf("phys = %v, want BFScan for targeted reachability", pp.Spec.Phys)
	}
}

func TestStartBindingFromOuterRelation(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{}, `
		SELECT PS FROM Users U, Social.Paths PS
		WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`)
	pp := findPathScan(op)
	if pp.Spec.StartExpr == nil {
		t.Fatal("outer-bound start not extracted")
	}
	if !strings.Contains(pp.Spec.StartExpr.String(), "uid") {
		t.Errorf("start expr: %s", pp.Spec.StartExpr)
	}
	// The outer must be a scan of Users (the Figure 6 shape).
	plan := exec.Explain(op)
	if !strings.Contains(plan, "Scan Users") {
		t.Errorf("outer not a Users scan:\n%s", plan)
	}
}

func TestElemFilterPushdown(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Edges[0..*].w > 0.5 AND PS.Length = 2")
	pp := findPathScan(op)
	if len(pp.Spec.EdgeFilters) != 1 {
		t.Fatalf("edge filters: %+v", pp.Spec.EdgeFilters)
	}
	f := pp.Spec.EdgeFilters[0]
	if !f.Rng.Wildcard || f.Rng.Start != 0 || f.Attr != "w" {
		t.Errorf("filter shape: %+v", f)
	}
	// IN-list pushdown.
	op = planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Edges[0..*].w IN (1.0, 2.0) AND PS.Length = 2")
	pp = findPathScan(op)
	if len(pp.Spec.EdgeFilters) != 1 || !pp.Spec.EdgeFilters[0].IsIn {
		t.Fatalf("IN filter not pushed: %+v", pp.Spec.EdgeFilters)
	}
	// Vertex filters land separately.
	op = planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Vertexes[0..*].job = 'Lawyer' AND PS.Length = 2")
	pp = findPathScan(op)
	if len(pp.Spec.VertexFilters) != 1 {
		t.Fatalf("vertex filters: %+v", pp.Spec.VertexFilters)
	}
}

func TestPushdownSemanticForVisitOnce(t *testing.T) {
	cat := fixture(t)
	// Even with DisablePushdown, a VisitGlobal scan must push (semantic).
	op := planFor(t, cat, Options{DisablePushdown: true},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Edges[0..*].w > 0.5 AND PS.Length = 2")
	pp := findPathScan(op)
	if len(pp.Spec.EdgeFilters) != 1 {
		t.Fatalf("visit-once scan did not push semantic filter")
	}
	// An ALLPATHS scan with DisablePushdown leaves the predicate residual.
	op = planFor(t, cat, Options{DisablePushdown: true},
		"SELECT PS FROM Social.Paths PS HINT(ALLPATHS) WHERE PS.StartVertex.Id = 1 AND PS.Edges[0..*].w > 0.5 AND PS.Length = 2")
	pp = findPathScan(op)
	if len(pp.Spec.EdgeFilters) != 0 {
		t.Fatalf("per-path scan pushed despite DisablePushdown: %+v", pp.Spec.EdgeFilters)
	}
	plan := exec.Explain(op)
	if !strings.Contains(plan, "Filter") {
		t.Errorf("residual filter missing:\n%s", plan)
	}
}

func TestAggBoundPushdown(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND SUM(PS.Edges.w) < 3 AND PS.Length <= 4")
	pp := findPathScan(op)
	if len(pp.Spec.AggBounds) != 1 || pp.Spec.AggBounds[0].Agg != "SUM" {
		t.Fatalf("agg bounds: %+v", pp.Spec.AggBounds)
	}
	// Flipped form: 3 > SUM(...).
	op = planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND 3 > SUM(PS.Edges.w) AND PS.Length <= 4")
	pp = findPathScan(op)
	if len(pp.Spec.AggBounds) != 1 {
		t.Fatalf("flipped agg bound not pushed")
	}
	// The bound must ALSO remain as a residual filter (exactness).
	plan := exec.Explain(op)
	if !strings.Contains(plan, "SUM") || !strings.Contains(plan, "Filter") {
		t.Errorf("agg residual missing:\n%s", plan)
	}
}

func TestCycleDetectionSelectsPerPathDFS(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{}, `
		SELECT COUNT(P) FROM Social.Paths P
		WHERE P.Length = 3 AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`)
	pp := findPathScan(op)
	if !pp.Spec.CycleClose {
		t.Fatal("cycle closure not detected")
	}
	if pp.Spec.Policy != graph.VisitPerPath {
		t.Error("cycle pattern must use per-path policy")
	}
	if pp.Spec.Phys != exec.PhysDFS {
		t.Errorf("phys = %v, want DFScan for pattern matching", pp.Spec.Phys)
	}
	if pp.Spec.MinLen != 3 || pp.Spec.MaxLen != 3 {
		t.Errorf("len=[%d,%d]", pp.Spec.MinLen, pp.Spec.MaxLen)
	}
}

func TestShortestPathHint(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{}, `
		SELECT TOP 2 PS FROM Social.Paths PS HINT(SHORTESTPATH(w))
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 5`)
	pp := findPathScan(op)
	if pp.Spec.Phys != exec.PhysSP || pp.Spec.WeightAttr != "w" || pp.Spec.KPaths != 2 {
		t.Fatalf("SP spec: %+v", pp.Spec)
	}
	if err := planErr(t, cat, `SELECT PS FROM Social.Paths PS HINT(SHORTESTPATH(nosuch)) WHERE PS.StartVertex.Id = 1`); err == nil {
		t.Error("bad weight attr accepted")
	}
}

func TestForceTraversalOption(t *testing.T) {
	cat := fixture(t)
	for force, want := range map[string]exec.Phys{"bfs": exec.PhysBFS, "dfs": exec.PhysDFS} {
		op := planFor(t, cat, Options{ForceTraversal: force},
			"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length = 2")
		if pp := findPathScan(op); pp.Spec.Phys != want {
			t.Errorf("force=%s: phys %v", force, pp.Spec.Phys)
		}
	}
	// A hint beats the option.
	op := planFor(t, cat, Options{ForceTraversal: "bfs"},
		"SELECT PS FROM Social.Paths PS HINT(DFS) WHERE PS.StartVertex.Id = 1 AND PS.Length = 2")
	if pp := findPathScan(op); pp.Spec.Phys != exec.PhysDFS {
		t.Errorf("hint overridden by option")
	}
}

func TestMemoryRuleSelectsBFSForTinyFanOut(t *testing.T) {
	// F^L < F·L only for F < some small bound; a chain has F ≈ 1.
	cat := catalog.New()
	vt, _ := storage.NewTable("N", types.NewSchema(
		types.Column{Qualifier: "N", Name: "nid", Type: types.KindInt}), []int{0})
	et, _ := storage.NewTable("E", types.NewSchema(
		types.Column{Qualifier: "E", Name: "eid", Type: types.KindInt},
		types.Column{Qualifier: "E", Name: "a", Type: types.KindInt},
		types.Column{Qualifier: "E", Name: "b", Type: types.KindInt}), []int{0})
	for i := int64(1); i <= 6; i++ {
		vt.Insert(types.Row{types.NewInt(i)})
	}
	for i := int64(1); i < 6; i++ {
		et.Insert(types.Row{types.NewInt(i), types.NewInt(i), types.NewInt(i + 1)})
	}
	cat.CreateTable(vt)
	cat.CreateTable(et)
	gv, err := catalog.NewGraphView("Chain", true, vt, et,
		[]catalog.AttrMap{{Name: "ID", Source: "nid"}},
		[]catalog.AttrMap{{Name: "ID", Source: "eid"}, {Name: "FROM", Source: "a"}, {Name: "TO", Source: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	cat.RegisterGraphView(gv)
	op := planFor(t, cat, Options{},
		"SELECT PS FROM Chain.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length <= 4")
	if pp := findPathScan(op); pp.Spec.Phys != exec.PhysBFS {
		t.Errorf("memory rule: phys %v, want BFS for F<1 fan-out", pp.Spec.Phys)
	}
}

func TestIndexScanSelection(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{}, "SELECT name FROM Users WHERE job = 'Lawyer'")
	if !strings.Contains(exec.Explain(op), "IndexScan") {
		t.Errorf("index not chosen:\n%s", exec.Explain(op))
	}
	// No index on name: sequential scan.
	op = planFor(t, cat, Options{}, "SELECT job FROM Users WHERE name = 'u'")
	if strings.Contains(exec.Explain(op), "IndexScan") {
		t.Errorf("phantom index:\n%s", exec.Explain(op))
	}
}

func TestHashJoinVsNestedLoop(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{},
		"SELECT * FROM Users U, Friends F WHERE U.uid = F.a")
	if !strings.Contains(exec.Explain(op), "HashJoin") {
		t.Errorf("equi-join not hashed:\n%s", exec.Explain(op))
	}
	op = planFor(t, cat, Options{},
		"SELECT * FROM Users U, Friends F WHERE U.uid < F.a")
	if !strings.Contains(exec.Explain(op), "NestedLoopJoin") {
		t.Errorf("theta join not NLJ:\n%s", exec.Explain(op))
	}
}

func TestMaterializeJoinsOption(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{MaterializeJoins: true},
		"SELECT * FROM Users U, Friends F WHERE U.uid = F.a")
	if !strings.Contains(exec.Explain(op), "Materialize") {
		t.Errorf("no temp-table barrier:\n%s", exec.Explain(op))
	}
}

func TestPlanErrors(t *testing.T) {
	cat := fixture(t)
	for _, q := range []string{
		"SELECT * FROM Ghost",
		"SELECT * FROM Users U, Users U", // duplicate alias
		"SELECT ghost FROM Users",
		"SELECT U.name FROM Users U GROUP BY U.job", // non-grouped column
		"SELECT PS.Edges[0..*].w FROM Social.Paths PS WHERE PS.StartVertex.Id = 1", // quantified outside predicate
	} {
		planErr(t, cat, q)
	}
}

func TestContradictoryLengthWindowIsEmpty(t *testing.T) {
	cat := fixture(t)
	op := planFor(t, cat, Options{},
		"SELECT PS FROM Social.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length = 2 AND PS.Edges[3..*].w > 0")
	pp := findPathScan(op)
	if pp.Spec.MaxLen >= pp.Spec.MinLen {
		t.Errorf("contradiction not detected: len=[%d,%d]", pp.Spec.MinLen, pp.Spec.MaxLen)
	}
}
