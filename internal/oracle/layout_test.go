package oracle

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
	"grfusion/internal/plan"
)

// layoutMetric reads one metrics-snapshot entry by name (-1 when absent).
func layoutMetric(eng *core.Engine, name string) int64 {
	for _, kv := range eng.MetricsSnapshot() {
		if kv.Name == name {
			return kv.Value
		}
	}
	return -1
}

// layoutQueries is the per-batch probe battery for the layout differential.
// Every query has a finite, fully-materialized answer so the two engines'
// result sets can be compared byte-for-byte (sorted: parallel multi-source
// scans do not pin a global emission order).
func (sc *scenario) layoutQueries(rng *rand.Rand, st *datagen.GraphState) []string {
	verts := st.VertexIDs()
	if len(verts) == 0 {
		return nil
	}
	pick := func() int64 { return verts[rng.Intn(len(verts))] }
	src, dst := pick(), pick()
	selPct := 10 + rng.Intn(85)
	k := 1 + rng.Intn(3)
	qs := []string{
		fmt.Sprintf("SELECT PS.PathString FROM %s.Paths PS WHERE PS.StartVertex.Id = %d AND PS.Length <= %d",
			sc.gv, src, k+1),
		fmt.Sprintf("SELECT PS.PathString FROM %s.Paths PS WHERE PS.StartVertex.Id = %d AND PS.Length <= %d AND PS.Edges[0..*].sel < %d",
			sc.gv, dst, k+2, selPct),
		fmt.Sprintf("SELECT PS.PathString, PS.Length FROM %s.Paths PS WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d AND PS.Length <= 4",
			sc.gv, src, dst),
		fmt.Sprintf("SELECT TOP 1 SUM(PS.Edges.w) FROM %s.Paths PS HINT(SHORTESTPATH(w)) WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d",
			sc.gv, src, dst),
		fmt.Sprintf("SELECT COUNT(*) FROM %s.Paths PS HINT(BFS) WHERE PS.Length <= %d", sc.gv, k),
		fmt.Sprintf("SELECT COUNT(*) FROM %s.Paths PS HINT(DFS) WHERE PS.Length <= %d AND PS.Edges[0..*].sel < %d",
			sc.gv, k, selPct),
	}
	if !sc.directed {
		qs = append(qs, fmt.Sprintf(
			"SELECT COUNT(P) FROM %s.Paths P WHERE P.Length = 3 AND P.Edges[0..*].sel < %d AND P.Edges[2].EndVertex = P.Edges[0].StartVertex",
			sc.gv, selPct))
	}
	return qs
}

// TestLayoutDifferential is the CSR acceptance oracle: the same randomized
// scenarios, the same DML history, one engine pinned to the pointer kernels
// and one pinned to the CSR kernels — every query answer must be
// byte-identical after every batch. Because the layout is forced, the CSR
// engine exercises snapshot rebuilds after each mutation batch, so any
// stale-snapshot read shows up as a differential divergence.
func TestLayoutDifferential(t *testing.T) {
	cfg := Config{Seed: 777, Workers: 2}.defaults()
	for round := 0; round < 8; round++ {
		roundSeed := RoundSeed(cfg.Seed, round)
		sc := buildScenario(cfg, roundSeed)

		engPtr, err := sc.newEngine()
		if err != nil {
			t.Fatalf("round %d: ptr engine: %v", round, err)
		}
		engCSR, err := sc.newEngine()
		if err != nil {
			t.Fatalf("round %d: csr engine: %v", round, err)
		}
		engPtr.SetPlanOptions(plan.Options{ForceLayout: "ptr"})
		engCSR.SetPlanOptions(plan.Options{ForceLayout: "csr"})

		st := datagen.NewGraphState(sc.initial)
		opRNG := rand.New(rand.NewSource(roundSeed + 1))

		compare := func(batch int) {
			t.Helper()
			qRNG := rand.New(rand.NewSource(checkSeed(roundSeed, batch)))
			for _, q := range sc.layoutQueries(qRNG, st) {
				resP, errP := engPtr.Execute(q)
				resC, errC := engCSR.Execute(q)
				if (errP == nil) != (errC == nil) {
					t.Fatalf("round %d batch %d: error divergence on %q: ptr=%v csr=%v",
						round, batch, q, errP, errC)
				}
				if errP != nil {
					continue
				}
				gotP, gotC := renderRows(resP, true), renderRows(resC, true)
				if !sameRows(gotP, gotC) {
					t.Fatalf("round %d batch %d: layout divergence on %q:\n ptr: %v\n csr: %v",
						round, batch, q, gotP, gotC)
				}
			}
		}

		compare(0)
		for b := 1; b <= sc.batches; b++ {
			for j := 0; j < sc.opsPerBatch; j++ {
				m := st.Mutate(opRNG)
				q := sc.mutationSQL(m)
				_, errP := engPtr.Execute(q)
				_, errC := engCSR.Execute(q)
				if (errP == nil) != (errC == nil) {
					t.Fatalf("round %d batch %d: DML divergence on %q: ptr=%v csr=%v",
						round, b, q, errP, errC)
				}
				if errP == nil {
					st.Apply(m)
				}
			}
			compare(b)
		}

		// Prove the forced layouts actually routed the scans: the CSR engine
		// must have built snapshots, the pointer engine must never have.
		bKey := "graphview." + sc.gv + ".csr_builds"
		if n := layoutMetric(engCSR, bKey); n <= 0 {
			t.Errorf("round %d: csr engine reports %d CSR builds, want > 0", round, n)
		}
		if n := layoutMetric(engPtr, bKey); n != 0 {
			t.Errorf("round %d: ptr engine reports %d CSR builds, want 0", round, n)
		}
		// Post-DML freshness accounting: each batch invalidated the snapshot,
		// so misses must be at least the number of mutation batches that ran
		// path queries against a changed topology.
		if n := layoutMetric(engCSR, "graphview."+sc.gv+".csr_misses"); n <= 0 {
			t.Errorf("round %d: csr engine reports %d CSR misses, want > 0", round, n)
		}
	}
}

// TestLayoutExplain pins the plan surface: a forced layout must be visible
// in EXPLAIN output so experiment ablations can verify which kernels ran.
func TestLayoutExplain(t *testing.T) {
	cfg := Config{Seed: 31, Workers: 1}.defaults()
	sc := buildScenario(cfg, RoundSeed(cfg.Seed, 0))
	eng, err := sc.newEngine()
	if err != nil {
		t.Fatal(err)
	}
	q := fmt.Sprintf("EXPLAIN SELECT PS.PathString FROM %s.Paths PS WHERE PS.StartVertex.Id = 0 AND PS.Length <= 2", sc.gv)
	for _, tc := range []struct{ force, want string }{
		{"ptr", "layout=ptr"},
		{"csr", "layout=csr"},
	} {
		eng.SetPlanOptions(plan.Options{ForceLayout: tc.force})
		res, err := eng.Execute(q)
		if err != nil {
			t.Fatalf("force=%s: %v", tc.force, err)
		}
		var plan strings.Builder
		for _, row := range res.Rows {
			plan.WriteString(row[0].String())
			plan.WriteByte('\n')
		}
		if !strings.Contains(plan.String(), tc.want) {
			t.Errorf("force=%s: EXPLAIN missing %q:\n%s", tc.force, tc.want, plan.String())
		}
	}
}
