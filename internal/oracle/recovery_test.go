package oracle

import (
	"strings"
	"testing"

	"grfusion/internal/wal"
)

// TestRecoveryCleanRun: a bounded crash-recovery differential run over the
// real engine — every DML batch followed by a kill and a recovery — must
// come back violation-free.
func TestRecoveryCleanRun(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	rep, err := RunRecovery(Config{Seed: 42, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("unexpected violation: %s", v)
	}
	if rep.Rounds != rounds {
		t.Errorf("ran %d rounds, want %d", rep.Rounds, rounds)
	}
	if rep.Batches == 0 {
		t.Errorf("no kill/recover cycles ran: %+v", rep)
	}
}

// TestRecoveryCatchesLostRecord proves the recovery oracle has teeth:
// with the WAL reader deliberately dropping the final logged record (one
// durably logged statement silently lost), a recovery violation must
// surface within a bounded run and carry a replayable seed.
func TestRecoveryCatchesLostRecord(t *testing.T) {
	wal.DebugDropTailRecord = true
	defer func() { wal.DebugDropTailRecord = false }()

	rep, err := RunRecovery(Config{Seed: 42, Rounds: 10, NoMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("lost WAL record not caught in 10 rounds")
	}
	v := rep.Violations[0]
	if !strings.HasPrefix(v.Check, "recovery-") {
		t.Errorf("expected a recovery-* violation, got %q: %s", v.Check, v.Detail)
	}
	if v.Seed == 0 || len(v.SetupSQL) == 0 {
		t.Errorf("violation not replayable: seed=%d setup=%d stmts", v.Seed, len(v.SetupSQL))
	}

	// Replayability: re-running just the failing round from its seed finds
	// a recovery violation again (the same cadence rederives from the
	// seed, so the lost record strikes the same place).
	rep2, err := RunRecovery(Config{Seed: v.Seed, Rounds: 1, NoMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Violations) == 0 {
		t.Fatalf("seed %d did not reproduce the violation", v.Seed)
	}
	if got := rep2.Violations[0].Check; !strings.HasPrefix(got, "recovery-") {
		t.Errorf("replay found %q, want a recovery-* family", got)
	}
}

// TestRecoveryMinimization: with the lost-record bug injected, ddmin over
// a failing round must shrink the statement log (or return nil when the
// failure needs no workload statements at all, i.e. the initial load
// already trips it).
func TestRecoveryMinimization(t *testing.T) {
	wal.DebugDropTailRecord = true
	defer func() { wal.DebugDropTailRecord = false }()

	rep, err := RunRecovery(Config{Seed: 42, Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("lost WAL record not caught in 10 rounds")
	}
	v := rep.Violations[0]
	if len(v.Minimized) > len(v.Statements) {
		t.Errorf("minimized log (%d) larger than original (%d)", len(v.Minimized), len(v.Statements))
	}
}

// TestDurOptsDeterminism: the durability cadence must be a pure function
// of the round seed — replay and minimization depend on it.
func TestDurOptsDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42, 1000003} {
		a, b := durOptsFor(seed), durOptsFor(seed)
		if a != b {
			t.Errorf("seed %d: cadence not deterministic: %s vs %s", seed, a, b)
		}
	}
	if durOptsFor(1) == durOptsFor(2) && durOptsFor(2) == durOptsFor(3) && durOptsFor(3) == durOptsFor(4) && durOptsFor(4) == durOptsFor(5) {
		t.Error("cadence does not vary across seeds")
	}
}
