package oracle

import (
	"strings"
	"testing"

	"grfusion/internal/catalog"
)

// TestCleanRun is the harness's own health check: a bounded randomized run
// over the real engine must come back violation-free.
func TestCleanRun(t *testing.T) {
	rep, err := Run(Config{Seed: 42, Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("unexpected violation: %s", v)
	}
	if rep.Rounds != 25 {
		t.Errorf("ran %d rounds, want 25", rep.Rounds)
	}
	if rep.Statements == 0 || rep.Batches == 0 {
		t.Errorf("no work done: %+v", rep)
	}
}

// TestCatchesInjectedMaintenanceBug proves the oracle has teeth: with the
// §3.3 edge-delete maintenance path deliberately broken, a violation must
// surface within one bounded run, carry a replayable seed, and minimize to
// a smaller statement log.
func TestCatchesInjectedMaintenanceBug(t *testing.T) {
	catalog.DebugSkipEdgeDelete = true
	defer func() { catalog.DebugSkipEdgeDelete = false }()

	rep, err := Run(Config{Seed: 42, Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("injected maintenance bug not caught in 10 rounds")
	}
	v := rep.Violations[0]
	if !strings.HasPrefix(v.Check, "maintenance") {
		t.Errorf("expected a maintenance violation, got %q: %s", v.Check, v.Detail)
	}
	if v.Seed == 0 || len(v.SetupSQL) == 0 {
		t.Errorf("violation not replayable: seed=%d setup=%d stmts", v.Seed, len(v.SetupSQL))
	}
	if len(v.Statements) == 0 {
		t.Error("violation has no statement log")
	}
	if len(v.Minimized) == 0 {
		t.Error("minimization produced nothing though the bug is deterministic")
	}
	if len(v.Minimized) > len(v.Statements) {
		t.Errorf("minimized log (%d) larger than original (%d)", len(v.Minimized), len(v.Statements))
	}
	// The broken path is edge deletion: the minimized log must still
	// contain a statement that removes an edge (DELETE on the edge table or
	// a cascading vertex DELETE).
	anyDelete := false
	for _, s := range v.Minimized {
		if strings.HasPrefix(s, "DELETE") {
			anyDelete = true
		}
	}
	if !anyDelete {
		t.Errorf("minimized log has no DELETE statement: %v", v.Minimized)
	}

	// Replayability: re-running just the failing round from its seed finds
	// the same check family again.
	rep2, err := Run(Config{Seed: v.Seed, Rounds: 1, NoMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Violations) == 0 {
		t.Fatalf("seed %d did not reproduce the violation", v.Seed)
	}
	if got := rep2.Violations[0].Check; got != v.Check {
		t.Errorf("replay found %q, original was %q", got, v.Check)
	}
}

// TestDurationMode exercises the wall-clock bound used by CI.
func TestDurationMode(t *testing.T) {
	rep, err := Run(Config{Seed: 7, Duration: 300e6}) // 300ms
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds == 0 {
		t.Error("duration mode ran zero rounds")
	}
	for _, v := range rep.Violations {
		t.Errorf("unexpected violation: %s", v)
	}
}

// TestRoundSeedSpacing pins the published seed derivation: round seeds must
// match what the repro command prints.
func TestRoundSeedSpacing(t *testing.T) {
	if RoundSeed(42, 0) != 42 {
		t.Error("round 0 must run with the base seed")
	}
	if RoundSeed(42, 3) != 42+3*1000003 {
		t.Error("round seed derivation changed; repro commands in old failure logs break")
	}
}

// TestScenarioDeterminism: the same seed must build an identical scenario —
// the whole replay story rests on it.
func TestScenarioDeterminism(t *testing.T) {
	cfg := Config{Workers: 2}
	a := buildScenario(cfg, 12345)
	b := buildScenario(cfg, 12345)
	as, bsql := a.setupSQL(), b.setupSQL()
	if len(as) != len(bsql) {
		t.Fatalf("setup lengths differ: %d vs %d", len(as), len(bsql))
	}
	for i := range as {
		if as[i] != bsql[i] {
			t.Fatalf("setup statement %d differs:\n%s\n%s", i, as[i], bsql[i])
		}
	}
	if c := buildScenario(cfg, 54321); strings.Join(c.setupSQL(), ";") == strings.Join(as, ";") {
		t.Error("different seeds produced identical scenarios")
	}
}
