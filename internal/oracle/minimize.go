package oracle

import (
	"math/rand"
)

// Statement minimization: ddmin over the recorded op list. The predicate
// replays a candidate subset from a fresh engine and asks whether the same
// check family still fails. Replay is well-defined on any subset because
// each statement's effect on the model is decided by whether the ENGINE
// accepted it during that replay, not by what happened during recording.

// maxPredicateRuns bounds minimization work; workloads are ≲60 statements,
// so ddmin converges far below this in practice.
const maxPredicateRuns = 300

// minimizeOps returns a 1-minimal subsequence of ops that still triggers
// the violation's check family (nil when even the full log no longer
// reproduces, e.g. a nondeterministic failure).
func minimizeOps(sc *scenario, ops []op, v *Violation) []string {
	pred := predicateFor(sc, v)
	runs := 0
	reproduces := func(kept []op) bool {
		if runs >= maxPredicateRuns {
			return false
		}
		runs++
		return pred(kept)
	}
	if !reproduces(ops) {
		return nil
	}
	kept := ddmin(ops, reproduces)
	return opSQL(kept)
}

// predicateFor builds the "does this subset still fail the same way?"
// test. Statement-level violations (error-atomicity, unexpected-error) are
// judged on the final statement's accept/reject behavior; check-battery
// violations re-run the battery with the original batch's sampling seed.
func predicateFor(sc *scenario, v *Violation) func([]op) bool {
	switch v.Check {
	case "error-atomicity":
		// The offending statement was accepted though invalid; it must stay
		// last in every candidate (ddmin subsets preserve order, and
		// candidates not containing it cannot reproduce).
		return func(kept []op) bool {
			if len(kept) == 0 || !kept[len(kept)-1].m.WantErr {
				return false
			}
			rs, ok := replayOps(sc, kept)
			return ok && rs.lastErr == nil
		}
	case "unexpected-error":
		return func(kept []op) bool {
			if len(kept) == 0 || kept[len(kept)-1].m.WantErr {
				return false
			}
			rs, ok := replayOps(sc, kept)
			return ok && rs.lastErr != nil
		}
	default:
		seed := checkSeed(v.Seed, v.Batch)
		batch := v.Batch
		check := v.Check
		return func(kept []op) bool {
			rs, ok := replayOps(sc, kept)
			if !ok {
				return false
			}
			got := sc.checkBatch(rs.eng, rs.st, rand.New(rand.NewSource(seed)), batch)
			return got != nil && got.Check == check
		}
	}
}

// ddmin is Zeller's delta-debugging minimization: split the kept list into
// n chunks, try each chunk and each complement, recurse on success,
// otherwise double the granularity until it exceeds the list length. The
// result is 1-minimal (no single chunk at final granularity removable).
func ddmin(ops []op, reproduces func([]op) bool) []op {
	kept := ops
	n := 2
	for len(kept) >= 2 {
		chunks := split(kept, n)
		reduced := false
		for _, try := range candidates(kept, chunks) {
			if reproduces(try) {
				kept = try
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(kept) {
				break
			}
			n = min(n*2, len(kept))
		}
	}
	return kept
}

// candidates yields each chunk, then each complement-of-chunk.
func candidates(kept []op, chunks [][]op) [][]op {
	var out [][]op
	for _, c := range chunks {
		out = append(out, c)
	}
	for i := range chunks {
		var comp []op
		for j, c := range chunks {
			if j != i {
				comp = append(comp, c...)
			}
		}
		out = append(out, comp)
	}
	return out
}

func split(ops []op, n int) [][]op {
	if n > len(ops) {
		n = len(ops)
	}
	out := make([][]op, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(ops)/n, (i+1)*len(ops)/n
		out = append(out, ops[lo:hi])
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
