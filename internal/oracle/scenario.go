package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
)

// A scenario is one randomized database: a schema (random table, view, and
// column names, shuffled column order, optional decoy columns and
// secondary index), an initial graph drawn from one of the generator
// families, and the workload shape. Scenario generation is a pure function
// of its seed, so a failing round replays from `-seed <roundSeed> -rounds 1`.
type scenario struct {
	seed     int64
	directed bool

	vt, et, gv string // vertex table, edge table, graph view names

	// vCols/eCols map logical column roles to physical column names. The
	// exposed graph-view attribute names are fixed (name, w, sel, lbl) so
	// the check queries are schema-independent; what varies is the
	// relational layer underneath.
	vCols, eCols   map[string]string
	vOrder, eOrder []string // logical roles in physical declaration order

	indexOn string // "", "src", or "sel": optional secondary index on et

	workers     int // engine worker-pool size (the round's default)
	batches     int
	opsPerBatch int

	initial *datagen.Dataset
}

var (
	vtNames  = []string{"V", "Nodes", "Person", "Vert"}
	etNames  = []string{"E", "Links", "Knows", "Edg"}
	gvNames  = []string{"G", "Net", "Gr", "Soc"}
	vidNames = []string{"vid", "id", "nid"}
	vnmNames = []string{"vname", "tag", "title"}
	eidNames = []string{"eid", "id", "rid"}
	srcNames = []string{"src", "a", "head"}
	dstNames = []string{"dst", "b", "tail"}
	wNames   = []string{"w", "cost", "dist"}
	selNames = []string{"sel", "s", "pct"}
	lblNames = []string{"lbl", "kind", "cat"}
)

// buildScenario derives a scenario from a round seed. Every rng draw below
// happens unconditionally and in a fixed order, so generation is identical
// between the recording run and minimization replays.
func buildScenario(cfg Config, roundSeed int64) *scenario {
	rng := rand.New(rand.NewSource(roundSeed))
	sc := &scenario{seed: roundSeed}

	i := rng.Intn(len(vtNames))
	sc.vt, sc.et, sc.gv = vtNames[i], etNames[i], gvNames[rng.Intn(len(gvNames))]

	sc.vCols = map[string]string{
		"vid":  vidNames[rng.Intn(len(vidNames))],
		"name": vnmNames[rng.Intn(len(vnmNames))],
	}
	sc.eCols = map[string]string{
		"eid": eidNames[rng.Intn(len(eidNames))],
		"src": srcNames[rng.Intn(len(srcNames))],
		"dst": dstNames[rng.Intn(len(dstNames))],
		"w":   wNames[rng.Intn(len(wNames))],
		"sel": selNames[rng.Intn(len(selNames))],
		"lbl": lblNames[rng.Intn(len(lblNames))],
	}
	sc.vOrder = []string{"vid", "name"}
	if rng.Intn(2) == 0 { // decoy column the view does not map
		sc.vCols["pad"] = "pad_v"
		sc.vOrder = append(sc.vOrder, "pad")
	}
	rng.Shuffle(len(sc.vOrder), func(a, b int) { sc.vOrder[a], sc.vOrder[b] = sc.vOrder[b], sc.vOrder[a] })
	sc.eOrder = []string{"eid", "src", "dst", "w", "sel", "lbl"}
	if rng.Intn(2) == 0 {
		sc.eCols["pad"] = "pad_e"
		sc.eOrder = append(sc.eOrder, "pad")
	}
	rng.Shuffle(len(sc.eOrder), func(a, b int) { sc.eOrder[a], sc.eOrder[b] = sc.eOrder[b], sc.eOrder[a] })

	switch rng.Intn(3) {
	case 0:
		sc.indexOn = "src"
	case 1:
		sc.indexOn = "sel"
	}

	sc.workers = cfg.Workers
	sc.batches = 3
	sc.opsPerBatch = 10 + rng.Intn(8)

	// Initial graph: uniform-random most of the time for maximal shape
	// variety, the structured generator families occasionally.
	kind := rng.Intn(6)
	n := 10 + rng.Intn(22)
	m := n + rng.Intn(2*n)
	gseed := rng.Int63()
	switch kind {
	case 0:
		sc.initial = datagen.Road(3+rng.Intn(3), 3+rng.Intn(3), gseed)
	case 1:
		sc.initial = datagen.DBLP(2+rng.Intn(2), 4+rng.Intn(3), gseed)
	case 2:
		sc.initial = datagen.Twitter(n, 2, gseed)
	default:
		sc.initial = datagen.Uniform(n, m, rng.Intn(2) == 0, gseed)
	}
	sc.directed = sc.initial.Directed
	// Integer-valued weights keep cross-engine cost comparisons exact.
	for i := range sc.initial.Edges {
		sc.initial.Edges[i].Weight = float64(1 + rng.Intn(9))
	}
	return sc
}

// padValue is the literal stored in decoy columns.
func padValue(role string) string {
	if role == "pad_e" {
		return "'x'"
	}
	return "0"
}

// vertexValues renders one vertex tuple in physical column order.
func (sc *scenario) vertexValues(v datagen.Vertex) string {
	parts := make([]string, len(sc.vOrder))
	for i, role := range sc.vOrder {
		switch role {
		case "vid":
			parts[i] = fmt.Sprintf("%d", v.ID)
		case "name":
			parts[i] = fmt.Sprintf("'%s'", v.Name)
		default:
			parts[i] = padValue(sc.vCols[role])
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// edgeValues renders one edge tuple in physical column order.
func (sc *scenario) edgeValues(e datagen.Edge) string {
	parts := make([]string, len(sc.eOrder))
	for i, role := range sc.eOrder {
		switch role {
		case "eid":
			parts[i] = fmt.Sprintf("%d", e.ID)
		case "src":
			parts[i] = fmt.Sprintf("%d", e.Src)
		case "dst":
			parts[i] = fmt.Sprintf("%d", e.Dst)
		case "w":
			parts[i] = fmt.Sprintf("%g", e.Weight)
		case "sel":
			parts[i] = fmt.Sprintf("%d", e.Sel)
		case "lbl":
			parts[i] = fmt.Sprintf("'%s'", e.Label)
		default:
			parts[i] = padValue(sc.eCols[role])
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// setupSQL renders the schema DDL and the initial bulk load.
func (sc *scenario) setupSQL() []string {
	var stmts []string

	colDef := func(role, phys string) string {
		switch role {
		case "vid", "eid":
			return phys + " BIGINT PRIMARY KEY"
		case "src", "dst", "sel":
			return phys + " BIGINT"
		case "w":
			return phys + " DOUBLE"
		case "name", "lbl":
			return phys + " VARCHAR"
		default:
			if phys == "pad_e" {
				return phys + " VARCHAR"
			}
			return phys + " BIGINT"
		}
	}
	var vdefs []string
	for _, role := range sc.vOrder {
		vdefs = append(vdefs, colDef(role, sc.vCols[role]))
	}
	stmts = append(stmts, fmt.Sprintf("CREATE TABLE %s (%s)", sc.vt, strings.Join(vdefs, ", ")))
	var edefs []string
	for _, role := range sc.eOrder {
		edefs = append(edefs, colDef(role, sc.eCols[role]))
	}
	stmts = append(stmts, fmt.Sprintf("CREATE TABLE %s (%s)", sc.et, strings.Join(edefs, ", ")))
	if sc.indexOn != "" {
		stmts = append(stmts, fmt.Sprintf("CREATE INDEX ix_%s ON %s (%s)",
			sc.eCols[sc.indexOn], sc.et, sc.eCols[sc.indexOn]))
	}

	const batch = 128
	for i := 0; i < len(sc.initial.Vertices); i += batch {
		var vals []string
		for j := i; j < i+batch && j < len(sc.initial.Vertices); j++ {
			vals = append(vals, sc.vertexValues(sc.initial.Vertices[j]))
		}
		stmts = append(stmts, fmt.Sprintf("INSERT INTO %s VALUES %s", sc.vt, strings.Join(vals, ", ")))
	}
	for i := 0; i < len(sc.initial.Edges); i += batch {
		var vals []string
		for j := i; j < i+batch && j < len(sc.initial.Edges); j++ {
			vals = append(vals, sc.edgeValues(sc.initial.Edges[j]))
		}
		stmts = append(stmts, fmt.Sprintf("INSERT INTO %s VALUES %s", sc.et, strings.Join(vals, ", ")))
	}

	dir := "DIRECTED"
	if !sc.directed {
		dir = "UNDIRECTED"
	}
	stmts = append(stmts, fmt.Sprintf(
		"CREATE %s GRAPH VIEW %s VERTEXES(ID = %s, name = %s) FROM %s "+
			"EDGES(ID = %s, FROM = %s, TO = %s, w = %s, sel = %s, lbl = %s) FROM %s",
		dir, sc.gv, sc.vCols["vid"], sc.vCols["name"], sc.vt,
		sc.eCols["eid"], sc.eCols["src"], sc.eCols["dst"],
		sc.eCols["w"], sc.eCols["sel"], sc.eCols["lbl"], sc.et))
	return stmts
}

// newEngine builds a fresh engine loaded with the scenario schema and
// initial graph.
func (sc *scenario) newEngine() (*core.Engine, error) {
	eng := core.New(core.Options{Workers: sc.workers})
	for _, q := range sc.setupSQL() {
		if _, err := eng.Execute(q); err != nil {
			return nil, fmt.Errorf("setup %q: %v", firstLine(q), err)
		}
	}
	return eng, nil
}

// mutationSQL renders a mutation against the scenario schema.
func (sc *scenario) mutationSQL(m datagen.Mutation) string {
	switch m.Kind {
	case datagen.MutInsertVertex:
		return fmt.Sprintf("INSERT INTO %s VALUES %s", sc.vt, sc.vertexValues(m.V))
	case datagen.MutInsertEdge:
		return fmt.Sprintf("INSERT INTO %s VALUES %s", sc.et, sc.edgeValues(m.E))
	case datagen.MutDeleteVertex:
		return fmt.Sprintf("DELETE FROM %s WHERE %s = %d", sc.vt, sc.vCols["vid"], m.V.ID)
	case datagen.MutDeleteEdge:
		return fmt.Sprintf("DELETE FROM %s WHERE %s = %d", sc.et, sc.eCols["eid"], m.E.ID)
	case datagen.MutRewireEdge:
		return fmt.Sprintf("UPDATE %s SET %s = %d, %s = %d WHERE %s = %d",
			sc.et, sc.eCols["src"], m.E.Src, sc.eCols["dst"], m.E.Dst, sc.eCols["eid"], m.E.ID)
	case datagen.MutEdgeAttr:
		return fmt.Sprintf("UPDATE %s SET %s = %d, %s = %g WHERE %s = %d",
			sc.et, sc.eCols["sel"], m.E.Sel, sc.eCols["w"], m.E.Weight, sc.eCols["eid"], m.E.ID)
	case datagen.MutRenameVertex:
		return fmt.Sprintf("UPDATE %s SET %s = %d WHERE %s = %d",
			sc.vt, sc.vCols["vid"], m.NewID, sc.vCols["vid"], m.OldID)
	case datagen.MutRenameEdge:
		return fmt.Sprintf("UPDATE %s SET %s = %d WHERE %s = %d",
			sc.et, sc.eCols["eid"], m.NewID, sc.eCols["eid"], m.OldID)
	default:
		panic(fmt.Sprintf("oracle: unknown mutation kind %v", m.Kind))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
