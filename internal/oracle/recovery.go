package oracle

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
	"grfusion/internal/wal"
)

// Crash-recovery differential: every round runs its scenario on a DURABLE
// engine in a throwaway WAL directory. After the initial bulk load and
// after every DML batch the engine is killed — the WAL file descriptor is
// dropped with no sync and no checkpoint, exactly what a crashed process
// leaves behind — and reopened with full recovery (checkpoint restore +
// WAL replay + graph-view rebuild). The state checks then run against the
// RECOVERED engine: the §3.3 maintenance oracle (live topology == rebuild
// == ground-truth model), relational row counts, and the tuple-pointer
// facet projections. The workload continues on the recovered engine, so
// recovery round-trips compose within a round and each replay runs on top
// of the previous recovery's output.
//
// Durability knobs (fsync policy, automatic checkpoint cadence, explicit
// mid-round checkpoints) derive deterministically from the round seed, so
// every failure replays — and ddmin-minimizes — under the exact cadence
// that produced it.

// durOpts is one round's durability configuration.
type durOpts struct {
	fsync wal.FsyncPolicy
	every int  // automatic checkpoint threshold (-1 = never)
	ckpt  bool // explicit checkpoint right before each kill
}

func (o durOpts) String() string {
	return fmt.Sprintf("fsync=%s checkpoint_every=%d explicit_ckpt=%v", o.fsync, o.every, o.ckpt)
}

// durOptsFor derives a round's durability knobs from its seed. The rng
// stream is independent of scenario generation and of the workload, so
// adding recovery coverage cannot shift any existing seed's scenario.
func durOptsFor(roundSeed int64) durOpts {
	rng := rand.New(rand.NewSource(roundSeed ^ 0x44C0FFEE))
	var o durOpts
	switch rng.Intn(4) {
	case 0:
		o.fsync = wal.FsyncAlways
	case 1:
		o.fsync = wal.FsyncInterval
	default:
		o.fsync = wal.FsyncOff // in-process kills keep unsynced writes, like a process crash
	}
	switch rng.Intn(3) {
	case 0:
		o.every = -1 // recovery replays the whole history
	case 1:
		o.every = 2 + rng.Intn(6) // checkpoints interleave with the workload
	default:
		o.every = 0 // engine default: one long tail
	}
	o.ckpt = rng.Intn(4) == 0
	return o
}

func (sc *scenario) openDurable(dir string, o durOpts) (*core.Engine, *core.RecoveryInfo, error) {
	opts := core.Options{Workers: sc.workers}
	opts.Durability = core.Durability{Dir: dir, Fsync: o.fsync, CheckpointEvery: o.every}
	return core.Open(opts)
}

// newDurableEngine opens a fresh durable engine in dir and loads the
// scenario schema and initial graph.
func (sc *scenario) newDurableEngine(dir string, o durOpts) (*core.Engine, error) {
	eng, _, err := sc.openDurable(dir, o)
	if err != nil {
		return nil, err
	}
	for _, q := range sc.setupSQL() {
		if _, err := eng.Execute(q); err != nil {
			eng.Close()
			return nil, fmt.Errorf("setup %q: %v", firstLine(q), err)
		}
	}
	return eng, nil
}

// killRecover simulates the crash/restart cycle: kill the engine (no
// sync, no checkpoint), recover a new one from the directory.
func (sc *scenario) killRecover(eng *core.Engine, dir string, o durOpts) (*core.Engine, *core.RecoveryInfo, error) {
	if o.ckpt {
		if err := eng.Checkpoint(); err != nil {
			return nil, nil, fmt.Errorf("checkpoint before kill: %v", err)
		}
	}
	eng.Kill()
	return sc.openDurable(dir, o)
}

// checkRecovered runs the state battery against a just-recovered engine.
// Check families carry a "recovery-" prefix so a failure is attributable
// to the crash/recover cycle rather than to live maintenance.
func (sc *scenario) checkRecovered(eng *core.Engine, info *core.RecoveryInfo, st *datagen.GraphState) *Violation {
	// The WAL only ever holds statements that applied successfully (failed
	// statements are rolled back out of the log), so a deterministic
	// engine must replay every record cleanly.
	if info.ReplayErrors > 0 {
		return violationf("recovery-replay",
			"%d of %d replayed statements failed during recovery (%s)",
			info.ReplayErrors, info.Replayed, info)
	}
	if v := sc.checkMaintenance(eng, st); v != nil {
		v.Check = "recovery-" + v.Check
		return v
	}
	if v := sc.checkRelational(eng, st); v != nil {
		v.Check = "recovery-" + v.Check
		return v
	}
	if v := sc.checkFacets(eng, st); v != nil {
		v.Check = "recovery-" + v.Check
		return v
	}
	return nil
}

// RunRecovery executes the crash-recovery differential harness. The error
// return is for harness-infrastructure failures only (e.g. no writable
// temp directory); engine disagreements surface as Violations.
func RunRecovery(cfg Config) (*Report, error) {
	cfg = cfg.defaults()
	start := time.Now()
	rep := &Report{}
	for i := 0; ; i++ {
		if cfg.Rounds > 0 {
			if i >= cfg.Rounds {
				break
			}
		} else if i > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		seed := RoundSeed(cfg.Seed, i)
		stmts, batches, v, err := runRecoveryRound(cfg, seed)
		if err != nil {
			return nil, err
		}
		rep.Rounds++
		rep.Statements += stmts
		rep.Batches += batches
		if v != nil {
			rep.Violations = append(rep.Violations, v)
			break
		}
		if cfg.Log != nil && (i+1)%10 == 0 {
			fmt.Fprintf(cfg.Log, "oracle/recovery: %d rounds, %d statements, %d kill/recover cycles, all passing\n",
				rep.Rounds, rep.Statements, rep.Batches)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// runRecoveryRound runs one crash-recovery round. batches counts
// completed kill/recover/check cycles.
func runRecoveryRound(cfg Config, roundSeed int64) (stmts, batches int, viol *Violation, err error) {
	sc := buildScenario(cfg, roundSeed)
	o := durOptsFor(roundSeed)
	dir, err := os.MkdirTemp("", "grfusion-oracle-")
	if err != nil {
		return 0, 0, nil, fmt.Errorf("recovery round temp dir: %v", err)
	}
	defer os.RemoveAll(dir)

	fail := func(v *Violation, ops []op) (int, int, *Violation, error) {
		v.Seed = roundSeed
		v.SetupSQL = sc.setupSQL()
		v.Statements = opSQL(ops)
		v.Detail += fmt.Sprintf(" [durability: %s]", o)
		if !cfg.NoMinimize {
			if strings.HasPrefix(v.Check, "recovery-") {
				v.Minimized = minimizeRecoveryOps(sc, o, ops, v)
			} else {
				v.Minimized = minimizeOps(sc, ops, v)
			}
		}
		return stmts, batches, v, nil
	}

	eng, err := sc.newDurableEngine(dir, o)
	if err != nil {
		return fail(violationf("setup", "%v", err), nil)
	}
	st := datagen.NewGraphState(sc.initial)
	opRNG := rand.New(rand.NewSource(roundSeed + 1))

	// Cycle 0: the initial bulk load must survive a crash.
	eng, info, rerr := sc.killRecover(eng, dir, o)
	if rerr != nil {
		v := violationf("recovery-open", "recovering initial load: %v", rerr)
		v.Batch = 0
		return fail(v, nil)
	}
	if v := sc.checkRecovered(eng, info, st); v != nil {
		v.Batch = 0
		return fail(v, nil)
	}
	batches++

	var ops []op
	for b := 1; b <= sc.batches; b++ {
		for j := 0; j < sc.opsPerBatch; j++ {
			m := st.Mutate(opRNG)
			rec := op{m: m, sql: sc.mutationSQL(m)}
			ops = append(ops, rec)
			stmts++
			_, err := eng.Execute(rec.sql)
			switch {
			case m.WantErr && err == nil:
				v := violationf("error-atomicity",
					"engine accepted invalid %s statement %q", m.Kind, rec.sql)
				v.Batch = b
				return fail(v, ops)
			case !m.WantErr && err != nil:
				v := violationf("unexpected-error",
					"engine rejected valid %s statement %q: %v", m.Kind, rec.sql, err)
				v.Batch = b
				return fail(v, ops)
			case err == nil:
				st.Apply(m)
			}
		}
		eng, info, rerr = sc.killRecover(eng, dir, o)
		if rerr != nil {
			v := violationf("recovery-open", "recovering after batch %d: %v", b, rerr)
			v.Batch = b
			return fail(v, ops)
		}
		if v := sc.checkRecovered(eng, info, st); v != nil {
			v.Batch = b
			return fail(v, ops)
		}
		batches++
	}
	eng.Close()
	return stmts, batches, nil, nil
}

// replayRecoveryOps replays a candidate subset against a fresh durable
// engine in its own directory, then kills and recovers it, returning the
// recovered engine, its RecoveryInfo and the mirrored model. Returns
// ok=false when the harness itself cannot replay (treat as "does not
// reproduce").
func replayRecoveryOps(sc *scenario, o durOpts, kept []op) (*core.Engine, *core.RecoveryInfo, *datagen.GraphState, func(), bool) {
	dir, err := os.MkdirTemp("", "grfusion-oracle-min-")
	if err != nil {
		return nil, nil, nil, nil, false
	}
	cleanup := func() { os.RemoveAll(dir) }
	eng, err := sc.newDurableEngine(dir, o)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, false
	}
	st := datagen.NewGraphState(sc.initial)
	for _, rec := range kept {
		if _, err := eng.Execute(rec.sql); err == nil {
			st.Apply(rec.m)
		}
	}
	eng, info, err := sc.killRecover(eng, dir, o)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, false
	}
	return eng, info, st, cleanup, true
}

// minimizeRecoveryOps is minimizeOps for "recovery-*" violations: the
// predicate replays the subset durably, crashes, recovers, and asks
// whether the same recovery check family still fails.
func minimizeRecoveryOps(sc *scenario, o durOpts, ops []op, v *Violation) []string {
	check := v.Check
	runs := 0
	reproduces := func(kept []op) bool {
		if runs >= maxPredicateRuns {
			return false
		}
		runs++
		eng, info, st, cleanup, ok := replayRecoveryOps(sc, o, kept)
		if !ok {
			return false
		}
		defer cleanup()
		defer eng.Close()
		got := sc.checkRecovered(eng, info, st)
		return got != nil && got.Check == check
	}
	if !reproduces(ops) {
		return nil
	}
	kept := ddmin(ops, reproduces)
	return opSQL(kept)
}
