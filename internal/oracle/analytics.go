package oracle

import (
	"fmt"
	"math"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
	"grfusion/internal/graph"
	"grfusion/internal/plan"
)

// checkAnalytics is the whole-graph analytics differential: every analytics
// table-valued function is cross-checked against the naive pure-Go
// references over an independently rebuilt topology, the two physical
// layouts (ptr and csr) must return byte-identical relations, and so must
// any worker-pool size.
//
// Integer-valued results (components, labels, degrees) are compared
// exactly: the component rule (smallest vertex id) and the label update
// rule (most frequent neighbor label, ties to the smallest) are functions
// of the neighbor multiset, so edge insertion order cannot change them.
// PageRank is compared within epsilon: the engine's live topology and the
// reference rebuild order adjacency lists differently, so the float sums
// accumulate in different orders.
func (sc *scenario) checkAnalytics(eng *core.Engine, st *datagen.GraphState) *Violation {
	if len(st.Verts) == 0 {
		return nil
	}
	ref := st.Dataset("oracle-analytics").Build()

	const damping, prIters, lpIters = 0.85, 20, 20
	refRanks, _, err := graph.RefPageRank(nil, ref, damping, prIters, 1e-9)
	if err != nil {
		return violationf("analytics-pagerank", "reference: %v", err)
	}
	refComp, _, err := graph.RefComponents(nil, ref)
	if err != nil {
		return violationf("analytics-components", "reference: %v", err)
	}
	refLbl, _, err := graph.RefLabelProp(nil, ref, lpIters)
	if err != nil {
		return violationf("analytics-labelprop", "reference: %v", err)
	}
	refOut, refIn := graph.RefDegrees(ref)

	q := func(call string) string {
		return fmt.Sprintf("SELECT * FROM %s.%s X", sc.gv, call)
	}

	// PageRank vs the reference, within float tolerance.
	res, err := eng.Execute(q(fmt.Sprintf("PAGERANK(%v, %d)", damping, prIters)))
	if err != nil {
		return violationf("analytics-pagerank", "engine: %v", err)
	}
	if len(res.Rows) != len(st.Verts) {
		return violationf("analytics-pagerank", "engine returned %d rows, model has %d vertexes",
			len(res.Rows), len(st.Verts))
	}
	for _, row := range res.Rows {
		id, rank := row[0].I, row[1].F
		want, ok := refRanks[id]
		if !ok {
			return violationf("analytics-pagerank", "engine emitted unknown vertex %d", id)
		}
		if math.Abs(rank-want) > 1e-6 {
			return violationf("analytics-pagerank",
				"rank(%d) = %v, reference %v", id, rank, want)
		}
	}

	// Integer-valued functions vs their references, exactly.
	intChecks := []struct {
		check string
		call  string
		want  func(id int64) []int64
	}{
		{"analytics-components", "CONNECTED_COMPONENTS()",
			func(id int64) []int64 { return []int64{refComp[id]} }},
		{"analytics-labelprop", fmt.Sprintf("LABEL_PROPAGATION(%d)", lpIters),
			func(id int64) []int64 { return []int64{refLbl[id]} }},
		{"analytics-degree", "DEGREE_CENTRALITY()",
			func(id int64) []int64 { return []int64{refOut[id], refIn[id]} }},
	}
	for _, c := range intChecks {
		res, err := eng.Execute(q(c.call))
		if err != nil {
			return violationf(c.check, "engine: %v", err)
		}
		if len(res.Rows) != len(st.Verts) {
			return violationf(c.check, "engine returned %d rows, model has %d vertexes",
				len(res.Rows), len(st.Verts))
		}
		for _, row := range res.Rows {
			id := row[0].I
			if _, ok := refComp[id]; !ok {
				return violationf(c.check, "engine emitted unknown vertex %d", id)
			}
			for j, want := range c.want(id) {
				if got := row[1+j].I; got != want {
					return violationf(c.check, "%s: value[%d] of vertex %d = %d, reference %d",
						c.call, j, id, got, want)
				}
			}
		}
	}

	// Layout invariance: ptr and csr must return byte-identical relations
	// (the kernels share reduction order with the references by
	// construction), and so must any worker count on the parallel CSR path.
	for _, call := range []string{
		fmt.Sprintf("PAGERANK(%v, %d)", damping, prIters),
		"CONNECTED_COMPONENTS()",
		fmt.Sprintf("LABEL_PROPAGATION(%d)", lpIters),
		"DEGREE_CENTRALITY()",
	} {
		eng.SetPlanOptions(plan.Options{ForceLayout: "ptr"})
		resPtr, errPtr := eng.Execute(q(call))
		eng.SetPlanOptions(plan.Options{ForceLayout: "csr"})
		eng.SetWorkers(1)
		resCSR1, errCSR1 := eng.Execute(q(call))
		eng.SetWorkers(4)
		resCSR4, errCSR4 := eng.Execute(q(call))
		eng.SetPlanOptions(plan.Options{})
		eng.SetWorkers(sc.workers)
		if errPtr != nil || errCSR1 != nil || errCSR4 != nil {
			return violationf("analytics-layout", "%s: ptr=%v csr1=%v csr4=%v",
				call, errPtr, errCSR1, errCSR4)
		}
		rPtr := renderRows(resPtr, false)
		rCSR1 := renderRows(resCSR1, false)
		rCSR4 := renderRows(resCSR4, false)
		if !sameRows(rPtr, rCSR1) {
			return violationf("analytics-layout",
				"%s: ptr and csr layouts disagree (%d vs %d rows)", call, len(rPtr), len(rCSR1))
		}
		if !sameRows(rCSR1, rCSR4) {
			return violationf("analytics-layout",
				"%s: results differ between 1 and 4 workers", call)
		}
	}
	return nil
}
