// Package oracle is the differential- and metamorphic-testing harness for
// the engine's graph support. Each round derives a randomized scenario from
// a seed — schema, initial graph, and an interleaved DML + query workload —
// and cross-checks the engine after every DML batch against independent
// oracles:
//
//   - the §3.3 maintenance oracle: the incrementally maintained topology
//     must equal a from-scratch rebuild of the relational sources, and both
//     must equal a pure-Go ground-truth model of the DML history;
//   - differential oracles: reachability, bounded reachability, shortest
//     paths and triangle counts are answered independently by the graph
//     kernel, the property graph stores, the Grail-style iterative SQL
//     driver and the SQLGraph join translation — any disagreement is a bug
//     in one of them;
//   - metamorphic relations needing no reference: tightening a predicate
//     or a length bound never grows a result, results are identical at any
//     worker count, and a Snapshot/Restore round-trip changes nothing.
//
// Every failure is reported as a replayable Violation carrying the round
// seed and a ddmin-minimized statement log.
package oracle

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
)

// Config parameterizes a harness run.
type Config struct {
	// Seed derives every round: round i runs with seed Seed + i*1000003, so
	// a failure at round i reproduces alone via Seed=<round seed>, Rounds=1.
	Seed int64
	// Rounds caps the number of rounds (0 = run until Duration elapses).
	Rounds int
	// Duration bounds the run when Rounds is 0 (default 5s).
	Duration time.Duration
	// Workers is the engine worker-pool size scenarios run with (default 2).
	Workers int
	// NoMinimize skips ddmin statement minimization on failure.
	NoMinimize bool
	// Log, when set, receives progress lines.
	Log io.Writer
}

func (c Config) defaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Rounds <= 0 && c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	return c
}

// RoundSeed returns the seed of round i under base seed.
func RoundSeed(seed int64, i int) int64 { return seed + int64(i)*1000003 }

// checkSeed derives the sampling-RNG seed of a check batch. It depends only
// on the round seed and batch index — not on the statements executed — so
// minimization replays sample exactly the same probes.
func checkSeed(roundSeed int64, batch int) int64 {
	return roundSeed ^ (int64(batch+1) * (0x9E3779B97F4A7C15 >> 1))
}

// Report summarizes a harness run.
type Report struct {
	Rounds     int
	Statements int
	Batches    int
	Elapsed    time.Duration
	// Violations holds the first failure found (the run stops there so the
	// repro is the shortest prefix); empty means every check passed.
	Violations []*Violation
}

// Run executes the harness and returns its report. The error return is for
// harness-infrastructure failures only; engine disagreements surface as
// Violations in the report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.defaults()
	start := time.Now()
	rep := &Report{}
	for i := 0; ; i++ {
		if cfg.Rounds > 0 {
			if i >= cfg.Rounds {
				break
			}
		} else if i > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		seed := RoundSeed(cfg.Seed, i)
		stmts, batches, v := runRound(cfg, seed)
		rep.Rounds++
		rep.Statements += stmts
		rep.Batches += batches
		if v != nil {
			rep.Violations = append(rep.Violations, v)
			break
		}
		if cfg.Log != nil && (i+1)%20 == 0 {
			fmt.Fprintf(cfg.Log, "oracle: %d rounds, %d statements, %d check batches, all passing\n",
				rep.Rounds, rep.Statements, rep.Batches)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// op is one recorded workload statement: the logical mutation plus its
// rendered SQL. Replays execute the SQL and mirror successes into the
// model, so dropping earlier ops stays well-defined.
type op struct {
	m   datagen.Mutation
	sql string
}

// runRound generates and runs one scenario, returning the statement count,
// completed check batches, and the first violation (nil if clean).
func runRound(cfg Config, roundSeed int64) (stmts, batches int, viol *Violation) {
	sc := buildScenario(cfg, roundSeed)
	fail := func(v *Violation, ops []op) (int, int, *Violation) {
		v.Seed = roundSeed
		v.SetupSQL = sc.setupSQL()
		v.Statements = opSQL(ops)
		if !cfg.NoMinimize {
			v.Minimized = minimizeOps(sc, ops, v)
		}
		return stmts, batches, v
	}

	eng, err := sc.newEngine()
	if err != nil {
		return fail(violationf("setup", "%v", err), nil)
	}
	st := datagen.NewGraphState(sc.initial)
	opRNG := rand.New(rand.NewSource(roundSeed + 1))

	// Batch 0: the initial bulk load must already pass every check.
	if v := sc.checkBatch(eng, st, rand.New(rand.NewSource(checkSeed(roundSeed, 0))), 0); v != nil {
		v.Batch = 0
		return fail(v, nil)
	}
	batches++

	var ops []op
	for b := 1; b <= sc.batches; b++ {
		for j := 0; j < sc.opsPerBatch; j++ {
			m := st.Mutate(opRNG)
			o := op{m: m, sql: sc.mutationSQL(m)}
			ops = append(ops, o)
			stmts++
			_, err := eng.Execute(o.sql)
			switch {
			case m.WantErr && err == nil:
				v := violationf("error-atomicity",
					"engine accepted invalid %s statement %q", m.Kind, o.sql)
				v.Batch = b
				return fail(v, ops)
			case !m.WantErr && err != nil:
				v := violationf("unexpected-error",
					"engine rejected valid %s statement %q: %v", m.Kind, o.sql, err)
				v.Batch = b
				return fail(v, ops)
			case err == nil:
				st.Apply(m)
			}
		}
		if v := sc.checkBatch(eng, st, rand.New(rand.NewSource(checkSeed(roundSeed, b))), b); v != nil {
			v.Batch = b
			return fail(v, ops)
		}
		batches++
	}
	return stmts, batches, nil
}

func opSQL(ops []op) []string {
	out := make([]string, len(ops))
	for i, o := range ops {
		out[i] = o.sql
	}
	return out
}

// replayOps builds a fresh engine + model and replays a subset of the
// recorded ops: each statement executes against the engine and, when it
// succeeds, mirrors into the model. Returns false if setup fails (a subset
// cannot make setup fail; treat as "does not reproduce").
func replayOps(sc *scenario, kept []op) (*replayState, bool) {
	eng, err := sc.newEngine()
	if err != nil {
		return nil, false
	}
	st := datagen.NewGraphState(sc.initial)
	rs := &replayState{eng: eng, st: st}
	for _, o := range kept {
		_, err := eng.Execute(o.sql)
		rs.lastErr = err
		if err == nil {
			st.Apply(o.m)
		}
	}
	return rs, true
}

type replayState struct {
	eng     *core.Engine
	st      *datagen.GraphState
	lastErr error
}
