package oracle

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"grfusion/internal/baselines/grail"
	"grfusion/internal/baselines/graphstore"
	"grfusion/internal/baselines/sqlgraph"
	"grfusion/internal/core"
	"grfusion/internal/datagen"
	"grfusion/internal/graph"
)

// The per-batch check battery. Order matters: the §3.3 maintenance oracle
// runs first and stops the battery on failure — once the live topology has
// diverged from the relational sources, every downstream query check would
// fail with confusing secondary symptoms (dangling tuple pointers, phantom
// edges), so the first broken invariant is the one reported.

// A Violation is one oracle disagreement, with everything needed to replay
// it: the round seed, the statement log up to the failure, and a minimized
// statement subset that still triggers it.
type Violation struct {
	// Check names the failed check family (e.g. "maintenance-topology").
	Check string
	// Detail is the human-readable disagreement.
	Detail string
	// Seed is the failing round's seed: `grbench oracle -seed Seed -rounds 1`
	// reproduces the round end to end.
	Seed int64
	// Batch is the DML batch index after which the check failed.
	Batch int
	// SetupSQL is the scenario DDL + initial load.
	SetupSQL []string
	// Statements is the full recorded DML log up to the failure.
	Statements []string
	// Minimized is the ddmin-reduced statement subset that still triggers
	// the same check failure after SetupSQL (nil if minimization was
	// skipped or the failure needs no statements).
	Minimized []string
}

func (v *Violation) String() string {
	return fmt.Sprintf("[%s] seed=%d batch=%d: %s", v.Check, v.Seed, v.Batch, v.Detail)
}

func violationf(check string, format string, args ...any) *Violation {
	return &Violation{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// graphSig renders a canonical signature of a topology: vertex ids and edge
// (id, from, to) triples in ascending id order. withTuples additionally
// pins the tuple pointers, which must agree between the live topology and a
// rebuild from the same relational state.
func graphSig(g *graph.Graph, withTuples bool) string {
	var b strings.Builder
	g.Vertices(func(v *graph.Vertex) bool {
		if withTuples {
			fmt.Fprintf(&b, "V %d @%d\n", v.ID, v.Tuple)
		} else {
			fmt.Fprintf(&b, "V %d\n", v.ID)
		}
		return true
	})
	g.Edges(func(e *graph.Edge) bool {
		if withTuples {
			fmt.Fprintf(&b, "E %d %d->%d @%d\n", e.ID, e.From.ID, e.To.ID, e.Tuple)
		} else {
			fmt.Fprintf(&b, "E %d %d->%d\n", e.ID, e.From.ID, e.To.ID)
		}
		return true
	})
	return b.String()
}

// modelSig renders the ground-truth model in graphSig's tuple-free format.
func modelSig(st *datagen.GraphState) string {
	var b strings.Builder
	for _, id := range st.VertexIDs() {
		fmt.Fprintf(&b, "V %d\n", id)
	}
	for _, id := range st.EdgeIDs() {
		e := st.Edges[id]
		fmt.Fprintf(&b, "E %d %d->%d\n", e.ID, e.Src, e.Dst)
	}
	return b.String()
}

// diffSigs summarizes the first few differing lines of two signatures.
func diffSigs(aName, a, bName, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	aset := make(map[string]bool, len(al))
	for _, l := range al {
		aset[l] = true
	}
	bset := make(map[string]bool, len(bl))
	for _, l := range bl {
		bset[l] = true
	}
	var only []string
	for _, l := range al {
		if l != "" && !bset[l] {
			only = append(only, fmt.Sprintf("only in %s: %s", aName, l))
		}
	}
	for _, l := range bl {
		if l != "" && !aset[l] {
			only = append(only, fmt.Sprintf("only in %s: %s", bName, l))
		}
	}
	if len(only) > 6 {
		only = append(only[:6], fmt.Sprintf("... %d more", len(only)-6))
	}
	return strings.Join(only, "; ")
}

// rows renders a result set one row per string. sorted=true canonicalizes
// order-insensitive comparisons; false preserves engine order for the
// determinism checks.
func renderRows(res *core.Result, sorted bool) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	if sorted {
		sort.Strings(out)
	}
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scalarInt runs a single-value query (e.g. COUNT) and returns the value.
func scalarInt(eng *core.Engine, q string) (int64, error) {
	res, err := eng.Execute(q)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("expected one scalar, got %d rows", len(res.Rows))
	}
	return res.Rows[0][0].AsInt(), nil
}

// baselineSet holds the independent reference systems, rebuilt from the
// ground-truth model each batch so they cannot inherit an engine bug.
type baselineSet struct {
	d     *datagen.Dataset
	ref   *graph.Graph      // direct kernel reference
	wts   map[int64]float64 // edge id -> weight
	sels  map[int64]int64   // edge id -> sel
	store graphstore.GraphDB
	sg    *sqlgraph.Store
	gl    *grail.Driver
}

func buildBaselines(st *datagen.GraphState, serialized bool) (*baselineSet, error) {
	d := st.Dataset("oracle")
	bs := &baselineSet{
		d:    d,
		ref:  d.Build(),
		wts:  make(map[int64]float64, len(d.Edges)),
		sels: make(map[int64]int64, len(d.Edges)),
	}
	for _, e := range d.Edges {
		bs.wts[e.ID] = e.Weight
		bs.sels[e.ID] = e.Sel
	}
	if serialized {
		bs.store = graphstore.NewSerialized(d.Directed)
	} else {
		bs.store = graphstore.New(d.Directed)
	}
	if err := graphstore.Load(bs.store, d); err != nil {
		return nil, fmt.Errorf("graphstore load: %v", err)
	}
	var err error
	if bs.sg, err = sqlgraph.Load(d, "osg", sqlgraph.Pipelined, 0); err != nil {
		return nil, fmt.Errorf("sqlgraph load: %v", err)
	}
	if bs.gl, err = grail.Load(d, "ogl"); err != nil {
		return nil, fmt.Errorf("grail load: %v", err)
	}
	return bs, nil
}

// filtered returns the kernel reference restricted to edges with
// sel < selPct (selPct < 0 admits all).
func (bs *baselineSet) filtered(selPct int) *graph.Graph {
	if selPct < 0 {
		return bs.ref
	}
	g := graph.New("filtered", bs.d.Directed)
	for _, v := range bs.d.Vertices {
		if _, err := g.AddVertex(v.ID, uint64(v.ID)+1); err != nil {
			panic(fmt.Sprintf("oracle: %v", err))
		}
	}
	for _, e := range bs.d.Edges {
		if e.Sel < int64(selPct) {
			if _, err := g.AddEdge(e.ID, e.Src, e.Dst, uint64(e.ID)+1); err != nil {
				panic(fmt.Sprintf("oracle: %v", err))
			}
		}
	}
	return g
}

func (bs *baselineSet) storeFilter(selPct int) graphstore.EdgeFilter {
	if selPct < 0 {
		return nil
	}
	return func(p graphstore.Props) bool { return p["sel"].I < int64(selPct) }
}

// kernelReach answers reachability on the filtered reference (maxLen <= 0
// unbounded).
func (bs *baselineSet) kernelReach(src, dst int64, maxLen, selPct int) bool {
	g := bs.filtered(selPct)
	s, t := g.Vertex(src), g.Vertex(dst)
	if s == nil || t == nil {
		return false
	}
	if maxLen <= 0 {
		maxLen = g.NumVertices()
	}
	return graph.Reachable(g, s, t, maxLen)
}

// kernelShortest returns the cheapest-path cost by weight, ok=false when
// unreachable.
func (bs *baselineSet) kernelShortest(src, dst int64) (float64, bool) {
	s, t := bs.ref.Vertex(src), bs.ref.Vertex(dst)
	if s == nil || t == nil {
		return 0, false
	}
	w := func(_ int, e *graph.Edge, _, _ *graph.Vertex) (float64, bool) {
		return bs.wts[e.ID], true
	}
	p, err := graph.ShortestPath(bs.ref, s, t, w)
	if err != nil || p == nil {
		return 0, false
	}
	cost := 0.0
	for _, e := range p.Edges {
		cost += bs.wts[e.ID]
	}
	return cost, true
}

// sqlgraphReach answers distance <= k reachability as the OR over exact
// walk lengths 1..k: a walk of length j exists iff the BFS distance is <= j
// and the engine's visit-once semantics emit the distance-length path, so
// the disjunction is equivalent to the engine's `Length <= k` with both
// endpoints bound.
func (bs *baselineSet) sqlgraphReach(src, dst int64, k, selPct int) (bool, error) {
	for j := 1; j <= k; j++ {
		ok, err := bs.sg.Reachable(src, dst, j, selPct)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// selClause renders the engine-side predicate (empty when selPct < 0).
func selClause(alias string, selPct int) string {
	if selPct < 0 {
		return ""
	}
	return fmt.Sprintf(" AND %s.Edges[0..*].sel < %d", alias, selPct)
}

// checkBatch runs the whole battery against the engine after a DML batch.
// rng drives sampling only; it is seeded independently of the workload RNG
// so minimization replays re-sample identically.
func (sc *scenario) checkBatch(eng *core.Engine, st *datagen.GraphState, rng *rand.Rand, batch int) *Violation {
	if v := sc.checkMaintenance(eng, st); v != nil {
		return v
	}
	if v := sc.checkRelational(eng, st); v != nil {
		return v
	}
	if v := sc.checkFacets(eng, st); v != nil {
		return v
	}
	if v := sc.checkQueries(eng, st, rng, batch); v != nil {
		return v
	}
	if v := sc.checkMetamorphic(eng, rng); v != nil {
		return v
	}
	if v := sc.checkAnalytics(eng, st); v != nil {
		return v
	}
	if v := sc.checkSnapshot(eng); v != nil {
		return v
	}
	if v := sc.checkIsolation(eng, rng); v != nil {
		return v
	}
	return nil
}

// checkMaintenance is the §3.3 oracle: the incrementally maintained
// topology must equal a from-scratch rebuild of the current relational
// state (tuple pointers included), and both must equal the ground-truth
// model.
func (sc *scenario) checkMaintenance(eng *core.Engine, st *datagen.GraphState) *Violation {
	live, err := eng.GraphTopology(sc.gv)
	if err != nil {
		return violationf("maintenance-topology", "live topology: %v", err)
	}
	rebuilt, err := eng.RebuildGraphView(sc.gv)
	if err != nil {
		return violationf("maintenance-topology", "rebuild: %v", err)
	}
	if a, b := graphSig(live, true), graphSig(rebuilt, true); a != b {
		return violationf("maintenance-topology",
			"maintained topology diverged from rebuild: %s", diffSigs("live", a, "rebuilt", b))
	}
	if a, b := graphSig(live, false), modelSig(st); a != b {
		return violationf("maintenance-model",
			"topology diverged from ground-truth model: %s", diffSigs("engine", a, "model", b))
	}
	return nil
}

// checkRelational verifies the base tables agree with the model row counts.
func (sc *scenario) checkRelational(eng *core.Engine, st *datagen.GraphState) *Violation {
	nv, err := scalarInt(eng, fmt.Sprintf("SELECT COUNT(*) FROM %s", sc.vt))
	if err != nil {
		return violationf("relational-count", "COUNT(%s): %v", sc.vt, err)
	}
	if int(nv) != len(st.Verts) {
		return violationf("relational-count", "%s has %d rows, model has %d vertexes", sc.vt, nv, len(st.Verts))
	}
	ne, err := scalarInt(eng, fmt.Sprintf("SELECT COUNT(*) FROM %s", sc.et))
	if err != nil {
		return violationf("relational-count", "COUNT(%s): %v", sc.et, err)
	}
	if int(ne) != len(st.Edges) {
		return violationf("relational-count", "%s has %d rows, model has %d edges", sc.et, ne, len(st.Edges))
	}
	return nil
}

// checkFacets verifies the GV.VERTEXES / GV.EDGES projections — every
// attribute access dereferences a tuple pointer, so this catches stale or
// dangling pointers that pure topology diffs cannot.
func (sc *scenario) checkFacets(eng *core.Engine, st *datagen.GraphState) *Violation {
	res, err := eng.Execute(fmt.Sprintf(
		"SELECT VS.Id, VS.name, VS.FanOut, VS.FanIn FROM %s.Vertexes VS", sc.gv))
	if err != nil {
		return violationf("facet-vertexes", "query: %v", err)
	}
	got := renderRows(res, true)
	want := make([]string, 0, len(st.Verts))
	for _, id := range st.VertexIDs() {
		want = append(want, fmt.Sprintf("%d|%s|%d|%d", id, st.Verts[id], st.FanOut(id), st.FanIn(id)))
	}
	sort.Strings(want)
	if !sameRows(got, want) {
		return violationf("facet-vertexes", "VERTEXES projection mismatch: engine %v, model %v", got, want)
	}

	res, err = eng.Execute(fmt.Sprintf(
		"SELECT ES.ID, ES.sel, ES.lbl FROM %s.Edges ES", sc.gv))
	if err != nil {
		return violationf("facet-edges", "query: %v", err)
	}
	got = renderRows(res, true)
	want = want[:0]
	for _, id := range st.EdgeIDs() {
		e := st.Edges[id]
		want = append(want, fmt.Sprintf("%d|%d|%s", id, e.Sel, e.Label))
	}
	sort.Strings(want)
	if !sameRows(got, want) {
		return violationf("facet-edges", "EDGES projection mismatch: engine %v, model %v", got, want)
	}
	return nil
}

// checkQueries cross-checks sampled PATHS queries against the four
// independent oracles.
func (sc *scenario) checkQueries(eng *core.Engine, st *datagen.GraphState, rng *rand.Rand, batch int) *Violation {
	verts := st.VertexIDs()
	if len(verts) < 2 {
		return nil
	}
	bs, err := buildBaselines(st, batch%2 == 1)
	if err != nil {
		return violationf("baseline-setup", "%v", err)
	}

	samplePair := func() (int64, int64) {
		s := verts[rng.Intn(len(verts))]
		t := verts[rng.Intn(len(verts))]
		for t == s {
			t = verts[rng.Intn(len(verts))]
		}
		return s, t
	}

	// sqlgraph's join-based translation enumerates ~degree^k walks; gate it
	// the way the benchmarks gate their pipelined runs.
	deg := bs.d.AvgDegree()
	if !bs.d.Directed {
		deg *= 2
	}
	sqlgraphOK := func(k int) bool { return math.Pow(math.Max(deg, 1), float64(k)) < 2e5 }

	for i := 0; i < 4; i++ {
		src, dst := samplePair()
		selPct := -1
		if rng.Intn(2) == 0 {
			selPct = 10 + rng.Intn(80)
		}
		if i == 3 { // one probe against a vertex that does not exist
			dst = st.VertexIDs()[len(verts)-1] + 1000
		}

		// Unbounded reachability.
		q := fmt.Sprintf(
			"SELECT PS.PathString FROM %s.Paths PS WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d%s LIMIT 1",
			sc.gv, src, dst, selClause("PS", selPct))
		res, err := eng.Execute(q)
		if err != nil {
			return violationf("reach", "engine %q: %v", q, err)
		}
		engReach := len(res.Rows) > 0
		kernReach := bs.kernelReach(src, dst, 0, selPct)
		storeReach := graphstore.Reachable(bs.store, src, dst, 0, bs.storeFilter(selPct))
		glReach, err := bs.gl.Reachable(src, dst, 0, selPct)
		if err != nil {
			return violationf("reach", "grail(%d,%d): %v", src, dst, err)
		}
		if engReach != kernReach || engReach != storeReach || engReach != glReach {
			return violationf("reach",
				"reach(%d->%d, sel<%d) disagrees: engine=%v kernel=%v graphstore=%v grail=%v",
				src, dst, selPct, engReach, kernReach, storeReach, glReach)
		}

		// Bounded reachability (skip the dangling-endpoint probe: every
		// system already agreed it is unreachable).
		if i == 3 {
			continue
		}
		k := 1 + rng.Intn(4)
		q = fmt.Sprintf(
			"SELECT PS.PathString FROM %s.Paths PS WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d AND PS.Length <= %d%s LIMIT 1",
			sc.gv, src, dst, k, selClause("PS", selPct))
		res, err = eng.Execute(q)
		if err != nil {
			return violationf("reach-bounded", "engine %q: %v", q, err)
		}
		engReach = len(res.Rows) > 0
		kernReach = bs.kernelReach(src, dst, k, selPct)
		storeReach = graphstore.Reachable(bs.store, src, dst, k, bs.storeFilter(selPct))
		glReach, err = bs.gl.Reachable(src, dst, k, selPct)
		if err != nil {
			return violationf("reach-bounded", "grail(%d,%d,%d): %v", src, dst, k, err)
		}
		if engReach != kernReach || engReach != storeReach || engReach != glReach {
			return violationf("reach-bounded",
				"reach(%d->%d, len<=%d, sel<%d) disagrees: engine=%v kernel=%v graphstore=%v grail=%v",
				src, dst, k, selPct, engReach, kernReach, storeReach, glReach)
		}
		if sqlgraphOK(k) {
			sgReach, err := bs.sqlgraphReach(src, dst, k, selPct)
			if err != nil {
				return violationf("reach-bounded", "sqlgraph(%d,%d,%d): %v", src, dst, k, err)
			}
			if engReach != sgReach {
				return violationf("reach-bounded",
					"reach(%d->%d, len<=%d, sel<%d) disagrees: engine=%v sqlgraph=%v",
					src, dst, k, selPct, engReach, sgReach)
			}
		}

		// Shortest path cost. Weights are integer-valued by construction so
		// the four Dijkstra/Bellman-Ford variants must agree exactly.
		q = fmt.Sprintf(
			"SELECT TOP 1 SUM(PS.Edges.w) FROM %s.Paths PS HINT(SHORTESTPATH(w)) WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d",
			sc.gv, src, dst)
		res, err = eng.Execute(q)
		if err != nil {
			return violationf("shortest-path", "engine %q: %v", q, err)
		}
		engOK := len(res.Rows) > 0
		var engCost float64
		if engOK {
			engCost = res.Rows[0][0].AsFloat()
		}
		kCost, kOK := bs.kernelShortest(src, dst)
		sCost, _, sOK := graphstore.ShortestPath(bs.store, src, dst, "w", nil)
		gCost, gOK, err := bs.gl.ShortestPath(src, dst, -1)
		if err != nil {
			return violationf("shortest-path", "grail(%d,%d): %v", src, dst, err)
		}
		if engOK != kOK || engOK != sOK || engOK != gOK {
			return violationf("shortest-path",
				"sp(%d->%d) existence disagrees: engine=%v kernel=%v graphstore=%v grail=%v",
				src, dst, engOK, kOK, sOK, gOK)
		}
		if engOK && (engCost != kCost || engCost != sCost || engCost != gCost) {
			return violationf("shortest-path",
				"sp(%d->%d) cost disagrees: engine=%g kernel=%g graphstore=%g grail=%g",
				src, dst, engCost, kCost, sCost, gCost)
		}
	}

	// Triangle counting (Listing 4's pattern). The three systems share
	// closed length-3 path multiplicity semantics on undirected graphs
	// (cross-validated by the Fig10 experiment); directed conventions
	// differ, so the cross-check is undirected-only.
	if !sc.directed && sqlgraphOK(3) {
		selPct := 20 + rng.Intn(81)
		q := fmt.Sprintf(
			"SELECT COUNT(P) FROM %s.Paths P WHERE P.Length = 3 AND P.Edges[0..*].sel < %d AND P.Edges[2].EndVertex = P.Edges[0].StartVertex",
			sc.gv, selPct)
		engTri, err := scalarInt(eng, q)
		if err != nil {
			return violationf("triangles", "engine %q: %v", q, err)
		}
		storeTri := int64(graphstore.CountTriangles(bs.store, bs.storeFilter(selPct)))
		sgTri, err := bs.sg.CountTriangles(selPct)
		if err != nil {
			return violationf("triangles", "sqlgraph: %v", err)
		}
		if engTri != storeTri || engTri != sgTri {
			return violationf("triangles",
				"triangles(sel<%d) disagree: engine=%d graphstore=%d sqlgraph=%d",
				selPct, engTri, storeTri, sgTri)
		}
	}
	return nil
}

// multiCount is the multi-source path count the metamorphic relations are
// phrased over. HINT(BFS) pins the visit-once traversal to minimum-depth
// visits, the regime where the monotonicity relations are exact.
func (sc *scenario) multiCount(eng *core.Engine, k, selPct int) (int64, error) {
	return scalarInt(eng, fmt.Sprintf(
		"SELECT COUNT(*) FROM %s.Paths PS HINT(BFS) WHERE PS.Length <= %d%s",
		sc.gv, k, selClause("PS", selPct)))
}

// checkMetamorphic verifies relations that need no reference oracle:
// tightening a predicate or shortening the length bound never grows the
// result, and results are identical at any worker count.
func (sc *scenario) checkMetamorphic(eng *core.Engine, rng *rand.Rand) *Violation {
	lo := 10 + rng.Intn(40)
	hi := lo + 10 + rng.Intn(40)

	cLo, err := sc.multiCount(eng, 2, lo)
	if err != nil {
		return violationf("metamorphic-sel", "count(sel<%d): %v", lo, err)
	}
	cHi, err := sc.multiCount(eng, 2, hi)
	if err != nil {
		return violationf("metamorphic-sel", "count(sel<%d): %v", hi, err)
	}
	cAll, err := sc.multiCount(eng, 2, -1)
	if err != nil {
		return violationf("metamorphic-sel", "count(no pred): %v", err)
	}
	if cLo > cHi || cHi > cAll {
		return violationf("metamorphic-sel",
			"predicate monotonicity broken: count(sel<%d)=%d count(sel<%d)=%d count(all)=%d",
			lo, cLo, hi, cHi, cAll)
	}

	var prev int64 = -1
	for k := 1; k <= 3; k++ {
		c, err := sc.multiCount(eng, k, hi)
		if err != nil {
			return violationf("metamorphic-length", "count(len<=%d): %v", k, err)
		}
		if c < prev {
			return violationf("metamorphic-length",
				"length monotonicity broken: count(len<=%d)=%d < count(len<=%d)=%d", k, c, k-1, prev)
		}
		prev = c
	}

	// Worker-count invariance: the parallel multi-source scan must return
	// byte-identical rows at any pool size (PR 1's determinism contract).
	q := fmt.Sprintf(
		"SELECT PS.PathString FROM %s.Paths PS HINT(BFS) WHERE PS.Length <= 2%s",
		sc.gv, selClause("PS", hi))
	eng.SetWorkers(1)
	res1, err1 := eng.Execute(q)
	eng.SetWorkers(4)
	res4, err4 := eng.Execute(q)
	eng.SetWorkers(sc.workers)
	if err1 != nil || err4 != nil {
		return violationf("metamorphic-workers", "query: w1=%v w4=%v", err1, err4)
	}
	if r1, r4 := renderRows(res1, false), renderRows(res4, false); !sameRows(r1, r4) {
		return violationf("metamorphic-workers",
			"results differ between 1 and 4 workers: %d vs %d rows", len(r1), len(r4))
	}
	return nil
}

// checkSnapshot verifies a Snapshot/Restore round-trip preserves both the
// relational state and the rebuilt graph-view topology.
func (sc *scenario) checkSnapshot(eng *core.Engine) *Violation {
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		return violationf("snapshot-roundtrip", "snapshot: %v", err)
	}
	e2 := core.New(core.Options{Workers: sc.workers})
	if err := e2.Restore(&buf); err != nil {
		return violationf("snapshot-roundtrip", "restore: %v", err)
	}
	live, err := eng.GraphTopology(sc.gv)
	if err != nil {
		return violationf("snapshot-roundtrip", "live topology: %v", err)
	}
	restored, err := e2.GraphTopology(sc.gv)
	if err != nil {
		return violationf("snapshot-roundtrip", "restored topology: %v", err)
	}
	if a, b := graphSig(live, false), graphSig(restored, false); a != b {
		return violationf("snapshot-roundtrip",
			"topology changed across snapshot round-trip: %s", diffSigs("live", a, "restored", b))
	}
	for _, q := range []string{
		fmt.Sprintf("SELECT VS.Id, VS.name, VS.FanOut, VS.FanIn FROM %s.Vertexes VS", sc.gv),
		fmt.Sprintf("SELECT ES.ID, ES.sel, ES.lbl FROM %s.Edges ES", sc.gv),
	} {
		r1, err1 := eng.Execute(q)
		r2, err2 := e2.Execute(q)
		if err1 != nil || err2 != nil {
			return violationf("snapshot-roundtrip", "%q: live=%v restored=%v", q, err1, err2)
		}
		if !sameRows(renderRows(r1, true), renderRows(r2, true)) {
			return violationf("snapshot-roundtrip", "%q differs across round-trip", q)
		}
	}
	return nil
}

// checkIsolation is the MVCC snapshot-isolation oracle. Writers serialize
// and each successful statement publishes exactly one version, so the only
// edge sets a concurrent reader may legally observe during a sequential
// insert storm are the pre-storm set plus a PREFIX of the storm's edges —
// one published version each. Readers poll the edge facet while the storm
// runs; any non-prefix observation (an edge visible before its
// predecessor, a pre-storm edge missing, a phantom) is a torn read across
// versions. The differential closes against the quiesced engine: once the
// storm finishes, the facet and a from-scratch topology rebuild must both
// equal the full set. The storm runs on a scratch engine restored from the
// round's current state, so the round engine and model stay untouched.
func (sc *scenario) checkIsolation(eng *core.Engine, rng *rand.Rand) *Violation {
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		return violationf("isolation", "snapshot: %v", err)
	}
	e2 := core.New(core.Options{Workers: sc.workers})
	if err := e2.Restore(&buf); err != nil {
		return violationf("isolation", "restore: %v", err)
	}

	edgeQ := fmt.Sprintf("SELECT ES.ID FROM %s.Edges ES", sc.gv)
	readEdgeIDs := func() (map[int64]bool, error) {
		res, err := e2.Execute(edgeQ)
		if err != nil {
			return nil, err
		}
		ids := make(map[int64]bool, len(res.Rows))
		for _, r := range res.Rows {
			ids[r[0].I] = true
		}
		return ids, nil
	}
	pre, err := readEdgeIDs()
	if err != nil {
		return violationf("isolation", "baseline %q: %v", edgeQ, err)
	}

	// Concurrent readers: poll the facet until told to stop, recording
	// every observation. The rng only varies the storm's ID base; reader
	// scheduling is free-running — the check cannot false-positive on an
	// unlucky interleaving, every interleaving must still be some prefix.
	type obs struct {
		ids map[int64]bool
		err error
	}
	var (
		obsMu        sync.Mutex
		observations []obs
		wg           sync.WaitGroup
	)
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids, err := readEdgeIDs()
				obsMu.Lock()
				observations = append(observations, obs{ids: ids, err: err})
				obsMu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	stopped := false
	stopReaders := func() {
		if !stopped {
			stopped = true
			close(stop)
			wg.Wait()
		}
	}
	defer stopReaders()

	// The storm: a chain of fresh vertices, each wired to the previous by
	// a fresh edge. IDs sit far above anything the workload generators
	// produce, so the inserts are always valid.
	const stormLen = 10
	base := int64(9_000_000) + int64(rng.Intn(1000))*1000
	if _, err := e2.Execute(fmt.Sprintf("INSERT INTO %s VALUES %s", sc.vt,
		sc.vertexValues(datagen.Vertex{ID: base, Name: "iso0"}))); err != nil {
		return violationf("isolation", "storm vertex: %v", err)
	}
	stormEdges := make([]int64, 0, stormLen)
	for i := 1; i <= stormLen; i++ {
		vid := base + int64(i)
		if _, err := e2.Execute(fmt.Sprintf("INSERT INTO %s VALUES %s", sc.vt,
			sc.vertexValues(datagen.Vertex{ID: vid, Name: fmt.Sprintf("iso%d", i)}))); err != nil {
			return violationf("isolation", "storm vertex: %v", err)
		}
		eid := base + int64(i)
		if _, err := e2.Execute(fmt.Sprintf("INSERT INTO %s VALUES %s", sc.et,
			sc.edgeValues(datagen.Edge{ID: eid, Src: vid - 1, Dst: vid, Weight: 1, Sel: 50, Label: "x"}))); err != nil {
			return violationf("isolation", "storm edge: %v", err)
		}
		stormEdges = append(stormEdges, eid)
	}
	stopReaders()

	for _, o := range observations {
		if o.err != nil {
			return violationf("isolation", "concurrent reader: %v", o.err)
		}
		n := 0
		for _, eid := range stormEdges {
			if o.ids[eid] {
				n++
			}
		}
		for i, eid := range stormEdges {
			if o.ids[eid] != (i < n) {
				return violationf("isolation",
					"torn read: %d storm edges visible but edge #%d (%d) breaks the prefix", n, i, eid)
			}
		}
		for eid := range pre {
			if !o.ids[eid] {
				return violationf("isolation", "torn read: pre-storm edge %d missing mid-storm", eid)
			}
		}
		if len(o.ids) != len(pre)+n {
			return violationf("isolation",
				"torn read: observed %d edges, want %d pre-storm + %d storm prefix",
				len(o.ids), len(pre), n)
		}
	}

	// Quiesced close: the facet equals the full set and agrees with a
	// from-scratch rebuild of the scratch engine's topology.
	post, err := readEdgeIDs()
	if err != nil {
		return violationf("isolation", "quiesced %q: %v", edgeQ, err)
	}
	if len(post) != len(pre)+stormLen {
		return violationf("isolation", "quiesced facet has %d edges, want %d", len(post), len(pre)+stormLen)
	}
	live, err := e2.GraphTopology(sc.gv)
	if err != nil {
		return violationf("isolation", "live topology: %v", err)
	}
	rebuilt, err := e2.RebuildGraphView(sc.gv)
	if err != nil {
		return violationf("isolation", "rebuild: %v", err)
	}
	if a, b := graphSig(live, true), graphSig(rebuilt, true); a != b {
		return violationf("isolation",
			"post-storm topology diverged from rebuild: %s", diffSigs("live", a, "rebuilt", b))
	}
	return nil
}
