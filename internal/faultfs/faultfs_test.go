package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func openRW(t *testing.T, fs FS, path string) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestSeededScheduleIsDeterministic pins the contract every chaos test
// leans on: two injectors with the same seed and configuration fail the
// exact same operations in the exact same order.
func TestSeededScheduleIsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		fs := NewFaulty(OS, seed)
		fs.SetRate(OpWrite, 0.3)
		f := openRW(t, fs, filepath.Join(t.TempDir(), "f"))
		outcomes := make([]bool, 100)
		for i := range outcomes {
			_, err := f.Write([]byte("x"))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(7), run(7)
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged between identically-seeded runs", i)
		}
		if a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("rate 0.3 failed %d/%d ops — schedule not mixing", failed, len(a))
	}
}

// TestArmFiresAtExactOpCount checks the one-shot schedule counts every
// eligible op kind and fires exactly once.
func TestArmFiresAtExactOpCount(t *testing.T) {
	fs := NewFaulty(OS, 1)
	f := openRW(t, fs, filepath.Join(t.TempDir(), "f")) // op 1: open
	fs.Arm(2, syscall.EIO)                              // op 2 = sync ok, op 3 = truncate fails

	if err := f.Sync(); err != nil {
		t.Fatalf("op before the armed one failed: %v", err)
	}
	err := f.Truncate(0)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("armed op: err = %v, want EIO", err)
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Op != OpTruncate {
		t.Fatalf("injected error not attributed to truncate: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("one-shot fault fired twice: %v", err)
	}
	if got := fs.Ops(); got != 4 {
		t.Fatalf("Ops() = %d, want 4 (open, sync, truncate, sync)", got)
	}
	if got := fs.Count(OpSync); got != 2 {
		t.Fatalf("Count(sync) = %d, want 2", got)
	}
}

// TestFreeBudgetCutsWritesShort models the full disk: writes consume the
// budget, the one that does not fit persists only the remaining bytes
// and fails with ENOSPC, and Calm does not refill capacity.
func TestFreeBudgetCutsWritesShort(t *testing.T) {
	fs := NewFaulty(OS, 1)
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, fs, path)
	fs.SetFree(10)

	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("write within budget: n=%d err=%v", n, err)
	}
	if free, ok := fs.Free("."); !ok || free != 2 {
		t.Fatalf("Free() = %d,%v, want 2,true", free, ok)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("overflowing write: n=%d err=%v, want 2, ENOSPC", n, err)
	}
	fs.Calm() // faults clear; capacity does not come back
	if _, err := f.Write([]byte("z")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write after Calm on a full disk: %v, want ENOSPC", err)
	}
	fs.SetFree(-1) // disk replaced
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatalf("write with tracking disabled: %v", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil || string(data) != "12345678abz" {
		t.Fatalf("on-disk bytes %q, want the two accepted prefixes", data)
	}
}

// TestSilentShortWrite pins the pathological kernel behavior the WAL
// must defend against: fewer bytes than requested, nil error.
func TestSilentShortWrite(t *testing.T) {
	fs := NewFaulty(OS, 1)
	f := openRW(t, fs, filepath.Join(t.TempDir(), "f"))
	fs.ArmShortWrite(3, nil)
	if n, err := f.Write([]byte("abcdef")); n != 3 || err != nil {
		t.Fatalf("silent short write: n=%d err=%v, want 3, nil", n, err)
	}
	fs.ArmShortWrite(2, syscall.EIO)
	if n, err := f.Write([]byte("abcdef")); n != 2 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("errored short write: n=%d err=%v, want 2, EIO", n, err)
	}
	if n, err := f.Write([]byte("!")); n != 1 || err != nil {
		t.Fatalf("short-write arming not one-shot: n=%d err=%v", n, err)
	}
}

// TestPassthroughWhenCalm checks an unconfigured Faulty behaves exactly
// like the real filesystem, including rename and read-back.
func TestPassthroughWhenCalm(t *testing.T) {
	fs := NewFaulty(OS, 1)
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	f := openRW(t, fs, a)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(a, b); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	g := openRW(t, fs, b)
	data, err := io.ReadAll(g)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if free, ok := fs.Free(dir); ok && free <= 0 {
		t.Fatalf("real filesystem reported %d free bytes", free)
	}
	if err := fs.Remove(b); err != nil {
		t.Fatal(err)
	}
}
