//go:build linux

package faultfs

import "syscall"

// osFree asks the kernel how many bytes an unprivileged writer may still
// allocate under dir.
func osFree(dir string) (int64, bool) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, false
	}
	return int64(st.Bavail) * int64(st.Bsize), true
}
