// Package faultfs is the disk sibling of internal/faultnet: an injectable
// storage layer the WAL and checkpoint writer go through. Production code
// uses OS, a zero-cost passthrough to the real filesystem; the chaos and
// robustness tests wrap it in a Faulty that deterministically injects EIO,
// ENOSPC, short writes, fsync failures and latency from a seeded schedule,
// and that can model a disk running out of space with a free-byte budget.
//
// The surface is exactly the set of operations internal/wal performs:
// open, write (append), sync, truncate, rename (rotate + atomic
// checkpoint), remove, directory sync, and a free-space probe for the
// engine's disk-full watermarks.
package faultfs

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"
)

// Op names a fault-eligible file operation.
type Op string

const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
)

// File is the subset of *os.File the WAL uses.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem the WAL and checkpoint writer operate on.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory so a just-renamed entry survives power
	// loss. Best effort: some platforms reject directory fsync.
	SyncDir(dir string) error
	// Free reports the free bytes available under dir; ok is false when
	// the filesystem cannot say (the engine then skips its watermarks).
	Free(dir string) (free int64, ok bool)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFS) Free(dir string) (int64, bool) { return osFree(dir) }

// InjectedError is a fault produced by a Faulty filesystem. It unwraps to
// the underlying errno-style cause (syscall.EIO, syscall.ENOSPC, ...), so
// callers classify it exactly as they would a real disk error.
type InjectedError struct {
	Op  Op
	Err error
}

func (e *InjectedError) Error() string { return fmt.Sprintf("faultfs: injected %v on %s", e.Err, e.Op) }
func (e *InjectedError) Unwrap() error { return e.Err }

// Faulty wraps an FS with deterministic, seeded fault injection. All
// configuration methods are safe for concurrent use with file operations.
//
// Fault-eligible operations (open, write, sync, truncate, rename) are
// counted; Arm schedules a one-shot failure at an exact count, SetRate
// sets a steady per-op failure probability, and SetFree models a disk
// with a fixed budget of free bytes (writes beyond it are cut short with
// ENOSPC, exactly like a full filesystem).
type Faulty struct {
	inner FS

	mu      sync.Mutex
	rng     *rand.Rand
	rate    map[Op]float64 // steady failure probability per op
	errFor  map[Op]error   // errno injected for op (default syscall.EIO)
	latency time.Duration  // added to every eligible op

	// shortRate makes a failing write leave a random prefix of the data
	// behind before erroring — a torn write, not an all-or-nothing one.
	shortRate float64

	// One-shot schedule: fail the armAt-th eligible op from now (1 = the
	// very next) with armErr. armShort >= 0 additionally persists that
	// many bytes of a write before failing; with armErr == nil the write
	// is a *silent* short write (n < len(p), nil error).
	armAt    int64
	armErr   error
	armShort int

	// Free-byte budget; active when trackFree. Writes consume it.
	free      int64
	trackFree bool

	opCount int64
	counts  map[Op]int64
}

// NewFaulty wraps inner (nil means OS) with a seeded injector. With no
// rates, schedule, or budget configured it is a passthrough.
func NewFaulty(inner FS, seed int64) *Faulty {
	if inner == nil {
		inner = OS
	}
	return &Faulty{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		rate:     make(map[Op]float64),
		errFor:   make(map[Op]error),
		armShort: -1,
		counts:   make(map[Op]int64),
	}
}

// SetRate sets the steady failure probability of op (0 disables).
func (f *Faulty) SetRate(op Op, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rate[op] = p
}

// SetErr sets the errno injected for op's steady-rate failures
// (default syscall.EIO).
func (f *Faulty) SetErr(op Op, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errFor[op] = err
}

// SetShortRate makes the given fraction of *failing* writes leave a
// random prefix behind (a torn write) instead of failing cleanly.
func (f *Faulty) SetShortRate(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortRate = p
}

// SetLatency adds a fixed delay to every eligible operation.
func (f *Faulty) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Arm schedules a one-shot failure: the nth eligible operation from now
// (n = 1 means the very next) fails with err. It overrides rates for that
// operation.
func (f *Faulty) Arm(n int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armAt = f.opCount + n
	f.armErr = err
	f.armShort = -1
}

// ArmShortWrite schedules a one-shot short write: the next write persists
// only the first n bytes and returns (n, err). With err == nil this is a
// silent short write — the pathological case where the kernel reports
// success for fewer bytes than requested.
func (f *Faulty) ArmShortWrite(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armAt = 0 // matched by op kind, not count
	f.armErr = err
	f.armShort = n
}

// SetFree switches on the free-byte budget: writes consume it, and a
// write that does not fit is cut short with ENOSPC, like a full disk.
// Free(dir) reports the remaining budget. A negative n disables tracking.
func (f *Faulty) SetFree(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trackFree = n >= 0
	f.free = n
}

// Calm clears every fault: rates, one-shot schedule, latency, torn-write
// mode. The free-byte budget is capacity, not a fault, and stays.
func (f *Faulty) Calm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rate = make(map[Op]float64)
	f.latency = 0
	f.shortRate = 0
	f.armAt, f.armErr, f.armShort = 0, nil, -1
}

// Count returns how many operations of kind op have been attempted.
func (f *Faulty) Count(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Ops returns the total count of eligible operations attempted, the
// counter Arm schedules against.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opCount
}

// decide records one eligible op and returns the latency to apply and the
// injected error, if any. For writes, short >= 0 limits how many bytes to
// persist before returning err (err may be nil: silent short write).
func (f *Faulty) decide(op Op, n int) (delay time.Duration, short int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opCount++
	f.counts[op]++
	delay, short = f.latency, -1

	// One-shot schedule first: exact-count arm, or armed short write.
	if f.armShort >= 0 && op == OpWrite {
		short, err = f.armShort, f.armErr
		f.armAt, f.armErr, f.armShort = 0, nil, -1
		return delay, short, err
	}
	if f.armErr != nil && f.armAt == f.opCount {
		err = &InjectedError{Op: op, Err: f.armErr}
		f.armAt, f.armErr = 0, nil
		return delay, -1, err
	}

	// Steady seeded rate.
	if p := f.rate[op]; p > 0 && f.rng.Float64() < p {
		errno := f.errFor[op]
		if errno == nil {
			errno = syscall.EIO
		}
		if op == OpWrite && f.shortRate > 0 && f.rng.Float64() < f.shortRate {
			short = f.rng.Intn(n + 1) // torn: a prefix reaches the file
		}
		return delay, short, &InjectedError{Op: op, Err: errno}
	}

	// Free-byte budget: a write that does not fit is cut at the budget
	// with ENOSPC, exactly like a full filesystem.
	if op == OpWrite && f.trackFree && int64(n) > f.free {
		return delay, int(f.free), &InjectedError{Op: op, Err: syscall.ENOSPC}
	}
	return delay, -1, nil
}

// consume charges n written bytes against the free-byte budget.
func (f *Faulty) consume(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.trackFree {
		f.free -= int64(n)
		if f.free < 0 {
			f.free = 0
		}
	}
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	delay, _, err := f.decide(OpOpen, 0)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	delay, _, err := f.decide(OpRename, 0)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove passes through unfaulted: it only runs in error-cleanup paths,
// and keeping it out of the schedule keeps Arm's op indices stable.
func (f *Faulty) Remove(name string) error { return f.inner.Remove(name) }

// SyncDir passes through unfaulted (it is best-effort everywhere).
func (f *Faulty) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

// Free reports the remaining budget when one is set, else the inner
// filesystem's answer.
func (f *Faulty) Free(dir string) (int64, bool) {
	f.mu.Lock()
	tracking, free := f.trackFree, f.free
	f.mu.Unlock()
	if tracking {
		return free, true
	}
	return f.inner.Free(dir)
}

// faultyFile applies the schedule to per-fd operations.
type faultyFile struct {
	File
	fs *Faulty
}

func (w *faultyFile) Write(p []byte) (int, error) {
	delay, short, err := w.fs.decide(OpWrite, len(p))
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil || short >= 0 {
		n := 0
		if short > 0 {
			if short > len(p) {
				short = len(p)
			}
			n, _ = w.File.Write(p[:short])
			w.fs.consume(n)
		}
		return n, err
	}
	n, werr := w.File.Write(p)
	w.fs.consume(n)
	return n, werr
}

func (w *faultyFile) Sync() error {
	delay, _, err := w.fs.decide(OpSync, 0)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return err
	}
	return w.File.Sync()
}

func (w *faultyFile) Truncate(size int64) error {
	delay, _, err := w.fs.decide(OpTruncate, 0)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return err
	}
	return w.File.Truncate(size)
}
