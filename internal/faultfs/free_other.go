//go:build !linux

package faultfs

// osFree has no portable implementation off Linux; the engine skips its
// disk-full watermarks when the filesystem cannot report free space.
func osFree(dir string) (int64, bool) { return 0, false }
