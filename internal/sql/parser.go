package sql

import (
	"fmt"
	"strconv"
	"strings"

	"grfusion/internal/expr"
	"grfusion/internal/types"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	stmts, err := ParseAll(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(input string) ([]Statement, error) {
	stmts, _, err := ParseAllWithText(input)
	return stmts, err
}

// ParseAllWithText parses a semicolon-separated script and also returns
// each statement's source text (surrounding whitespace and the trailing
// ';' stripped), for callers that log or echo statements individually —
// the durable engine records each script statement in its WAL.
func ParseAllWithText(input string) ([]Statement, []string, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	var texts []string
	for {
		for p.acceptSymbol(";") {
		}
		if p.peek().Kind == TokEOF {
			break
		}
		start := p.peek().Pos
		s, err := p.parseStatement()
		if err != nil {
			return nil, nil, err
		}
		// The next token is the ';' (or EOF, whose Pos is len(input)):
		// everything between start and it is this statement's source.
		out = append(out, s)
		texts = append(texts, strings.TrimSpace(input[start:p.peek().Pos]))
		if !p.acceptSymbol(";") && p.peek().Kind != TokEOF {
			return nil, nil, p.errf("expected ';' or end of input, found %s", p.peek())
		}
	}
	return out, texts, nil
}

type parser struct {
	toks []Token
	i    int
	// params counts positional `?` parameters in lexical order.
	params int
}

func (p *parser) peek() Token  { return p.toks[p.i] }
func (p *parser) peek2() Token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) next() Token  { t := p.toks[p.i]; p.i++; return t }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parse error near offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s", s, p.peek())
	}
	return nil
}

// ident accepts an identifier. Keywords that commonly appear as attribute
// names in graph-view clauses (FROM, TO, etc.) are NOT accepted here; use
// identOrKeyword where the grammar allows them.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.i++
	return t.Text, nil
}

// identOrKeyword accepts an identifier or any keyword (used where SQL
// keywords may serve as names, e.g. FROM/TO/VERTEXES/EDGES attribute
// names and path member chains).
func (p *parser) identOrKeyword() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent && t.Kind != TokKeyword {
		return "", p.errf("expected name, found %s", t)
	}
	p.i++
	return t.Text, nil
}

func (p *parser) intLit() (int, error) {
	t := p.peek()
	if t.Kind != TokInt {
		return 0, p.errf("expected integer, found %s", t)
	}
	p.i++
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected a statement, found %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.i++
		analyze := p.acceptKeyword("ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		sel, ok := inner.(*Select)
		if !ok {
			return nil, p.errf("EXPLAIN supports SELECT statements only")
		}
		return &Explain{Query: sel, Analyze: analyze}, nil
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "TRUNCATE":
		p.i++
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &TruncateTable{Name: name}, nil
	case "SET":
		return p.parseSet()
	case "SHOW":
		p.i++
		switch {
		case p.acceptKeyword("TABLES"):
			return &Show{What: "TABLES"}, nil
		case p.acceptKeyword("GRAPH"):
			if err := p.expectKeyword("VIEWS"); err != nil {
				return nil, err
			}
			return &Show{What: "GRAPH VIEWS"}, nil
		case p.acceptKeyword("MATERIALIZED"):
			if err := p.expectKeyword("VIEWS"); err != nil {
				return nil, err
			}
			return &Show{What: "MATERIALIZED VIEWS"}, nil
		case p.acceptKeyword("METRICS"):
			return &Show{What: "METRICS"}, nil
		case p.acceptKeyword("HEALTH"):
			return &Show{What: "HEALTH"}, nil
		default:
			return nil, p.errf("expected TABLES, GRAPH VIEWS, MATERIALIZED VIEWS, METRICS or HEALTH after SHOW")
		}
	default:
		return nil, p.errf("unsupported statement %s", t)
	}
}

// parseSet parses SET <name> = <value>. The value is an integer (e.g.
// SET QUERY_TIMEOUT = 50) or, for string-valued settings, a bare word or
// string literal (e.g. SET WAL_FSYNC = ALWAYS). An integer may carry a
// leading '-' so out-of-range settings fail in the engine with a
// meaningful message rather than in the lexer.
func (p *parser) parseSet() (Statement, error) {
	p.i++ // SET
	name, err := p.identOrKeyword()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind == TokIdent || t.Kind == TokKeyword || t.Kind == TokString {
		p.i++
		return &Set{Name: strings.ToUpper(name), Str: t.Text, IsStr: true}, nil
	}
	neg := p.acceptSymbol("-")
	n, err := p.intLit()
	if err != nil {
		return nil, err
	}
	v := int64(n)
	if neg {
		v = -v
	}
	return &Set{Name: strings.ToUpper(name), Value: v}, nil
}

// --- DDL -------------------------------------------------------------------

var typeNames = map[string]types.Kind{
	"BIGINT": types.KindInt, "INT": types.KindInt, "INTEGER": types.KindInt,
	"DOUBLE": types.KindFloat, "FLOAT": types.KindFloat, "REAL": types.KindFloat,
	"VARCHAR": types.KindString, "STRING": types.KindString, "TEXT": types.KindString,
	"BOOLEAN": types.KindBool, "BOOL": types.KindBool,
}

func (p *parser) parseCreate() (Statement, error) {
	p.i++ // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(false)
	case p.acceptKeyword("ORDERED"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true)
	case p.acceptKeyword("MATERIALIZED"):
		return p.parseCreateMatView()
	case p.acceptKeyword("UNDIRECTED"):
		return p.parseCreateGraphView(false)
	case p.acceptKeyword("DIRECTED"):
		return p.parseCreateGraphView(true)
	case p.peek().Kind == TokKeyword && p.peek().Text == "GRAPH":
		return p.parseCreateGraphView(true) // directed by default
	default:
		return nil, p.errf("expected TABLE, INDEX or GRAPH VIEW after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PK = append(ct.PK, c)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			cname, err := p.ident()
			if err != nil {
				return nil, err
			}
			tname, err := p.identOrKeyword()
			if err != nil {
				return nil, err
			}
			kind, ok := typeNames[strings.ToUpper(tname)]
			if !ok {
				return nil, p.errf("unknown type %q", tname)
			}
			// Optional length, e.g. VARCHAR(32): parsed and ignored.
			if p.acceptSymbol("(") {
				if _, err := p.intLit(); err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			col := ColDef{Name: cname, Type: kind}
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				col.PK = true
				ct.PK = append(ct.PK, cname)
			}
			ct.Cols = append(ct.Cols, col)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

// parseCreateMatView parses the tail of CREATE MATERIALIZED VIEW.
func (p *parser) parseCreateMatView() (Statement, error) {
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	mv := &CreateMatView{Name: name}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		mv.Items = append(mv.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if mv.Base, err = p.ident(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		if mv.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return mv, nil
}

func (p *parser) parseCreateIndex(ordered bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table, Ordered: ordered}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Cols = append(ci.Cols, c)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseCreateGraphView(directed bool) (Statement, error) {
	if err := p.expectKeyword("GRAPH"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	gv := &CreateGraphView{Name: name, Directed: directed}
	if err := p.expectKeyword("VERTEXES"); err != nil {
		return nil, err
	}
	if gv.VertexAttrs, err = p.parseNameMaps(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if gv.VertexSource, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("EDGES"); err != nil {
		return nil, err
	}
	if gv.EdgeAttrs, err = p.parseNameMaps(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if gv.EdgeSource, err = p.ident(); err != nil {
		return nil, err
	}
	return gv, nil
}

// parseNameMaps parses (name = source, ...). Exposed names may be keywords
// (ID, FROM, TO).
func (p *parser) parseNameMaps() ([]NameMap, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out []NameMap
	for {
		n, err := p.identOrKeyword()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, NameMap{Name: n, Source: src})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.i++ // DROP
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKeyword("GRAPH"):
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropGraphView{Name: name}, nil
	case p.acceptKeyword("MATERIALIZED"):
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropMatView{Name: name}, nil
	default:
		return nil, p.errf("expected TABLE, GRAPH VIEW or MATERIALIZED VIEW after DROP")
	}
}

// --- DML -------------------------------------------------------------------

func (p *parser) parseInsert() (Statement, error) {
	p.i++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptSymbol("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.i++ // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, SetClause{Col: c, E: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		if u.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.i++ // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		if d.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// --- SELECT ----------------------------------------------------------------

func (p *parser) parseSelect() (Statement, error) {
	p.i++ // SELECT
	s := &Select{Top: -1, Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		s.Distinct = true
	}
	if p.acceptKeyword("TOP") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		s.Top = n
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	// FROM is optional: constant SELECTs evaluate over a singleton row.
	var joinConds []expr.Expr
	if p.acceptKeyword("FROM") {
		for {
			item, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, item)
			// Explicit joins are desugared into a cross product + predicates.
			for {
				if p.acceptKeyword("INNER") {
					if err := p.expectKeyword("JOIN"); err != nil {
						return nil, err
					}
				} else if !p.acceptKeyword("JOIN") {
					break
				}
				item, err := p.parseFromItem()
				if err != nil {
					return nil, err
				}
				s.From = append(s.From, item)
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				joinConds = append(joinConds, cond)
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	var err error
	if p.acceptKeyword("WHERE") {
		if s.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if len(joinConds) > 0 {
		conj := expr.JoinConjuncts(joinConds)
		if s.Where == nil {
			s.Where = conj
		} else {
			s.Where = &expr.BinaryExpr{Op: expr.OpAnd, L: conj, R: s.Where}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		if s.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{E: e}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if s.Limit, err = p.intLit(); err != nil {
			return nil, err
		}
		if p.acceptKeyword("OFFSET") {
			if s.Offset, err = p.intLit(); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident.* (lookahead).
	if p.peek().Kind == TokIdent && p.peek2().Kind == TokSymbol && p.peek2().Text == "." {
		if p.i+2 < len(p.toks) && p.toks[p.i+2].Kind == TokSymbol && p.toks[p.i+2].Text == "*" {
			q := p.next().Text
			p.next() // .
			p.next() // *
			return SelectItem{Star: true, StarQual: q}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		if item.Alias, err = p.ident(); err != nil {
			return SelectItem{}, err
		}
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	name, err := p.ident()
	if err != nil {
		return FromItem{}, err
	}
	item := FromItem{Name: name}
	if p.acceptSymbol(".") {
		switch {
		case p.acceptKeyword("VERTEXES"):
			item.Member = MemberVertexes
		case p.acceptKeyword("EDGES"):
			item.Member = MemberEdges
		case p.acceptKeyword("PATHS"):
			item.Member = MemberPaths
		case p.peek().Kind == TokIdent && p.peek2().Kind == TokSymbol && p.peek2().Text == "(":
			// An analytics table-valued function: GV.PAGERANK(0.85, 20).
			// The function names are deliberately not keywords, so they
			// stay usable as identifiers everywhere else.
			item.Member = MemberAnalytics
			item.Func = p.next().Text
			p.next() // consume "("
			if !p.acceptSymbol(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return FromItem{}, err
					}
					item.Args = append(item.Args, arg)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return FromItem{}, err
				}
			}
		default:
			return FromItem{}, p.errf("expected VERTEXES, EDGES, PATHS or an analytics function after %q.", name)
		}
	}
	if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	if p.acceptKeyword("HINT") {
		if item.Member != MemberPaths {
			return FromItem{}, p.errf("HINT is only valid on a PATHS item")
		}
		if err := p.expectSymbol("("); err != nil {
			return FromItem{}, err
		}
		for {
			kind, err := p.ident()
			if err != nil {
				return FromItem{}, err
			}
			switch strings.ToUpper(kind) {
			case "DFS":
				item.Hint.Kind = HintDFS
			case "BFS":
				item.Hint.Kind = HintBFS
			case "ALLPATHS":
				item.Hint.AllPaths = true
			case "SHORTESTPATH":
				item.Hint.Kind = HintShortestPath
				if err := p.expectSymbol("("); err != nil {
					return FromItem{}, err
				}
				attr, err := p.identOrKeyword()
				if err != nil {
					return FromItem{}, err
				}
				item.Hint.WeightAttr = attr
				if err := p.expectSymbol(")"); err != nil {
					return FromItem{}, err
				}
			default:
				return FromItem{}, p.errf("unknown traversal hint %q", kind)
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return FromItem{}, err
		}
	}
	return item, nil
}

// --- Expressions -----------------------------------------------------------

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.BinaryExpr{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.BinaryExpr{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.UnaryExpr{Op: expr.OpNot, E: e}, nil
	}
	return p.parseComparison()
}

var compareOps = map[string]expr.BinOp{
	"=": expr.OpEq, "<>": expr.OpNe, "!=": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokSymbol {
		if op, ok := compareOps[t.Text]; ok {
			p.i++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.BinaryExpr{Op: op, L: l, R: r}, nil
		}
		return l, nil
	}
	if t.Kind != TokKeyword {
		return l, nil
	}
	neg := false
	if t.Text == "NOT" && p.peek2().Kind == TokKeyword &&
		(p.peek2().Text == "IN" || p.peek2().Text == "LIKE" || p.peek2().Text == "BETWEEN") {
		p.i++
		neg = true
		t = p.peek()
	}
	switch t.Text {
	case "LIKE":
		p.i++
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e expr.Expr = &expr.BinaryExpr{Op: expr.OpLike, L: l, R: r}
		if neg {
			e = &expr.UnaryExpr{Op: expr.OpNot, E: e}
		}
		return e, nil
	case "IN":
		p.i++
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &expr.InExpr{E: l, Neg: neg}
		for {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, x)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	case "BETWEEN":
		p.i++
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e expr.Expr = &expr.BinaryExpr{Op: expr.OpAnd,
			L: &expr.BinaryExpr{Op: expr.OpGe, L: l, R: lo},
			R: &expr.BinaryExpr{Op: expr.OpLe, L: l.Clone(), R: hi}}
		if neg {
			e = &expr.UnaryExpr{Op: expr.OpNot, E: e}
		}
		return e, nil
	case "IS":
		p.i++
		n := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNullExpr{E: l, Neg: n}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "+" && t.Text != "-") {
			return l, nil
		}
		p.i++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := expr.OpAdd
		if t.Text == "-" {
			op = expr.OpSub
		}
		l = &expr.BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return l, nil
		}
		p.i++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := expr.OpMul
		switch t.Text {
		case "/":
			op = expr.OpDiv
		case "%":
			op = expr.OpMod
		}
		l = &expr.BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a negated literal for nicer plans.
		if lit, ok := e.(*expr.Literal); ok && lit.Val.IsNumeric() {
			if lit.Val.Kind == types.KindInt {
				return &expr.Literal{Val: types.NewInt(-lit.Val.I)}, nil
			}
			return &expr.Literal{Val: types.NewFloat(-lit.Val.F)}, nil
		}
		return &expr.UnaryExpr{Op: expr.OpNeg, E: e}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.i++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return &expr.Literal{Val: types.NewInt(n)}, nil
	case TokFloat:
		p.i++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", t.Text)
		}
		return &expr.Literal{Val: types.NewFloat(f)}, nil
	case TokString:
		p.i++
		return &expr.Literal{Val: types.NewString(t.Text)}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "?" {
			p.i++
			prm := &expr.Param{Idx: p.params}
			p.params++
			return prm, nil
		}
		return nil, p.errf("unexpected %s in expression", t)
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.i++
			return &expr.Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.i++
			return &expr.Literal{Val: types.NewBool(false)}, nil
		case "NULL":
			p.i++
			return &expr.Literal{Val: types.Null()}, nil
		case "CASE":
			return p.parseCase()
		case "EDGES", "VERTEXES":
			// Allow a reference chain beginning with these (rare but legal
			// as column names in user tables).
			return p.parseRefChain()
		}
		return nil, p.errf("unexpected %s in expression", t)
	case TokIdent:
		// Function call?
		if p.peek2().Kind == TokSymbol && p.peek2().Text == "(" {
			return p.parseFuncCall()
		}
		return p.parseRefChain()
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}

func (p *parser) parseCase() (expr.Expr, error) {
	p.i++ // CASE
	c := &expr.CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expr.CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseFuncCall() (expr.Expr, error) {
	name := p.next().Text
	p.next() // (
	f := &expr.FuncCall{Name: name}
	if p.acceptSymbol("*") {
		f.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptSymbol(")") {
		return nil, p.errf("function %s requires arguments", name)
	}
	if p.acceptKeyword("DISTINCT") {
		f.Distinct = true
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, a)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return f, nil
}

// parseRefChain parses a dotted, optionally subscripted reference:
// U.Job, PS.Length, PS.Edges[0..*].StartDate, PS.Edges[2].EndVertex.
func (p *parser) parseRefChain() (expr.Expr, error) {
	r := &expr.RawRef{}
	for {
		name, err := p.identOrKeyword()
		if err != nil {
			return nil, err
		}
		part := expr.RefPart{Name: name}
		if p.acceptSymbol("[") {
			part.HasIndex = true
			start, err := p.intLit()
			if err != nil {
				return nil, err
			}
			part.Start, part.End = start, start
			if p.acceptSymbol("..") {
				if p.acceptSymbol("*") {
					part.Wildcard = true
					part.End = -1
				} else {
					end, err := p.intLit()
					if err != nil {
						return nil, err
					}
					part.End = end
				}
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
		}
		r.Parts = append(r.Parts, part)
		if !p.acceptSymbol(".") {
			break
		}
	}
	return r, nil
}
