package sql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that accepted statements
// are internally consistent. Run with `go test -fuzz=FuzzParse` for a
// longer exploration; the seed corpus runs on every `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT 1`,
		`SELECT * FROM t WHERE a = 1 AND b < 'x' ORDER BY c DESC LIMIT 3 OFFSET 1`,
		`SELECT DISTINCT TOP 2 a AS x, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1`,
		`SELECT PS.EndVertex.name FROM Users U, G.Paths PS HINT(BFS, ALLPATHS)
		 WHERE PS.StartVertex.Id = U.uid AND PS.Length = 2 AND PS.Edges[0..*].w > ?`,
		`SELECT TOP 1 PS FROM G.Paths PS HINT(SHORTESTPATH(w)) WHERE PS.StartVertex.Id = 1`,
		`CREATE TABLE t (a BIGINT PRIMARY KEY, b VARCHAR(10), PRIMARY KEY (a))`,
		`CREATE UNDIRECTED GRAPH VIEW g VERTEXES(ID=a, n=b) FROM v EDGES(ID=c, FROM=d, TO=e) FROM w`,
		`CREATE MATERIALIZED VIEW mv AS SELECT a, b AS c FROM t WHERE a IN (1, 2, 3)`,
		`INSERT INTO t (a, b) VALUES (1, 'x''y'), (-2, NULL)`,
		`UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 2 OR c IS NOT NULL`,
		`DELETE FROM t WHERE a NOT LIKE '%x_'`,
		`EXPLAIN SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t`,
		`SHOW MATERIALIZED VIEWS; DROP GRAPH VIEW g; TRUNCATE TABLE t;`,
		`SELECT P.Edges[2].EndVertex, SUM(P.Edges.w) FROM G.Paths P WHERE P.Edges[0..3].l = 'A'`,
		"SELECT a -- comment\nFROM t",
		`SELECT '' FROM t WHERE a <> b AND NOT (c >= d)`,
		`[0..*] .. ? ; 'unterminated`,
		`SELECT 1.5e10`, // bad float form in this dialect
		// Graph-SQL shapes the differential oracle exercises (a checked-in
		// corpus copy lives in testdata/fuzz/FuzzParse).
		`CREATE DIRECTED GRAPH VIEW Soc VERTEXES(ID = nid, name = title) FROM Person
		 EDGES(ID = rid, FROM = head, TO = tail, w = cost, sel = pct, lbl = kind) FROM Knows`,
		`SELECT PS.PathString FROM G.Paths PS
		 WHERE PS.StartVertex.Id = 3 AND PS.EndVertex.Id = 9 AND PS.Length <= 4
		 AND PS.Edges[0..*].sel < 25 LIMIT 1`,
		`SELECT TOP 1 SUM(PS.Edges.w) FROM Net.Paths PS HINT(SHORTESTPATH(w))
		 WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 7`,
		`SELECT COUNT(P) FROM G.Paths P WHERE P.Length = 3
		 AND P.Edges[0..*].sel < 30 AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`,
		`SELECT VS.Id, VS.name, VS.FanOut, VS.FanIn FROM G.Vertexes VS`,
		`SELECT COUNT(*) FROM G.Paths PS HINT(BFS) WHERE PS.Length <= 2 AND PS.Edges[0..*].sel < 80`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseAll(input)
		if err != nil {
			return // rejections are fine; panics are not
		}
		for _, s := range stmts {
			if s == nil {
				t.Fatalf("nil statement accepted from %q", input)
			}
			// Accepted SELECTs must stringify their expressions without
			// panicking (Explain and snapshots rely on it).
			if sel, ok := s.(*Select); ok {
				for _, it := range sel.Items {
					if it.Expr != nil {
						_ = it.Expr.String()
						_ = it.Expr.Clone()
					}
				}
				if sel.Where != nil {
					if !strings.Contains(sel.Where.String(), "") {
						t.Fatal("unreachable")
					}
				}
			}
		}
	})
}
