package sql

import (
	"grfusion/internal/expr"
	"grfusion/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name string
	Type types.Kind
	PK   bool
}

// CreateTable is CREATE TABLE name (col type [PRIMARY KEY], ...,
// [PRIMARY KEY (cols)]).
type CreateTable struct {
	Name string
	Cols []ColDef
	// PK lists the primary-key column names (possibly from a table-level
	// PRIMARY KEY clause); empty for keyless tables.
	PK []string
}

func (*CreateTable) stmt() {}

// CreateIndex is CREATE [ORDERED] INDEX name ON table (cols). The default
// index is a hash index; ORDERED builds a sorted index for range scans.
type CreateIndex struct {
	Name    string
	Table   string
	Cols    []string
	Ordered bool
}

func (*CreateIndex) stmt() {}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

// TruncateTable is TRUNCATE TABLE name.
type TruncateTable struct{ Name string }

func (*TruncateTable) stmt() {}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string // empty means schema order
	Rows  [][]expr.Expr
}

func (*Insert) stmt() {}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col string
	E   expr.Expr
}

// Update is UPDATE table SET ... [WHERE ...].
type Update struct {
	Table string
	Sets  []SetClause
	Where expr.Expr
}

func (*Update) stmt() {}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where expr.Expr
}

func (*Delete) stmt() {}

// Member selects which face of a graph view a FROM item exposes.
type Member uint8

// Graph-view members (§4).
const (
	MemberNone Member = iota // a plain table
	MemberVertexes
	MemberEdges
	MemberPaths
	// MemberAnalytics is a whole-graph analytics table-valued function
	// over the view, e.g. GV.PAGERANK(0.85, 20); Func and Args carry the
	// call.
	MemberAnalytics
)

// HintKind selects a physical traversal operator (§6.3).
type HintKind uint8

// Traversal hints.
const (
	HintNone HintKind = iota
	HintDFS
	HintBFS
	HintShortestPath
)

// TraversalHint is HINT(...) attached to a PATHS FROM item. Several hints
// may be combined with commas: HINT(DFS, ALLPATHS).
type TraversalHint struct {
	Kind       HintKind
	WeightAttr string // for HintShortestPath
	// AllPaths forces per-path visited semantics (enumerate all simple
	// paths) instead of the default visit-once exploration.
	AllPaths bool
}

// FromItem is one entry of a FROM clause: a table, a graph view member, or
// an analytics table-valued function over a graph view, with an optional
// alias and traversal hint.
type FromItem struct {
	Name   string
	Member Member
	Alias  string
	Hint   TraversalHint
	// Func and Args are set for MemberAnalytics: the function name as
	// written and its constant arguments.
	Func string
	Args []expr.Expr
}

// AliasOrName returns the range-variable name the item binds.
func (f FromItem) AliasOrName() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Name
}

// SelectItem is one projection: an expression with an optional alias, or a
// star (possibly qualified: t.*).
type SelectItem struct {
	Expr     expr.Expr
	Alias    string
	Star     bool
	StarQual string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    expr.Expr
	Desc bool
}

// Select is a SELECT statement, possibly cross-model.
type Select struct {
	Distinct bool
	// Top is the TOP n prefix (-1 if absent). TOP and LIMIT are synonyms;
	// if both are present the smaller wins.
	Top   int
	Items []SelectItem
	From  []FromItem
	Where expr.Expr
	// GroupBy lists grouping expressions; nil with aggregates in Items
	// means one global group.
	GroupBy []expr.Expr
	Having  expr.Expr
	OrderBy []OrderItem
	Limit   int // -1 if absent
	Offset  int // 0 if absent
}

func (*Select) stmt() {}

// NameMap is one `exposed = source` pair in a graph view clause.
type NameMap struct {
	Name   string
	Source string
}

// CreateGraphView is the paper's CREATE GRAPH VIEW statement (Listing 1).
type CreateGraphView struct {
	Name         string
	Directed     bool
	VertexAttrs  []NameMap
	VertexSource string
	EdgeAttrs    []NameMap
	EdgeSource   string
}

func (*CreateGraphView) stmt() {}

// CreateMatView is CREATE MATERIALIZED VIEW name AS SELECT items FROM
// base [WHERE pred] — a single-table projection/selection, materialized
// and incrementally maintained, usable as a graph-view relational source
// (§2, §3.3.2 of the paper).
type CreateMatView struct {
	Name  string
	Items []SelectItem
	Base  string
	Where expr.Expr
}

func (*CreateMatView) stmt() {}

// DropMatView is DROP MATERIALIZED VIEW name.
type DropMatView struct{ Name string }

func (*DropMatView) stmt() {}

// DropGraphView is DROP GRAPH VIEW name.
type DropGraphView struct{ Name string }

func (*DropGraphView) stmt() {}

// Explain is EXPLAIN [ANALYZE] <select>: the engine returns the physical
// plan as one row of text per plan line. With Analyze set the statement is
// executed and every plan line is annotated with actual row counts and
// timings (the profiling mode of Neo4j's PROFILE and Postgres's EXPLAIN
// ANALYZE).
type Explain struct {
	Query   *Select
	Analyze bool
}

func (*Explain) stmt() {}

// Show is SHOW TABLES / SHOW GRAPH VIEWS / SHOW METRICS, a small
// introspection aid for the interactive shell.
type Show struct {
	// What is "TABLES", "GRAPH VIEWS", "MATERIALIZED VIEWS", "METRICS"
	// or "HEALTH".
	What string
}

func (*Show) stmt() {}

// Set is SET <name> = <int>, an engine tunable. The engine currently
// accepts QUERY_TIMEOUT (a per-statement deadline in milliseconds; 0
// disables it), mirroring the per-statement timeouts of the paper's host
// system (VoltDB), and SLOW_QUERY (the slow-query-log threshold in
// milliseconds; 0 disables logging).
type Set struct {
	// Name is the upper-cased tunable name.
	Name string
	// Value is the integer value (when IsStr is false).
	Value int64
	// Str is the value of a string-valued setting, e.g.
	// SET WAL_FSYNC = ALWAYS (an identifier or a string literal).
	Str   string
	IsStr bool
}

func (*Set) stmt() {}
