package sql

import (
	"testing"

	"grfusion/internal/expr"
)

// TestParseAnalyticsTVF covers the FROM-clause analytics table-valued
// function syntax: GV.FN(args...) with optional alias.
func TestParseAnalyticsTVF(t *testing.T) {
	s := parseSelect(t, `SELECT * FROM GV.PAGERANK(0.85, 20) PR`)
	if len(s.From) != 1 {
		t.Fatalf("from: %+v", s.From)
	}
	fi := s.From[0]
	if fi.Member != MemberAnalytics || fi.Name != "GV" || fi.Func != "PAGERANK" || fi.Alias != "PR" {
		t.Fatalf("item: %+v", fi)
	}
	if len(fi.Args) != 2 {
		t.Fatalf("args: %+v", fi.Args)
	}
	if lit, ok := fi.Args[0].(*expr.Literal); !ok || lit.Val.F != 0.85 {
		t.Fatalf("arg0: %+v", fi.Args[0])
	}
	if lit, ok := fi.Args[1].(*expr.Literal); !ok || lit.Val.I != 20 {
		t.Fatalf("arg1: %+v", fi.Args[1])
	}

	// Zero-argument call, no alias: the range variable defaults to the view
	// name.
	s = parseSelect(t, `SELECT * FROM GV.CONNECTED_COMPONENTS()`)
	fi = s.From[0]
	if fi.Member != MemberAnalytics || fi.Func != "CONNECTED_COMPONENTS" || len(fi.Args) != 0 {
		t.Fatalf("item: %+v", fi)
	}
	if fi.AliasOrName() != "GV" {
		t.Fatalf("alias: %q", fi.AliasOrName())
	}

	// Parameters are valid arguments (prepared statements).
	s = parseSelect(t, `SELECT * FROM GV.LABEL_PROPAGATION(?) LP`)
	fi = s.From[0]
	if len(fi.Args) != 1 {
		t.Fatalf("args: %+v", fi.Args)
	}
	if _, ok := fi.Args[0].(*expr.Param); !ok {
		t.Fatalf("arg0: %+v", fi.Args[0])
	}

	// TVFs mix with tables and other members in one FROM list.
	s = parseSelect(t, `SELECT U.lname, D.out_degree
		FROM Users U, GV.DEGREE_CENTRALITY() D
		WHERE U.uid = D.ID`)
	if len(s.From) != 2 || s.From[1].Member != MemberAnalytics || s.From[1].Func != "DEGREE_CENTRALITY" {
		t.Fatalf("from: %+v", s.From)
	}
}

func TestParseAnalyticsTVFErrors(t *testing.T) {
	for _, in := range []string{
		`SELECT * FROM GV.PAGERANK(`,            // unterminated args
		`SELECT * FROM GV.PAGERANK(0.85,)`,      // trailing comma
		`SELECT * FROM GV.PAGERANK(0.85 20)`,    // missing comma
		`SELECT * FROM GV.BOGUS`,                // member is not VERTEXES/EDGES/PATHS and not a call
		`SELECT * FROM GV.PAGERANK() HINT(DFS)`, // hints only apply to PATHS
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("%s: expected parse error", in)
		}
	}
}
