// Package sql implements the GRFusion SQL dialect: a lexer, a
// recursive-descent parser, and the statement AST. The dialect is the SQL
// subset the paper exercises, extended with the paper's graph constructs:
// CREATE [UNDIRECTED|DIRECTED] GRAPH VIEW (§3.1), the GV.PATHS /
// GV.VERTEXES / GV.EDGES FROM-clause members and path subscripts (§4), and
// traversal hints (§6.3).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexed tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokSymbol // operators and punctuation
)

// Token is one lexical token with its position for error messages.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep their spelling
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords lists reserved words, upper-cased.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "TOP": true, "DISTINCT": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"NULL": true, "LIKE": true, "BETWEEN": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "ORDERED": true,
	"DROP": true, "TRUNCATE": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"UNDIRECTED": true, "DIRECTED": true, "GRAPH": true, "VIEW": true,
	"VERTEXES": true, "EDGES": true, "PATHS": true,
	"PRIMARY": true, "KEY": true, "ON": true,
	"HINT": true, "JOIN": true, "INNER": true,
	"TRUE": true, "FALSE": true,
	"SHOW": true, "TABLES": true, "VIEWS": true,
	"EXPLAIN": true, "MATERIALIZED": true,
	"ANALYZE": true, "METRICS": true, "HEALTH": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// unexpected characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			if up := strings.ToUpper(word); keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9':
			start := i
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			// A '.' followed by a digit continues a float; '..' is the
			// range operator and terminates the number.
			if i+1 < n && input[i] == '.' && input[i+1] != '.' && input[i+1] >= '0' && input[i+1] <= '9' {
				i++
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
				toks = append(toks, Token{Kind: TokFloat, Text: input[start:i], Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokInt, Text: input[start:i], Pos: start})
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "..":
				toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';', '[', ']', '?':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
