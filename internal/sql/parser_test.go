package sql

import (
	"strings"
	"testing"

	"grfusion/internal/expr"
	"grfusion/internal/types"
)

func parseOne(t *testing.T, in string) Statement {
	t.Helper()
	s, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return s
}

func parseSelect(t *testing.T, in string) *Select {
	t.Helper()
	s, ok := parseOne(t, in).(*Select)
	if !ok {
		t.Fatalf("not a SELECT: %q", in)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a1, 'it''s', 1.5, 2 .. [0..*] <> <= -- comment\nx")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a1", ",", "it's", ",", "1.5", ",", "2", "..",
		"[", "0", "..", "*", "]", "<>", "<=", "x"}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (%v)", i, texts[i], want[i], texts)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("a ~ b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestNumberVsRange(t *testing.T) {
	toks, _ := Lex("1..3 1.5 2")
	if toks[0].Kind != TokInt || toks[1].Text != ".." || toks[2].Kind != TokInt {
		t.Errorf("1..3 lexed wrong: %v", toks[:3])
	}
	if toks[3].Kind != TokFloat {
		t.Errorf("1.5 lexed as %v", toks[3])
	}
}

func TestCreateTableParse(t *testing.T) {
	s := parseOne(t, `CREATE TABLE Users (uid BIGINT PRIMARY KEY, lname VARCHAR(30), dob VARCHAR, score DOUBLE, ok BOOLEAN)`)
	ct := s.(*CreateTable)
	if ct.Name != "Users" || len(ct.Cols) != 5 {
		t.Fatalf("%+v", ct)
	}
	if ct.Cols[0].Type != types.KindInt || !ct.Cols[0].PK {
		t.Errorf("col0: %+v", ct.Cols[0])
	}
	if ct.Cols[1].Type != types.KindString || ct.Cols[3].Type != types.KindFloat || ct.Cols[4].Type != types.KindBool {
		t.Errorf("types wrong: %+v", ct.Cols)
	}
	if len(ct.PK) != 1 || ct.PK[0] != "uid" {
		t.Errorf("pk: %v", ct.PK)
	}
}

func TestCreateTableTablePK(t *testing.T) {
	ct := parseOne(t, `CREATE TABLE t (a BIGINT, b BIGINT, PRIMARY KEY (a, b))`).(*CreateTable)
	if len(ct.PK) != 2 || ct.PK[0] != "a" || ct.PK[1] != "b" {
		t.Errorf("pk: %v", ct.PK)
	}
}

func TestCreateIndexParse(t *testing.T) {
	ci := parseOne(t, `CREATE INDEX ix ON t (a, b)`).(*CreateIndex)
	if ci.Ordered || ci.Table != "t" || len(ci.Cols) != 2 {
		t.Errorf("%+v", ci)
	}
	ci = parseOne(t, `CREATE ORDERED INDEX ix ON t (a)`).(*CreateIndex)
	if !ci.Ordered {
		t.Error("ORDERED lost")
	}
}

// Listing 1 of the paper.
func TestCreateGraphViewListing1(t *testing.T) {
	stmt := parseOne(t, `
		CREATE UNDIRECTED GRAPH VIEW SocialNetwork
		VERTEXES(ID = uid, lstname = lname, birthdate = dob)
		FROM Users
		EDGES(ID = relid, FROM = uid1, TO = uid2, sdate = startdate, relative = isrelative)
		FROM Relationships`)
	gv := stmt.(*CreateGraphView)
	if gv.Name != "SocialNetwork" || gv.Directed {
		t.Fatalf("%+v", gv)
	}
	if gv.VertexSource != "Users" || gv.EdgeSource != "Relationships" {
		t.Errorf("sources: %q %q", gv.VertexSource, gv.EdgeSource)
	}
	if len(gv.VertexAttrs) != 3 || gv.VertexAttrs[0].Name != "ID" || gv.VertexAttrs[1].Source != "lname" {
		t.Errorf("vertex attrs: %+v", gv.VertexAttrs)
	}
	if len(gv.EdgeAttrs) != 5 || gv.EdgeAttrs[1].Name != "FROM" || gv.EdgeAttrs[2].Name != "TO" {
		t.Errorf("edge attrs: %+v", gv.EdgeAttrs)
	}
}

func TestCreateDirectedGraphViewDefault(t *testing.T) {
	gv := parseOne(t, `CREATE GRAPH VIEW g VERTEXES(ID=a) FROM v EDGES(ID=b, FROM=c, TO=d) FROM e`).(*CreateGraphView)
	if !gv.Directed {
		t.Error("default must be directed")
	}
	gv = parseOne(t, `CREATE DIRECTED GRAPH VIEW g VERTEXES(ID=a) FROM v EDGES(ID=b, FROM=c, TO=d) FROM e`).(*CreateGraphView)
	if !gv.Directed {
		t.Error("DIRECTED lost")
	}
}

func TestDropStatements(t *testing.T) {
	if d := parseOne(t, `DROP TABLE t`).(*DropTable); d.Name != "t" {
		t.Errorf("%+v", d)
	}
	if d := parseOne(t, `DROP GRAPH VIEW g`).(*DropGraphView); d.Name != "g" {
		t.Errorf("%+v", d)
	}
	if tr := parseOne(t, `TRUNCATE TABLE t`).(*TruncateTable); tr.Name != "t" {
		t.Errorf("%+v", tr)
	}
}

func TestInsertParse(t *testing.T) {
	ins := parseOne(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (-2, NULL)`).(*Insert)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	if lit := ins.Rows[1][0].(*expr.Literal); lit.Val.I != -2 {
		t.Errorf("negative literal: %v", lit.Val)
	}
	ins = parseOne(t, `INSERT INTO t VALUES (1)`).(*Insert)
	if ins.Cols != nil || len(ins.Rows) != 1 {
		t.Errorf("%+v", ins)
	}
}

func TestUpdateDeleteParse(t *testing.T) {
	u := parseOne(t, `UPDATE t SET a = a + 1, b = 'x' WHERE a > 2`).(*Update)
	if u.Table != "t" || len(u.Sets) != 2 || u.Where == nil {
		t.Fatalf("%+v", u)
	}
	d := parseOne(t, `DELETE FROM t WHERE a = 1`).(*Delete)
	if d.Table != "t" || d.Where == nil {
		t.Fatalf("%+v", d)
	}
	d = parseOne(t, `DELETE FROM t`).(*Delete)
	if d.Where != nil {
		t.Error("spurious where")
	}
}

func TestSelectBasics(t *testing.T) {
	s := parseSelect(t, `SELECT DISTINCT a, b AS bb, t.* FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC, b LIMIT 5 OFFSET 2`)
	if !s.Distinct || len(s.Items) != 3 || s.Items[1].Alias != "bb" {
		t.Fatalf("%+v", s)
	}
	if !s.Items[2].Star || s.Items[2].StarQual != "t" {
		t.Errorf("qualified star: %+v", s.Items[2])
	}
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Error("group/having lost")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order: %+v", s.OrderBy)
	}
	if s.Limit != 5 || s.Offset != 2 {
		t.Errorf("limit/offset: %d %d", s.Limit, s.Offset)
	}
}

func TestSelectStar(t *testing.T) {
	s := parseSelect(t, `SELECT * FROM t`)
	if len(s.Items) != 1 || !s.Items[0].Star || s.Items[0].StarQual != "" {
		t.Fatalf("%+v", s.Items)
	}
}

func TestJoinDesugaring(t *testing.T) {
	s := parseSelect(t, `SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y WHERE a.z = 1`)
	if len(s.From) != 3 {
		t.Fatalf("from: %+v", s.From)
	}
	// Where must contain all three conjuncts.
	conj := expr.SplitConjuncts(s.Where)
	if len(conj) != 3 {
		t.Errorf("conjuncts: %d (%s)", len(conj), s.Where)
	}
}

// Listing 2 of the paper (friends-of-friends).
func TestPathsQueryListing2(t *testing.T) {
	s := parseSelect(t, `
		SELECT PS.EndVertex.lstName
		FROM Users U, SocialNetwork.Paths PS
		WHERE U.Job = 'Lawyer' AND PS.StartVertex.Id = U.uId
		  AND PS.Length = 2 AND PS.Edges[0..*].StartDate > '2000-01-01'`)
	if len(s.From) != 2 {
		t.Fatalf("from: %+v", s.From)
	}
	if s.From[1].Member != MemberPaths || s.From[1].Alias != "PS" || s.From[1].Name != "SocialNetwork" {
		t.Errorf("paths item: %+v", s.From[1])
	}
	conj := expr.SplitConjuncts(s.Where)
	if len(conj) != 4 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
	// The wildcard range must round-trip.
	found := false
	expr.Walk(s.Where, func(e expr.Expr) bool {
		if r, ok := e.(*expr.RawRef); ok && strings.Contains(r.String(), "[0..*]") {
			found = true
		}
		return true
	})
	if !found {
		t.Error("wildcard subscript lost")
	}
}

// Listing 3 of the paper (reachability with IN).
func TestReachabilityListing3(t *testing.T) {
	s := parseSelect(t, `
		SELECT PS.PathString
		FROM Proteins Pr1, Proteins Pr2, BioNetwork.Paths PS
		WHERE Pr1.Name = 'Protein X' AND Pr2.Name = 'Protein Y'
		  AND PS.StartVertex.Id = Pr1.Id AND PS.EndVertex.Id = Pr2.Id
		  AND PS.Edges[0..*].Type IN ('covalent', 'stable')
		LIMIT 1`)
	if s.Limit != 1 || len(s.From) != 3 {
		t.Fatalf("%+v", s)
	}
	var in *expr.InExpr
	expr.Walk(s.Where, func(e expr.Expr) bool {
		if x, ok := e.(*expr.InExpr); ok {
			in = x
		}
		return true
	})
	if in == nil || len(in.List) != 2 {
		t.Fatalf("IN clause lost: %v", in)
	}
}

// Listing 4 of the paper (triangles).
func TestTrianglesListing4(t *testing.T) {
	s := parseSelect(t, `
		SELECT Count(P) FROM MLGraph.Paths P
		WHERE P.Length = 3 AND P.Edges[0].Label = 'A' AND P.Edges[1].Label = 'B'
		  AND P.Edges[2].Label = 'C' AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`)
	f, ok := s.Items[0].Expr.(*expr.FuncCall)
	if !ok || strings.ToUpper(f.Name) != "COUNT" {
		t.Fatalf("count item: %+v", s.Items[0].Expr)
	}
	conj := expr.SplitConjuncts(s.Where)
	if len(conj) != 5 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
}

// Listing 5 of the paper (vertex scan).
func TestVertexesListing5(t *testing.T) {
	s := parseSelect(t, `SELECT VS.birthdate, VS.fanOut FROM SocialNetwork.Vertexes VS WHERE VS.lstName = 'Smith'`)
	if s.From[0].Member != MemberVertexes || s.From[0].Alias != "VS" {
		t.Fatalf("%+v", s.From[0])
	}
}

// Listing 6 of the paper (shortest-path hint + TOP).
func TestShortestPathListing6(t *testing.T) {
	s := parseSelect(t, `
		SELECT TOP 2 PS FROM RoadNetwork.Paths PS HINT(SHORTESTPATH(Distance)),
			RoadNetwork.Vertexes Src, RoadNetwork.Vertexes Dest
		WHERE PS.StartVertex.Id = Src.Id AND PS.EndVertex.Id = Dest.Id
		  AND Src.Address = 'Address 1' AND Dest.Address = 'Address 2'`)
	if s.Top != 2 {
		t.Fatalf("top: %d", s.Top)
	}
	h := s.From[0].Hint
	if h.Kind != HintShortestPath || h.WeightAttr != "Distance" {
		t.Fatalf("hint: %+v", h)
	}
	if s.From[1].Member != MemberVertexes || s.From[2].Alias != "Dest" {
		t.Errorf("from: %+v", s.From)
	}
}

func TestTraversalHints(t *testing.T) {
	for txt, kind := range map[string]HintKind{
		"DFS": HintDFS, "BFS": HintBFS,
	} {
		s := parseSelect(t, `SELECT 1 FROM g.Paths P HINT(`+txt+`)`)
		if s.From[0].Hint.Kind != kind {
			t.Errorf("hint %s: %+v", txt, s.From[0].Hint)
		}
	}
	s := parseSelect(t, `SELECT 1 FROM g.Paths P HINT(ALLPATHS)`)
	if !s.From[0].Hint.AllPaths {
		t.Error("ALLPATHS lost")
	}
	// Combined hints.
	s = parseSelect(t, `SELECT 1 FROM g.Paths P HINT(BFS, ALLPATHS)`)
	if s.From[0].Hint.Kind != HintBFS || !s.From[0].Hint.AllPaths {
		t.Errorf("combined hint: %+v", s.From[0].Hint)
	}
	if _, err := Parse(`SELECT 1 FROM g.Paths P HINT(WRONG)`); err == nil {
		t.Error("bad hint accepted")
	}
	if _, err := Parse(`SELECT 1 FROM t HINT(DFS)`); err == nil {
		t.Error("hint on table accepted")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	s := parseSelect(t, `SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	or, ok := s.Where.(*expr.BinaryExpr)
	if !ok || or.Op != expr.OpOr {
		t.Fatalf("top op: %v", s.Where)
	}
	s = parseSelect(t, `SELECT 1 FROM t WHERE a + 2 * 3 = 7`)
	cmp := s.Where.(*expr.BinaryExpr)
	add := cmp.L.(*expr.BinaryExpr)
	if add.Op != expr.OpAdd {
		t.Fatalf("precedence: %s", s.Where)
	}
	if mul := add.R.(*expr.BinaryExpr); mul.Op != expr.OpMul {
		t.Fatalf("precedence: %s", s.Where)
	}
}

func TestNotLikeBetweenIsNull(t *testing.T) {
	s := parseSelect(t, `SELECT 1 FROM t WHERE a NOT LIKE 'x%' AND b BETWEEN 1 AND 3 AND c IS NOT NULL AND d NOT IN (1,2)`)
	// BETWEEN desugars into two conjuncts, so 5 in total.
	conj := expr.SplitConjuncts(s.Where)
	if len(conj) != 5 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
	if _, ok := conj[0].(*expr.UnaryExpr); !ok {
		t.Errorf("NOT LIKE shape: %T", conj[0])
	}
	if ge := conj[1].(*expr.BinaryExpr); ge.Op != expr.OpGe {
		t.Errorf("BETWEEN lower bound: %s", ge)
	}
	if le := conj[2].(*expr.BinaryExpr); le.Op != expr.OpLe {
		t.Errorf("BETWEEN upper bound: %s", le)
	}
	isn := conj[3].(*expr.IsNullExpr)
	if !isn.Neg {
		t.Error("IS NOT NULL lost negation")
	}
	in := conj[4].(*expr.InExpr)
	if !in.Neg {
		t.Error("NOT IN lost negation")
	}
}

func TestCaseParse(t *testing.T) {
	s := parseSelect(t, `SELECT CASE WHEN a = 1 THEN 'one' ELSE 'many' END FROM t`)
	if _, ok := s.Items[0].Expr.(*expr.CaseExpr); !ok {
		t.Fatalf("%T", s.Items[0].Expr)
	}
	if _, err := Parse(`SELECT CASE END FROM t`); err == nil {
		t.Error("empty CASE accepted")
	}
}

func TestShowParse(t *testing.T) {
	if s := parseOne(t, `SHOW TABLES`).(*Show); s.What != "TABLES" {
		t.Errorf("%+v", s)
	}
	if s := parseOne(t, `SHOW GRAPH VIEWS`).(*Show); s.What != "GRAPH VIEWS" {
		t.Errorf("%+v", s)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`CREATE TABLE t (a BIGINT); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("%d statements", len(stmts))
	}
	if _, err := ParseAll(`SELECT * FROM t garbage extra ^`); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`CREATE TABLE t (a NOTATYPE)`,
		`CREATE GRAPH VIEW g VERTEXES(ID=a) FROM v`, // missing EDGES
		`INSERT INTO t`,
		`UPDATE t`,
		`DELETE t`,
		`SELECT 1 FROM t LIMIT x`,
		`FOO BAR`,
		`SELECT COUNT() FROM t`,
		`SELECT a[1] FROM t WHERE a[1 = 2`,
		`SHOW NOTHING`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted: %q", q)
		}
	}
}

func TestFuncDistinctParse(t *testing.T) {
	s := parseSelect(t, `SELECT COUNT(DISTINCT a) FROM t`)
	f := s.Items[0].Expr.(*expr.FuncCall)
	if !f.Distinct || len(f.Args) != 1 {
		t.Errorf("%+v", f)
	}
	s = parseSelect(t, `SELECT COUNT(*) FROM t`)
	f = s.Items[0].Expr.(*expr.FuncCall)
	if !f.Star {
		t.Errorf("%+v", f)
	}
}

func TestSubscriptParsing(t *testing.T) {
	s := parseSelect(t, `SELECT 1 FROM g.Paths P WHERE P.Edges[2..5].w = 1 AND P.Vertexes[1].x = 2`)
	var rng, single *expr.RawRef
	expr.Walk(s.Where, func(e expr.Expr) bool {
		if r, ok := e.(*expr.RawRef); ok {
			// Keyword parts (EDGES/VERTEXES) are upper-cased by the lexer.
			up := strings.ToUpper(r.String())
			if strings.Contains(up, "EDGES[2..5]") {
				rng = r
			}
			if strings.Contains(up, "VERTEXES[1]") {
				single = r
			}
		}
		return true
	})
	if rng == nil || single == nil {
		t.Fatal("subscripts lost")
	}
	if rng.Parts[1].Start != 2 || rng.Parts[1].End != 5 || rng.Parts[1].Wildcard {
		t.Errorf("range: %+v", rng.Parts[1])
	}
	if !single.Parts[1].HasIndex || single.Parts[1].Start != 1 || single.Parts[1].End != 1 {
		t.Errorf("single: %+v", single.Parts[1])
	}
}

func TestParameterParsing(t *testing.T) {
	s := parseSelect(t, `SELECT a FROM t WHERE a = ? AND b IN (?, ?) AND c > ?`)
	var params []*expr.Param
	expr.Walk(s.Where, func(e expr.Expr) bool {
		if p, ok := e.(*expr.Param); ok {
			params = append(params, p)
		}
		return true
	})
	if len(params) != 4 {
		t.Fatalf("params: %d", len(params))
	}
	// Lexical numbering.
	for i, p := range params {
		if p.Idx != i {
			t.Errorf("param %d has idx %d", i, p.Idx)
		}
	}
	// Params work in INSERT values too.
	ins := parseOne(t, `INSERT INTO t VALUES (?, ?)`).(*Insert)
	if _, ok := ins.Rows[0][0].(*expr.Param); !ok {
		t.Errorf("insert param: %T", ins.Rows[0][0])
	}
}

func TestCreateMatViewParse(t *testing.T) {
	mv := parseOne(t, `CREATE MATERIALIZED VIEW Lawyers AS SELECT uid, lname AS name FROM Users WHERE job = 'Lawyer'`).(*CreateMatView)
	if mv.Name != "Lawyers" || mv.Base != "Users" || len(mv.Items) != 2 || mv.Where == nil {
		t.Fatalf("%+v", mv)
	}
	if mv.Items[1].Alias != "name" {
		t.Errorf("alias: %+v", mv.Items[1])
	}
	mv = parseOne(t, `CREATE MATERIALIZED VIEW v AS SELECT * FROM t`).(*CreateMatView)
	if !mv.Items[0].Star || mv.Where != nil {
		t.Errorf("%+v", mv)
	}
	if d := parseOne(t, `DROP MATERIALIZED VIEW v`).(*DropMatView); d.Name != "v" {
		t.Errorf("%+v", d)
	}
	if s := parseOne(t, `SHOW MATERIALIZED VIEWS`).(*Show); s.What != "MATERIALIZED VIEWS" {
		t.Errorf("%+v", s)
	}
	for _, bad := range []string{
		`CREATE MATERIALIZED VIEW v AS SELECT FROM t`,
		`CREATE MATERIALIZED VIEW v SELECT a FROM t`,
		`DROP MATERIALIZED v`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted: %s", bad)
		}
	}
}

func TestExplainParse(t *testing.T) {
	ex := parseOne(t, `EXPLAIN SELECT a FROM t WHERE a = 1`).(*Explain)
	if ex.Query == nil || len(ex.Query.Items) != 1 {
		t.Fatalf("%+v", ex)
	}
	if _, err := Parse(`EXPLAIN DELETE FROM t`); err == nil {
		t.Error("EXPLAIN DML accepted")
	}
}

func TestExplainAnalyzeParse(t *testing.T) {
	ex := parseOne(t, `EXPLAIN ANALYZE SELECT a FROM t WHERE a = 1`).(*Explain)
	if !ex.Analyze || ex.Query == nil {
		t.Fatalf("%+v", ex)
	}
	if ex := parseOne(t, `EXPLAIN SELECT a FROM t`).(*Explain); ex.Analyze {
		t.Error("plain EXPLAIN parsed as ANALYZE")
	}
	if _, err := Parse(`EXPLAIN ANALYZE INSERT INTO t VALUES (1)`); err == nil {
		t.Error("EXPLAIN ANALYZE DML accepted")
	}
}

func TestShowMetricsParse(t *testing.T) {
	if s := parseOne(t, `SHOW METRICS`).(*Show); s.What != "METRICS" {
		t.Errorf("%+v", s)
	}
}

func TestShowHealthParse(t *testing.T) {
	if s := parseOne(t, `SHOW HEALTH`).(*Show); s.What != "HEALTH" {
		t.Errorf("%+v", s)
	}
	if s := parseOne(t, `show health`).(*Show); s.What != "HEALTH" {
		t.Errorf("lowercase: %+v", s)
	}
	if _, err := Parse(`SHOW DISKS`); err == nil {
		t.Error("SHOW DISKS accepted")
	}
}

func TestSetSlowQueryParse(t *testing.T) {
	s := parseOne(t, `SET SLOW_QUERY = 25`).(*Set)
	if s.Name != "SLOW_QUERY" || s.Value != 25 {
		t.Fatalf("%+v", s)
	}
}
