package wire

import (
	"fmt"

	"grfusion/internal/types"
)

// Message payload encoders/decoders shared by the server and the client.
// Every Append* builds the payload for the correspondingly named Msg*
// kind; every Decode* parses it and rejects trailing or missing bytes
// with ErrBadMessage.

// AppendQuery encodes a MsgQuery payload.
func AppendQuery(dst []byte, query string, timeoutMS int64) []byte {
	dst = AppendUvarint(dst, uint64(timeoutMS))
	return AppendString(dst, query)
}

// DecodeQuery parses a MsgQuery payload.
func DecodeQuery(b []byte) (query string, timeoutMS int64, err error) {
	t, b, err := DecodeUvarint(b)
	if err != nil {
		return "", 0, err
	}
	q, b, err := DecodeString(b)
	if err != nil {
		return "", 0, err
	}
	if len(b) != 0 {
		return "", 0, fmt.Errorf("%w: trailing bytes after query", ErrBadMessage)
	}
	return q, int64(t), nil
}

// AppendExecPrepared encodes a MsgExecPrepared payload.
func AppendExecPrepared(dst []byte, id uint64, timeoutMS int64, params []types.Value) []byte {
	dst = AppendUvarint(dst, id)
	dst = AppendUvarint(dst, uint64(timeoutMS))
	dst = AppendUvarint(dst, uint64(len(params)))
	for _, p := range params {
		dst = AppendValue(dst, p)
	}
	return dst
}

// DecodeExecPrepared parses a MsgExecPrepared payload.
func DecodeExecPrepared(b []byte) (id uint64, timeoutMS int64, params []types.Value, err error) {
	id, b, err = DecodeUvarint(b)
	if err != nil {
		return 0, 0, nil, err
	}
	t, b, err := DecodeUvarint(b)
	if err != nil {
		return 0, 0, nil, err
	}
	n, b, err := DecodeUvarint(b)
	if err != nil {
		return 0, 0, nil, err
	}
	if n > uint64(len(b)) { // each value is at least one byte
		return 0, 0, nil, fmt.Errorf("%w: parameter count %d exceeds payload", ErrBadMessage, n)
	}
	params = make([]types.Value, n)
	for i := range params {
		if params[i], b, err = DecodeValue(b); err != nil {
			return 0, 0, nil, err
		}
	}
	if len(b) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: trailing bytes after parameters", ErrBadMessage)
	}
	return id, int64(t), params, nil
}

// AppendCopyBegin encodes a MsgCopyBegin payload.
func AppendCopyBegin(dst []byte, table string, cols []string, expectRows int) []byte {
	dst = AppendString(dst, table)
	dst = AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = AppendString(dst, c)
	}
	return AppendUvarint(dst, uint64(expectRows))
}

// DecodeCopyBegin parses a MsgCopyBegin payload.
func DecodeCopyBegin(b []byte) (table string, cols []string, expectRows int, err error) {
	table, b, err = DecodeString(b)
	if err != nil {
		return "", nil, 0, err
	}
	n, b, err := DecodeUvarint(b)
	if err != nil {
		return "", nil, 0, err
	}
	if n > uint64(len(b)) {
		return "", nil, 0, fmt.Errorf("%w: column count %d exceeds payload", ErrBadMessage, n)
	}
	cols = make([]string, n)
	for i := range cols {
		if cols[i], b, err = DecodeString(b); err != nil {
			return "", nil, 0, err
		}
	}
	exp, b, err := DecodeUvarint(b)
	if err != nil {
		return "", nil, 0, err
	}
	if len(b) != 0 {
		return "", nil, 0, fmt.Errorf("%w: trailing bytes after copy begin", ErrBadMessage)
	}
	return table, cols, int(exp), nil
}

// AppendCopyData encodes a MsgCopyData payload: the batch's rows, each
// exactly width values (established by MsgCopyBegin).
func AppendCopyData(dst []byte, rows []types.Row) []byte {
	dst = AppendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		for _, v := range r {
			dst = AppendValue(dst, v)
		}
	}
	return dst
}

// DecodeCopyData parses a MsgCopyData payload into width-sized rows. The
// decoded rows alias one backing slab allocation, minimizing per-row GC
// cost on the ingest path; they are handed to the engine as-is.
func DecodeCopyData(b []byte, width int) ([]types.Row, error) {
	n, b, err := DecodeUvarint(b)
	if err != nil {
		return nil, err
	}
	total := n * uint64(width)
	if total > uint64(len(b)) { // each value is at least one byte
		return nil, fmt.Errorf("%w: row count %d exceeds payload", ErrBadMessage, n)
	}
	slab := make([]types.Value, total)
	rows := make([]types.Row, n)
	for i := range slab {
		if slab[i], b, err = DecodeValue(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after copy data", ErrBadMessage)
	}
	for i := range rows {
		rows[i] = types.Row(slab[i*width : (i+1)*width])
	}
	return rows, nil
}

// Result mirrors the JSON protocol's response shape for the binary path.
type Result struct {
	Columns  []string
	Rows     []types.Row
	Affected int
}

// AppendResult encodes a MsgResult payload.
func AppendResult(dst []byte, r *Result) []byte {
	dst = AppendUvarint(dst, uint64(len(r.Columns)))
	for _, c := range r.Columns {
		dst = AppendString(dst, c)
	}
	dst = AppendUvarint(dst, uint64(r.Affected))
	dst = AppendUvarint(dst, uint64(len(r.Rows)))
	for _, row := range r.Rows {
		for _, v := range row {
			dst = AppendValue(dst, v)
		}
	}
	return dst
}

// DecodeResult parses a MsgResult payload.
func DecodeResult(b []byte) (*Result, error) {
	nc, b, err := DecodeUvarint(b)
	if err != nil {
		return nil, err
	}
	if nc > uint64(len(b))+1 {
		return nil, fmt.Errorf("%w: column count %d exceeds payload", ErrBadMessage, nc)
	}
	r := &Result{}
	if nc > 0 {
		r.Columns = make([]string, nc)
		for i := range r.Columns {
			if r.Columns[i], b, err = DecodeString(b); err != nil {
				return nil, err
			}
		}
	}
	aff, b, err := DecodeUvarint(b)
	if err != nil {
		return nil, err
	}
	r.Affected = int(aff)
	nr, b, err := DecodeUvarint(b)
	if err != nil {
		return nil, err
	}
	if nr*nc > uint64(len(b)) {
		return nil, fmt.Errorf("%w: row count %d exceeds payload", ErrBadMessage, nr)
	}
	if nr > 0 {
		slab := make([]types.Value, nr*nc)
		r.Rows = make([]types.Row, nr)
		for i := range slab {
			if slab[i], b, err = DecodeValue(b); err != nil {
				return nil, err
			}
		}
		for i := range r.Rows {
			r.Rows[i] = types.Row(slab[uint64(i)*nc : (uint64(i)+1)*nc])
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after result", ErrBadMessage)
	}
	return r, nil
}

// Error flag bits carried by MsgError.
const (
	ErrFlagRetryable = 1 << 0
	ErrFlagDegraded  = 1 << 1
)

// AppendError encodes a MsgError payload.
func AppendError(dst []byte, msg string, retryable, degraded bool) []byte {
	var flags byte
	if retryable {
		flags |= ErrFlagRetryable
	}
	if degraded {
		flags |= ErrFlagDegraded
	}
	dst = append(dst, flags)
	return AppendString(dst, msg)
}

// DecodeError parses a MsgError payload.
func DecodeError(b []byte) (msg string, retryable, degraded bool, err error) {
	if len(b) == 0 {
		return "", false, false, fmt.Errorf("%w: empty error payload", ErrBadMessage)
	}
	flags := b[0]
	msg, rest, err := DecodeString(b[1:])
	if err != nil {
		return "", false, false, err
	}
	if len(rest) != 0 {
		return "", false, false, fmt.Errorf("%w: trailing bytes after error", ErrBadMessage)
	}
	return msg, flags&ErrFlagRetryable != 0, flags&ErrFlagDegraded != 0, nil
}

// Prepared statement kinds carried by MsgPrepared.
const (
	PreparedSelect = 0
	PreparedDML    = 1
)

// AppendPrepared encodes a MsgPrepared payload.
func AppendPrepared(dst []byte, id uint64, kind byte, nparams int, cols []string) []byte {
	dst = AppendUvarint(dst, id)
	dst = append(dst, kind)
	dst = AppendUvarint(dst, uint64(nparams))
	dst = AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = AppendString(dst, c)
	}
	return dst
}

// DecodePrepared parses a MsgPrepared payload.
func DecodePrepared(b []byte) (id uint64, kind byte, nparams int, cols []string, err error) {
	id, b, err = DecodeUvarint(b)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if len(b) == 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: truncated prepared reply", ErrBadMessage)
	}
	kind, b = b[0], b[1:]
	np, b, err := DecodeUvarint(b)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	nc, b, err := DecodeUvarint(b)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if nc > uint64(len(b))+1 {
		return 0, 0, 0, nil, fmt.Errorf("%w: column count %d exceeds payload", ErrBadMessage, nc)
	}
	cols = make([]string, nc)
	for i := range cols {
		if cols[i], b, err = DecodeString(b); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	if len(b) != 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: trailing bytes after prepared reply", ErrBadMessage)
	}
	return id, kind, int(np), cols, nil
}
