// Package wire implements GRFusion's binary framed wire protocol: the
// typed, length-prefixed encoding the server and client speak after a
// successful magic-byte handshake, replacing JSON-lines round trips on
// the hot path while remaining fully negotiable back to JSON for old
// peers.
//
// Framing reuses the discipline of the write-ahead log (internal/wal):
// every message is one self-checking frame
//
//	frame = length(u32 BE) kind(u8) payload crc32(u32 BE)
//
// where length counts the kind byte plus the payload, and the IEEE CRC
// covers the kind byte plus the payload. The length prefix is big-endian
// so every frame under the 16 MiB cap starts with a zero byte — which is
// what lets a peer distinguish a binary frame stream from a JSON-lines
// stream (always starting '{') with a single sniffed byte during
// protocol negotiation.
//
// The handshake: a binary-capable client opens with the 6-byte hello
// "GRWB" ProtoVersion '\n'. The trailing newline matters — a JSON-lines
// server's line scanner terminates on it and answers with a JSON parse
// error, so the client's first response byte cleanly discriminates: '{'
// means the peer speaks JSON-lines (downgrade, consume the error line),
// 0x00 means the peer answered with a binary hello frame. A binary
// server conversely sniffs the first client byte: 'G' starts the binary
// handshake; anything else falls through to the JSON-lines loop (whose
// parser diagnoses garbage), preserving legacy client behavior exactly.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ProtoVersion is the wire protocol version carried in the hello
// exchange. A server answers with its own version; the client fails the
// dial if the server's version is newer than it understands.
const ProtoVersion = 1

// Magic is the first four bytes of a binary client's hello.
const Magic = "GRWB"

// HelloLen is the length of the client hello: Magic, version, newline.
const HelloLen = 6

// Hello returns the client hello bytes.
func Hello() []byte { return []byte{'G', 'R', 'W', 'B', ProtoVersion, '\n'} }

// MaxFrameBytes caps one frame's length field (kind byte + payload),
// matching the JSON-lines server's request cap.
const MaxFrameBytes = 16 << 20

// Message kinds. Client→server kinds are low, server→client kinds start
// at 0x10; the split is documentation, not protocol (each side only ever
// decodes the kinds it expects).
const (
	// MsgHello is the server's handshake ack; payload: version(u8).
	MsgHello = 0x01
	// MsgQuery executes one SQL statement; payload: timeout_ms(uvarint)
	// query(string).
	MsgQuery = 0x02
	// MsgCommand runs a protocol command (metrics, health); payload:
	// cmd(string).
	MsgCommand = 0x03
	// MsgPrepare compiles a statement server-side; payload: sql(string).
	// Answered by MsgPrepared.
	MsgPrepare = 0x04
	// MsgExecPrepared executes a prepared statement by id; payload:
	// id(uvarint) timeout_ms(uvarint) nparams(uvarint) params(values).
	MsgExecPrepared = 0x05
	// MsgClosePrepared frees a prepared statement; payload: id(uvarint).
	// Answered by an empty MsgResult.
	MsgClosePrepared = 0x06
	// MsgCopyBegin opens a COPY-style bulk load; payload: table(string)
	// ncols(uvarint) cols(strings) expect_rows(uvarint). Answered by an
	// empty MsgResult; the client then streams MsgCopyData.
	MsgCopyBegin = 0x07
	// MsgCopyData carries one row batch; payload: nrows(uvarint) then
	// nrows*width values (width fixed by MsgCopyBegin). Not answered —
	// the stream is pipelined; a failed batch is reported by MsgCopyEnd's
	// response, which also carries how many rows had been applied.
	MsgCopyData = 0x08
	// MsgCopyEnd closes the load; payload empty. Answered by MsgResult
	// (affected = rows applied) or MsgError.
	MsgCopyEnd = 0x09

	// MsgResult is a successful statement outcome; payload: a result (see
	// AppendResult).
	MsgResult = 0x10
	// MsgError is a failed statement; payload: flags(u8: 1 retryable, 2
	// degraded) msg(string).
	MsgError = 0x11
	// MsgPrepared answers MsgPrepare; payload: id(uvarint) kind(u8: 0
	// select, 1 DML) nparams(uvarint) ncols(uvarint) cols(strings).
	MsgPrepared = 0x12
)

// Typed framing errors. ErrFrameTooLarge is returned by ReadFrame with
// the oversized frame's length available via FrameTooLargeError; the
// connection remains synchronized (the reader can discard the payload
// and answer with a diagnostic) because the length prefix itself was
// valid.
var (
	ErrBadMagic      = errors.New("wire: not a GRFusion binary protocol peer")
	ErrBadCRC        = errors.New("wire: frame checksum mismatch")
	ErrFrameTooLarge = errors.New("wire: frame exceeds size cap")
	ErrBadMessage    = errors.New("wire: malformed message payload")
)

// FrameTooLargeError reports an oversized frame without desynchronizing
// the stream.
type FrameTooLargeError struct {
	Len int // declared kind+payload length
}

func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds the %d byte cap", e.Len, MaxFrameBytes)
}

func (e *FrameTooLargeError) Unwrap() error { return ErrFrameTooLarge }

// AppendFrame appends one complete frame carrying kind and payload.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+len(payload)))
	start := len(dst)
	dst = append(dst, kind)
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, 4+1+len(payload)+4), kind, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, verifying length and checksum. On
// *FrameTooLargeError the stream is still synchronized: the caller may
// call DiscardFrame to skip the oversized payload and keep serving.
func ReadFrame(r *bufio.Reader) (kind byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 1 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrBadMessage)
	}
	if n > MaxFrameBytes {
		return 0, nil, &FrameTooLargeError{Len: n}
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	sum := binary.BigEndian.Uint32(body[n:])
	if crc32.ChecksumIEEE(body[:n]) != sum {
		return 0, nil, ErrBadCRC
	}
	return body[0], body[1:n], nil
}

// DiscardFrame skips the remainder of a frame whose header declared n
// kind+payload bytes (as reported by FrameTooLargeError), leaving the
// reader at the next frame boundary.
func DiscardFrame(r *bufio.Reader, n int) error {
	if _, err := r.Discard(n + 4); err != nil { // payload + trailing CRC
		return err
	}
	return nil
}

// ReadHello consumes a client hello whose first byte ('G') was already
// sniffed by the caller, returning the client's protocol version.
func ReadHello(r *bufio.Reader, first byte) (version byte, err error) {
	buf := make([]byte, HelloLen)
	buf[0] = first
	if _, err := io.ReadFull(r, buf[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	if string(buf[:len(Magic)]) != Magic || buf[HelloLen-1] != '\n' {
		return 0, ErrBadMagic
	}
	return buf[len(Magic)], nil
}
