package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"grfusion/internal/types"
)

// Typed value encoding — the binary replacement for the JSON protocol's
// json.Number round trips. One tag byte selects the representation:
// BIGINTs travel as zigzag varints (point-query results are mostly small
// ids), DOUBLEs as 8 fixed bytes, strings length-prefixed. Graph values
// (vertices, edges, paths) are rendered to their display string at the
// server, exactly as the JSON protocol does — the relational surface is
// the protocol, graph elements cross the wire as text.
const (
	tagNull  = 0
	tagFalse = 1
	tagTrue  = 2
	tagInt   = 3
	tagFloat = 4
	tagStr   = 5
)

// zigzag maps signed to unsigned so small negative ints stay short.
func zigzag(i int64) uint64   { return uint64(i<<1) ^ uint64(i>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendValue appends one encoded value.
func AppendValue(dst []byte, v types.Value) []byte {
	switch v.Kind {
	case types.KindNull:
		return append(dst, tagNull)
	case types.KindBool:
		if v.B {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case types.KindInt:
		dst = append(dst, tagInt)
		return binary.AppendUvarint(dst, zigzag(v.I))
	case types.KindFloat:
		dst = append(dst, tagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F))
	case types.KindString:
		return AppendString(append(dst, tagStr), v.S)
	default:
		// Graph values: rendered text, like the JSON protocol.
		return AppendString(append(dst, tagStr), v.String())
	}
}

// DecodeValue decodes one value, returning the remaining bytes.
func DecodeValue(b []byte) (types.Value, []byte, error) {
	if len(b) == 0 {
		return types.Value{}, nil, fmt.Errorf("%w: truncated value", ErrBadMessage)
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNull:
		return types.Null(), b, nil
	case tagFalse:
		return types.NewBool(false), b, nil
	case tagTrue:
		return types.NewBool(true), b, nil
	case tagInt:
		u, n := binary.Uvarint(b)
		if n <= 0 {
			return types.Value{}, nil, fmt.Errorf("%w: bad varint", ErrBadMessage)
		}
		return types.NewInt(unzigzag(u)), b[n:], nil
	case tagFloat:
		if len(b) < 8 {
			return types.Value{}, nil, fmt.Errorf("%w: truncated float", ErrBadMessage)
		}
		return types.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case tagStr:
		s, rest, err := DecodeString(b)
		if err != nil {
			return types.Value{}, nil, err
		}
		return types.NewString(s), rest, nil
	default:
		return types.Value{}, nil, fmt.Errorf("%w: unknown value tag %d", ErrBadMessage, tag)
	}
}

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeString decodes a length-prefixed string, returning the rest.
func DecodeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("%w: truncated string", ErrBadMessage)
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// AppendUvarint re-exports varint appending for message encoders.
func AppendUvarint(dst []byte, u uint64) []byte { return binary.AppendUvarint(dst, u) }

// DecodeUvarint decodes one uvarint, returning the rest.
func DecodeUvarint(b []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrBadMessage)
	}
	return u, b[n:], nil
}
