package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"grfusion/internal/types"
)

func frameRoundTrip(t *testing.T, kind byte, payload []byte) (byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, kind, payload); err != nil {
		t.Fatal(err)
	}
	k, p, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 70000)} {
		k, p := frameRoundTrip(t, MsgQuery, payload)
		if k != MsgQuery || !bytes.Equal(p, payload) {
			t.Fatalf("round trip lost data: kind=%d len=%d want len=%d", k, len(p), len(payload))
		}
	}
}

func TestFrameStartsWithZeroByte(t *testing.T) {
	// Negotiation relies on every frame under the cap starting 0x00 —
	// distinguishable from '{' with one sniffed byte.
	b := AppendFrame(nil, MsgResult, bytes.Repeat([]byte{1}, 1000))
	if b[0] != 0 {
		t.Fatalf("frame starts 0x%02x, negotiation needs 0x00", b[0])
	}
}

func TestFrameCorruption(t *testing.T) {
	base := AppendFrame(nil, MsgQuery, []byte("SELECT 1"))
	// Flip every single byte position after the header: each must surface
	// as ErrBadCRC (payload/kind/crc corruption), never as silent success.
	for i := 4; i < len(base); i++ {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x40
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(mut)))
		if !errors.Is(err, ErrBadCRC) {
			t.Fatalf("flip at %d: got %v, want ErrBadCRC", i, err)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	full := AppendFrame(nil, MsgQuery, []byte("SELECT * FROM t"))
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(full[:cut])))
		if err == nil {
			t.Fatalf("truncation at %d read a frame", cut)
		}
		if cut >= 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: got %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameTooLargeKeepsStreamSynchronized(t *testing.T) {
	var buf bytes.Buffer
	// An oversized frame (header only, then its declared body), followed
	// by a healthy frame.
	huge := MaxFrameBytes + 100
	hdr := binary.BigEndian.AppendUint32(nil, uint32(huge))
	buf.Write(hdr)
	buf.Write(make([]byte, huge+4)) // body + CRC, content irrelevant
	if err := WriteFrame(&buf, MsgCommand, []byte("after")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	_, _, err := ReadFrame(r)
	var tooBig *FrameTooLargeError
	if !errors.As(err, &tooBig) || !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want FrameTooLargeError", err)
	}
	if err := DiscardFrame(r, tooBig.Len); err != nil {
		t.Fatal(err)
	}
	k, p, err := ReadFrame(r)
	if err != nil || k != MsgCommand || string(p) != "after" {
		t.Fatalf("stream desynchronized after discard: %d %q %v", k, p, err)
	}
}

func TestHello(t *testing.T) {
	h := Hello()
	if len(h) != HelloLen || h[HelloLen-1] != '\n' {
		t.Fatalf("hello %q must be %d bytes ending in newline (JSON-lines fallback depends on it)", h, HelloLen)
	}
	r := bufio.NewReader(bytes.NewReader(h[1:]))
	v, err := ReadHello(r, h[0])
	if err != nil || v != ProtoVersion {
		t.Fatalf("ReadHello = %d, %v", v, err)
	}
	// Garbage after a 'G' first byte must be ErrBadMagic.
	r = bufio.NewReader(strings.NewReader("RABGE\n"))
	if _, err := ReadHello(r, 'G'); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage hello: %v", err)
	}
	// Mid-handshake disconnect must be ErrUnexpectedEOF.
	r = bufio.NewReader(strings.NewReader("RW"))
	if _, err := ReadHello(r, 'G'); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short hello: %v", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null(),
		types.NewBool(true),
		types.NewBool(false),
		types.NewInt(0),
		types.NewInt(1),
		types.NewInt(-1),
		types.NewInt(math.MaxInt64),
		types.NewInt(math.MinInt64),
		types.NewFloat(0),
		types.NewFloat(-3.25),
		types.NewFloat(math.Inf(1)),
		types.NewString(""),
		types.NewString("hello"),
		types.NewString(strings.Repeat("é", 300)),
	}
	var b []byte
	for _, v := range vals {
		b = AppendValue(b, v)
	}
	for _, want := range vals {
		var got types.Value
		var err error
		got, b, err = DecodeValue(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.I != want.I || got.B != want.B || got.S != want.S ||
			(got.F != want.F && !(math.IsNaN(got.F) && math.IsNaN(want.F))) {
			t.Fatalf("value round trip: got %#v want %#v", got, want)
		}
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes", len(b))
	}
}

func TestValueDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},               // empty
		{9},              // unknown tag
		{tagInt},         // missing varint
		{tagFloat, 1},    // short float
		{tagStr, 5, 'a'}, // short string
	}
	for _, c := range cases {
		if _, _, err := DecodeValue(c); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("DecodeValue(%v) err = %v, want ErrBadMessage", c, err)
		}
	}
}

func TestMessageRoundTrips(t *testing.T) {
	q, tm, err := DecodeQuery(AppendQuery(nil, "SELECT 1", 250))
	if err != nil || q != "SELECT 1" || tm != 250 {
		t.Fatalf("query: %q %d %v", q, tm, err)
	}

	id, tm, params, err := DecodeExecPrepared(AppendExecPrepared(nil, 7, 9,
		[]types.Value{types.NewInt(42), types.NewString("x")}))
	if err != nil || id != 7 || tm != 9 || len(params) != 2 || params[0].I != 42 || params[1].S != "x" {
		t.Fatalf("exec prepared: %d %d %v %v", id, tm, params, err)
	}

	table, cols, exp, err := DecodeCopyBegin(AppendCopyBegin(nil, "edges", []string{"a", "b"}, 1000))
	if err != nil || table != "edges" || len(cols) != 2 || cols[1] != "b" || exp != 1000 {
		t.Fatalf("copy begin: %q %v %d %v", table, cols, exp, err)
	}

	rows := []types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.Null()},
	}
	got, err := DecodeCopyData(AppendCopyData(nil, rows), 2)
	if err != nil || len(got) != 2 || got[0][1].S != "a" || got[1][1].Kind != types.KindNull {
		t.Fatalf("copy data: %v %v", got, err)
	}

	res := &Result{Columns: []string{"c1", "c2"}, Affected: 3, Rows: rows}
	back, err := DecodeResult(AppendResult(nil, res))
	if err != nil || back.Affected != 3 || len(back.Rows) != 2 ||
		back.Columns[1] != "c2" || back.Rows[1][0].I != 2 {
		t.Fatalf("result: %+v %v", back, err)
	}
	empty, err := DecodeResult(AppendResult(nil, &Result{}))
	if err != nil || len(empty.Rows) != 0 || len(empty.Columns) != 0 {
		t.Fatalf("empty result: %+v %v", empty, err)
	}

	msg, retry, degr, err := DecodeError(AppendError(nil, "boom", true, false))
	if err != nil || msg != "boom" || !retry || degr {
		t.Fatalf("error: %q %v %v %v", msg, retry, degr, err)
	}

	pid, kind, np, pcols, err := DecodePrepared(AppendPrepared(nil, 3, PreparedSelect, 2, []string{"x"}))
	if err != nil || pid != 3 || kind != PreparedSelect || np != 2 || len(pcols) != 1 {
		t.Fatalf("prepared: %d %d %d %v %v", pid, kind, np, pcols, err)
	}
}

// TestMessageDecodersRejectFuzzGarbage feeds truncations of every valid
// payload into its decoder: none may panic, each must error or succeed
// with consistent data (a hostile peer cannot crash the server).
func TestMessageDecodersRejectTruncations(t *testing.T) {
	rows := []types.Row{{types.NewInt(1), types.NewString("abc")}}
	payloads := map[string][]byte{
		"query":  AppendQuery(nil, "SELECT 1", 5),
		"exec":   AppendExecPrepared(nil, 1, 0, []types.Value{types.NewFloat(1.5)}),
		"begin":  AppendCopyBegin(nil, "t", []string{"a"}, 10),
		"data":   AppendCopyData(nil, rows),
		"result": AppendResult(nil, &Result{Columns: []string{"a", "b"}, Rows: rows}),
		"error":  AppendError(nil, "msg", false, true),
		"prep":   AppendPrepared(nil, 1, PreparedDML, 0, nil),
	}
	for name, full := range payloads {
		for cut := 0; cut < len(full); cut++ {
			b := full[:cut]
			var err error
			switch name {
			case "query":
				_, _, err = DecodeQuery(b)
			case "exec":
				_, _, _, err = DecodeExecPrepared(b)
			case "begin":
				_, _, _, err = DecodeCopyBegin(b)
			case "data":
				_, err = DecodeCopyData(b, 2)
			case "result":
				_, err = DecodeResult(b)
			case "error":
				_, _, _, err = DecodeError(b)
			case "prep":
				_, _, _, _, err = DecodePrepared(b)
			}
			if err == nil {
				t.Fatalf("%s: truncation at %d decoded successfully", name, cut)
			}
		}
	}
}
