package graph

// This file implements the traversal kernels behind the paper's physical
// path operators (§5.1.2, §6.3): depth-first (DFScan) and breadth-first
// (BFScan) simple-path enumeration. Both are *lazy*: they implement the
// iterator model so a parent operator that stops pulling (e.g. LIMIT 1 in
// a reachability query) stops the traversal.

// VisitPolicy controls how often a vertex may be visited during one
// traversal.
type VisitPolicy uint8

const (
	// VisitGlobal explores every vertex at most once per traversal, as the
	// paper's operators do ("all the physical operators explore a traversed
	// vertex only once to avoid loops", §5.1.2). The emitted paths form a
	// traversal tree; this is the right policy for reachability and
	// friends-of-friends style queries and keeps traversal linear.
	VisitGlobal VisitPolicy = iota
	// VisitPerPath forbids repeats only within a single path, enumerating
	// *all* simple paths in the length range. This is required for
	// pattern-matching queries such as triangle counting (Listing 4), where
	// distinct paths may share interior vertexes.
	VisitPerPath
)

// Spec parameterizes a traversal. The executor builds one from the
// predicates the optimizer pushed ahead of the PathScan (§6.2).
type Spec struct {
	// Start is the traversal origin (required).
	Start *Vertex
	// Target, when non-nil, restricts emission to paths ending at Target.
	// Exploration still proceeds through other vertexes.
	Target *Vertex
	// MinLen and MaxLen bound the emitted path length in edges, as inferred
	// by §6.1 path-length inference. MaxLen <= 0 means unbounded (the
	// simple-path property still bounds paths by the vertex count).
	MinLen, MaxLen int
	// Policy selects global-visited or per-path-visited semantics.
	Policy VisitPolicy
	// AllowCycle permits the final vertex of a path to equal its start
	// vertex, forming a cycle. Interior repeats remain forbidden. The
	// planner enables this when the query closes the path back onto its
	// start (e.g. the triangle pattern of Listing 4).
	AllowCycle bool
	// FilterEdge, when non-nil, is consulted before traversing edge e at
	// path position pos (0-based) from vertex `from` to vertex `to`.
	// Returning false prunes the expansion.
	FilterEdge func(pos int, e *Edge, from, to *Vertex) bool
	// FilterVertex, when non-nil, is consulted before admitting vertex v at
	// path position pos (0 is the start vertex). Returning false prunes.
	FilterVertex func(pos int, v *Vertex) bool
	// Prune, when non-nil, sees every partial path after an extension and
	// returns false to drop it and its extensions. Used for pushed-down
	// monotone aggregate bounds such as SUM(PS.Edges.Cost) < 10 (§6.2).
	// The Path is the kernel's reusable scratch: it is only valid for the
	// duration of the call and must not be retained.
	Prune func(p *Path) bool
	// Done, when non-nil, makes the traversal cooperative: the kernels poll
	// the channel (amortized, every stopCheckMask+1 steps) and halt early
	// once it is closed. A halted kernel simply stops emitting — the layer
	// that closed the channel (the executor's cancellation signal) knows
	// the cause and reports the typed error.
	Done <-chan struct{}
}

// stopCheckMask amortizes Done polling in the traversal hot loops: the
// channel is polled every 64 steps, bounding both the per-step overhead
// and the number of hops a canceled traversal may still take.
const stopCheckMask = 63

// stopper is the kernels' shared cancellation poller. Each iterator owns
// one (single-goroutine, like all kernel state).
type stopper struct {
	done    <-chan struct{}
	ticks   uint
	stopped bool
}

// stop reports whether the traversal should halt, polling the underlying
// channel every stopCheckMask+1 calls. Once fired it stays fired.
func (s *stopper) stop() bool {
	if s.done == nil || s.stopped {
		return s.stopped
	}
	s.ticks++
	if s.ticks&stopCheckMask != 0 {
		return false
	}
	select {
	case <-s.done:
		s.stopped = true
	default:
	}
	return s.stopped
}

// PathIterator lazily produces traversal results.
type PathIterator interface {
	// Next returns the next path, or nil when the traversal is exhausted.
	Next() *Path
}

func (s *Spec) admitStart() bool {
	if s.Start == nil {
		return false
	}
	return s.FilterVertex == nil || s.FilterVertex(0, s.Start)
}

func (s *Spec) lenOK(l int) bool {
	return l >= s.MinLen && (s.MaxLen <= 0 || l <= s.MaxLen)
}

func (s *Spec) targetOK(v *Vertex) bool { return s.Target == nil || s.Target == v }

// expand enumerates the traversable (edge, other-endpoint) pairs of v.
// Directed graphs follow edge direction; undirected graphs traverse every
// incident edge outward.
func expand(g *Graph, v *Vertex, fn func(e *Edge, to *Vertex) bool) {
	for _, e := range v.Out {
		if !fn(e, e.To) {
			return
		}
	}
	if g.Directed() {
		return
	}
	for _, e := range v.In {
		if e.From == e.To {
			continue // self-loop already offered via Out
		}
		if !fn(e, e.From) {
			return
		}
	}
}

type dfsFrame struct {
	v     *Vertex
	edges []*Edge
	tos   []*Vertex
	next  int
}

// dfsIter enumerates paths depth-first with an explicit stack, emitting a
// path the moment its final vertex is reached (preorder).
//
// Membership testing differs by policy: VisitGlobal keeps a visited map
// (each vertex once per traversal); VisitPerPath only needs "is v on the
// current path", which a linear scan over the short working path answers
// faster than map maintenance — pattern queries bound paths to a few
// edges, making this the hot path of triangle counting.
type dfsIter struct {
	g    *Graph
	spec Spec
	// stack holds one frame per path vertex; frames are reused across
	// pushes (depth only shrinks logically) so steady-state expansion
	// allocates nothing.
	stack []dfsFrame
	depth int  // live frames
	path  Path // shared working path; emitted paths are clones
	// visited is used by VisitGlobal only.
	visited map[*Vertex]bool
	// pending holds at most one cycle-closure emission discovered while the
	// working path stayed unchanged.
	pending *Path
	done    bool
	halt    stopper
}

// NewDFS creates a depth-first traversal over g (the paper's DFScan).
func NewDFS(g *Graph, spec Spec) PathIterator {
	it := &dfsIter{g: g, spec: spec, halt: stopper{done: spec.Done}}
	if !spec.admitStart() {
		it.done = true
		return it
	}
	if spec.Policy == VisitGlobal {
		it.visited = map[*Vertex]bool{spec.Start: true}
	}
	it.path.Verts = append(it.path.Verts, spec.Start)
	it.pushFrame(spec.Start)
	if spec.MinLen <= 0 && spec.targetOK(spec.Start) {
		it.pending = it.path.Clone()
	}
	return it
}

// onPath reports whether v blocks expansion under the current policy.
func (it *dfsIter) onPath(v *Vertex) bool {
	if it.spec.Policy == VisitGlobal {
		return it.visited[v]
	}
	return it.path.contains(v)
}

func (it *dfsIter) pushFrame(v *Vertex) {
	if it.depth == len(it.stack) {
		it.stack = append(it.stack, dfsFrame{})
	}
	f := &it.stack[it.depth]
	it.depth++
	f.v = v
	f.edges = f.edges[:0]
	f.tos = f.tos[:0]
	f.next = 0
	if it.spec.MaxLen <= 0 || len(it.path.Edges) < it.spec.MaxLen {
		expand(it.g, v, func(e *Edge, to *Vertex) bool {
			f.edges = append(f.edges, e)
			f.tos = append(f.tos, to)
			return true
		})
	}
}

func (it *dfsIter) popFrame() {
	it.depth--
	it.path.Verts = it.path.Verts[:len(it.path.Verts)-1]
	if len(it.path.Edges) > 0 {
		it.path.Edges = it.path.Edges[:len(it.path.Edges)-1]
	}
}

func (it *dfsIter) Next() *Path {
	if it.pending != nil {
		p := it.pending
		it.pending = nil
		return p
	}
	if it.done {
		return nil
	}
	for it.depth > 0 {
		if it.halt.stop() {
			break
		}
		f := &it.stack[it.depth-1]
		if f.next >= len(f.edges) {
			it.popFrame()
			continue
		}
		e, to := f.edges[f.next], f.tos[f.next]
		f.next++
		pos := len(it.path.Edges) // edge position within the path
		depth := pos + 1          // resulting path length

		// At the final depth with a bound target, a non-target neighbor
		// can neither be emitted nor extended: skip before paying for
		// filter evaluation (the hot case of bounded pattern queries).
		if it.spec.MaxLen > 0 && depth == it.spec.MaxLen &&
			it.spec.Target != nil && to != it.spec.Target {
			continue
		}

		if it.onPath(to) {
			// Possible cycle closure back to the start vertex.
			if it.spec.AllowCycle && to == it.spec.Start && depth >= 2 &&
				it.spec.lenOK(depth) && it.spec.targetOK(to) &&
				okEdge(&it.spec, pos, e, f.v, to) {
				cp := it.path.Clone()
				cp.Edges = append(cp.Edges, e)
				cp.Verts = append(cp.Verts, to)
				if it.spec.Prune == nil || it.spec.Prune(cp) {
					return cp
				}
			}
			continue
		}
		if !okEdge(&it.spec, pos, e, f.v, to) {
			continue
		}
		if it.spec.FilterVertex != nil && !it.spec.FilterVertex(depth, to) {
			continue
		}
		it.path.Edges = append(it.path.Edges, e)
		it.path.Verts = append(it.path.Verts, to)
		if it.spec.Prune != nil && !it.spec.Prune(&it.path) {
			it.path.Edges = it.path.Edges[:len(it.path.Edges)-1]
			it.path.Verts = it.path.Verts[:len(it.path.Verts)-1]
			continue
		}
		if it.spec.Policy == VisitGlobal {
			it.visited[to] = true
		}
		it.pushFrame(to)
		if it.spec.lenOK(depth) && it.spec.targetOK(to) {
			return it.path.Clone()
		}
	}
	it.done = true
	return nil
}

func okEdge(s *Spec, pos int, e *Edge, from, to *Vertex) bool {
	return s.FilterEdge == nil || s.FilterEdge(pos, e, from, to)
}

// bfsIter enumerates paths breadth-first from a queue of traversal-tree
// nodes; partial paths share prefixes through parent pointers, so
// expanding a vertex is O(1) memory. Expansion is also incremental: a pull
// resumes in the middle of a node's adjacency list, so a parent that stops
// after LIMIT 1 never pays for the full fan-out of a hub vertex.
type bfsIter struct {
	g       *Graph
	spec    Spec
	queue   []*pnode
	visited map[*Vertex]bool

	// In-progress expansion of the node at the queue head.
	cur      *pnode
	curEdges []*Edge
	curTos   []*Vertex
	curIdx   int

	pendingRoot bool
	root        *pnode
	// scratch is the reusable Path handed to Prune for candidate
	// expansions; only emitted paths are materialized fresh.
	scratch Path
	done    bool
	halt    stopper
}

// NewBFS creates a breadth-first traversal over g (the paper's BFScan).
// Paths are emitted in nondecreasing length order.
func NewBFS(g *Graph, spec Spec) PathIterator {
	it := &bfsIter{g: g, spec: spec, visited: make(map[*Vertex]bool),
		halt: stopper{done: spec.Done}}
	if !spec.admitStart() {
		it.done = true
		return it
	}
	it.root = &pnode{v: spec.Start}
	it.visited[spec.Start] = true
	it.queue = append(it.queue, it.root)
	if spec.MinLen <= 0 && spec.targetOK(spec.Start) {
		it.pendingRoot = true
	}
	return it
}

func (it *bfsIter) Next() *Path {
	if it.pendingRoot {
		it.pendingRoot = false
		return it.root.materialize(nil, nil)
	}
	for !it.done {
		if it.halt.stop() {
			break
		}
		if it.cur == nil {
			if len(it.queue) == 0 {
				break
			}
			n := it.queue[0]
			it.queue[0] = nil
			it.queue = it.queue[1:]
			if it.spec.MaxLen > 0 && n.depth >= it.spec.MaxLen {
				continue
			}
			it.cur = n
			it.curEdges = it.curEdges[:0]
			it.curTos = it.curTos[:0]
			it.curIdx = 0
			expand(it.g, n.v, func(e *Edge, to *Vertex) bool {
				it.curEdges = append(it.curEdges, e)
				it.curTos = append(it.curTos, to)
				return true
			})
		}
		n := it.cur
		pos := n.depth
		for it.curIdx < len(it.curEdges) {
			if it.halt.stop() {
				it.done = true
				return nil
			}
			e, to := it.curEdges[it.curIdx], it.curTos[it.curIdx]
			it.curIdx++
			// Final-depth fast path: see the DFS counterpart.
			if it.spec.MaxLen > 0 && pos+1 == it.spec.MaxLen &&
				it.spec.Target != nil && to != it.spec.Target {
				continue
			}
			seen := it.visited[to]
			if it.spec.Policy == VisitPerPath {
				seen = n.contains(to)
			}
			if seen {
				if it.spec.AllowCycle && to == it.spec.Start && pos+1 >= 2 &&
					it.spec.lenOK(pos+1) && it.spec.targetOK(to) &&
					okEdge(&it.spec, pos, e, n.v, to) {
					if it.spec.Prune == nil ||
						it.spec.Prune(n.materializeInto(&it.scratch, e, to)) {
						return n.materialize(e, to)
					}
				}
				continue
			}
			if !okEdge(&it.spec, pos, e, n.v, to) {
				continue
			}
			if it.spec.FilterVertex != nil && !it.spec.FilterVertex(pos+1, to) {
				continue
			}
			// Prune consults the scratch path before the candidate's tree
			// node even exists, so a rejected expansion allocates nothing.
			if it.spec.Prune != nil && !it.spec.Prune(n.materializeInto(&it.scratch, e, to)) {
				continue
			}
			np := &pnode{parent: n, edge: e, v: to, depth: pos + 1}
			if it.spec.Policy == VisitGlobal {
				it.visited[to] = true
			}
			it.queue = append(it.queue, np)
			if it.spec.lenOK(np.depth) && it.spec.targetOK(to) {
				return np.materialize(nil, nil)
			}
		}
		it.cur = nil
	}
	it.done = true
	return nil
}

// Reachable reports whether target is reachable from start within maxLen
// edges (maxLen <= 0 for unbounded), a convenience used by tests and the
// workload generators.
func Reachable(g *Graph, start, target *Vertex, maxLen int) bool {
	if start == nil || target == nil {
		return false
	}
	if start == target {
		return true
	}
	it := NewBFS(g, Spec{Start: start, Target: target, MinLen: 1, MaxLen: maxLen})
	return it.Next() != nil
}
