package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randTopology builds a pseudo-random multigraph (self-loops and parallel
// edges included) from a fixed seed.
func randTopology(t testing.TB, seed int64, nv, ne int, directed bool) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(fmt.Sprintf("rand%d", seed), directed)
	for i := 0; i < nv; i++ {
		if _, err := g.AddVertex(int64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ne; i++ {
		from := int64(rng.Intn(nv))
		to := int64(rng.Intn(nv))
		if _, err := g.AddEdge(int64(i+1), from, to, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// drain pulls up to max paths and renders them; the rendering includes
// the cost so SPScan differentials also compare costs.
func drainStrings(it PathIterator, max int) []string {
	var out []string
	for len(out) < max {
		p := it.Next()
		if p == nil {
			break
		}
		out = append(out, fmt.Sprintf("%s cost=%g", p, p.Cost))
	}
	return out
}

func diffSequences(t *testing.T, label string, ptr, csr []string) {
	t.Helper()
	if len(ptr) != len(csr) {
		t.Fatalf("%s: pointer kernel emitted %d paths, CSR %d\nptr=%v\ncsr=%v",
			label, len(ptr), len(csr), head(ptr), head(csr))
	}
	for i := range ptr {
		if ptr[i] != csr[i] {
			t.Fatalf("%s: path %d differs\nptr: %s\ncsr: %s", label, i, ptr[i], csr[i])
		}
	}
}

func head(s []string) []string {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

// TestCSRDifferential runs the pointer and CSR kernels over identical
// random topologies and a matrix of traversal specs; the emitted path
// sequences must be byte-identical (same paths, same order, same costs).
func TestCSRDifferential(t *testing.T) {
	const maxPaths = 4000
	edgeFilter := func(pos int, e *Edge, from, to *Vertex) bool { return e.ID%3 != 0 }
	vertFilter := func(pos int, v *Vertex) bool { return v.ID%7 != 5 }
	pruneShort := func(p *Path) bool { return p.Len() < 5 }

	for _, directed := range []bool{true, false} {
		for seed := int64(1); seed <= 6; seed++ {
			nv := 8 + int(seed)*3
			ne := nv * 3
			g := randTopology(t, seed, nv, ne, directed)
			c := BuildCSR(g)
			if !c.Fresh(g) {
				t.Fatal("snapshot stale immediately after build")
			}
			starts := []*Vertex{g.Vertex(0), g.Vertex(int64(nv / 2))}
			targets := []*Vertex{nil, g.Vertex(int64(nv - 1))}

			specs := []Spec{}
			for _, start := range starts {
				for _, target := range targets {
					specs = append(specs,
						Spec{Start: start, Target: target},
						Spec{Start: start, Target: target, MinLen: 1, MaxLen: 3},
						Spec{Start: start, Target: target, Policy: VisitPerPath, MaxLen: 4},
						Spec{Start: start, Target: target, Policy: VisitPerPath,
							AllowCycle: true, MinLen: 2, MaxLen: 3},
						Spec{Start: start, Target: target, MaxLen: 5,
							FilterEdge: edgeFilter, FilterVertex: vertFilter},
						Spec{Start: start, Target: target, Policy: VisitPerPath,
							MaxLen: 4, Prune: pruneShort},
					)
				}
			}

			for si, spec := range specs {
				label := fmt.Sprintf("directed=%v seed=%d spec=%d", directed, seed, si)
				diffSequences(t, label+" dfs",
					drainStrings(NewDFS(g, spec), maxPaths),
					drainReleased(NewCSRDFS(c, spec), maxPaths))
				diffSequences(t, label+" bfs",
					drainStrings(NewBFS(g, spec), maxPaths),
					drainReleased(NewCSRBFS(c, spec), maxPaths))
				for _, k := range []int{1, 2} {
					weight := func(pos int, e *Edge, from, to *Vertex) (float64, bool) {
						return float64(e.ID%5) + 1, true
					}
					ptrIt := NewShortest(g, spec, weight, k)
					csrIt := NewCSRShortest(c, spec, weight, k)
					ptr := drainStrings(ptrIt, maxPaths)
					csr := drainStrings(csrIt, maxPaths)
					if (ptrIt.Err() == nil) != (csrIt.Err() == nil) {
						t.Fatalf("%s sp k=%d: error mismatch: ptr=%v csr=%v",
							label, k, ptrIt.Err(), csrIt.Err())
					}
					csrIt.Release()
					diffSequences(t, fmt.Sprintf("%s sp k=%d", label, k), ptr, csr)
				}
			}
		}
	}
}

func drainReleased(it CSRIterator, max int) []string {
	out := drainStrings(it, max)
	it.Release()
	return out
}

// TestCSRReachableDifferential checks the Step-based existence kernel
// against the pointer baseline over every vertex pair.
func TestCSRReachableDifferential(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := randTopology(t, 42, 14, 40, directed)
		c := BuildCSR(g)
		for _, maxLen := range []int{0, 2} {
			for a := int64(0); a < 14; a++ {
				for b := int64(0); b < 14; b++ {
					want := Reachable(g, g.Vertex(a), g.Vertex(b), maxLen)
					got := CSRReachable(c, g.Vertex(a), g.Vertex(b), maxLen)
					if want != got {
						t.Fatalf("directed=%v maxLen=%d: Reachable(%d,%d)=%v but CSR says %v",
							directed, maxLen, a, b, want, got)
					}
				}
			}
		}
	}
}

// TestCSRFreshness pins the snapshot invalidation contract: any topology
// mutation makes an existing snapshot stale, and a snapshot of a
// different graph object never reads as fresh.
func TestCSRFreshness(t *testing.T) {
	g := randTopology(t, 7, 10, 20, true)
	c := BuildCSR(g)
	if !c.Fresh(g) {
		t.Fatal("fresh snapshot reported stale")
	}
	other := New("other", true)
	if c.Fresh(other) {
		t.Fatal("snapshot fresh against a different graph")
	}
	if _, err := g.AddVertex(99, 99); err != nil {
		t.Fatal(err)
	}
	if c.Fresh(g) {
		t.Fatal("snapshot fresh after AddVertex")
	}
	c = BuildCSR(g)
	if !g.RemoveEdge(1) {
		t.Fatal("RemoveEdge(1) = false")
	}
	if c.Fresh(g) {
		t.Fatal("snapshot fresh after RemoveEdge")
	}
}

// TestCSRStartTargetIdentity: a vertex of another topology with an equal
// identifier must not resolve into the snapshot (pointer-identity
// semantics, matching the pointer kernels).
func TestCSRStartTargetIdentity(t *testing.T) {
	g := randTopology(t, 3, 8, 16, true)
	c := BuildCSR(g)
	imposterG := randTopology(t, 3, 8, 16, true)
	imposter := imposterG.Vertex(0)
	it := NewCSRBFS(c, Spec{Start: imposter})
	if p := it.Next(); p != nil {
		t.Fatalf("foreign start vertex emitted %v", p)
	}
	it.Release()
	it = NewCSRBFS(c, Spec{Start: g.Vertex(0), Target: imposter, MinLen: 1})
	if p := it.Next(); p != nil {
		t.Fatalf("foreign target vertex emitted %v", p)
	}
	it.Release()
}

// TestCSRStepAllocs is the tentpole's zero-allocation guard: after one
// warm-up traversal sizes the pooled scratch, a full Step-drained
// traversal (the reachability/counting fast path) performs zero heap
// allocations for all three kernels.
func TestCSRStepAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	g := randTopology(t, 11, 3000, 12000, true)
	c := BuildCSR(g)
	start := g.Vertex(0)

	cases := []struct {
		name string
		run  func()
	}{
		{"dfs", func() {
			it := NewCSRDFS(c, Spec{Start: start, MinLen: 1})
			for it.Step() {
			}
			it.Release()
		}},
		{"bfs", func() {
			it := NewCSRBFS(c, Spec{Start: start, MinLen: 1})
			for it.Step() {
			}
			it.Release()
		}},
		{"sp", func() {
			it := NewCSRShortest(c, Spec{Start: start, MinLen: 1}, UnitWeight, 1)
			for it.Step() {
			}
			it.Release()
		}},
		{"triangles", func() {
			it := NewCSRDFS(c, Spec{Start: start, Target: start, Policy: VisitPerPath,
				AllowCycle: true, MinLen: 3, MaxLen: 3})
			for it.Step() {
			}
			it.Release()
		}},
	}
	for _, tc := range cases {
		tc.run() // warm-up sizes the pooled scratch
		if allocs := testing.AllocsPerRun(10, tc.run); allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state traversal, want 0", tc.name, allocs)
		}
	}
}

// TestCSRStepNextInterleave: Step and Next advance the same cursor.
func TestCSRStepNextInterleave(t *testing.T) {
	g := randTopology(t, 5, 12, 30, true)
	c := BuildCSR(g)
	spec := Spec{Start: g.Vertex(0), MinLen: 1}
	ref := drainStrings(NewBFS(g, spec), 1000)
	it := NewCSRBFS(c, spec)
	var got []string
	i := 0
	for {
		if i%2 == 1 && i < len(ref) { // skip odd emissions via Step
			if !it.Step() {
				break
			}
			got = append(got, ref[i]) // stepped-over result counts as seen
		} else {
			p := it.Next()
			if p == nil {
				break
			}
			got = append(got, fmt.Sprintf("%s cost=%g", p, p.Cost))
		}
		i++
	}
	it.Release()
	diffSequences(t, "interleave", ref, got)
}

// BenchmarkKernelReachability compares the pointer and CSR unbounded
// reachability kernels (the headline case: full BFS over the topology).
func BenchmarkKernelReachability(b *testing.B) {
	g := randTopology(b, 13, 20000, 80000, true)
	start, target := g.Vertex(0), g.Vertex(19999)
	b.Run("ptr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Reachable(g, start, target, 0)
		}
	})
	c := BuildCSR(g)
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CSRReachable(c, start, target, 0)
		}
	})
}
