package graph

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// chain builds 0 -> 1 -> ... -> n-1.
func chainGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New("chain", true)
	for i := 0; i < n; i++ {
		if _, err := g.AddVertex(int64(i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		if _, err := g.AddEdge(int64(i), int64(i), int64(i+1), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// drainSeq runs the per-source traversals sequentially, the golden order.
func drainSeq(g *Graph, starts []*Vertex, spec func(*Vertex) Spec) []*Path {
	var out []*Path
	for _, s := range starts {
		it := NewBFS(g, spec(s))
		for p := it.Next(); p != nil; p = it.Next() {
			out = append(out, p)
		}
	}
	return out
}

func pathsEqual(a, b []*Path) error {
	if len(a) != len(b) {
		return fmt.Errorf("path count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return fmt.Errorf("path %d: %s != %s", i, a[i].String(), b[i].String())
		}
	}
	return nil
}

// TestMultiSourceMatchesSequential checks the determinism contract: the
// parallel merge yields exactly the sequential concatenation, for every
// worker count, even when workers finish out of order.
func TestMultiSourceMatchesSequential(t *testing.T) {
	g := chainGraph(t, 40)
	var starts []*Vertex
	g.Vertices(func(v *Vertex) bool { starts = append(starts, v); return true })
	spec := func(s *Vertex) Spec { return Spec{Start: s, MinLen: 1, MaxLen: 4} }
	want := drainSeq(g, starts, spec)

	for _, workers := range []int{1, 2, 3, 4, 8, 64} {
		it := RunMultiSource(nil, len(starts), workers, func(i int) ([]*Path, error) {
			// Jitter completion order so the merge has to reorder.
			time.Sleep(time.Duration(i%3) * time.Millisecond / 4)
			var out []*Path
			bfs := NewBFS(g, spec(starts[i]))
			for p := bfs.Next(); p != nil; p = bfs.Next() {
				out = append(out, p)
			}
			return out, nil
		})
		var got []*Path
		for p := it.Next(); p != nil; p = it.Next() {
			got = append(got, p)
		}
		it.Close()
		if err := it.Err(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := pathsEqual(want, got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestMultiSourceError checks that a failing source surfaces through Err,
// that every path of earlier sources is still yielded first, and that
// Close leaves no goroutine stuck.
func TestMultiSourceError(t *testing.T) {
	g := chainGraph(t, 10)
	var starts []*Vertex
	g.Vertices(func(v *Vertex) bool { starts = append(starts, v); return true })
	boom := errors.New("boom")
	const failAt = 5
	it := RunMultiSource(nil, len(starts), 4, func(i int) ([]*Path, error) {
		if i == failAt {
			return nil, boom
		}
		var out []*Path
		bfs := NewBFS(g, Spec{Start: starts[i], MinLen: 1, MaxLen: 2})
		for p := bfs.Next(); p != nil; p = bfs.Next() {
			out = append(out, p)
		}
		return out, nil
	})
	var got []*Path
	for p := it.Next(); p != nil; p = it.Next() {
		got = append(got, p)
	}
	if !errors.Is(it.Err(), boom) {
		t.Fatalf("Err = %v, want %v", it.Err(), boom)
	}
	want := drainSeq(g, starts[:failAt], func(s *Vertex) Spec {
		return Spec{Start: s, MinLen: 1, MaxLen: 2}
	})
	if err := pathsEqual(want, got); err != nil {
		t.Fatalf("prefix before error: %v", err)
	}
	it.Close() // idempotent after the error-triggered Close
}

// TestMultiSourceEarlyClose abandons the iterator mid-stream (the LIMIT
// case) and checks Close returns with all workers stopped.
func TestMultiSourceEarlyClose(t *testing.T) {
	g := chainGraph(t, 200)
	var starts []*Vertex
	g.Vertices(func(v *Vertex) bool { starts = append(starts, v); return true })
	it := RunMultiSource(nil, len(starts), 4, func(i int) ([]*Path, error) {
		var out []*Path
		bfs := NewBFS(g, Spec{Start: starts[i], MinLen: 1, MaxLen: 8})
		for p := bfs.Next(); p != nil; p = bfs.Next() {
			out = append(out, p)
		}
		return out, nil
	})
	if p := it.Next(); p == nil {
		t.Fatal("expected at least one path")
	}
	done := make(chan struct{})
	go func() { it.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return: worker leak")
	}
}

// TestMultiSourceEmpty covers n == 0.
func TestMultiSourceEmpty(t *testing.T) {
	it := RunMultiSource(nil, 0, 4, func(i int) ([]*Path, error) {
		t.Error("run called for empty source set")
		return nil, nil
	})
	if p := it.Next(); p != nil {
		t.Fatalf("unexpected path %v", p)
	}
	it.Close()
}
