//go:build !race

package graph

const raceEnabled = false
