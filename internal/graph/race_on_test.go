//go:build race

package graph

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool deliberately drops items under -race, so allocation-count
// guards are meaningless there.
const raceEnabled = true
