package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func drain(it PathIterator, max int) []*Path {
	var out []*Path
	for p := it.Next(); p != nil; p = it.Next() {
		out = append(out, p)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// diamond: 1 -> {2,3} -> 4 (two length-2 paths from 1 to 4).
func diamond() *Graph {
	g := New("d", true)
	for i := 1; i <= 4; i++ {
		g.AddVertex(int64(i), uint64(i))
	}
	g.AddEdge(1, 1, 2, 1)
	g.AddEdge(2, 1, 3, 2)
	g.AddEdge(3, 2, 4, 3)
	g.AddEdge(4, 3, 4, 4)
	return g
}

func TestDFSEnumeratesChain(t *testing.T) {
	g := chain(4, true)
	paths := drain(NewDFS(g, Spec{Start: g.Vertex(1), MinLen: 1}), 0)
	// 1-2, 1-2-3, 1-2-3-4
	if len(paths) != 3 {
		t.Fatalf("paths = %d", len(paths))
	}
	for i, p := range paths {
		if p.Len() != i+1 {
			t.Errorf("path %d has length %d", i, p.Len())
		}
		if p.Start().ID != 1 {
			t.Errorf("path %d start %d", i, p.Start().ID)
		}
	}
	if paths[2].End().ID != 4 {
		t.Errorf("deepest path ends at %d", paths[2].End().ID)
	}
}

func TestBFSOrderIsByLength(t *testing.T) {
	g := diamond()
	paths := drain(NewBFS(g, Spec{Start: g.Vertex(1), MinLen: 1, Policy: VisitPerPath}), 0)
	// Lengths must be nondecreasing and cover both length-2 paths to 4.
	prev := 0
	count2to4 := 0
	for _, p := range paths {
		if p.Len() < prev {
			t.Fatalf("BFS emitted decreasing lengths")
		}
		prev = p.Len()
		if p.Len() == 2 && p.End().ID == 4 {
			count2to4++
		}
	}
	if count2to4 != 2 {
		t.Errorf("per-path BFS found %d paths 1=>4, want 2", count2to4)
	}
}

func TestGlobalPolicyVisitsOnce(t *testing.T) {
	g := diamond()
	paths := drain(NewBFS(g, Spec{Start: g.Vertex(1), MinLen: 1}), 0)
	ends := map[int64]int{}
	for _, p := range paths {
		ends[p.End().ID]++
	}
	if ends[4] != 1 {
		t.Errorf("global policy reached 4 %d times, want 1", ends[4])
	}
	if len(paths) != 3 { // 1-2, 1-3, 1-?-4
		t.Errorf("paths = %d, want 3", len(paths))
	}
}

func TestMinMaxLen(t *testing.T) {
	g := chain(6, true)
	paths := drain(NewDFS(g, Spec{Start: g.Vertex(1), MinLen: 2, MaxLen: 3}), 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
	for _, p := range paths {
		if p.Len() < 2 || p.Len() > 3 {
			t.Errorf("length %d outside [2,3]", p.Len())
		}
	}
}

func TestZeroLengthPathEmission(t *testing.T) {
	g := chain(2, true)
	paths := drain(NewBFS(g, Spec{Start: g.Vertex(1), MinLen: 0}), 0)
	if len(paths) != 2 || paths[0].Len() != 0 {
		t.Fatalf("expected trivial path first, got %d paths", len(paths))
	}
	if paths[0].Start() != paths[0].End() {
		t.Error("trivial path endpoints differ")
	}
}

func TestTargetRestrictsEmissionNotExploration(t *testing.T) {
	g := diamond()
	for _, mk := range []func(*Graph, Spec) PathIterator{NewDFS, NewBFS} {
		paths := drain(mk(g, Spec{Start: g.Vertex(1), MinLen: 1, Target: g.Vertex(4)}), 0)
		if len(paths) != 1 || paths[0].End().ID != 4 {
			t.Errorf("target traversal: %d paths", len(paths))
		}
	}
}

func TestEdgeAndVertexFilters(t *testing.T) {
	g := diamond()
	// Block vertex 2: only the 1-3-4 path remains.
	spec := Spec{
		Start: g.Vertex(1), MinLen: 1, Policy: VisitPerPath,
		FilterVertex: func(pos int, v *Vertex) bool { return v.ID != 2 },
	}
	paths := drain(NewDFS(g, spec), 0)
	if len(paths) != 2 { // 1-3 and 1-3-4
		t.Fatalf("filtered paths = %d", len(paths))
	}
	// Edge filter sees correct positions.
	var positions []int
	spec = Spec{
		Start: g.Vertex(1), MinLen: 1, Policy: VisitPerPath,
		FilterEdge: func(pos int, e *Edge, from, to *Vertex) bool {
			positions = append(positions, pos)
			return true
		},
	}
	drain(NewDFS(g, spec), 0)
	for _, pos := range positions {
		if pos != 0 && pos != 1 {
			t.Errorf("bad edge position %d", pos)
		}
	}
}

func TestPrunePartialPaths(t *testing.T) {
	g := chain(5, true)
	// Prune any partial path longer than 2 edges.
	spec := Spec{
		Start: g.Vertex(1), MinLen: 1,
		Prune: func(p *Path) bool { return p.Len() <= 2 },
	}
	paths := drain(NewDFS(g, spec), 0)
	if len(paths) != 2 {
		t.Errorf("pruned enumeration = %d paths", len(paths))
	}
}

func TestTriangleCycleClosure(t *testing.T) {
	g := triangleGraph()
	spec := Spec{
		Start: g.Vertex(1), MinLen: 3, MaxLen: 3,
		Policy: VisitPerPath, AllowCycle: true, Target: g.Vertex(1),
	}
	for name, mk := range map[string]func(*Graph, Spec) PathIterator{"dfs": NewDFS, "bfs": NewBFS} {
		paths := drain(mk(g, spec), 0)
		if len(paths) != 1 {
			t.Fatalf("%s: triangle paths = %d, want 1", name, len(paths))
		}
		p := paths[0]
		if p.Len() != 3 || p.Start().ID != 1 || p.End().ID != 1 {
			t.Errorf("%s: bad triangle %s", name, p)
		}
	}
}

func TestUndirectedTraversalGoesBothWays(t *testing.T) {
	g := chain(3, false) // undirected chain 1-2-3
	// From vertex 3 we can walk back to 1.
	paths := drain(NewBFS(g, Spec{Start: g.Vertex(3), MinLen: 1, Target: g.Vertex(1)}), 0)
	if len(paths) != 1 || paths[0].Len() != 2 {
		t.Fatalf("undirected reverse walk failed: %d", len(paths))
	}
	// Traversal-order endpoints disagree with storage orientation.
	p := paths[0]
	if p.StepStart(0).ID != 3 || p.StepEnd(0).ID != 2 {
		t.Errorf("traversal-order endpoints wrong: %d -> %d", p.StepStart(0).ID, p.StepEnd(0).ID)
	}
}

func TestDirectedEdgesNotReversed(t *testing.T) {
	g := chain(3, true)
	paths := drain(NewBFS(g, Spec{Start: g.Vertex(3), MinLen: 1}), 0)
	if len(paths) != 0 {
		t.Errorf("directed graph traversed backwards: %d paths", len(paths))
	}
}

func TestPathStringFormat(t *testing.T) {
	g := chain(3, true)
	paths := drain(NewDFS(g, Spec{Start: g.Vertex(1), MinLen: 2, MaxLen: 2}), 0)
	if len(paths) != 1 {
		t.Fatal("missing path")
	}
	if got := paths[0].String(); got != "1-[1]->2-[2]->3" {
		t.Errorf("PathString = %q", got)
	}
}

func TestReachable(t *testing.T) {
	g := chain(5, true)
	if !Reachable(g, g.Vertex(1), g.Vertex(5), 0) {
		t.Error("1 must reach 5")
	}
	if Reachable(g, g.Vertex(5), g.Vertex(1), 0) {
		t.Error("5 must not reach 1 (directed)")
	}
	if Reachable(g, g.Vertex(1), g.Vertex(5), 3) {
		t.Error("1 must not reach 5 within 3 hops")
	}
	if !Reachable(g, g.Vertex(2), g.Vertex(2), 0) {
		t.Error("vertex must reach itself")
	}
	if Reachable(g, nil, g.Vertex(1), 0) {
		t.Error("nil start must be unreachable")
	}
}

func TestLazinessStopsTraversal(t *testing.T) {
	// A wide star: pulling only one path must not expand everything.
	g := New("star", true)
	g.AddVertex(0, 0)
	for i := int64(1); i <= 1000; i++ {
		g.AddVertex(i, uint64(i))
		g.AddEdge(i, 0, i, uint64(i))
	}
	touched := 0
	spec := Spec{
		Start: g.Vertex(0), MinLen: 1,
		FilterEdge: func(pos int, e *Edge, from, to *Vertex) bool { touched++; return true },
	}
	it := NewBFS(g, spec)
	if it.Next() == nil {
		t.Fatal("no path")
	}
	if touched >= 1000 {
		t.Errorf("BFS expanded %d edges for one pull; not lazy", touched)
	}
}

// randomGraph builds a deterministic pseudo-random directed graph.
func randomGraph(n, m int, seed int64) *Graph {
	g := New("rand", true)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		g.AddVertex(int64(i), uint64(i+1))
	}
	for e := 0; e < m; e++ {
		from := rng.Int63n(int64(n))
		to := rng.Int63n(int64(n))
		g.AddEdge(int64(e), from, to, uint64(e+1))
	}
	return g
}

// Property: every emitted path is simple (no interior vertex repeats),
// respects the length bounds, starts at Start, and its edges connect
// consecutive vertexes.
func TestTraversalEmitsWellFormedSimplePaths(t *testing.T) {
	prop := func(seed int64, perPath bool) bool {
		g := randomGraph(20, 40, seed%1000)
		spec := Spec{Start: g.Vertex(0), MinLen: 1, MaxLen: 4}
		if perPath {
			spec.Policy = VisitPerPath
		}
		for _, mk := range []func(*Graph, Spec) PathIterator{NewDFS, NewBFS} {
			paths := drain(mk(g, spec), 500)
			for _, p := range paths {
				if p.Len() < 1 || p.Len() > 4 || p.Start().ID != 0 {
					return false
				}
				if len(p.Verts) != len(p.Edges)+1 {
					return false
				}
				seen := map[*Vertex]bool{}
				for _, v := range p.Verts {
					if seen[v] {
						return false
					}
					seen[v] = true
				}
				for i, e := range p.Edges {
					a, b := p.Verts[i], p.Verts[i+1]
					if !(e.From == a && e.To == b) && !(e.From == b && e.To == a) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: with VisitGlobal, DFS and BFS reach exactly the same vertex set
// (the reachable set), regardless of emission order.
func TestGlobalDFSandBFSReachSameSet(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(25, 50, seed%1000)
		collect := func(mk func(*Graph, Spec) PathIterator) map[int64]bool {
			set := map[int64]bool{}
			for _, p := range drain(mk(g, Spec{Start: g.Vertex(0), MinLen: 1}), 0) {
				set[p.End().ID] = true
			}
			return set
		}
		d, b := collect(NewDFS), collect(NewBFS)
		if len(d) != len(b) {
			return false
		}
		for k := range d {
			if !b[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
