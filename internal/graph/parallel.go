package graph

import (
	"errors"
	"sync"
)

// ErrStopped reports a multi-source traversal halted by its cancellation
// signal before every source was merged. The caller that closed the signal
// (the executor's Context) maps it to the typed cause — timeout or
// cancellation.
var ErrStopped = errors.New("graph: traversal stopped by cancellation")

// This file implements the scheduling kernel behind the engine's parallel
// multi-source traversals (the ParallelPathScan operator). The paper's
// read workloads — reachability, shortest paths, triangle counting (§7) —
// fan one independent traversal out of every start vertex in a start set;
// those traversals never share mutable state (each owns its visited
// set/stack/queue and the topology is immutable while readers hold the
// engine's shared lock), so they parallelize embarrassingly. What must NOT
// change is the result: queries are defined to produce the same rows as
// the sequential engine, so the kernel merges per-source results back in
// strict source order, making parallel execution observationally identical
// to the sequential loop over starts.

// srcResult is the fully-drained output of one source's traversal.
type srcResult struct {
	idx   int
	paths []*Path
	err   error
}

// MultiSourceIter yields the paths of n independent per-source traversals
// in deterministic source order (all paths of source 0, then source 1, …),
// while the traversals themselves run on a bounded worker pool.
//
// The in-flight window is bounded (2× the worker count): a source's result
// set is materialized only while it waits for its turn in the merge, so
// memory stays proportional to the pool size, not to n. Next is not safe
// for concurrent use; one goroutine consumes the iterator, as everywhere
// else in the Volcano pipeline.
type MultiSourceIter struct {
	n       int
	tasks   chan int
	sem     chan struct{}
	out     chan srcResult
	done    chan struct{}
	ext     <-chan struct{} // external cancellation signal (may be nil)
	once    sync.Once
	wg      sync.WaitGroup
	pending map[int]srcResult

	next int
	cur  []*Path
	ci   int
	err  error
}

// RunMultiSource starts workers goroutines that call run(i) for every
// source index i in [0, n) and returns the merging iterator. run must
// return the source's complete path list in the order the sequential
// kernel would emit it; it is called from worker goroutines, so everything
// it touches must be either read-only or owned by the call.
//
// done, when non-nil, is the query's cancellation signal: once it closes,
// the dispatcher stops handing out sources, workers pick up no new work,
// and Next reports ErrStopped instead of blocking on results that will
// never be produced. Individual runs observe the same signal through their
// kernels' Spec.Done.
//
// Callers must Close the iterator (even after draining it) before the
// state run reads can change again: Close cancels undispatched sources and
// waits for in-flight runs to finish.
func RunMultiSource(done <-chan struct{}, n, workers int, run func(i int) ([]*Path, error)) *MultiSourceIter {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	window := 2 * workers
	it := &MultiSourceIter{
		n:       n,
		tasks:   make(chan int),
		sem:     make(chan struct{}, window),
		out:     make(chan srcResult, window),
		done:    make(chan struct{}),
		ext:     done,
		pending: make(map[int]srcResult, window),
	}
	// Dispatcher: feeds source indexes in order, never running more than
	// `window` ahead of the merge (the semaphore is released as the
	// consumer receives results).
	it.wg.Add(1)
	go func() {
		defer it.wg.Done()
		defer close(it.tasks)
		for i := 0; i < n; i++ {
			select {
			case it.sem <- struct{}{}:
			case <-it.done:
				return
			case <-it.ext:
				return
			}
			select {
			case it.tasks <- i:
			case <-it.done:
				return
			case <-it.ext:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		it.wg.Add(1)
		go func() {
			defer it.wg.Done()
			for i := range it.tasks {
				// Cooperative check between sources: once the query is
				// canceled, pick up no new work. The run itself observes
				// the same signal through its kernel's Spec.Done.
				select {
				case <-it.ext:
					return
				default:
				}
				paths, err := run(i)
				select {
				case it.out <- srcResult{idx: i, paths: paths, err: err}:
				case <-it.done:
					return
				}
			}
		}()
	}
	return it
}

// Next implements PathIterator. It returns nil when exhausted or when a
// source failed; check Err afterwards.
func (it *MultiSourceIter) Next() *Path {
	for {
		if it.err != nil {
			return nil
		}
		if it.ci < len(it.cur) {
			p := it.cur[it.ci]
			it.ci++
			return p
		}
		if it.next >= it.n {
			return nil
		}
		// Advance to the next source in merge order, buffering any
		// results that arrive out of order. Canceled queries stop
		// dispatching sources, so also watch the external signal or the
		// merge would wait forever for results that will never arrive.
		for {
			if r, ok := it.pending[it.next]; ok {
				delete(it.pending, it.next)
				it.admit(r)
				break
			}
			var r srcResult
			select {
			case r = <-it.out:
			case <-it.ext:
				it.err = ErrStopped
				it.Close()
				return nil
			}
			<-it.sem // one more source may be dispatched
			if r.idx == it.next {
				it.admit(r)
				break
			}
			it.pending[r.idx] = r
		}
	}
}

func (it *MultiSourceIter) admit(r srcResult) {
	it.next++
	it.cur, it.ci = r.paths, 0
	if r.err != nil {
		it.err = r.err
		it.cur = nil
		it.Close()
	}
}

// Err returns the first per-source error, mirroring the SPScan kernel's
// error surface (errors cannot flow through Next's *Path result).
func (it *MultiSourceIter) Err() error { return it.err }

// Close cancels undispatched sources and blocks until every worker has
// exited, so no traversal can still be reading the topology when the
// caller releases the engine's shared lock. It is idempotent and safe to
// call after exhaustion.
func (it *MultiSourceIter) Close() {
	it.once.Do(func() { close(it.done) })
	it.wg.Wait()
}
