package graph

import (
	"math"
	"math/rand"
	"testing"
)

// analyticsTestGraph builds a seeded random multigraph for the analytics
// tests.
func analyticsTestGraph(t testing.TB, nv, ne int, seed int64, directed bool) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New("t", directed)
	for i := 0; i < nv; i++ {
		if _, err := g.AddVertex(int64(i), uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ne; i++ {
		from := rng.Int63n(int64(nv))
		to := rng.Int63n(int64(nv))
		if _, err := g.AddEdge(int64(i), from, to, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := New("cycle", true)
	for i := int64(0); i < 3; i++ {
		g.AddVertex(i, uint64(i)+1)
	}
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 1, 2, 2)
	g.AddEdge(2, 2, 0, 3)
	c := BuildCSR(g)
	a := c.NewAnalytics()
	defer a.Release()
	ranks, iters, err := a.PageRank(nil, 1, 0.85, 50, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Fatalf("iters = %d", iters)
	}
	for i, r := range ranks {
		if math.Abs(r-1.0/3) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want 1/3", i, r)
		}
	}
}

func TestPageRankMassConserved(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := analyticsTestGraph(t, 500, 1500, 7, directed)
		c := BuildCSR(g)
		a := c.NewAnalytics()
		ranks, _, err := a.PageRank(nil, 2, 0.85, 30, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("directed=%v: rank mass = %v, want 1", directed, sum)
		}
		a.Release()
	}
}

func TestComponentsIslands(t *testing.T) {
	g := New("islands", true)
	for _, id := range []int64{1, 2, 3, 10, 11, 20} {
		g.AddVertex(id, uint64(id))
	}
	g.AddEdge(1, 1, 2, 1)
	g.AddEdge(2, 3, 2, 2) // weak connectivity: direction must not matter
	g.AddEdge(3, 11, 10, 3)
	c := BuildCSR(g)
	a := c.NewAnalytics()
	defer a.Release()
	comp, stats, err := a.Components(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Components != 3 {
		t.Fatalf("components = %d, want 3", stats.Components)
	}
	want := map[int64]int64{1: 1, 2: 1, 3: 1, 10: 10, 11: 10, 20: 20}
	for i := range comp {
		if vid := c.VertexID(i); comp[i] != want[vid] {
			t.Fatalf("comp[%d] = %d, want %d", vid, comp[i], want[vid])
		}
	}
}

func TestDegreesMatchFanOutFanIn(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := analyticsTestGraph(t, 300, 900, 11, directed)
		c := BuildCSR(g)
		a := c.NewAnalytics()
		outDeg, inDeg := a.Degrees()
		refOut, refIn := RefDegrees(g)
		for i := 0; i < c.NumVertices(); i++ {
			vid := c.VertexID(i)
			if outDeg[i] != refOut[vid] || inDeg[i] != refIn[vid] {
				t.Fatalf("directed=%v vertex %d: degrees (%d,%d), want (%d,%d)",
					directed, vid, outDeg[i], inDeg[i], refOut[vid], refIn[vid])
			}
		}
		a.Release()
	}
}

// TestKernelsMatchRef checks the CSR kernels against the pointer-graph
// references on the same topology. PageRank is compared bit-for-bit: the
// CSR adjacency mirrors the pointer lists' order, so the float reductions
// run in identical order.
func TestKernelsMatchRef(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := analyticsTestGraph(t, 2000, 6000, 42, directed)
		c := BuildCSR(g)
		a := c.NewAnalytics()

		ranks, kIters, err := a.PageRank(nil, 4, 0.85, 20, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		refRanks, rIters, err := RefPageRank(nil, g, 0.85, 20, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if kIters != rIters {
			t.Fatalf("directed=%v: pagerank iters %d vs ref %d", directed, kIters, rIters)
		}
		for i, r := range ranks {
			if math.Float64bits(r) != math.Float64bits(refRanks[c.VertexID(i)]) {
				t.Fatalf("directed=%v: rank[%d] = %v, ref %v",
					directed, c.VertexID(i), r, refRanks[c.VertexID(i)])
			}
		}

		comp, stats, err := a.Components(nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		refComp, refLevels, err := RefComponents(nil, g)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Levels != refLevels {
			t.Fatalf("directed=%v: levels %d vs ref %d", directed, stats.Levels, refLevels)
		}
		for i, l := range comp {
			if l != refComp[c.VertexID(i)] {
				t.Fatalf("directed=%v: comp[%d] = %d, ref %d",
					directed, c.VertexID(i), l, refComp[c.VertexID(i)])
			}
		}

		lbl, kIters, err := a.LabelProp(nil, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		refLbl, rIters, err := RefLabelProp(nil, g, 10)
		if err != nil {
			t.Fatal(err)
		}
		if kIters != rIters {
			t.Fatalf("directed=%v: labelprop iters %d vs ref %d", directed, kIters, rIters)
		}
		for i, l := range lbl {
			if l != refLbl[c.VertexID(i)] {
				t.Fatalf("directed=%v: lbl[%d] = %d, ref %d",
					directed, c.VertexID(i), l, refLbl[c.VertexID(i)])
			}
		}
		a.Release()
	}
}

// TestAnalyticsWorkerDeterminism checks the determinism contract: results
// are bit-identical across Workers = 1..8 (run under -race in CI).
func TestAnalyticsWorkerDeterminism(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := analyticsTestGraph(t, 3000, 9000, 99, directed)
		c := BuildCSR(g)

		var baseRanks []float64
		var baseComp, baseLbl []int64
		var baseStats ComponentsStats
		for workers := 1; workers <= 8; workers++ {
			a := c.NewAnalytics()
			ranks, _, err := a.PageRank(nil, workers, 0.85, 15, 0)
			if err != nil {
				t.Fatal(err)
			}
			comp, stats, err := a.Components(nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			lbl, _, err := a.LabelProp(nil, workers, 8)
			if err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				baseRanks = append([]float64(nil), ranks...)
				baseComp = append([]int64(nil), comp...)
				baseLbl = append([]int64(nil), lbl...)
				baseStats = stats
			} else {
				for i := range ranks {
					if math.Float64bits(ranks[i]) != math.Float64bits(baseRanks[i]) {
						t.Fatalf("directed=%v workers=%d: rank[%d] differs: %v vs %v",
							directed, workers, i, ranks[i], baseRanks[i])
					}
				}
				for i := range comp {
					if comp[i] != baseComp[i] {
						t.Fatalf("directed=%v workers=%d: comp[%d] differs", directed, workers, i)
					}
				}
				if stats != baseStats {
					t.Fatalf("directed=%v workers=%d: stats %+v vs %+v", directed, workers, stats, baseStats)
				}
				for i := range lbl {
					if lbl[i] != baseLbl[i] {
						t.Fatalf("directed=%v workers=%d: lbl[%d] differs", directed, workers, i)
					}
				}
			}
			a.Release()
		}
	}
}

func TestAnalyticsCancellation(t *testing.T) {
	g := analyticsTestGraph(t, 1000, 3000, 5, true)
	c := BuildCSR(g)
	done := make(chan struct{})
	close(done)
	for _, workers := range []int{1, 4} {
		a := c.NewAnalytics()
		if _, _, err := a.PageRank(done, workers, 0.85, 50, 0); err != ErrStopped {
			t.Fatalf("PageRank(workers=%d) err = %v, want ErrStopped", workers, err)
		}
		if _, _, err := a.Components(done, workers); err != ErrStopped {
			t.Fatalf("Components(workers=%d) err = %v, want ErrStopped", workers, err)
		}
		if _, _, err := a.LabelProp(done, workers, 50); err != ErrStopped {
			t.Fatalf("LabelProp(workers=%d) err = %v, want ErrStopped", workers, err)
		}
		a.Release()
	}
}

// TestAnalyticsZeroAlloc pins the zero-allocation contract the bench gate
// enforces: steady-state components and degree runs (workers = 1, warm
// scratch pool) must not allocate.
func TestAnalyticsZeroAlloc(t *testing.T) {
	g := analyticsTestGraph(t, 2000, 6000, 3, true)
	c := BuildCSR(g)
	runComp := func() {
		a := c.NewAnalytics()
		if _, _, err := a.Components(nil, 1); err != nil {
			t.Fatal(err)
		}
		a.Release()
	}
	runDeg := func() {
		a := c.NewAnalytics()
		a.Degrees()
		a.Release()
	}
	runComp()
	runDeg()
	if allocs := testing.AllocsPerRun(5, runComp); allocs > 0 {
		t.Fatalf("Components allocates %.1f/op in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(5, runDeg); allocs > 0 {
		t.Fatalf("Degrees allocates %.1f/op in steady state, want 0", allocs)
	}
}
