package graph

import (
	"container/heap"
	"fmt"
)

// This file implements the SPScan physical operator's traversal kernels
// (§6.3): a lazy Dijkstra that emits settled shortest paths in cost order,
// and a best-first enumeration of the k shortest *simple* paths between two
// endpoints for TOP-k queries (Listing 6).

// WeightFunc returns the traversal weight of edge e taken from `from` to
// `to` at path position pos. Returning ok=false excludes the edge (the
// pushed-down edge predicates ride along here). Weights must be
// non-negative; NewShortest reports an error through the iterator when a
// negative weight is produced.
type WeightFunc func(pos int, e *Edge, from, to *Vertex) (w float64, ok bool)

// spItem is a heap entry holding a partial path as a traversal-tree node
// (prefixes are shared; see pnode).
type spItem struct {
	node *pnode
	seq  int // insertion sequence for deterministic tie-breaking
}

type spHeap []spItem

func (h spHeap) Len() int { return len(h) }
func (h spHeap) Less(i, j int) bool {
	if h[i].node.cost != h[j].node.cost {
		return h[i].node.cost < h[j].node.cost
	}
	return h[i].seq < h[j].seq
}
func (h spHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x any)   { *h = append(*h, x.(spItem)) }
func (h *spHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = spItem{}
	*h = old[:n-1]
	return it
}

// spIter is the lazy shortest-path iterator.
type spIter struct {
	g      *Graph
	spec   Spec
	weight WeightFunc
	k      int // expansion cap per vertex; 1 = plain Dijkstra
	h      spHeap
	seq    int             // monotone tie-break sequence for heap determinism
	count  map[*Vertex]int // times a vertex has been settled
	// scratch is the reusable Path handed to Prune for candidate
	// expansions (see bfsIter.scratch).
	scratch Path
	err     error
	done    bool
	halt    stopper
}

// NewShortest creates a shortest-path traversal (the paper's SPScan).
//
// With k <= 1 it behaves as lazy Dijkstra: each pull returns the shortest
// path to the next settled vertex, in nondecreasing cost order, so the
// first path satisfying a parent's end-vertex predicate is the shortest
// such path. With k > 1 (TOP-k queries) it enumerates simple paths
// best-first, settling each vertex up to k times, which yields the k
// shortest simple paths to any fixed target.
//
// Spec.MinLen/MaxLen, filters and Prune apply as in DFS/BFS. Err reports a
// negative-weight edge encountered during traversal.
func NewShortest(g *Graph, spec Spec, weight WeightFunc, k int) *spIter {
	if k < 1 {
		k = 1
	}
	it := &spIter{g: g, spec: spec, weight: weight, k: k,
		count: make(map[*Vertex]int), halt: stopper{done: spec.Done}}
	if !spec.admitStart() {
		it.done = true
		return it
	}
	heap.Init(&it.h)
	it.pushNode(&pnode{v: spec.Start})
	return it
}

func (it *spIter) pushNode(n *pnode) {
	it.seq++
	heap.Push(&it.h, spItem{node: n, seq: it.seq})
}

// Err returns the first traversal error (e.g. a negative edge weight).
func (it *spIter) Err() error { return it.err }

// Next returns the next path in nondecreasing cost order, or nil.
func (it *spIter) Next() *Path {
	for !it.done && it.err == nil && it.h.Len() > 0 {
		if it.halt.stop() {
			break
		}
		n := heap.Pop(&it.h).(spItem).node
		end := n.v
		if it.count[end] >= it.k {
			continue
		}
		it.count[end]++
		// Expand before deciding whether to emit, so a LIMIT above us can
		// stop pulling right after the emission without losing laziness.
		if it.spec.MaxLen <= 0 || n.depth < it.spec.MaxLen {
			pos := n.depth
			expand(it.g, end, func(e *Edge, to *Vertex) bool {
				if n.contains(to) {
					return true // simple paths only
				}
				if it.count[to] >= it.k {
					return true
				}
				if !okEdge(&it.spec, pos, e, end, to) {
					return true
				}
				if it.spec.FilterVertex != nil && !it.spec.FilterVertex(pos+1, to) {
					return true
				}
				w, ok := it.weight(pos, e, end, to)
				if !ok {
					return true
				}
				if w < 0 {
					it.err = fmt.Errorf("graph %s: negative weight %g on edge %d; SPScan requires non-negative weights",
						it.g.Name(), w, e.ID)
					return false
				}
				if it.spec.Prune != nil {
					// See bfsIter: prune on the scratch path so a rejected
					// expansion allocates no tree node.
					sp := n.materializeInto(&it.scratch, e, to)
					sp.Cost = n.cost + w
					if !it.spec.Prune(sp) {
						return true
					}
				}
				np := &pnode{parent: n, edge: e, v: to, depth: pos + 1, cost: n.cost + w}
				it.pushNode(np)
				return true
			})
		}
		if it.err != nil {
			return nil
		}
		if it.spec.lenOK(n.depth) && it.spec.targetOK(end) {
			return n.materialize(nil, nil)
		}
	}
	it.done = true
	return nil
}

// ShortestPath returns the minimum-cost path from start to target under
// weight, or nil if unreachable — a convenience wrapper used by tests,
// baselines, and the workload generators.
func ShortestPath(g *Graph, start, target *Vertex, weight WeightFunc) (*Path, error) {
	if start == nil || target == nil {
		return nil, nil
	}
	it := NewShortest(g, Spec{Start: start, Target: target, MinLen: 0}, weight, 1)
	p := it.Next()
	return p, it.Err()
}

// UnitWeight is a WeightFunc assigning every edge weight 1 (hop count).
func UnitWeight(int, *Edge, *Vertex, *Vertex) (float64, bool) { return 1, true }
